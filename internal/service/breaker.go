package service

import "time"

// breakerState is a circuit breaker's position.
type breakerState int

// Breaker states: closed passes traffic, open fast-fails it, half-open
// admits a single probe whose outcome decides the next state.
const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for metrics and logs.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-experiment circuit breaker. All fields are guarded
// by the engine mutex; the breaker itself carries no lock.
//
// Lifecycle: closed counts consecutive failures and opens at the
// threshold; open fast-fails submissions until the cooldown elapses;
// the first submission after the cooldown transitions to half-open and
// runs as a probe while everything else keeps fast-failing; the probe's
// success closes the breaker, its failure re-opens it for another
// cooldown.
type breaker struct {
	state    breakerState
	failures int       // consecutive failures while closed
	until    time.Time // while open: earliest probe time
	probing  bool      // while half-open: a probe job is outstanding
}

// admit decides whether a new job for the breaker's experiment may
// start. It returns the wait a rejected caller should apply before
// retrying, and probe=true when the admitted job is the half-open probe
// (callers that fail to enqueue the job must undo the probe with
// unprobe).
func (b *breaker) admit(now time.Time, cooldown time.Duration) (ok bool, retryAfter time.Duration, probe bool) {
	switch b.state {
	case breakerOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now), false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0, true
	case breakerHalfOpen:
		if b.probing {
			return false, cooldown, false
		}
		b.probing = true
		return true, 0, true
	default:
		return true, 0, false
	}
}

// unprobe rolls back an admit that returned probe=true but whose job
// never made it into the queue, so the next submission can probe.
func (b *breaker) unprobe() {
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// record folds one finished job into the breaker and reports whether
// the breaker tripped open on this outcome.
func (b *breaker) record(succeeded bool, now time.Time, threshold int, cooldown time.Duration) (tripped bool) {
	if succeeded {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return false
	}
	if b.state == breakerHalfOpen {
		// The probe (or a straggler from before the trip) failed: back to open.
		b.state = breakerOpen
		b.probing = false
		b.until = now.Add(cooldown)
		return true
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= threshold {
		b.state = breakerOpen
		b.failures = 0
		b.until = now.Add(cooldown)
		return true
	}
	return false
}

// openNow reports whether the breaker is fast-failing at now.
func (b *breaker) openNow(now time.Time) bool {
	switch b.state {
	case breakerOpen:
		return now.Before(b.until)
	case breakerHalfOpen:
		return b.probing
	default:
		return false
	}
}
