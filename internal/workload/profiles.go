// Package workload defines the twelve DirectX application profiles of
// Table 1 and the 52-frame evaluation suite. Since the commercial game
// traces the paper captured are unavailable, each profile parameterizes
// the synthetic rendering pipeline (internal/pipeline) to reproduce the
// application's structural characteristics: resolution, DirectX version
// (tessellation-era geometry density), multi-pass structure (shadow and
// environment pre-passes, geometry passes, post-processing chains),
// depth complexity, blending and stencil usage, texture pool size, and —
// most importantly for the paper's thesis — the intensity of dynamic
// texturing (render-to-texture) that produces inter-stream RT-to-sampler
// reuse in the LLC.
package workload

import (
	"fmt"

	"gspc/internal/pipeline"
)

// Profile describes one DirectX application.
type Profile struct {
	// Name and Abbrev follow Table 1.
	Name   string
	Abbrev string
	// DirectX is the API version (10 or 11).
	DirectX int
	// Width and Height are the frame resolution at full scale.
	Width, Height int
	// Frames is the number of frames the application contributes to the
	// 52-frame suite.
	Frames int

	// Pass structure.
	ShadowPasses int // depth-as-color pre-passes (shadow maps)
	EnvPasses    int // reduced-resolution environment/reflection passes
	GeomPasses   int // main scene geometry passes
	PostPasses   int // full-screen post-processing passes
	DeferredMRT  int // extra simultaneous render targets (deferred G-buffer)

	// Geometry.
	DrawsPerGeomPass int
	MeshTris         int     // triangles per draw at full scale
	VertexCount      int     // vertices per mesh at full scale
	DepthComplexity  float64 // summed draw coverage per geometry pass
	ZPassRate        float64
	HiZRejectRate    float64

	// Shading.
	TexturesPerDraw    int
	TrilinearFraction  float64
	BlendFraction      float64 // fraction of geometry draws that blend
	StencilPassFrac    float64 // fraction of geometry passes using stencil
	StaticTexCount     int
	StaticTexSize      int     // level-0 dimension at full scale
	DynamicTexFraction float64 // prob. a geometry draw samples a dynamic RT
	SceneReadFraction  float64 // prob. a geometry draw reads back the scene color (refraction, distortion, soft particles)
	PostChainTextures  int     // dynamic textures sampled per post pass

	// Offscreen surfaces.
	ShadowMapSize int     // full-scale shadow map dimension
	EnvMapScale   float64 // environment RT size relative to the frame
}

// String renders "name (WxH, DX v)".
func (p Profile) String() string {
	return fmt.Sprintf("%s (%dx%d, DX%d)", p.Abbrev, p.Width, p.Height, p.DirectX)
}

// Profiles returns the twelve applications of Table 1 in paper order.
// Frame counts sum to 52.
func Profiles() []Profile {
	return []Profile{
		{
			// Heavy post-processing benchmark scene: long full-screen
			// chains over an offscreen HDR target.
			Name: "3D Mark Vantage GT1", Abbrev: "3DMarkVAGT1", DirectX: 10,
			Width: 1920, Height: 1200, Frames: 5,
			ShadowPasses: 2, EnvPasses: 1, GeomPasses: 2, PostPasses: 3,
			DrawsPerGeomPass: 10, MeshTris: 3000, VertexCount: 2500,
			DepthComplexity: 2.2, ZPassRate: 0.62, HiZRejectRate: 0.12,
			TexturesPerDraw: 2, TrilinearFraction: 0.3, BlendFraction: 0.25,
			StencilPassFrac: 0, StaticTexCount: 36, StaticTexSize: 2048,
			DynamicTexFraction: 0.59, SceneReadFraction: 0.20, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			Name: "3D Mark Vantage GT2", Abbrev: "3DMarkVAGT2", DirectX: 10,
			Width: 1920, Height: 1200, Frames: 4,
			ShadowPasses: 3, EnvPasses: 0, GeomPasses: 3, PostPasses: 2,
			DrawsPerGeomPass: 12, MeshTris: 3500, VertexCount: 2800,
			DepthComplexity: 2.5, ZPassRate: 0.58, HiZRejectRate: 0.15,
			TexturesPerDraw: 2, TrilinearFraction: 0.35, BlendFraction: 0.3,
			StencilPassFrac: 0.3, StaticTexCount: 42, StaticTexSize: 2048,
			DynamicTexFraction: 0.52, SceneReadFraction: 0.20, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			// The paper's biggest GSPC winner: very high render-target-
			// to-texture consumption (~90% potential, Fig. 6).
			Name: "Assassin's Creed", Abbrev: "AssnCreed", DirectX: 10,
			Width: 1680, Height: 1050, Frames: 5,
			ShadowPasses: 4, EnvPasses: 1, GeomPasses: 2, PostPasses: 4,
			DrawsPerGeomPass: 9, MeshTris: 2500, VertexCount: 2000,
			DepthComplexity: 2.0, ZPassRate: 0.66, HiZRejectRate: 0.1,
			TexturesPerDraw: 2, TrilinearFraction: 0.25, BlendFraction: 0.2,
			StencilPassFrac: 0, StaticTexCount: 24, StaticTexSize: 1024,
			DynamicTexFraction: 0.60, SceneReadFraction: 0.32, PostChainTextures: 3,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			Name: "BioShock", Abbrev: "BioShock", DirectX: 10,
			Width: 1920, Height: 1200, Frames: 4,
			ShadowPasses: 2, EnvPasses: 0, GeomPasses: 2, PostPasses: 2,
			DrawsPerGeomPass: 11, MeshTris: 2800, VertexCount: 2300,
			DepthComplexity: 2.6, ZPassRate: 0.55, HiZRejectRate: 0.12,
			TexturesPerDraw: 2, TrilinearFraction: 0.3, BlendFraction: 0.45,
			StencilPassFrac: 0.5, StaticTexCount: 36, StaticTexSize: 2048,
			DynamicTexFraction: 0.45, SceneReadFraction: 0.25, PostChainTextures: 2,
			ShadowMapSize: 512, EnvMapScale: 0.4,
		},
		{
			// High depth complexity action scene with heavy overdraw.
			Name: "Devil May Cry 4", Abbrev: "DMC", DirectX: 10,
			Width: 1680, Height: 1050, Frames: 4,
			ShadowPasses: 2, EnvPasses: 0, GeomPasses: 3, PostPasses: 2,
			DrawsPerGeomPass: 12, MeshTris: 3200, VertexCount: 2600,
			DepthComplexity: 3.2, ZPassRate: 0.5, HiZRejectRate: 0.2,
			TexturesPerDraw: 2, TrilinearFraction: 0.25, BlendFraction: 0.4,
			StencilPassFrac: 0.3, StaticTexCount: 30, StaticTexSize: 2048,
			DynamicTexFraction: 0.39, SceneReadFraction: 0.22, PostChainTextures: 1,
			ShadowMapSize: 512, EnvMapScale: 0.4,
		},
		{
			// Strategy title: vast terrain textures, many small draws.
			Name: "Civilization V", Abbrev: "Civilization", DirectX: 11,
			Width: 1920, Height: 1200, Frames: 5,
			ShadowPasses: 2, EnvPasses: 0, GeomPasses: 2, PostPasses: 2,
			DrawsPerGeomPass: 16, MeshTris: 4200, VertexCount: 3400,
			DepthComplexity: 1.8, ZPassRate: 0.75, HiZRejectRate: 0.08,
			TexturesPerDraw: 3, TrilinearFraction: 0.4, BlendFraction: 0.25,
			StencilPassFrac: 0, StaticTexCount: 54, StaticTexSize: 4096,
			DynamicTexFraction: 0.52, SceneReadFraction: 0.17, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			// Racing title with mirror/reflection passes and motion blur.
			Name: "Dirt 2", Abbrev: "Dirt", DirectX: 11,
			Width: 1680, Height: 1050, Frames: 4,
			ShadowPasses: 2, EnvPasses: 2, GeomPasses: 2, PostPasses: 3,
			DrawsPerGeomPass: 10, MeshTris: 3600, VertexCount: 3000,
			DepthComplexity: 2.0, ZPassRate: 0.7, HiZRejectRate: 0.1,
			TexturesPerDraw: 2, TrilinearFraction: 0.45, BlendFraction: 0.3,
			StencilPassFrac: 0, StaticTexCount: 36, StaticTexSize: 2048,
			DynamicTexFraction: 0.65, SceneReadFraction: 0.25, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.6,
		},
		{
			// Flight title: huge anisotropically-sampled terrain.
			Name: "HAWX 2", Abbrev: "HAWX", DirectX: 11,
			Width: 1920, Height: 1200, Frames: 4,
			ShadowPasses: 0, EnvPasses: 0, GeomPasses: 2, PostPasses: 2,
			DrawsPerGeomPass: 8, MeshTris: 5000, VertexCount: 4200,
			DepthComplexity: 1.6, ZPassRate: 0.82, HiZRejectRate: 0.05,
			TexturesPerDraw: 3, TrilinearFraction: 0.6, BlendFraction: 0.15,
			StencilPassFrac: 0, StaticTexCount: 60, StaticTexSize: 4096,
			DynamicTexFraction: 0.39, SceneReadFraction: 0.14, PostChainTextures: 2,
			ShadowMapSize: 512, EnvMapScale: 0.4,
		},
		{
			// Tessellation-heavy benchmark at the highest resolution.
			Name: "Unigine Heaven 2.1", Abbrev: "Heaven", DirectX: 11,
			Width: 2560, Height: 1600, Frames: 5,
			ShadowPasses: 2, EnvPasses: 0, GeomPasses: 3, PostPasses: 2,
			DrawsPerGeomPass: 12, MeshTris: 8000, VertexCount: 6500,
			DepthComplexity: 2.4, ZPassRate: 0.6, HiZRejectRate: 0.15,
			TexturesPerDraw: 2, TrilinearFraction: 0.4, BlendFraction: 0.2,
			StencilPassFrac: 0, StaticTexCount: 42, StaticTexSize: 2048,
			DynamicTexFraction: 0.45, SceneReadFraction: 0.20, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			// Particle-heavy shooter: much alpha blending.
			Name: "Lost Planet 2", Abbrev: "LostPlanet", DirectX: 11,
			Width: 1920, Height: 1200, Frames: 4,
			ShadowPasses: 2, EnvPasses: 0, GeomPasses: 3, PostPasses: 2,
			DrawsPerGeomPass: 11, MeshTris: 3800, VertexCount: 3100,
			DepthComplexity: 2.8, ZPassRate: 0.52, HiZRejectRate: 0.18,
			TexturesPerDraw: 2, TrilinearFraction: 0.3, BlendFraction: 0.55,
			StencilPassFrac: 0.3, StaticTexCount: 36, StaticTexSize: 2048,
			DynamicTexFraction: 0.52, SceneReadFraction: 0.28, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.4,
		},
		{
			// Deferred renderer: G-buffer MRT pass plus lighting passes
			// that consume the G-buffer as textures.
			Name: "Stalker COP", Abbrev: "StalkerCOP", DirectX: 11,
			Width: 1680, Height: 1050, Frames: 4,
			ShadowPasses: 3, EnvPasses: 0, GeomPasses: 2, PostPasses: 3,
			DeferredMRT:      2,
			DrawsPerGeomPass: 10, MeshTris: 3000, VertexCount: 2500,
			DepthComplexity: 2.2, ZPassRate: 0.6, HiZRejectRate: 0.12,
			TexturesPerDraw: 2, TrilinearFraction: 0.3, BlendFraction: 0.25,
			StencilPassFrac: 0.5, StaticTexCount: 36, StaticTexSize: 2048,
			DynamicTexFraction: 0.78, SceneReadFraction: 0.28, PostChainTextures: 3,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
		{
			Name: "Unigine 3D engine", Abbrev: "Unigine", DirectX: 11,
			Width: 1920, Height: 1200, Frames: 4,
			ShadowPasses: 2, EnvPasses: 1, GeomPasses: 2, PostPasses: 2,
			DrawsPerGeomPass: 10, MeshTris: 4500, VertexCount: 3700,
			DepthComplexity: 2.1, ZPassRate: 0.65, HiZRejectRate: 0.1,
			TexturesPerDraw: 2, TrilinearFraction: 0.35, BlendFraction: 0.25,
			StencilPassFrac: 0, StaticTexCount: 42, StaticTexSize: 2048,
			DynamicTexFraction: 0.59, SceneReadFraction: 0.22, PostChainTextures: 2,
			ShadowMapSize: 1024, EnvMapScale: 0.5,
		},
	}
}

// ProfileByAbbrev finds a profile by its abbreviated name.
func ProfileByAbbrev(abbrev string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Abbrev == abbrev {
			return p, true
		}
	}
	return Profile{}, false
}

// FrameJob identifies one frame of the evaluation suite.
type FrameJob struct {
	App   Profile
	Index int // frame index within the application
}

// ID renders e.g. "AssnCreed/2".
func (j FrameJob) ID() string { return fmt.Sprintf("%s/%d", j.App.Abbrev, j.Index) }

// Seed returns the deterministic seed for the job's frame.
func (j FrameJob) Seed() uint64 {
	return hashString(j.App.Abbrev) ^ (uint64(j.Index+1) * 0x9e3779b97f4a7c15)
}

// Suite returns the full 52-frame suite in application order.
func Suite() []FrameJob {
	var jobs []FrameJob
	for _, p := range Profiles() {
		for i := 0; i < p.Frames; i++ {
			jobs = append(jobs, FrameJob{App: p, Index: i})
		}
	}
	return jobs
}

// Build constructs the pipeline frame for this job at the given linear
// scale (1.0 = the paper's full resolution).
func (j FrameJob) Build(scale float64) *pipeline.Frame {
	return j.App.BuildFrame(j.Index, scale)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
