package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/leakcheck"
)

// hostOf extracts the "127.0.0.1:port" host a faultinject.Transport
// keys its per-link specs by.
func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// flakyCoordinator builds a coordinator whose every exchange (forwards
// and health checks alike) crosses a seeded fault-injecting transport,
// so tests can impose per-link weather on real HTTP traffic.
func flakyCoordinator(t *testing.T, nodes []*testNode, mutate func(*Config)) (*Coordinator, *httptest.Server, *faultinject.Transport) {
	t.Helper()
	ft := faultinject.NewTransport(42, faultinject.NetSpec{})
	co, ts := newTestCoordinator(t, nodes, func(c *Config) {
		c.Client = &http.Client{Transport: ft}
		if mutate != nil {
			mutate(c)
		}
	})
	return co, ts, ft
}

// TestFlakyLinkOneBlipDoesNotEject is the headline regression: with the
// default strike budget, a single dropped forward suspects the owner
// but leaves it on the ring, and the very next clean exchange fully
// vindicates it. One blip must never eject a healthy member.
func TestFlakyLinkOneBlipDoesNotEject(t *testing.T) {
	leakcheck.Check(t)
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co2, ts2, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 2 // the production default, not the tests' hair-trigger 1
	})

	body := `{"experiment":"fig12","apps":["Unigine"]}`
	key := keyOf(t, body)
	owners := co2.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]
	ownerHost := hostOf(t, nodeByName(nodes, owner).ts.URL)

	// Compute once over a clean link and let the replica land.
	if resp, b := postJSON(t, ts2.URL, body); resp.StatusCode != 200 {
		t.Fatalf("initial submit = %d: %s", resp.StatusCode, b)
	}
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})

	// One blip: the owner's link resets every exchange.
	ft.SetHostSpec(ownerHost, faultinject.NetSpec{ResetRate: 1})
	resp, b := postJSON(t, ts2.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("blip submit = %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != successor {
		t.Errorf("blip submit served by %s, want replica holder %s", got, successor)
	}
	m, _ := co2.Member(owner)
	if s := m.snapshot(); s.State != StateSuspect || s.Strikes != 1 {
		t.Fatalf("after one blip: state=%s strikes=%d, want suspect/1", s.State, s.Strikes)
	}
	onRing := false
	for _, n := range co2.currentRing().Nodes() {
		onRing = onRing || n == owner
	}
	if !onRing {
		t.Fatalf("one blip ejected %s from the ring", owner)
	}
	if mm := co2.Metrics(); mm.ForwardRefusals == 0 {
		t.Errorf("forward_refusals = 0, want > 0 after a reset-class failure")
	}

	// Heal the link: the next exchange vindicates the owner completely.
	ft.SetHostSpec(ownerHost, faultinject.NetSpec{})
	resp, _ = postJSON(t, ts2.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("post-heal submit = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != owner {
		t.Errorf("post-heal submit served by %s, want owner %s", got, owner)
	}
	if s := m.snapshot(); s.State != StateAlive || s.Strikes != 0 || s.TimeoutStrikes != 0 {
		t.Errorf("after heal: state=%s strikes=%d/%d, want alive/0/0",
			s.State, s.Strikes, s.TimeoutStrikes)
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("flaky link caused recomputation: %d simulations", n)
	}
}

// TestFlakyLinkOneBlipHealthProbe: a single failed health probe — the
// cheapest, most common blip — suspects but does not eject, and the
// next successful sweep restores alive with strikes cleared.
func TestFlakyLinkOneBlipHealthProbe(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, time.Millisecond)
	co, _, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 2
		c.HealthTimeout = 200 * time.Millisecond
	})

	victim := nodes[0]
	victimHost := hostOf(t, victim.ts.URL)

	co.CheckNow()
	if got := co.currentRing().Len(); got != 3 {
		t.Fatalf("ring after clean sweep = %d", got)
	}

	ft.SetHostSpec(victimHost, faultinject.NetSpec{Partition: faultinject.PartitionRefuse})
	co.CheckNow() // one failed probe
	m, _ := co.Member(victim.name)
	if s := m.snapshot(); s.State != StateSuspect {
		t.Fatalf("after one failed probe: state=%s, want suspect", s.State)
	}
	if got := co.currentRing().Len(); got != 3 {
		t.Fatalf("one failed probe shrank the ring to %d", got)
	}

	ft.SetHostSpec(victimHost, faultinject.NetSpec{})
	co.CheckNow()
	if s := m.snapshot(); s.State != StateAlive || s.Strikes != 0 {
		t.Errorf("after healed probe: state=%s strikes=%d, want alive/0", s.State, s.Strikes)
	}
}

// TestFlakyLinkTimeoutClassSofterThanRefusal: timeout-flavored failures
// (black-holed link) draw from the larger DeadAfterTimeout budget, so a
// member behind a lossy link survives strikes that would have killed it
// under the refusal budget — while a refusal-class link dies on
// schedule.
func TestFlakyLinkTimeoutClassSofterThanRefusal(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, time.Millisecond)
	co, _, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 1
		c.DeadAfterTimeout = 3
		c.HealthTimeout = 100 * time.Millisecond
	})

	slow, gone := nodes[0], nodes[1]
	co.CheckNow()

	// Black-hole one link (timeouts), refuse the other (refusals).
	ft.SetHostSpec(hostOf(t, slow.ts.URL), faultinject.NetSpec{Partition: faultinject.PartitionBlackhole})
	ft.SetHostSpec(hostOf(t, gone.ts.URL), faultinject.NetSpec{Partition: faultinject.PartitionRefuse})

	co.CheckNow() // sweep 1
	ms, _ := co.Member(slow.name)
	mg, _ := co.Member(gone.name)
	if s := ms.snapshot(); s.State != StateSuspect || s.TimeoutStrikes != 1 {
		t.Fatalf("slow after 1 sweep: state=%s timeouts=%d, want suspect/1", s.State, s.TimeoutStrikes)
	}
	if s := mg.snapshot(); s.State != StateDead {
		t.Fatalf("gone after 1 sweep: state=%s, want dead (DeadAfter=1)", s.State)
	}

	co.CheckNow() // sweep 2: slow at 2 timeout strikes, budget 3 — alive
	if s := ms.snapshot(); s.State != StateSuspect {
		t.Fatalf("slow after 2 sweeps: state=%s, want still suspect", s.State)
	}

	co.CheckNow() // sweep 3: timeout budget exhausted
	if s := ms.snapshot(); s.State != StateDead {
		t.Fatalf("slow after 3 sweeps: state=%s, want dead", s.State)
	}
}

// TestHedgedForwardServesReplicaFromSlowOwner: when the owner's link is
// merely slow (not down), the coordinator hedges after HedgeDelay with
// cache-only probes and serves the replica's copy — without ejecting
// the owner and without a duplicate simulation.
func TestHedgedForwardServesReplicaFromSlowOwner(t *testing.T) {
	leakcheck.Check(t)
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, ts, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 2
		c.HedgeDelay = 100 * time.Millisecond
	})

	body := `{"experiment":"fig15","apps":["LostPlanet"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]

	if resp, b := postJSON(t, ts.URL, body); resp.StatusCode != 200 {
		t.Fatalf("initial submit = %d: %s", resp.StatusCode, b)
	}
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})

	// The owner's link turns slow: every exchange stalls 5s — far past
	// HedgeDelay, far under ForwardTimeout. The owner itself is healthy.
	ft.SetHostSpec(hostOf(t, nodeByName(nodes, owner).ts.URL),
		faultinject.NetSpec{DelayRate: 1, Latency: 5 * time.Second})

	start := time.Now()
	resp, b := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("hedged submit = %d: %s", resp.StatusCode, b)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("hedged submit took %v, should beat the owner's 5s stall", d)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != successor {
		t.Errorf("hedged submit served by %s, want replica holder %s", got, successor)
	}
	if got := resp.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("hedged disposition = %q, want hit", got)
	}
	m := co.Metrics()
	if m.Hedges == 0 || m.HedgeWins == 0 {
		t.Errorf("hedges=%d hedge_wins=%d, want both > 0", m.Hedges, m.HedgeWins)
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("hedging caused recomputation: %d simulations", n)
	}
	// The slow owner was never struck dead — slowness is not death.
	mo, _ := co.Member(owner)
	if s := mo.snapshot(); s.State == StateDead {
		t.Errorf("slow owner was ejected: state=%s", s.State)
	}
}

// TestMemberBusyIsBackpressureNotEvidence: an exhausted in-flight bound
// fails fast with ErrMemberBusy, counts a reject, and never strikes.
func TestMemberBusyIsBackpressureNotEvidence(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 1, sims, time.Millisecond)
	co, _ := newTestCoordinator(t, nodes, func(c *Config) { c.MaxInflight = 1 })

	m, _ := co.Member(nodes[0].name)
	m.inflight.Add(1) // occupy the only slot
	_, err := co.forward(context.Background(), m, http.MethodGet, "/healthz", nil, nil)
	m.inflight.Add(-1)
	if !errors.Is(err, ErrMemberBusy) {
		t.Fatalf("forward at capacity = %v, want ErrMemberBusy", err)
	}
	if got := co.Metrics().InflightRejects; got != 1 {
		t.Errorf("inflight_rejects = %d, want 1", got)
	}
	// Busy and caller-cancel are not evidence of member failure.
	co.failMember(context.Background(), m, fmt.Errorf("routing: %w", ErrMemberBusy))
	co.failMember(context.Background(), m, context.Canceled)
	if s := m.snapshot(); s.State != StateAlive || s.Strikes != 0 || s.TimeoutStrikes != 0 {
		t.Errorf("backpressure struck the member: state=%s strikes=%d/%d",
			s.State, s.Strikes, s.TimeoutStrikes)
	}
}

// TestReplicationRetriesTransientFailure: a replica install that fails
// while the follower's link is down succeeds after the link heals,
// via the coordinator's backoff retry — instead of silently dropping
// the copy.
func TestReplicationRetriesTransientFailure(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, time.Millisecond)
	co, ts, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 10 // keep the follower alive through the flaps
		c.ReplicateRetries = 5
		c.ReplicateBackoff = 50 * time.Millisecond
	})

	body := `{"experiment":"fig12","apps":["StalkerCOP"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	successor := owners[1]
	succHost := hostOf(t, nodeByName(nodes, successor).ts.URL)

	// The follower's link is down when the result computes...
	ft.SetHostSpec(succHost, faultinject.NetSpec{Partition: faultinject.PartitionRefuse})
	if resp, b := postJSON(t, ts.URL, body); resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	// ...and heals once the retry loop has begun backing off.
	waitUntil(t, "first replication retry", func() bool {
		return co.Metrics().ReplicationRetries >= 1
	})
	ft.SetHostSpec(succHost, faultinject.NetSpec{})

	waitUntil(t, "replica landing after retry", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})
	m := co.Metrics()
	if m.ReplicationRetries == 0 {
		t.Errorf("replication_retries = 0, want > 0")
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("replication retry recomputed: %d simulations", n)
	}
}

// TestForwardTimeoutBoundsExchanges: the per-forward timeout turns an
// unbounded stall into a classified timeout failure instead of pinning
// the request forever (the old default Client had no timeout at all).
func TestForwardTimeoutBoundsExchanges(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 1, sims, time.Millisecond)
	co, _, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.ForwardTimeout = 100 * time.Millisecond
		c.HedgeDelay = -1 // isolate the timeout path
	})
	ft.SetSpec(faultinject.NetSpec{Partition: faultinject.PartitionBlackhole})

	m, _ := co.Member(nodes[0].name)
	start := time.Now()
	_, err := co.forward(context.Background(), m, http.MethodGet, "/healthz", nil, nil)
	if err == nil {
		t.Fatal("forward through a black hole succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("forward took %v, want ~100ms bound", d)
	}
	if !timeoutClass(err) {
		t.Errorf("black-holed forward error %v not classified as timeout", err)
	}
	c := co // the strike for it lands via failMember, as callers do
	c.failMember(context.Background(), m, err)
	if s := m.snapshot(); s.TimeoutStrikes != 1 {
		t.Errorf("timeout strikes = %d, want 1", s.TimeoutStrikes)
	}
	if got := co.Metrics().ForwardTimeouts; got != 1 {
		t.Errorf("forward_timeouts = %d, want 1", got)
	}
}

// TestDefaultClientHasTimeout guards the config default directly: a
// coordinator built without an explicit Client must not get an
// unbounded one.
func TestDefaultClientHasTimeout(t *testing.T) {
	cfg := Config{Members: []MemberSpec{{Name: "a", URL: "http://127.0.0.1:1"}}}.withDefaults()
	if cfg.Client.Timeout <= 0 {
		t.Fatalf("default Client.Timeout = %v, want > 0", cfg.Client.Timeout)
	}
	if cfg.Client.Timeout != cfg.ForwardTimeout {
		t.Errorf("default Client.Timeout = %v, want ForwardTimeout %v",
			cfg.Client.Timeout, cfg.ForwardTimeout)
	}
	if cfg.DeadAfterTimeout != cfg.DeadAfter+1 {
		t.Errorf("DeadAfterTimeout = %d, want DeadAfter+1 = %d",
			cfg.DeadAfterTimeout, cfg.DeadAfter+1)
	}
}
