package cachesim

import (
	"fmt"
	"math"
)

// SetSample configures deterministic set sampling: the cache simulates
// only the LLC sets whose hashed index falls in a 1-in-Ratio bucket and
// skips every access to the rest, scaling counters back up at read-out.
// Selection hashes (Seed, set index) only, so whether a given set index
// is sampled does not depend on the cache geometry: the same seed and
// ratio pick the same indices out of an 8 MB and a 16 MB LLC.
type SetSample struct {
	// Ratio samples one set in Ratio. Values <= 1 disable sampling.
	Ratio int
	// Seed perturbs the selection hash; runs with the same seed and
	// ratio are bit-identical.
	Seed uint64
}

// Enabled reports whether the configuration actually samples.
func (s SetSample) Enabled() bool { return s.Ratio > 1 }

// Selected reports whether set index `set` is in the sampled subset.
func (s SetSample) Selected(set int) bool {
	return sampleHash(s.Seed, set)%uint64(s.Ratio) == 0
}

// sampleHash is the splitmix64 finalizer over seed^set: cheap, well
// mixed, and stable across builds (no map iteration, no FNV tables).
func sampleHash(seed uint64, set int) uint64 {
	z := seed ^ uint64(set)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSampled constructs a cache that simulates only the sampled subset
// of the geometry's sets. Storage, policy state, and observer indices
// are all in compact sampled-set space: Sets() returns the sampled
// count, so trackers and policies size themselves to the subset and
// memory shrinks proportionally. Addresses still map to sets through
// the full geometry, so a sampled cache sees exactly the accesses the
// corresponding full cache would route to those sets.
func NewSampled(geom Geometry, policy Policy, s SetSample) *Cache {
	if !s.Enabled() {
		return New(geom, policy)
	}
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	total := geom.Sets()
	m := make([]int32, total)
	n := 0
	// Track the minimal-hash set as a deterministic fallback: a ratio
	// larger than the set count can select nothing.
	best, bestH := 0, uint64(math.MaxUint64)
	for i := range m {
		h := sampleHash(s.Seed, i)
		if h%uint64(s.Ratio) == 0 {
			m[i] = int32(n)
			n++
		} else {
			m[i] = -1
			if h < bestH {
				best, bestH = i, h
			}
		}
	}
	if n == 0 {
		m[best] = 0
		n = 1
	}
	c := &Cache{
		geom:      geom,
		sets:      n,
		indexSets: total,
		ways:      geom.Ways,
		policy:    policy,
		sample:    s,
		sampleMap: m,
		setAcc:    make([]int64, n),
	}
	for 1<<c.blockShift < geom.BlockSize {
		c.blockShift++
	}
	if 1<<c.blockShift != geom.BlockSize {
		panic(fmt.Sprintf("cachesim: block size %d is not a power of two", geom.BlockSize))
	}
	c.blocks = make([]block, c.sets*c.ways)
	policy.Reset(c.sets, c.ways)
	return c
}

// Sampled reports whether the cache is set-sampled.
func (c *Cache) Sampled() bool { return c.sampleMap != nil }

// SampleFactor returns the counter scale factor totalSets/sampledSets
// (1 for an unsampled cache). Multiplying any additive counter by it
// extrapolates the sampled measurement to the full cache.
func (c *Cache) SampleFactor() float64 {
	if c.sampleMap == nil {
		return 1
	}
	return float64(c.indexSets) / float64(c.sets)
}

// SampleReport summarizes a sampled run: how many sets were simulated,
// the scale factor, and the estimated relative standard error of the
// scaled access count under the simple-random-sampling model,
//
//	RSE = sqrt((1-f)/n) * s/mean
//
// over the per-sampled-set access counts (f = sampling fraction,
// n = sampled sets, s = sample standard deviation). Zero when sampling
// is off or the estimate is undefined (n < 2 or no accesses).
type SampleReport struct {
	TotalSets   int     `json:"total_sets"`
	SampledSets int     `json:"sampled_sets"`
	Factor      float64 `json:"factor"`
	RSE         float64 `json:"rse"`
}

// SampleReport computes the report for the accesses replayed so far.
func (c *Cache) SampleReport() SampleReport {
	if c.sampleMap == nil {
		return SampleReport{TotalSets: c.sets, SampledSets: c.sets, Factor: 1}
	}
	r := SampleReport{TotalSets: c.indexSets, SampledSets: c.sets, Factor: c.SampleFactor()}
	n := float64(len(c.setAcc))
	if n < 2 {
		return r
	}
	var sum float64
	for _, v := range c.setAcc {
		sum += float64(v)
	}
	mean := sum / n
	if mean == 0 {
		return r
	}
	var ss float64
	for _, v := range c.setAcc {
		d := float64(v) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	f := n / float64(c.indexSets)
	r.RSE = math.Sqrt((1-f)/n) * sd / mean
	return r
}
