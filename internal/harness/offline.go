package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/telemetry"
	"gspc/internal/workload"
)

// poolSynths counts trace acquisitions by forEachFrame worker pools;
// tests read it (after the pool is joined) to assert that an early
// return stops the workers instead of letting them acquire every
// remaining frame for a consumer that is gone.
var poolSynths atomic.Int64

// frameTrace pairs an acquired frame trace with its sampling plan (nil
// on exact-fidelity runs) for the worker-pool handoff.
type frameTrace struct {
	tr   *stream.Trace
	plan *samplePlan
}

// forEachFrame acquires each selected frame's packed LLC trace — from
// the shared frame-trace cache, synthesizing on a miss — and hands it to
// fn along with the run's sampling plan for that frame (nil for exact
// fidelity). Acquisition runs on a small worker pool; fn itself is
// called serially in suite order (experiment accumulators need no
// locking), so results are identical to a sequential run. Traces are
// shared with the cache and other runs: fn must treat them as read-only.
//
// The run's context is checked before each frame is acquired and again
// before fn runs; the first fn error (typically a cancellation surfaced
// by the per-access polls in cachesim.ReplaySource) stops the sweep.
// The pool works under a local context cancelled on every return — even
// when fn fails while the caller's context is still live — so workers
// never keep synthesizing for a consumer that is gone: they send nil
// placeholders into the buffered channels and exit, and forEachFrame
// joins them before returning, stranding no goroutine. A worker's
// cancelled cache lookup likewise yields a nil placeholder; the consumer
// translates any nil into the context's error.
func forEachFrame(o Options, fn func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error) error {
	o = o.normalized()
	ctx, cancel := context.WithCancel(o.ctx())
	defer cancel()
	jobs := o.Jobs()
	workers := o.replayWorkers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			tr, plan, err := acquireFrame(ctx, o, j)
			if err != nil {
				return err
			}
			sp := telemetry.StartFrom(ctx, j.ID(), "frame")
			err = fn(j, tr, plan)
			sp.End()
			if err != nil {
				return err
			}
			o.progressf("  %s: %d LLC accesses\n", j.ID(), tr.Len())
		}
		return nil
	}

	traces := make([]chan frameTrace, len(jobs))
	for i := range traces {
		traces[i] = make(chan frameTrace, 1)
	}
	var next int64 = -1
	var wg sync.WaitGroup
	// Cancel before joining: the workers drain the remaining indices with
	// nil placeholder sends (never blocking — each buffered channel takes
	// exactly one send), so the join is prompt and bounded by at most one
	// in-flight synthesis per worker.
	defer func() {
		cancel()
		wg.Wait()
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				if ctx.Err() != nil {
					traces[i] <- frameTrace{} // cancelled: unblock the consumer cheaply
					continue
				}
				poolSynths.Add(1)
				tr, plan, err := acquireFrame(ctx, o, jobs[i])
				if err != nil {
					tr, plan = nil, nil
				}
				traces[i] <- frameTrace{tr: tr, plan: plan}
			}
		}()
	}
	for i, j := range jobs {
		ft := <-traces[i]
		if err := ctx.Err(); err != nil {
			return err
		}
		if ft.tr == nil {
			// The worker's acquisition failed without the run context
			// dying first (e.g. a cancellation race); surface whichever
			// error the context now carries.
			if err := ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("harness: trace acquisition failed for %s", j.ID())
		}
		sp := telemetry.StartFrom(ctx, j.ID(), "frame")
		err := fn(j, ft.tr, ft.plan)
		sp.End()
		if err != nil {
			return err
		}
		o.progressf("  %s: %d LLC accesses\n", j.ID(), ft.tr.Len())
	}
	return nil
}

// RunTable1 reproduces Table 1: the application suite.
func RunTable1(o Options) (*Table, error) {
	t := &Table{
		Title:   "Table 1: DirectX applications (DirectX version, width, height, frames in suite)",
		Columns: []string{"DirectX", "Width", "Height", "Frames"},
	}
	for _, p := range workload.Profiles() {
		t.AddRow(p.Abbrev, float64(p.DirectX), float64(p.Width), float64(p.Height), float64(p.Frames))
	}
	t.Notes = append(t.Notes, "52 frames total, three resolutions, DirectX 10 and 11, as in the paper")
	return t, nil
}

// RunTable6 reproduces Table 6: the evaluated policy registry.
func RunTable6(o Options) (*Table, error) {
	t := &Table{Title: "Table 6: evaluated policies (see internal/policy and internal/core)"}
	t.Columns = []string{"statebits"}
	for _, e := range []struct {
		name string
		bits float64
	}{
		{"DRRIP (dynamic re-reference interval prediction)", 2},
		{"NRU (single-bit not-recently-used)", 1},
		{"SHiP-mem (memory signature-based hit prediction)", 3},
		{"GS-DRRIP (graphics stream-aware DRRIP)", 2},
		{"GSPZTC (probabilistic Z and texture caching)", 4},
		{"GSPZTC+TSE (adds texture sampler epochs)", 4},
		{"GSPC (graphics stream-aware probabilistic caching)", 4},
		{"GSPC+UCD (GSPC, uncached displayable color)", 4},
		{"DRRIP+UCD (DRRIP, uncached displayable color)", 2},
	} {
		t.AddRow(e.name, e.bits)
	}
	return t, nil
}

// RunFig1 reproduces Figure 1: NRU and Belady's optimal LLC miss counts
// normalized to two-bit DRRIP on the 8 MB LLC.
func RunFig1(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	missD := map[string]int64{}
	missN := map[string]int64{}
	missO := map[string]int64{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		ab := j.App.Abbrev
		var rs [3]frameResult
		err := fanOut(o.ctx(), o.replayWorkers(), 3, func(ctx context.Context, i int) error {
			var err error
			switch i {
			case 0:
				rs[0], err = runOffline(ctx, tr, specDRRIP(), geom, plan)
			case 1:
				rs[1], err = runOffline(ctx, tr, specNRU(), geom, plan)
			case 2:
				rs[2], err = runBelady(ctx, tr, geom, plan)
			}
			return err
		})
		if err != nil {
			return err
		}
		missD[ab] += rs[0].stats.Misses
		missN[ab] += rs[1].stats.Misses
		missO[ab] += rs[2].stats.Misses
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 1: LLC misses normalized to DRRIP (LLC %s)", geom),
		Columns: []string{"NRU", "Belady"},
	}
	order := appOrder(o.Jobs())
	rn, ro := map[string]float64{}, map[string]float64{}
	for _, ab := range order {
		rn[ab] = float64(missN[ab]) / float64(missD[ab])
		ro[ab] = float64(missO[ab]) / float64(missD[ab])
		t.AddRow(ab, rn[ab], ro[ab])
	}
	t.AddRow("MEAN", meanOf(rn, order), meanOf(ro, order))
	t.Notes = append(t.Notes, "paper: NRU 1.062, Belady 0.634 on average")
	return t, nil
}

// RunFig4 reproduces Figure 4: the stream-wise distribution of LLC
// accesses.
func RunFig4(o Options) (*Table, error) {
	mix := map[string][stream.NumKinds]int64{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		// Sampled runs scan only the measured window — the distribution is
		// reported in percent, so the extrapolation factor cancels.
		lo := 0
		if plan != nil {
			lo = plan.measStart
		}
		m := mix[j.App.Abbrev]
		for i, n := lo, tr.Len(); i < n; i++ {
			m[tr.KindAt(i)]++
		}
		mix[j.App.Abbrev] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 4: stream-wise distribution of LLC accesses (percent)"}
	for _, k := range stream.Kinds() {
		t.Columns = append(t.Columns, k.String())
	}
	order := appOrder(o.Jobs())
	var totals [stream.NumKinds]float64
	for _, ab := range order {
		m := mix[ab]
		var tot int64
		for _, v := range m {
			tot += v
		}
		vals := make([]float64, stream.NumKinds)
		for k, v := range m {
			vals[k] = 100 * float64(v) / float64(tot)
			totals[k] += vals[k]
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, stream.NumKinds)
	for k := range means {
		means[k] = totals[k] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes, "paper averages: rt 40, texture 34, z >=10, hiz 7, vertex 4, rest ~5")
	return t, nil
}

// RunFig5 reproduces Figure 5: texture sampler, render target, and Z hit
// rates under Belady, DRRIP, and NRU.
func RunFig5(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	type acc struct{ hit, tot [3][3]int64 } // [policy][stream]
	per := map[string]*acc{}
	kinds := []stream.Kind{stream.Texture, stream.RT, stream.Z}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := per[j.App.Abbrev]
		if a == nil {
			a = &acc{}
			per[j.App.Abbrev] = a
		}
		results, err := runBDN(o, tr, geom, plan)
		if err != nil {
			return err
		}
		for pi, r := range results {
			for si, k := range kinds {
				a.hit[pi][si] += r.tracker.KindHits(k)
				a.tot[pi][si] += r.tracker.KindAccesses(k)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 5: per-stream hit rates, percent (LLC %s)", geom),
		Columns: []string{
			"tex/Bel", "tex/DRRIP", "tex/NRU",
			"rt/Bel", "rt/DRRIP", "rt/NRU",
			"z/Bel", "z/DRRIP", "z/NRU",
		},
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, 9)
	for _, ab := range order {
		a := per[ab]
		vals := make([]float64, 9)
		for si := 0; si < 3; si++ {
			for pi := 0; pi < 3; pi++ {
				v := 0.0
				if a.tot[pi][si] > 0 {
					v = 100 * float64(a.hit[pi][si]) / float64(a.tot[pi][si])
				}
				vals[si*3+pi] = v
				sums[si*3+pi] += v
			}
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, 9)
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes,
		"paper averages: texture 53.4/22.0/18.4, rt 59.8/50.1/41.5, z 77.1/~58/~58 (Belady/DRRIP/NRU)")
	return t, nil
}

// RunFig6 reproduces Figure 6: the split of texture sampler hits into
// inter- and intra-stream reuse (normalized to Belady's hits) and the
// fraction of render target blocks consumed by the samplers.
func RunFig6(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	type acc struct {
		inter, intra [3]int64
		prod, cons   [3]int64
	}
	per := map[string]*acc{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := per[j.App.Abbrev]
		if a == nil {
			a = &acc{}
			per[j.App.Abbrev] = a
		}
		results, err := runBDN(o, tr, geom, plan)
		if err != nil {
			return err
		}
		for pi, r := range results {
			a.inter[pi] += r.tracker.InterTexHits
			a.intra[pi] += r.tracker.IntraTexHits
			a.prod[pi] += r.tracker.RTProduced
			a.cons[pi] += r.tracker.RTConsumed
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 6: texture reuse split (%% of Belady hits) and RT consumption %% (LLC %s)", geom),
		Columns: []string{
			"inter/Bel", "intra/Bel", "inter/DRRIP", "intra/DRRIP", "inter/NRU", "intra/NRU",
			"cons/Bel", "cons/DRRIP", "cons/NRU",
		},
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, 9)
	for _, ab := range order {
		a := per[ab]
		optHits := float64(a.inter[0] + a.intra[0])
		if optHits == 0 {
			optHits = 1
		}
		vals := []float64{
			100 * float64(a.inter[0]) / optHits, 100 * float64(a.intra[0]) / optHits,
			100 * float64(a.inter[1]) / optHits, 100 * float64(a.intra[1]) / optHits,
			100 * float64(a.inter[2]) / optHits, 100 * float64(a.intra[2]) / optHits,
			ratioPct(a.cons[0], a.prod[0]), ratioPct(a.cons[1], a.prod[1]), ratioPct(a.cons[2], a.prod[2]),
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(sums))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes,
		"paper: 55% of Belady's texture hits are inter-stream; RT consumption 51/16/13% (Belady/DRRIP/NRU)")
	return t, nil
}

// RunFig7 reproduces Figure 7: the epoch-wise distribution of
// intra-stream texture hits and per-epoch death ratios under Belady.
func RunFig7(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	type acc struct {
		hits    [4]int64
		entries [5]int64
	}
	per := map[string]*acc{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := per[j.App.Abbrev]
		if a == nil {
			a = &acc{}
			per[j.App.Abbrev] = a
		}
		r, err := runBelady(o.ctx(), tr, geom, plan)
		if err != nil {
			return err
		}
		for e := 0; e < 4; e++ {
			a.hits[e] += r.tracker.TexEpochHits[e]
		}
		for e := 0; e < 5; e++ {
			a.entries[e] += r.tracker.TexEntries[e]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 7: texture epochs under Belady (LLC %s)", geom),
		Columns: []string{
			"hit%E0", "hit%E1", "hit%E2", "hit%E3+",
			"death E0", "death E1", "death E2",
		},
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, 7)
	for _, ab := range order {
		a := per[ab]
		var totHits int64
		for _, h := range a.hits {
			totHits += h
		}
		if totHits == 0 {
			totHits = 1
		}
		vals := []float64{
			100 * float64(a.hits[0]) / float64(totHits),
			100 * float64(a.hits[1]) / float64(totHits),
			100 * float64(a.hits[2]) / float64(totHits),
			100 * float64(a.hits[3]) / float64(totHits),
			death(a.entries[:], 0), death(a.entries[:], 1), death(a.entries[:], 2),
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(sums))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes, "paper: hits 79/15/4/2%, death ratios 0.81/0.73/0.53")
	return t, nil
}

func death(entries []int64, k int) float64 {
	if entries[k] == 0 {
		return 0
	}
	return float64(entries[k]-entries[k+1]) / float64(entries[k])
}

// RunFig8 reproduces Figure 8: the percentage of render target and
// texture fills inserted with RRPV=3 by two-bit DRRIP.
func RunFig8(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	type acc struct{ rtF, rtD, txF, txD int64 }
	per := map[string]*acc{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := per[j.App.Abbrev]
		if a == nil {
			a = &acc{}
			per[j.App.Abbrev] = a
		}
		r, err := runOffline(o.ctx(), tr, specDRRIP(), geom, plan)
		if err != nil {
			return err
		}
		a.rtF += r.drrip.fills[stream.RT] + r.drrip.fills[stream.Display]
		a.rtD += r.drrip.distant[stream.RT] + r.drrip.distant[stream.Display]
		a.txF += r.drrip.fills[stream.Texture]
		a.txD += r.drrip.distant[stream.Texture]
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 8: %% of fills with RRPV=3 under DRRIP (LLC %s)", geom),
		Columns: []string{"RT", "texture"},
	}
	order := appOrder(o.Jobs())
	rt, tx := map[string]float64{}, map[string]float64{}
	for _, ab := range order {
		a := per[ab]
		rt[ab] = ratioPct(a.rtD, a.rtF)
		tx[ab] = ratioPct(a.txD, a.txF)
		t.AddRow(ab, rt[ab], tx[ab])
	}
	t.AddRow("MEAN", meanOf(rt, order), meanOf(tx, order))
	t.Notes = append(t.Notes, "paper averages: RT ~25%, texture ~36%")
	return t, nil
}

// RunFig9 reproduces Figure 9: Z stream epoch death ratios under Belady.
func RunFig9(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	per := map[string]*[5]int64{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := per[j.App.Abbrev]
		if a == nil {
			a = &[5]int64{}
			per[j.App.Abbrev] = a
		}
		r, err := runBelady(o.ctx(), tr, geom, plan)
		if err != nil {
			return err
		}
		for e := 0; e < 5; e++ {
			a[e] += r.tracker.ZEntries[e]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 9: Z epoch death ratios under Belady (LLC %s)", geom),
		Columns: []string{"death E0", "death E1", "death E2"},
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, 3)
	for _, ab := range order {
		a := per[ab]
		vals := []float64{death(a[:], 0), death(a[:], 1), death(a[:], 2)}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	t.AddRow("MEAN", sums[0]/float64(len(order)), sums[1]/float64(len(order)), sums[2]/float64(len(order)))
	t.Notes = append(t.Notes, "paper: 0.61/0.38/0.26 — declining, unlike the texture stream")
	return t, nil
}

// RunFig11 reproduces Figure 11: GSPZTC's sensitivity to the threshold
// parameter t, reported as percent change in LLC misses relative to t=16.
func RunFig11(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	ts := []int{2, 4, 8, 16}
	miss := map[string][]int64{}
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		a := miss[j.App.Abbrev]
		if a == nil {
			a = make([]int64, len(ts))
		}
		rs := make([]frameResult, len(ts))
		err := fanOut(o.ctx(), o.replayWorkers(), len(ts), func(ctx context.Context, i int) error {
			var err error
			rs[i], err = runOffline(ctx, tr, specGSPC(core.VariantGSPZTC, ts[i], false), geom, plan)
			return err
		})
		if err != nil {
			return err
		}
		for i := range ts {
			a[i] += rs[i].stats.Misses
		}
		miss[j.App.Abbrev] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 11: GSPZTC misses, %% change vs t=16 (LLC %s)", geom),
		Columns: []string{"t=2", "t=4", "t=8"},
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, 3)
	for _, ab := range order {
		a := miss[ab]
		base := float64(a[3])
		vals := []float64{
			100 * (float64(a[0]) - base) / base,
			100 * (float64(a[1]) - base) / base,
			100 * (float64(a[2]) - base) / base,
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	t.AddRow("MEAN", sums[0]/float64(len(order)), sums[1]/float64(len(order)), sums[2]/float64(len(order)))
	t.Notes = append(t.Notes, "paper: near-flat on average; t=8 the most robust")
	return t, nil
}

// fig12Specs returns the eight policies of Figure 12 in plot order.
func fig12Specs() []policySpec {
	return []policySpec{
		specNRU(),
		{name: "SHiP-mem", make: func() cachesim.Policy { return policy.NewSHiPMem(4) }},
		{name: "GS-DRRIP", make: func() cachesim.Policy { return policy.NewGSDRRIP(2) }},
		specGSPC(core.VariantGSPZTC, 8, false),
		specGSPC(core.VariantGSPZTCTSE, 8, false),
		specGSPC(core.VariantGSPC, 8, false),
		specGSPC(core.VariantGSPC, 8, true),
		{name: "DRRIP+UCD", ucd: true, make: func() cachesim.Policy { return policy.NewDRRIP(2) }},
	}
}

// RunFig12 reproduces Figure 12: LLC miss counts for all evaluated
// policies normalized to two-bit DRRIP.
func RunFig12(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	specs := fig12Specs()
	missD, miss, err := missSweep(o, geom, specs)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Figure 12: LLC misses normalized to DRRIP (LLC %s)", geom)}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.name)
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, len(specs))
	for _, ab := range order {
		vals := make([]float64, len(specs))
		for i := range specs {
			vals[i] = float64(miss[ab][i]) / float64(missD[ab])
			sums[i] += vals[i]
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(specs))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes,
		"paper means: NRU 1.062, SHiP-mem ~1.0, GS-DRRIP 0.971, GSPZTC 0.952, GSPZTC+TSE 0.885, GSPC ~0.88, GSPC+UCD 0.869, DRRIP+UCD ~1.0")
	return t, nil
}

// RunFig13 reproduces Figure 13: suite-average texture hit rate, RT
// consumption rate, RT (blending) hit rate, and Z hit rate per policy.
func RunFig13(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	specs := []policySpec{
		specDRRIP(),
		{name: "GS-DRRIP", make: func() cachesim.Policy { return policy.NewGSDRRIP(2) }},
		specGSPC(core.VariantGSPZTC, 8, false),
		specGSPC(core.VariantGSPZTCTSE, 8, false),
		specGSPC(core.VariantGSPC, 8, false),
		specGSPC(core.VariantGSPC, 8, true),
	}
	accs := make([]fig13Acc, len(specs)+1) // +1 for Belady
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		rs := make([]frameResult, len(specs)+1)
		err := fanOut(o.ctx(), o.replayWorkers(), len(specs)+1, func(ctx context.Context, i int) error {
			var err error
			if i == len(specs) {
				rs[i], err = runBelady(ctx, tr, geom, plan)
			} else {
				rs[i], err = runOffline(ctx, tr, specs[i], geom, plan)
			}
			return err
		})
		if err != nil {
			return err
		}
		for i := range rs {
			collect13(&accs[i], rs[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 13: suite-average stream metrics, percent (LLC %s)", geom),
		Columns: []string{"tex hit", "rt->tex cons", "rt read hit", "z hit"},
	}
	for i := range specs {
		a := &accs[i]
		t.AddRow(specs[i].name,
			ratioPct(a.texHit, a.texTot), ratioPct(a.cons, a.prod),
			ratioPct(a.rtHit, a.rtTot), ratioPct(a.zHit, a.zTot))
	}
	a := &accs[len(specs)]
	t.AddRow("Belady",
		ratioPct(a.texHit, a.texTot), ratioPct(a.cons, a.prod),
		ratioPct(a.rtHit, a.rtTot), ratioPct(a.zHit, a.zTot))
	t.Notes = append(t.Notes,
		"paper: metrics rise monotonically along GSPZTC -> GSPZTC+TSE; GSPC trades a little consumption for fewer misses; GS-DRRIP has the best z hit rate; GSPC rt hit 57.7 vs Belady 59.8")
	return t, nil
}

// fig13Acc accumulates the four Figure 13 metrics for one policy.
type fig13Acc struct {
	texHit, texTot int64
	cons, prod     int64
	rtHit, rtTot   int64
	zHit, zTot     int64
}

func collect13(a *fig13Acc, r frameResult) {
	a.texHit += r.tracker.KindHits(stream.Texture)
	a.texTot += r.tracker.KindAccesses(stream.Texture)
	a.cons += r.tracker.RTConsumed
	a.prod += r.tracker.RTProduced
	a.rtHit += r.tracker.ReadHits[stream.RT]
	a.rtTot += r.tracker.ReadAccesses[stream.RT]
	a.zHit += r.tracker.KindHits(stream.Z)
	a.zTot += r.tracker.KindAccesses(stream.Z)
}

// RunFig14 reproduces Figure 14: policies with identical replacement
// state overhead (four bits per block) normalized to two-bit DRRIP.
func RunFig14(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	specs := []policySpec{
		{name: "LRU", make: func() cachesim.Policy { return policy.NewLRU() }},
		{name: "DRRIP-4", make: func() cachesim.Policy { return policy.NewDRRIP(4) }},
		{name: "GS-DRRIP-4", make: func() cachesim.Policy { return policy.NewGSDRRIP(4) }},
		specGSPC(core.VariantGSPC, 8, true),
	}
	missD, miss, err := missSweep(o, geom, specs)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Figure 14: iso-overhead policies vs 2-bit DRRIP (LLC %s)", geom)}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.name)
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, len(specs))
	for _, ab := range order {
		vals := make([]float64, len(specs))
		for i := range specs {
			vals[i] = float64(miss[ab][i]) / float64(missD[ab])
			sums[i] += vals[i]
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(specs))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes, "paper means: LRU 1.072, DRRIP-4 0.996, GS-DRRIP-4 0.983, GSPC 0.882")
	return t, nil
}

// missSweep replays every selected frame under the DRRIP baseline and
// each spec, accumulating per-app miss counts. It is the shared first
// half of every normalized-miss figure. Each frame's replays — the
// baseline plus every spec, all over the one shared packed trace — fan
// out across the options' worker budget, and the sweep stops at the
// first cancellation surfaced by the replay loops.
func missSweep(o Options, geom cachesim.Geometry, specs []policySpec) (missD map[string]int64, miss map[string][]int64, err error) {
	missD = map[string]int64{}
	miss = map[string][]int64{}
	err = forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		ab := j.App.Abbrev
		rs := make([]frameResult, len(specs)+1)
		err := fanOut(o.ctx(), o.replayWorkers(), len(specs)+1, func(ctx context.Context, i int) error {
			var err error
			if i == 0 {
				rs[0], err = runOffline(ctx, tr, specDRRIP(), geom, plan)
			} else {
				rs[i], err = runOffline(ctx, tr, specs[i-1], geom, plan)
			}
			return err
		})
		if err != nil {
			return err
		}
		missD[ab] += rs[0].stats.Misses
		a := miss[ab]
		if a == nil {
			a = make([]int64, len(specs))
		}
		for i := range specs {
			a[i] += rs[i+1].stats.Misses
		}
		miss[ab] = a
		return nil
	})
	return missD, miss, err
}

func ratioPct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
