package telemetry

import (
	"sync"
	"time"
)

// OffsetEstimator estimates the clock offset of one remote node from
// request-time timestamp echoes, NTP-style. Each exchange yields four
// timestamps:
//
//	t0  local send       (coordinator clock)
//	t1  remote receive   (member clock, echoed in X-Gspc-Recv-Ns)
//	t2  remote send      (member clock, echoed in X-Gspc-Sent-Ns)
//	t3  local receive    (coordinator clock)
//
// offset θ = ((t1−t0)+(t2−t3))/2 estimates remote−local; its error is
// bounded by half the round-trip delay δ = (t3−t0)−(t2−t1), with the
// bound tight only when the network is symmetric. Smoothing therefore
// keeps a sliding window of recent samples and reports the offset of
// the minimum-delay sample: low-delay exchanges bound the asymmetry
// error most tightly, and a window (rather than an all-time minimum)
// lets the estimate track drift and step changes.
//
// All methods are safe for concurrent use and nil-safe.
type OffsetEstimator struct {
	mu      sync.Mutex
	window  []offsetSample // ring, oldest overwritten
	next    int
	filled  int
	samples int64
}

type offsetSample struct {
	offset time.Duration
	delay  time.Duration
}

// DefaultOffsetWindow is the sliding-window size used when
// NewOffsetEstimator is given a non-positive capacity. At the cluster's
// default 2s health cadence this spans ~30s of samples — long enough to
// catch a quiet-network exchange, short enough to track drift.
const DefaultOffsetWindow = 16

// NewOffsetEstimator builds an estimator with a sliding window of n
// samples (<= 0 selects DefaultOffsetWindow).
func NewOffsetEstimator(n int) *OffsetEstimator {
	if n <= 0 {
		n = DefaultOffsetWindow
	}
	return &OffsetEstimator{window: make([]offsetSample, n)}
}

// Update folds one timestamp exchange into the window. Exchanges with a
// non-positive delay (clock steps mid-exchange, duplicated echoes) are
// rejected: their error bound is meaningless.
func (o *OffsetEstimator) Update(t0, t1, t2, t3 time.Time) {
	if o == nil {
		return
	}
	delay := t3.Sub(t0) - t2.Sub(t1)
	if delay <= 0 {
		return
	}
	offset := (t1.Sub(t0) + t2.Sub(t3)) / 2
	o.mu.Lock()
	o.window[o.next] = offsetSample{offset: offset, delay: delay}
	o.next = (o.next + 1) % len(o.window)
	if o.filled < len(o.window) {
		o.filled++
	}
	o.samples++
	o.mu.Unlock()
}

// OffsetEstimate is the current best guess of the remote clock offset.
type OffsetEstimate struct {
	// Offset is remote−local: add it to a local timestamp to express it
	// on the remote clock, subtract it from a remote timestamp to bring
	// it onto the local clock.
	Offset time.Duration
	// Delay is the round-trip delay of the sample the estimate came
	// from; the offset error is bounded by Delay/2.
	Delay time.Duration
	// Samples counts exchanges folded in over the estimator's lifetime.
	Samples int64
}

// Estimate returns the minimum-delay sample in the window. The zero
// OffsetEstimate (Samples == 0) means no usable exchange has happened;
// callers should then treat the remote clock as unsynchronized.
func (o *OffsetEstimator) Estimate() OffsetEstimate {
	if o == nil {
		return OffsetEstimate{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.filled == 0 {
		return OffsetEstimate{}
	}
	best := o.window[0]
	for _, s := range o.window[1:o.filled] {
		if s.delay < best.delay {
			best = s
		}
	}
	return OffsetEstimate{Offset: best.offset, Delay: best.delay, Samples: o.samples}
}
