package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gspc/internal/durable"
	"gspc/internal/harness"
	"gspc/internal/membudget"
	"gspc/internal/telemetry"
)

// Engine errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull signals backpressure: the job queue is at capacity
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is returned for submissions after Shutdown began
	// (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Config sizes an Engine. The zero value gets sensible defaults.
type Config struct {
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of concurrent experiment runners. Default
	// GOMAXPROCS.
	Workers int
	// CacheEntries is the result cache capacity (0 disables caching,
	// < 0 means default). Default 128.
	CacheEntries int
	// CachePolicy selects the eviction policy backing the result cache:
	// one of CachePolicyNames. Default "lru".
	CachePolicy string
	// Run overrides the experiment runner (tests, fault injection). The
	// context carries the per-job deadline and must be honored for
	// deadlines to actually stop work. Default: the harness with context
	// threading (harness.RunResultContext).
	Run func(ctx context.Context, r Request) (*harness.Result, error)
	// KeepFinished bounds how many finished jobs stay queryable via
	// JobStatus. Default 1024.
	KeepFinished int

	// JobTimeout bounds one experiment run; a request's TimeoutMS can
	// only tighten it, never extend it. 0 = no engine-wide deadline.
	JobTimeout time.Duration
	// MaxRetries is how many times a retryable (transient) failure is
	// re-attempted before the job fails. Deterministic failures —
	// invalid requests, timeouts, panics — are never retried.
	// Default 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the wait before the first retry; attempt k waits
	// RetryBackoff×2^k with ±50% jitter, capped at maxRetryBackoff and
	// aborted early by shutdown or the job deadline. Default 50ms.
	RetryBackoff time.Duration
	// BreakerThreshold opens an experiment's circuit breaker after this
	// many consecutive failures; while open, submissions for that
	// experiment fast-fail with CircuitOpenError instead of burning a
	// worker. Default 5; negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fast-fails before
	// letting a single probe through (half-open). Default 30s.
	BreakerCooldown time.Duration
	// ServeStale degrades instead of failing: while an experiment's
	// breaker is open, requests for it are answered with the most recent
	// successful result of that experiment (any parameters), flagged
	// stale, rather than rejected.
	ServeStale bool
	// MaxWork is the admission ceiling in frame-equivalents of
	// simulation per request (selected frames × scale²; the full
	// 52-frame suite at the default 0.25 scale is 3.25). Requests above
	// it are rejected with 400 up front instead of burning a worker for
	// minutes. 0 = unlimited.
	MaxWork float64
	// EscalateSampled upgrades sampled answers in the background: when a
	// sampled-fidelity job completes, its exact twin (same request,
	// fidelity "exact") is submitted asynchronously, and once that
	// finishes its result replaces the sampled entry in the cache under
	// the sampled key — callers get the interactive answer now and exact
	// numbers on the next identical request. If the exact twin is
	// already cached the replacement is immediate.
	EscalateSampled bool
	// ReadyHighWater is the queued-job count at which /readyz starts
	// reporting unready (load shedding hint for balancers); admission
	// itself still accepts work until QueueDepth. Default QueueDepth.
	ReadyHighWater int
	// ExposeStacks includes recovered panic stacks in JobStatus wire
	// responses (GET /v1/runs/{id}). Off by default: stacks disclose
	// internal code paths, so they are only logged server-side.
	ExposeStacks bool
	// Logger sinks the engine's structured operational log (job
	// lifecycle failures, recovered panic stacks, journal degradation),
	// with records correlated by run_id and trace_id attributes.
	// Default slog.Default(); tests may pass a discarding handler.
	Logger *slog.Logger

	// TraceEvery samples per-run span tracing: every Nth submitted job
	// is traced (1 = every job, the default when 0). Negative disables
	// tracing entirely. Untraced jobs pay only nil checks at every
	// instrumentation site.
	TraceEvery int
	// TraceMaxSpans bounds one traced job's span storage
	// (0 = telemetry.DefaultMaxSpans). Spans beyond it are counted as
	// dropped, never reallocated.
	TraceMaxSpans int
	// FlightEvents sizes the flight recorder — the ring of recent job
	// lifecycle events served at /debugz (0 = telemetry.DefaultFlightEvents).
	FlightEvents int

	// Governor, when set, is the process-wide memory governor the engine
	// consults on admission and accounts its memory into: the result
	// cache and journal register as byte sources, every admitted job
	// reserves its estimated in-flight trace footprint, and the
	// governor's degradation ladder gates new work (downgrade to sampled
	// fidelity, stale-only, shed). Nil disables memory governance.
	Governor *membudget.Governor
	// MaxRequestBytes rejects requests whose estimated in-flight trace
	// footprint (EstimateRequestBytes) exceeds it, with a 400 — the
	// byte-space sibling of the frame-equivalent MaxWork ceiling.
	// 0 = unlimited.
	MaxRequestBytes int64
	// SLO, when set, receives every completed job's latency keyed by
	// experiment, for p50/p99-target tracking and error-budget burn
	// accounting surfaced in /metricsz and /metrics. Nil disables it.
	SLO *telemetry.SLOTracker

	// DataDir, when non-empty, makes the engine crash-safe: job
	// lifecycle transitions are appended to a write-ahead journal under
	// this directory, the result cache and serve-stale table are
	// snapshotted on compaction, and a new engine recovers all of it on
	// boot — completed runs stay queryable by their original ids,
	// queued jobs are resubmitted, and jobs that were running mid-crash
	// are marked failed-retryable. Empty disables persistence.
	DataDir string
	// Fsync syncs the journal after every append. Off, a crash can
	// lose the most recent transitions (never corrupt the journal).
	Fsync bool
	// SnapshotEvery compacts the journal into a snapshot after this
	// many appends (0 = durable's default, 256; negative disables
	// automatic compaction).
	SnapshotEvery int
	// DurableFS overrides the persistence filesystem (fault
	// injection). Default: the real disk.
	DurableFS durable.FS
}

// maxRetryBackoff caps the exponential retry backoff so large MaxRetries
// values cannot overflow the doubling into a zero or negative wait.
const maxRetryBackoff = 30 * time.Second

// jobLatencyBuckets are the /metrics histogram bounds for completed-job
// duration, in seconds: experiments span milliseconds (cache-warm tiny
// scales) to minutes (full suite), so the buckets run 25ms–300s.
var jobLatencyBuckets = []float64{
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 128
	}
	if c.CachePolicy == "" {
		c.CachePolicy = "lru"
	}
	if c.Run == nil {
		c.Run = func(ctx context.Context, r Request) (*harness.Result, error) {
			return harness.RunResultContext(ctx, r.Experiment, r.Options())
		}
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 1024
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.ReadyHighWater <= 0 || c.ReadyHighWater > c.QueueDepth {
		c.ReadyHighWater = c.QueueDepth
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 1
	}
	return c
}

// Job tracks one queued computation. Fields other than the immutable
// ID/Req/Key are guarded by the engine mutex; readers use JobStatus.
type Job struct {
	ID  string
	Req Request
	Key string

	// Downgraded marks a job whose request was forced from exact to
	// sampled fidelity by the memory governor's ladder at admission.
	// Immutable after creation, like ID/Req/Key.
	Downgraded bool

	done chan struct{}

	// reserved is the in-flight byte estimate held against the memory
	// governor until the job reaches a terminal state; releaseLocked
	// zeroes it, making the release idempotent across exit paths.
	reserved int64

	seq int64 // numeric id (journal sequence; recovery restores the counter past it)

	run *telemetry.Run // per-run span trace; nil when sampled out

	status            Status
	enqueued, started time.Time
	finished          time.Time
	result            *cached
	err               error
	coalesced         int64
	attempts          int
	timeout           time.Duration // effective run deadline (0 = none)
	waiters           int           // Do callers blocked on done
	abandonable       bool          // every interested party is a waiting Do caller
	probe             bool          // the job is its breaker's half-open probe
	// alsoCache lists extra cache keys this job's result is installed
	// under when it completes — the sampled keys an exact escalation job
	// upgrades.
	alsoCache []string
}

// JobStatus is the queryable snapshot of a job (GET /v1/runs/{id}).
type JobStatus struct {
	ID            string          `json:"id"`
	Experiment    string          `json:"experiment"`
	Key           string          `json:"key"`
	TraceID       string          `json:"trace_id,omitempty"`
	Status        Status          `json:"status"`
	Enqueued      time.Time       `json:"enqueued"`
	Started       *time.Time      `json:"started,omitempty"`
	Finished      *time.Time      `json:"finished,omitempty"`
	DurationMs    float64         `json:"duration_ms,omitempty"`
	Coalesced     int64           `json:"coalesced,omitempty"`
	Attempts      int             `json:"attempts,omitempty"`
	Error         string          `json:"error,omitempty"`
	ErrorCategory Category        `json:"error_category,omitempty"`
	ErrorStack    string          `json:"error_stack,omitempty"`
	Result        json.RawMessage `json:"result,omitempty"`
}

// Reply is the outcome of a synchronous request: the exact result bytes
// (identical across cache replays) plus serving metadata that travels in
// headers, never in the body.
type Reply struct {
	Body      []byte
	RunID     string
	Cached    bool
	Coalesced bool
	// Stale marks a degraded answer: the experiment's breaker was open
	// and the body is its most recent successful result rather than a
	// run of the exact requested parameters.
	Stale bool
	// Downgraded marks an answer served at sampled fidelity because the
	// memory governor forced the downgrade on this request at admission
	// (surfaced as the X-Gspc-Fidelity-Downgraded header).
	Downgraded bool
	Duration   time.Duration
}

// Engine owns the queue, the worker pool, the coalescing table, and the
// policy-backed result cache.
type Engine struct {
	cfg   Config
	cache *resultCache
	queue chan *Job
	stop  chan struct{} // closed when Shutdown begins; aborts retry backoffs

	mu       sync.Mutex
	closing  bool
	nextID   int64
	jobs     map[string]*Job
	order    []string // finished job ids, oldest first, for pruning
	inflight map[string]*Job
	breakers map[string]*breaker // per-experiment circuit breakers
	lastGood map[string]*cached  // last successful result per experiment (serve-stale)

	wg    sync.WaitGroup
	start time.Time

	// Observability: the flight recorder ring (/debugz), the per-engine
	// stage-clock scope threaded into every run context, and the job
	// latency histogram backing /metrics. traceSeq (guarded by mu)
	// drives TraceEvery sampling.
	flight   *telemetry.Flight
	stages   *harness.StageSet
	latHist  *telemetry.Histogram
	traceSeq int64

	// store persists job lifecycle + results when Config.DataDir is
	// set; nil otherwise. recovery tallies what boot restored.
	store    *durable.Store
	recovery recoveryStats

	// counters, guarded by mu
	requests, rejected, coalesced int64
	completed, failed             int64
	cancelled, retries, panics    int64
	timeouts, breakerTrips        int64
	breakerFastFails, staleServed int64
	journalErrors                 int64
	replicasInstalled             int64
	sampledJobs                   int64
	escalations, escalationHits   int64
	lastSampledErr                float64 // EstRelErr of the latest sampled job
	// Memory-ladder serving counters: requests shed outright, exact
	// requests downgraded to sampled fidelity, stale answers served
	// because of the stale-only rung (disjoint from staleServed, the
	// breaker-driven stale counter), and background escalations skipped
	// under pressure.
	memShed, memDowngrades        int64
	memStaleServed, memEscSkipped int64
	lat                           latencies
}

// NewEngine builds and starts an engine; callers must Shutdown it.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	cache, err := newResultCache(cfg.CacheEntries, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		cache:    cache,
		queue:    make(chan *Job, cfg.QueueDepth),
		stop:     make(chan struct{}),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
		breakers: map[string]*breaker{},
		lastGood: map[string]*cached{},
		start:    time.Now(),
		flight:   telemetry.NewFlight(cfg.FlightEvents),
		stages:   harness.NewStageSet(),
		latHist:  telemetry.NewHistogram(jobLatencyBuckets...),
	}
	if cfg.DataDir != "" {
		// Recovery must finish before any worker can observe (or race
		// with) the restored queue.
		if err := e.openDurable(); err != nil {
			return nil, err
		}
	}
	if g := cfg.Governor; g != nil {
		// Account this engine's memory into the governor. Registration is
		// idempotent by name, so rebuilding an engine over the same
		// governor (recovery, tests) re-points the gauges.
		g.RegisterSource("result-cache", e.cache.Bytes)
		if e.store != nil {
			g.RegisterSource("journal", func() int64 { return e.store.Stats().JournalBytes })
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// Do serves one request synchronously: a cache hit returns immediately,
// otherwise the request is enqueued (coalescing onto an identical
// in-flight job if one exists) and Do blocks until the job finishes or
// ctx is done. A running job keeps running if ctx expires first — a
// later identical request will find its result in the cache — but a job
// still queued whose every waiting caller has left is cancelled in
// place instead of burning a worker for nobody.
func (e *Engine) Do(ctx context.Context, req Request) (*Reply, error) {
	return e.DoTraced(ctx, req, TraceHint{})
}

// TraceHint carries a distributed-trace identity inherited from an
// upstream hop (the gspc-cluster coordinator). When TraceID is set and
// tracing is not disabled, the job adopts it — and records ParentSpan —
// instead of minting a fresh id, so the coordinator can stitch the
// member's spans under its own forward attempt. A zero TraceHint is
// exactly the untraced-upstream behavior.
type TraceHint struct {
	TraceID    string
	ParentSpan string
}

// DoTraced is Do with an inherited trace identity.
func (e *Engine) DoTraced(ctx context.Context, req Request, hint TraceHint) (*Reply, error) {
	job, rep, downgraded, err := e.submit(req, true, hint)
	if err != nil {
		return nil, err
	}
	if rep != nil {
		rep.Downgraded = downgraded
		return rep, nil
	}
	select {
	case <-job.done:
		rep, err := e.replyFor(job)
		if rep != nil {
			rep.Downgraded = downgraded
		}
		return rep, err
	case <-ctx.Done():
		e.abandon(job)
		return nil, ctx.Err()
	}
}

// Submit validates and enqueues a request. Exactly one of the returns is
// meaningful: a Reply for a cache hit (no job), otherwise the queued or
// coalesced-onto Job whose done channel the caller may wait on. Jobs
// submitted through Submit are never auto-cancelled: some poller is
// assumed to want the result. A governor-forced fidelity downgrade shows
// on the Reply (cache hit) or the Job (Downgraded, when this submission
// created it).
func (e *Engine) Submit(req Request) (*Job, *Reply, error) {
	return e.SubmitTraced(req, TraceHint{})
}

// SubmitTraced is Submit with an inherited trace identity.
func (e *Engine) SubmitTraced(req Request, hint TraceHint) (*Job, *Reply, error) {
	job, rep, downgraded, err := e.submit(req, false, hint)
	if rep != nil {
		rep.Downgraded = downgraded
	}
	return job, rep, err
}

// submit runs admission: normalization, work/byte ceilings, the memory
// ladder, cache lookup, coalescing, backpressure, and the breaker, in
// that order. The returned bool reports whether THIS submission was
// downgraded to sampled fidelity by the ladder (a coalesced caller may
// land on a job some earlier downgraded submission created).
func (e *Engine) submit(req Request, sync bool, hint TraceHint) (*Job, *Reply, bool, error) {
	req, err := req.Normalize()
	if err != nil {
		return nil, nil, false, err
	}
	if err := e.admitWork(req); err != nil {
		return nil, nil, false, err
	}
	key := req.Key()
	rung := membudget.RungHealthy
	if e.cfg.Governor != nil {
		rung = e.cfg.Governor.Rung()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.requests++
	if e.closing {
		return nil, nil, false, ErrShuttingDown
	}
	if v, ok := e.cache.Get(key); ok {
		// An exact-key cache hit costs no new memory; serve it at any rung.
		return nil, &Reply{Body: v.body, RunID: v.runID, Cached: true}, false, nil
	}
	var downgraded bool
	switch {
	case rung >= membudget.RungShed:
		e.memShed++
		e.flight.Add(telemetry.Event{Type: "mem-shed", Detail: req.Experiment})
		return nil, nil, false, &MemoryPressureError{
			Rung: rung.String(), RetryAfter: e.cfg.Governor.RetryAfter()}
	case rung >= membudget.RungStaleOnly:
		// Serving a remembered result allocates nothing; running does.
		if v, ok := e.lastGood[req.Experiment]; ok {
			e.memStaleServed++
			e.flight.Add(telemetry.Event{Type: "mem-stale-served", Detail: req.Experiment})
			return nil, &Reply{Body: v.body, RunID: v.runID, Cached: true, Stale: true}, false, nil
		}
		return nil, nil, false, &MemoryPressureError{
			Rung: rung.String(), RetryAfter: e.cfg.Governor.RetryAfter(), StaleOnly: true}
	case rung >= membudget.RungSampled && req.Fidelity != harness.FidelitySampled:
		// Force sampled fidelity: an eighth of the work and memory for an
		// answer with an error bound attached. The downgraded key may hit
		// the cache or coalesce onto an earlier downgraded admission.
		req = req.SampledTwin()
		key = req.Key()
		downgraded = true
		e.memDowngrades++
		e.flight.Add(telemetry.Event{Type: "mem-downgrade", Detail: req.Experiment})
		if v, ok := e.cache.Get(key); ok {
			return nil, &Reply{Body: v.body, RunID: v.runID, Cached: true}, true, nil
		}
	}
	if job, ok := e.inflight[key]; ok {
		job.coalesced++
		e.coalesced++
		if sync {
			job.waiters++
		} else {
			// An async poller now depends on this job: it must run even if
			// every synchronous waiter leaves.
			job.abandonable = false
		}
		e.flight.Add(telemetry.Event{Type: "coalesced", RunID: job.ID,
			TraceID: traceID(job.run), Detail: req.Experiment})
		return job, nil, downgraded, nil
	}
	// Backpressure first: a full queue rejects before the breaker is
	// consulted, so a probe slot is never consumed by a doomed submit.
	// Only submitters (all holding e.mu) send on the queue, so this
	// capacity check guarantees the send below cannot block.
	if len(e.queue) == cap(e.queue) {
		e.rejected++
		e.flight.Add(telemetry.Event{Type: "rejected", Detail: req.Experiment + ": queue full"})
		return nil, nil, false, ErrQueueFull
	}
	var probe bool
	if e.cfg.BreakerThreshold > 0 {
		b := e.breakerFor(req.Experiment)
		ok, retryAfter, pr := b.admit(time.Now(), e.cfg.BreakerCooldown)
		probe = pr
		if !ok {
			if e.cfg.ServeStale {
				if v, ok := e.lastGood[req.Experiment]; ok {
					e.staleServed++
					e.flight.Add(telemetry.Event{Type: "stale-served", Detail: req.Experiment})
					return nil, &Reply{Body: v.body, RunID: v.runID, Cached: true, Stale: true}, downgraded, nil
				}
			}
			e.breakerFastFails++
			e.flight.Add(telemetry.Event{Type: "breaker-fastfail", Detail: req.Experiment})
			return nil, nil, false, &CircuitOpenError{Experiment: req.Experiment, RetryAfter: retryAfter}
		}
	}
	e.nextID++
	job := &Job{
		ID:          fmt.Sprintf("run-%06d", e.nextID),
		Req:         req,
		Key:         key,
		Downgraded:  downgraded,
		seq:         e.nextID,
		done:        make(chan struct{}),
		status:      StatusQueued,
		enqueued:    time.Now(),
		timeout:     e.effectiveTimeout(req),
		abandonable: sync,
		probe:       probe,
	}
	if g := e.cfg.Governor; g != nil {
		// Reserve the estimated in-flight footprint now, before the
		// allocations land: a burst of admissions degrades the ladder
		// ahead of the heap showing it.
		job.reserved = EstimateRequestBytes(req)
		g.Reserve(job.reserved)
	}
	if e.cfg.TraceEvery > 0 {
		if hint.TraceID != "" {
			// An upstream hop already traced this request: adopt its id
			// regardless of the sampling phase so the distributed trace is
			// never cut at this hop, and remember which remote span caused
			// the job for the coordinator's stitcher.
			job.run = telemetry.NewRun(hint.TraceID, e.cfg.TraceMaxSpans)
			job.run.ParentSpan = hint.ParentSpan
		} else if e.traceSeq%int64(e.cfg.TraceEvery) == 0 {
			job.run = telemetry.NewRun(telemetry.NewTraceID(), e.cfg.TraceMaxSpans)
		}
		e.traceSeq++
	}
	if sync {
		job.waiters = 1
	}
	e.queue <- job
	e.jobs[job.ID] = job
	e.inflight[key] = job
	e.journalSubmitLocked(job)
	e.flight.Add(telemetry.Event{Type: "submit", RunID: job.ID,
		TraceID: traceID(job.run), Detail: req.Experiment})
	return job, nil, downgraded, nil
}

// releaseLocked returns a job's reserved in-flight bytes to the memory
// governor. Zeroing reserved makes it idempotent across the terminal
// paths (worker done/failed, cancelled-skip, abandon). Callers hold e.mu.
func (e *Engine) releaseLocked(job *Job) {
	if job.reserved > 0 && e.cfg.Governor != nil {
		e.cfg.Governor.Release(job.reserved)
	}
	job.reserved = 0
}

// traceID extracts the trace id of a possibly-nil run.
func traceID(r *telemetry.Run) string {
	if r == nil {
		return ""
	}
	return r.TraceID
}

// admitWork rejects requests whose selected geometry implies more
// simulation than the configured ceiling, before any worker is
// committed: a pathological sweep gets a 400 in microseconds, not a
// timeout after minutes.
func (e *Engine) admitWork(req Request) error {
	if e.cfg.MaxWork > 0 {
		work := float64(len(req.Options().Jobs())) * req.Scale * req.Scale
		formula := "frames × scale²"
		if req.Fidelity == harness.FidelitySampled {
			// A sampled run synthesizes two small fixed-scale profiles plus a
			// ~6% prefix and replays a ~1-in-16 set subset; measured end to
			// end it costs well under an eighth of the exact run at the
			// scales where the ceiling matters. The rejection message names
			// the discounted figure and formula so the "lower scale, frames,
			// or apps" hint matches the number admission actually compared.
			work /= 8
			formula = "frames × scale² ÷ 8 sampled-fidelity discount"
		}
		if work > e.cfg.MaxWork {
			return &BadRequestError{Reason: fmt.Sprintf(
				"request implies %.2f frame-equivalents of simulation (%s), above the admission ceiling %.2f; lower scale, frames, or apps",
				work, formula, e.cfg.MaxWork)}
		}
	}
	if e.cfg.MaxRequestBytes > 0 {
		if b := EstimateRequestBytes(req); b > e.cfg.MaxRequestBytes {
			return &BadRequestError{Reason: fmt.Sprintf(
				"request implies an estimated %.1f MiB of in-flight trace memory, above the per-request ceiling %.1f MiB; lower scale, frames, or apps",
				float64(b)/(1<<20), float64(e.cfg.MaxRequestBytes)/(1<<20))}
		}
	}
	return nil
}

// effectiveTimeout resolves the run deadline: the engine-wide JobTimeout
// tightened (never loosened) by the request's TimeoutMS.
func (e *Engine) effectiveTimeout(req Request) time.Duration {
	t := e.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		rt := time.Duration(req.TimeoutMS) * time.Millisecond
		if t == 0 || rt < t {
			t = rt
		}
	}
	return t
}

// breakerFor returns (allocating on first use) the experiment's breaker.
// Callers hold e.mu.
func (e *Engine) breakerFor(experiment string) *breaker {
	b, ok := e.breakers[experiment]
	if !ok {
		b = &breaker{}
		e.breakers[experiment] = b
	}
	return b
}

// unprobeLocked gives a cancelled probe job's half-open slot back to its
// breaker. Without this rollback an abandoned probe — the only admission
// while half-open — would never reach breaker.record, leaving probing
// stuck true and the breaker wedged open until restart. Callers hold
// e.mu; clearing job.probe makes the rollback idempotent across the
// abandon and worker-skip paths.
func (e *Engine) unprobeLocked(job *Job) {
	if !job.probe {
		return
	}
	job.probe = false
	e.breakerFor(job.Req.Experiment).unprobe()
}

// abandon is called by a Do caller whose ctx died while waiting. If the
// job is still queued and no one else wants it — no other waiter, no
// async poller — it is cancelled in place: the worker that eventually
// dequeues it skips the run entirely.
func (e *Engine) abandon(job *Job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if job.waiters > 0 {
		job.waiters--
	}
	if job.waiters > 0 || !job.abandonable || job.status != StatusQueued {
		return
	}
	job.status = StatusCancelled
	job.err = &Error{Category: CategoryCanceled,
		Message: "job cancelled: every waiting caller left before it started"}
	job.finished = time.Now()
	e.cancelled++
	e.flight.Add(telemetry.Event{Type: "cancelled", RunID: job.ID,
		TraceID: traceID(job.run), Detail: "abandoned while queued"})
	e.journalFinishLocked(job)
	e.releaseLocked(job)
	e.unprobeLocked(job)
	if e.inflight[job.Key] == job {
		// Unblock identical future requests immediately: they start a
		// fresh job rather than coalescing onto this dead one.
		delete(e.inflight, job.Key)
	}
}

// replyFor builds the Reply for a finished job.
func (e *Engine) replyFor(job *Job) (*Reply, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if job.err != nil {
		return nil, job.err
	}
	return &Reply{
		Body:      job.result.body,
		RunID:     job.ID,
		Coalesced: job.coalesced > 0,
		Duration:  job.finished.Sub(job.started),
	}, nil
}

// JobStatus returns the snapshot of a tracked job.
func (e *Engine) JobStatus(id string) (JobStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	s := JobStatus{
		ID:         job.ID,
		Experiment: job.Req.Experiment,
		Key:        job.Key,
		TraceID:    traceID(job.run),
		Status:     job.status,
		Enqueued:   job.enqueued,
		Coalesced:  job.coalesced,
		Attempts:   job.attempts,
	}
	if !job.started.IsZero() {
		t := job.started
		s.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		s.Finished = &t
		s.DurationMs = float64(job.finished.Sub(job.started)) / float64(time.Millisecond)
	}
	if job.err != nil {
		s.Error = job.err.Error()
		var se *Error
		if errors.As(job.err, &se) {
			s.ErrorCategory = se.Category
			// Stacks disclose internal code paths; they stay server-side
			// (logged at recovery) unless exposure is explicitly enabled.
			if e.cfg.ExposeStacks {
				s.ErrorStack = se.Stack
			}
		}
	}
	if job.result != nil {
		s.Result = json.RawMessage(job.result.body)
	}
	return s, true
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		e.mu.Lock()
		if job.status == StatusCancelled {
			// Abandoned while queued: skip the run, finalize bookkeeping.
			e.releaseLocked(job)
			e.unprobeLocked(job)
			e.pruneLocked(job.ID)
			e.mu.Unlock()
			close(job.done)
			continue
		}
		job.status = StatusRunning
		job.started = time.Now()
		e.journalLocked(durable.Record{Type: durable.RecStart, ID: job.ID})
		e.flight.Add(telemetry.Event{Type: "start", RunID: job.ID,
			TraceID: traceID(job.run), Detail: job.Req.Experiment})
		e.mu.Unlock()
		// Queue wait is known exactly from the timestamps the engine
		// tracks anyway; record it as a span rather than re-measuring.
		job.run.Record("queue-wait", "engine", job.enqueued, job.started)

		res, attempts, serr := e.runWithRetry(job)
		var entry *cached
		if serr == nil {
			body, merr := json.Marshal(res)
			if merr != nil {
				serr = &Error{Category: CategoryInternal, Message: "encode result: " + merr.Error()}
			} else {
				entry = &cached{body: body, runID: job.ID}
			}
		}

		e.mu.Lock()
		job.finished = time.Now()
		job.attempts = attempts
		if serr != nil {
			job.status = StatusFailed
			job.err = serr
			e.failed++
			if serr.Category == CategoryTimeout {
				e.timeouts++
			}
			e.flight.Add(telemetry.Event{Type: "failed", RunID: job.ID, TraceID: traceID(job.run),
				Detail: fmt.Sprintf("%s: %s", job.Req.Experiment, serr.Category)})
			e.cfg.Logger.Warn("job failed",
				"run_id", job.ID, "trace_id", traceID(job.run),
				"experiment", job.Req.Experiment, "category", string(serr.Category),
				"attempts", attempts, "err", serr.Message)
		} else {
			job.status = StatusDone
			job.result = entry
			e.cache.Put(job.Key, entry)
			// An escalation job also upgrades the sampled entries that
			// asked for it.
			for _, k := range job.alsoCache {
				e.cache.Replace(k, entry)
				e.escalationHits++
				e.flight.Add(telemetry.Event{Type: "escalated", RunID: job.ID,
					TraceID: traceID(job.run), Detail: job.Req.Experiment + " -> " + k})
			}
			e.lastGood[job.Req.Experiment] = entry
			e.completed++
			if res.Sampling != nil {
				e.sampledJobs++
				e.lastSampledErr = res.Sampling.EstRelErr
			}
			d := job.finished.Sub(job.started)
			e.lat.record(d)
			e.latHist.Observe(d.Seconds())
			if e.cfg.SLO != nil {
				e.cfg.SLO.Observe(job.Req.Experiment, d)
			}
			e.flight.Add(telemetry.Event{Type: "done", RunID: job.ID, TraceID: traceID(job.run),
				Detail: fmt.Sprintf("%s in %s", job.Req.Experiment, d.Round(time.Millisecond))})
		}
		if e.cfg.BreakerThreshold > 0 {
			b := e.breakerFor(job.Req.Experiment)
			if b.record(serr == nil, time.Now(), e.cfg.BreakerThreshold, e.cfg.BreakerCooldown) {
				e.breakerTrips++
				e.flight.Add(telemetry.Event{Type: "breaker-trip", RunID: job.ID,
					TraceID: traceID(job.run), Detail: job.Req.Experiment})
			}
		}
		e.releaseLocked(job)
		e.journalFinishLocked(job)
		e.persistTraceLocked(job)
		e.maybeCompactLocked()
		if e.inflight[job.Key] == job {
			delete(e.inflight, job.Key)
		}
		e.pruneLocked(job.ID)
		e.mu.Unlock()
		close(job.done)
		// Escalation happens after done is closed: the sampled answer
		// reaches its waiters immediately, the exact twin runs behind
		// them. The twin is exact, so escalation cannot recurse.
		if serr == nil && e.cfg.EscalateSampled && job.Req.Fidelity == harness.FidelitySampled {
			if g := e.cfg.Governor; g != nil && g.Rung() >= membudget.RungSampled {
				// Under memory pressure the exact twin is exactly the work
				// the ladder is downgrading away; skip it. The next identical
				// request after recovery escalates normally.
				e.mu.Lock()
				e.memEscSkipped++
				e.flight.Add(telemetry.Event{Type: "escalate-skipped", RunID: job.ID,
					TraceID: traceID(job.run), Detail: job.Req.Experiment + ": memory pressure"})
				e.mu.Unlock()
			} else {
				e.escalateSampled(job)
			}
		}
	}
}

// escalateSampled submits the exact twin of a finished sampled job and
// arranges for its result to replace the sampled entry in the cache
// under the sampled key. Best-effort: backpressure or shutdown drops
// the escalation (the sampled answer, with its error estimate attached,
// simply remains cached).
func (e *Engine) escalateSampled(job *Job) {
	exj, rep, err := e.Submit(job.Req.ExactTwin())
	e.mu.Lock()
	defer e.mu.Unlock()
	e.escalations++
	switch {
	case err != nil:
		e.flight.Add(telemetry.Event{Type: "escalate-dropped", RunID: job.ID,
			Detail: job.Req.Experiment + ": " + err.Error()})
	case rep != nil:
		// The exact answer was already cached: upgrade immediately.
		e.cache.Replace(job.Key, &cached{body: rep.Body, runID: rep.RunID})
		e.escalationHits++
		e.flight.Add(telemetry.Event{Type: "escalated", RunID: rep.RunID,
			Detail: job.Req.Experiment + " -> " + job.Key})
	default:
		switch exj.status {
		case StatusDone:
			// Finished between Submit and this lock.
			if exj.result != nil {
				e.cache.Replace(job.Key, exj.result)
				e.escalationHits++
			}
		case StatusQueued, StatusRunning:
			exj.alsoCache = append(exj.alsoCache, job.Key)
		}
		e.flight.Add(telemetry.Event{Type: "escalate", RunID: exj.ID,
			TraceID: traceID(exj.run), Detail: job.Req.Experiment + " for " + job.ID})
	}
}

// runWithRetry executes the job under its deadline, retrying transient
// failures with exponential backoff and jitter. Backoffs abort early
// when the engine shuts down or the deadline expires. It returns the
// result, the number of attempts made, and the final typed error.
func (e *Engine) runWithRetry(job *Job) (*harness.Result, int, *Error) {
	// Thread the job's trace and the engine's stage-clock scope into the
	// run context: every instrumentation site below (harness, tracecache,
	// cachesim, gpu) reads them back out with one context lookup.
	ctx := harness.WithStages(context.Background(), e.stages)
	ctx = telemetry.NewContext(ctx, job.run)
	if job.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.timeout)
		defer cancel()
	}
	attempts := 0
	for {
		attempts++
		sp := job.run.Start(fmt.Sprintf("attempt-%d", attempts), "engine",
			telemetry.String("experiment", job.Req.Experiment),
			telemetry.String("fidelity", job.Req.Fidelity))
		res, serr := e.runOnce(ctx, job)
		if serr == nil {
			sp.Attr(telemetry.String("outcome", "ok")).End()
			return res, attempts, nil
		}
		sp.Attr(telemetry.String("outcome", string(serr.Category))).End()
		if !serr.Retryable() || attempts > e.cfg.MaxRetries {
			return nil, attempts, serr
		}
		// Exponential backoff with ±50% jitter: base×2^k on attempt k+1.
		// The doubling stops at maxRetryBackoff — an unbounded shift
		// overflows int64 past ~40 attempts, and rand.Int63n panics on
		// the resulting non-positive duration.
		d := e.cfg.RetryBackoff
		for k := 1; k < attempts && d < maxRetryBackoff; k++ {
			d *= 2
		}
		if d > maxRetryBackoff {
			d = maxRetryBackoff
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		e.mu.Lock()
		e.retries++
		e.flight.Add(telemetry.Event{Type: "retry", RunID: job.ID, TraceID: traceID(job.run),
			Detail: fmt.Sprintf("%s: attempt %d backing off %s", job.Req.Experiment, attempts, d.Round(time.Millisecond))})
		e.mu.Unlock()
		bsp := job.run.Start("retry-backoff", "engine", telemetry.Int("attempt", int64(attempts)))
		t := time.NewTimer(d)
		select {
		case <-t.C:
			bsp.End()
		case <-e.stop:
			t.Stop()
			bsp.End()
			return nil, attempts, serr
		case <-ctx.Done():
			t.Stop()
			bsp.End()
			return nil, attempts, classify(ctx.Err())
		}
	}
}

// runOnce executes the runner exactly once, converting a panic into a
// typed failure with the recovered stack — the worker goroutine and the
// process always survive a panicking experiment.
func (e *Engine) runOnce(ctx context.Context, job *Job) (res *harness.Result, serr *Error) {
	defer func() {
		if r := recover(); r != nil {
			e.mu.Lock()
			e.panics++
			e.mu.Unlock()
			stack := string(debug.Stack())
			e.cfg.Logger.Error("experiment panicked",
				"run_id", job.ID, "trace_id", traceID(job.run),
				"experiment", job.Req.Experiment, "panic", fmt.Sprint(r), "stack", stack)
			serr = &Error{
				Category: CategoryPanic,
				Message:  fmt.Sprintf("experiment %s panicked: %v", job.Req.Experiment, r),
				Stack:    stack,
			}
		}
	}()
	r, err := e.cfg.Run(ctx, job.Req)
	if err != nil {
		serr := classify(err)
		// The deadline outranks whatever error the runner surfaced while
		// dying: a run cut short by its timeout is a timeout.
		if serr.Category == CategoryInternal && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			serr = &Error{Category: CategoryTimeout, Message: err.Error(), cause: err}
		}
		return nil, serr
	}
	return r, nil
}

// pruneLocked records a finished job and drops the oldest finished jobs
// beyond the retention bound. Callers hold e.mu.
func (e *Engine) pruneLocked(id string) {
	e.order = append(e.order, id)
	for len(e.order) > e.cfg.KeepFinished {
		delete(e.jobs, e.order[0])
		e.removeTrace(e.order[0])
		e.order = e.order[1:]
	}
}

// ReadyInfo is the JSON body of GET /readyz: the ready/unready verdict
// plus the load signals a cluster coordinator needs to make routing
// decisions — queue pressure, open breakers, and whether the node is
// draining (about to leave) versus merely saturated (keep keys sticky,
// prefer replicas for reads).
type ReadyInfo struct {
	Status        string `json:"status"` // "ready" or "unready"
	Reason        string `json:"reason"`
	Draining      bool   `json:"draining"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Running       int    `json:"running"`
	BreakersOpen  int    `json:"breakers_open"`

	// Memory-governor state, present when the engine has one: the ladder
	// rung (name and numeric level), current pressure fraction, and the
	// byte limit. A coordinator reads these to route around a
	// memory-saturated member exactly as it does a queue-saturated one.
	MemRung       string  `json:"mem_rung,omitempty"`
	MemRungLevel  int     `json:"mem_rung_level,omitempty"`
	MemPressure   float64 `json:"mem_pressure,omitempty"`
	MemLimitBytes int64   `json:"mem_limit_bytes,omitempty"`
}

// ReadinessInfo reports whether the engine should receive new work and
// the load snapshot behind that verdict: draining, queue beyond the
// high-water mark, or every known experiment breaker open. Liveness is
// not readiness — a draining engine is alive but unready.
func (e *Engine) ReadinessInfo() (bool, ReadyInfo) {
	// Snapshot the governor before taking e.mu: its Snapshot reads the
	// byte-source gauges, and the result-cache gauge nests under e.mu
	// elsewhere — keep the order e.mu-free here.
	var mem *membudget.Snapshot
	if g := e.cfg.Governor; g != nil {
		s := g.Snapshot()
		mem = &s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	info := ReadyInfo{
		QueueDepth:    len(e.queue),
		QueueCapacity: e.cfg.QueueDepth,
		Draining:      e.closing,
	}
	if mem != nil {
		info.MemRung = mem.Rung
		info.MemRungLevel = mem.RungLevel
		info.MemPressure = mem.Pressure
		info.MemLimitBytes = mem.LimitBytes
	}
	for _, job := range e.jobs {
		if job.status == StatusRunning {
			info.Running++
		}
	}
	if e.cfg.BreakerThreshold > 0 {
		now := time.Now()
		for _, b := range e.breakers {
			if b.openNow(now) {
				info.BreakersOpen++
			}
		}
	}
	ready := true
	reason := "ready"
	switch {
	case e.closing:
		ready, reason = false, "draining"
	case mem != nil && mem.RungLevel >= int(membudget.RungStaleOnly):
		// Stale-only and shed refuse new simulations, so stop attracting
		// them; shrink and sampled still serve and stay ready.
		ready, reason = false, fmt.Sprintf("memory saturated (rung %s, pressure %.2f)", mem.Rung, mem.Pressure)
	case info.QueueDepth >= e.cfg.ReadyHighWater:
		ready, reason = false, fmt.Sprintf("queue saturated (%d/%d)", info.QueueDepth, e.cfg.QueueDepth)
	case len(e.breakers) > 0 && info.BreakersOpen == len(e.breakers):
		ready, reason = false, "all circuit breakers open"
	}
	info.Reason = reason
	info.Status = "ready"
	if !ready {
		info.Status = "unready"
	}
	return ready, info
}

// Readiness is ReadinessInfo reduced to the verdict and its reason.
func (e *Engine) Readiness() (ready bool, reason string) {
	ok, info := e.ReadinessInfo()
	return ok, info.Reason
}

// Cached answers key from the local result cache without submitting any
// work: the cluster coordinator's cache-only probes (and replica-backed
// degraded reads) use it to ask "do you already hold this result?"
// without committing the node to a simulation.
func (e *Engine) Cached(key string) (*Reply, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.cache.Get(key)
	if !ok {
		return nil, false
	}
	return &Reply{Body: v.body, RunID: v.runID, Cached: true}, true
}

// InstallReplica stores a result computed elsewhere in the cluster into
// the local result cache and serve-stale table under its cluster-wide
// key. The body must decode as a current-schema harness result — a
// replica from a build with a different result layout is rejected
// rather than poisoning the cache. Replicated entries ride the normal
// snapshot path, so they survive this node's restarts too.
func (e *Engine) InstallReplica(key, experiment, runID string, body []byte) error {
	if key == "" {
		return &BadRequestError{Reason: "replica key must not be empty"}
	}
	if _, err := harness.DecodeResult(body); err != nil {
		return &BadRequestError{Reason: "replica body: " + err.Error()}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrShuttingDown
	}
	entry := &cached{body: body, runID: runID}
	e.cache.Put(key, entry)
	if experiment != "" {
		e.lastGood[experiment] = entry
	}
	e.replicasInstalled++
	e.flight.Add(telemetry.Event{Type: "replica-installed", RunID: runID, Detail: experiment + " " + key})
	return nil
}

// Shutdown stops accepting work, drains queued and running jobs, and
// waits for the workers to exit or ctx to expire. In-flight retry
// backoffs are cut short: their jobs fail with the last observed error
// rather than holding the drain hostage.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closing {
		e.closing = true
		close(e.stop)
		close(e.queue)
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Clean drain: capture a final snapshot so the next boot
		// restores from one read instead of a long journal replay.
		e.closeDurable()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Unfinished counts jobs that have not reached a terminal state —
// still queued or running. gspcd reports it when the drain deadline
// expires so operators know how many jobs a hard exit abandons (a
// durable engine marks them failed-retryable at the next boot).
func (e *Engine) Unfinished() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, job := range e.jobs {
		if job.status == StatusQueued || job.status == StatusRunning {
			n++
		}
	}
	return n
}
