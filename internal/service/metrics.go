package service

import (
	"math"
	"sort"
	"time"

	"gspc/internal/durable"
	"gspc/internal/harness"
	"gspc/internal/membudget"
	"gspc/internal/telemetry"
	"gspc/internal/tracecache"
)

// latencySamples bounds the completed-job duration window percentiles
// are computed over.
const latencySamples = 512

// latencies is a fixed ring of recent job durations in milliseconds.
type latencies struct {
	ring  [latencySamples]float64
	n     int // total recorded
	count int // valid entries in ring
}

func (l *latencies) record(d time.Duration) {
	l.ring[l.n%latencySamples] = float64(d) / float64(time.Millisecond)
	l.n++
	if l.count < latencySamples {
		l.count++
	}
}

// percentiles returns (p50, p95) over the window, zeros when empty.
// Quantiles interpolate linearly between the two nearest order
// statistics: rank r = q·(n-1) rarely lands on an integer, and
// truncating it (the old int(q·(n-1)) indexing) systematically biased
// the high quantiles low — with 512 samples, p95 read the 486th order
// statistic instead of the 486.45-blend, understating tail latency on
// every scrape.
func (l *latencies) percentiles() (p50, p95 float64) {
	if l.count == 0 {
		return 0, 0
	}
	s := make([]float64, l.count)
	copy(s, l.ring[:l.count])
	sort.Float64s(s)
	return quantile(s, 0.50), quantile(s, 0.95)
}

// quantile returns the q-th linear-interpolation quantile of sorted s.
func quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	r := q * float64(len(s)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return s[lo]
	}
	frac := r - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Metrics is the counter snapshot served at /metricsz.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
	Cancelled int64 `json:"cancelled"`

	Retries  int64 `json:"retries"`
	Panics   int64 `json:"panics"`
	Timeouts int64 `json:"timeouts"`

	// ReplicasInstalled counts results replicated onto this node by a
	// cluster coordinator (PUT /v1/replicas/{key}).
	ReplicasInstalled int64 `json:"replicas_installed"`

	// Sampling reports sampled-fidelity serving: jobs answered sampled,
	// background escalations to exact, and the process-wide set-sampling
	// replay counters. Omitted until the first sampled job.
	Sampling *SamplingMetrics `json:"sampling,omitempty"`

	BreakerTrips     int64             `json:"breaker_trips"`
	BreakerFastFails int64             `json:"breaker_fast_fails"`
	BreakersOpen     int               `json:"breakers_open"`
	BreakerStates    map[string]string `json:"breaker_states,omitempty"`
	StaleServed      int64             `json:"stale_served"`

	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEvictions int64  `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`
	CacheCapacity  int    `json:"cache_capacity"`
	CachePolicy    string `json:"cache_policy"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`

	// TraceCache reports the process-wide frame-trace cache (hits,
	// misses, coalesced synthesis, evicted bytes, budget) — process
	// global, not per-engine: every engine in the process shares the one
	// cache. Stages splits THIS engine's accumulated experiment time
	// into synthesis, offline replay, and timing simulation;
	// StagesProcess is the process-wide sum over every engine and direct
	// harness call, so per-engine numbers always account into it.
	TraceCache    tracecache.Stats     `json:"trace_cache"`
	Stages        harness.StageTimings `json:"stages"`
	StagesProcess harness.StageTimings `json:"stages_process"`

	// Durable reports the write-ahead journal and the boot recovery
	// outcome when -data-dir is set; absent otherwise. Recovery
	// counters let operators verify a restart recovered state (jobs
	// restored, cache rehydrated) rather than silently rebuilt it.
	Durable *DurableMetrics `json:"durable,omitempty"`

	// Memory reports the memory governor's ladder state and the
	// serving-path consequences (sheds, fidelity downgrades, stale-only
	// serves); absent without a governor.
	Memory *MemoryMetrics `json:"memory,omitempty"`

	// SLO reports per-experiment latency-target tracking (measured
	// p50/p99 against targets, breaches, error-budget burn); absent
	// without an SLO tracker or before the first completed job.
	SLO []telemetry.SLOReport `json:"slo,omitempty"`
}

// MemoryMetrics is the memory-governor section of /metricsz: the full
// governor snapshot (pressure, rung, per-rung entry counts and
// residency, heap high-water) plus this engine's ladder-driven serving
// counters.
type MemoryMetrics struct {
	membudget.Snapshot
	// Shed counts requests refused outright at the shed rung;
	// Downgrades counts exact requests forced to sampled fidelity;
	// StaleServed counts stale answers served because of the stale-only
	// rung (disjoint from the breaker-driven stale_served counter);
	// EscalationsSkipped counts background exact escalations suppressed
	// under pressure.
	Shed               int64 `json:"shed"`
	Downgrades         int64 `json:"downgrades"`
	StaleServed        int64 `json:"stale_served"`
	EscalationsSkipped int64 `json:"escalations_skipped"`
}

// SamplingMetrics is the sampled-fidelity section of /metricsz.
type SamplingMetrics struct {
	// SampledJobs counts completed sampled-fidelity jobs; LastEstRelErr
	// is the estimated relative error the most recent one reported.
	SampledJobs   int64   `json:"sampled_jobs"`
	LastEstRelErr float64 `json:"last_est_rel_err"`
	// Escalations counts exact twins submitted behind sampled answers;
	// EscalationHits counts sampled cache entries actually upgraded to
	// exact results (immediately or when the twin finished).
	Escalations    int64 `json:"escalations"`
	EscalationHits int64 `json:"escalation_hits"`
	// Process-wide set-sampling replay counters (every engine in the
	// process shares them, like the trace cache): measured replays,
	// sampled-subset and geometry set counts summed over replays (divide
	// by SampledReplays for per-replay means), and the accesses skipped
	// versus simulated.
	SampledReplays    int64 `json:"sampled_replays"`
	SampledSets       int64 `json:"sampled_sets"`
	SampledSetsTotal  int64 `json:"sampled_sets_total"`
	SkippedAccesses   int64 `json:"skipped_accesses"`
	SimulatedAccesses int64 `json:"simulated_accesses"`
}

// DurableMetrics is the persistence section of /metricsz.
type DurableMetrics struct {
	// Journal/snapshot store counters: journal size and record count,
	// append failures, compactions, records replayed at boot, torn
	// tail bytes truncated, and corrupt snapshots quarantined.
	durable.Stats
	// JournalErrors counts engine-level append failures (a superset
	// clock of Stats.AppendErrors that also covers encode failures).
	JournalErrors int64 `json:"journal_errors"`
	// Recovery is the boot outcome.
	Recovery recoveryStats `json:"recovery"`
}

// Metrics snapshots the engine counters. The whole snapshot — result
// cache counters included — is captured under one acquisition of e.mu,
// so a scrape racing a completing job can never pair the job's cache
// insert with pre-completion engine counters (the cache has its own
// lock and never takes e.mu, so the nested acquisition cannot cycle).
func (e *Engine) Metrics() Metrics {
	// Governor and SLO snapshots are taken before e.mu: both have their
	// own locks, and the governor's byte-source gauges must never be read
	// while this engine's mutex is held above them in another goroutine.
	var memory *MemoryMetrics
	if g := e.cfg.Governor; g != nil {
		memory = &MemoryMetrics{Snapshot: g.Snapshot()}
	}
	var slo []telemetry.SLOReport
	if e.cfg.SLO != nil {
		slo = e.cfg.SLO.Report()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if memory != nil {
		memory.Shed = e.memShed
		memory.Downgrades = e.memDowngrades
		memory.StaleServed = e.memStaleServed
		memory.EscalationsSkipped = e.memEscSkipped
	}
	hits, misses, evictions := e.cache.counters()
	p50, p95 := e.lat.percentiles()
	var sampling *SamplingMetrics
	if sim := telemetry.Sim(); e.sampledJobs > 0 || e.escalations > 0 || sim.SampledReplays > 0 {
		sampling = &SamplingMetrics{
			SampledJobs:       e.sampledJobs,
			LastEstRelErr:     e.lastSampledErr,
			Escalations:       e.escalations,
			EscalationHits:    e.escalationHits,
			SampledReplays:    sim.SampledReplays,
			SampledSets:       sim.SampledSets,
			SampledSetsTotal:  sim.SampledSetsTotal,
			SkippedAccesses:   sim.SampledSkippedAcc,
			SimulatedAccesses: sim.SampledSimulatedAcc,
		}
	}
	var durableMetrics *DurableMetrics
	if e.store != nil {
		durableMetrics = &DurableMetrics{
			Stats:         e.store.Stats(),
			JournalErrors: e.journalErrors,
			Recovery:      e.recovery,
		}
	}
	now := time.Now()
	var open int
	var states map[string]string
	if len(e.breakers) > 0 {
		states = make(map[string]string, len(e.breakers))
		for id, b := range e.breakers {
			states[id] = b.state.String()
			if b.openNow(now) {
				open++
			}
		}
	}
	return Metrics{
		UptimeSeconds: time.Since(e.start).Seconds(),
		Requests:      e.requests,
		Completed:     e.completed,
		Failed:        e.failed,
		Rejected:      e.rejected,
		Coalesced:     e.coalesced,
		Cancelled:     e.cancelled,

		Retries:  e.retries,
		Panics:   e.panics,
		Timeouts: e.timeouts,

		ReplicasInstalled: e.replicasInstalled,
		Sampling:          sampling,

		BreakerTrips:     e.breakerTrips,
		BreakerFastFails: e.breakerFastFails,
		BreakersOpen:     open,
		BreakerStates:    states,
		StaleServed:      e.staleServed,

		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheEntries:   e.cache.Len(),
		CacheCapacity:  e.cache.ways,
		CachePolicy:    e.cache.PolicyName(),
		QueueDepth:     len(e.queue),
		QueueCapacity:  e.cfg.QueueDepth,
		Workers:        e.cfg.Workers,
		LatencyP50Ms:   p50,
		LatencyP95Ms:   p95,

		TraceCache:    harness.SharedTraceCache().Stats(),
		Stages:        e.stages.Timings(),
		StagesProcess: harness.Timings(),
		Durable:       durableMetrics,
		Memory:        memory,
		SLO:           slo,
	}
}
