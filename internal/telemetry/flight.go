package telemetry

import (
	"sync"
	"time"
)

// Event is one entry of the flight recorder: a job-lifecycle moment an
// operator staring at a misbehaving server wants to reconstruct.
type Event struct {
	Time    time.Time `json:"time"`
	Type    string    `json:"type"`
	RunID   string    `json:"run_id,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Flight is a fixed-size ring of the most recent events — the
// black-box recorder served at /debugz. Recording is one mutex'd slot
// store; the ring never allocates after construction.
type Flight struct {
	mu    sync.Mutex
	ring  []Event
	total int64
}

// DefaultFlightEvents is the ring capacity when NewFlight is given a
// non-positive size.
const DefaultFlightEvents = 256

// NewFlight builds a recorder holding the last n events (<= 0 selects
// DefaultFlightEvents).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Flight{ring: make([]Event, 0, n)}
}

// Add records an event, stamping its time when unset. Nil-safe so
// callers can thread an optional recorder unconditionally.
func (f *Flight) Add(e Event) {
	if f == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.total%int64(cap(f.ring))] = e
	}
	f.total++
	f.mu.Unlock()
}

// Events returns the retained events, newest first.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	out := make([]Event, 0, n)
	// The ring's logical order is oldest..newest starting at total%cap
	// once it has wrapped; walk backwards from the newest.
	start := int64(0)
	if f.total > int64(cap(f.ring)) {
		start = f.total % int64(cap(f.ring))
	}
	for i := 0; i < n; i++ {
		idx := (start + int64(n-1-i)) % int64(n)
		out = append(out, f.ring[idx])
	}
	return out
}

// Total reports how many events were ever recorded (including those the
// ring has since overwritten).
func (f *Flight) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
