package memmap

import (
	"testing"
	"testing/quick"
)

func TestMortonIndexKnown(t *testing.T) {
	cases := []struct{ x, y, want int }{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {0, 2, 8}, {3, 3, 15}, {4, 0, 16},
	}
	for _, c := range cases {
		if got := mortonIndex(c.x, c.y); got != c.want {
			t.Errorf("morton(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestMortonIndexUniqueProperty(t *testing.T) {
	f := func(seed uint8) bool {
		side := int(seed%6) + 2
		seen := map[int]bool{}
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				m := mortonIndex(x, y)
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMortonSurfaceAddressing(t *testing.T) {
	a := NewAllocator(0)
	s := NewSurfaceLayout(a, 100, 60, 4, LayoutMorton)
	if s.LayoutKind() != LayoutMorton {
		t.Fatal("layout not recorded")
	}
	// All pixel addresses in range and unique per pixel.
	seen := map[uint64]bool{}
	for y := 0; y < 60; y++ {
		for x := 0; x < 100; x++ {
			addr := s.Addr(x, y)
			if !s.Contains(addr) {
				t.Fatalf("Addr(%d,%d) outside allocation", x, y)
			}
			if seen[addr] {
				t.Fatalf("pixel (%d,%d) address collision", x, y)
			}
			seen[addr] = true
		}
	}
}

func TestMortonLocality(t *testing.T) {
	// A 2x2 tile neighborhood must occupy 4 consecutive blocks under
	// Morton order (at even tile coordinates) — the property that gives
	// depth/texture surfaces their 2D cache locality.
	a := NewAllocator(0)
	s := NewSurfaceLayout(a, 256, 256, 4, LayoutMorton)
	base := s.TileAddr(4, 6) // even coordinates
	addrs := map[uint64]bool{
		s.TileAddr(4, 6): true, s.TileAddr(5, 6): true,
		s.TileAddr(4, 7): true, s.TileAddr(5, 7): true,
	}
	for want := base; want < base+4*BlockSize; want += BlockSize {
		if !addrs[want] {
			t.Fatalf("2x2 tile quad not contiguous under Morton order")
		}
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutRowMajor.String() != "rowmajor" || LayoutMorton.String() != "morton" {
		t.Error("layout names wrong")
	}
}

func TestRowMajorDefaultUnchanged(t *testing.T) {
	a1 := NewAllocator(0)
	a2 := NewAllocator(0)
	s1 := NewSurface(a1, 64, 64, 4)
	s2 := NewSurfaceLayout(a2, 64, 64, 4, LayoutRowMajor)
	for y := 0; y < 64; y += 7 {
		for x := 0; x < 64; x += 7 {
			if s1.Addr(x, y) != s2.Addr(x, y) {
				t.Fatal("row-major layouts disagree")
			}
		}
	}
}
