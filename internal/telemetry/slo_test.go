package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestSLOTrackerBreachAndBurn(t *testing.T) {
	tr := NewSLOTracker(SLOTarget{P50: 50 * time.Millisecond, P99: 100 * time.Millisecond}, 0.99, 0)

	// 98 fast observations, 2 breaches: budget = 100 × 0.01 = 1, so
	// burn = 2/1 = 2.0 — the SLO is being violated.
	for i := 0; i < 98; i++ {
		tr.Observe("fig12", 10*time.Millisecond)
	}
	tr.Observe("fig12", 150*time.Millisecond)
	tr.Observe("fig12", 200*time.Millisecond)

	reps := tr.Report()
	if len(reps) != 1 {
		t.Fatalf("Report returned %d series, want 1", len(reps))
	}
	r := reps[0]
	if r.Experiment != "fig12" || r.Observations != 100 || r.Breaches != 2 {
		t.Fatalf("report %+v, want fig12 with 100 obs / 2 breaches", r)
	}
	if math.Abs(r.BurnRate-2.0) > 1e-9 {
		t.Errorf("burn rate = %v, want 2.0", r.BurnRate)
	}
	if got := tr.WorstBurn(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("WorstBurn = %v, want 2.0", got)
	}
	if r.TargetP50Ms != 50 || r.TargetP99Ms != 100 {
		t.Errorf("targets = %v/%v ms, want 50/100", r.TargetP50Ms, r.TargetP99Ms)
	}
	if r.P50Ms != 10 {
		t.Errorf("measured p50 = %v ms, want 10", r.P50Ms)
	}
	if r.P99Ms < 100 {
		t.Errorf("measured p99 = %v ms should reflect the slow tail", r.P99Ms)
	}
}

func TestSLOTrackerBudgetFloorAndZeroTarget(t *testing.T) {
	// With few observations the budget floors at 1 breach, so a single
	// breach burns exactly the whole budget, not a huge multiple.
	tr := NewSLOTracker(SLOTarget{P99: 10 * time.Millisecond}, 0.99, 0)
	tr.Observe("fig12", 50*time.Millisecond)
	if got := tr.WorstBurn(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("single-breach burn = %v, want 1.0 (floored budget)", got)
	}

	// A zero P99 target records latencies but never breaches.
	tr2 := NewSLOTracker(SLOTarget{}, 0.99, 0)
	tr2.Observe("fig15", time.Hour)
	r := tr2.Report()[0]
	if r.Breaches != 0 || r.BurnRate != 0 {
		t.Errorf("targetless series breached: %+v", r)
	}
	if r.Observations != 1 || r.P99Ms == 0 {
		t.Errorf("targetless series not measured: %+v", r)
	}
}

func TestSLOTrackerSetTargetAndWindow(t *testing.T) {
	tr := NewSLOTracker(SLOTarget{P99: time.Second}, 0.9, 4)
	tr.SetTarget("strict", SLOTarget{P99: time.Millisecond})

	// The same latency breaches only under the per-experiment override.
	tr.Observe("strict", 10*time.Millisecond)
	tr.Observe("lax", 10*time.Millisecond)

	reps := tr.Report()
	if len(reps) != 2 {
		t.Fatalf("Report returned %d series, want 2", len(reps))
	}
	byName := map[string]SLOReport{}
	for _, r := range reps {
		byName[r.Experiment] = r
	}
	if byName["strict"].Breaches != 1 {
		t.Errorf("strict target did not breach: %+v", byName["strict"])
	}
	if byName["lax"].Breaches != 0 {
		t.Errorf("default target breached: %+v", byName["lax"])
	}

	// The quantile window rolls: after 4 more fast observations the
	// early slow sample ages out of the measured p99, while lifetime
	// counters keep the breach.
	for i := 0; i < 4; i++ {
		tr.Observe("strict", 100*time.Microsecond)
	}
	r := byNameReport(t, tr, "strict")
	if r.P99Ms >= 10 {
		t.Errorf("rolled-out slow sample still in window p99: %v ms", r.P99Ms)
	}
	if r.Breaches != 1 || r.Observations != 5 {
		t.Errorf("lifetime counters lost history: %+v", r)
	}
}

func byNameReport(t *testing.T, tr *SLOTracker, exp string) SLOReport {
	t.Helper()
	for _, r := range tr.Report() {
		if r.Experiment == exp {
			return r
		}
	}
	t.Fatalf("no report for %s", exp)
	return SLOReport{}
}

func TestSLOQuantileInterpolation(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := sloQuantile(s, 0.5); got != 2.5 {
		t.Errorf("q50 of 1..4 = %v, want 2.5", got)
	}
	if got := sloQuantile(s, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := sloQuantile(s, 1); got != 4 {
		t.Errorf("q100 = %v, want 4", got)
	}
	if got := sloQuantile(nil, 0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}
