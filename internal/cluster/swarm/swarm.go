// Package swarm is a seeded load-and-chaos driver for a gspc cluster:
// it boots N in-process gspcd engines behind real TCP listeners, fronts
// them with a coordinator, and hammers the cluster with a randomized
// schedule of submissions, status polls, node kills, restarts, drains
// and undrains. Every decision flows from one seed, so a failing
// schedule replays exactly.
//
// The harness asserts the cluster's two durability-facing contracts:
//
//   - Every acknowledged run stays visible with a consistent status:
//     once a poll observes a terminal status (done/failed/cancelled),
//     later polls must agree, byte-identical result included; a 404 for
//     an acknowledged id is a violation at any point. Transient 5xx
//     while a member is down is allowed — loss and inconsistency are not.
//   - Coalescing holds under stable membership: a fresh key submitted
//     concurrently through the coordinator simulates exactly once
//     cluster-wide, proven by a per-key simulation counter inside the
//     stub runner.
//   - The observability plane is complete for acknowledged work: after
//     quiesce, every acked run that reached done serves a stitched
//     coordinator+member trace through the coordinator — both lanes
//     present, timestamps clock-corrected and non-negative, no orphan
//     spans when the member adopted the propagated trace id. A missing
//     member trace is tolerated only when the schedule killed nodes (a
//     job resubmitted from the WAL after a kill reruns untraced).
//
// The cmd/gspc-swarm binary wraps this package; TestSwarmChaos runs it
// under -race in CI.
package swarm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"gspc/internal/cluster"
	"gspc/internal/faultinject"
	"gspc/internal/harness"
	"gspc/internal/membudget"
	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// Config shapes one swarm run. The zero value gets usable defaults.
type Config struct {
	// Nodes is the gspcd engine count. Default 3.
	Nodes int
	// Seed drives every random decision. Default 1.
	Seed int64
	// Ops is the chaos-schedule length. Default 200. Keep it well under
	// the engines' KeepFinished horizon (1024) or old acknowledged runs
	// are legitimately evicted and read as false losses.
	Ops int
	// Replication is the coordinator's replica fan-out. Default 1.
	Replication int
	// DataRoot holds one WAL directory per node. Empty: a temp dir,
	// removed when the run ends.
	DataRoot string
	// SimDelay is the stub simulation's duration. Default 5ms.
	SimDelay time.Duration
	// Soak switches from the fixed-length chaos schedule to the
	// duration-bounded soak: every node sits behind a fault-injecting
	// TCP proxy, a rolling weather schedule partitions and slows links,
	// and goroutine hygiene (zero growth, no partial deadlock) is
	// asserted at interval and at exit.
	Soak bool
	// Duration bounds a soak run. Default 2m.
	Duration time.Duration
	// BlockedAfter is how long a module goroutine may sit parked on one
	// synchronization site before the soak calls it partially
	// deadlocked. Default 15s.
	BlockedAfter time.Duration
	// MemWeather arms the soak's memory-weather mode: every node gets a
	// small-budget memory governor, the stub runner allocates (and holds
	// for the simulated duration) each request's estimated trace
	// footprint, and the first ~60% of the soak storms the cluster with
	// oversized full-scale requests. Exit assertions require the ladder
	// to have engaged at least the sampled rung, bounded heap growth,
	// recovery of every node to the healthy rung, and an SLO burn rate
	// under budget. Implies Soak.
	MemWeather bool
	// MemLimitMB is each node's governor byte budget under MemWeather.
	// Default 64.
	MemLimitMB int
	// HeapSlackMB is the allowed live-heap growth over the post-boot
	// baseline at soak exit (any soak, not just memory weather).
	// Default 64.
	HeapSlackMB int
	// Logger sinks coordinator/engine logs. Default: discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MemWeather {
		c.Soak = true
	}
	if c.MemLimitMB <= 0 {
		c.MemLimitMB = 64
	}
	if c.HeapSlackMB <= 0 {
		c.HeapSlackMB = 64
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.SimDelay <= 0 {
		c.SimDelay = 5 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	if c.BlockedAfter <= 0 {
		c.BlockedAfter = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Report is the outcome of a swarm run. Violations empty means every
// asserted property held for the whole schedule.
type Report struct {
	Seed        int64 `json:"seed"`
	Nodes       int   `json:"nodes"`
	Ops         int   `json:"ops"`
	Submits     int   `json:"submits"`
	Acked       int   `json:"acked"`
	SyncSubmits int   `json:"sync_submits"`
	StatusReads int   `json:"status_reads"`
	Kills       int   `json:"kills"`
	Restarts    int   `json:"restarts"`
	Drains      int   `json:"drains"`
	Undrains    int   `json:"undrains"`
	Proofs      int   `json:"coalescing_proofs"`
	Simulations int   `json:"simulations"`
	// Observability-plane completeness: TraceChecks counts acked runs
	// that reached done and had their stitched trace validated at exit;
	// TracesStitched those that came back stitched and well-formed;
	// TracesMissing the member-side 404s (tolerated only under kills).
	TraceChecks    int `json:"trace_checks,omitempty"`
	TracesStitched int `json:"traces_stitched,omitempty"`
	TracesMissing  int `json:"traces_missing,omitempty"`
	// Soak-only fields.
	SoakSeconds       float64 `json:"soak_seconds,omitempty"`
	WeatherShifts     int     `json:"weather_shifts,omitempty"`
	Partitions        int     `json:"partitions,omitempty"`
	BlockedChecks     int     `json:"blocked_checks,omitempty"`
	GoroutineBaseline int     `json:"goroutine_baseline,omitempty"`
	GoroutinePeak     int     `json:"goroutine_peak,omitempty"`
	// Heap accounting (any soak) and memory-weather ladder/SLO summary.
	HeapBaselineBytes  int64                 `json:"heap_baseline_bytes,omitempty"`
	HeapHighWaterBytes int64                 `json:"heap_high_water_bytes,omitempty"`
	OversizedSubmits   int                   `json:"oversized_submits,omitempty"`
	MemLimitBytes      int64                 `json:"mem_limit_bytes,omitempty"`
	MemMaxRung         string                `json:"mem_max_rung,omitempty"`
	MemRungEntries     map[string]int64      `json:"mem_rung_entries,omitempty"`
	MemRungSeconds     map[string]float64    `json:"mem_rung_seconds,omitempty"`
	SLO                []telemetry.SLOReport `json:"slo,omitempty"`
	SLOWorstBurn       float64               `json:"slo_worst_burn,omitempty"`
	Violations         []string              `json:"violations,omitempty"`
}

// simCounter counts stub simulations per cache key, cluster-wide.
type simCounter struct {
	mu   sync.Mutex
	byKy map[string]int
}

func (s *simCounter) bump(key string) {
	s.mu.Lock()
	s.byKy[key]++
	s.mu.Unlock()
}

func (s *simCounter) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKy[key]
}

func (s *simCounter) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, v := range s.byKy {
		n += v
	}
	return n
}

// node is one in-process gspcd: engine + HTTP server on a TCP address
// that stays stable across kill/restart, and a WAL directory that makes
// acknowledged runs survive the kill.
type node struct {
	name    string
	dataDir string
	addr    string // fixed after first boot; restarts rebind it

	engine  *service.Engine
	hs      *http.Server
	gov     *membudget.Governor // memory weather only; survives kill/restart
	alive   bool
	drained bool
	stopped chan struct{} // closed once the killed engine released its WAL
}

// ackedRun tracks one acknowledged (202) submission and the terminal
// state the cluster committed to, once observed.
type ackedRun struct {
	id       string
	terminal service.Status
	result   []byte
}

type swarm struct {
	cfg    Config
	rng    *rand.Rand
	sims   *simCounter
	nodes  []*node
	co     *cluster.Coordinator
	coSrv  *http.Server
	coURL  string
	client *http.Client

	// Soak mode: one fault-injecting proxy per node (the coordinator
	// dials the proxy, the proxy dials the node) and the current weather
	// name per node, for logs and the partition budget.
	proxies []*faultinject.Proxy
	weather []string

	// Soak mode: one latency SLO tracker shared by every node, so the
	// exit summary's burn rate covers the whole cluster.
	slo *telemetry.SLOTracker
	// Memory weather: monotonically increasing oversized-request nonce.
	oversized int

	acked []*ackedRun
	rep   *Report
}

// Run executes one seeded swarm schedule and reports.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	root := cfg.DataRoot
	if root == "" {
		tmp, err := os.MkdirTemp("", "gspc-swarm-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	s := &swarm{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		sims:   &simCounter{byKy: map[string]int{}},
		client: &http.Client{Timeout: 30 * time.Second},
		rep:    &Report{Seed: cfg.Seed, Nodes: cfg.Nodes, Ops: cfg.Ops},
	}
	if cfg.Soak {
		// Generous relative to the stub SimDelay: a breach means queueing
		// or degradation pathology, not normal service.
		s.slo = telemetry.NewSLOTracker(telemetry.SLOTarget{
			P50: 250 * time.Millisecond, P99: time.Second,
		}, 0.99, 0)
	}
	if err := s.boot(root); err != nil {
		return nil, err
	}
	defer s.teardown()

	if cfg.Soak {
		s.soak()
	} else {
		s.schedule()
		s.quiesce()
	}
	s.rep.Simulations = s.sims.total()
	return s.rep, nil
}

func (s *swarm) violate(format string, args ...any) {
	s.rep.Violations = append(s.rep.Violations, fmt.Sprintf(format, args...))
}

// maxStubAllocBytes caps the memory-weather stub allocation per run so
// a pathological estimate cannot OOM the harness process itself; the
// governor still reserves the full estimate at admission.
const maxStubAllocBytes = 16 << 20

// runner is the stub simulation: deterministic result per key, with a
// real (cancellable) delay so kills land on in-flight work. Under
// memory weather it also allocates (and holds for the delay) the
// request's estimated trace footprint, so heap pressure is real, not
// just accounted.
func (s *swarm) runner(ctx context.Context, r service.Request) (*harness.Result, error) {
	key := r.Key()
	s.sims.bump(key)
	var ballast []byte
	if s.cfg.MemWeather {
		est := service.EstimateRequestBytes(r)
		if est > maxStubAllocBytes {
			est = maxStubAllocBytes
		}
		if est > 0 {
			ballast = make([]byte, est)
			for i := 0; i < len(ballast); i += 4096 {
				ballast[i] = 1
			}
		}
	}
	select {
	case <-time.After(s.cfg.SimDelay):
	case <-ctx.Done():
		runtime.KeepAlive(ballast)
		return nil, ctx.Err()
	}
	runtime.KeepAlive(ballast)
	return &harness.Result{
		SchemaVersion: harness.ResultSchemaVersion,
		Experiment:    r.Experiment,
		Title:         "swarm stub",
		Scale:         r.Scale,
		Rendered:      "key " + key,
	}, nil
}

// startNode boots (or reboots) a node's engine and HTTP server. On
// reboot the WAL under dataDir replays, so pre-kill runs stay queryable.
func (s *swarm) startNode(n *node) error {
	if s.cfg.MemWeather && n.gov == nil {
		// One governor per node for its whole life: kills and restarts
		// replace the engine, and RegisterSource re-points the gauges at
		// the fresh one. SetRuntimeLimit stays off — all nodes share this
		// process, so no single node's budget may bind the collector.
		g, err := membudget.New(membudget.Config{
			Limit:        int64(s.cfg.MemLimitMB) << 20,
			HeapBaseline: liveHeapBytes(),
			HoldDown:     time.Second,
			Poll:         100 * time.Millisecond,
			Logger:       s.cfg.Logger,
		})
		if err != nil {
			return fmt.Errorf("node %s: governor: %w", n.name, err)
		}
		g.Start()
		n.gov = g
	}
	e, err := service.NewEngine(service.Config{
		Workers: 2, QueueDepth: 64, CacheEntries: 64, KeepFinished: 2048,
		Run: s.runner, DataDir: n.dataDir, Logger: s.cfg.Logger, TraceEvery: 1,
		Governor: n.gov, SLO: s.slo,
	})
	if err != nil {
		return fmt.Errorf("node %s: %w", n.name, err)
	}
	srv := service.NewServer(e)
	srv.NodeName = n.name

	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 100 {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			e.Shutdown(ctx)
			cancel()
			return fmt.Errorf("node %s: rebind %s: %w", n.name, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	n.addr = ln.Addr().String()
	n.engine = e
	n.hs = &http.Server{Handler: srv}
	n.alive = true
	n.stopped = nil
	go n.hs.Serve(ln)
	return nil
}

// kill closes the node's listener and connections immediately — clients
// see a refused/reset connection, like a crashed process — and releases
// the WAL in the background so a later restart can reopen it.
func (s *swarm) kill(n *node) {
	n.hs.Close()
	n.alive = false
	stopped := make(chan struct{})
	n.stopped = stopped
	engine := n.engine
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
		close(stopped)
	}()
}

// restart waits for the killed engine to release its WAL (single
// writer), then boots a fresh engine on the same data dir and address.
func (s *swarm) restart(n *node) error {
	if n.stopped != nil {
		<-n.stopped
	}
	return s.startNode(n)
}

func (s *swarm) boot(root string) error {
	s.nodes = make([]*node, s.cfg.Nodes)
	for i := range s.nodes {
		n := &node{
			name:    fmt.Sprintf("swarm-%d", i+1),
			dataDir: filepath.Join(root, fmt.Sprintf("node-%d", i+1)),
		}
		if err := s.startNode(n); err != nil {
			return err
		}
		s.nodes[i] = n
	}

	ccfg := cluster.Config{
		Name: "gspc-swarm", Replication: s.cfg.Replication,
		HealthInterval: 250 * time.Millisecond, HealthTimeout: 2 * time.Second,
		DeadAfter: 1, Logger: s.cfg.Logger,
	}
	specs := make([]cluster.MemberSpec, len(s.nodes))
	if s.cfg.Soak {
		// Every link crosses a seeded fault-injecting proxy; the node's
		// real address stays the proxy's fixed target across restarts.
		s.proxies = make([]*faultinject.Proxy, len(s.nodes))
		s.weather = make([]string, len(s.nodes))
		for i, n := range s.nodes {
			p, err := faultinject.NewProxy(n.addr, s.cfg.Seed+int64(i)*7919, faultinject.NetSpec{})
			if err != nil {
				return err
			}
			s.proxies[i] = p
			s.weather[i] = "clear"
			specs[i] = cluster.MemberSpec{Name: n.name, URL: "http://" + p.Addr()}
		}
		// Soak-specific coordinator posture: production-like strike
		// budgets (a blip must not eject), tight per-forward timeouts so
		// black-holed links fail over in seconds, eager hedging, and no
		// keep-alives — a healed partition must not leave the coordinator
		// holding connections that pre-date the weather.
		ccfg.DeadAfter = 2
		ccfg.ForwardTimeout = 2 * time.Second
		ccfg.HedgeDelay = 250 * time.Millisecond
		ccfg.ReplicateBackoff = 100 * time.Millisecond
		ccfg.Client = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	} else {
		for i, n := range s.nodes {
			specs[i] = cluster.MemberSpec{Name: n.name, URL: "http://" + n.addr}
		}
	}
	ccfg.Members = specs
	co, err := cluster.New(ccfg)
	if err != nil {
		return err
	}
	s.co = co
	co.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.coSrv = &http.Server{Handler: cluster.NewServer(co)}
	s.coURL = "http://" + ln.Addr().String()
	go s.coSrv.Serve(ln)
	return nil
}

func (s *swarm) teardown() {
	if s.coSrv != nil {
		s.coSrv.Close()
	}
	if s.co != nil {
		s.co.Close()
	}
	for _, p := range s.proxies {
		p.Close()
	}
	for _, n := range s.nodes {
		if n.alive {
			s.kill(n)
		}
	}
	for _, n := range s.nodes {
		if n.stopped != nil {
			<-n.stopped
		}
		if n.gov != nil {
			n.gov.Close()
		}
	}
}

// liveHeapBytes is the per-node governor's heap baseline: the process
// heap at node boot, so only growth past boot charges the budget.
func liveHeapBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// routableCount is the harness's own view of placeable nodes; the
// schedule uses it to never kill or drain the last one.
func (s *swarm) routableCount() int {
	c := 0
	for _, n := range s.nodes {
		if n.alive && !n.drained {
			c++
		}
	}
	return c
}

func (s *swarm) pick(want func(*node) bool) *node {
	var cands []*node
	for _, n := range s.nodes {
		if want(n) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[s.rng.Intn(len(cands))]
}

// requestPool is the steady-state key population: small enough that
// cache hits and coalescing actually occur, varied enough to spread
// across the ring.
var poolApps = [][]string{
	{"Dirt"}, {"HAWX"}, {"Heaven"}, {"BioShock"},
	{"Dirt", "HAWX"}, {"LostPlanet"},
}

func (s *swarm) poolRequest() string {
	req := service.Request{
		Experiment: [...]string{"fig12", "fig15"}[s.rng.Intn(2)],
		Frames:     1 + s.rng.Intn(3),
		Apps:       poolApps[s.rng.Intn(len(poolApps))],
	}
	b, _ := json.Marshal(req)
	return string(b)
}

type statusBody struct {
	ID     string          `json:"id"`
	Status service.Status  `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
}

// allowedTransient reports HTTP statuses that chaos legitimately
// produces: backpressure and down/unreachable members.
func allowedTransient(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (s *swarm) post(path, body string) (*http.Response, []byte, error) {
	resp, err := s.client.Post(s.coURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func (s *swarm) opSubmitAsync() {
	s.rep.Submits++
	resp, b, err := s.post("/v1/runs?wait=0", s.poolRequest())
	if err != nil {
		s.violate("async submit transport error: %v", err)
		return
	}
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var ack map[string]string
		if json.Unmarshal(b, &ack) != nil || ack["id"] == "" {
			s.violate("202 ack without id: %s", b)
			return
		}
		if !strings.Contains(ack["id"], "@") {
			s.violate("ack id %q not node-qualified", ack["id"])
			return
		}
		s.acked = append(s.acked, &ackedRun{id: ack["id"]})
		s.rep.Acked++
	case resp.StatusCode == http.StatusOK:
		// A wait=0 submit whose answer is already cached is served
		// immediately — the result body, not an ack.
	case allowedTransient(resp.StatusCode):
	default:
		s.violate("async submit: unexpected status %d: %s", resp.StatusCode, b)
	}
}

// opSubmitOversized storms one full-scale request at the cluster. The
// key population (experiment × frames × apps × scale) is large enough
// that owner caches cannot absorb the storm, so most submissions
// reserve their full multi-megabyte estimate at admission and the stub
// runner allocates it for real — exactly the load the degradation
// ladder exists to survive. The 429/503 the shed and stale-only rungs
// produce are allowedTransient, so the consistency contract still holds
// over whatever the cluster does accept.
func (s *swarm) opSubmitOversized() {
	s.rep.OversizedSubmits++
	s.oversized++
	req := service.Request{
		Experiment: [...]string{"fig12", "fig15"}[s.rng.Intn(2)],
		Frames:     1 + s.rng.Intn(4),
		Apps:       poolApps[s.rng.Intn(len(poolApps))],
		Scale:      1.0 + 0.25*float64(s.rng.Intn(3)),
	}
	body, _ := json.Marshal(req)
	resp, b, err := s.post("/v1/runs?wait=0", string(body))
	if err != nil {
		s.violate("oversized submit transport error: %v", err)
		return
	}
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var ack map[string]string
		if json.Unmarshal(b, &ack) != nil || ack["id"] == "" {
			s.violate("oversized 202 ack without id: %s", b)
			return
		}
		s.acked = append(s.acked, &ackedRun{id: ack["id"]})
		s.rep.Acked++
	case resp.StatusCode == http.StatusOK:
	case allowedTransient(resp.StatusCode):
	default:
		s.violate("oversized submit: unexpected status %d: %s", resp.StatusCode, b)
	}
}

func (s *swarm) opSubmitSync() {
	s.rep.SyncSubmits++
	resp, b, err := s.post("/v1/runs", s.poolRequest())
	if err != nil {
		s.violate("sync submit transport error: %v", err)
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if len(b) == 0 {
			s.violate("sync 200 with empty body")
		}
	case allowedTransient(resp.StatusCode):
	default:
		s.violate("sync submit: unexpected status %d: %s", resp.StatusCode, b)
	}
}

// opStatusPoll re-reads a random acknowledged run and checks the
// consistency contract.
func (s *swarm) opStatusPoll() {
	if len(s.acked) == 0 {
		return
	}
	run := s.acked[s.rng.Intn(len(s.acked))]
	s.rep.StatusReads++
	s.checkStatus(run, false)
}

// checkStatus performs one status read for run and folds the outcome
// into the consistency state. strict rejects transient failures (used
// during the final quiesce, when every member is up). It reports
// whether the run has reached a terminal status.
func (s *swarm) checkStatus(run *ackedRun, strict bool) bool {
	resp, err := s.client.Get(s.coURL + "/v1/runs/" + run.id)
	if err != nil {
		s.violate("status %s: transport error: %v", run.id, err)
		return false
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		var st statusBody
		if err := json.Unmarshal(b, &st); err != nil {
			s.violate("status %s: bad body: %v", run.id, err)
			return false
		}
		terminal := st.Status == service.StatusDone ||
			st.Status == service.StatusFailed || st.Status == service.StatusCancelled
		if run.terminal != "" {
			if st.Status != run.terminal {
				s.violate("run %s: terminal status changed %s → %s",
					run.id, run.terminal, st.Status)
			} else if run.terminal == service.StatusDone && !bytes.Equal(run.result, st.Result) {
				s.violate("run %s: done result bytes changed across reads", run.id)
			}
			return true
		}
		if terminal {
			run.terminal = st.Status
			run.result = st.Result
		}
		return terminal
	case resp.StatusCode == http.StatusNotFound:
		s.violate("run %s: acknowledged but not found (status 404)", run.id)
		return false
	case allowedTransient(resp.StatusCode):
		if strict {
			s.violate("run %s: still unreachable after quiesce: %d", run.id, resp.StatusCode)
		}
		return false
	default:
		s.violate("status %s: unexpected status %d: %s", run.id, resp.StatusCode, b)
		return false
	}
}

func (s *swarm) opKill() {
	n := s.pick(func(n *node) bool {
		if !n.alive {
			return false
		}
		// Killing a drained node never affects routability; killing a
		// routable one needs another routable survivor.
		return n.drained || s.routableCount() >= 2
	})
	if n == nil {
		return
	}
	s.kill(n)
	s.rep.Kills++
	s.co.CheckNow()
}

func (s *swarm) opRestart() {
	n := s.pick(func(n *node) bool { return !n.alive })
	if n == nil {
		return
	}
	if err := s.restart(n); err != nil {
		s.violate("restart %s: %v", n.name, err)
		return
	}
	s.rep.Restarts++
	s.co.CheckNow()
}

func (s *swarm) opDrain() {
	n := s.pick(func(n *node) bool { return n.alive && !n.drained })
	if n == nil || s.routableCount() < 2 {
		return
	}
	n.drained = true
	s.co.Drain(n.name)
	s.rep.Drains++
}

func (s *swarm) opUndrain() {
	n := s.pick(func(n *node) bool { return n.drained })
	if n == nil {
		return
	}
	n.drained = false
	s.co.Undrain(n.name)
	s.rep.Undrains++
}

// proveCoalescing submits a never-before-seen key concurrently through
// the coordinator and asserts exactly one simulation ran. The schedule
// is single-threaded, so membership cannot change mid-proof; if any
// submission failed transiently the proof degrades to "at most the
// failover bound" (a leader whose forward dies mid-flight legitimately
// recomputes once on the successor).
func (s *swarm) proveCoalescing(nonce int) {
	s.rep.Proofs++
	body := fmt.Sprintf(`{"experiment":"fig12","frames":%d,"apps":["Civilization"]}`, 100+nonce)
	var req service.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		s.violate("proof body: %v", err)
		return
	}
	nreq, err := req.Normalize()
	if err != nil {
		s.violate("proof normalize: %v", err)
		return
	}
	key := nreq.Key()

	const fan = 3
	type outcome struct {
		code int
		body []byte
		err  error
	}
	results := make(chan outcome, fan)
	var wg sync.WaitGroup
	for i := 0; i < fan; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b, err := s.post("/v1/runs", body)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			results <- outcome{code: resp.StatusCode, body: b}
		}()
	}
	wg.Wait()
	close(results)

	allOK := true
	var first []byte
	for r := range results {
		if r.err != nil || r.code != http.StatusOK {
			allOK = false
			continue
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			s.violate("proof %d: concurrent same-key responses differ", nonce)
		}
	}
	n := s.sims.count(key)
	if allOK && n != 1 {
		s.violate("proof %d: %d simulations for one key under stable membership, want 1", nonce, n)
	}
	if n > 2 {
		s.violate("proof %d: coalescing blown open, %d simulations", nonce, n)
	}
}

// schedule runs the seeded op mix.
func (s *swarm) schedule() {
	proofs := 0
	for op := 0; op < s.cfg.Ops; op++ {
		if op > 0 && op%25 == 0 {
			proofs++
			s.proveCoalescing(proofs)
			continue
		}
		switch roll := s.rng.Float64(); {
		case roll < 0.40:
			s.opSubmitAsync()
		case roll < 0.55:
			s.opSubmitSync()
		case roll < 0.80:
			s.opStatusPoll()
		case roll < 0.86:
			s.opKill()
		case roll < 0.92:
			s.opRestart()
		case roll < 0.96:
			s.opDrain()
		default:
			s.opUndrain()
		}
	}
}

// heal restores full cluster health: every node running, nothing
// drained, every proxy link clear, membership converged.
func (s *swarm) heal() {
	for _, n := range s.nodes {
		if !n.alive {
			if err := s.restart(n); err != nil {
				s.violate("heal restart %s: %v", n.name, err)
			}
		}
		if n.drained {
			n.drained = false
			s.co.Undrain(n.name)
		}
	}
	for i, p := range s.proxies {
		p.SetSpec(faultinject.NetSpec{})
		s.weather[i] = "clear"
	}
	s.co.CheckNow()
}

// quiesce heals the cluster — every node up, nothing drained — and then
// requires every acknowledged run to reach a stable terminal status.
func (s *swarm) quiesce() {
	s.heal()

	deadline := time.Now().Add(30 * time.Second)
	for _, run := range s.acked {
		for {
			if s.checkStatus(run, false) {
				break
			}
			if time.Now().After(deadline) {
				s.violate("run %s: no terminal status after quiesce (deadline)", run.id)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// One more read per run: every member is up now, so the read must
	// succeed and the terminal status must hold.
	for _, run := range s.acked {
		if run.terminal != "" {
			s.checkStatus(run, true)
		}
	}

	s.checkTraces()
}

// checkTraces asserts observability-plane completeness over the quiesced
// cluster: every acked run that reached done must serve a stitched
// coordinator+member trace through the coordinator, with both lanes
// present, clock-corrected non-negative timestamps, and zero orphan
// spans when the member adopted the propagated trace id. A member-side
// 404 is tolerated only when the schedule killed nodes — a job that was
// queued in the WAL at kill time is resubmitted without its run handle
// and completes untraced.
func (s *swarm) checkTraces() {
	for _, run := range s.acked {
		if run.terminal != service.StatusDone {
			continue
		}
		s.rep.TraceChecks++
		resp, err := s.client.Get(s.coURL + "/v1/runs/" + run.id + "/trace")
		if err != nil {
			s.violate("trace %s: transport error: %v", run.id, err)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound:
			s.rep.TracesMissing++
			if s.rep.Kills == 0 {
				s.violate("run %s: done but trace missing with no kills in schedule", run.id)
			}
			continue
		case resp.StatusCode != http.StatusOK:
			s.violate("trace %s: unexpected status %d: %s", run.id, resp.StatusCode, b)
			continue
		}
		if resp.Header.Get("X-Gspc-Trace-Stitched") != "1" {
			// The coordinator never restarts in a swarm schedule and its
			// registry outlives the op budget, so an unstitched relay
			// means the plane lost a submit it acknowledged.
			s.violate("run %s: trace served unstitched", run.id)
			continue
		}
		var doc telemetry.TraceDoc
		if err := json.Unmarshal(b, &doc); err != nil {
			s.violate("trace %s: stitched body unparseable: %v", run.id, err)
			continue
		}
		s.rep.TracesStitched++
		if doc.OtherData["stitched"] != "true" {
			s.violate("run %s: stitched trace lacks stitched marker", run.id)
		}
		lanes := map[int]bool{}
		badTS := false
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			lanes[ev.PID] = true
			if ev.TS < 0 && !badTS {
				badTS = true
				s.violate("run %s: span %q at negative timestamp after clock correction", run.id, ev.Name)
			}
		}
		if !lanes[1] || !lanes[2] {
			s.violate("run %s: stitched trace missing a lane (coordinator=%v member=%v)",
				run.id, lanes[1], lanes[2])
		}
		if doc.OtherData["adopted"] == "true" && doc.OtherData["orphan_spans"] != "0" {
			s.violate("run %s: %s orphan member spans in adopted trace",
				run.id, doc.OtherData["orphan_spans"])
		}
	}
}
