package policy

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

func oneSet(ways int, p cachesim.Policy) *cachesim.Cache {
	return cachesim.New(cachesim.Geometry{SizeBytes: 64 * ways, Ways: ways, BlockSize: 64}, p)
}

// blockAddr maps block number i of set 0 in a single-set cache.
func blockAddr(i int) uint64 { return uint64(i) * 64 }

func TestLRUStackOrder(t *testing.T) {
	p := NewLRU()
	c := oneSet(4, p)
	for i := 0; i < 4; i++ {
		c.Access(stream.Access{Addr: blockAddr(i)})
	}
	// Touch 0 so 1 becomes LRU.
	c.Access(stream.Access{Addr: blockAddr(0)})
	c.Access(stream.Access{Addr: blockAddr(4)}) // evicts 1
	if _, _, ok := c.Lookup(blockAddr(1)); ok {
		t.Error("LRU should have evicted block 1")
	}
	for _, b := range []int{0, 2, 3, 4} {
		if _, _, ok := c.Lookup(blockAddr(b)); !ok {
			t.Errorf("block %d should be resident", b)
		}
	}
}

func TestLRUStackPosition(t *testing.T) {
	p := NewLRU()
	c := oneSet(4, p)
	for i := 0; i < 4; i++ {
		c.Access(stream.Access{Addr: blockAddr(i)})
	}
	// Block 3 is MRU.
	_, way, _ := c.Lookup(blockAddr(3))
	if got := p.StackPosition(0, way); got != 0 {
		t.Errorf("block 3 stack position = %d, want 0 (MRU)", got)
	}
	_, way, _ = c.Lookup(blockAddr(0))
	if got := p.StackPosition(0, way); got != 3 {
		t.Errorf("block 0 stack position = %d, want 3 (LRU)", got)
	}
}

// The LRU stack inclusion property: a hit in a k-way LRU cache implies a
// hit in any larger-associativity LRU cache on the same trace.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		small := oneSet(4, NewLRU())
		big := oneSet(8, NewLRU())
		for _, ad := range addrs {
			a := stream.Access{Addr: uint64(ad%32) * 64}
			hs := small.Access(a)
			hb := big.Access(a)
			if hs && !hb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNRUVictimPrefersLowWay(t *testing.T) {
	p := NewNRU()
	c := oneSet(4, p)
	for i := 0; i < 3; i++ {
		c.Access(stream.Access{Addr: blockAddr(i)})
	}
	// Fill way 3; all four referenced -> mark clears others.
	c.Access(stream.Access{Addr: blockAddr(3)})
	// Now ways 0..2 have ref=false, way 3 ref=true. Victim = way 0.
	c.Access(stream.Access{Addr: blockAddr(4)})
	if _, _, ok := c.Lookup(blockAddr(0)); ok {
		t.Error("NRU should have victimized way 0 (block 0)")
	}
	if _, _, ok := c.Lookup(blockAddr(3)); !ok {
		t.Error("recently filled block 3 must survive")
	}
}

func TestNRUHitProtects(t *testing.T) {
	p := NewNRU()
	c := oneSet(2, p)
	c.Access(stream.Access{Addr: blockAddr(0)})
	c.Access(stream.Access{Addr: blockAddr(1)}) // saturation clears block 0's bit
	c.Access(stream.Access{Addr: blockAddr(0)}) // hit: re-mark 0, clears 1
	c.Access(stream.Access{Addr: blockAddr(2)}) // must evict 1
	if _, _, ok := c.Lookup(blockAddr(0)); !ok {
		t.Error("recently hit block was evicted")
	}
}

func TestSRRIPInsertionAndPromotion(t *testing.T) {
	p := NewSRRIP(2)
	c := oneSet(4, p)
	c.Access(stream.Access{Addr: blockAddr(0)})
	_, w, _ := c.Lookup(blockAddr(0))
	if got := p.RRPV(0, w); got != 2 {
		t.Errorf("insertion RRPV = %d, want 2", got)
	}
	c.Access(stream.Access{Addr: blockAddr(0)})
	if got := p.RRPV(0, w); got != 0 {
		t.Errorf("post-hit RRPV = %d, want 0", got)
	}
	if p.MaxRRPV() != 3 {
		t.Errorf("MaxRRPV = %d", p.MaxRRPV())
	}
}

func TestSRRIPVictimAgingAndTieBreak(t *testing.T) {
	p := NewSRRIP(2)
	c := oneSet(2, p)
	c.Access(stream.Access{Addr: blockAddr(0)})
	c.Access(stream.Access{Addr: blockAddr(1)})
	// Both at RRPV 2; aging brings both to 3; tie broken toward way 0.
	c.Access(stream.Access{Addr: blockAddr(2)})
	if _, _, ok := c.Lookup(blockAddr(0)); ok {
		t.Error("tie break should evict the minimum way id (block 0)")
	}
	if _, _, ok := c.Lookup(blockAddr(1)); !ok {
		t.Error("block 1 should survive the tie break")
	}
}

func TestSRRIPWidth4(t *testing.T) {
	p := NewSRRIP(4)
	c := oneSet(2, p)
	c.Access(stream.Access{Addr: blockAddr(0)})
	_, w, _ := c.Lookup(blockAddr(0))
	if got := p.RRPV(0, w); got != 14 {
		t.Errorf("4-bit insertion RRPV = %d, want 14", got)
	}
}

func TestRRIPWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for rrip width 0")
		}
	}()
	NewSRRIP(0)
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(2)
	p.Reset(1, 8)
	distant, long := 0, 0
	for i := 0; i < bipEpsilon*4; i++ {
		p.Fill(0, i%8, stream.Access{Kind: stream.Z})
		if p.RRPV(0, i%8) == 3 {
			distant++
		} else {
			long++
		}
	}
	if long != 4 {
		t.Errorf("long insertions = %d, want exactly 4 in %d fills", long, bipEpsilon*4)
	}
	if distant != bipEpsilon*4-4 {
		t.Errorf("distant insertions = %d", distant)
	}
}

func TestDRRIPLeaderAssignment(t *testing.T) {
	if drripLeader(0) != leaderSRRIP {
		t.Error("set 0 should lead SRRIP")
	}
	if drripLeader(33) != leaderBRRIP {
		t.Error("set 33 should lead BRRIP")
	}
	if drripLeader(7) != leaderNone {
		t.Error("set 7 should follow")
	}
	if drripLeader(64) != leaderSRRIP || drripLeader(97) != leaderBRRIP {
		t.Error("leader pattern must repeat every 64 sets")
	}
}

func TestDRRIPPSELMovesOnLeaderMisses(t *testing.T) {
	p := NewDRRIP(2)
	p.Reset(128, 4)
	start := p.PSEL()
	// Misses (fills) in the SRRIP leader set increment PSEL.
	p.Fill(0, 0, stream.Access{})
	if p.PSEL() != start+1 {
		t.Errorf("PSEL after SRRIP-leader miss = %d, want %d", p.PSEL(), start+1)
	}
	p.Fill(33, 0, stream.Access{})
	p.Fill(33, 1, stream.Access{})
	if p.PSEL() != start-1 {
		t.Errorf("PSEL after two BRRIP-leader misses = %d, want %d", p.PSEL(), start-1)
	}
}

func TestDRRIPFollowersFollowWinner(t *testing.T) {
	p := NewDRRIP(2)
	p.Reset(128, 4)
	// Drive PSEL low: BRRIP leaders miss a lot -> SRRIP wins.
	for i := 0; i < 100; i++ {
		p.Fill(33, i%4, stream.Access{})
	}
	p.Fill(5, 0, stream.Access{}) // follower fill
	if p.RRPV(5, 0) != 2 {
		t.Errorf("follower should insert SRRIP-style (2), got %d", p.RRPV(5, 0))
	}
	// Now drive PSEL high.
	for i := 0; i < 1200; i++ {
		p.Fill(0, i%4, stream.Access{})
	}
	p.Fill(5, 1, stream.Access{})
	if p.RRPV(5, 1) == 2 {
		t.Error("follower should now insert BRRIP-style (mostly 3)")
	}
}

func TestDRRIPFillAccounting(t *testing.T) {
	p := NewDRRIP(2)
	c := oneSet(4, p)
	c.Access(stream.Access{Addr: blockAddr(0), Kind: stream.Texture})
	c.Access(stream.Access{Addr: blockAddr(1), Kind: stream.RT})
	if p.FillsByKind[stream.Texture] != 1 || p.FillsByKind[stream.RT] != 1 {
		t.Errorf("fill accounting: %+v", p.FillsByKind)
	}
}

func TestGroupOf(t *testing.T) {
	cases := map[stream.Kind]StreamGroup{
		stream.Z:       GroupZ,
		stream.Texture: GroupTexture,
		stream.RT:      GroupRT,
		stream.Display: GroupRT,
		stream.Vertex:  GroupOther,
		stream.HiZ:     GroupOther,
		stream.Stencil: GroupOther,
		stream.Other:   GroupOther,
	}
	for k, want := range cases {
		if got := GroupOf(k); got != want {
			t.Errorf("GroupOf(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestStreamGroupString(t *testing.T) {
	names := map[StreamGroup]string{GroupZ: "Z", GroupTexture: "TEX", GroupRT: "RT", GroupOther: "OTHER"}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("group %d name %q, want %q", g, g.String(), want)
		}
	}
}

func TestGSDRRIPLeaderSets(t *testing.T) {
	// Residues 0..7 lead for groups 0..3, alternating teams.
	for r := 0; r < 8; r++ {
		g, team := gsLeader(r)
		if g != StreamGroup(r/2) {
			t.Errorf("set %d leads group %v, want %v", r, g, StreamGroup(r/2))
		}
		wantTeam := leaderSRRIP + r%2
		if team != wantTeam {
			t.Errorf("set %d team = %d, want %d", r, team, wantTeam)
		}
	}
	if _, team := gsLeader(9); team != leaderNone {
		t.Error("set 9 should follow")
	}
}

func TestGSDRRIPPerStreamDuel(t *testing.T) {
	p := NewGSDRRIP(2)
	p.Reset(128, 4)
	// Z leader sets are 0 (SRRIP) and 1 (BRRIP): make BRRIP lose for Z.
	for i := 0; i < 200; i++ {
		p.Fill(1, i%4, stream.Access{Kind: stream.Z})
	}
	// Texture leaders are 2 and 3: make SRRIP lose for texture.
	for i := 0; i < 1200; i++ {
		p.Fill(2, i%4, stream.Access{Kind: stream.Texture})
	}
	// Followers: Z inserts at 2, texture mostly at 3.
	p.Fill(20, 0, stream.Access{Kind: stream.Z})
	if p.RRPV(20, 0) != 2 {
		t.Errorf("Z follower insert = %d, want 2", p.RRPV(20, 0))
	}
	p.Fill(20, 1, stream.Access{Kind: stream.Texture})
	if p.RRPV(20, 1) != 3 {
		t.Errorf("texture follower insert = %d, want 3", p.RRPV(20, 1))
	}
	if p.PSELFor(GroupZ) >= 1<<(pselBits-1) {
		t.Error("Z PSEL should favor SRRIP")
	}
	if p.PSELFor(GroupTexture) < 1<<(pselBits-1) {
		t.Error("texture PSEL should favor BRRIP")
	}
}

func TestSHiPLearnsDeadRegion(t *testing.T) {
	p := NewSHiPMem(1)
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 2 * 4, Ways: 2, BlockSize: 64}, p)
	// Stream through many blocks of one region with no reuse: the region
	// counter decays to zero and fills become distant.
	for i := 0; i < 64; i++ {
		c.Access(stream.Access{Addr: uint64(i) * 64})
	}
	set, way, ok := c.Lookup(uint64(63) * 64)
	if !ok {
		t.Fatal("last block missing")
	}
	if got := p.RRPV(set, way); got != 3 {
		t.Errorf("dead-region fill RRPV = %d, want 3", got)
	}
	if p.CounterFor(set, 63*64) != 0 {
		t.Errorf("region counter = %d, want 0", p.CounterFor(set, 63*64))
	}
}

func TestSHiPLearnsLiveRegion(t *testing.T) {
	p := NewSHiPMem(1)
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 2 * 4, Ways: 2, BlockSize: 64}, p)
	// Reuse blocks of the region heavily.
	for r := 0; r < 4; r++ {
		for i := 0; i < 4; i++ {
			c.Access(stream.Access{Addr: uint64(i) * 64})
		}
	}
	if p.CounterFor(0, 0) == 0 {
		t.Error("live region counter should be positive")
	}
	c.Access(stream.Access{Addr: 9 * 64})
	set, way, _ := c.Lookup(9 * 64)
	if got := p.RRPV(set, way); got != 2 {
		t.Errorf("live-region fill RRPV = %d, want 2", got)
	}
}

func TestRandomDeterminism(t *testing.T) {
	mk := func() []int {
		p := NewRandom(7)
		p.Reset(4, 8)
		var vs []int
		for i := 0; i < 50; i++ {
			vs = append(vs, p.Victim(i%4, stream.Access{}))
		}
		return vs
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not reproducible")
		}
	}
}

func TestRandomVictimInRange(t *testing.T) {
	p := NewRandom(0)
	p.Reset(1, 16)
	for i := 0; i < 1000; i++ {
		if v := p.Victim(0, stream.Access{}); v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

// Property: every policy returns victims within range and keeps the cache
// functional on arbitrary access sequences.
func TestPoliciesFuzz(t *testing.T) {
	mkPolicies := func() []cachesim.Policy {
		return []cachesim.Policy{
			NewLRU(), NewNRU(), NewRandom(3), NewSRRIP(2), NewBRRIP(2),
			NewDRRIP(2), NewDRRIP(4), NewGSDRRIP(2), NewSHiPMem(2),
		}
	}
	f := func(addrs []uint16, kinds []byte) bool {
		for _, p := range mkPolicies() {
			c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 8, Ways: 4, BlockSize: 64}, p)
			for i, ad := range addrs {
				k := stream.Other
				if i < len(kinds) {
					k = stream.Kind(kinds[i] % byte(stream.NumKinds))
				}
				c.Access(stream.Access{Addr: uint64(ad) * 32, Kind: k, Write: i%3 == 0})
			}
			if c.Stats.Accesses != c.Stats.Hits+c.Stats.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: on a scan larger than the cache, repeated twice, SRRIP and
// friends never hit more than the number of blocks that fit; sanity that
// thrash behavior is bounded.
func TestScanBehavior(t *testing.T) {
	for _, p := range []cachesim.Policy{NewSRRIP(2), NewDRRIP(2), NewLRU(), NewNRU()} {
		c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 16, Ways: 16, BlockSize: 64}, p)
		const n = 64
		for rep := 0; rep < 2; rep++ {
			for i := 0; i < n; i++ {
				c.Access(stream.Access{Addr: uint64(i) * 64})
			}
		}
		if c.Stats.Hits > 16 {
			t.Errorf("%s: %d hits on a thrash scan, capacity is 16", p.Name(), c.Stats.Hits)
		}
	}
}
