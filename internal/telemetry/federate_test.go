package telemetry

import (
	"strings"
	"testing"
)

// TestFederateGolden pins the merged exposition byte-for-byte: node
// label injected first, families deduplicated with first HELP/TYPE
// winning, families sorted, series in node order within a family.
func TestFederateGolden(t *testing.T) {
	n1 := strings.Join([]string{
		"# HELP gspc_jobs_total Jobs accepted.",
		"# TYPE gspc_jobs_total counter",
		"gspc_jobs_total 10",
		"# HELP gspc_queue_depth Jobs queued.",
		"# TYPE gspc_queue_depth gauge",
		"gspc_queue_depth 2",
		"# HELP gspc_job_duration_seconds Job wall time.",
		"# TYPE gspc_job_duration_seconds histogram",
		`gspc_job_duration_seconds_bucket{le="1"} 3`,
		`gspc_job_duration_seconds_bucket{le="+Inf"} 4`,
		"gspc_job_duration_seconds_sum 5.5",
		"gspc_job_duration_seconds_count 4",
		"",
	}, "\n")
	n2 := strings.Join([]string{
		"# HELP gspc_jobs_total Jobs accepted.",
		"# TYPE gspc_jobs_total counter",
		"gspc_jobs_total 7",
		"# HELP gspc_cache_hits_total Cache hits by kind.",
		"# TYPE gspc_cache_hits_total counter",
		`gspc_cache_hits_total{kind="exact"} 5`,
		"",
	}, "\n")

	got := string(Federate([]FederatedScrape{
		{Node: "n1", Body: []byte(n1)},
		{Node: "n2", Body: []byte(n2)},
	}))
	want := strings.Join([]string{
		"# HELP gspc_cache_hits_total Cache hits by kind.",
		"# TYPE gspc_cache_hits_total counter",
		`gspc_cache_hits_total{node="n2",kind="exact"} 5`,
		"# HELP gspc_job_duration_seconds Job wall time.",
		"# TYPE gspc_job_duration_seconds histogram",
		`gspc_job_duration_seconds_bucket{node="n1",le="1"} 3`,
		`gspc_job_duration_seconds_bucket{node="n1",le="+Inf"} 4`,
		`gspc_job_duration_seconds_sum{node="n1"} 5.5`,
		`gspc_job_duration_seconds_count{node="n1"} 4`,
		"# HELP gspc_jobs_total Jobs accepted.",
		"# TYPE gspc_jobs_total counter",
		`gspc_jobs_total{node="n1"} 10`,
		`gspc_jobs_total{node="n2"} 7`,
		"# HELP gspc_queue_depth Jobs queued.",
		"# TYPE gspc_queue_depth gauge",
		`gspc_queue_depth{node="n1"} 2`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("federated exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestFederateIsDeterministic(t *testing.T) {
	scrapes := []FederatedScrape{
		{Node: "b", Body: []byte("# TYPE m counter\nm 1\n")},
		{Node: "a", Body: []byte("# TYPE m counter\nm 2\n")},
	}
	first := string(Federate(scrapes))
	for i := 0; i < 5; i++ {
		if got := string(Federate(scrapes)); got != first {
			t.Fatalf("federation not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestFederateEscapesNodeLabel(t *testing.T) {
	got := string(Federate([]FederatedScrape{
		{Node: `no"de\1`, Body: []byte("m 1\n")},
	}))
	if !strings.Contains(got, `m{node="no\"de\\1"} 1`) {
		t.Errorf("node label not escaped:\n%s", got)
	}
}

func TestFederateHandlesUnheaderedAndEmptyLabelSeries(t *testing.T) {
	body := "m_no_header{} 4\nplain 9\n"
	got := string(Federate([]FederatedScrape{{Node: "x", Body: []byte(body)}}))
	for _, want := range []string{
		"# TYPE m_no_header untyped",
		`m_no_header{node="x"} 4`,
		`plain{node="x"} 9`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestFederateKeepsTimestampedValue(t *testing.T) {
	got := string(Federate([]FederatedScrape{
		{Node: "x", Body: []byte("m 3 1712345678\n")},
	}))
	if !strings.Contains(got, `m{node="x"} 3 1712345678`) {
		t.Errorf("timestamp dropped:\n%s", got)
	}
}
