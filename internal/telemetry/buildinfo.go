package telemetry

import (
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary: module version, VCS revision,
// and toolchain. Served at /versionz and by gspcd -version.
type Build struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

// BuildInfo reads the binary's embedded build information. Fields
// absent from the build (e.g. a non-VCS build) stay empty; Version
// falls back to "(devel)" semantics exactly as the toolchain stamps it.
func BuildInfo() Build {
	b := Build{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}
