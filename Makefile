# Developer entry points for the gspc reproduction.

GO ?= go

# PR stamps the bench capture file: `make bench PR=7` writes
# BENCH_PR8.json (also settable via the PR environment variable).
PR ?= 8

# Benchmarks captured by `make bench` into BENCH_PR$(PR).json. Fig1 runs
# first so the figure benches that follow measure the warm-trace-cache
# path (the deployment steady state); the micro benches isolate the
# synthesis, replay, and cache-lookup stages.
BENCHES = BenchmarkFig1$$|BenchmarkFig12$$|BenchmarkFig12SampledS1$$|BenchmarkFig12ExactQuarter$$|BenchmarkFig15$$|BenchmarkTraceGeneration$$|BenchmarkTraceGenerationPacked$$|BenchmarkLLCAccessDRRIP$$|BenchmarkLLCAccessDRRIPPacked$$|BenchmarkLLCAccessDRRIPSampled$$|BenchmarkTraceCacheWarm$$

# bench-capture pipes through a prebuilt benchjson ($(BENCHJSON)) when
# one is given — CI builds the tool once from the PR head, then benches
# both sides of the merge base with the same binary.
BENCHJSON ?= $(GO) run ./cmd/benchjson

.PHONY: all build test race bench bench-capture bench-compare soak

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tracecache/ ./internal/harness/ ./internal/service/

bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 3x . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -pr $(PR) -label "$(shell git rev-parse --short HEAD 2>/dev/null)" \
		> BENCH_PR$(PR).json

# bench-capture writes an unstamped capture to OUT (default bench.json)
# for the CI perf gate, which benches the merge base and the head
# back-to-back on the same runner and diffs the two captures.
bench-capture:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 3x . \
		| tee /dev/stderr \
		| $(BENCHJSON) > $(or $(OUT),bench.json)

# bench-compare diffs two captures and fails on a >5% ns/op regression:
# `make bench-compare BASE=BENCH_PR6.json CAND=BENCH_PR7.json`.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BASE) $(CAND)

# soak runs the CI-shaped network-weather soak locally: 90 seconds of
# seeded traffic/fault weather with leak and partial-deadlock checks,
# under the race detector.
soak:
	$(GO) run -race ./cmd/gspc-swarm -soak -duration 90s -seed 1 -nodes 3
