// Command gspcd serves the paper's experiments over HTTP: a bounded job
// queue, a worker pool, request coalescing, and a result cache whose
// eviction is handled by the repo's own LLC replacement policies.
//
// Usage:
//
//	gspcd [-addr :8080] [-queue 64] [-workers N] [-sim-workers N]
//	      [-cache-entries 128] [-cache-policy lru|nru|drrip]
//	      [-job-timeout 0] [-max-retries 2] [-retry-backoff 50ms]
//	      [-breaker-threshold 5] [-breaker-cooldown 30s]
//	      [-serve-stale] [-max-work 0] [-expose-stacks]
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining/saturated/broken)
//	GET  /metricsz         counters: hits/misses, queue depth, latency percentiles
//	GET  /v1/experiments   runnable experiment ids
//	POST /v1/runs          {"experiment":"fig12","frames":1,...}; ?wait=0 queues,
//	                       ?timeout_ms=N caps the run deadline
//	GET  /v1/runs/{id}     job status and result
//
// SIGINT/SIGTERM drain in-flight jobs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gspc/internal/harness"
	"gspc/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "job queue depth (beyond this, POSTs get 429)")
		workers     = flag.Int("workers", 0, "concurrent experiment runners (0 = GOMAXPROCS)")
		simWorkers  = flag.Int("sim-workers", 0, "default per-experiment trace-synthesis workers for requests that leave it unset (0 = harness default)")
		cacheSize   = flag.Int("cache-entries", 128, "result cache capacity in entries (0 disables)")
		cachePolicy = flag.String("cache-policy", "lru", "result cache eviction policy: "+strings.Join(service.CachePolicyNames(), "|"))
		drain       = flag.Duration("drain-timeout", 5*time.Minute, "max time to drain in-flight jobs on shutdown")

		jobTimeout   = flag.Duration("job-timeout", 0, "engine-wide per-job deadline; request timeout_ms can only tighten it (0 = none)")
		maxRetries   = flag.Int("max-retries", 2, "retries for transient failures (-1 disables)")
		backoff      = flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff; attempt k waits base*2^k with jitter")
		brkThresh    = flag.Int("breaker-threshold", 5, "consecutive failures before an experiment's circuit breaker opens (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker fast-fails before probing")
		serveStale   = flag.Bool("serve-stale", false, "while a breaker is open, answer with the experiment's last good result instead of 503")
		maxWork      = flag.Float64("max-work", 0, "admission ceiling in frame-equivalents (frames × scale²) per request (0 = unlimited)")
		exposeStacks = flag.Bool("expose-stacks", false, "include recovered panic stacks in GET /v1/runs/{id} responses (debugging aid; stacks are always logged server-side)")
		traceCacheMB = flag.Int64("trace-cache-mb", harness.DefaultTraceCacheBytes>>20, "byte budget of the shared frame-trace cache in MiB (0 disables retention; synthesis is still deduplicated)")
	)
	flag.Parse()
	harness.SharedTraceCache().SetBudget(*traceCacheMB << 20)

	cfg := service.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		CacheEntries:     *cacheSize,
		CachePolicy:      *cachePolicy,
		JobTimeout:       *jobTimeout,
		MaxRetries:       *maxRetries,
		RetryBackoff:     *backoff,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ServeStale:       *serveStale,
		MaxWork:          *maxWork,
		ExposeStacks:     *exposeStacks,
	}
	if *simWorkers > 0 {
		sw := *simWorkers
		cfg.Run = func(ctx context.Context, r service.Request) (*harness.Result, error) {
			o := r.Options()
			if o.Workers == 0 {
				o.Workers = sw
			}
			return harness.RunResultContext(ctx, r.Experiment, o)
		}
	}
	engine, err := service.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcd:", err)
		os.Exit(2)
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(engine)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gspcd: listening on %s (queue %d, cache %d entries, policy %s)",
		*addr, *queue, *cacheSize, *cachePolicy)

	select {
	case err := <-errc:
		log.Fatalf("gspcd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("gspcd: shutting down, draining in-flight jobs (timeout %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("gspcd: http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutCtx); err != nil {
		log.Printf("gspcd: engine drain: %v", err)
		os.Exit(1)
	}
	m := engine.Metrics()
	log.Printf("gspcd: drained; served %d requests (%d cache hits, %d coalesced, %d rejected)",
		m.Requests, m.CacheHits, m.Coalesced, m.Rejected)
}
