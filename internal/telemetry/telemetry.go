// Package telemetry is the dependency-free observability layer of the
// serving stack: per-run span tracing exported as Chrome/Perfetto
// trace-event JSON, hand-rolled Prometheus primitives (counters,
// gauges, histograms and a text-exposition writer), process-global
// simulator-domain counters, a fixed-size flight recorder of recent
// lifecycle events, and build identification.
//
// The package deliberately has no dependencies beyond the standard
// library, and every recording entry point is nil-safe and cheap: a
// span on an untraced run is two nil checks, a recorded span is one
// atomic slot reservation plus a struct store. The hot simulation
// loops (tens of millions of accesses per frame) are never touched —
// spans wrap frames, policy replays, and timing simulations, not
// individual accesses.
package telemetry

import (
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// record is trivially serializable to the trace-event "args" object.
type Attr struct {
	Key, Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// SpanRecord is one completed span: a named interval within a Run,
// positioned relative to the run's anchor time.
type SpanRecord struct {
	Name  string
	Cat   string
	Start time.Duration // offset from the run anchor
	Dur   time.Duration
	Attrs []Attr
}

// Run records the spans of one traced job. All methods are safe for
// concurrent use and nil-safe: every recording call on a nil *Run is a
// no-op, so untraced work pays only the nil check.
//
// Storage is a fixed array of slots. A finished span reserves a slot
// with one atomic increment and publishes it with an atomic flag; spans
// beyond the capacity are counted as dropped rather than reallocating —
// a run can never grow without bound however long it executes.
type Run struct {
	// TraceID identifies the run across logs, job status, and the
	// exported trace.
	TraceID string
	// ParentSpan, when non-empty, names the remote span that caused this
	// run (a coordinator forward attempt). It must be set before the run
	// is shared across goroutines; the trace stitcher uses it to attach
	// the member's span set under the right coordinator attempt.
	ParentSpan string

	anchor  time.Time
	slots   []SpanRecord
	filled  []atomic.Bool
	next    atomic.Int64
	dropped atomic.Int64
}

// DefaultMaxSpans bounds a run's span storage when NewRun is given a
// non-positive capacity: enough for the full 52-frame suite replaying
// every policy with headroom.
const DefaultMaxSpans = 8192

// NewRun starts a trace anchored at now, holding at most maxSpans spans
// (<= 0 selects DefaultMaxSpans).
func NewRun(traceID string, maxSpans int) *Run {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Run{
		TraceID: traceID,
		anchor:  time.Now(),
		slots:   make([]SpanRecord, maxSpans),
		filled:  make([]atomic.Bool, maxSpans),
	}
}

// NewTraceID mints a random 64-bit trace id in hex. Collisions across a
// process lifetime are harmless (trace ids are correlation hints, not
// keys), so math/rand is sufficient and keeps the package
// dependency-free.
func NewTraceID() string {
	return strconv.FormatUint(rand.Uint64()|1<<63, 16)
}

// Span is an open interval; End completes and records it. A nil *Span
// (from a nil Run) ends as a no-op.
type Span struct {
	run   *Run
	name  string
	cat   string
	start time.Time
	attrs []Attr
}

// Start opens a span. The returned span must be completed with End;
// until then nothing is published.
func (r *Run) Start(name, cat string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	return &Span{run: r, name: name, cat: cat, start: time.Now(), attrs: attrs}
}

// Record stores an already-measured interval, e.g. queue wait computed
// from timestamps the engine tracked anyway.
func (r *Run) Record(name, cat string, start, end time.Time, attrs ...Attr) {
	if r == nil {
		return
	}
	r.publish(SpanRecord{Name: name, Cat: cat, Start: start.Sub(r.anchor), Dur: end.Sub(start), Attrs: attrs})
}

// Attr appends an annotation to an open span — useful when the value
// (an outcome, a count) is only known after Start. No-op on nil.
func (s *Span) Attr(a ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, a...)
	return s
}

// End completes the span and publishes it to the run.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.run.publish(SpanRecord{
		Name:  s.name,
		Cat:   s.cat,
		Start: s.start.Sub(s.run.anchor),
		Dur:   time.Since(s.start),
		Attrs: s.attrs,
	})
}

// publish reserves a slot and stores the record. Slots are written
// exactly once and flagged filled afterward, so Snapshot can read
// concurrently without tearing a half-written record.
func (r *Run) publish(rec SpanRecord) {
	i := r.next.Add(1) - 1
	if int(i) >= len(r.slots) {
		r.dropped.Add(1)
		return
	}
	r.slots[i] = rec
	r.filled[i].Store(true)
}

// Dropped reports how many spans were discarded because the run's slot
// capacity was exhausted.
func (r *Run) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Anchor returns the run's time origin (span Start offsets are relative
// to it).
func (r *Run) Anchor() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.anchor
}

// Snapshot returns the published spans in reservation order. Concurrent
// publishes may still be in flight; only fully-written slots are
// returned, so a scrape during a run sees a consistent prefix-ish view.
func (r *Run) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	if int64(len(r.slots)) < n {
		n = int64(len(r.slots))
	}
	out := make([]SpanRecord, 0, n)
	for i := int64(0); i < n; i++ {
		if r.filled[i].Load() {
			out = append(out, r.slots[i])
		}
	}
	return out
}
