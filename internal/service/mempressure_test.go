package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/harness"
	"gspc/internal/membudget"
)

// pressureLimit is a governor budget so far above any real heap that
// only explicit Reserve calls move the ladder in these tests.
const pressureLimit = int64(1) << 40

func newTestGovernor(t *testing.T) *membudget.Governor {
	t.Helper()
	g, err := membudget.New(membudget.Config{Limit: pressureLimit, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// press reserves the given fraction of the budget, stepping the ladder
// up immediately (default watermarks: 0.65 shrink, 0.75 sampled,
// 0.85 stale-only, 0.95 shed).
func press(g *membudget.Governor, frac float64) {
	g.Reserve(int64(frac * float64(pressureLimit)))
}

func TestMemoryShedRefusesWith429RetryAfter(t *testing.T) {
	var calls int64
	g := newTestGovernor(t)
	ts, e := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls), Governor: g})

	press(g, 0.96)
	resp, body := postRun(t, ts.URL, `{"experiment":"fig12","frames":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed-rung submit = %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	if !strings.Contains(string(body), "memory pressure") || !strings.Contains(string(body), "shed") {
		t.Errorf("shed body %s does not name memory pressure", body)
	}
	if got := atomic.LoadInt64(&calls); got != 0 {
		t.Errorf("shed request still ran %d simulations", got)
	}
	m := e.Metrics()
	if m.Memory == nil || m.Memory.Shed != 1 {
		t.Errorf("Memory.Shed = %+v, want 1", m.Memory)
	}
	if m.Memory != nil && m.Memory.Rung != "shed" {
		t.Errorf("metrics rung = %q, want shed", m.Memory.Rung)
	}
}

func TestMemoryStaleOnlyServesLastGoodOr503(t *testing.T) {
	var calls int64
	g := newTestGovernor(t)
	ts, e := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls), Governor: g})

	// Healthy: one exact run records fig12's last good result.
	if resp, body := postRun(t, ts.URL, `{"experiment":"fig12","frames":1}`); resp.StatusCode != 200 {
		t.Fatalf("healthy submit = %d %s", resp.StatusCode, body)
	}

	press(g, 0.90)
	// A new fig12 key is answered from the remembered result, marked stale.
	resp, _ := postRun(t, ts.URL, `{"experiment":"fig12","frames":2}`)
	if resp.StatusCode != 200 {
		t.Fatalf("stale-only submit = %d, want 200 from last good", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Cache"); got != "stale" {
		t.Errorf("disposition = %q, want stale", got)
	}
	// An experiment with no remembered result gets 503 + Retry-After.
	resp, body := postRun(t, ts.URL, `{"experiment":"fig15","frames":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-stale submit = %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	if !strings.Contains(string(body), "no stale result") {
		t.Errorf("503 body %s does not explain the stale-only rung", body)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("stale-only rung ran %d simulations, want only the healthy one", got)
	}
	if m := e.Metrics(); m.Memory == nil || m.Memory.StaleServed != 1 {
		t.Errorf("Memory.StaleServed = %+v, want 1", m.Memory)
	}
}

func TestMemorySampledDowngradeMarksResponses(t *testing.T) {
	var calls int64
	g := newTestGovernor(t)
	ts, e := newTestServer(t, Config{Workers: 2, CacheEntries: 8, Run: countingRunner(&calls), Governor: g})

	press(g, 0.80)
	// Sync: the exact request is admitted as its sampled twin and says so.
	resp, _ := postRun(t, ts.URL, `{"experiment":"fig12","frames":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("downgraded submit = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Fidelity-Downgraded"); got != "memory" {
		t.Errorf("X-Gspc-Fidelity-Downgraded = %q, want memory", got)
	}
	// Async: the 202 ack carries the marker too.
	aresp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
		strings.NewReader(`{"experiment":"fig12","frames":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusAccepted {
		t.Fatalf("async downgraded submit = %d, want 202", aresp.StatusCode)
	}
	if got := aresp.Header.Get("X-Gspc-Fidelity-Downgraded"); got != "memory" {
		t.Errorf("async X-Gspc-Fidelity-Downgraded = %q, want memory", got)
	}
	// Engine-level: the reply flag and counter agree, and the request
	// really ran at sampled fidelity (already-sampled requests are not
	// double-counted).
	rep, err := e.Do(context.Background(), Request{Experiment: "fig15", Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Downgraded {
		t.Error("engine reply not marked downgraded")
	}
	rep, err = e.Do(context.Background(), Request{Experiment: "fig15", Frames: 2, Fidelity: harness.FidelitySampled})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Downgraded {
		t.Error("already-sampled request marked downgraded")
	}
	if m := e.Metrics(); m.Memory == nil || m.Memory.Downgrades != 3 {
		t.Errorf("Memory.Downgrades = %+v, want 3", m.Memory)
	}
}

// TestMemoryDowngradeSuppressesEscalation: with -escalate-sampled, a
// sampled job finishing under memory pressure must NOT spawn its exact
// twin — the twin is exactly the work the ladder is shedding.
func TestMemoryDowngradeSuppressesEscalation(t *testing.T) {
	var calls int64
	g := newTestGovernor(t)
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, EscalateSampled: true,
		Run: countingRunner(&calls), Governor: g})

	press(g, 0.80)
	if _, err := e.Do(context.Background(), Request{Experiment: "fig12", Frames: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := e.Metrics(); m.Memory != nil && m.Memory.EscalationsSkipped == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("EscalationsSkipped = %+v, want 1", e.Metrics().Memory)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner ran %d times, want 1 (no exact twin under pressure)", got)
	}
}

// TestMemoryLadderRecoveryRestoresService: after the pressure is
// released and the hold-downs elapse, the same engine serves exact
// requests again with no downgrade marking.
func TestMemoryLadderRecoveryRestoresService(t *testing.T) {
	var calls int64
	g, err := membudget.New(membudget.Config{Limit: pressureLimit,
		HoldDown: 10 * time.Millisecond, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls), Governor: g})

	frac := 0.96
	reserve := int64(frac * float64(pressureLimit))
	g.Reserve(reserve)
	if resp, _ := postRun(t, ts.URL, `{"experiment":"fig12","frames":1}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit = %d, want 429", resp.StatusCode)
	}
	g.Release(reserve)
	deadline := time.Now().Add(5 * time.Second)
	for g.Evaluate() != membudget.RungHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("ladder stuck at %s after release", g.Rung())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := postRun(t, ts.URL, `{"experiment":"fig12","frames":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("post-recovery submit = %d %s, want 200", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Gspc-Fidelity-Downgraded"); got != "" {
		t.Errorf("post-recovery response still marked downgraded %q", got)
	}
}

// TestAdmissionSampledDiscountMessage pins the MaxWork rejection for
// sampled requests: the reported frame-equivalent figure must be the
// discounted one admission actually compared, and the message must say
// so, or the "lower scale, frames, or apps" hint overstates by 8×.
func TestAdmissionSampledDiscountMessage(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 1, MaxWork: 0.5, Run: countingRunner(&calls)})

	req := Request{Experiment: "fig12", Frames: 4, Apps: []string{"Dirt", "HAWX"},
		Scale: 1, Fidelity: harness.FidelitySampled}
	nreq, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	exactWork := float64(len(nreq.Options().Jobs())) * nreq.Scale * nreq.Scale
	if exactWork/8 <= 0.5 {
		t.Fatalf("test request too small: discounted work %.2f under ceiling", exactWork/8)
	}

	_, err = e.Do(context.Background(), req)
	var bad *BadRequestError
	if !errors.As(err, &bad) {
		t.Fatalf("over-ceiling sampled submit err = %v, want BadRequestError", err)
	}
	wantFigure := fmt.Sprintf("%.2f frame-equivalents", exactWork/8)
	if !strings.Contains(bad.Reason, wantFigure) {
		t.Errorf("rejection %q does not report the discounted figure %q", bad.Reason, wantFigure)
	}
	if !strings.Contains(bad.Reason, "÷ 8 sampled-fidelity discount") {
		t.Errorf("rejection %q does not name the discount formula", bad.Reason)
	}

	// The exact twin reports the undiscounted figure with the plain formula.
	req.Fidelity = harness.FidelityExact
	_, err = e.Do(context.Background(), req)
	if !errors.As(err, &bad) {
		t.Fatalf("over-ceiling exact submit err = %v, want BadRequestError", err)
	}
	if want := fmt.Sprintf("%.2f frame-equivalents", exactWork); !strings.Contains(bad.Reason, want) {
		t.Errorf("exact rejection %q does not report %q", bad.Reason, want)
	}
	if strings.Contains(bad.Reason, "discount") {
		t.Errorf("exact rejection %q mentions the sampled discount", bad.Reason)
	}
}

func TestAdmissionMaxRequestBytes(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 1, MaxRequestBytes: 1, Run: countingRunner(&calls)})

	_, err := e.Do(context.Background(), Request{Experiment: "fig12", Frames: 1})
	var bad *BadRequestError
	if !errors.As(err, &bad) {
		t.Fatalf("over-byte-ceiling submit err = %v, want BadRequestError", err)
	}
	if !strings.Contains(bad.Reason, "in-flight trace memory") {
		t.Errorf("rejection %q does not name the byte ceiling", bad.Reason)
	}
	if got := atomic.LoadInt64(&calls); got != 0 {
		t.Errorf("rejected request still ran %d simulations", got)
	}
}

// TestQueueFull429CarriesRetryAfter pins backpressure parity: the 429 a
// full queue produces must carry Retry-After exactly like the breaker's
// 503 (pinned in TestServerBreakerMapsTo503RetryAfter) and the memory
// ladder's 429.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	var calls int64
	started := make(chan string, 1)
	release := make(chan struct{})
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: 0,
		Run: gatedRunner(started, release, &calls)})
	defer close(release)

	async := func(frames int) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
			strings.NewReader(fmt.Sprintf(`{"experiment":"fig12","frames":%d}`, frames)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := async(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	<-started // the worker holds job 1; the queue is empty again
	if resp := async(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", resp.StatusCode)
	}
	resp := async(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("queue-full Retry-After = %q, want a positive whole-second hint", ra)
	}
}
