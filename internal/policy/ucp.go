package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// UCP is utility-based cache partitioning (Qureshi and Patt [41],
// Section 1.1.1 of the paper) applied to the four graphics stream groups
// the way TAP [28] applies it to CPU/GPU threads. UMON-style shadow tags
// in sampled sets record each group's marginal hit utility per way; a
// periodic lookahead pass re-partitions the ways; the replacement victim
// is the LRU block of the most over-allocated group.
//
// The paper argues (Section 1.1.2) that explicit partitioning cannot
// serve 3D rendering because the streams share data (render target
// production feeds texture consumption); this implementation exists to
// demonstrate exactly that effect in the ext-ucp experiment.
type UCP struct {
	ways int
	sets int

	// Main-array metadata.
	group []uint8
	stamp []uint64
	clock uint64

	// UMON: for each sampled set and group, a shadow LRU stack of block
	// numbers; way-position hit counters accumulate marginal utility.
	shadow map[int]*[NumStreamGroups][]uint64
	hits   [NumStreamGroups][]int64 // per way position
	access int64
	alloc  [NumStreamGroups]int
}

var _ cachesim.Policy = (*UCP)(nil)

// ucpSampleEvery selects one UMON set per this many sets.
const ucpSampleEvery = 32

// ucpRepartitionPeriod is how many accesses between lookahead passes.
const ucpRepartitionPeriod = 1 << 14

// NewUCP returns a utility-based partitioning policy over the graphics
// stream groups.
func NewUCP() *UCP { return &UCP{} }

// Name implements cachesim.Policy.
func (p *UCP) Name() string { return "UCP" }

// Reset implements cachesim.Policy.
func (p *UCP) Reset(sets, ways int) {
	p.ways = ways
	p.sets = sets
	n := sets * ways
	p.group = make([]uint8, n)
	p.stamp = make([]uint64, n)
	p.clock = 0
	p.shadow = make(map[int]*[NumStreamGroups][]uint64)
	for g := range p.hits {
		p.hits[g] = make([]int64, ways)
	}
	p.access = 0
	// Start with an even split, remainder to the render target group
	// (the heaviest stream).
	base := ways / int(NumStreamGroups)
	rem := ways - base*int(NumStreamGroups)
	for g := range p.alloc {
		p.alloc[g] = base
	}
	p.alloc[GroupRT] += rem
}

// Allocation exposes the current per-group way allocation for tests.
func (p *UCP) Allocation() [NumStreamGroups]int { return p.alloc }

func (p *UCP) isUMONSet(set int) bool { return set%ucpSampleEvery == 0 }

// umon updates the shadow stack of the access's group and records the
// way-position utility.
func (p *UCP) umon(set int, a stream.Access) {
	st := p.shadow[set]
	if st == nil {
		st = &[NumStreamGroups][]uint64{}
		p.shadow[set] = st
	}
	g := GroupOf(a.Kind)
	bn := a.Addr >> 6
	stack := st[g]
	for i, b := range stack {
		if b == bn {
			p.hits[g][i]++
			copy(stack[1:i+1], stack[:i])
			stack[0] = bn
			return
		}
	}
	if len(stack) < p.ways {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack)
	stack[0] = bn
	st[g] = stack
}

// repartition runs greedy lookahead: repeatedly grant the next way to
// the group with the highest remaining marginal utility, then halve the
// counters so the partition tracks phase changes.
func (p *UCP) repartition() {
	taken := [NumStreamGroups]int{}
	var next [NumStreamGroups]int
	for w := 0; w < p.ways; w++ {
		best, bestU := 0, int64(-1)
		for g := 0; g < int(NumStreamGroups); g++ {
			if next[g] >= p.ways {
				continue
			}
			if u := p.hits[g][next[g]]; u > bestU {
				best, bestU = g, u
			}
		}
		taken[best]++
		next[best]++
	}
	// Guarantee one way per group so no stream starves completely.
	for g := 0; g < int(NumStreamGroups); g++ {
		for taken[g] == 0 {
			donor, most := 0, 0
			for h := 0; h < int(NumStreamGroups); h++ {
				if taken[h] > most {
					donor, most = h, taken[h]
				}
			}
			taken[donor]--
			taken[g]++
		}
	}
	p.alloc = taken
	for g := range p.hits {
		for i := range p.hits[g] {
			p.hits[g][i] >>= 1
		}
	}
}

func (p *UCP) note(set int, a stream.Access) {
	p.access++
	if p.isUMONSet(set) {
		p.umon(set, a)
	}
	if p.access%ucpRepartitionPeriod == 0 {
		p.repartition()
	}
}

// Hit implements cachesim.Policy.
func (p *UCP) Hit(set, way int, a stream.Access) {
	p.note(set, a)
	i := set*p.ways + way
	p.clock++
	p.stamp[i] = p.clock
	p.group[i] = uint8(GroupOf(a.Kind))
}

// Fill implements cachesim.Policy.
func (p *UCP) Fill(set, way int, a stream.Access) {
	p.note(set, a)
	i := set*p.ways + way
	p.clock++
	p.stamp[i] = p.clock
	p.group[i] = uint8(GroupOf(a.Kind))
}

// Victim implements cachesim.Policy: evict the LRU block of the group
// most over its allocation; if the filling group is under-allocated it
// may take from any over-allocated group. Falls back to plain LRU when
// no group exceeds its share.
func (p *UCP) Victim(set int, a stream.Access) int {
	base := set * p.ways
	var count [NumStreamGroups]int
	for w := 0; w < p.ways; w++ {
		count[p.group[base+w]]++
	}
	overG, overBy := -1, 0
	for g := 0; g < int(NumStreamGroups); g++ {
		if ov := count[g] - p.alloc[g]; ov > overBy {
			overG, overBy = g, ov
		}
	}
	victim, oldest := -1, uint64(1<<63)
	if overG >= 0 {
		for w := 0; w < p.ways; w++ {
			if int(p.group[base+w]) == overG && p.stamp[base+w] < oldest {
				victim, oldest = w, p.stamp[base+w]
			}
		}
		if victim >= 0 {
			return victim
		}
	}
	for w := 0; w < p.ways; w++ {
		if p.stamp[base+w] < oldest {
			victim, oldest = w, p.stamp[base+w]
		}
	}
	return victim
}

// Evict implements cachesim.Policy.
func (p *UCP) Evict(set, way int) {
	i := set*p.ways + way
	p.stamp[i] = 0
	p.group[i] = uint8(GroupOther)
}
