package service

import (
	"testing"
	"time"
)

// TestQuantileInterpolates pins the linear-interpolation quantiles on a
// known distribution. The old truncating rank (int(q·(n-1))) returned
// 95 for p95 of 1..100; the interpolated value is 95.05.
func TestQuantileInterpolates(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1)
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1},
		{0.50, 50.5},
		{0.95, 95.05},
		{0.99, 99.01},
		{1, 100},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); !approxEqual(got, c.want) {
			t.Errorf("quantile(1..100, %g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %g, want 0", got)
	}
	if got := quantile([]float64{7}, 0.95); got != 7 {
		t.Errorf("quantile(single, .95) = %g, want 7", got)
	}
	if got := quantile([]float64{1, 2}, 0.5); !approxEqual(got, 1.5) {
		t.Errorf("quantile([1 2], .5) = %g, want 1.5", got)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var l latencies
	p50, p95 := l.percentiles()
	if p50 != 0 || p95 != 0 {
		t.Errorf("empty window percentiles = %g/%g, want 0/0", p50, p95)
	}
	for i := 1; i <= 100; i++ {
		l.record(time.Duration(i) * time.Millisecond)
	}
	p50, p95 = l.percentiles()
	if !approxEqual(p50, 50.5) || !approxEqual(p95, 95.05) {
		t.Errorf("percentiles over 1..100ms = %g/%g, want 50.5/95.05", p50, p95)
	}
}

// TestLatencyWindowSlides checks the ring keeps only the newest
// latencySamples durations: after overwriting with a constant, the old
// values no longer influence the quantiles.
func TestLatencyWindowSlides(t *testing.T) {
	var l latencies
	for i := 0; i < latencySamples; i++ {
		l.record(time.Second) // 1000ms, will be fully overwritten
	}
	for i := 0; i < latencySamples; i++ {
		l.record(time.Millisecond)
	}
	p50, p95 := l.percentiles()
	if p50 != 1 || p95 != 1 {
		t.Errorf("percentiles after overwrite = %g/%g, want 1/1", p50, p95)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
