package service

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// gspcStacks returns the stacks of live goroutines that run code from
// this module (any gspc/internal/ frame), excluding the calling
// goroutine. It is a dependency-free leak probe: stdlib helpers
// (net/http keep-alives, test machinery) are invisible to it, so a
// non-empty delta means the engine itself leaked.
func gspcStacks() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for i, g := range strings.Split(string(buf[:n]), "\n\n") {
		if i == 0 {
			continue // first stack is the calling goroutine
		}
		if strings.Contains(g, "gspc/internal/") {
			out = append(out, g)
		}
	}
	return out
}

// leakCheck snapshots the module-owned goroutine count and registers a
// cleanup that fails the test if, after a drain window, more of them are
// alive than at the start. Call it before constructing the engine so the
// cleanup runs after the engine's own Shutdown cleanup (t.Cleanup is
// LIFO).
func leakCheck(t *testing.T) {
	t.Helper()
	base := len(gspcStacks())
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var extra []string
		for {
			stacks := gspcStacks()
			if len(stacks) <= base {
				return
			}
			if time.Now().After(deadline) {
				extra = stacks
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		var b strings.Builder
		for _, g := range extra {
			fmt.Fprintf(&b, "%s\n\n", g)
		}
		t.Errorf("goroutine leak: %d gspc goroutines alive, baseline %d:\n%s",
			len(extra), base, b.String())
	})
}
