package harness

import (
	"context"
	"math"
	"sync"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/telemetry"
	"gspc/internal/trace"
	"gspc/internal/tracecache"
	"gspc/internal/workload"
)

// Fidelity values for Options.Fidelity: exact replays every access of
// the full frame trace (bit-identical to the pre-sampling behavior);
// sampled composes set sampling (simulate 1 in SampleSetRatio LLC sets)
// with interval sampling (synthesize and replay one representative
// window of the frame) and extrapolates the counters, trading a pinned
// error bound for an order-of-magnitude latency cut at full resolution.
const (
	FidelityExact   = "exact"
	FidelitySampled = "sampled"
)

// DefaultSampleSetRatio is the set-sampling ratio sampled runs use when
// Options.SampleSetRatio is unset: 1 in 16 sets.
const DefaultSampleSetRatio = 16

// Interval-sampling shape. Trace record count follows n(s) ≈ b + a·s²:
// a flat per-frame floor (state setup, low-LOD geometry that does not
// shrink with resolution) plus an area term, with the knee near scale
// 0.06. The profiling prepass therefore renders the frame at two fixed
// scales above the knee — profileScale1 and profileScale2, where the
// a·s² term is visible — fits both model coefficients, and extrapolates
// the full-scale record count. Profiles taken inside the floor region
// carry no growth signal (n is flat there), which is why the scales are
// absolute rather than a fraction of the target: interval sampling only
// engages at all when the target scale is at least minIntervalScale, so
// the profiles cost well under half of what they replace.
//
// The larger profile is split into windowIntervals equal intervals and
// the windowMeasured contiguous intervals whose stream-kind mix is
// closest (L1) to the whole frame's become the measured window. Trace
// synthesis costs ~1.2µs per record while replay costs ~70ns, so the
// run's cost is essentially the synthesized prefix [0, window end):
// later windows cost proportionally more — latenessPenalty biases the
// choice toward early windows and maxEndFrac caps the prefix so a
// sampled full-scale run stays cheaper than an exact quarter-scale one.
// The entire prefix before the measured window is replayed as warmup
// (counters discarded): it is already synthesized, and replaying it
// costs ~5% of what synthesizing it did.
const (
	profileScale1    = 0.0625
	profileScale2    = 0.125
	minIntervalScale = 0.25
	windowIntervals  = 128
	windowMeasured   = 4
	maxEndFrac       = 0.0625
	latenessPenalty  = 0.3
)

// sampled reports whether the (normalized) options request sampled
// fidelity.
func (o Options) sampled() bool { return o.Fidelity == FidelitySampled }

// samplePlan carries the per-frame sampling decisions from trace
// acquisition into the replay helpers: the set-sampling configuration,
// the warmup/measured boundaries inside the (prefix-truncated) trace,
// and the extrapolation factor. A nil plan means exact fidelity and
// leaves every code path bit-identical to the pre-sampling behavior.
type samplePlan struct {
	sample cachesim.SetSample
	// warmStart and measStart bound the replay: [warmStart, measStart)
	// warms the cache with counters discarded, [measStart, tr.Len())
	// is measured. warmStart == measStart == 0 measures the whole trace.
	warmStart, measStart int
	// fullEst is the estimated record count of the full (untruncated)
	// trace, extrapolated from the profiling prepass by the area ratio.
	fullEst float64
	// factor extrapolates measured-window counters to the full trace:
	// fullEst / measured-window records. Set-sampling scaling
	// (Cache.SampleFactor) composes on top.
	factor float64
	agg    *sampleAgg
}

// scaleFor returns the total counter scale for one finished replay.
func (p *samplePlan) scaleFor(c *cachesim.Cache) float64 {
	return p.factor * c.SampleFactor()
}

// observe folds one finished measured replay into the run's aggregate
// sampling report and the process telemetry counters.
func (p *samplePlan) observe(c *cachesim.Cache) {
	rep := c.SampleReport()
	measured := c.Stats.Accesses + c.Stats.SampledSkips
	telemetry.RecordSampledReplay(int64(rep.SampledSets), int64(rep.TotalSets),
		c.Stats.SampledSkips, c.Stats.Accesses)
	if p.agg == nil {
		return
	}
	winFrac := 0.0
	if p.fullEst > 0 {
		winFrac = float64(measured) / p.fullEst
	}
	p.agg.add(rep, winFrac)
}

// sampleAgg accumulates per-replay sampling reports across a whole
// experiment run; BuildResult turns it into the Result's SamplingReport.
type sampleAgg struct {
	mu          sync.Mutex
	replays     int64
	setsSim     int
	setsTot     int
	rseSum      float64
	winFracSum  float64
	rseMax      float64
	winFracUsed int64
}

func (a *sampleAgg) add(rep cachesim.SampleReport, winFrac float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.replays++
	a.setsSim = rep.SampledSets
	a.setsTot = rep.TotalSets
	a.rseSum += rep.RSE
	if rep.RSE > a.rseMax {
		a.rseMax = rep.RSE
	}
	if winFrac > 0 {
		a.winFracSum += winFrac
		a.winFracUsed++
	}
}

// report snapshots the aggregate for the serialized Result.
func (a *sampleAgg) report(o Options) *SamplingReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.replays == 0 {
		return nil
	}
	r := &SamplingReport{
		SetRatio:      o.SampleSetRatio,
		SetSeed:       o.SampleSeed,
		SetsSimulated: a.setsSim,
		SetsTotal:     a.setsTot,
		Replays:       a.replays,
		EstRelErr:     a.rseSum / float64(a.replays),
		MaxRelErr:     a.rseMax,
	}
	if a.winFracUsed > 0 {
		r.WindowFraction = a.winFracSum / float64(a.winFracUsed)
	}
	return r
}

// estimateFull extrapolates the full-trace record count from two
// profile lengths at scales s1 < s2 by fitting n(s) = b + a·s² — the
// floor-plus-area model the synthesizer empirically follows (within a
// few percent for every app at scales 0.25..1 when anchored at 0.0625
// and 0.125). Falls back to the plain area ratio when the points are
// degenerate, and never estimates below the larger profile.
func estimateFull(n1, n2 int, s1, s2, scale float64) float64 {
	f1, f2 := float64(n1), float64(n2)
	if s2 <= s1 || n2 <= n1 {
		return f2 * (scale / s2) * (scale / s2)
	}
	a := (f2 - f1) / (s2*s2 - s1*s1)
	b := f1 - a*s1*s1
	if b < 0 {
		b = 0
	}
	est := b + a*scale*scale
	if est < f2 {
		est = f2
	}
	return est
}

// windowPick is a measured window expressed as fractions of the full
// trace, as chosen from the profiling prepass. Everything before
// startFrac is warmup; nothing past endFrac is synthesized.
type windowPick struct {
	startFrac, endFrac float64
}

// pickWindow chooses the measured window from a profile trace: the
// windowMeasured contiguous intervals (of windowIntervals) whose
// stream-kind mix is L1-closest to the whole trace's, scored with a
// lateness penalty so that, other things near-equal, an earlier (and
// therefore cheaper to synthesize) window wins. Deterministic: ties
// break toward the earlier window.
func pickWindow(profile *stream.Trace) windowPick {
	n := profile.Len()
	if n < 4*windowIntervals {
		// Too short to split meaningfully: measure everything.
		return windowPick{startFrac: 0, endFrac: 1}
	}
	var counts [windowIntervals][stream.NumKinds]int64
	var totals [stream.NumKinds]int64
	for i := 0; i < n; i++ {
		b := int(int64(i) * windowIntervals / int64(n))
		k := profile.KindAt(i)
		counts[b][k]++
		totals[k]++
	}
	var global [stream.NumKinds]float64
	for k := range global {
		global[k] = float64(totals[k]) / float64(n)
	}
	bestStart, bestScore := 0, math.Inf(1)
	for cs := 0; cs+windowMeasured <= windowIntervals; cs++ {
		endFrac := float64(cs+windowMeasured) / windowIntervals
		if cs > 0 && endFrac > maxEndFrac {
			break
		}
		var win [stream.NumKinds]int64
		var winTot int64
		for i := cs; i < cs+windowMeasured; i++ {
			for k, v := range counts[i] {
				win[k] += v
				winTot += v
			}
		}
		if winTot == 0 {
			continue
		}
		dist := 0.0
		for k := range win {
			dist += math.Abs(float64(win[k])/float64(winTot) - global[k])
		}
		score := dist + latenessPenalty*endFrac
		if score < bestScore {
			bestStart, bestScore = cs, score
		}
	}
	return windowPick{
		startFrac: float64(bestStart) / windowIntervals,
		endFrac:   float64(bestStart+windowMeasured) / windowIntervals,
	}
}

// genTracePrefix synthesizes (through the trace cache) only the first
// limit records of a frame's trace. The prefix of a deterministic
// render is itself deterministic, so prefix traces cache under their
// own key (Key.Prefix) and are shared like full traces.
func genTracePrefix(ctx context.Context, o Options, j workload.FrameJob, limit int) (*stream.Trace, error) {
	o = o.normalized()
	cfg := rendercache.DefaultConfig().Scaled(o.Scale)
	key := tracecache.Key{Job: j.ID(), Scale: o.Scale, Config: cfg.Digest(), Prefix: limit}
	return o.traceCache().Get(ctx, key, func(ctx context.Context) (*stream.Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		defer trackStage(ctx, pickSynth)()
		defer telemetry.StartFrom(ctx, "synthesize-prefix", "synth",
			telemetry.String("job", j.ID()), telemetry.Int("limit", int64(limit))).End()
		t := stream.NewTrace(limit)
		trace.GeneratePackedPrefix(t, j, o.Scale, cfg, limit)
		return t, nil
	})
}

// genTraceSampled acquires the trace and sampling plan for one frame of
// a sampled-fidelity run: profile the frame at a reduced scale, pick
// the representative window, synthesize the full-scale trace only up to
// the window's end, and return the replay boundaries plus extrapolation
// factor. Everything is derived from deterministic inputs (profile
// trace content, options), so identical options produce identical plans
// regardless of worker count or process history.
func genTraceSampled(ctx context.Context, o Options, j workload.FrameJob) (*stream.Trace, *samplePlan, error) {
	o = o.normalized()
	plan := &samplePlan{
		sample: cachesim.SetSample{Ratio: o.SampleSetRatio, Seed: o.SampleSeed},
		factor: 1,
		agg:    o.sampleAgg,
	}
	if o.Scale < minIntervalScale {
		// Below this scale the fixed-scale profiles would cost a large
		// fraction of (or more than) the run they are meant to shortcut,
		// so only set sampling applies, over the full trace.
		tr, err := genTrace(ctx, o, j)
		if err != nil {
			return nil, nil, err
		}
		plan.fullEst = float64(tr.Len())
		return tr, plan, nil
	}
	// Two fixed-scale profiles above the floor knee anchor the length
	// extrapolation (see estimateFull); the larger one, with better
	// interval resolution, picks the window. Both cache under their own
	// scale keys, so repeated sampled runs share them.
	po := o
	po.Scale = profileScale1
	prof1, err := genTrace(ctx, po, j)
	if err != nil {
		return nil, nil, err
	}
	po.Scale = profileScale2
	prof, err := genTrace(ctx, po, j)
	if err != nil {
		return nil, nil, err
	}
	pick := pickWindow(prof)
	fullEst := estimateFull(prof1.Len(), prof.Len(), profileScale1, profileScale2, o.Scale)
	plan.fullEst = fullEst
	if pick.endFrac >= 1 {
		tr, err := genTrace(ctx, o, j)
		if err != nil {
			return nil, nil, err
		}
		plan.fullEst = float64(tr.Len())
		return tr, plan, nil
	}
	limit := int(math.Ceil(pick.endFrac * fullEst))
	tr, err := genTracePrefix(ctx, o, j, limit)
	if err != nil {
		return nil, nil, err
	}
	l := tr.Len()
	// The whole prefix before the measured window is warmup — already
	// paid for in synthesis, nearly free to replay. Indices come from
	// the actual prefix length, not fullEst, so an over-estimated limit
	// (the prefix hit the real end of the trace) still yields a valid
	// window.
	plan.warmStart = 0
	plan.measStart = int(pick.startFrac / pick.endFrac * float64(l))
	if plan.measStart >= l {
		plan.measStart = 0
	}
	if measured := l - plan.measStart; measured > 0 {
		plan.factor = fullEst / float64(measured)
	}
	return tr, plan, nil
}

// acquireFrame returns a frame's trace plus the sampling plan replays
// should follow — a nil plan (exact fidelity) leaves every downstream
// path untouched.
func acquireFrame(ctx context.Context, o Options, j workload.FrameJob) (*stream.Trace, *samplePlan, error) {
	if o.sampled() {
		return genTraceSampled(ctx, o, j)
	}
	tr, err := genTrace(ctx, o, j)
	return tr, nil, err
}

// resetRunCounters marks the warmup/measured boundary: outcome counters
// on the cache, the analysis tracker, and the extractable policy
// counters are zeroed while cache contents and learned policy state
// carry over.
func resetRunCounters(c *cachesim.Cache, tk *analysisTracker, pol cachesim.Policy) {
	c.ResetCounters()
	if tk != nil {
		tk.ResetCounters()
	}
	switch p := pol.(type) {
	case *core.Policy:
		p.Insertions = core.InsertionStats{}
	case *policy.DRRIP:
		p.FillsByKind = [stream.NumKinds]int64{}
		p.DistantFillsByKind = [stream.NumKinds]int64{}
	}
}

// scale64 extrapolates one counter; round-to-nearest keeps ratios of
// scaled counters as close as possible to the ratios of the raw ones.
func scale64(v int64, f float64) int64 {
	if v == 0 || f == 1 {
		return v
	}
	return int64(math.Round(float64(v) * f))
}

func scaleKinds(a *[stream.NumKinds]int64, f float64) {
	for i := range a {
		a[i] = scale64(a[i], f)
	}
}

// scaleFrameResult extrapolates every counter a sampled replay produced
// to full-trace, full-set scale. SampledSkips stays raw: it documents
// the measurement, not the estimate.
func scaleFrameResult(r *frameResult, f float64) {
	if f == 1 {
		return
	}
	s := &r.stats
	s.Accesses = scale64(s.Accesses, f)
	s.Hits = scale64(s.Hits, f)
	s.Misses = scale64(s.Misses, f)
	s.Bypasses = scale64(s.Bypasses, f)
	s.Evictions = scale64(s.Evictions, f)
	s.Writebacks = scale64(s.Writebacks, f)
	scaleKinds(&s.KindAccesses, f)
	scaleKinds(&s.KindHits, f)
	scaleKinds(&s.KindMisses, f)
	if tk := r.tracker; tk != nil {
		scaleKinds(&tk.ReadAccesses, f)
		scaleKinds(&tk.ReadHits, f)
		scaleKinds(&tk.WriteAccesses, f)
		scaleKinds(&tk.WriteHits, f)
		tk.InterTexHits = scale64(tk.InterTexHits, f)
		tk.IntraTexHits = scale64(tk.IntraTexHits, f)
		tk.RTProduced = scale64(tk.RTProduced, f)
		tk.RTConsumed = scale64(tk.RTConsumed, f)
		for i := range tk.TexEpochHits {
			tk.TexEpochHits[i] = scale64(tk.TexEpochHits[i], f)
		}
		for i := range tk.TexEntries {
			tk.TexEntries[i] = scale64(tk.TexEntries[i], f)
		}
		for i := range tk.ZEntries {
			tk.ZEntries[i] = scale64(tk.ZEntries[i], f)
		}
	}
	in := &r.insert
	in.ZDistant = scale64(in.ZDistant, f)
	in.ZLong = scale64(in.ZLong, f)
	in.TexDistant = scale64(in.TexDistant, f)
	in.TexZero = scale64(in.TexZero, f)
	in.RTDistant = scale64(in.RTDistant, f)
	in.RTLong = scale64(in.RTLong, f)
	in.RTZero = scale64(in.RTZero, f)
	in.TexHitDistant = scale64(in.TexHitDistant, f)
	in.TexHitZero = scale64(in.TexHitZero, f)
	scaleKinds(&r.drrip.fills, f)
	scaleKinds(&r.drrip.distant, f)
}
