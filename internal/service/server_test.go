package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/harness"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	e := newTestEngine(t, cfg)
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(ts.Close)
	return ts, e
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerBasicEndpoints(t *testing.T) {
	var calls int64
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls)})

	var health map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}

	var exps struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	getJSON(t, ts.URL+"/v1/experiments", &exps)
	if len(exps.Experiments) != len(harness.All())+len(harness.Extensions()) {
		t.Errorf("experiments listed %d, want %d", len(exps.Experiments), len(harness.All())+len(harness.Extensions()))
	}
	found := false
	for _, e := range exps.Experiments {
		if e.ID == "fig12" && e.Kind == "paper" {
			found = true
		}
	}
	if !found {
		t.Error("fig12 missing from experiment list")
	}

	if resp, body := postRun(t, ts.URL, `{"experiment":"nope"}`); resp.StatusCode != 400 {
		t.Errorf("unknown experiment: %d %s", resp.StatusCode, body)
	}
	if resp, body := postRun(t, ts.URL, `{broken`); resp.StatusCode != 400 {
		t.Errorf("malformed body: %d %s", resp.StatusCode, body)
	}
	if resp := getJSON(t, ts.URL+"/v1/runs/run-999999", nil); resp.StatusCode != 404 {
		t.Errorf("unknown run id: %d", resp.StatusCode)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metricsz", &m)
	if m.QueueCapacity == 0 || m.CachePolicy != "LRU" {
		t.Errorf("metricsz = %+v", m)
	}
}

func TestServerAsyncRunLifecycle(t *testing.T) {
	var calls int64
	started := make(chan string, 1)
	release := make(chan struct{})
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8,
		Run: gatedRunner(started, release, &calls)})

	resp, body := func() (*http.Response, []byte) {
		r, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
			strings.NewReader(`{"experiment":"fig4","frames":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, b
	}()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST = %d %s", resp.StatusCode, body)
	}
	var acc map[string]string
	if err := json.Unmarshal(body, &acc); err != nil || acc["id"] == "" {
		t.Fatalf("async POST body %s: %v", body, err)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/runs/"+acc["id"] {
		t.Errorf("Location = %q", loc)
	}

	<-started // the worker picked the job up
	close(release)
	deadline := time.After(5 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+loc, &st)
		if st.Status == StatusDone {
			if len(st.Result) == 0 {
				t.Error("done job status has no result")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never finished: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner calls = %d, want 1", got)
	}
}

// TestServerEndToEndCachedReplay is the acceptance flow: POST the same
// real experiment twice and require a byte-identical, cache-served,
// faster second response. tab1 needs no trace synthesis, so the real
// harness stays fast enough for -race.
func TestServerEndToEndCachedReplay(t *testing.T) {
	ts, e := newTestServer(t, Config{Workers: 2, CacheEntries: 16})

	body := `{"experiment":"tab1"}`
	resp1, b1 := postRun(t, ts.URL, body)
	if resp1.StatusCode != 200 {
		t.Fatalf("first POST = %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Gspc-Cache"); got != "miss" {
		t.Errorf("first POST cache disposition = %q, want miss", got)
	}
	resp2, b2 := postRun(t, ts.URL, body)
	if resp2.StatusCode != 200 {
		t.Fatalf("second POST = %d %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("second POST cache disposition = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached replay not byte-identical:\n%s\n%s", b1, b2)
	}
	if resp2.Header.Get("X-Gspc-Run") != resp1.Header.Get("X-Gspc-Run") {
		t.Error("cached replay names a different run")
	}

	var res harness.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("result body not a harness.Result: %v", err)
	}
	if res.Experiment != "tab1" || len(res.Table.Rows) == 0 || res.Rendered == "" {
		t.Errorf("result incomplete: %+v", res)
	}

	m := e.Metrics()
	if m.CacheHits != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v, want exactly one computation and one hit", m)
	}
	if m.LatencyP50Ms <= 0 {
		t.Errorf("latency percentiles missing: %+v", m)
	}
}

// TestServerEndToEndFig12 runs the full acceptance criterion — fig12 at
// frames=1 twice — against the real harness. ~12s of simulation, so
// -short skips it.
func TestServerEndToEndFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 runs the full 12-app suite; skipped with -short")
	}
	ts, e := newTestServer(t, Config{Workers: 2, CacheEntries: 16})

	body := `{"experiment":"fig12","frames":1}`
	start := time.Now()
	resp1, b1 := postRun(t, ts.URL, body)
	coldLatency := time.Since(start)
	if resp1.StatusCode != 200 {
		t.Fatalf("first POST = %d %s", resp1.StatusCode, b1)
	}
	start = time.Now()
	resp2, b2 := postRun(t, ts.URL, body)
	warmLatency := time.Since(start)
	if resp2.StatusCode != 200 {
		t.Fatalf("second POST = %d %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("fig12 cached replay not byte-identical")
	}
	if got := resp2.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("second POST disposition = %q, want hit", got)
	}
	if m := e.Metrics(); m.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", m.CacheHits)
	}
	if warmLatency > coldLatency/10 {
		t.Errorf("cached replay latency %v not clearly below cold %v", warmLatency, coldLatency)
	}
	var res harness.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Mean["GSPC+UCD"]; !ok {
		t.Errorf("fig12 result missing GSPC+UCD mean: %v", res.Mean)
	}
}
