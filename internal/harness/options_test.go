package harness

import (
	"reflect"
	"strings"
	"testing"
)

func TestNormalizedDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{"zero options", Options{}, Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"negative scale", Options{Scale: -2}, Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"full scale gets unit capacity factor", Options{Scale: 1}, Options{Scale: 1, CapacityFactor: 1, Fidelity: FidelityExact}},
		{"above full scale", Options{Scale: 2}, Options{Scale: 2, CapacityFactor: 1, Fidelity: FidelityExact}},
		{"explicit factor survives", Options{Scale: 1, CapacityFactor: 1.5}, Options{Scale: 1, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"negative frames clamp", Options{MaxFramesPerApp: -3}, Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"negative workers clamp", Options{Workers: -8}, Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"positive workers survive", Options{Workers: 2}, Options{Scale: 0.25, CapacityFactor: 1.5, Workers: 2, Fidelity: FidelityExact}},
		{"sampled gets ratio and seed defaults", Options{Fidelity: FidelitySampled},
			Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelitySampled, SampleSetRatio: DefaultSampleSetRatio, SampleSeed: 1}},
		{"unknown fidelity canonicalizes to exact", Options{Fidelity: "fast", SampleSetRatio: 8, SampleSeed: 7},
			Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelityExact}},
		{"sampled keeps explicit knobs", Options{Fidelity: FidelitySampled, SampleSetRatio: 8, SampleSeed: 7},
			Options{Scale: 0.25, CapacityFactor: 1.5, Fidelity: FidelitySampled, SampleSetRatio: 8, SampleSeed: 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.in.normalized()
			got.Progress = nil
			got.Apps = nil
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("normalized(%+v) = %+v, want %+v", c.in, got, c.want)
			}
		})
	}
}

func TestNormalizedIdempotent(t *testing.T) {
	o := Options{Scale: -1, CapacityFactor: -1, MaxFramesPerApp: -1, Workers: -1}
	once := o.normalized()
	if twice := once.normalized(); !reflect.DeepEqual(twice, once) {
		t.Errorf("normalized not idempotent: %+v then %+v", once, twice)
	}
	if exp := o.Normalized(); !reflect.DeepEqual(exp, once) {
		t.Errorf("Normalized() = %+v, want %+v", exp, once)
	}
}

func TestGeometryEdgeCases(t *testing.T) {
	const paper8MB = 8 << 20

	t.Run("zero scale uses default", func(t *testing.T) {
		if g, d := (Options{}).Geometry(paper8MB), DefaultOptions().Geometry(paper8MB); g != d {
			t.Errorf("zero-value geometry %v differs from default %v", g, d)
		}
	})

	t.Run("negative scale uses default", func(t *testing.T) {
		if g, d := (Options{Scale: -0.5}).Geometry(paper8MB), DefaultOptions().Geometry(paper8MB); g != d {
			t.Errorf("negative-scale geometry %v differs from default %v", g, d)
		}
	})

	t.Run("full scale is exact", func(t *testing.T) {
		g := Options{Scale: 1}.Geometry(paper8MB)
		if g.SizeBytes != paper8MB || g.Ways != 16 || g.BlockSize != 64 {
			t.Errorf("full-scale geometry = %v, want 8MB/16w/64B", g)
		}
	})

	t.Run("tiny scale floors at 16 sets", func(t *testing.T) {
		g := Options{Scale: 0.01}.Geometry(paper8MB)
		if got, want := g.Sets(), 16; got != want {
			t.Errorf("tiny geometry has %d sets, want floor %d", got, want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("tiny geometry invalid: %v", err)
		}
	})

	t.Run("tiny paper capacity floors at 16 sets", func(t *testing.T) {
		g := DefaultOptions().Geometry(1024)
		if got, want := g.Sets(), 16; got != want {
			t.Errorf("1KB paper capacity gives %d sets, want floor %d", got, want)
		}
	})

	t.Run("all scales quantize to whole sets", func(t *testing.T) {
		for _, s := range []float64{0.1, 0.2, 0.25, 0.33, 0.5, 0.75, 1, 1.5} {
			g := Options{Scale: s}.Geometry(paper8MB)
			if err := g.Validate(); err != nil {
				t.Errorf("scale %g: invalid geometry %v: %v", s, g, err)
			}
			if g.Ways != 16 || g.BlockSize != 64 {
				t.Errorf("scale %g: geometry %v changed ways/block", s, g)
			}
		}
	})
}

func TestBuildResultShape(t *testing.T) {
	e := Experiment{ID: "x", Title: "test experiment"}
	tbl := &Table{Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("App1", 1, 2)
	tbl.AddRow("App2", 3) // short row: only present columns appear
	tbl.AddRow("MEAN", 2, 2)
	r := BuildResult(e, Options{}, tbl)
	if r.Scale != 0.25 || r.CapacityFactor != 1.5 {
		t.Errorf("result options not normalized: %+v", r)
	}
	if got := r.PerApp["App1"]["b"]; got != 2 {
		t.Errorf("PerApp[App1][b] = %v, want 2", got)
	}
	if _, ok := r.PerApp["App2"]["b"]; ok {
		t.Error("short row reported a value for missing column b")
	}
	if _, ok := r.PerApp["MEAN"]; ok {
		t.Error("MEAN row leaked into PerApp")
	}
	if got := r.Mean["a"]; got != 2 {
		t.Errorf("Mean[a] = %v, want 2", got)
	}
	if !strings.Contains(r.Rendered, "App1") {
		t.Error("Rendered table missing rows")
	}
}
