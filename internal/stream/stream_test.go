package stream

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Vertex:  "vertex",
		HiZ:     "hiz",
		Z:       "z",
		Stencil: "stencil",
		RT:      "rt",
		Texture: "texture",
		Display: "display",
		Other:   "other",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind string = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if Kind(NumKinds).Valid() {
		t.Error("NumKinds must not be a valid kind")
	}
}

func TestKindsCoversAll(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(NumKinds) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(ks), NumKinds)
	}
	for i, k := range ks {
		if int(k) != i {
			t.Errorf("Kinds()[%d] = %v", i, k)
		}
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Addr: 0x1000, Kind: Z, Write: true}
	if got := a.String(); got != "z W 0x1000" {
		t.Errorf("Access.String() = %q", got)
	}
	a.Write = false
	if got := a.String(); got != "z R 0x1000" {
		t.Errorf("Access.String() = %q", got)
	}
}

func TestSinkFunc(t *testing.T) {
	var got []Access
	s := SinkFunc(func(a Access) { got = append(got, a) })
	s.Emit(Access{Addr: 1})
	s.Emit(Access{Addr: 2})
	if len(got) != 2 || got[0].Addr != 1 || got[1].Addr != 2 {
		t.Errorf("SinkFunc recorded %v", got)
	}
}

func TestTeeForwardsInOrder(t *testing.T) {
	var a, b []uint64
	tee := Tee(
		SinkFunc(func(ac Access) { a = append(a, ac.Addr) }),
		SinkFunc(func(ac Access) { b = append(b, ac.Addr) }),
	)
	for i := uint64(0); i < 10; i++ {
		tee.Emit(Access{Addr: i})
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("tee delivered %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != uint64(i) || b[i] != uint64(i) {
			t.Fatalf("tee order broken at %d: %d %d", i, a[i], b[i])
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Emit(Access{Kind: Z})
	c.Emit(Access{Kind: Z})
	c.Emit(Access{Kind: Texture})
	if c.Total != 3 || c.ByKind[Z] != 2 || c.ByKind[Texture] != 1 {
		t.Errorf("counter state: %+v", c)
	}
}

// Property: a Counter's total always equals the sum of its per-kind
// counts, for any access sequence.
func TestCounterTotalProperty(t *testing.T) {
	f := func(kinds []byte) bool {
		var c Counter
		for _, kb := range kinds {
			c.Emit(Access{Kind: Kind(kb % byte(NumKinds))})
		}
		var sum int64
		for _, v := range c.ByKind {
			sum += v
		}
		return sum == c.Total && c.Total == int64(len(kinds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
