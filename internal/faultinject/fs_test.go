package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gspc/internal/durable"
)

func writeAll(t *testing.T, f durable.File, p []byte) (int, error) {
	t.Helper()
	return f.Write(p)
}

func TestFaultFSWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.SetWriteBudget(5)
	f, err := ffs.OpenAppend(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := writeAll(t, f, []byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("n=%d err=%v, want 5, ErrNoSpace", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "x"))
	if string(data) != "01234" {
		t.Fatalf("on disk: %q", data)
	}
	if c := ffs.Counts(); c.ShortWrites != 1 || c.BytesWritten != 5 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	f, err := ffs.OpenAppend(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.TearNextWrite(3)
	if n, err := writeAll(t, f, []byte("abcdef")); n != 3 || err == nil {
		t.Fatalf("torn write n=%d err=%v", n, err)
	}
	// The tear is one-shot: the next write goes through whole.
	if n, err := writeAll(t, f, []byte("gh")); n != 2 || err != nil {
		t.Fatalf("post-tear write n=%d err=%v", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "x"))
	if string(data) != "abcgh" {
		t.Fatalf("on disk: %q", data)
	}
}

func TestFaultFSSyncFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	f, err := ffs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.FailNextSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync err = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if ffs.Counts().SyncFails != 1 {
		t.Fatalf("counts: %+v", ffs.Counts())
	}
}

func TestFaultFSReadCorruption(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "x")
	if err := os.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil)
	ffs.MangleReads(name, 1, 0xFF)
	data, err := ffs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 'e'^0xFF || data[0] != 'h' {
		t.Fatalf("read: %q", data)
	}
	ffs.MangleReads(name, 1, 0) // disarm
	if data, _ := ffs.ReadFile(name); string(data) != "hello" {
		t.Fatalf("disarmed read: %q", data)
	}
}

func TestFaultFSCrashAfterBytes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.CrashAfterBytes(4)
	f, err := ffs.OpenAppend(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := writeAll(t, f, []byte("abcdef")); n != 4 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write n=%d err=%v", n, err)
	}
	if !ffs.Crashed() {
		t.Fatal("not crashed")
	}
	// Every post-crash operation fails.
	if _, err := ffs.OpenAppend(filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "x"))
	if string(data) != "abcd" {
		t.Fatalf("on disk: %q", data)
	}
}

// TestFaultFSAgainstStore drives a durable.Store through ENOSPC and a
// failed fsync and expects the store to stay usable and the journal to
// recover to the successful prefix.
func TestFaultFSAgainstStore(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	opt := durable.Options{FS: ffs, Fsync: true, SchemaVersion: 1, Logf: func(string, ...any) {}}
	s, _, err := durable.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	ok := func(id string, seq int64) durable.Record {
		return durable.Record{Type: durable.RecSubmit, ID: id, Seq: seq, Key: "k" + id}
	}
	if err := s.Append(ok("run-000001", 1)); err != nil {
		t.Fatal(err)
	}
	// ENOSPC mid-record: the append fails, the store survives.
	ffs.SetWriteBudget(3)
	if err := s.Append(ok("run-000002", 2)); err == nil {
		t.Fatal("append under ENOSPC succeeded")
	}
	ffs.SetWriteBudget(-1)
	// A failed fsync is also a failed append.
	ffs.FailNextSyncs(1)
	if err := s.Append(ok("run-000003", 3)); err == nil {
		t.Fatal("append under failed fsync succeeded")
	}
	// Disk healed: appends work again.
	if err := s.Append(ok("run-000004", 4)); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if got := s.Stats().AppendErrors; got != 2 {
		t.Fatalf("append errors = %d", got)
	}
	s.Close()

	s2, st, err := durable.Open(dir, durable.Options{Fsync: true, SchemaVersion: 1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := st.Jobs["run-000001"]; !ok {
		t.Fatal("lost run-000001")
	}
	if _, ok := st.Jobs["run-000004"]; !ok {
		t.Fatal("lost run-000004 (append after heal)")
	}
	if _, ok := st.Jobs["run-000002"]; ok {
		t.Fatal("half-written run-000002 resurrected")
	}
}
