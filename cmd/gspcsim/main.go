// Command gspcsim runs the paper's experiments and prints their tables.
//
// Usage:
//
//	gspcsim -list
//	gspcsim -exp fig12 [-scale 0.25] [-frames 2] [-apps AssnCreed,Dirt] [-v]
//	gspcsim -exp all
//
// Every run is deterministic; identical flags produce identical tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gspc/internal/harness"
	"gspc/internal/viz"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id (e.g. fig12), or 'all'")
		scale   = flag.Float64("scale", 0.25, "linear frame scale (1.0 = paper resolutions)")
		capf    = flag.Float64("capacity-factor", 0, "LLC capacity calibration factor (0 = default)")
		frames  = flag.Int("frames", 0, "max frames per application (0 = all)")
		apps    = flag.String("apps", "", "comma-separated application abbreviations")
		verb    = flag.Bool("v", false, "print per-frame progress")
		fid     = flag.String("fidelity", "", "simulation fidelity: exact (default) or sampled (set+interval sampling with an error estimate)")
		sratio  = flag.Int("sample-ratio", 0, "simulate 1-in-N LLC sets under -fidelity sampled (0 = default "+fmt.Sprint(harness.DefaultSampleSetRatio)+")")
		sseed   = flag.Uint64("sample-seed", 0, "set-selection hash seed under -fidelity sampled (0 = default 1)")
		report  = flag.String("report", "", "write a full markdown report (all experiments) to this file")
		chart   = flag.Bool("chart", false, "render each experiment as an ASCII bar chart as well")
		jsonOut = flag.Bool("json", false, "emit one structured JSON result per experiment (the objects gspcd serves) instead of text tables")
	)
	flag.Parse()

	if *list || (*exp == "" && *report == "") {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Title)
		}
		fmt.Println("extensions and ablations:")
		for _, e := range harness.Extensions() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.CapacityFactor = *capf
	opts.MaxFramesPerApp = *frames
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	if *verb {
		opts.Progress = os.Stderr
	}
	switch *fid {
	case "", harness.FidelityExact:
	case harness.FidelitySampled:
		opts.Fidelity = harness.FidelitySampled
		opts.SampleSetRatio = *sratio
		opts.SampleSeed = *sseed
	default:
		fmt.Fprintf(os.Stderr, "gspcsim: unknown -fidelity %q (exact or sampled)\n", *fid)
		os.Exit(2)
	}
	if *fid != harness.FidelitySampled && (*sratio != 0 || *sseed != 0) {
		fmt.Fprintln(os.Stderr, "gspcsim: -sample-ratio/-sample-seed require -fidelity sampled")
		os.Exit(2)
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gspcsim:", err)
			os.Exit(1)
		}
		var ids []string
		if *exp != "" && *exp != "all" {
			ids = strings.Split(*exp, ",")
		}
		if err := harness.WriteReport(f, opts, ids); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "gspcsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gspcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.ByIDExt(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "gspcsim: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, e := range selected {
		start := time.Now()
		// RunResult (not e.Run) so sampled fidelity gets its aggregate
		// report wired up; exact runs produce the same table either way.
		res, err := harness.RunResult(e.ID, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gspcsim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tbl := res.Table
		if *jsonOut {
			// One object per line (NDJSON), byte-identical to the bodies
			// gspcd serves for the same options modulo encoder framing.
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "gspcsim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		tbl.Render(os.Stdout)
		if s := res.Sampling; s != nil {
			fmt.Printf("[sampled: %d/%d sets, ratio 1/%d, est rel err %.3f (max %.3f)]\n",
				s.SetsSimulated, s.SetsTotal, s.SetRatio, s.EstRelErr, s.MaxRelErr)
		}
		if *chart {
			d := viz.NewData("", tbl.Columns...)
			for _, r := range tbl.Rows {
				d.Add(r.Label, r.Values...)
			}
			base := 0.0
			if _, ok := tbl.Cell("MEAN", "DRRIP"); ok || strings.Contains(tbl.Title, "normalized") {
				base = 1.0
			}
			viz.Chart{Baseline: base}.Render(os.Stdout, d)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
