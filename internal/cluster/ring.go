// Package cluster shards the gspc serving layer across N gspcd engines:
// a coordinator consistent-hashes each run's canonical cache key (the
// same deterministic key internal/service computes) onto an owner node,
// forwards requests with cluster-wide coalescing, health-checks members
// via their /readyz load snapshots, re-routes around dead or draining
// nodes with minimal key movement, and replicates hot results onto ring
// followers so an owner's death degrades to replica-served reads
// instead of recomputation. cmd/gspc-cluster exposes the coordinator
// over HTTP; internal/cluster/swarm hammers a live cluster with seeded
// chaos schedules to prove the guarantees hold under failure.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member. 256 points per
// node keeps the expected per-node key share within a few percent of
// uniform (stddev ~ 1/sqrt(vnodes)) while ring rebuilds stay cheap:
// 16 nodes is 4096 points, sorted once per membership change.
const DefaultVnodes = 256

// point is one virtual node: a position on the hash circle owned by a
// member.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Immutability is what makes membership changes race-free: the
// coordinator builds a fresh ring from the routable member set and
// swaps the pointer, so lookups never observe a half-rebuilt ring.
type Ring struct {
	vnodes int
	points []point  // sorted by hash
	nodes  []string // sorted member names
}

// hash64 maps a label onto the ring circle. sha256 rather than a fast
// non-cryptographic hash: ring balance IS the load balance of the
// cluster, and the few thousand hashes per rebuild are nothing next to
// a single forwarded simulation.
func hash64(label string) uint64 {
	s := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(s[:8])
}

// NewRing builds a ring with vnodes virtual nodes per member
// (DefaultVnodes when <= 0). Duplicate names collapse to one member.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq, points: make([]point, 0, vnodes*len(uniq))}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Nodes returns the member names on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct members in ring order starting at
// key's owner. The tail of the list is exactly the succession order:
// when the owner leaves, Owners(key, 1) on the shrunk ring is the old
// second entry — which is why the coordinator replicates results to
// these successors and not to arbitrary members.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
