package pipeline

import (
	"testing"

	"gspc/internal/memmap"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
)

// buildTestFrame constructs a minimal two-pass frame: a geometry pass
// with depth testing and texturing into the back buffer, preceded by a
// small render-to-texture pass.
func buildTestFrame() *Frame {
	alloc := memmap.NewAllocator(0x1000000)
	const w, h = 128, 96
	bb := memmap.NewSurface(alloc, w, h, 4)
	depth := memmap.NewSurface(alloc, w, h, ZBytesPerPixel)
	hiz := memmap.NewSurface(alloc, w/HiZGranularity, h/HiZGranularity, HiZBytesPerEntry)
	rt := memmap.NewSurface(alloc, 64, 64, 4)
	tex := memmap.NewTexture(alloc, 128, 128, 4, 4)
	mesh := &Mesh{
		Vertices: memmap.NewBuffer(alloc, 64, 32),
		Indices:  memmap.NewBuffer(alloc, 192, 4),
		TriCount: 64,
	}
	cons := memmap.NewBuffer(alloc, 16, 64)

	f := &Frame{
		Width: w, Height: h,
		BackBuffer:  bb,
		ConstBase:   cons.Base,
		ConstBlocks: 16,
		Seed:        7,
	}
	f.Passes = append(f.Passes,
		&Pass{
			Target: rt,
			Draws: []*Draw{{
				Mesh:     mesh,
				Coverage: 0.8,
				Patches:  2,
				Textures: []TextureBinding{{Texture: tex, Scale: 1.0}},
			}},
		},
		&Pass{
			Target: bb,
			Depth:  depth,
			HiZ:    hiz,
			Draws: []*Draw{{
				Mesh:      mesh,
				Coverage:  1.0,
				Patches:   3,
				ZPassRate: 0.7,
				Textures: []TextureBinding{
					{Texture: tex, Scale: 2.0, Trilinear: true},
					{Texture: memmap.TextureFromSurface(rt), Scale: 0.5, Aligned: true},
				},
			}},
			SamplesDynamic: true,
		},
	)
	return f
}

func renderToCounter(f *Frame) *stream.Counter {
	cnt := &stream.Counter{}
	rc := rendercache.New(rendercache.DefaultConfig().Scaled(0.1), cnt)
	NewRenderer(rc).RenderFrame(f)
	return cnt
}

func TestFrameValidate(t *testing.T) {
	f := buildTestFrame()
	if err := f.Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	bad := buildTestFrame()
	bad.BackBuffer = nil
	if bad.Validate() == nil {
		t.Error("frame without back buffer accepted")
	}
	bad2 := buildTestFrame()
	bad2.Passes[0].Target = nil
	if bad2.Validate() == nil {
		t.Error("pass without target or depth accepted")
	}
	bad3 := buildTestFrame()
	bad3.Passes[1].Draws[0].Coverage = -1
	if bad3.Validate() == nil {
		t.Error("negative coverage accepted")
	}
	bad4 := buildTestFrame()
	bad4.Passes[1].Draws[0].ZPassRate = 2
	if bad4.Validate() == nil {
		t.Error("z pass rate > 1 accepted")
	}
	bad5 := buildTestFrame()
	bad5.Passes[1].Depth = nil // HiZ without depth
	if bad5.Validate() == nil {
		t.Error("HiZ without depth accepted")
	}
}

func TestRenderEmitsAllStreams(t *testing.T) {
	cnt := renderToCounter(buildTestFrame())
	for _, k := range []stream.Kind{stream.Vertex, stream.Z, stream.HiZ, stream.RT, stream.Texture, stream.Display, stream.Other} {
		if cnt.ByKind[k] == 0 {
			t.Errorf("stream %v produced no LLC traffic", k)
		}
	}
	if cnt.ByKind[stream.Stencil] != 0 {
		t.Error("stencil traffic without a stencil surface")
	}
}

func TestRenderDeterminism(t *testing.T) {
	var a, b []stream.Access
	rcA := rendercache.New(rendercache.DefaultConfig().Scaled(0.1),
		stream.SinkFunc(func(ac stream.Access) { a = append(a, ac) }))
	rcB := rendercache.New(rendercache.DefaultConfig().Scaled(0.1),
		stream.SinkFunc(func(ac stream.Access) { b = append(b, ac) }))
	NewRenderer(rcA).RenderFrame(buildTestFrame())
	NewRenderer(rcB).RenderFrame(buildTestFrame())
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	f1, f2 := buildTestFrame(), buildTestFrame()
	f2.Seed = 8
	c1, c2 := renderToCounter(f1), renderToCounter(f2)
	if c1.Total == c2.Total {
		// Identical totals are possible but all kind counts matching is
		// effectively impossible for different seeds.
		same := true
		for k := range c1.ByKind {
			if c1.ByKind[k] != c2.ByKind[k] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestDisplayStreamCoversBackBuffer(t *testing.T) {
	f := buildTestFrame()
	cnt := renderToCounter(f)
	// The final pass covers the full back buffer, so its displayable
	// color writebacks must reach at least one store per block; patch
	// overlap may rewrite a modest fraction.
	blocks := int64(f.BackBuffer.TilesPerRow() * f.BackBuffer.TilesPerCol())
	got := cnt.ByKind[stream.Display]
	if got < blocks || got > 2*blocks {
		t.Errorf("display writes = %d, want within [%d, %d]", got, blocks, 2*blocks)
	}
}

func TestHiZRejectionSkipsWork(t *testing.T) {
	base := buildTestFrame()
	baseCnt := renderToCounter(base)

	rej := buildTestFrame()
	rej.Passes[1].Draws[0].HiZRejectRate = 0.9
	rejCnt := renderToCounter(rej)

	if rejCnt.ByKind[stream.Z] >= baseCnt.ByKind[stream.Z] {
		t.Errorf("HiZ rejection did not reduce Z traffic: %d vs %d",
			rejCnt.ByKind[stream.Z], baseCnt.ByKind[stream.Z])
	}
}

func TestZFailSkipsShading(t *testing.T) {
	pass := buildTestFrame()
	pass.Passes[1].Draws[0].ZPassRate = 1.0
	fail := buildTestFrame()
	fail.Passes[1].Draws[0].ZPassRate = 0.05

	rcP := rendercache.New(rendercache.DefaultConfig().Scaled(0.1), &stream.Counter{})
	rp := NewRenderer(rcP)
	rp.RenderFrame(pass)
	rcF := rendercache.New(rendercache.DefaultConfig().Scaled(0.1), &stream.Counter{})
	rf := NewRenderer(rcF)
	rf.RenderFrame(fail)

	if rf.PixelsShaded >= rp.PixelsShaded {
		t.Errorf("low z pass rate should shade fewer pixels: %d vs %d", rf.PixelsShaded, rp.PixelsShaded)
	}
	if rf.PixelsRejected == 0 {
		t.Error("no pixels rejected at 5% pass rate")
	}
}

func TestBlendAddsRTReads(t *testing.T) {
	plain := buildTestFrame()
	cntPlain := renderToCounter(plain)

	blend := buildTestFrame()
	blend.Passes[0].Draws[0].Blend = true // pass 0 targets an offscreen RT
	cntBlend := renderToCounter(blend)

	if cntBlend.ByKind[stream.RT] <= cntPlain.ByKind[stream.RT] {
		t.Errorf("blending did not increase RT traffic: %d vs %d",
			cntBlend.ByKind[stream.RT], cntPlain.ByKind[stream.RT])
	}
}

func TestStencilPass(t *testing.T) {
	f := buildTestFrame()
	alloc := memmap.NewAllocator(0x9000000)
	f.Passes[1].Stencil = memmap.NewSurface(alloc, f.Width, f.Height, 1)
	cnt := renderToCounter(f)
	if cnt.ByKind[stream.Stencil] == 0 {
		t.Error("stencil surface bound but no stencil traffic")
	}
}

func TestExtraTargetsWriteRT(t *testing.T) {
	f := buildTestFrame()
	alloc := memmap.NewAllocator(0xa000000)
	f.Passes[1].ExtraTargets = []*memmap.Surface{
		memmap.NewSurface(alloc, f.Width, f.Height, 4),
		memmap.NewSurface(alloc, f.Width, f.Height, 4),
	}
	cnt := renderToCounter(f)
	base := renderToCounter(buildTestFrame())
	if cnt.ByKind[stream.RT] <= base.ByKind[stream.RT] {
		t.Error("extra render targets did not add RT traffic")
	}
}

func TestDepthOnlyPass(t *testing.T) {
	f := buildTestFrame()
	f.Passes[0].Target = nil
	alloc := memmap.NewAllocator(0xb000000)
	f.Passes[0].Depth = memmap.NewSurface(alloc, 64, 64, ZBytesPerPixel)
	if err := f.Validate(); err != nil {
		t.Fatalf("depth-only pass rejected: %v", err)
	}
	cnt := renderToCounter(f)
	if cnt.Total == 0 {
		t.Error("depth-only frame produced no traffic")
	}
}

func TestLodOf(t *testing.T) {
	cases := []struct {
		scale float64
		lod   int
	}{
		{0.5, 0}, {1.0, 0}, {1.4, 0}, {1.6, 1}, {2.9, 1}, {3.1, 2}, {6.5, 3}, {7.0, 3},
	}
	for _, c := range cases {
		lod, _ := lodOf(c.scale)
		if lod != c.lod {
			t.Errorf("lodOf(%v) = %d, want %d", c.scale, lod, c.lod)
		}
		// The effective step must stay in [0.75, 1.5).
		if c.scale > 1 {
			step := c.scale / float64(int(1)<<lod)
			if step < 0.74 || step >= 1.51 {
				t.Errorf("lodOf(%v): step %v outside [0.75,1.5)", c.scale, step)
			}
		}
	}
}

func TestWrap(t *testing.T) {
	if wrap(5, 4) != 1 || wrap(-1, 4) != 3 || wrap(4, 4) != 0 || wrap(3, 4) != 3 {
		t.Error("wrap arithmetic wrong")
	}
}

func TestSqrt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 12345.678} {
		got := sqrt(x)
		if x == 0 && got != 0 {
			t.Error("sqrt(0) != 0")
		}
		if x > 0 {
			rel := (got*got - x) / x
			if rel > 1e-9 || rel < -1e-9 {
				t.Errorf("sqrt(%v) = %v (err %v)", x, got, rel)
			}
		}
	}
}

func TestRenderPanicsWithoutBackBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for missing back buffer")
		}
	}()
	rc := rendercache.New(rendercache.DefaultConfig().Scaled(0.1), &stream.Counter{})
	NewRenderer(rc).RenderFrame(&Frame{})
}

func TestAlignedBindingReadsStableRegion(t *testing.T) {
	// Two renders of the same aligned full-screen sampling must touch the
	// same texture blocks (screen-stable mapping).
	collect := func() map[uint64]bool {
		alloc := memmap.NewAllocator(0x2000000)
		bb := memmap.NewSurface(alloc, 64, 64, 4)
		src := memmap.NewSurface(alloc, 64, 64, 4)
		f := &Frame{
			Width: 64, Height: 64, BackBuffer: bb, Seed: 3,
			Passes: []*Pass{{
				Target: bb,
				Draws: []*Draw{{
					Mesh:     &Mesh{Vertices: memmap.NewBuffer(alloc, 8, 32), Indices: memmap.NewBuffer(alloc, 24, 4), TriCount: 8},
					Coverage: 1.0, Patches: 1,
					Textures: []TextureBinding{{Texture: memmap.TextureFromSurface(src), Scale: 1.0, Aligned: true}},
				}},
			}},
		}
		blocks := map[uint64]bool{}
		rc := rendercache.New(rendercache.DefaultConfig().Scaled(0.05), stream.SinkFunc(func(a stream.Access) {
			if a.Kind == stream.Texture {
				blocks[a.Addr>>6] = true
			}
		}))
		NewRenderer(rc).RenderFrame(f)
		return blocks
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("aligned sampling footprints differ: %d vs %d", len(a), len(b))
	}
	for blk := range a {
		if !b[blk] {
			t.Fatal("aligned sampling not screen-stable")
		}
	}
}
