// Package gspc is a from-scratch reproduction of "Efficient Management of
// Last-level Caches in Graphics Processors for 3D Scene Rendering
// Workloads" (Gaur, Srinivasan, Subramoney, Chaudhuri; MICRO 2013).
//
// The repository contains the paper's contribution — the graphics
// stream-aware probabilistic caching (GSPC) family of GPU last-level
// cache policies (internal/core) — together with every substrate needed
// to evaluate it: a set-associative cache simulator with pluggable
// policies (internal/cachesim), the baseline policies NRU, LRU, SRRIP,
// BRRIP, DRRIP, GS-DRRIP and SHiP-mem (internal/policy), Belady's
// optimal policy (internal/belady), a Direct3D-style rendering pipeline
// and render-cache complex that synthesize the 52-frame DirectX workload
// suite (internal/pipeline, internal/rendercache, internal/workload), a
// DDR3 memory model (internal/dram), an event-driven GPU timing
// simulator (internal/gpu), and a harness that regenerates every figure
// and table of the paper's evaluation (internal/harness).
//
// Start with the gspcsim command:
//
//	go run ./cmd/gspcsim -list
//	go run ./cmd/gspcsim -exp fig12
//
// or the examples under examples/. DESIGN.md documents the architecture
// and the substitutions made for the paper's proprietary infrastructure;
// EXPERIMENTS.md records paper-versus-measured results for every
// experiment.
package gspc
