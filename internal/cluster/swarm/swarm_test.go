package swarm

import (
	"testing"
	"time"

	"gspc/internal/leakcheck"
)

// TestSwarmChaos runs the seeded chaos schedule against an in-process
// 3-node cluster. CI runs this under -race; any violation is the
// cluster breaking one of its durability/consistency contracts.
func TestSwarmChaos(t *testing.T) {
	rep, err := Run(Config{
		Nodes: 3, Seed: 1, Ops: 150, DataRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Acked == 0 {
		t.Error("schedule acknowledged no runs — chaos proved nothing")
	}
	if rep.Kills == 0 || rep.Restarts == 0 {
		t.Errorf("schedule had %d kills / %d restarts — membership never changed",
			rep.Kills, rep.Restarts)
	}
	if rep.Proofs == 0 {
		t.Error("no coalescing proofs ran")
	}
	t.Logf("seed=%d ops=%d acked=%d statusReads=%d kills=%d restarts=%d drains=%d proofs=%d sims=%d",
		rep.Seed, rep.Ops, rep.Acked, rep.StatusReads, rep.Kills, rep.Restarts,
		rep.Drains, rep.Proofs, rep.Simulations)
}

// TestSwarmSoakShort runs a compressed network-weather soak: traffic
// through the fault proxies under rolling weather, with the leak and
// partial-deadlock assertions live. CI runs the full 90-second version
// through cmd/gspc-swarm; this keeps the soak machinery itself under
// -race on every test run.
func TestSwarmSoakShort(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	rep, err := Run(Config{
		Nodes: 3, Seed: 5, DataRoot: t.TempDir(),
		Soak: true, Duration: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.WeatherShifts == 0 {
		t.Error("soak shifted no weather")
	}
	if rep.BlockedChecks == 0 {
		t.Error("soak ran no blocked-goroutine checks")
	}
	if rep.GoroutineBaseline == 0 {
		t.Error("soak recorded no goroutine baseline")
	}
	t.Logf("seed=%d ops=%d shifts=%d partitions=%d peak=%d/%d sims=%d",
		rep.Seed, rep.Ops, rep.WeatherShifts, rep.Partitions,
		rep.GoroutinePeak, rep.GoroutineBaseline, rep.Simulations)
}

// TestSwarmSoakMemWeather runs a compressed memory-weather soak: every
// node under a small governor budget, allocating stub runs, and an
// oversized-request storm for the first ~60% of the window. The soak's
// own exit assertions carry the contract — ladder engagement, recovery
// to healthy, bounded heap, SLO burn — so the test mostly checks they
// ran and the report shows the storm happened. CI runs the 10-minute
// version nightly through cmd/gspc-swarm.
func TestSwarmSoakMemWeather(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	rep, err := Run(Config{
		Nodes: 3, Seed: 11, DataRoot: t.TempDir(),
		MemWeather: true, MemLimitMB: 48, Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.OversizedSubmits == 0 {
		t.Error("memory weather submitted no oversized requests")
	}
	if rep.MemMaxRung == "" || rep.MemMaxRung == "healthy" {
		t.Errorf("ladder never engaged: max rung %q", rep.MemMaxRung)
	}
	if rep.HeapBaselineBytes == 0 || rep.HeapHighWaterBytes == 0 {
		t.Error("soak recorded no heap accounting")
	}
	if len(rep.SLO) == 0 {
		t.Error("soak recorded no SLO series")
	}
	t.Logf("seed=%d ops=%d oversized=%d maxRung=%s entries=%v heap=%d→%d burn=%.2f",
		rep.Seed, rep.Ops, rep.OversizedSubmits, rep.MemMaxRung, rep.MemRungEntries,
		rep.HeapBaselineBytes, rep.HeapHighWaterBytes, rep.SLOWorstBurn)
}

// TestSwarmSeeds sweeps a few more seeds at a shorter schedule so the
// chaos explores different kill/drain orderings.
func TestSwarmSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short")
	}
	for _, seed := range []int64{2, 7} {
		rep, err := Run(Config{Nodes: 4, Seed: seed, Ops: 100, DataRoot: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d violation: %s", seed, v)
		}
	}
}
