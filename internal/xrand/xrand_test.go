package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed degenerated")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Bounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	// Forks with different ids should produce different streams.
	if f1.Uint64() == f2.Uint64() {
		t.Error("forks with different ids are correlated at first draw")
	}
	// Forking must not advance the parent.
	p1, p2 := New(5), New(5)
	p2.Fork(9)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Fork advanced the parent state")
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(123).Fork(7)
	b := New(123).Fork(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork streams diverged")
		}
	}
}

// Property: Intn(n) stays within [0, n) for arbitrary positive n and seed.
func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical sequences regardless of the
// draw pattern mix.
func TestReplayProperty(t *testing.T) {
	f := func(seed uint64, pattern []byte) bool {
		a, b := New(seed), New(seed)
		for _, p := range pattern {
			switch p % 4 {
			case 0:
				if a.Uint64() != b.Uint64() {
					return false
				}
			case 1:
				if a.Float64() != b.Float64() {
					return false
				}
			case 2:
				if a.Intn(17) != b.Intn(17) {
					return false
				}
			case 3:
				if a.Bool(0.5) != b.Bool(0.5) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
