package belady_test

import (
	"fmt"

	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// Example replays a short trace under Belady's optimal policy. The trace
// must be known in full up front: NextUse builds the forward reuse chain
// and every access carries its trace position in Seq.
func Example() {
	blocks := []int{1, 2, 3, 1, 2, 4, 1, 2}
	tr := make([]stream.Access, len(blocks))
	for i, b := range blocks {
		tr[i] = stream.Access{Addr: uint64(b) * 64, Seq: int64(i)}
	}

	next := belady.NextUse(tr, 6)
	c := cachesim.New(cachesim.Geometry{SizeBytes: 128, Ways: 2, BlockSize: 64}, belady.NewOPT(next))
	for _, a := range tr {
		c.Access(a)
	}

	// OPT keeps blocks 1 and 2 resident and bypasses the never-reused
	// blocks 3 and 4 entirely.
	fmt.Printf("misses: %d (of %d accesses)\n", c.Stats.Misses, c.Stats.Accesses)
	fmt.Printf("bypasses: %d\n", c.Stats.Bypasses)
	// Output:
	// misses: 4 (of 8 accesses)
	// bypasses: 2
}
