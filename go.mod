module gspc

go 1.22
