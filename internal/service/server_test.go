package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/harness"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	e := newTestEngine(t, cfg)
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(ts.Close)
	return ts, e
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerBasicEndpoints(t *testing.T) {
	var calls int64
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls)})

	var health map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}

	var exps struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	getJSON(t, ts.URL+"/v1/experiments", &exps)
	if len(exps.Experiments) != len(harness.All())+len(harness.Extensions()) {
		t.Errorf("experiments listed %d, want %d", len(exps.Experiments), len(harness.All())+len(harness.Extensions()))
	}
	found := false
	for _, e := range exps.Experiments {
		if e.ID == "fig12" && e.Kind == "paper" {
			found = true
		}
	}
	if !found {
		t.Error("fig12 missing from experiment list")
	}

	if resp, body := postRun(t, ts.URL, `{"experiment":"nope"}`); resp.StatusCode != 400 {
		t.Errorf("unknown experiment: %d %s", resp.StatusCode, body)
	}
	if resp, body := postRun(t, ts.URL, `{broken`); resp.StatusCode != 400 {
		t.Errorf("malformed body: %d %s", resp.StatusCode, body)
	}
	if resp := getJSON(t, ts.URL+"/v1/runs/run-999999", nil); resp.StatusCode != 404 {
		t.Errorf("unknown run id: %d", resp.StatusCode)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metricsz", &m)
	if m.QueueCapacity == 0 || m.CachePolicy != "LRU" {
		t.Errorf("metricsz = %+v", m)
	}
}

func TestServerAsyncRunLifecycle(t *testing.T) {
	var calls int64
	started := make(chan string, 1)
	release := make(chan struct{})
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8,
		Run: gatedRunner(started, release, &calls)})

	resp, body := func() (*http.Response, []byte) {
		r, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
			strings.NewReader(`{"experiment":"fig4","frames":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, b
	}()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST = %d %s", resp.StatusCode, body)
	}
	var acc map[string]string
	if err := json.Unmarshal(body, &acc); err != nil || acc["id"] == "" {
		t.Fatalf("async POST body %s: %v", body, err)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/runs/"+acc["id"] {
		t.Errorf("Location = %q", loc)
	}

	<-started // the worker picked the job up
	close(release)
	deadline := time.After(5 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+loc, &st)
		if st.Status == StatusDone {
			if len(st.Result) == 0 {
				t.Error("done job status has no result")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never finished: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner calls = %d, want 1", got)
	}
}

// TestServerEndToEndCachedReplay is the acceptance flow: POST the same
// real experiment twice and require a byte-identical, cache-served,
// faster second response. tab1 needs no trace synthesis, so the real
// harness stays fast enough for -race.
func TestServerEndToEndCachedReplay(t *testing.T) {
	ts, e := newTestServer(t, Config{Workers: 2, CacheEntries: 16})

	body := `{"experiment":"tab1"}`
	resp1, b1 := postRun(t, ts.URL, body)
	if resp1.StatusCode != 200 {
		t.Fatalf("first POST = %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Gspc-Cache"); got != "miss" {
		t.Errorf("first POST cache disposition = %q, want miss", got)
	}
	resp2, b2 := postRun(t, ts.URL, body)
	if resp2.StatusCode != 200 {
		t.Fatalf("second POST = %d %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("second POST cache disposition = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached replay not byte-identical:\n%s\n%s", b1, b2)
	}
	if resp2.Header.Get("X-Gspc-Run") != resp1.Header.Get("X-Gspc-Run") {
		t.Error("cached replay names a different run")
	}

	var res harness.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("result body not a harness.Result: %v", err)
	}
	if res.Experiment != "tab1" || len(res.Table.Rows) == 0 || res.Rendered == "" {
		t.Errorf("result incomplete: %+v", res)
	}

	m := e.Metrics()
	if m.CacheHits != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v, want exactly one computation and one hit", m)
	}
	if m.LatencyP50Ms <= 0 {
		t.Errorf("latency percentiles missing: %+v", m)
	}
}

// TestServerEndToEndFig12 runs the full acceptance criterion — fig12 at
// frames=1 twice — against the real harness. ~12s of simulation, so
// -short skips it.
func TestServerEndToEndFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 runs the full 12-app suite; skipped with -short")
	}
	ts, e := newTestServer(t, Config{Workers: 2, CacheEntries: 16})

	body := `{"experiment":"fig12","frames":1}`
	start := time.Now()
	resp1, b1 := postRun(t, ts.URL, body)
	coldLatency := time.Since(start)
	if resp1.StatusCode != 200 {
		t.Fatalf("first POST = %d %s", resp1.StatusCode, b1)
	}
	start = time.Now()
	resp2, b2 := postRun(t, ts.URL, body)
	warmLatency := time.Since(start)
	if resp2.StatusCode != 200 {
		t.Fatalf("second POST = %d %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("fig12 cached replay not byte-identical")
	}
	if got := resp2.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("second POST disposition = %q, want hit", got)
	}
	if m := e.Metrics(); m.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", m.CacheHits)
	}
	if warmLatency > coldLatency/10 {
		t.Errorf("cached replay latency %v not clearly below cold %v", warmLatency, coldLatency)
	}
	var res harness.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Mean["GSPC+UCD"]; !ok {
		t.Errorf("fig12 result missing GSPC+UCD mean: %v", res.Mean)
	}
}

// --- fault-tolerance surface ---

func postRunURL(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func errCategory(t *testing.T, body []byte) string {
	t.Helper()
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %s: %v", body, err)
	}
	return e["category"]
}

func TestServerReadyzLifecycle(t *testing.T) {
	var calls int64
	started := make(chan string, 4)
	release := make(chan struct{})
	ts, e := newTestServer(t, Config{Workers: 1, QueueDepth: 2, ReadyHighWater: 1,
		CacheEntries: 8, Run: gatedRunner(started, release, &calls)})

	var st map[string]any
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != 200 || st["status"] != "ready" {
		t.Fatalf("idle readyz = %d %v", resp.StatusCode, st)
	}
	// The body carries the load signals a cluster coordinator routes on.
	if st["queue_capacity"] != float64(2) || st["draining"] != false {
		t.Fatalf("idle readyz body = %v, want queue_capacity 2 draining false", st)
	}

	// One running + one queued job puts the queue at the high-water mark.
	if _, _, err := e.Submit(Request{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := e.Submit(Request{Experiment: "fig4"}); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != 503 || st["status"] != "unready" {
		t.Errorf("saturated readyz = %d %v, want 503 unready", resp.StatusCode, st)
	}
	// Liveness is unaffected by saturation.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("healthz under load = %d, want 200", resp.StatusCode)
	}

	close(release)
	waitFor(t, func() bool {
		resp := getJSON(t, ts.URL+"/readyz", nil)
		return resp.StatusCode == 200
	})

	// A draining engine is unready but alive.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != 503 || st["reason"] != "draining" {
		t.Errorf("draining readyz = %d %v, want 503 draining", resp.StatusCode, st)
	}
	if st["draining"] != true {
		t.Errorf("draining readyz body = %v, want draining true", st)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("healthz while draining = %d, want 200", resp.StatusCode)
	}
}

func TestServerTimeoutQueryMapsTo504(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: sleepyRunner(time.Hour)})

	resp, body := postRunURL(t, ts.URL, "/v1/runs?timeout_ms=200", `{"experiment":"fig1"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run = %d %s, want 504", resp.StatusCode, body)
	}
	if got := errCategory(t, body); got != "timeout" {
		t.Errorf("category = %q, want timeout", got)
	}
	resp, body = postRunURL(t, ts.URL, "/v1/runs?timeout_ms=banana", `{"experiment":"fig1"}`)
	if resp.StatusCode != http.StatusBadRequest || errCategory(t, body) != "invalid" {
		t.Errorf("bad timeout_ms = %d %s, want 400 invalid", resp.StatusCode, body)
	}
	resp, body = postRunURL(t, ts.URL, "/v1/runs", `{"experiment":"fig1","timeout_ms":-5}`)
	if resp.StatusCode != http.StatusBadRequest || errCategory(t, body) != "invalid" {
		t.Errorf("negative body timeout_ms = %d %s, want 400 invalid", resp.StatusCode, body)
	}
}

func TestServerPanicMapsTo500(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Panic())
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		Run: injectedRunner(inj, nil)})

	resp, body := postRun(t, ts.URL, `{"experiment":"fig1"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked run = %d %s, want 500", resp.StatusCode, body)
	}
	if got := errCategory(t, body); got != "panic" {
		t.Errorf("category = %q, want panic", got)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metricsz", &m)
	if m.Panics != 1 {
		t.Errorf("metricsz panics = %d, want 1", m.Panics)
	}
	// The server survived the panic.
	if resp, b := postRun(t, ts.URL, `{"experiment":"fig4"}`); resp.StatusCode != 200 {
		t.Errorf("post-panic run = %d %s, want 200", resp.StatusCode, b)
	}
}

func TestServerBreakerMapsTo503RetryAfter(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Fail())
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: time.Minute, Run: injectedRunner(inj, nil)})

	if resp, body := postRun(t, ts.URL, `{"experiment":"fig1"}`); resp.StatusCode != 500 {
		t.Fatalf("tripping run = %d %s, want 500", resp.StatusCode, body)
	}
	resp, body := postRun(t, ts.URL, `{"experiment":"fig1","frames":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker run = %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second hint", ra)
	}
}

func TestServerStaleDisposition(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Pass(), faultinject.Fail())
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: time.Minute, ServeStale: true,
		Run: injectedRunner(inj, nil)})

	_, good := postRun(t, ts.URL, `{"experiment":"fig1"}`)
	postRun(t, ts.URL, `{"experiment":"fig1","frames":2}`) // opens the breaker
	resp, body := postRun(t, ts.URL, `{"experiment":"fig1","frames":3}`)
	if resp.StatusCode != 200 {
		t.Fatalf("stale-served run = %d %s, want 200", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Gspc-Cache"); got != "stale" {
		t.Errorf("disposition = %q, want stale", got)
	}
	if !bytes.Equal(body, good) {
		t.Error("stale body differs from the last good result")
	}
}

func TestServerAdmissionControl(t *testing.T) {
	var calls int64
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, MaxWork: 0.0001,
		Run: countingRunner(&calls)})

	resp, body := postRun(t, ts.URL, `{"experiment":"fig1"}`)
	if resp.StatusCode != http.StatusBadRequest || errCategory(t, body) != "invalid" {
		t.Errorf("over-ceiling run = %d %s, want 400 invalid", resp.StatusCode, body)
	}
	if atomic.LoadInt64(&calls) != 0 {
		t.Error("rejected request reached the runner")
	}
}
