# Developer entry points for the gspc reproduction.

GO ?= go

# PR stamps the bench capture file: `make bench PR=7` writes
# BENCH_PR7.json (also settable via the PR environment variable).
PR ?= 6

# Benchmarks captured by `make bench` into BENCH_PR$(PR).json. Fig1 runs
# first so the figure benches that follow measure the warm-trace-cache
# path (the deployment steady state); the micro benches isolate the
# synthesis, replay, and cache-lookup stages.
BENCHES = BenchmarkFig1$$|BenchmarkFig12$$|BenchmarkFig15$$|BenchmarkTraceGeneration$$|BenchmarkTraceGenerationPacked$$|BenchmarkLLCAccessDRRIP$$|BenchmarkLLCAccessDRRIPPacked$$|BenchmarkTraceCacheWarm$$

.PHONY: all build test race bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tracecache/ ./internal/harness/ ./internal/service/

bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 3x . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -pr $(PR) -label "$(shell git rev-parse --short HEAD 2>/dev/null)" \
		> BENCH_PR$(PR).json
