// Threshold tuning: sweep the GSPC family's probability threshold t (the
// paper's Figure 11) and the PROD/CONS render-target bands on a frame of
// the suite, showing how the policy's insertion decisions shift.
//
//	go run ./examples/tuning
package main

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

func main() {
	p, _ := workload.ProfileByAbbrev("Dirt")
	tr := trace.GenerateFrame(workload.FrameJob{App: p, Index: 0}, 0.25)
	geom := cachesim.Geometry{SizeBytes: 768 << 10, Ways: 16, BlockSize: 64}

	fmt.Println("GSPZTC threshold sweep (Figure 11 style):")
	fmt.Printf("%6s %10s %14s %14s\n", "t", "misses", "tex distant", "z distant")
	for _, tv := range []int{2, 4, 8, 16, 32} {
		params := core.DefaultParams(core.VariantGSPZTC)
		params.T = tv
		g := core.New(params)
		misses := run(tr, g, geom)
		in := g.Insertions
		fmt.Printf("%6d %10d %13.1f%% %13.1f%%\n", tv, misses,
			pct(in.TexDistant, in.TexDistant+in.TexZero),
			pct(in.ZDistant, in.ZDistant+in.ZLong))
	}

	fmt.Println("\nGSPC render-target band sweep (PROD/CONS thresholds of Table 5):")
	fmt.Printf("%8s %10s %24s\n", "hi/lo", "misses", "RT inserts d/l/0")
	for _, band := range [][2]int{{4, 2}, {8, 4}, {16, 8}, {32, 16}} {
		params := core.DefaultParams(core.VariantGSPC)
		params.ProdConsHi, params.ProdConsLo = band[0], band[1]
		g := core.New(params)
		misses := run(tr, g, geom)
		in := g.Insertions
		fmt.Printf("%4d/%-3d %10d %10d/%d/%d\n", band[0], band[1], misses,
			in.RTDistant, in.RTLong, in.RTZero)
	}
}

func run(tr []stream.Access, pol cachesim.Policy, geom cachesim.Geometry) int64 {
	c := cachesim.New(geom, pol)
	c.SetBypass(stream.Display, true)
	for _, a := range tr {
		c.Access(a)
	}
	return c.Stats.Misses
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
