// Package faultinject provides deterministic, seedable fault injection
// for exercising the serving stack's failure paths. An Injector decides,
// per call, whether to panic, return a transient error, sleep, or let
// the call proceed; the decision sequence is fully determined by the
// seed (random mode) or the script (sequence mode), so chaos tests can
// replay the exact same failure storm on every run.
//
// Besides the runner-seam injectors, FaultFS wraps internal/durable's
// filesystem seam to inject disk faults — short/torn writes, ENOSPC,
// fsync failures, read corruption, and a hard crash after a byte
// budget — which is what the crash-recovery chaos suite is built on.
//
// The package knows nothing about the service layer: callers wrap
// their own runner seam, e.g.
//
//	inj := faultinject.NewRandom(42, faultinject.Spec{PanicRate: 0.1, ErrorRate: 0.2})
//	cfg.Run = func(ctx context.Context, r service.Request) (*harness.Result, error) {
//		if err := inj.Apply(ctx); err != nil {
//			return nil, err
//		}
//		return realRun(ctx, r)
//	}
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// TransientError is an injected retryable failure. It implements
// Retryable() so retry-aware callers (internal/service) classify it as
// safe to re-attempt.
type TransientError struct {
	// N is the injection sequence number that produced the error, which
	// makes storm logs attributable to a specific decision.
	N int64
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient failure #%d", e.N)
}

// Retryable marks the error as safe to retry.
func (e *TransientError) Retryable() bool { return true }

// PanicValue is the value injected panics carry, so recover sites can
// attribute a panic to the injector rather than to a real bug.
type PanicValue struct {
	// N is the injection sequence number.
	N int64
}

// String renders the panic value for stack traces and logs.
func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic #%d", p.N)
}

// Outcome is one scripted decision: at most one of Panic/Err is acted
// on (Panic wins), after an optional context-aware Delay.
type Outcome struct {
	// Delay sleeps before anything else, honoring context cancellation.
	Delay time.Duration
	// Panic triggers panic(PanicValue{...}) when true.
	Panic bool
	// Err, when non-nil, is returned to the caller.
	Err error
}

// Spec parameterizes a random injector. Rates are probabilities in
// [0, 1] evaluated in order panic, error, delay per call; the remainder
// passes through untouched.
type Spec struct {
	PanicRate float64
	ErrorRate float64
	DelayRate float64
	// Delay is the sleep applied when a delay fires (default 1ms).
	Delay time.Duration
}

// Injector decides and applies one fault per call.
type Injector interface {
	// Apply executes the next decision: it may sleep (bounded by ctx),
	// panic with a PanicValue, return an injected error, or return nil
	// for a pass-through. A cancelled sleep returns ctx.Err().
	Apply(ctx context.Context) error
}

// Counts tallies applied decisions for test assertions.
type Counts struct {
	Calls   int64
	Panics  int64
	Errors  int64
	Delays  int64
	Passes  int64
	Cancels int64
}

// Random injects faults following Spec probabilities from a seeded
// source: the same seed yields the same decision sequence regardless of
// wall-clock or scheduling (callers racing on one injector still each
// get a deterministic multiset of outcomes).
type Random struct {
	mu     sync.Mutex
	rng    *rand.Rand
	spec   Spec
	n      int64
	counts Counts
}

// NewRandom builds a seeded random injector.
func NewRandom(seed int64, spec Spec) *Random {
	if spec.Delay <= 0 {
		spec.Delay = time.Millisecond
	}
	return &Random{rng: rand.New(rand.NewSource(seed)), spec: spec}
}

// Apply implements Injector.
func (r *Random) Apply(ctx context.Context) error {
	r.mu.Lock()
	r.n++
	n := r.n
	r.counts.Calls++
	roll := r.rng.Float64()
	var out Outcome
	switch {
	case roll < r.spec.PanicRate:
		out.Panic = true
		r.counts.Panics++
	case roll < r.spec.PanicRate+r.spec.ErrorRate:
		out.Err = &TransientError{N: n}
		r.counts.Errors++
	case roll < r.spec.PanicRate+r.spec.ErrorRate+r.spec.DelayRate:
		out.Delay = r.spec.Delay
		r.counts.Delays++
	default:
		r.counts.Passes++
	}
	r.mu.Unlock()
	return apply(ctx, out, n, &r.mu, &r.counts)
}

// Counts returns a snapshot of the tally.
func (r *Random) Counts() Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

// Seq replays a fixed script of outcomes in order; calls beyond the
// script pass through. It gives breaker and retry tests exact control:
// "fail three times, then succeed".
type Seq struct {
	mu     sync.Mutex
	outs   []Outcome
	n      int64
	counts Counts
}

// NewSequence builds a scripted injector.
func NewSequence(outs ...Outcome) *Seq {
	return &Seq{outs: outs}
}

// Fail is a convenience Outcome returning a TransientError.
func Fail() Outcome { return Outcome{Err: &TransientError{}} }

// Panic is a convenience Outcome triggering an injected panic.
func Panic() Outcome { return Outcome{Panic: true} }

// Pass is a convenience no-op Outcome.
func Pass() Outcome { return Outcome{} }

// Apply implements Injector.
func (s *Seq) Apply(ctx context.Context) error {
	s.mu.Lock()
	s.n++
	n := s.n
	s.counts.Calls++
	var out Outcome
	if int(n) <= len(s.outs) {
		out = s.outs[n-1]
	}
	switch {
	case out.Panic:
		s.counts.Panics++
	case out.Err != nil:
		s.counts.Errors++
		if te, ok := out.Err.(*TransientError); ok && te.N == 0 {
			out.Err = &TransientError{N: n}
		}
	case out.Delay > 0:
		s.counts.Delays++
	default:
		s.counts.Passes++
	}
	s.mu.Unlock()
	return apply(ctx, out, n, &s.mu, &s.counts)
}

// Counts returns a snapshot of the tally.
func (s *Seq) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// apply executes an outcome: sleep, then panic or return the error.
func apply(ctx context.Context, out Outcome, n int64, mu *sync.Mutex, counts *Counts) error {
	if out.Delay > 0 {
		t := time.NewTimer(out.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			mu.Lock()
			counts.Cancels++
			mu.Unlock()
			return ctx.Err()
		}
	}
	if out.Panic {
		panic(PanicValue{N: n})
	}
	return out.Err
}
