package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadProfiles reads user-defined application profiles from JSON, so
// downstream users can trace their own workload shapes without
// recompiling. The JSON is an array of Profile objects using the field
// names of the Profile struct, e.g.:
//
//	[{
//	  "Name": "My Engine", "Abbrev": "MyEngine", "DirectX": 11,
//	  "Width": 1920, "Height": 1080, "Frames": 2,
//	  "ShadowPasses": 2, "GeomPasses": 2, "PostPasses": 3,
//	  "DrawsPerGeomPass": 12, "MeshTris": 3000, "VertexCount": 2500,
//	  "DepthComplexity": 2.2, "ZPassRate": 0.6,
//	  "TexturesPerDraw": 2, "StaticTexCount": 20, "StaticTexSize": 2048,
//	  "DynamicTexFraction": 0.5, "SceneReadFraction": 0.3,
//	  "PostChainTextures": 2, "ShadowMapSize": 1024, "EnvMapScale": 0.5
//	}]
//
// Missing numeric fields default to zero; Validate reports the fields
// that must be positive.
func LoadProfiles(r io.Reader) ([]Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ps []Profile
	if err := dec.Decode(&ps); err != nil {
		return nil, fmt.Errorf("workload: parsing profiles: %w", err)
	}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return nil, fmt.Errorf("workload: profile %d (%s): %w", i, ps[i].Abbrev, err)
		}
	}
	return ps, nil
}

// Validate reports structural problems that would make a profile
// unusable by the frame builder.
func (p Profile) Validate() error {
	switch {
	case p.Abbrev == "":
		return fmt.Errorf("missing Abbrev")
	case p.Width < 64 || p.Height < 64:
		return fmt.Errorf("resolution %dx%d below the 64-pixel minimum", p.Width, p.Height)
	case p.Frames < 1:
		return fmt.Errorf("Frames must be at least 1")
	case p.GeomPasses < 1:
		return fmt.Errorf("at least one geometry pass is required")
	case p.DrawsPerGeomPass < 1:
		return fmt.Errorf("DrawsPerGeomPass must be at least 1")
	case p.MeshTris < 1 || p.VertexCount < 1:
		return fmt.Errorf("geometry (MeshTris/VertexCount) must be positive")
	case p.DepthComplexity <= 0:
		return fmt.Errorf("DepthComplexity must be positive")
	case p.ZPassRate < 0 || p.ZPassRate > 1:
		return fmt.Errorf("ZPassRate %v outside [0,1]", p.ZPassRate)
	case p.HiZRejectRate < 0 || p.HiZRejectRate > 1:
		return fmt.Errorf("HiZRejectRate %v outside [0,1]", p.HiZRejectRate)
	case p.StaticTexCount > 0 && p.StaticTexSize < 64:
		return fmt.Errorf("StaticTexSize %d below the 64-texel minimum", p.StaticTexSize)
	case p.ShadowPasses > 0 && p.ShadowMapSize < 64:
		return fmt.Errorf("ShadowMapSize %d below the 64-texel minimum", p.ShadowMapSize)
	case p.EnvPasses > 0 && (p.EnvMapScale <= 0 || p.EnvMapScale > 1):
		return fmt.Errorf("EnvMapScale %v outside (0,1]", p.EnvMapScale)
	}
	return nil
}

// MarshalSuite writes profiles as indented JSON (the inverse of
// LoadProfiles, handy for exporting the built-in suite as a template).
func MarshalSuite(w io.Writer, ps []Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ps)
}
