package service

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	const threshold = 3
	cooldown := time.Minute
	t0 := time.Unix(1000, 0)
	var b breaker

	// Closed passes traffic; failures below the threshold stay closed.
	for i := 0; i < threshold-1; i++ {
		if ok, _, probe := b.admit(t0, cooldown); !ok || probe {
			t.Fatalf("closed admit %d = (%v, probe %v), want plain pass", i, ok, probe)
		}
		if b.record(false, t0, threshold, cooldown) {
			t.Fatalf("tripped after %d failures, threshold %d", i+1, threshold)
		}
	}
	// A success resets the consecutive-failure count.
	b.record(true, t0, threshold, cooldown)
	if b.failures != 0 {
		t.Fatalf("failures = %d after success, want 0", b.failures)
	}

	// The threshold-th consecutive failure trips the breaker.
	for i := 0; i < threshold-1; i++ {
		b.record(false, t0, threshold, cooldown)
	}
	if !b.record(false, t0, threshold, cooldown) {
		t.Fatal("threshold-th consecutive failure did not trip")
	}
	if ok, retryAfter, _ := b.admit(t0.Add(cooldown/2), cooldown); ok || retryAfter <= 0 {
		t.Fatalf("open breaker admitted traffic (retryAfter %v)", retryAfter)
	}

	// Past the cooldown: exactly one probe, everyone else keeps waiting.
	t1 := t0.Add(cooldown + time.Second)
	if ok, _, probe := b.admit(t1, cooldown); !ok || !probe {
		t.Fatal("post-cooldown admit did not grant the probe")
	}
	if ok, _, _ := b.admit(t1, cooldown); ok {
		t.Fatal("second admit ran alongside the outstanding probe")
	}
	if !b.openNow(t1) {
		t.Error("half-open with outstanding probe should report open")
	}

	// A probe that never enqueued is rolled back; the slot frees up.
	b.unprobe()
	if ok, _, probe := b.admit(t1, cooldown); !ok || !probe {
		t.Fatal("admit after unprobe did not grant a fresh probe")
	}

	// Failed probe reopens for another full cooldown.
	if !b.record(false, t1, threshold, cooldown) {
		t.Fatal("failed probe did not count as a trip")
	}
	if ok, _, _ := b.admit(t1.Add(cooldown/2), cooldown); ok {
		t.Fatal("reopened breaker admitted traffic inside the new cooldown")
	}

	// Successful probe closes fully.
	t2 := t1.Add(2 * cooldown)
	if ok, _, probe := b.admit(t2, cooldown); !ok || !probe {
		t.Fatal("second post-cooldown admit did not grant the probe")
	}
	b.record(true, t2, threshold, cooldown)
	if b.state != breakerClosed || b.openNow(t2) {
		t.Fatalf("state after successful probe = %v, want closed", b.state)
	}
	if ok, _, probe := b.admit(t2, cooldown); !ok || probe {
		t.Fatal("closed breaker after recovery should pass plain traffic")
	}
}
