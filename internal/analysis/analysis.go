// Package analysis provides the characterization instruments of Section 2
// of the paper, implemented as cachesim observers so they can be attached
// to any policy:
//
//   - per-stream access/hit accounting split by read/write (Figures 4, 5, 13),
//   - inter- vs intra-stream texture reuse via the RT-bit protocol and the
//     render-target production/consumption rate (Figure 6),
//   - texture sampler and Z epoch tracking with per-epoch hit distribution
//     and death ratios (Figures 7 and 9).
package analysis

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// MaxEpoch is the highest individually tracked epoch; blocks beyond it are
// lumped into the final bucket (the paper tracks E0, E1, E2, and E>=3).
const MaxEpoch = 3

// Block classes maintained by the tracker, mirroring the RT-bit protocol
// of Section 2.3: a block is a render target until it is consumed by the
// texture sampler or evicted.
const (
	clsNone uint8 = iota
	clsTex
	clsRT
	clsZ
)

// Tracker observes a cache and accumulates the paper's characterization
// metrics. Attach with cache.AddObserver(tracker) after construction with
// NewTracker(cache.Sets(), cache.Ways()).
type Tracker struct {
	ways  int
	class []uint8
	epoch []uint8

	// ReadAccesses/ReadHits and WriteAccesses/WriteHits split the
	// per-stream counts by operation; Figure 13's "render target hit
	// rate" is the hit rate of RT reads (blending).
	ReadAccesses, ReadHits   [stream.NumKinds]int64
	WriteAccesses, WriteHits [stream.NumKinds]int64

	// InterTexHits counts texture sampler hits satisfied by a render
	// target block (dynamic texturing); IntraTexHits counts the rest.
	InterTexHits, IntraTexHits int64

	// RTProduced counts render target blocks created in the LLC (fills
	// and conversions); RTConsumed counts those consumed by the sampler
	// while resident. Their ratio is the lower panel of Figure 6.
	RTProduced, RTConsumed int64

	// TexEpochHits[k] counts intra-stream texture hits to blocks in
	// epoch k at hit time (k = MaxEpoch lumps all higher epochs).
	TexEpochHits [MaxEpoch + 1]int64

	// TexEntries[k] and ZEntries[k] count blocks that entered epoch k;
	// the death ratio of E_k is (entries[k]-entries[k+1])/entries[k].
	TexEntries [MaxEpoch + 2]int64
	ZEntries   [MaxEpoch + 2]int64
}

var _ cachesim.Observer = (*Tracker)(nil)

// NewTracker returns a tracker for a cache with the given geometry.
func NewTracker(sets, ways int) *Tracker {
	return &Tracker{
		ways:  ways,
		class: make([]uint8, sets*ways),
		epoch: make([]uint8, sets*ways),
	}
}

// Attach constructs a tracker sized for c and registers it.
func Attach(c *cachesim.Cache) *Tracker {
	t := NewTracker(c.Sets(), c.Ways())
	c.AddObserver(t)
	return t
}

// ResetCounters zeroes every accumulated metric while keeping the
// per-block class/epoch state — the warmup/measured boundary of
// interval-sampled replays: the tracker keeps following the blocks it
// learned during warmup but only counts what happens in the measured
// window.
func (t *Tracker) ResetCounters() {
	t.ReadAccesses = [stream.NumKinds]int64{}
	t.ReadHits = [stream.NumKinds]int64{}
	t.WriteAccesses = [stream.NumKinds]int64{}
	t.WriteHits = [stream.NumKinds]int64{}
	t.InterTexHits, t.IntraTexHits = 0, 0
	t.RTProduced, t.RTConsumed = 0, 0
	t.TexEpochHits = [MaxEpoch + 1]int64{}
	t.TexEntries = [MaxEpoch + 2]int64{}
	t.ZEntries = [MaxEpoch + 2]int64{}
}

func isRTKind(k stream.Kind) bool { return k == stream.RT || k == stream.Display }

// Observe implements cachesim.Observer.
func (t *Tracker) Observe(ev cachesim.Event) {
	switch ev.Type {
	case cachesim.EvHit:
		t.onHit(ev)
	case cachesim.EvFill:
		t.onFill(ev)
	case cachesim.EvEvict:
		i := ev.Set*t.ways + ev.Way
		t.class[i] = clsNone
		t.epoch[i] = 0
	case cachesim.EvBypass:
		t.count(ev.Access, false)
	}
}

func (t *Tracker) count(a stream.Access, hit bool) {
	if a.Write {
		t.WriteAccesses[a.Kind]++
		if hit {
			t.WriteHits[a.Kind]++
		}
	} else {
		t.ReadAccesses[a.Kind]++
		if hit {
			t.ReadHits[a.Kind]++
		}
	}
}

func (t *Tracker) enterTexE0(i int) {
	t.class[i] = clsTex
	t.epoch[i] = 0
	t.TexEntries[0]++
}

func (t *Tracker) onFill(ev cachesim.Event) {
	t.count(ev.Access, false)
	i := ev.Set*t.ways + ev.Way
	switch {
	case ev.Access.Kind == stream.Texture:
		t.enterTexE0(i)
	case isRTKind(ev.Access.Kind):
		t.class[i] = clsRT
		t.epoch[i] = 0
		t.RTProduced++
	case ev.Access.Kind == stream.Z:
		t.class[i] = clsZ
		t.epoch[i] = 0
		t.ZEntries[0]++
	default:
		t.class[i] = clsNone
		t.epoch[i] = 0
	}
}

func (t *Tracker) onHit(ev cachesim.Event) {
	t.count(ev.Access, true)
	i := ev.Set*t.ways + ev.Way
	switch {
	case ev.Access.Kind == stream.Texture:
		if t.class[i] == clsRT {
			// Inter-stream reuse: render target consumed as texture. The
			// block becomes an E0 texture block.
			t.InterTexHits++
			t.RTConsumed++
			t.enterTexE0(i)
			return
		}
		t.IntraTexHits++
		if t.class[i] != clsTex {
			// A texture hit on a block produced by another stream (rare;
			// depends on address layout): adopt it as a texture block.
			t.enterTexE0(i)
		}
		e := t.epoch[i]
		if e > MaxEpoch {
			e = MaxEpoch
		}
		t.TexEpochHits[e]++
		t.promote(t.TexEntries[:], i)
	case isRTKind(ev.Access.Kind):
		if t.class[i] != clsRT {
			// An existing surface reused as a fresh render target.
			t.RTProduced++
		}
		t.class[i] = clsRT
		t.epoch[i] = 0
	case ev.Access.Kind == stream.Z:
		if t.class[i] != clsZ {
			t.class[i] = clsZ
			t.epoch[i] = 0
			t.ZEntries[0]++
		}
		t.promote(t.ZEntries[:], i)
	}
}

// promote advances the block at flat index i to the next epoch, recording
// the entry. Epochs beyond MaxEpoch+1 stay in the last bucket (their
// entries are only counted once).
func (t *Tracker) promote(entries []int64, i int) {
	e := int(t.epoch[i])
	if e+1 < len(entries) {
		entries[e+1]++
	}
	if e < MaxEpoch+1 {
		t.epoch[i] = uint8(e + 1)
	}
}

// TexDeathRatio returns the death ratio of texture epoch k: the fraction
// of blocks entering E_k that were evicted before reaching E_{k+1}.
func (t *Tracker) TexDeathRatio(k int) float64 { return deathRatio(t.TexEntries[:], k) }

// ZDeathRatio returns the death ratio of Z epoch k.
func (t *Tracker) ZDeathRatio(k int) float64 { return deathRatio(t.ZEntries[:], k) }

func deathRatio(entries []int64, k int) float64 {
	if k < 0 || k+1 >= len(entries) || entries[k] == 0 {
		return 0
	}
	return float64(entries[k]-entries[k+1]) / float64(entries[k])
}

// TexHits returns the total texture sampler hits observed.
func (t *Tracker) TexHits() int64 { return t.InterTexHits + t.IntraTexHits }

// RTConsumptionRate returns RTConsumed/RTProduced, the fraction of render
// target blocks consumed by the texture sampler from the LLC.
func (t *Tracker) RTConsumptionRate() float64 {
	if t.RTProduced == 0 {
		return 0
	}
	return float64(t.RTConsumed) / float64(t.RTProduced)
}

// KindAccesses returns total accesses (reads+writes) for kind k.
func (t *Tracker) KindAccesses(k stream.Kind) int64 {
	return t.ReadAccesses[k] + t.WriteAccesses[k]
}

// KindHits returns total hits for kind k.
func (t *Tracker) KindHits(k stream.Kind) int64 {
	return t.ReadHits[k] + t.WriteHits[k]
}

// KindHitRate returns the hit rate of stream kind k (reads and writes).
func (t *Tracker) KindHitRate(k stream.Kind) float64 {
	acc := t.KindAccesses(k)
	if acc == 0 {
		return 0
	}
	return float64(t.KindHits(k)) / float64(acc)
}

// RTReadHitRate returns the hit rate of render target loads (blending
// reads), the "render target hit rate" of Figure 13.
func (t *Tracker) RTReadHitRate() float64 {
	if t.ReadAccesses[stream.RT] == 0 {
		return 0
	}
	return float64(t.ReadHits[stream.RT]) / float64(t.ReadAccesses[stream.RT])
}
