package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// NRU is the single-bit not-recently-used policy of Figure 1: every block
// carries one reference bit, set on fill and on hit; when setting a bit
// would leave every block in the set marked, all other bits are cleared.
// The victim is the lowest-numbered way whose bit is clear.
type NRU struct {
	ways int
	ref  []bool
}

var _ cachesim.Policy = (*NRU)(nil)

// NewNRU returns a not-recently-used policy.
func NewNRU() *NRU { return &NRU{} }

// Name implements cachesim.Policy.
func (p *NRU) Name() string { return "NRU" }

// Reset implements cachesim.Policy.
func (p *NRU) Reset(sets, ways int) {
	p.ways = ways
	p.ref = make([]bool, sets*ways)
}

// Hit implements cachesim.Policy.
func (p *NRU) Hit(set, way int, a stream.Access) { p.mark(set, way) }

// Fill implements cachesim.Policy.
func (p *NRU) Fill(set, way int, a stream.Access) { p.mark(set, way) }

// Victim implements cachesim.Policy.
func (p *NRU) Victim(set int, a stream.Access) int {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if !p.ref[base+w] {
			return w
		}
	}
	// Unreachable in steady state (mark clears peers on saturation), but
	// kept as a safeguard: age everyone and evict way 0.
	for w := 0; w < p.ways; w++ {
		p.ref[base+w] = false
	}
	return 0
}

// Evict implements cachesim.Policy.
func (p *NRU) Evict(set, way int) { p.ref[set*p.ways+way] = false }

func (p *NRU) mark(set, way int) {
	base := set * p.ways
	p.ref[base+way] = true
	for w := 0; w < p.ways; w++ {
		if !p.ref[base+w] {
			return
		}
	}
	for w := 0; w < p.ways; w++ {
		if w != way {
			p.ref[base+w] = false
		}
	}
}
