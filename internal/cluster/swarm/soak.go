package swarm

import (
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/leakcheck"
)

// weatherSystem is one entry in the soak's rolling weather palette.
type weatherSystem struct {
	name string
	spec faultinject.NetSpec
}

// weatherPalette is the set of link conditions the soak rolls across
// nodes. Rates are high enough to exercise every fault path within a
// 2-minute run; partitions are budgeted separately (at most one node
// partitioned at a time) so the cluster always has a quorum of clean
// links to keep serving through.
var weatherPalette = []weatherSystem{
	{"clear", faultinject.NetSpec{}},
	{"slow", faultinject.NetSpec{DelayRate: 0.7, Latency: 120 * time.Millisecond, Jitter: 80 * time.Millisecond}},
	{"lossy", faultinject.NetSpec{DropRate: 0.15, DelayRate: 0.3, Latency: 40 * time.Millisecond}},
	{"flaky", faultinject.NetSpec{ResetRate: 0.25, TruncateRate: 0.1}},
	{"choked", faultinject.NetSpec{BandwidthBps: 32 << 10}},
	{"refused", faultinject.NetSpec{Partition: faultinject.PartitionRefuse}},
	{"blackhole", faultinject.NetSpec{Partition: faultinject.PartitionBlackhole}},
}

// shiftWeather rolls new weather onto one random node's link. At most
// one link is partitioned at a time: a second partition draw downgrades
// to clearing the first instead, which keeps the run a test of
// partition *tolerance* rather than full outage behavior.
func (s *swarm) shiftWeather() {
	i := s.rng.Intn(len(s.proxies))
	w := weatherPalette[s.rng.Intn(len(weatherPalette))]
	if w.spec.Partition != faultinject.PartitionNone {
		for j, name := range s.weather {
			if j != i && (name == "refused" || name == "blackhole") {
				w = weatherPalette[0]
				break
			}
		}
	}
	if w.spec.Partition != faultinject.PartitionNone {
		s.rep.Partitions++
	}
	s.proxies[i].SetSpec(w.spec)
	s.weather[i] = w.name
	s.rep.WeatherShifts++
	s.cfg.Logger.Info("soak weather shift", "node", s.nodes[i].name, "weather", w.name)
}

// soak drives the duration-bounded soak: randomized traffic through the
// fault proxies under rolling weather and process chaos, with inline
// goroutine-hygiene sampling. The driver goroutine itself does all
// sampling — a sampler goroutine would count itself.
//
// Asserted at interval: no module goroutine parked on a sync primitive
// at one site past BlockedAfter (the stack-scan analogue of partial
// deadlock detection). Asserted at exit, after heal and quiesce: the
// same, plus zero module-goroutine growth over the post-boot baseline,
// and the usual sticky acked-run visibility and one-simulation
// coalescing contracts.
func (s *swarm) soak() {
	mon := leakcheck.NewMonitor(leakcheck.Options{Allow: []string{
		// Idle engine workers park forever receiving from their queue;
		// that is their steady state, not a deadlock.
		"(*Engine).worker",
	}})
	s.rep.GoroutineBaseline = mon.Baseline()
	s.rep.GoroutinePeak = s.rep.GoroutineBaseline

	start := time.Now()
	end := start.Add(s.cfg.Duration)
	var lastWeather, lastBlocked, lastProof time.Time
	proofs := 0

	for time.Now().Before(end) {
		switch roll := s.rng.Float64(); {
		case roll < 0.40:
			s.opSubmitAsync()
		case roll < 0.55:
			s.opSubmitSync()
		case roll < 0.85:
			s.opStatusPoll()
		case roll < 0.90:
			s.opKill()
		case roll < 0.97:
			s.opRestart()
		case roll < 0.985:
			s.opDrain()
		default:
			s.opUndrain()
		}
		s.rep.Ops++

		if n := mon.Sample(); n > s.rep.GoroutinePeak {
			s.rep.GoroutinePeak = n
		}
		now := time.Now()
		if now.Sub(lastWeather) >= 2*time.Second {
			lastWeather = now
			s.shiftWeather()
		}
		if now.Sub(lastBlocked) >= 5*time.Second {
			lastBlocked = now
			s.rep.BlockedChecks++
			if blocked := mon.Blocked(s.cfg.BlockedAfter); len(blocked) > 0 {
				s.violate("soak: %d goroutines blocked past %v:\n%s",
					len(blocked), s.cfg.BlockedAfter, leakcheck.FormatStacks(blocked))
			}
		}
		if now.Sub(lastProof) >= 15*time.Second {
			lastProof = now
			proofs++
			// The one-simulation guarantee is a stable-membership
			// property, so each proof runs in a calm window: heal, prove,
			// let the weather resume on the next shift.
			s.heal()
			s.proveCoalescing(proofs)
		}
	}

	// Exit assertions on a healed, quiesced cluster.
	s.heal()
	s.quiesce()
	s.rep.SoakSeconds = time.Since(start).Seconds()

	mon.Sample()
	if blocked := mon.Blocked(s.cfg.BlockedAfter); len(blocked) > 0 {
		s.violate("soak exit: %d goroutines still blocked past %v:\n%s",
			len(blocked), s.cfg.BlockedAfter, leakcheck.FormatStacks(blocked))
	}
	if extra, stacks := mon.Growth(15 * time.Second); extra > 0 {
		s.violate("soak exit: %d goroutines above the post-boot baseline %d:\n%s",
			extra, s.rep.GoroutineBaseline, leakcheck.FormatStacks(stacks))
	}
}
