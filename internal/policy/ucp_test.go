package policy

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

func TestUCPInitialAllocation(t *testing.T) {
	p := NewUCP()
	p.Reset(64, 16)
	alloc := p.Allocation()
	total := 0
	for _, a := range alloc {
		total += a
		if a < 1 {
			t.Errorf("group starved at init: %v", alloc)
		}
	}
	if total != 16 {
		t.Errorf("allocation sums to %d, want 16", total)
	}
}

func TestUCPRepartitionFollowsUtility(t *testing.T) {
	p := NewUCP()
	p.Reset(64, 8)
	// Drive UMON set 0 with a Z-heavy reusable pattern and a texture
	// stream with no reuse; after repartition Z should hold more ways.
	for rep := 0; rep < ucpRepartitionPeriod; rep++ {
		p.Hit(0, 0, stream.Access{Addr: uint64(rep%4) * 64, Kind: stream.Z})
	}
	alloc := p.Allocation()
	if alloc[GroupZ] <= alloc[GroupTexture] {
		t.Errorf("Z should out-allocate texture: %v", alloc)
	}
	total := 0
	for _, a := range alloc {
		total += a
		if a < 1 {
			t.Errorf("group starved: %v", alloc)
		}
	}
	if total != 8 {
		t.Errorf("allocation sums to %d", total)
	}
}

func TestUCPVictimizesOverAllocatedGroup(t *testing.T) {
	p := NewUCP()
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4, Ways: 4, BlockSize: 64}, p)
	// Fill the single set entirely with texture blocks, then insert a Z
	// block: texture is over-allocated (4 > its share), so its LRU block
	// must be the victim.
	for i := 0; i < 4; i++ {
		c.Access(stream.Access{Addr: uint64(i) * 64, Kind: stream.Texture})
	}
	c.Access(stream.Access{Addr: 100 * 64, Kind: stream.Z})
	if _, _, ok := c.Lookup(0); ok {
		t.Error("texture LRU block should have been evicted")
	}
	if _, _, ok := c.Lookup(100 * 64); !ok {
		t.Error("Z block missing after fill")
	}
}

func TestUCPFuzz(t *testing.T) {
	f := func(addrs []uint16, kinds []byte) bool {
		c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 8 * 16, Ways: 8, BlockSize: 64}, NewUCP())
		for i, ad := range addrs {
			k := stream.Other
			if i < len(kinds) {
				k = stream.Kind(kinds[i] % byte(stream.NumKinds))
			}
			c.Access(stream.Access{Addr: uint64(ad) * 64, Kind: k})
		}
		return c.Stats.Accesses == c.Stats.Hits+c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUCPName(t *testing.T) {
	if NewUCP().Name() != "UCP" {
		t.Error("name wrong")
	}
}
