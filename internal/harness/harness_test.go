package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions runs one frame of one application at a small scale so the
// experiment plumbing can be exercised quickly.
func tinyOptions() Options {
	return Options{
		Scale:           0.1,
		CapacityFactor:  1.5,
		MaxFramesPerApp: 1,
		Apps:            []string{"AssnCreed"},
	}
}

func TestGeometryScaling(t *testing.T) {
	o := DefaultOptions()
	g := o.Geometry(8 << 20)
	// 8 MB x 0.25^2 x 1.5 = 768 KB.
	if g.SizeBytes != 768<<10 {
		t.Errorf("scaled capacity = %d, want 768KB", g.SizeBytes)
	}
	if g.Ways != 16 || g.BlockSize != 64 {
		t.Errorf("geometry = %v", g)
	}
	// Full scale: factor defaults to 1.
	full := Options{Scale: 1}
	if got := full.Geometry(8 << 20).SizeBytes; got != 8<<20 {
		t.Errorf("full-scale capacity = %d, want 8MB", got)
	}
}

func TestGeometryMinimumSets(t *testing.T) {
	o := Options{Scale: 0.01, CapacityFactor: 1}
	g := o.Geometry(1 << 20)
	if g.Sets() < 16 {
		t.Errorf("sets = %d, want >= 16", g.Sets())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJobsFiltering(t *testing.T) {
	o := Options{Apps: []string{"Dirt", "HAWX"}, MaxFramesPerApp: 2}
	jobs := o.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(jobs))
	}
	for _, j := range jobs {
		if j.App.Abbrev != "Dirt" && j.App.Abbrev != "HAWX" {
			t.Errorf("unexpected app %s", j.App.Abbrev)
		}
	}
	all := Options{}.Jobs()
	if len(all) != 52 {
		t.Errorf("unfiltered jobs = %d, want 52", len(all))
	}
}

func TestTableRenderAndCell(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("x", 1.5, 2.5)
	tbl.AddRow("MEAN", 1, 2)
	tbl.Notes = append(tbl.Notes, "hello")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "x", "MEAN", "1.50", "2.50", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if v, ok := tbl.Cell("x", "b"); !ok || v != 2.5 {
		t.Errorf("Cell = %v %v", v, ok)
	}
	if _, ok := tbl.Cell("zz", "b"); ok {
		t.Error("bogus row found")
	}
	if _, ok := tbl.Cell("x", "zz"); ok {
		t.Error("bogus column found")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	ids := map[string]bool{}
	for _, e := range all {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tab1", "tab6"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, ok := ByID("fig12"); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
}

func TestTable1(t *testing.T) {
	tbl, err := RunTable1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Errorf("rows = %d, want 12", len(tbl.Rows))
	}
	if v, ok := tbl.Cell("Heaven", "Width"); !ok || v != 2560 {
		t.Errorf("Heaven width = %v", v)
	}
	var frames float64
	for _, r := range tbl.Rows {
		frames += r.Values[3]
	}
	if frames != 52 {
		t.Errorf("total frames = %v, want 52", frames)
	}
}

func TestTable6(t *testing.T) {
	tbl, err := RunTable6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Errorf("policies = %d, want 9 (Table 6)", len(tbl.Rows))
	}
}

func TestFig1Tiny(t *testing.T) {
	tbl, err := RunFig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	bel, ok := tbl.Cell("MEAN", "Belady")
	if !ok {
		t.Fatal("no Belady mean")
	}
	if bel >= 1 || bel <= 0.3 {
		t.Errorf("Belady normalized misses = %v, expected well below 1", bel)
	}
	nru, _ := tbl.Cell("MEAN", "NRU")
	if nru < 0.7 || nru > 1.4 {
		t.Errorf("NRU normalized misses = %v, implausible", nru)
	}
}

func TestFig4Tiny(t *testing.T) {
	tbl, err := RunFig4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tbl.Lookup("AssnCreed")
	if !ok {
		t.Fatal("app row missing")
	}
	sum := 0.0
	for _, v := range row.Values {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("stream mix sums to %v, want 100", sum)
	}
}

func TestFig11Tiny(t *testing.T) {
	tbl, err := RunFig11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Values are percent changes vs t=16; they must be small.
	for _, r := range tbl.Rows {
		for _, v := range r.Values {
			if v < -30 || v > 30 {
				t.Errorf("t-sensitivity %v%% out of plausible range", v)
			}
		}
	}
}

func TestFig12TinyHasAllPolicies(t *testing.T) {
	tbl, err := RunFig12(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 8 {
		t.Errorf("fig12 columns = %d, want 8", len(tbl.Columns))
	}
	for _, col := range []string{"NRU", "SHiP-mem", "GS-DRRIP", "GSPZTC", "GSPZTC+TSE", "GSPC", "GSPC+UCD", "DRRIP+UCD"} {
		if _, ok := tbl.Cell("MEAN", col); !ok {
			t.Errorf("fig12 missing column %s", col)
		}
	}
}

func TestFig15Tiny(t *testing.T) {
	tbl, err := RunFig15(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := tbl.Cell("MEAN", "GSPC+UCD")
	if !ok {
		t.Fatal("GSPC column missing")
	}
	if v < 0.5 || v > 2 {
		t.Errorf("normalized performance %v implausible", v)
	}
}

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) != 7 {
		t.Errorf("extensions = %d, want 7", len(exts))
	}
	if _, ok := ByIDExt("abl-banks"); !ok {
		t.Error("ByIDExt missed an ablation")
	}
	if _, ok := ByIDExt("fig12"); !ok {
		t.Error("ByIDExt must also resolve paper figures")
	}
}

func TestExtWarmTiny(t *testing.T) {
	o := tinyOptions()
	tbl, err := RunExtWarm(o)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := tbl.Cell("AssnCreed", "DRRIP")
	if !ok {
		t.Fatal("warm table missing app row")
	}
	// A warm cache can only help: the ratio must be at most ~1.
	if v > 1.02 {
		t.Errorf("warm/cold miss ratio = %v, warm cache should not hurt", v)
	}
	if v < 0.2 {
		t.Errorf("warm/cold miss ratio = %v, implausibly low", v)
	}
}

func TestAblSamplesTiny(t *testing.T) {
	tbl, err := RunAblSamples(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 4 {
		t.Errorf("columns = %d", len(tbl.Columns))
	}
	for _, col := range tbl.Columns {
		v, ok := tbl.Cell("MEAN", col)
		if !ok || v < 0.5 || v > 1.5 {
			t.Errorf("density %s ratio %v implausible", col, v)
		}
	}
}

func TestExtPoliciesTiny(t *testing.T) {
	tbl, err := RunExtPolicies(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"DIP", "peLIFO", "CounterDBP", "GSPC+UCD"} {
		if _, ok := tbl.Cell("MEAN", col); !ok {
			t.Errorf("missing column %s", col)
		}
	}
}

func TestFig5Tiny(t *testing.T) {
	tbl, err := RunFig5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Belady's hit rate must dominate DRRIP's for every stream.
	for _, pair := range [][2]string{{"tex/Bel", "tex/DRRIP"}, {"rt/Bel", "rt/DRRIP"}, {"z/Bel", "z/DRRIP"}} {
		bel, _ := tbl.Cell("MEAN", pair[0])
		dr, _ := tbl.Cell("MEAN", pair[1])
		if bel < dr {
			t.Errorf("%s (%v) below %s (%v)", pair[0], bel, pair[1], dr)
		}
	}
}

func TestFig6Tiny(t *testing.T) {
	tbl, err := RunFig6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Belady's inter+intra split is normalized to its own hits: sums to 100.
	inter, _ := tbl.Cell("MEAN", "inter/Bel")
	intra, _ := tbl.Cell("MEAN", "intra/Bel")
	if s := inter + intra; s < 99.9 || s > 100.1 {
		t.Errorf("Belady split sums to %v", s)
	}
	consB, _ := tbl.Cell("MEAN", "cons/Bel")
	consD, _ := tbl.Cell("MEAN", "cons/DRRIP")
	if consB < consD {
		t.Errorf("Belady consumption %v below DRRIP %v", consB, consD)
	}
}

func TestFig7Tiny(t *testing.T) {
	tbl, err := RunFig7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Epoch hit shares sum to <= 100 and E0 dominates.
	var sum float64
	for _, col := range []string{"hit%E0", "hit%E1", "hit%E2", "hit%E3+"} {
		v, _ := tbl.Cell("MEAN", col)
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("epoch hit shares sum to %v", sum)
	}
	e0, _ := tbl.Cell("MEAN", "hit%E0")
	e1, _ := tbl.Cell("MEAN", "hit%E1")
	if e0 < e1 {
		t.Errorf("E0 hits (%v) below E1 (%v); paper has E0 dominating", e0, e1)
	}
	for _, col := range []string{"death E0", "death E1", "death E2"} {
		v, _ := tbl.Cell("MEAN", col)
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", col, v)
		}
	}
}

func TestFig8Tiny(t *testing.T) {
	tbl, err := RunFig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.Columns {
		v, _ := tbl.Cell("MEAN", col)
		if v < 0 || v > 100 {
			t.Errorf("distant fill %% %s = %v", col, v)
		}
	}
}

func TestFig9Tiny(t *testing.T) {
	tbl, err := RunFig9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.Columns {
		v, _ := tbl.Cell("MEAN", col)
		if v < 0 || v > 1 {
			t.Errorf("death ratio %s = %v", col, v)
		}
	}
}

func TestFig13Tiny(t *testing.T) {
	tbl, err := RunFig13(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Belady's consumption must top every online policy's.
	bel, _ := tbl.Cell("Belady", "rt->tex cons")
	for _, row := range []string{"DRRIP", "GSPZTC", "GSPC"} {
		v, ok := tbl.Cell(row, "rt->tex cons")
		if !ok {
			t.Fatalf("row %s missing", row)
		}
		if v > bel+0.1 {
			t.Errorf("%s consumption %v exceeds Belady %v", row, v, bel)
		}
	}
}

func TestFig14Tiny(t *testing.T) {
	tbl, err := RunFig14(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 4 {
		t.Errorf("fig14 columns = %d, want 4", len(tbl.Columns))
	}
}

func TestFig16And17Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments")
	}
	t16, err := RunFig16(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := t16.Cell("MEAN", "GSPC+UCD"); !ok {
		t.Error("fig16 missing GSPC column")
	}
	t17, err := RunFig17(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := t17.Cell("ddr3-1867/MEAN", "GSPC+UCD"); !ok {
		t.Error("fig17 missing fast-DRAM mean")
	}
	if _, ok := t17.Cell("smallgpu/MEAN", "NRU"); !ok {
		t.Error("fig17 missing small-GPU mean")
	}
}

func TestAblBanksTiny(t *testing.T) {
	tbl, err := RunAblBanks(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"1-bank", "2-bank", "4-bank", "8-bank"} {
		if _, ok := tbl.Cell("MEAN", col); !ok {
			t.Errorf("missing %s", col)
		}
	}
}

func TestExtUCPTiny(t *testing.T) {
	tbl, err := RunExtUCP(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Cell("MEAN", "UCP"); !ok {
		t.Error("UCP column missing")
	}
}

func TestAblFrontCacheTiny(t *testing.T) {
	tbl, err := RunAblFrontCache(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := tbl.Cell("MEAN", "linLLCacc")
	area, _ := tbl.Cell("MEAN", "areaLLCacc")
	if lin <= 0 || area <= 0 {
		t.Error("front-cache ablation produced empty traces")
	}
	// Area-scaled front caches are smaller, so they leak more accesses.
	if area < lin {
		t.Errorf("area scaling (%v accesses) should leak more than linear (%v)", area, lin)
	}
}

func TestAblMortonTiny(t *testing.T) {
	tbl, err := RunAblMorton(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := tbl.Cell("MEAN", "rowmajAcc")
	mo, _ := tbl.Cell("MEAN", "mortonAcc")
	if rm <= 0 || mo <= 0 {
		t.Error("morton ablation produced empty traces")
	}
}
