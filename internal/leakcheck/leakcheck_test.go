package leakcheck

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitLoop parks goroutines in shapes the classifier must recognize.
// The functions live in this package, so their stacks carry the
// gspc/internal/ filter substring naturally.

// abandonedReceiver parks forever on a channel nobody will send to —
// the "abandoned channel waiter" Golf microbenchmark shape.
func abandonedReceiver(ch chan int, done chan struct{}) {
	defer close(done)
	<-ch
}

// doubleLocker locks a mutex it already holds — the "double lock"
// shape. It parks in sync.Mutex.Lock forever.
func doubleLocker(mu *sync.Mutex, done chan struct{}) {
	defer close(done)
	mu.Lock()
	mu.Lock() //nolint:staticcheck // the deadlock is the point
}

func TestParseRecord(t *testing.T) {
	rec := "goroutine 42 [chan receive, 3 minutes]:\n" +
		"gspc/internal/leakcheck.abandonedReceiver(0xc0000a4000)\n" +
		"\t/root/repo/internal/leakcheck/leakcheck_test.go:17 +0x3c\n" +
		"created by gspc/internal/leakcheck.TestX\n" +
		"\t/root/repo/internal/leakcheck/leakcheck_test.go:30 +0x5a"
	g := parseRecord(rec)
	if g.ID != 42 {
		t.Errorf("ID = %d, want 42", g.ID)
	}
	if g.State != "chan receive" {
		t.Errorf("State = %q, want chan receive", g.State)
	}
	if g.WaitMinutes != 3 {
		t.Errorf("WaitMinutes = %d, want 3", g.WaitMinutes)
	}
	if !strings.Contains(g.Site, "abandonedReceiver") {
		t.Errorf("Site = %q, want abandonedReceiver frame", g.Site)
	}
	if !g.Blocked() {
		t.Error("chan receive not classified as blocked")
	}
}

func TestParseRecordRunning(t *testing.T) {
	g := parseRecord("goroutine 7 [running]:\nmain.main()\n\t/x/main.go:1 +0x0")
	if g.State != "running" || g.Blocked() {
		t.Errorf("running goroutine misparsed: state=%q blocked=%v", g.State, g.Blocked())
	}
}

// TestMonitorDetectsAbandonedWaiter: a goroutine parked receiving on a
// dead channel must be reported once it has sat past the threshold, and
// must stop being reported once released.
func TestMonitorDetectsAbandonedWaiter(t *testing.T) {
	m := NewMonitor(Options{})
	m.Baseline()

	ch := make(chan int)
	done := make(chan struct{})
	go abandonedReceiver(ch, done)
	defer func() {
		ch <- 1
		<-done
	}()

	deadline := time.Now().Add(5 * time.Second)
	var hit []Goroutine
	for time.Now().Before(deadline) {
		m.Sample()
		time.Sleep(20 * time.Millisecond)
		hit = m.Blocked(50 * time.Millisecond)
		if len(hit) > 0 {
			break
		}
	}
	if len(hit) == 0 {
		t.Fatal("abandoned channel waiter never reported as blocked")
	}
	found := false
	for _, g := range hit {
		if strings.Contains(g.Site, "abandonedReceiver") && g.State == "chan receive" {
			found = true
		}
	}
	if !found {
		t.Errorf("blocked report misses the waiter:\n%s", FormatStacks(hit))
	}
}

// TestMonitorDetectsDoubleLock: the double-lock shape parks in
// sync.Mutex.Lock and must be flagged.
func TestMonitorDetectsDoubleLock(t *testing.T) {
	m := NewMonitor(Options{})
	m.Baseline()

	var mu sync.Mutex
	done := make(chan struct{})
	go doubleLocker(&mu, done)
	defer func() {
		mu.Unlock() // releases the second Lock; the goroutine exits
		<-done
	}()

	deadline := time.Now().Add(5 * time.Second)
	var hit []Goroutine
	for time.Now().Before(deadline) {
		m.Sample()
		time.Sleep(20 * time.Millisecond)
		for _, g := range m.Blocked(50 * time.Millisecond) {
			if strings.Contains(g.Site, "doubleLocker") && g.State == "sync.Mutex.Lock" {
				hit = append(hit, g)
			}
		}
		if len(hit) > 0 {
			break
		}
	}
	if len(hit) == 0 {
		t.Fatal("double-locked goroutine never reported as blocked")
	}
}

// TestMonitorAllowlist: an allowlisted site is never reported, no
// matter how long it sits.
func TestMonitorAllowlist(t *testing.T) {
	m := NewMonitor(Options{Allow: []string{"abandonedReceiver"}})
	m.Baseline()

	ch := make(chan int)
	done := make(chan struct{})
	go abandonedReceiver(ch, done)
	defer func() {
		ch <- 1
		<-done
	}()

	for i := 0; i < 10; i++ {
		m.Sample()
		time.Sleep(10 * time.Millisecond)
	}
	for _, g := range m.Blocked(20 * time.Millisecond) {
		if strings.Contains(g.Site, "abandonedReceiver") {
			t.Errorf("allowlisted waiter reported blocked:\n%s", g.Stack)
		}
	}
}

// TestMonitorGrowth: Growth reports the excess over baseline and drops
// to zero once the extra goroutines exit.
func TestMonitorGrowth(t *testing.T) {
	m := NewMonitor(Options{})
	m.Baseline()

	ch := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	// Give the goroutines a beat to park so the dump sees them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := countOnce(m); n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if extra, stacks := m.Growth(10 * time.Millisecond); extra != 3 {
		t.Errorf("Growth = %d, want 3:\n%s", extra, FormatStacks(stacks))
	}
	close(ch)
	wg.Wait()
	if extra, stacks := m.Growth(5 * time.Second); extra != 0 {
		t.Errorf("Growth after release = %d, want 0:\n%s", extra, FormatStacks(stacks))
	}
}

// countOnce is Growth without the polling window: one instantaneous
// excess reading.
func countOnce(m *Monitor) (int, []Goroutine) {
	stacks := Stacks(m.opts.Filter)
	if len(stacks) <= m.baseline {
		return 0, nil
	}
	return len(stacks) - m.baseline, stacks
}

// TestCheckHelper: the test-facing Check must pass on a test that
// leaks nothing.
func TestCheckHelper(t *testing.T) {
	Check(t)
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch)
}

func TestHeapGrowthCleanAfterRelease(t *testing.T) {
	m := NewMonitor(Options{})
	base := m.HeapBaseline()
	if base <= 0 {
		t.Fatalf("heap baseline = %d, want > 0", base)
	}
	// Hold a buffer big enough to dominate test-runner noise, sample the
	// high water, then drop it: growth must settle back within the
	// allowance once the reference dies.
	buf := make([]byte, 32<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	if got := m.HeapSample(); got < base+int64(len(buf))/2 {
		t.Errorf("heap sample %d did not see the %d-byte allocation over baseline %d", got, len(buf), base)
	}
	if hw := m.HeapHighWater(); hw < base+int64(len(buf))/2 {
		t.Errorf("high water %d did not capture the allocation", hw)
	}
	runtime.KeepAlive(buf)
	buf = nil
	_ = buf
	excess, final := m.HeapGrowth(10*time.Second, 8<<20)
	if excess != 0 {
		t.Errorf("heap growth = %d bytes over allowance (final %d, baseline %d)", excess, final, base)
	}
}

func TestHeapGrowthReportsLeak(t *testing.T) {
	m := NewMonitor(Options{})
	m.HeapBaseline()
	leak := make([]byte, 32<<20)
	for i := range leak {
		leak[i] = byte(i)
	}
	// The buffer stays referenced, so a short window must report excess.
	excess, _ := m.HeapGrowth(200*time.Millisecond, 8<<20)
	if excess <= 0 {
		t.Error("held 32 MiB not reported as heap growth")
	}
	runtime.KeepAlive(leak)
}
