package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"gspc/internal/stream"
	"gspc/internal/workload"
)

// TestRunResultContextPreCancelled verifies a dead context stops an
// experiment before any trace is synthesized.
func TestRunResultContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunResultContext(ctx, "fig1", tinyOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled run took %v, want immediate return", elapsed)
	}
}

// TestRunResultContextDeadline verifies an expiring deadline interrupts
// the simulation loops mid-run and surfaces as DeadlineExceeded.
func TestRunResultContextDeadline(t *testing.T) {
	// fig12 replays 9 policies over the trace; at the tiny scale it still
	// takes long enough that a 10ms deadline must fire mid-simulation.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunResultContext(ctx, "fig12", tinyOptions())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (after %v), want context.DeadlineExceeded", err, elapsed)
	}
	// The check stride bounds cancellation latency; trace synthesis of a
	// single tiny frame dominates the residual. Generous bound: the run
	// must not continue for the full sweep (seconds).
	if elapsed > 5*time.Second {
		t.Errorf("deadline honored only after %v", elapsed)
	}
}

// TestRunResultContextCompletes verifies a live context changes nothing:
// the run completes and matches the uncancelled API.
func TestRunResultContextCompletes(t *testing.T) {
	res, err := RunResultContext(context.Background(), "tab1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "tab1" || len(res.Table.Rows) == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
}

// TestForEachFrameWorkerPoolCancellation drives the parallel synthesis
// path with a context that dies mid-sweep and requires a prompt, clean
// return (no hang, no stray sends — the race detector guards the rest).
func TestForEachFrameWorkerPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := Options{Scale: 0.05, MaxFramesPerApp: 1, Workers: 2, Context: ctx}
	frames := 0
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, _ *samplePlan) error {
		frames++
		if frames == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if frames != 2 {
		t.Errorf("fn ran for %d frames after mid-sweep cancel, want exactly 2", frames)
	}
}

// TestForEachFrameFnErrorStopsPool: when fn fails while the caller's
// context is still live, the pool-local context must be cancelled so the
// workers stop synthesizing traces nobody will consume.
func TestForEachFrameFnErrorStopsPool(t *testing.T) {
	o := Options{Scale: 0.05, MaxFramesPerApp: 2, Workers: 2}
	total := len(o.Jobs())
	if total < 4 {
		t.Fatalf("suite yields only %d jobs; too few to observe the pool", total)
	}
	boom := errors.New("accumulator exploded")
	start := poolSynths.Load()
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, _ *samplePlan) error {
		return boom // first frame fails; the run context stays live
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fn error", err)
	}
	// forEachFrame joins its pool before returning, so the counter is
	// final: only the frames already in flight when fn failed may have
	// been synthesized, never the whole remaining job list.
	if n := poolSynths.Load() - start; n >= int64(total) {
		t.Errorf("pool synthesized all %d traces after fn failed on the first frame", n)
	}
}
