package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Abbrev, err)
		}
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := MarshalSuite(&buf, Profiles()); err != nil {
		t.Fatal(err)
	}
	ps, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 12 {
		t.Fatalf("round trip lost profiles: %d", len(ps))
	}
	if ps[2].Abbrev != "AssnCreed" || ps[2].DynamicTexFraction != Profiles()[2].DynamicTexFraction {
		t.Error("profile content corrupted in round trip")
	}
	// A loaded custom profile must build a valid frame.
	f := ps[0].BuildFrame(0, 0.1)
	if err := f.Validate(); err != nil {
		t.Errorf("round-tripped profile builds invalid frame: %v", err)
	}
}

func TestLoadProfilesRejectsBad(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"unknown field":   `[{"Abbrev":"X","Bogus":1}]`,
		"missing abbrev":  `[{"Width":1920,"Height":1080}]`,
		"tiny resolution": `[{"Abbrev":"X","Width":8,"Height":8,"Frames":1,"GeomPasses":1,"DrawsPerGeomPass":1,"MeshTris":1,"VertexCount":1,"DepthComplexity":1}]`,
		"bad zpass":       `[{"Abbrev":"X","Width":640,"Height":480,"Frames":1,"GeomPasses":1,"DrawsPerGeomPass":1,"MeshTris":1,"VertexCount":1,"DepthComplexity":1,"ZPassRate":1.5}]`,
	}
	for name, js := range cases {
		if _, err := LoadProfiles(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadProfilesMinimalValid(t *testing.T) {
	js := `[{"Abbrev":"Mini","Name":"Mini","Width":640,"Height":480,"Frames":1,
		"GeomPasses":1,"DrawsPerGeomPass":2,"MeshTris":100,"VertexCount":80,
		"DepthComplexity":1.5,"ZPassRate":0.7}]`
	ps, err := LoadProfiles(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	f := ps[0].BuildFrame(0, 0.5)
	if err := f.Validate(); err != nil {
		t.Errorf("minimal profile frame invalid: %v", err)
	}
}
