package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// ClusterEvent is one typed entry of the cluster timeline: a membership
// or health transition the coordinator observed. Seq is a monotonic
// cursor — clients resume a stream with ?since=<seq>.
type ClusterEvent struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Node   string    `json:"node,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Event types recorded by the coordinator. The set is closed by
// construction — new transitions mean new constants — which keeps any
// per-type metric cardinality bounded.
const (
	EventMemberSuspected      = "member-suspected"
	EventMemberVindicated     = "member-vindicated"
	EventMemberDead           = "member-dead"
	EventMemberRevived        = "member-revived"
	EventDrainStart           = "drain-start"
	EventDrainEnd             = "drain-end"
	EventMemRungChange        = "mem-rung-change"
	EventRingSwap             = "ring-swap"
	EventReplicationExhausted = "replication-exhausted"
)

// EventLog is a bounded, optionally durable ring of ClusterEvents.
// The newest capacity events are kept in memory for /v1/cluster/events
// and /debugz; when a path is configured every event is also appended
// as NDJSON, and the file is compacted back to the ring contents
// whenever it outgrows a fixed budget — so the on-disk form is bounded
// too, and a restarted coordinator replays the tail to resume its Seq
// cursor where it left off.
type EventLog struct {
	mu       sync.Mutex
	ring     []ClusterEvent
	next     int // ring insertion index
	filled   int
	seq      int64
	total    int64
	path     string
	f        *os.File
	fileSize int64
}

// DefaultEventLogSize bounds the in-memory ring when NewEventLog is
// given a non-positive capacity.
const DefaultEventLogSize = 1024

// eventLogMaxFileBytes is the on-disk budget; past it the NDJSON file
// is rewritten from the in-memory ring.
const eventLogMaxFileBytes = 4 << 20

// NewEventLog builds a ring of n events (<= 0 selects
// DefaultEventLogSize). A non-empty path makes the log durable: events
// append to the NDJSON file, and an existing file is replayed so Seq
// continues across restarts. A replay error is returned but the log is
// still usable (memory-only).
func NewEventLog(n int, path string) (*EventLog, error) {
	if n <= 0 {
		n = DefaultEventLogSize
	}
	l := &EventLog{ring: make([]ClusterEvent, n), path: path}
	if path == "" {
		return l, nil
	}
	if err := l.replay(); err != nil {
		return l, fmt.Errorf("event log replay %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return l, fmt.Errorf("event log open %s: %w", path, err)
	}
	if st, err := f.Stat(); err == nil {
		l.fileSize = st.Size()
	}
	l.f = f
	return l, nil
}

// replay loads an existing NDJSON file into the ring. Unparseable lines
// (a torn final append from a crash) are skipped.
func (l *EventLog) replay() error {
	f, err := os.Open(l.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev ClusterEvent
		if json.Unmarshal(line, &ev) != nil {
			continue
		}
		l.push(ev)
		if ev.Seq >= l.seq {
			l.seq = ev.Seq
		}
		l.total++
	}
	return sc.Err()
}

// push inserts into the ring (caller holds mu or has exclusive access).
func (l *EventLog) push(ev ClusterEvent) {
	l.ring[l.next] = ev
	l.next = (l.next + 1) % len(l.ring)
	if l.filled < len(l.ring) {
		l.filled++
	}
}

// Add records an event, assigning the next Seq, and returns it. Nil-safe
// so call sites don't need to guard a disabled log.
func (l *EventLog) Add(typ, node, detail string) ClusterEvent {
	if l == nil {
		return ClusterEvent{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.total++
	ev := ClusterEvent{Seq: l.seq, Time: time.Now().UTC(), Type: typ, Node: node, Detail: detail}
	l.push(ev)
	if l.f != nil {
		b, _ := json.Marshal(ev)
		b = append(b, '\n')
		if n, err := l.f.Write(b); err == nil {
			l.fileSize += int64(n)
			if l.fileSize > eventLogMaxFileBytes {
				l.compactLocked()
			}
		}
	}
	return ev
}

// compactLocked rewrites the file to the current ring contents. A
// failure leaves the old (oversized) file in place; durability degrades
// rather than the coordinator failing.
func (l *EventLog) compactLocked() {
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	for _, ev := range l.eventsLocked(0, 0) {
		b, _ := json.Marshal(ev)
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return
	}
	l.f.Close()
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return
	}
	l.f = nf
	if st, err := nf.Stat(); err == nil {
		l.fileSize = st.Size()
	}
}

// eventsLocked returns ring events with Seq > since, oldest first,
// capped at max (0 = no cap).
func (l *EventLog) eventsLocked(since int64, max int) []ClusterEvent {
	out := make([]ClusterEvent, 0, l.filled)
	start := l.next - l.filled
	for i := 0; i < l.filled; i++ {
		ev := l.ring[(start+i+len(l.ring))%len(l.ring)]
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Since returns buffered events with Seq > since, oldest first, capped
// at max (<= 0 means no cap), plus the latest cursor a client should
// resume from. Events older than the ring capacity are gone — a client
// that falls too far behind silently skips them, which the Seq gap
// makes detectable.
func (l *EventLog) Since(since int64, max int) ([]ClusterEvent, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eventsLocked(since, max), l.seq
}

// Total reports how many events were ever recorded (including any
// replayed from disk and those since evicted from the ring).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Close releases the backing file, if any.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
