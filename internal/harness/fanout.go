package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// replayWorkers resolves the concurrency budget an experiment may spend,
// shared by the trace-synthesis pool and the per-frame policy fan-out:
// Options.Workers when set, otherwise min(GOMAXPROCS, 4).
func (o Options) replayWorkers() int {
	w := o.normalized().Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 4 {
			w = 4
		}
	}
	return w
}

// fanOut runs jobs 0..n-1 on up to workers goroutines and joins them all
// before returning. Callers collect results positionally (each job writes
// its own slot), so accumulation order — and therefore every floating
// point sum downstream — is identical to a sequential loop no matter how
// the goroutines interleave.
//
// The first job error cancels the derived context, stopping the other
// jobs at their next poll; fanOut reports a real failure in preference to
// the cancellations it caused, and a parent-context death (Canceled or
// DeadlineExceeded) surfaces as itself.
func fanOut(ctx context.Context, workers, n int, run func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := run(fctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// stageClock accumulates wall-clock nanoseconds and invocation counts for
// one experiment stage, process-wide. Stages overlap under fan-out, so
// the totals are summed per-invocation wall time (comparable to CPU
// time), not elapsed time.
type stageClock struct {
	ns    atomic.Int64
	count atomic.Int64
}

// track starts a timer; the returned func stops it and folds the elapsed
// time into the clock. Use as: defer clock.track()().
func (s *stageClock) track() func() {
	start := time.Now()
	return func() {
		s.ns.Add(time.Since(start).Nanoseconds())
		s.count.Add(1)
	}
}

var (
	stageSynth  stageClock // frame synthesis (trace-cache misses)
	stageReplay stageClock // offline policy replays, incl. Belady
	stageTiming stageClock // gpu timing-model simulations
)

// StageTimings snapshots the per-stage accumulators: how the process has
// spent its experiment time, split into trace synthesis, offline policy
// replay, and timing simulation. Served by gspcd's /metricsz.
type StageTimings struct {
	SynthCount  int64   `json:"synth_count"`
	SynthMs     float64 `json:"synth_ms"`
	ReplayCount int64   `json:"replay_count"`
	ReplayMs    float64 `json:"replay_ms"`
	TimingCount int64   `json:"timing_count"`
	TimingMs    float64 `json:"timing_ms"`
}

// Timings returns the process-wide stage timing snapshot.
func Timings() StageTimings {
	return StageTimings{
		SynthCount:  stageSynth.count.Load(),
		SynthMs:     float64(stageSynth.ns.Load()) / 1e6,
		ReplayCount: stageReplay.count.Load(),
		ReplayMs:    float64(stageReplay.ns.Load()) / 1e6,
		TimingCount: stageTiming.count.Load(),
		TimingMs:    float64(stageTiming.ns.Load()) / 1e6,
	}
}
