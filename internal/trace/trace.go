// Package trace provides LLC access trace capture, a binary container
// format for storing traces on disk, and the glue that renders a workload
// frame through the render cache complex to produce its LLC trace — the
// equivalent of the paper's "LLC load/store access trace collected from
// the detailed simulator for each frame" (Section 2).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"gspc/internal/pipeline"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/workload"
)

// Collector is a stream.Sink that records every access in order.
type Collector struct {
	Accesses []stream.Access
}

// Emit implements stream.Sink.
func (c *Collector) Emit(a stream.Access) {
	c.Accesses = append(c.Accesses, a)
}

// sizeHints remembers the most recent trace length per (job, scale), so
// repeat synthesis of a frame — benchmarks, sweeps with the trace cache
// disabled or evicting — pre-sizes its collector instead of paying a
// dozen append regrowths of a multi-megabyte buffer. The hint only
// shapes allocation, never content.
var sizeHints sync.Map // "job|scale" -> int

func hintKey(job workload.FrameJob, scale float64) string {
	return fmt.Sprintf("%s|%g", job.ID(), scale)
}

// EstimateAccesses returns the expected LLC trace length for a frame at
// the given scale: the remembered length of the last synthesis of this
// exact (job, scale), otherwise an area-proportional estimate from any
// recorded scale of the same job, otherwise a conservative floor.
func EstimateAccesses(job workload.FrameJob, scale float64) int {
	if v, ok := sizeHints.Load(hintKey(job, scale)); ok {
		return v.(int)
	}
	// Trace length grows roughly with frame area. A small floor avoids
	// silly tiny allocations without risking a large over-commit.
	est := int(float64(job.App.Width) * float64(job.App.Height) * scale * scale / 4)
	if est < 4096 {
		est = 4096
	}
	return est
}

func recordSize(job workload.FrameJob, scale float64, n int) {
	sizeHints.Store(hintKey(job, scale), n)
}

// GenerateFrame renders one suite frame at the given linear scale through
// a render cache complex (scaled to match) and returns the resulting LLC
// access trace. Seq fields are assigned in trace order so the trace is
// directly consumable by Belady preprocessing.
//
// The render caches are scaled by the linear factor, not by area: their
// working sets are dominated by rows of surface tiles (line buffers),
// whose footprint grows with resolution, not with pixel count. Scaling
// them linearly keeps the filtered LLC stream mix representative of the
// full-resolution configuration.
func GenerateFrame(job workload.FrameJob, scale float64) []stream.Access {
	return GenerateFrameWithCaches(job, scale, rendercache.DefaultConfig().Scaled(scale))
}

// GenerateFrameWithCaches is GenerateFrame with an explicit render cache
// configuration (used by ablation benches that vary the front caches).
func GenerateFrameWithCaches(job workload.FrameJob, scale float64, cfg rendercache.Config) []stream.Access {
	col := &Collector{Accesses: make([]stream.Access, 0, EstimateAccesses(job, scale))}
	rc := rendercache.New(cfg, col)
	frame := job.Build(scale)
	if err := frame.Validate(); err != nil {
		panic(fmt.Sprintf("trace: invalid frame %s: %v", job.ID(), err))
	}
	r := pipeline.NewRenderer(rc)
	r.RenderFrame(frame)
	for i := range col.Accesses {
		col.Accesses[i].Seq = int64(i)
	}
	recordSize(job, scale, len(col.Accesses))
	return col.Accesses
}

// GeneratePacked renders one suite frame directly into a packed
// stream.Trace: the render-cache miss stream is collected at 9 bytes per
// record with Seq implicit in position, skipping the []stream.Access
// intermediate entirely. This is the synthesis path behind the shared
// frame-trace cache.
func GeneratePacked(job workload.FrameJob, scale float64) *stream.Trace {
	t := stream.NewTrace(EstimateAccesses(job, scale))
	GeneratePackedInto(t, job, scale, rendercache.DefaultConfig().Scaled(scale))
	return t
}

// GeneratePackedInto renders a frame into an existing packed trace
// buffer, appending after whatever capacity Reset left behind — the
// buffer-reuse hook for sweeps that synthesize many frames serially.
// The buffer is reset first; on return it holds exactly the new frame.
func GeneratePackedInto(t *stream.Trace, job workload.FrameJob, scale float64, cfg rendercache.Config) {
	t.Reset()
	t.Grow(EstimateAccesses(job, scale))
	rc := rendercache.New(cfg, t)
	frame := job.Build(scale)
	if err := frame.Validate(); err != nil {
		panic(fmt.Sprintf("trace: invalid frame %s: %v", job.ID(), err))
	}
	pipeline.NewRenderer(rc).RenderFrame(frame)
	recordSize(job, scale, t.Len())
}

// prefixDone is the sentinel a limitSink panics with to abort rendering
// once the prefix budget is reached; GeneratePackedPrefix recovers it.
type prefixDone struct{}

// limitSink forwards LLC accesses into the packed trace until limit
// records have been collected, then aborts the render by panicking with
// the prefixDone sentinel. Rendering emission is deterministic, so the
// collected records are exactly the first limit records of the full
// frame trace.
type limitSink struct {
	t     *stream.Trace
	limit int
}

func (s *limitSink) Emit(a stream.Access) {
	s.t.Append(a)
	if s.t.Len() >= s.limit {
		panic(prefixDone{})
	}
}

// GeneratePackedPrefix renders a frame into t but stops as soon as limit
// LLC records have been emitted, aborting the rest of the render. The
// result is bit-identical to the first min(limit, full) records of
// GeneratePackedInto with the same arguments: emission order is
// deterministic and the renderer holds no state outside the per-call
// render-cache complex, so cutting the render short cannot perturb the
// prefix. Unlike GeneratePackedInto it never updates the size hints —
// a truncated length must not shape later full syntheses (content is
// never affected by hints, but sampled runs must also stay independent
// of process history for bit-determinism of their own bookkeeping).
func GeneratePackedPrefix(t *stream.Trace, job workload.FrameJob, scale float64, cfg rendercache.Config, limit int) {
	t.Reset()
	if limit <= 0 {
		return
	}
	t.Grow(limit)
	rc := rendercache.New(cfg, &limitSink{t: t, limit: limit})
	frame := job.Build(scale)
	if err := frame.Validate(); err != nil {
		panic(fmt.Sprintf("trace: invalid frame %s: %v", job.ID(), err))
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(prefixDone); !ok {
				panic(r)
			}
		}
	}()
	pipeline.NewRenderer(rc).RenderFrame(frame)
}

// Binary container format:
//
//	magic   [8]byte  "GSPCTRC1"
//	count   uint64
//	records count * { addr uint64, meta uint8 }   (little endian)
//
// where meta packs the stream kind in bits 0..6 and the write flag in
// bit 7.

var magic = [8]byte{'G', 'S', 'P', 'C', 'T', 'R', 'C', '1'}

// ErrBadMagic reports a container that is not a GSPC trace.
var ErrBadMagic = errors.New("trace: bad magic")

// Write stores a trace in the binary container format.
func Write(w io.Writer, accs []stream.Access) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(accs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [9]byte
	for _, a := range accs {
		binary.LittleEndian.PutUint64(rec[:8], a.Addr)
		m := uint8(a.Kind) & 0x7f
		if a.Write {
			m |= 0x80
		}
		rec[8] = m
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads a trace from the binary container format, assigning Seq in
// order.
func Read(r io.Reader) ([]stream.Access, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Pre-size conservatively: the count comes from an untrusted header,
	// so cap the up-front allocation and let append grow the rest as
	// records actually arrive (a truncated file then fails fast instead
	// of allocating gigabytes).
	capHint := int(count)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	accs := make([]stream.Access, 0, capHint)
	var rec [9]byte
	for i := int64(0); i < int64(count); i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		k := stream.Kind(rec[8] & 0x7f)
		if !k.Valid() {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", i, rec[8]&0x7f)
		}
		accs = append(accs, stream.Access{
			Addr:  binary.LittleEndian.Uint64(rec[:8]),
			Seq:   i,
			Kind:  k,
			Write: rec[8]&0x80 != 0,
		})
	}
	return accs, nil
}

// WriteTrace stores a packed trace in the binary container format. The
// on-disk record (addr uint64 + meta uint8) is exactly the packed
// in-memory record, so no intermediate slice is built.
func WriteTrace(w io.Writer, t *stream.Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(t.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [9]byte
	for i, n := 0, t.Len(); i < n; i++ {
		binary.LittleEndian.PutUint64(rec[:8], t.Addr(i))
		rec[8] = stream.PackMeta(t.KindAt(i), t.WriteAt(i))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a trace from the binary container format into the
// packed representation, at 9 bytes per record instead of 24.
func ReadTrace(r io.Reader) (*stream.Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Same untrusted-header rule as Read: cap the up-front allocation.
	capHint := int(count)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t := stream.NewTrace(capHint)
	var rec [9]byte
	for i := int64(0); i < int64(count); i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		k, wr := stream.UnpackMeta(rec[8])
		if !k.Valid() {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", i, rec[8]&0x7f)
		}
		t.Append(stream.Access{Addr: binary.LittleEndian.Uint64(rec[:8]), Kind: k, Write: wr})
	}
	return t, nil
}
