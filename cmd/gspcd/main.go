// Command gspcd serves the paper's experiments over HTTP: a bounded job
// queue, a worker pool, request coalescing, and a result cache whose
// eviction is handled by the repo's own LLC replacement policies.
//
// Usage:
//
//	gspcd [-addr :8080] [-queue 64] [-workers N] [-sim-workers N]
//	      [-cache-entries 128] [-cache-policy lru|nru|drrip]
//	      [-job-timeout 0] [-max-retries 2] [-retry-backoff 50ms]
//	      [-breaker-threshold 5] [-breaker-cooldown 30s]
//	      [-serve-stale] [-max-work 0] [-expose-stacks]
//	      [-data-dir DIR] [-fsync=true] [-snapshot-every 256]
//
// With -data-dir set, every job transition is appended to a
// checksummed write-ahead journal and completed results are
// snapshotted, so a crashed or restarted gspcd comes back remembering
// its runs: GET /v1/runs/{id} keeps answering across restarts.
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining/saturated/broken)
//	GET  /metricsz         counters: hits/misses, queue depth, latency percentiles
//	GET  /v1/experiments   runnable experiment ids
//	POST /v1/runs          {"experiment":"fig12","frames":1,...}; ?wait=0 queues,
//	                       ?timeout_ms=N caps the run deadline
//	GET  /v1/runs/{id}     job status and result
//
// SIGINT/SIGTERM drain in-flight jobs before exiting.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gspc/internal/harness"
	"gspc/internal/service"
)

func main() {
	opt, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcd:", err)
		os.Exit(2)
	}
	harness.SharedTraceCache().SetBudget(opt.traceCacheMB << 20)

	cfg := opt.engineConfig()
	if opt.simWorkers > 0 {
		sw := opt.simWorkers
		cfg.Run = func(ctx context.Context, r service.Request) (*harness.Result, error) {
			o := r.Options()
			if o.Workers == 0 {
				o.Workers = sw
			}
			return harness.RunResultContext(ctx, r.Experiment, o)
		}
	}
	engine, err := service.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcd:", err)
		os.Exit(2)
	}

	srv := &http.Server{Addr: opt.addr, Handler: service.NewServer(engine)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	persistence := "in-memory"
	if opt.dataDir != "" {
		persistence = "journal at " + opt.dataDir
	}
	log.Printf("gspcd: listening on %s (queue %d, cache %d entries, policy %s, %s)",
		opt.addr, opt.queue, opt.cacheSize, opt.cachePolicy, persistence)

	select {
	case err := <-errc:
		log.Fatalf("gspcd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("gspcd: shutting down, draining in-flight jobs (timeout %s)", opt.drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), opt.drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("gspcd: http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutCtx); err != nil {
		// With -data-dir the journal still holds these jobs as
		// queued/running; the next boot re-enqueues the queued ones and
		// marks the running ones failed-retryable.
		log.Printf("gspcd: engine drain: %v (%d jobs abandoned at the deadline)",
			err, engine.Unfinished())
		os.Exit(1)
	}
	m := engine.Metrics()
	log.Printf("gspcd: drained; served %d requests (%d cache hits, %d coalesced, %d rejected)",
		m.Requests, m.CacheHits, m.Coalesced, m.Rejected)
}
