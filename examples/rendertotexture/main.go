// Render-to-texture characterization: build a custom two-pass frame with
// heavy dynamic texturing, trace it, and measure the inter-stream reuse
// that the paper's GSPC policy exploits — render target blocks consumed
// by the texture samplers from the LLC (Section 2.3 of the paper).
//
//	go run ./examples/rendertotexture
package main

import (
	"fmt"

	"gspc/internal/analysis"
	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/memmap"
	"gspc/internal/pipeline"
	"gspc/internal/policy"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/trace"
)

// buildFrame constructs a frame by hand: pass 1 renders a reflection map,
// pass 2 renders the scene sampling that map, pass 3 post-processes the
// scene into the back buffer. Every surface the samplers read in passes 2
// and 3 was produced by the render target stream moments earlier.
func buildFrame() *pipeline.Frame {
	alloc := memmap.NewAllocator(0x1000_0000)
	const w, h = 480, 296

	f := &pipeline.Frame{Width: w, Height: h, Seed: 1234}
	f.BackBuffer = memmap.NewSurface(alloc, w, h, 4)
	depth := memmap.NewSurface(alloc, w, h, pipeline.ZBytesPerPixel)
	hiz := memmap.NewSurface(alloc, w/4, h/4, pipeline.HiZBytesPerEntry)
	scene := memmap.NewSurface(alloc, w, h, 4)
	reflection := memmap.NewSurface(alloc, 240, 152, 4)
	reflDepth := memmap.NewSurface(alloc, 240, 152, pipeline.ZBytesPerPixel)

	consts := memmap.NewBuffer(alloc, 32, 64)
	f.ConstBase = consts.Base
	f.ConstBlocks = consts.Count()

	mesh := &pipeline.Mesh{
		Vertices: memmap.NewBuffer(alloc, 4096, 32),
		Indices:  memmap.NewBuffer(alloc, 12288, 4),
		TriCount: 4096,
	}
	material := memmap.NewTexture(alloc, 1024, 1024, 4, 8)

	// Pass 1: render the reflection map.
	f.Passes = append(f.Passes, &pipeline.Pass{
		Target: reflection,
		Depth:  reflDepth,
		Draws: []*pipeline.Draw{{
			Mesh: mesh, Coverage: 1.5, Patches: 4, ZPassRate: 0.7,
			Textures: []pipeline.TextureBinding{{Texture: material, Scale: 1.5}},
		}},
	})

	// Pass 2: render the scene; every draw samples the reflection.
	scenePass := &pipeline.Pass{Target: scene, Depth: depth, HiZ: hiz, SamplesDynamic: true}
	for d := 0; d < 6; d++ {
		scenePass.Draws = append(scenePass.Draws, &pipeline.Draw{
			Mesh: mesh, Coverage: 0.4, Patches: 3, ZPassRate: 0.65,
			Textures: []pipeline.TextureBinding{
				{Texture: material, Scale: 2.0},
				{Texture: memmap.TextureFromSurface(reflection), Scale: 0.5, Aligned: true},
			},
		})
	}
	f.Passes = append(f.Passes, scenePass)

	// Pass 3: tone-map the scene into the back buffer.
	f.Passes = append(f.Passes, &pipeline.Pass{
		Target:         f.BackBuffer,
		SamplesDynamic: true,
		Draws: []*pipeline.Draw{{
			Mesh: mesh, Coverage: 1.0, Patches: 1,
			Textures: []pipeline.TextureBinding{
				{Texture: memmap.TextureFromSurface(scene), Scale: 1.0, Aligned: true},
			},
		}},
	})
	return f
}

func main() {
	f := buildFrame()
	if err := f.Validate(); err != nil {
		panic(err)
	}

	// Trace the frame through the render cache complex.
	col := &trace.Collector{}
	rc := rendercache.New(rendercache.DefaultConfig().Scaled(0.25), col)
	pipeline.NewRenderer(rc).RenderFrame(f)
	tr := col.Accesses
	for i := range tr {
		tr[i].Seq = int64(i)
	}
	fmt.Printf("custom frame: %d LLC accesses\n\n", len(tr))

	geom := cachesim.Geometry{SizeBytes: 512 << 10, Ways: 16, BlockSize: 64}
	show := func(name string, pol cachesim.Policy) {
		c := cachesim.New(geom, pol)
		tk := analysis.Attach(c)
		for _, a := range tr {
			c.Access(a)
		}
		fmt.Printf("%-8s misses=%6d  RT produced=%5d consumed=%5d (%4.1f%%)  tex hits inter/intra=%d/%d\n",
			name, c.Stats.Misses, tk.RTProduced, tk.RTConsumed, 100*tk.RTConsumptionRate(),
			tk.InterTexHits, tk.IntraTexHits)
	}
	show("DRRIP", policy.NewDRRIP(2))
	show("GSPC", core.New(core.DefaultParams(core.VariantGSPC)))
	show("Belady", belady.NewOPT(belady.NextUse(tr, 6)))
	_ = stream.NumKinds
}
