package telemetry

import "sync/atomic"

// Process-global simulator-domain counters, fed by the harness and the
// GPU timing model and exposed as Prometheus series by gspcd. These are
// the per-stream quantities the paper's argument rests on (Fig. 4's
// stream mix, per-stream LLC hit rates, DRAM row behavior), accumulated
// once per completed frame replay or timing simulation — never inside
// the per-access loops.
var (
	llcStreamAccesses = NewCounterVec()
	llcStreamHits     = NewCounterVec()

	dramReads, dramWrites                       atomic.Int64
	dramRowHits, dramRowMisses, dramRowConflict atomic.Int64

	sampledReplays, sampledSetsSim, sampledSetsTot atomic.Int64
	sampledSkippedAcc, sampledSimulatedAcc         atomic.Int64
)

// RecordLLCStream folds one replay's per-stream access and hit counts
// into the process totals. The label is the stream kind name
// ("texture", "rt", "z", ...).
func RecordLLCStream(stream string, accesses, hits int64) {
	if accesses == 0 && hits == 0 {
		return
	}
	llcStreamAccesses.Add(stream, accesses)
	llcStreamHits.Add(stream, hits)
}

// RecordDRAM folds one timing simulation's DRAM request outcomes into
// the process totals.
func RecordDRAM(reads, writes, rowHits, rowMisses, rowConflicts int64) {
	dramReads.Add(reads)
	dramWrites.Add(writes)
	dramRowHits.Add(rowHits)
	dramRowMisses.Add(rowMisses)
	dramRowConflict.Add(rowConflicts)
}

// RecordSampledReplay folds one set-sampled measured replay into the
// process totals: how many sets were simulated out of how many, and how
// many accesses were skipped at unsampled sets vs actually simulated.
// The set counts are gauges in spirit (last replay wins would do), but
// summing keeps them monotonic for Prometheus; divide by
// sampled_replays for the per-replay means.
func RecordSampledReplay(setsSimulated, setsTotal, skipped, simulated int64) {
	sampledReplays.Add(1)
	sampledSetsSim.Add(setsSimulated)
	sampledSetsTot.Add(setsTotal)
	sampledSkippedAcc.Add(skipped)
	sampledSimulatedAcc.Add(simulated)
}

// SimStats is a snapshot of the simulator-domain counters.
type SimStats struct {
	LLCStreamAccesses map[string]int64 `json:"llc_stream_accesses"`
	LLCStreamHits     map[string]int64 `json:"llc_stream_hits"`
	DRAMReads         int64            `json:"dram_reads"`
	DRAMWrites        int64            `json:"dram_writes"`
	DRAMRowHits       int64            `json:"dram_row_hits"`
	DRAMRowMisses     int64            `json:"dram_row_misses"`
	DRAMRowConflicts  int64            `json:"dram_row_conflicts"`
	// Sampled-fidelity replay counters: replays run set-sampled, the
	// summed sampled/total set counts across them, and the accesses
	// skipped (unsampled set) vs simulated in measured windows.
	SampledReplays      int64 `json:"sampled_replays"`
	SampledSets         int64 `json:"sampled_sets"`
	SampledSetsTotal    int64 `json:"sampled_sets_total"`
	SampledSkippedAcc   int64 `json:"sampled_skipped_accesses"`
	SampledSimulatedAcc int64 `json:"sampled_simulated_accesses"`
}

// Sim snapshots the process-global simulator-domain counters.
func Sim() SimStats {
	return SimStats{
		LLCStreamAccesses: llcStreamAccesses.Snapshot(),
		LLCStreamHits:     llcStreamHits.Snapshot(),
		DRAMReads:         dramReads.Load(),
		DRAMWrites:        dramWrites.Load(),
		DRAMRowHits:       dramRowHits.Load(),
		DRAMRowMisses:     dramRowMisses.Load(),
		DRAMRowConflicts:  dramRowConflict.Load(),

		SampledReplays:      sampledReplays.Load(),
		SampledSets:         sampledSetsSim.Load(),
		SampledSetsTotal:    sampledSetsTot.Load(),
		SampledSkippedAcc:   sampledSkippedAcc.Load(),
		SampledSimulatedAcc: sampledSimulatedAcc.Load(),
	}
}
