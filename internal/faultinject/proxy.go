package faultinject

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a fault-injecting TCP proxy: it listens on its own address,
// pipes every accepted connection to a fixed target, and applies the
// current NetSpec to each connection — added latency, bandwidth caps,
// resets, response truncation, black-holes, and full partitions. Put
// one in front of each cluster member and the coordinator experiences
// real network weather on real sockets, not mocked errors.
//
// Per-connection decisions flow from the seed in accept order, so a
// given seed produces a deterministic outcome sequence; which
// connection draws which outcome depends on arrival order, exactly like
// the call-order semantics of Random.
//
// SetSpec reconfigures the weather live. Raising a partition also
// severs established connections — keep-alive connections must not
// tunnel through a partition that post-dates them.
type Proxy struct {
	ln     net.Listener
	target string
	r      *roller

	mu     sync.Mutex
	spec   NetSpec
	conns  map[net.Conn]struct{}
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewProxy starts a proxy for target ("127.0.0.1:8081") on a fresh
// loopback address, seeded and with initial weather spec.
func NewProxy(target string, seed int64, spec NetSpec) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln: ln, target: target, r: newRoller(seed, false),
		spec: spec, conns: map[net.Conn]struct{}{}, done: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address; point clients here instead of
// at the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// Record starts logging decisions (determinism tests); call before any
// traffic.
func (p *Proxy) Record() *Proxy { p.r.enableRecord(); return p }

// Counts snapshots the decision tally.
func (p *Proxy) Counts() NetCounts { return p.r.snapshot() }

// Decisions returns the recorded decision log.
func (p *Proxy) Decisions() []NetDecision { return p.r.decisions() }

// Spec returns the current weather.
func (p *Proxy) Spec() NetSpec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec
}

// SetSpec replaces the weather live. Entering a partition severs every
// established connection, so in-flight exchanges fail the way a real
// route withdrawal fails them.
func (p *Proxy) SetSpec(spec NetSpec) {
	p.mu.Lock()
	p.spec = spec
	var sever []net.Conn
	if spec.Partition != PartitionNone {
		for c := range p.conns {
			sever = append(sever, c)
		}
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// Close stops the listener, severs every connection, and waits for the
// piping goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	close(p.done)
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers a connection for partition severing; it reports false
// when the proxy is already closed (caller must close the conn itself).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			conn.Close()
			return
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// sleep waits d, aborting early when the proxy closes. It reports
// whether the full wait completed.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// serve applies one connection's drawn outcome and pipes bytes.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	spec := p.Spec()
	out := p.r.decide(spec)

	switch out.kind {
	case NetRefused:
		return // immediate close: the client sees a reset/EOF
	case NetBlackhole, NetDrop:
		// Swallow everything and never answer. The discard loop returns
		// when the client gives up (its deadline) or the proxy severs the
		// conn (Close or a SetSpec partition flip).
		io.Copy(io.Discard, client)
		return
	case NetReset:
		// Consume the request, then kill the conn before any response
		// byte: the client's read fails mid-exchange. A short grace lets
		// the request actually hit the wire first.
		buf := make([]byte, 4096)
		client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		client.Read(buf)
		return
	case NetDelay:
		if !p.sleep(out.delay) {
			return
		}
	}

	server, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	if !p.track(server) {
		server.Close()
		return
	}
	defer p.untrack(server)
	defer server.Close()

	// Request path: plain pipe. Closing either side unblocks the other
	// copy via read errors.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(server, client)
		// Half-close toward the server so it sees EOF on the request
		// stream but the response path stays open.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Response path: apply truncation and bandwidth shaping.
	switch {
	case out.kind == NetTruncate:
		io.CopyN(client, server, int64(out.truncate))
		// Abrupt close mid-response: the client sees a torn body.
	case spec.BandwidthBps > 0:
		p.throttleCopy(client, server, spec.BandwidthBps)
	default:
		io.Copy(client, server)
	}
}

// throttleCopy pipes server→client capped at bps, re-reading the live
// spec each chunk so weather changes apply to long transfers; it aborts
// when a partition rises or the proxy closes.
func (p *Proxy) throttleCopy(dst io.Writer, src io.Reader, bps int) {
	chunk := bps / 20
	if chunk < 1 {
		chunk = 1
	}
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			spec := p.Spec()
			if spec.Partition != PartitionNone {
				return
			}
			if spec.BandwidthBps > 0 {
				d := time.Duration(float64(n) / float64(spec.BandwidthBps) * float64(time.Second))
				if !p.sleep(d) {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}
