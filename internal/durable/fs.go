// Package durable makes the serving engine crash-safe: job lifecycle
// transitions are appended to a write-ahead journal (length-prefixed,
// CRC32-checksummed, optionally fsynced records) and the full engine
// state — finished jobs, the result cache, the serve-stale table — is
// snapshotted atomically (temp file + rename). On boot, Open loads the
// newest snapshot, replays the journal on top of it, truncates a torn
// tail record in place, and quarantines a corrupt snapshot to
// *.corrupt instead of refusing to start. The package knows nothing
// about HTTP or the engine's types beyond opaque JSON payloads; the
// service layer drives it through Append/Compact and folds the
// recovered State back into its own structures.
//
// All file access goes through the FS seam so tests (and
// internal/faultinject.FaultFS) can inject short writes, ENOSPC, fsync
// failures, read corruption, and mid-write crashes.
package durable

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the journal and snapshot writer need.
type File interface {
	// Write appends len(p) bytes; a short write must return n < len(p)
	// and a non-nil error, exactly like *os.File.
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// FS is the filesystem seam durable writes through. The production
// implementation is OSFS; internal/faultinject.FaultFS wraps any FS to
// inject disk faults.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create truncates or creates name for writing (snapshot temp files).
	Create(name string) (File, error)
	// ReadFile returns the whole contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing a missing file is an error
	// (callers check fs.ErrNotExist where absence is fine).
	Remove(name string) error
	// Truncate cuts name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir flushes directory metadata (rename durability). A no-op
	// on filesystems without directory handles.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by the os package.
func OSFS() FS { return osFS{} }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// notExist reports whether err means the file is absent, tolerating
// wrapped errors from injected filesystems.
func notExist(err error) bool {
	return err != nil && errors.Is(err, fs.ErrNotExist)
}

// join builds a path inside the store directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
