package harness

import (
	"context"
	"testing"

	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

// TestPackedReplayEquivalence proves the packed trace representation is
// behavior-preserving: for one synthesized frame, replaying the packed
// trace through every evaluated policy produces exactly the per-stream
// hit and miss counts of the classic []stream.Access replay. This is the
// seam the whole perf layer rests on — if packing dropped or reordered a
// single record, or mispacked a kind/write bit, a policy would diverge
// here first.
func TestPackedReplayEquivalence(t *testing.T) {
	o := Options{Scale: 0.1}.normalized()
	j := workload.Suite()[0]
	slice := trace.GenerateFrame(j, o.Scale)
	packed := trace.GeneratePacked(j, o.Scale)

	if packed.Len() != len(slice) {
		t.Fatalf("packed.Len() = %d, slice len = %d", packed.Len(), len(slice))
	}
	for i, a := range slice {
		if got := packed.At(i); got != a {
			t.Fatalf("record %d: packed %+v != slice %+v", i, got, a)
		}
	}

	specs := append([]policySpec{specDRRIP(), specNRU()}, fig12Specs()...)
	geom := o.Geometry(paperLLCBytes)
	ctx := context.Background()
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			a := replayStats(ctx, t, spec, geom, stream.Slice(slice))
			b := replayStats(ctx, t, spec, geom, packed)
			if a.stats != b.stats {
				t.Errorf("stats diverge: slice %+v, packed %+v", a.stats, b.stats)
			}
			for _, k := range stream.Kinds() {
				if a.tracker.KindHits(k) != b.tracker.KindHits(k) ||
					a.tracker.KindAccesses(k) != b.tracker.KindAccesses(k) {
					t.Errorf("%s: slice %d/%d hits/accesses, packed %d/%d", k,
						a.tracker.KindHits(k), a.tracker.KindAccesses(k),
						b.tracker.KindHits(k), b.tracker.KindAccesses(k))
				}
			}
		})
	}

	// Belady consumes the trace twice (next-use preprocessing + replay),
	// so it exercises both NextUse paths.
	t.Run("Belady", func(t *testing.T) {
		a := beladyStats(ctx, t, geom, slice)
		b, err := runBelady(ctx, packed, geom, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.stats != b.stats {
			t.Errorf("stats diverge: slice %+v, packed %+v", a.stats, b.stats)
		}
	})
}

// replayStats replays src through one policy and returns the result.
func replayStats(ctx context.Context, t *testing.T, spec policySpec, geom cachesim.Geometry, src stream.Source) frameResult {
	t.Helper()
	c := cachesim.New(geom, spec.make())
	if spec.ucd {
		c.SetBypass(stream.Display, true)
	}
	tk := attachTracker(c)
	if err := cachesim.ReplaySource(ctx, c, src, 0); err != nil {
		t.Fatal(err)
	}
	return frameResult{stats: c.Stats, tracker: tk}
}

// beladyStats is the classic slice-based Belady replay, kept inline so
// the test compares against the pre-refactor formulation.
func beladyStats(ctx context.Context, t *testing.T, geom cachesim.Geometry, tr []stream.Access) frameResult {
	t.Helper()
	next := belady.NextUse(tr, blockShift(geom.BlockSize))
	c := cachesim.New(geom, belady.NewOPT(next))
	tk := attachTracker(c)
	if err := cachesim.Replay(ctx, c, tr, 0); err != nil {
		t.Fatal(err)
	}
	return frameResult{stats: c.Stats, tracker: tk}
}

// TestTraceRoundTrip checks Pack/Materialize and the packed disk format
// against the slice-based container format byte-for-byte.
func TestTraceRoundTrip(t *testing.T) {
	o := Options{Scale: 0.05}.normalized()
	slice := trace.GenerateFrame(workload.Suite()[1], o.Scale)
	packed := stream.Pack(slice)
	back := packed.Materialize()
	if len(back) != len(slice) {
		t.Fatalf("materialized %d records, want %d", len(back), len(slice))
	}
	for i := range slice {
		if back[i] != slice[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], slice[i])
		}
	}
}
