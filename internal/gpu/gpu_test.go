package gpu

import (
	"testing"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

func smallGeom() cachesim.Geometry {
	return cachesim.Geometry{SizeBytes: 64 << 10, Ways: 16, BlockSize: 64}
}

func smallConfig() Config {
	cfg := DefaultConfig(smallGeom())
	cfg.Cores = 4
	cfg.ThreadsPerCore = 4
	cfg.Samplers = 2
	return cfg
}

// mkTrace builds a trace of n accesses striding over blocks.
func mkTrace(n, distinct int, kind stream.Kind) []stream.Access {
	tr := make([]stream.Access, n)
	for i := range tr {
		tr[i] = stream.Access{Addr: uint64(i%distinct) * 64, Kind: kind, Seq: int64(i)}
	}
	return tr
}

func TestSimulateProcessesAllAccesses(t *testing.T) {
	tr := mkTrace(5000, 700, stream.Texture)
	r := Simulate(tr, smallConfig(), policy.NewDRRIP(2))
	if r.Accesses != int64(len(tr)) {
		t.Errorf("processed %d accesses, want %d", r.Accesses, len(tr))
	}
	if r.LLC.Accesses != int64(len(tr)) {
		t.Errorf("LLC saw %d accesses, want %d", r.LLC.Accesses, len(tr))
	}
	if r.Cycles <= 0 || r.FPS <= 0 {
		t.Errorf("cycles=%d fps=%v", r.Cycles, r.FPS)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Simulate(nil, smallConfig(), policy.NewDRRIP(2))
	if r.Accesses != 0 {
		t.Errorf("accesses = %d", r.Accesses)
	}
}

func TestShortTraceFewerChunksThanThreads(t *testing.T) {
	tr := mkTrace(10, 10, stream.Z)
	r := Simulate(tr, smallConfig(), policy.NewDRRIP(2))
	if r.Accesses != 10 {
		t.Errorf("processed %d of 10", r.Accesses)
	}
}

func TestDeterminism(t *testing.T) {
	tr := mkTrace(20000, 3000, stream.RT)
	a := Simulate(tr, smallConfig(), policy.NewDRRIP(2))
	b := Simulate(tr, smallConfig(), policy.NewDRRIP(2))
	if a.Cycles != b.Cycles || a.LLC.Misses != b.LLC.Misses {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/misses", a.Cycles, a.LLC.Misses, b.Cycles, b.LLC.Misses)
	}
}

func TestMoreMissesMoreCycles(t *testing.T) {
	// A working set that fits vs one that thrashes: the thrashing run
	// must take longer.
	fits := mkTrace(30000, 256, stream.Texture)    // 16 KB working set
	thrash := mkTrace(30000, 8192, stream.Texture) // 512 KB working set in a 64 KB LLC
	rf := Simulate(fits, smallConfig(), policy.NewLRU())
	rt := Simulate(thrash, smallConfig(), policy.NewLRU())
	if rf.LLC.Misses >= rt.LLC.Misses {
		t.Fatalf("setup broken: fits misses %d >= thrash misses %d", rf.LLC.Misses, rt.LLC.Misses)
	}
	if rf.Cycles >= rt.Cycles {
		t.Errorf("fewer misses should be faster: %d vs %d cycles", rf.Cycles, rt.Cycles)
	}
	if rt.DRAM.Reads == 0 {
		t.Error("thrash run produced no DRAM reads")
	}
}

func TestUncachedDisplayBypasses(t *testing.T) {
	tr := mkTrace(5000, 500, stream.Display)
	cfg := smallConfig()
	cfg.UncachedDisplay = true
	r := Simulate(tr, cfg, policy.NewDRRIP(2))
	if r.LLC.Bypasses != r.LLC.Misses {
		t.Errorf("display accesses should all bypass: %d bypasses, %d misses", r.LLC.Bypasses, r.LLC.Misses)
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	// Writes that thrash generate writebacks, which must appear as DRAM
	// writes.
	tr := make([]stream.Access, 20000)
	for i := range tr {
		tr[i] = stream.Access{Addr: uint64(i%4096) * 64, Kind: stream.RT, Write: true}
	}
	r := Simulate(tr, smallConfig(), policy.NewLRU())
	if r.DRAM.Writes == 0 {
		t.Error("no writebacks reached DRAM")
	}
}

func TestFewerThreadsSlower(t *testing.T) {
	tr := mkTrace(40000, 6000, stream.Texture)
	big := smallConfig()
	small := smallConfig()
	small.Cores = 1
	rb := Simulate(tr, big, policy.NewDRRIP(2))
	rs := Simulate(tr, small, policy.NewDRRIP(2))
	if rs.Cycles <= rb.Cycles {
		t.Errorf("1-core GPU should be slower: %d vs %d", rs.Cycles, rb.Cycles)
	}
}

func TestComputeGapDefaultsApplied(t *testing.T) {
	cfg := smallConfig()
	cfg.ComputeGap = [stream.NumKinds]int{} // all zero -> defaults
	tr := mkTrace(1000, 100, stream.Vertex)
	r := Simulate(tr, cfg, policy.NewDRRIP(2))
	if r.Cycles < int64(DefaultComputeGap[stream.Vertex]) {
		t.Error("compute gaps apparently not applied")
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	// All-store trace: threads never wait on DRAM, so the run should be
	// much faster than an all-load trace with the same miss profile.
	loads := mkTrace(20000, 8192, stream.Texture)
	stores := make([]stream.Access, len(loads))
	copy(stores, loads)
	for i := range stores {
		stores[i].Write = true
		stores[i].Kind = stream.RT // avoid sampler path for a clean compare
	}
	loadsRT := make([]stream.Access, len(loads))
	copy(loadsRT, loads)
	for i := range loadsRT {
		loadsRT[i].Kind = stream.RT
	}
	rl := Simulate(loadsRT, smallConfig(), policy.NewLRU())
	rs := Simulate(stores, smallConfig(), policy.NewLRU())
	if rs.Cycles >= rl.Cycles {
		t.Errorf("store trace (%d cycles) should be faster than load trace (%d)", rs.Cycles, rl.Cycles)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero cores")
		}
	}()
	cfg := smallConfig()
	cfg.Cores = 0
	Simulate(mkTrace(10, 10, stream.Z), cfg, policy.NewLRU())
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(smallGeom())
	if cfg.Cores != 96 || cfg.ThreadsPerCore != 8 || cfg.Samplers != 12 {
		t.Errorf("shader array %+v", cfg)
	}
	if cfg.ClockGHz != 1.6 || cfg.LLCLatency != 20 || cfg.LLCBanks != 4 {
		t.Errorf("clocks/LLC %+v", cfg)
	}
	if cfg.Cores*cfg.ThreadsPerCore != 768 {
		t.Error("thread contexts != 768")
	}
}

func TestMSHRMergesDuplicateMisses(t *testing.T) {
	// Many threads missing on the same few blocks: MSHRs must merge the
	// concurrent fetches so DRAM reads stay well below the thread count.
	tr := make([]stream.Access, 4096)
	for i := range tr {
		tr[i] = stream.Access{Addr: uint64(i%8) * 64, Kind: stream.Texture}
	}
	cfg := smallConfig()
	r := Simulate(tr, cfg, policy.NewLRU())
	// 8 distinct blocks: the LLC misses at most a handful of times and
	// DRAM sees no more reads than LLC misses.
	if r.DRAM.Reads > r.LLC.Misses {
		t.Errorf("DRAM reads %d exceed LLC misses %d (MSHR merge broken)", r.DRAM.Reads, r.LLC.Misses)
	}
	if r.LLC.Misses > 16 {
		t.Errorf("LLC misses = %d for an 8-block trace", r.LLC.Misses)
	}
}

func TestSecondaryMissWaitsForFill(t *testing.T) {
	// Two threads touching the same cold block: the second (a hit on an
	// in-flight line) must not complete before DRAM latency allows.
	tr := []stream.Access{
		{Addr: 0, Kind: stream.Z},
		{Addr: 0, Kind: stream.Z},
	}
	cfg := smallConfig()
	cfg.ChunkSize = 1 // force the two accesses onto different threads
	r := Simulate(tr, cfg, policy.NewLRU())
	// The frame cannot finish before one DRAM round trip.
	if r.Cycles < 60 {
		t.Errorf("frame finished in %d cycles, before DRAM could respond", r.Cycles)
	}
}
