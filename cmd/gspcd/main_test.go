package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	return parseFlags(args, io.Discard)
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.engineConfig()
	if cfg.QueueDepth != 64 || cfg.CacheEntries != 128 || cfg.CachePolicy != "lru" {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.DataDir != "" || !cfg.Fsync || cfg.SnapshotEvery != 256 {
		t.Fatalf("persistence defaults: DataDir=%q Fsync=%v SnapshotEvery=%d",
			cfg.DataDir, cfg.Fsync, cfg.SnapshotEvery)
	}
	if o.drain != 5*time.Minute {
		t.Fatalf("drain default: %s", o.drain)
	}
}

func TestParseFlagsPersistence(t *testing.T) {
	o, err := parse(t, "-data-dir", "/tmp/gspc-data", "-fsync=false", "-snapshot-every", "32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.engineConfig()
	if cfg.DataDir != "/tmp/gspc-data" || cfg.Fsync || cfg.SnapshotEvery != 32 {
		t.Fatalf("persistence flags: DataDir=%q Fsync=%v SnapshotEvery=%d",
			cfg.DataDir, cfg.Fsync, cfg.SnapshotEvery)
	}
}

// TestParseFlagsRejects covers the fail-fast validations: each bad
// command line must be refused at parse time (usage error, exit 2)
// rather than surfacing later as a misconfigured engine.
func TestParseFlagsRejects(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bad policy", []string{"-cache-policy", "belady"}, "cache-policy"},
		{"negative queue", []string{"-queue", "-1"}, "-queue"},
		{"zero queue", []string{"-queue", "0"}, "-queue"},
		{"negative cache", []string{"-cache-entries", "-5"}, "-cache-entries"},
		{"negative workers", []string{"-workers", "-2"}, "-workers"},
		{"negative sim workers", []string{"-sim-workers", "-2"}, "-sim-workers"},
		{"zero snapshot cadence", []string{"-data-dir", "d", "-snapshot-every", "0"}, "-snapshot-every"},
		{"negative snapshot cadence", []string{"-data-dir", "d", "-snapshot-every", "-3"}, "-snapshot-every"},
		{"fsync without data dir", []string{"-fsync=false"}, "requires -data-dir"},
		{"snapshot-every without data dir", []string{"-snapshot-every", "8"}, "requires -data-dir"},
		{"negative drain", []string{"-drain-timeout", "-1s"}, "-drain-timeout"},
		{"bad retries", []string{"-max-retries", "-2"}, "-max-retries"},
		{"bad breaker", []string{"-breaker-threshold", "-2"}, "-breaker-threshold"},
		{"negative trace cache", []string{"-trace-cache-mb", "-1"}, "-trace-cache-mb"},
		{"bad log format", []string{"-log-format", "xml"}, "-log-format"},
		{"zero trace-every", []string{"-trace-every", "0"}, "-trace-every"},
		{"bad trace-every", []string{"-trace-every", "-3"}, "-trace-every"},
		{"negative flight events", []string{"-flight-events", "-1"}, "-flight-events"},
		{"stray argument", []string{"serve"}, "unexpected argument"},
		{"unknown flag", []string{"-no-such-flag"}, "no-such-flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parse(t, tc.args...); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestParseFlagsValidPolicies accepts every policy the service
// actually registers, so the validation can't drift behind the list.
func TestParseFlagsValidPolicies(t *testing.T) {
	for _, p := range []string{"lru", "nru", "drrip"} {
		if _, err := parse(t, "-cache-policy", p); err != nil {
			t.Fatalf("policy %s rejected: %v", p, err)
		}
	}
}

func TestParseFlagsObservability(t *testing.T) {
	o, err := parse(t, "-log-format", "json", "-trace-every", "10",
		"-flight-events", "64", "-debug-addr", "127.0.0.1:6060", "-version")
	if err != nil {
		t.Fatal(err)
	}
	if o.logFormat != "json" || o.debugAddr != "127.0.0.1:6060" || !o.version {
		t.Fatalf("observability flags: %+v", o)
	}
	cfg := o.engineConfig()
	if cfg.TraceEvery != 10 || cfg.FlightEvents != 64 {
		t.Fatalf("engine config: TraceEvery=%d FlightEvents=%d, want 10/64", cfg.TraceEvery, cfg.FlightEvents)
	}
	// Defaults: text logs, trace every job, tracing disablable with -1.
	o, err = parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if o.logFormat != "text" || o.traceEvery != 1 || o.debugAddr != "" || o.version {
		t.Fatalf("observability defaults: %+v", o)
	}
	if o, err = parse(t, "-trace-every", "-1"); err != nil {
		t.Fatalf("-trace-every -1 (disable) rejected: %v", err)
	} else if o.engineConfig().TraceEvery != -1 {
		t.Fatalf("disabled tracing not forwarded: %d", o.engineConfig().TraceEvery)
	}
}
