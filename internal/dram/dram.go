// Package dram models the GPU's GDDR/DDR3 memory system at the level the
// paper's performance results depend on: per-channel command/data bus
// occupancy, per-bank row-buffer state, and the tCAS/tRCD/tRP timing of
// the configured speed grade. The paper evaluates a dual-channel
// eight-way banked DDR3-1600 15-15-15 system and, in the sensitivity
// study (Figure 17), DDR3-1867 10-10-10.
package dram

import "fmt"

// Timing describes a DDR3 speed grade. Latencies are in memory (bus
// command) clock cycles.
type Timing struct {
	Name   string
	BusMHz int // command/data bus clock (DDR3-1600 -> 800 MHz)
	CAS    int // column access strobe latency
	RCD    int // row-to-column delay
	RP     int // row precharge
	Burst  int // burst length in beats (8 for DDR3)
}

// DDR3_1600 returns the paper's baseline memory timing.
func DDR3_1600() Timing {
	return Timing{Name: "DDR3-1600 15-15-15", BusMHz: 800, CAS: 15, RCD: 15, RP: 15, Burst: 8}
}

// DDR3_1867 returns the faster memory of the Figure 17 sensitivity study.
func DDR3_1867() Timing {
	return Timing{Name: "DDR3-1867 10-10-10", BusMHz: 933, CAS: 10, RCD: 10, RP: 10, Burst: 8}
}

// Config describes the memory system organization.
type Config struct {
	Timing          Timing
	Channels        int // 2 in the paper
	BanksPerChannel int // 8 in the paper
	RowBytes        int // row buffer size per bank
	// GPUClockGHz converts memory timing into GPU cycles; all Memory
	// methods speak GPU cycles.
	GPUClockGHz float64
}

// DefaultConfig returns the paper's dual-channel DDR3-1600 system paired
// with the 1.6 GHz GPU clock.
func DefaultConfig() Config {
	return Config{
		Timing:          DDR3_1600(),
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8 << 10,
		GPUClockGHz:     1.6,
	}
}

// Stats aggregates request outcomes.
type Stats struct {
	Reads, Writes int64
	RowHits       int64
	RowMisses     int64 // closed row (tRCD+tCAS)
	RowConflicts  int64 // open different row (tRP+tRCD+tCAS)
	// BusBusyCycles is the total data-bus occupancy in GPU cycles across
	// channels; divide by channels and elapsed time for utilization.
	BusBusyCycles int64
}

type bank struct {
	openRow   int64
	hasRow    bool
	busyUntil int64
}

type channel struct {
	banks    []bank
	busUntil int64
}

// Memory is the DRAM timing model. It is not safe for concurrent use;
// the GPU simulator drives it from a single event loop.
type Memory struct {
	cfg       Config
	chans     []channel
	gpuPerMem float64 // GPU cycles per memory cycle
	burstGPU  int64   // data transfer time per 64B block, GPU cycles

	Stats Stats
}

// New constructs a memory system. It panics on nonsensical configuration
// (programming error).
func New(cfg Config) *Memory {
	if cfg.Channels < 1 || cfg.BanksPerChannel < 1 || cfg.RowBytes < 64 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	m := &Memory{cfg: cfg}
	m.chans = make([]channel, cfg.Channels)
	for i := range m.chans {
		m.chans[i].banks = make([]bank, cfg.BanksPerChannel)
	}
	m.gpuPerMem = cfg.GPUClockGHz * 1000 / float64(cfg.Timing.BusMHz)
	// A 64-byte block moves in Burst beats on an 8-byte bus = Burst/2
	// memory clocks (DDR transfers two beats per clock).
	m.burstGPU = m.toGPU(cfg.Timing.Burst / 2)
	return m
}

// Config returns the active configuration.
func (m *Memory) Config() Config { return m.cfg }

func (m *Memory) toGPU(memCycles int) int64 {
	return int64(float64(memCycles)*m.gpuPerMem + 0.5)
}

// route maps a block address to its channel, bank, and row. Blocks
// interleave across channels at 64-byte granularity and across banks at
// row granularity, spreading streams over the parallel resources.
func (m *Memory) route(addr uint64) (ch *channel, bk *bank, row int64) {
	block := addr >> 6
	ci := int(block % uint64(m.cfg.Channels))
	ch = &m.chans[ci]
	rowID := addr / uint64(m.cfg.RowBytes) / uint64(m.cfg.Channels)
	bi := int(rowID % uint64(m.cfg.BanksPerChannel))
	bk = &ch.banks[bi]
	return ch, bk, int64(rowID / uint64(m.cfg.BanksPerChannel))
}

// Access services one 64-byte block transfer issued at GPU cycle `now`
// and returns the completion time in GPU cycles. Writes occupy the bank
// and bus like reads (write latency is hidden from the issuing unit by
// the LLC's writeback queue, but the bandwidth cost is real).
func (m *Memory) Access(addr uint64, now int64, write bool) int64 {
	ch, bk, row := m.route(addr)
	if write {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}

	start := now
	if bk.busyUntil > start {
		start = bk.busyUntil
	}

	var latMem int
	switch {
	case bk.hasRow && bk.openRow == row:
		m.Stats.RowHits++
		latMem = m.cfg.Timing.CAS
	case !bk.hasRow:
		m.Stats.RowMisses++
		latMem = m.cfg.Timing.RCD + m.cfg.Timing.CAS
	default:
		m.Stats.RowConflicts++
		latMem = m.cfg.Timing.RP + m.cfg.Timing.RCD + m.cfg.Timing.CAS
	}
	bk.hasRow = true
	bk.openRow = row

	dataStart := start + m.toGPU(latMem)
	if ch.busUntil > dataStart {
		dataStart = ch.busUntil
	}
	done := dataStart + m.burstGPU
	ch.busUntil = done
	// The bank can accept a new column command once the data transfer
	// completes (a mild simplification of tCCD/tRTP interactions).
	bk.busyUntil = done
	m.Stats.BusBusyCycles += m.burstGPU
	return done
}

// PeakBandwidthGBps returns the theoretical peak across channels.
func (m *Memory) PeakBandwidthGBps() float64 {
	beats := float64(m.cfg.Timing.BusMHz) * 2e6 // DDR beats/sec
	return beats * 8 * float64(m.cfg.Channels) / 1e9
}

// Reset clears bank state and statistics.
func (m *Memory) Reset() {
	for i := range m.chans {
		m.chans[i] = channel{banks: make([]bank, m.cfg.BanksPerChannel)}
	}
	m.Stats = Stats{}
}
