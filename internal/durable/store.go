package durable

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
)

// On-disk file names inside the store directory.
const (
	journalName  = "journal.wal"
	snapshotName = "state.snap"
)

// RecordType tags one journal record.
type RecordType string

// Journal record types: the job lifecycle transitions the engine
// appends. Submit carries the request, Done the result body, Fail the
// error classification; Start and Cancel are markers.
const (
	RecSubmit RecordType = "submit"
	RecStart  RecordType = "start"
	RecDone   RecordType = "done"
	RecFail   RecordType = "fail"
	RecCancel RecordType = "cancel"
)

// Record is one journaled lifecycle transition. Data is opaque to this
// package: the service layer stores its request JSON on submit and the
// exact result body on done, and gets the same bytes back at recovery.
type Record struct {
	Type RecordType `json:"t"`
	ID   string     `json:"id"`
	// Seq is the numeric job sequence (engine id counter) on submit, so
	// recovery can restore the counter past every allocated id.
	Seq int64 `json:"seq,omitempty"`
	// Key is the request's cache key on submit.
	Key string `json:"key,omitempty"`
	// Experiment names the experiment on submit (serve-stale table).
	Experiment string `json:"exp,omitempty"`
	// Data: request JSON (submit) or result body (done).
	Data json.RawMessage `json:"data,omitempty"`
	// Error and Category classify a failure (fail records).
	Error    string `json:"error,omitempty"`
	Category string `json:"category,omitempty"`
}

// Job lifecycle states as stored in State. They mirror the service
// layer's Status strings; durable only distinguishes "terminal" from
// "queued"/"running" during reduction.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobState is one job's recovered lifecycle.
type JobState struct {
	ID         string          `json:"id"`
	Seq        int64           `json:"seq"`
	Key        string          `json:"key"`
	Experiment string          `json:"exp"`
	Status     string          `json:"status"`
	Request    json.RawMessage `json:"request,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	Category   string          `json:"category,omitempty"`
}

// CacheEntry is one result-cache entry: the exact body bytes of the
// run that computed it, so replays after a restart stay byte-identical.
type CacheEntry struct {
	Key   string          `json:"key"`
	RunID string          `json:"run_id"`
	Body  json.RawMessage `json:"body"`
}

// State is the reduced engine state a snapshot stores and recovery
// returns: every known job, the result cache, and the per-experiment
// last-good table backing -serve-stale.
type State struct {
	// SchemaVersion versions the engine-level payloads (requests,
	// result bodies) inside the state; see harness.ResultSchemaVersion.
	SchemaVersion int                   `json:"schema_version"`
	NextID        int64                 `json:"next_id"`
	Jobs          map[string]*JobState  `json:"jobs,omitempty"`
	Cache         []CacheEntry          `json:"cache,omitempty"`
	LastGood      map[string]CacheEntry `json:"last_good,omitempty"`
}

// NewState returns an empty state at the given payload schema version.
func NewState(schemaVersion int) *State {
	return &State{
		SchemaVersion: schemaVersion,
		Jobs:          map[string]*JobState{},
		LastGood:      map[string]CacheEntry{},
	}
}

// Apply folds one journal record into the state. It is idempotent and
// tolerant: a record for an unknown job id creates the job (the
// snapshot it belonged to may have been compacted away mid-crash), and
// a terminal record repeated after compaction overwrites with the same
// values. Records never fail to apply — recovery must always converge.
func (s *State) Apply(r Record) {
	if s.Jobs == nil {
		s.Jobs = map[string]*JobState{}
	}
	if s.LastGood == nil {
		s.LastGood = map[string]CacheEntry{}
	}
	j := s.Jobs[r.ID]
	if j == nil {
		j = &JobState{ID: r.ID, Status: JobQueued}
		s.Jobs[r.ID] = j
	}
	switch r.Type {
	case RecSubmit:
		j.Seq = r.Seq
		j.Key = r.Key
		j.Experiment = r.Experiment
		j.Request = r.Data
		if j.Status == "" {
			j.Status = JobQueued
		}
		if r.Seq >= s.NextID {
			s.NextID = r.Seq
		}
	case RecStart:
		if j.Status == JobQueued {
			j.Status = JobRunning
		}
	case RecDone:
		j.Status = JobDone
		j.Result = r.Data
		j.Error, j.Category = "", ""
		s.putCache(CacheEntry{Key: j.Key, RunID: j.ID, Body: r.Data})
		if j.Experiment != "" {
			s.LastGood[j.Experiment] = CacheEntry{Key: j.Key, RunID: j.ID, Body: r.Data}
		}
	case RecFail:
		j.Status = JobFailed
		j.Error, j.Category = r.Error, r.Category
	case RecCancel:
		j.Status = JobCancelled
		j.Error, j.Category = r.Error, r.Category
	}
}

// putCache inserts or replaces a cache entry by key.
func (s *State) putCache(e CacheEntry) {
	if e.Key == "" {
		return
	}
	for i := range s.Cache {
		if s.Cache[i].Key == e.Key {
			s.Cache[i] = e
			return
		}
	}
	s.Cache = append(s.Cache, e)
}

// JobsBySeq returns the jobs ordered by submission sequence, so the
// engine restores queues in their original order.
func (s *State) JobsBySeq() []*JobState {
	out := make([]*JobState, 0, len(s.Jobs))
	for _, j := range s.Jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Options configures a Store.
type Options struct {
	// FS overrides the filesystem (fault injection). Default: OSFS().
	FS FS
	// Fsync syncs the journal after every append. Off, a crash can lose
	// the last few records (never corrupt the journal — framing still
	// detects and truncates the tear).
	Fsync bool
	// SnapshotEvery triggers compaction after this many journal
	// appends. 0 means the default (256); negative disables automatic
	// compaction (explicit Compact calls still work).
	SnapshotEvery int
	// SchemaVersion stamps snapshots; a loaded snapshot with a
	// different version is discarded (quarantined) rather than trusted.
	SchemaVersion int
	// Logf sinks recovery and degradation notices. Default log.Printf.
	Logf func(format string, args ...any)
}

// Stats are the store's observability counters, exposed at /metricsz.
type Stats struct {
	JournalBytes    int64 `json:"journal_bytes"`
	JournalRecords  int64 `json:"journal_records"`
	AppendErrors    int64 `json:"append_errors"`
	Compactions     int64 `json:"compactions"`
	CompactErrors   int64 `json:"compact_errors"`
	ReplayedRecords int64 `json:"replayed_records"`
	// TornTailBytes counts journal bytes truncated at recovery because
	// the final record was torn by a crash mid-append.
	TornTailBytes int64 `json:"torn_tail_bytes"`
	// SnapshotLoaded reports whether boot restored from a snapshot.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotQuarantined counts corrupt snapshots moved to *.corrupt.
	SnapshotQuarantined int64 `json:"snapshot_quarantined"`
}

// Store is a write-ahead journal plus snapshot directory. All methods
// are safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu           sync.Mutex
	j            *journal
	appendsSince int
	stats        Stats
}

// Open recovers the store at dir, creating it on first use. It loads
// the snapshot (quarantining it to state.snap.corrupt and starting
// empty if it fails verification or carries a different schema
// version), replays the journal on top, truncates a torn tail in
// place, and returns the recovered state. Open refuses to start only
// when the directory itself is unusable; data corruption never blocks
// boot.
func Open(dir string, opt Options) (*Store, *State, error) {
	if opt.FS == nil {
		opt.FS = OSFS()
	}
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = 256
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	fsys := opt.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	s := &Store{dir: dir, opt: opt}

	// 1. Snapshot: verified or quarantined, never half-trusted.
	st := NewState(opt.SchemaVersion)
	snapPath := join(dir, snapshotName)
	if data, err := fsys.ReadFile(snapPath); err == nil {
		loaded, derr := decodeSnapshot(data)
		if derr == nil && loaded.SchemaVersion != opt.SchemaVersion {
			derr = fmt.Errorf("durable: snapshot schema version %d (want %d)",
				loaded.SchemaVersion, opt.SchemaVersion)
		}
		if derr != nil {
			s.quarantine(snapPath, derr)
		} else {
			st = loaded
			if st.Jobs == nil {
				st.Jobs = map[string]*JobState{}
			}
			if st.LastGood == nil {
				st.LastGood = map[string]CacheEntry{}
			}
			s.stats.SnapshotLoaded = true
		}
	} else if !notExist(err) {
		// Unreadable (not merely absent): quarantine and start empty.
		s.quarantine(snapPath, err)
	}

	// 2. Journal: replay the valid prefix, truncate the torn tail.
	jPath := join(dir, journalName)
	var raw []byte
	if data, err := fsys.ReadFile(jPath); err == nil {
		raw = data
	} else if !notExist(err) {
		return nil, nil, fmt.Errorf("durable: read journal: %w", err)
	}
	payloads, goodSize, torn := scanJournal(raw)
	if torn {
		s.stats.TornTailBytes = int64(len(raw)) - goodSize
		s.opt.Logf("durable: journal %s: truncating %d torn tail byte(s) at offset %d",
			jPath, s.stats.TornTailBytes, goodSize)
		if err := fsys.Truncate(jPath, goodSize); err != nil {
			return nil, nil, fmt.Errorf("durable: truncate torn journal tail: %w", err)
		}
	}
	for _, p := range payloads {
		var r Record
		if err := json.Unmarshal(p, &r); err != nil {
			// A checksummed record that is not valid JSON was written by
			// a different build; skip it rather than refuse to start.
			s.opt.Logf("durable: journal %s: skipping undecodable record: %v", jPath, err)
			continue
		}
		st.Apply(r)
		s.stats.ReplayedRecords++
	}

	j, err := openJournal(fsys, jPath, opt.Fsync, goodSize)
	if err != nil {
		return nil, nil, err
	}
	s.j = j
	s.stats.JournalBytes = goodSize
	return s, st, nil
}

// quarantine sidelines a corrupt file to <path>.corrupt for
// post-mortem. Quarantining is best-effort: if even the rename fails,
// the file is left in place and recovery proceeds empty.
func (s *Store) quarantine(path string, cause error) {
	s.stats.SnapshotQuarantined++
	s.opt.Logf("durable: quarantining %s -> %s.corrupt: %v", path, path, cause)
	if err := s.opt.FS.Rename(path, path+".corrupt"); err != nil {
		s.opt.Logf("durable: quarantine rename failed (starting empty anyway): %v", err)
	}
}

// Append journals one record. Errors are returned for accounting but
// the store remains usable: the journal repairs its tail on the next
// append, and a later Compact re-establishes a full disk image.
func (s *Store) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil {
		return fmt.Errorf("durable: store closed")
	}
	if err := s.j.append(payload); err != nil {
		s.stats.AppendErrors++
		return err
	}
	s.stats.JournalRecords++
	s.stats.JournalBytes = s.j.size
	s.appendsSince++
	return nil
}

// CompactionDue reports whether enough records have accumulated since
// the last snapshot that the caller should Compact.
func (s *Store) CompactionDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opt.SnapshotEvery > 0 && s.appendsSince >= s.opt.SnapshotEvery
}

// Compact snapshots the given state atomically and then resets the
// journal: after a successful compaction the snapshot alone
// reconstructs the state and the journal is empty. A crash between the
// snapshot rename and the journal reset leaves old records in the
// journal; replaying them over the snapshot is harmless because Apply
// is idempotent.
func (s *Store) Compact(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil {
		return fmt.Errorf("durable: store closed")
	}
	if st.SchemaVersion == 0 {
		st.SchemaVersion = s.opt.SchemaVersion
	}
	if err := writeSnapshot(s.opt.FS, s.dir, join(s.dir, snapshotName), st); err != nil {
		s.stats.CompactErrors++
		return err
	}
	// Snapshot is durable; the journal's records are now redundant.
	s.j.close()
	if err := s.opt.FS.Truncate(join(s.dir, journalName), 0); err != nil {
		s.stats.CompactErrors++
		// The snapshot is still valid and replay is idempotent: keep
		// appending after the stale records rather than failing hard.
		s.opt.Logf("durable: journal reset after snapshot failed (stale records remain, replay is idempotent): %v", err)
	} else {
		s.j.size = 0
	}
	j, err := openJournal(s.opt.FS, join(s.dir, journalName), s.opt.Fsync, s.j.size)
	if err != nil {
		s.stats.CompactErrors++
		return err
	}
	s.j = j
	s.stats.JournalBytes = j.size
	s.stats.Compactions++
	s.appendsSince = 0
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the journal handle. Further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil {
		return nil
	}
	err := s.j.close()
	s.j = nil
	return err
}
