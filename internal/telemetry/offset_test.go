package telemetry

import (
	"testing"
	"time"
)

// fakeExchange synthesizes the four timestamps of one request/response
// given a member clock skew and one-way latencies. The member observes
// coordinator time + skew.
func fakeExchange(base time.Time, skew, outLat, backLat, remoteWork time.Duration) (t0, t1, t2, t3 time.Time) {
	t0 = base
	t1 = base.Add(outLat).Add(skew)
	t2 = t1.Add(remoteWork)
	t3 = base.Add(outLat).Add(remoteWork).Add(backLat)
	return
}

func TestOffsetEstimatorRecoversSkew(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := 250 * time.Millisecond // member clock runs fast
	o := NewOffsetEstimator(8)
	// Symmetric latency: the estimate should recover the skew exactly.
	for i := 0; i < 5; i++ {
		t0, t1, t2, t3 := fakeExchange(base.Add(time.Duration(i)*time.Second), skew,
			2*time.Millisecond, 2*time.Millisecond, time.Millisecond)
		o.Update(t0, t1, t2, t3)
	}
	est := o.Estimate()
	if est.Samples != 5 {
		t.Fatalf("samples = %d, want 5", est.Samples)
	}
	if est.Offset != skew {
		t.Errorf("offset = %s, want %s (symmetric path recovers skew exactly)", est.Offset, skew)
	}
	if est.Delay != 4*time.Millisecond {
		t.Errorf("delay = %s, want 4ms", est.Delay)
	}
}

func TestOffsetEstimatorNegativeSkew(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := -3 * time.Second // member clock runs behind
	o := NewOffsetEstimator(0)
	t0, t1, t2, t3 := fakeExchange(base, skew, time.Millisecond, time.Millisecond, 500*time.Microsecond)
	o.Update(t0, t1, t2, t3)
	if est := o.Estimate(); est.Offset != skew {
		t.Errorf("offset = %s, want %s", est.Offset, skew)
	}
}

// TestOffsetEstimatorAsymmetricLatencyBound checks the NTP error model:
// with asymmetric one-way latencies the estimate is off by the
// asymmetry/2, which is always within ±delay/2.
func TestOffsetEstimatorAsymmetricLatencyBound(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := 100 * time.Millisecond
	out, back := 9*time.Millisecond, 1*time.Millisecond // heavy asymmetry
	o := NewOffsetEstimator(8)
	t0, t1, t2, t3 := fakeExchange(base, skew, out, back, time.Millisecond)
	o.Update(t0, t1, t2, t3)
	est := o.Estimate()
	err := est.Offset - skew
	if err < 0 {
		err = -err
	}
	if half := est.Delay / 2; err > half {
		t.Errorf("offset error %s exceeds delay/2 = %s", err, half)
	}
	// Exact expected error: (out-back)/2 = 4ms.
	if want := skew + (out-back)/2; est.Offset != want {
		t.Errorf("offset = %s, want %s", est.Offset, want)
	}
}

// TestOffsetEstimatorPrefersLowDelay checks the smoothing rule: the
// minimum-delay sample in the window wins, so one quiet-network
// exchange overrides many congested (and therefore badly-bounded) ones.
func TestOffsetEstimatorPrefersLowDelay(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := 50 * time.Millisecond
	o := NewOffsetEstimator(8)
	// Congested, asymmetric exchanges with large error.
	for i := 0; i < 4; i++ {
		t0, t1, t2, t3 := fakeExchange(base.Add(time.Duration(i)*time.Second), skew,
			40*time.Millisecond, 2*time.Millisecond, time.Millisecond)
		o.Update(t0, t1, t2, t3)
	}
	// One clean symmetric exchange.
	t0, t1, t2, t3 := fakeExchange(base.Add(10*time.Second), skew,
		time.Millisecond, time.Millisecond, time.Millisecond)
	o.Update(t0, t1, t2, t3)
	if est := o.Estimate(); est.Offset != skew {
		t.Errorf("offset = %s, want %s (min-delay sample should win)", est.Offset, skew)
	}
}

// TestOffsetEstimatorWindowSlides checks that old samples age out: after
// the window turns over, a step change in skew is fully adopted.
func TestOffsetEstimatorWindowSlides(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	o := NewOffsetEstimator(4)
	for i := 0; i < 4; i++ {
		t0, t1, t2, t3 := fakeExchange(base.Add(time.Duration(i)*time.Second), 10*time.Millisecond,
			time.Millisecond, time.Millisecond, time.Millisecond)
		o.Update(t0, t1, t2, t3)
	}
	// Clock steps: fill the whole window with the new skew.
	for i := 4; i < 8; i++ {
		t0, t1, t2, t3 := fakeExchange(base.Add(time.Duration(i)*time.Second), 90*time.Millisecond,
			time.Millisecond, time.Millisecond, time.Millisecond)
		o.Update(t0, t1, t2, t3)
	}
	if est := o.Estimate(); est.Offset != 90*time.Millisecond {
		t.Errorf("offset = %s, want 90ms after window turnover", est.Offset)
	}
}

func TestOffsetEstimatorRejectsNonPositiveDelay(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	o := NewOffsetEstimator(4)
	// Remote claims more processing time than the whole round trip took.
	o.Update(base, base, base.Add(10*time.Millisecond), base.Add(time.Millisecond))
	if est := o.Estimate(); est.Samples != 0 {
		t.Errorf("samples = %d, want 0 (non-positive delay rejected)", est.Samples)
	}
}

func TestOffsetEstimatorNilSafe(t *testing.T) {
	var o *OffsetEstimator
	o.Update(time.Now(), time.Now(), time.Now(), time.Now())
	if est := o.Estimate(); est.Samples != 0 || est.Offset != 0 {
		t.Error("nil estimator reported state")
	}
}
