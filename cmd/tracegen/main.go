// Command tracegen generates the LLC access trace of one or more suite
// frames and stores them in the binary trace container, for offline
// analysis with llcstat or external tools.
//
// Usage:
//
//	tracegen -out traces/ [-scale 0.25] [-apps AssnCreed] [-frames 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gspc/internal/trace"
	"gspc/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory for .trc files")
		scale    = flag.Float64("scale", 0.25, "linear frame scale")
		apps     = flag.String("apps", "", "comma-separated application abbreviations (default all)")
		frames   = flag.Int("frames", 0, "max frames per application (0 = all)")
		profiles = flag.String("profiles", "", "JSON file of custom application profiles (replaces the built-in suite)")
		template = flag.Bool("template", false, "print the built-in suite as JSON (a template for -profiles) and exit")
	)
	flag.Parse()

	if *template {
		if err := workload.MarshalSuite(os.Stdout, workload.Profiles()); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	suite := workload.Suite()
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		ps, err := workload.LoadProfiles(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		suite = nil
		for _, p := range ps {
			for i := 0; i < p.Frames; i++ {
				suite = append(suite, workload.FrameJob{App: p, Index: i})
			}
		}
	}

	want := map[string]bool{}
	if *apps != "" {
		for _, a := range strings.Split(*apps, ",") {
			want[strings.TrimSpace(a)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	perApp := map[string]int{}
	for _, j := range suite {
		if len(want) > 0 && !want[j.App.Abbrev] {
			continue
		}
		if *frames > 0 && perApp[j.App.Abbrev] >= *frames {
			continue
		}
		perApp[j.App.Abbrev]++

		tr := trace.GenerateFrame(j, *scale)
		name := fmt.Sprintf("%s_%d.trc", j.App.Abbrev, j.Index)
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d accesses\n", path, len(tr))
	}
}
