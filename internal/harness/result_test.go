package harness

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestResultSchemaVersionStamped: BuildResult stamps the current
// schema version and DecodeResult round-trips it.
func TestResultSchemaVersionStamped(t *testing.T) {
	e, ok := ByIDExt("tab1")
	if !ok {
		t.Fatal("tab1 missing")
	}
	tbl, err := e.Run(Options{}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	r := BuildResult(e, Options{}, tbl)
	if r.SchemaVersion != ResultSchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", r.SchemaVersion, ResultSchemaVersion)
	}
	body, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != r.Experiment || back.Rendered != r.Rendered {
		t.Fatal("round trip lost fields")
	}
}

// TestDecodeResultRejectsMismatch: any other version — including the
// implicit 0 of pre-versioning payloads — fails with the typed error.
func TestDecodeResultRejectsMismatch(t *testing.T) {
	for _, body := range []string{
		`{"experiment":"tab1"}`,                     // no version field
		`{"schema_version":0,"experiment":"tab1"}`,  // explicit zero
		`{"schema_version":99,"experiment":"tab1"}`, // future build
	} {
		_, err := DecodeResult([]byte(body))
		var sme *SchemaMismatchError
		if !errors.As(err, &sme) {
			t.Fatalf("DecodeResult(%s) err = %v, want SchemaMismatchError", body, err)
		}
		if sme.Want != ResultSchemaVersion {
			t.Fatalf("Want = %d", sme.Want)
		}
	}
	if _, err := DecodeResult([]byte("{broken")); err == nil {
		t.Fatal("malformed JSON decoded")
	}
}
