// Package belady implements Belady's optimal replacement policy (MIN) for
// offline trace analysis, as used throughout Section 2 of the paper to
// bound the achievable LLC hit rates. The policy requires the full access
// trace up front: NextUse precomputes, for every trace position, the
// position of the next access to the same cache block, and OPT victimizes
// the resident block whose next use lies farthest in the future.
package belady

import (
	"fmt"
	"math"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// Never marks a block that is not referenced again in the trace.
const Never = int64(math.MaxInt64)

// NextUse computes the forward reuse chain of a trace: out[i] is the trace
// position of the next access to the same block as trace[i], or Never.
// Blocks are formed by shifting addresses right by blockShift bits.
func NextUse(trace []stream.Access, blockShift uint) []int64 {
	out := make([]int64, len(trace))
	last := make(map[uint64]int64, len(trace)/4+1)
	for i := len(trace) - 1; i >= 0; i-- {
		bn := trace[i].Addr >> blockShift
		if j, ok := last[bn]; ok {
			out[i] = j
		} else {
			out[i] = Never
		}
		last[bn] = int64(i)
	}
	return out
}

// NextUseTrace is NextUse over a packed trace, reading only the address
// column — no access materialization, no Seq dependence (positions are
// the sequence numbers by construction).
func NextUseTrace(t *stream.Trace, blockShift uint) []int64 {
	n := t.Len()
	out := make([]int64, n)
	last := make(map[uint64]int64, n/4+1)
	for i := n - 1; i >= 0; i-- {
		bn := t.Addr(i) >> blockShift
		if j, ok := last[bn]; ok {
			out[i] = j
		} else {
			out[i] = Never
		}
		last[bn] = int64(i)
	}
	return out
}

// OPT is Belady's optimal policy. Each access presented to the cache must
// carry its trace position in Access.Seq, and the policy must have been
// constructed from the NextUse chain of the exact trace being replayed.
//
// When Bypass is true (the default used in the paper reproduction), an
// incoming block whose next use is farther than every resident block's is
// not cached at all, which is the true optimal for a cache allowed to
// bypass; with Bypass false the policy degrades to forced-fill MIN.
type OPT struct {
	ways    int
	nextUse []int64 // by trace position
	due     []int64 // by (set, way): next use of resident block
	Bypass  bool
}

var _ cachesim.Policy = (*OPT)(nil)

// NewOPT returns an optimal policy for a trace whose forward reuse chain
// is next (from NextUse).
func NewOPT(next []int64) *OPT {
	return &OPT{nextUse: next, Bypass: true}
}

// Name implements cachesim.Policy.
func (p *OPT) Name() string { return "Belady" }

// Reset implements cachesim.Policy.
func (p *OPT) Reset(sets, ways int) {
	p.ways = ways
	p.due = make([]int64, sets*ways)
	for i := range p.due {
		p.due[i] = Never
	}
}

func (p *OPT) lookahead(a stream.Access) int64 {
	if a.Seq < 0 || a.Seq >= int64(len(p.nextUse)) {
		panic(fmt.Sprintf("belady: access seq %d outside prepared trace of %d", a.Seq, len(p.nextUse)))
	}
	return p.nextUse[a.Seq]
}

// Hit implements cachesim.Policy.
func (p *OPT) Hit(set, way int, a stream.Access) {
	p.due[set*p.ways+way] = p.lookahead(a)
}

// Fill implements cachesim.Policy.
func (p *OPT) Fill(set, way int, a stream.Access) {
	p.due[set*p.ways+way] = p.lookahead(a)
}

// Victim implements cachesim.Policy.
func (p *OPT) Victim(set int, a stream.Access) int {
	base := set * p.ways
	victim, farthest := 0, int64(-1)
	for w := 0; w < p.ways; w++ {
		if d := p.due[base+w]; d > farthest {
			victim, farthest = w, d
		}
	}
	if p.Bypass && p.lookahead(a) >= farthest {
		return -1
	}
	return victim
}

// Evict implements cachesim.Policy.
func (p *OPT) Evict(set, way int) { p.due[set*p.ways+way] = Never }
