package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Server is the HTTP face of an Engine. Routes:
//
//	GET  /healthz          liveness
//	GET  /metricsz         Metrics snapshot
//	GET  /v1/experiments   runnable experiment ids and titles
//	POST /v1/runs          run (or replay) an experiment; ?wait=0 queues
//	GET  /v1/runs/{id}     job status and, when done, its result
//
// Successful POST bodies are the exact cached result bytes; serving
// metadata (cache disposition, run id, duration) travels in X-Gspc-*
// headers so replays stay byte-identical.
type Server struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewServer wires the routes for an engine.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Metrics())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": Experiments()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if r.URL.Query().Get("wait") == "0" {
		s.handleRunAsync(w, req)
		return
	}
	rep, err := s.engine.Do(r.Context(), req)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	s.writeReply(w, http.StatusOK, rep)
}

// handleRunAsync queues the job and returns 202 with its id; a cache hit
// still returns the result immediately.
func (s *Server) handleRunAsync(w http.ResponseWriter, req Request) {
	job, rep, err := s.engine.Submit(req)
	if err != nil {
		s.writeEngineErrorNoCtx(w, err)
		return
	}
	if rep != nil {
		s.writeReply(w, http.StatusOK, rep)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "status": string(StatusQueued)})
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.engine.JobStatus(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run id")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeReply sends the exact result bytes with serving metadata in
// headers only.
func (s *Server) writeReply(w http.ResponseWriter, code int, rep *Reply) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	disposition := "miss"
	switch {
	case rep.Cached:
		disposition = "hit"
	case rep.Coalesced:
		disposition = "coalesced"
	}
	h.Set("X-Gspc-Cache", disposition)
	h.Set("X-Gspc-Run", rep.RunID)
	h.Set("X-Gspc-Duration-Ms", strconv.FormatFloat(float64(rep.Duration)/float64(time.Millisecond), 'f', 3, 64))
	w.WriteHeader(code)
	w.Write(rep.Body)
	if len(rep.Body) == 0 || rep.Body[len(rep.Body)-1] != '\n' {
		fmt.Fprintln(w)
	}
}

func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
		// The client went away; the job keeps running for future replays.
		writeError(w, http.StatusGatewayTimeout, "request cancelled while waiting: "+err.Error())
		return
	}
	s.writeEngineErrorNoCtx(w, err)
}

func (s *Server) writeEngineErrorNoCtx(w http.ResponseWriter, err error) {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, bad.Reason)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
