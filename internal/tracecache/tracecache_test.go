package tracecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/stream"
)

// mkTrace builds a small distinguishable trace for key index i.
func mkTrace(i, n int) *stream.Trace {
	t := stream.NewTrace(n)
	for k := 0; k < n; k++ {
		t.Append(stream.Access{Addr: uint64(i*1000 + k), Kind: stream.RT, Write: k%2 == 0})
	}
	return t
}

func key(i int) Key {
	return Key{Job: fmt.Sprintf("App/%d", i), Scale: 0.25, Config: "abcdef012345"}
}

func TestGetHitMissAndStats(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var synths atomic.Int64
	synth := func(ctx context.Context) (*stream.Trace, error) {
		synths.Add(1)
		return mkTrace(1, 16), nil
	}
	a, err := c.Get(ctx, key(1), synth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(ctx, key(1), synth)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get returned a different trace pointer")
	}
	if n := synths.Load(); n != 1 {
		t.Errorf("synth ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.BytesUsed != a.Bytes() {
		t.Errorf("stats = %+v", s)
	}
	if s.SynthCount != 1 {
		t.Errorf("synth count = %d, want 1", s.SynthCount)
	}
}

func TestBudgetEviction(t *testing.T) {
	// Each 16-record trace occupies 16*9 = 144 bytes; budget fits two.
	tr := mkTrace(0, 16)
	c := New(2 * tr.Bytes())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, key(i), func(context.Context) (*stream.Trace, error) {
			return mkTrace(i, 16), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 || s.EvictedBytes != tr.Bytes() {
		t.Errorf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	// Key 0 was LRU and must be gone: a fresh Get synthesizes again.
	ran := false
	if _, err := c.Get(ctx, key(0), func(context.Context) (*stream.Trace, error) {
		ran = true
		return mkTrace(0, 16), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("evicted key was still served from cache")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	tr := mkTrace(0, 16)
	c := New(2 * tr.Bytes())
	ctx := context.Background()
	get := func(i int) {
		if _, err := c.Get(ctx, key(i), func(context.Context) (*stream.Trace, error) {
			return mkTrace(i, 16), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get(0)
	get(1)
	get(0) // touch 0: now 1 is LRU
	get(2) // evicts 1
	ran := false
	if _, err := c.Get(ctx, key(0), func(context.Context) (*stream.Trace, error) {
		ran = true
		return mkTrace(0, 16), nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("recently touched key was evicted instead of the LRU one")
	}
}

func TestZeroBudgetStillDedups(t *testing.T) {
	c := New(0)
	ctx := context.Background()
	var synths atomic.Int64
	var start, release sync.WaitGroup
	start.Add(1)
	const waiters = 8
	results := make([]*stream.Trace, waiters)
	release.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer release.Done()
			start.Wait()
			tr, err := c.Get(ctx, key(7), func(ctx context.Context) (*stream.Trace, error) {
				synths.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the coalescing window
				return mkTrace(7, 16), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	start.Done()
	release.Wait()
	if n := synths.Load(); n != 1 {
		t.Errorf("synth ran %d times under %d concurrent lookups, want 1", n, waiters)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different trace", i)
		}
	}
	if s := c.Stats(); s.Entries != 0 || s.BytesUsed != 0 {
		t.Errorf("zero-budget cache retained entries: %+v", s)
	}
}

func TestWaiterCancellation(t *testing.T) {
	c := New(1 << 20)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		_, err := c.Get(context.Background(), key(3), func(ctx context.Context) (*stream.Trace, error) {
			close(leaderIn)
			<-gate
			return mkTrace(3, 4), nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The waiter's dead context must surface immediately, not wait for
	// the stalled leader.
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, key(3), func(context.Context) (*stream.Trace, error) {
			return mkTrace(3, 4), nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter blocked on the in-flight synthesis")
	}
	close(gate)
}

func TestLeaderFailureRetries(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("leader died")
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	go func() {
		_, err := c.Get(context.Background(), key(5), func(ctx context.Context) (*stream.Trace, error) {
			close(leaderIn)
			<-gate
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v, want boom", err)
		}
	}()
	<-leaderIn
	// This waiter joins the doomed flight, then must retry and become
	// the new synthesizer rather than inherit the leader's failure.
	done := make(chan *stream.Trace, 1)
	go func() {
		tr, err := c.Get(context.Background(), key(5), func(context.Context) (*stream.Trace, error) {
			return mkTrace(5, 4), nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- tr
	}()
	// Give the waiter time to park on the in-flight call, then fail it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	select {
	case tr := <-done:
		if tr == nil || tr.Len() != 4 {
			t.Errorf("retry returned %v", tr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never recovered from the leader's failure")
	}
}

func TestSynthPanicReleasesWaiters(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	go func() {
		defer func() { recover() }() // the panic must still propagate to the leader
		c.Get(context.Background(), key(9), func(ctx context.Context) (*stream.Trace, error) {
			close(leaderIn)
			<-gate
			panic("poisoned frame")
		})
	}()
	<-leaderIn
	// The waiter's own retry also fails, so no path inserts an entry:
	// whatever it sees, it must return promptly and leave nothing behind.
	retryFail := errors.New("retry failed too")
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), key(9), func(context.Context) (*stream.Trace, error) {
			return nil, retryFail
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	select {
	case err := <-done:
		if err == nil {
			t.Error("waiter reported success though every synthesis failed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after the synthesizer panicked")
	}
	if c.Len() != 0 {
		t.Error("failed syntheses left a resident entry")
	}
}

// TestConcurrentHammer drives lookups, evictions, and cancellations from
// many goroutines at once; run under -race this is the package's main
// concurrency proof.
func TestConcurrentHammer(t *testing.T) {
	// Budget of ~4 traces over 8 keys forces constant eviction.
	tr := mkTrace(0, 32)
	c := New(4 * tr.Bytes())
	const (
		workers = 16
		iters   = 200
		keys    = 8
	)
	var wg sync.WaitGroup
	var served, cancelled atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				if (w+i)%5 == 0 {
					// A slice of requests carries an already-dead context.
					cctx, cancel := context.WithCancel(ctx)
					cancel()
					ctx = cctx
				}
				ki := (w*7 + i) % keys
				tr, err := c.Get(ctx, key(ki), func(ctx context.Context) (*stream.Trace, error) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					return mkTrace(ki, 32), nil
				})
				switch {
				case err == nil:
					// Traces are shared and read-only: verify this one is
					// the right key's content and intact.
					if tr.Len() != 32 || tr.Addr(0) != uint64(ki*1000) {
						t.Errorf("key %d served wrong trace (len %d, addr0 %d)", ki, tr.Len(), tr.Addr(0))
					}
					served.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if served.Load() == 0 || s.Evictions == 0 {
		t.Errorf("hammer exercised too little: served %d, stats %+v", served.Load(), s)
	}
	if s.BytesUsed > s.BudgetBytes {
		t.Errorf("cache over budget after hammer: %+v", s)
	}
	t.Logf("hammer: served %d, cancelled %d, stats %+v", served.Load(), cancelled.Load(), s)
}
