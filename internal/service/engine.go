package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gspc/internal/harness"
)

// Engine errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull signals backpressure: the job queue is at capacity
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is returned for submissions after Shutdown began
	// (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Config sizes an Engine. The zero value gets sensible defaults.
type Config struct {
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of concurrent experiment runners. Default
	// GOMAXPROCS.
	Workers int
	// CacheEntries is the result cache capacity (0 disables caching,
	// < 0 means default). Default 128.
	CacheEntries int
	// CachePolicy selects the eviction policy backing the result cache:
	// one of CachePolicyNames. Default "lru".
	CachePolicy string
	// Run overrides the experiment runner (tests). Default: the harness.
	Run func(Request) (*harness.Result, error)
	// KeepFinished bounds how many finished jobs stay queryable via
	// JobStatus. Default 1024.
	KeepFinished int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 128
	}
	if c.CachePolicy == "" {
		c.CachePolicy = "lru"
	}
	if c.Run == nil {
		c.Run = func(r Request) (*harness.Result, error) {
			return harness.RunResult(r.Experiment, r.Options())
		}
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 1024
	}
	return c
}

// Job tracks one queued computation. Fields other than the immutable
// ID/Req/Key are guarded by the engine mutex; readers use JobStatus.
type Job struct {
	ID  string
	Req Request
	Key string

	done chan struct{}

	status             Status
	enqueued, started  time.Time
	finished           time.Time
	result             *cached
	err                error
	coalesced          int64
	durationWhenCached time.Duration
}

// JobStatus is the queryable snapshot of a job (GET /v1/runs/{id}).
type JobStatus struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Status     Status          `json:"status"`
	Enqueued   time.Time       `json:"enqueued"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	DurationMs float64         `json:"duration_ms,omitempty"`
	Coalesced  int64           `json:"coalesced,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Reply is the outcome of a synchronous request: the exact result bytes
// (identical across cache replays) plus serving metadata that travels in
// headers, never in the body.
type Reply struct {
	Body      []byte
	RunID     string
	Cached    bool
	Coalesced bool
	Duration  time.Duration
}

// Engine owns the queue, the worker pool, the coalescing table, and the
// policy-backed result cache.
type Engine struct {
	cfg   Config
	cache *resultCache
	queue chan *Job

	mu       sync.Mutex
	closing  bool
	nextID   int64
	jobs     map[string]*Job
	order    []string // finished job ids, oldest first, for pruning
	inflight map[string]*Job

	wg    sync.WaitGroup
	start time.Time

	// counters, guarded by mu
	requests, rejected, coalesced int64
	completed, failed             int64
	lat                           latencies
}

// NewEngine builds and starts an engine; callers must Shutdown it.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	cache, err := newResultCache(cfg.CacheEntries, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		cache:    cache,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
		start:    time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// Do serves one request synchronously: a cache hit returns immediately,
// otherwise the request is enqueued (coalescing onto an identical
// in-flight job if one exists) and Do blocks until the job finishes or
// ctx is done. The job keeps running if ctx expires first — a later
// identical request will find its result in the cache.
func (e *Engine) Do(ctx context.Context, req Request) (*Reply, error) {
	job, rep, err := e.Submit(req)
	if err != nil {
		return nil, err
	}
	if rep != nil {
		return rep, nil
	}
	select {
	case <-job.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.replyFor(job)
}

// Submit validates and enqueues a request. Exactly one of the returns is
// meaningful: a Reply for a cache hit (no job), otherwise the queued or
// coalesced-onto Job whose done channel the caller may wait on.
func (e *Engine) Submit(req Request) (*Job, *Reply, error) {
	req, err := req.Normalize()
	if err != nil {
		return nil, nil, err
	}
	key := req.Key()

	e.mu.Lock()
	defer e.mu.Unlock()
	e.requests++
	if e.closing {
		return nil, nil, ErrShuttingDown
	}
	if v, ok := e.cache.Get(key); ok {
		return nil, &Reply{Body: v.body, RunID: v.runID, Cached: true}, nil
	}
	if job, ok := e.inflight[key]; ok {
		job.coalesced++
		e.coalesced++
		return job, nil, nil
	}
	e.nextID++
	job := &Job{
		ID:       fmt.Sprintf("run-%06d", e.nextID),
		Req:      req,
		Key:      key,
		done:     make(chan struct{}),
		status:   StatusQueued,
		enqueued: time.Now(),
	}
	select {
	case e.queue <- job:
	default:
		e.rejected++
		return nil, nil, ErrQueueFull
	}
	e.jobs[job.ID] = job
	e.inflight[key] = job
	return job, nil, nil
}

// replyFor builds the Reply for a finished job.
func (e *Engine) replyFor(job *Job) (*Reply, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if job.err != nil {
		return nil, job.err
	}
	return &Reply{
		Body:      job.result.body,
		RunID:     job.ID,
		Coalesced: job.coalesced > 0,
		Duration:  job.finished.Sub(job.started),
	}, nil
}

// JobStatus returns the snapshot of a tracked job.
func (e *Engine) JobStatus(id string) (JobStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	s := JobStatus{
		ID:         job.ID,
		Experiment: job.Req.Experiment,
		Key:        job.Key,
		Status:     job.status,
		Enqueued:   job.enqueued,
		Coalesced:  job.coalesced,
	}
	if !job.started.IsZero() {
		t := job.started
		s.Started = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		s.Finished = &t
		s.DurationMs = float64(job.finished.Sub(job.started)) / float64(time.Millisecond)
	}
	if job.err != nil {
		s.Error = job.err.Error()
	}
	if job.result != nil {
		s.Result = json.RawMessage(job.result.body)
	}
	return s, true
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		e.mu.Lock()
		job.status = StatusRunning
		job.started = time.Now()
		e.mu.Unlock()

		res, err := e.cfg.Run(job.Req)
		var entry *cached
		if err == nil {
			var body []byte
			body, err = json.Marshal(res)
			if err == nil {
				entry = &cached{body: body, runID: job.ID}
			}
		}

		e.mu.Lock()
		job.finished = time.Now()
		if err != nil {
			job.status = StatusFailed
			job.err = err
			e.failed++
		} else {
			job.status = StatusDone
			job.result = entry
			e.cache.Put(job.Key, entry)
			e.completed++
			e.lat.record(job.finished.Sub(job.started))
		}
		delete(e.inflight, job.Key)
		e.pruneLocked(job.ID)
		e.mu.Unlock()
		close(job.done)
	}
}

// pruneLocked records a finished job and drops the oldest finished jobs
// beyond the retention bound. Callers hold e.mu.
func (e *Engine) pruneLocked(id string) {
	e.order = append(e.order, id)
	for len(e.order) > e.cfg.KeepFinished {
		delete(e.jobs, e.order[0])
		e.order = e.order[1:]
	}
}

// Shutdown stops accepting work, drains queued and running jobs, and
// waits for the workers to exit or ctx to expire.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closing {
		e.closing = true
		close(e.queue)
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
