package cachesim

import (
	"testing"
	"testing/quick"

	"gspc/internal/stream"
)

// refCache is an independent, deliberately naive reference model of a
// set-associative LRU cache: per-set slices searched linearly, recency
// maintained by reordering. The production Cache with an LRU policy must
// agree with it access-for-access — the analogue of the paper validating
// its offline cache model against the detailed simulator.
type refCache struct {
	sets       int
	ways       int
	blockShift uint
	lines      [][]refLine // per set, MRU first
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRefCache(sets, ways int, blockShift uint) *refCache {
	return &refCache{sets: sets, ways: ways, blockShift: blockShift, lines: make([][]refLine, sets)}
}

// access returns (hit, evictedDirtyTag, hadDirtyEviction).
func (r *refCache) access(a stream.Access) (bool, uint64, bool) {
	bn := a.Addr >> r.blockShift
	set := int(bn % uint64(r.sets))
	ls := r.lines[set]
	for i := range ls {
		if ls[i].tag == bn {
			line := ls[i]
			if a.Write {
				line.dirty = true
			}
			copy(ls[1:i+1], ls[:i])
			ls[0] = line
			return true, 0, false
		}
	}
	// Miss: insert at MRU, evict LRU if full.
	var evTag uint64
	var evDirty bool
	if len(ls) == r.ways {
		ev := ls[len(ls)-1]
		evTag, evDirty = ev.tag, ev.dirty
		ls = ls[:len(ls)-1]
	}
	ls = append([]refLine{{tag: bn, dirty: a.Write}}, ls...)
	r.lines[set] = ls
	return false, evTag, evDirty
}

// lruPolicy mirrors policy.LRU without importing it (cachesim cannot
// depend on the policy package).
type lruPolicy struct {
	ways  int
	clock uint64
	stamp []uint64
}

func (p *lruPolicy) Name() string { return "lru-ref" }
func (p *lruPolicy) Reset(sets, ways int) {
	p.ways = ways
	p.stamp = make([]uint64, sets*ways)
}
func (p *lruPolicy) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}
func (p *lruPolicy) Hit(set, way int, a stream.Access)  { p.touch(set, way) }
func (p *lruPolicy) Fill(set, way int, a stream.Access) { p.touch(set, way) }
func (p *lruPolicy) Victim(set int, a stream.Access) int {
	base := set * p.ways
	v, oldest := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if p.stamp[base+w] < oldest {
			v, oldest = w, p.stamp[base+w]
		}
	}
	return v
}
func (p *lruPolicy) Evict(set, way int) { p.stamp[set*p.ways+way] = 0 }

// TestAgainstReferenceModel replays random traces through both models
// and demands identical hit/miss outcomes and dirty-eviction streams.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		const sets, ways = 8, 4
		c := New(Geometry{SizeBytes: sets * ways * 64, Ways: ways, BlockSize: 64}, &lruPolicy{})
		var gotWB []uint64
		c.Downstream = stream.SinkFunc(func(a stream.Access) {
			if a.Write {
				gotWB = append(gotWB, a.Addr>>6)
			}
		})
		ref := newRefCache(sets, ways, 6)
		var wantWB []uint64
		for i, ad := range addrs {
			a := stream.Access{Addr: uint64(ad) * 16, Write: i < len(writes) && writes[i]}
			hit := c.Access(a)
			refHit, evTag, evDirty := ref.access(a)
			if hit != refHit {
				return false
			}
			if evDirty {
				wantWB = append(wantWB, evTag)
			}
		}
		if len(gotWB) != len(wantWB) {
			return false
		}
		for i := range gotWB {
			if gotWB[i] != wantWB[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReferenceModelLongTrace drives a longer structured trace (strided
// with periodic reuse) through both models.
func TestReferenceModelLongTrace(t *testing.T) {
	const sets, ways = 16, 8
	c := New(Geometry{SizeBytes: sets * ways * 64, Ways: ways, BlockSize: 64}, &lruPolicy{})
	ref := newRefCache(sets, ways, 6)
	var addr uint64
	for i := 0; i < 50000; i++ {
		switch i % 5 {
		case 0, 1, 2:
			addr = uint64(i%3000) * 64 // streaming window
		case 3:
			addr = uint64(i%40) * 64 // hot set
		case 4:
			addr = uint64((i*7)%777) * 64 // strided
		}
		a := stream.Access{Addr: addr, Write: i%4 == 0}
		if c.Access(a) != func() bool { h, _, _ := ref.access(a); return h }() {
			t.Fatalf("divergence at access %d (addr %#x)", i, addr)
		}
	}
}
