// Package harness defines one runnable experiment per figure and table of
// the paper's evaluation, producing text tables with the same rows and
// series the paper reports. Experiments run the 52-frame suite through
// the offline LLC simulator (Figures 1-14) or the GPU timing simulator
// (Figures 15-17) at a configurable scale.
package harness

import (
	"context"
	"fmt"
	"io"

	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/telemetry"
	"gspc/internal/trace"
	"gspc/internal/tracecache"
	"gspc/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the linear frame scale relative to the paper's
	// resolutions (1.0 = full size). The default 0.25 keeps the full
	// suite tractable on a laptop.
	Scale float64
	// CapacityFactor calibrates the scaled LLC capacity:
	// modelBytes = paperBytes * Scale^2 * CapacityFactor. The factor 1.5
	// compensates for residency-window effects that do not scale with
	// area (see DESIGN.md, "Scaling").
	CapacityFactor float64
	// MaxFramesPerApp truncates each application's frame list (0 = all);
	// benchmarks use 1 for quick runs.
	MaxFramesPerApp int
	// Apps restricts the run to the named applications (empty = all 12).
	Apps []string
	// Workers caps the trace-synthesis worker pool (0 = default of
	// min(GOMAXPROCS, 4)). Each in-flight trace holds tens of MB, so
	// deployments with memory headroom can raise it and constrained ones
	// can set 1 for strictly sequential synthesis. Results are identical
	// at any setting.
	Workers int
	// Progress, when non-nil, receives one line per completed frame.
	Progress io.Writer
	// Context, when non-nil, bounds the run: trace synthesis checks it
	// between frames and the simulation loops poll it every
	// cachesim.DefaultCheckStride accesses, so cancelling it (or letting
	// its deadline expire) stops an experiment mid-flight instead of
	// after the full suite. Nil means context.Background(). The context
	// never affects results, only whether the run finishes, so it is
	// excluded from cache-key derivation exactly like Workers.
	Context context.Context
	// TraceCache, when non-nil, overrides the process-wide shared frame
	// trace cache for this run. Tests use private caches; production
	// runs share one so concurrent experiments and gspcd jobs coalesce
	// their synthesis. Like Workers and Context it never affects
	// results, so it is excluded from result-cache keys.
	TraceCache *tracecache.Cache
	// Fidelity selects FidelityExact (the default; bit-identical to the
	// pre-sampling behavior) or FidelitySampled, which composes set
	// sampling and interval sampling to trade a pinned error bound for
	// interactive latency at full resolution. Unlike Workers/Context it
	// DOES affect results and is part of cache-key derivation.
	Fidelity string
	// SampleSetRatio is the set-sampling ratio for sampled runs:
	// simulate 1 in SampleSetRatio LLC sets (0 = DefaultSampleSetRatio,
	// 1 = all sets, i.e. interval sampling only). Ignored for exact runs.
	SampleSetRatio int
	// SampleSeed seeds the deterministic set-selection hash (0 = 1).
	// The same (seed, ratio) selects the same set indices on every
	// geometry, so sweeps over capacity stay comparable.
	SampleSeed uint64
	// sampleAgg, when non-nil on a sampled run, accumulates per-replay
	// sampling reports for the serialized Result (set by
	// RunResultContext; plain Run leaves it nil).
	sampleAgg *sampleAgg
}

// DefaultOptions returns the standard scaled configuration.
func DefaultOptions() Options {
	return Options{Scale: 0.25, CapacityFactor: 1.5}
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.CapacityFactor <= 0 {
		if o.Scale >= 1 {
			o.CapacityFactor = 1
		} else {
			o.CapacityFactor = 1.5
		}
	}
	if o.MaxFramesPerApp < 0 {
		o.MaxFramesPerApp = 0
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.Fidelity != FidelitySampled {
		o.Fidelity = FidelityExact
	}
	if o.Fidelity == FidelitySampled {
		if o.SampleSetRatio <= 0 {
			o.SampleSetRatio = DefaultSampleSetRatio
		}
		if o.SampleSeed == 0 {
			o.SampleSeed = 1
		}
	} else {
		// Sampling knobs are meaningless on exact runs: canonicalize them
		// away so every exact spelling shares one cache key.
		o.SampleSetRatio = 0
		o.SampleSeed = 0
	}
	return o
}

// Normalized returns the options with defaults applied: it is the exact
// configuration an experiment runs with, so callers that derive cache
// keys from options (internal/service) see the same canonical values for
// every spelling of the defaults.
func (o Options) Normalized() Options { return o.normalized() }

// ctx returns the run's context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Geometry maps a paper LLC capacity (e.g. 8 MB) to the scaled model
// geometry, keeping 16 ways and 64-byte blocks and quantizing to whole
// sets.
func (o Options) Geometry(paperBytes int) cachesim.Geometry {
	o = o.normalized()
	const ways, block = 16, 64
	setBytes := ways * block
	sets := int(float64(paperBytes)*o.Scale*o.Scale*o.CapacityFactor) / setBytes
	if sets < 16 {
		sets = 16
	}
	return cachesim.Geometry{SizeBytes: sets * setBytes, Ways: ways, BlockSize: block}
}

// Jobs returns the frame jobs selected by the options.
func (o Options) Jobs() []workload.FrameJob {
	var jobs []workload.FrameJob
	want := map[string]bool{}
	for _, a := range o.Apps {
		want[a] = true
	}
	perApp := map[string]int{}
	for _, j := range workload.Suite() {
		if len(want) > 0 && !want[j.App.Abbrev] {
			continue
		}
		if o.MaxFramesPerApp > 0 && perApp[j.App.Abbrev] >= o.MaxFramesPerApp {
			continue
		}
		perApp[j.App.Abbrev]++
		jobs = append(jobs, j)
	}
	return jobs
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table 1: DirectX application suite", RunTable1},
		{"fig1", "Figure 1: NRU and Belady LLC misses normalized to DRRIP (8 MB)", RunFig1},
		{"fig4", "Figure 4: stream-wise distribution of LLC accesses", RunFig4},
		{"fig5", "Figure 5: texture/RT/Z hit rates under Belady, DRRIP, NRU", RunFig5},
		{"fig6", "Figure 6: inter- vs intra-stream texture reuse and RT consumption", RunFig6},
		{"fig7", "Figure 7: texture epoch hit distribution and death ratios (Belady)", RunFig7},
		{"fig8", "Figure 8: RT and texture fills with RRPV=3 under DRRIP", RunFig8},
		{"fig9", "Figure 9: Z epoch death ratios (Belady)", RunFig9},
		{"fig11", "Figure 11: GSPZTC sensitivity to threshold t (vs t=16)", RunFig11},
		{"fig12", "Figure 12: LLC misses of all policies normalized to DRRIP (8 MB)", RunFig12},
		{"fig13", "Figure 13: stream metrics averaged over the suite, per policy", RunFig13},
		{"fig14", "Figure 14: iso-overhead comparison (4 replacement-state bits)", RunFig14},
		{"fig15", "Figure 15: performance normalized to DRRIP on 8 MB LLC", RunFig15},
		{"fig16", "Figure 16: performance normalized to DRRIP on 16 MB LLC", RunFig16},
		{"fig17", "Figure 17: sensitivity — DDR3-1867 and less aggressive GPU", RunFig17},
		{"tab6", "Table 6: evaluated policies", RunTable6},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// paperLLCBytes is the baseline 8 MB capacity of Section 4.
const paperLLCBytes = 8 << 20

// policySpec names a policy with its display-stream caching mode.
type policySpec struct {
	name string
	ucd  bool
	make func() cachesim.Policy
}

func specDRRIP() policySpec {
	return policySpec{name: "DRRIP", make: func() cachesim.Policy { return policy.NewDRRIP(2) }}
}

func specNRU() policySpec {
	return policySpec{name: "NRU", make: func() cachesim.Policy { return policy.NewNRU() }}
}

func specGSPC(v core.Variant, t int, ucd bool) policySpec {
	name := v.String()
	if t != 8 && t > 0 {
		name = fmt.Sprintf("%s(t=%d)", v, t)
	}
	if ucd {
		name += "+UCD"
	}
	return policySpec{name: name, ucd: ucd, make: func() cachesim.Policy {
		p := core.DefaultParams(v)
		if t > 0 {
			p.T = t
		}
		return core.New(p)
	}}
}

// frameResult carries everything the offline experiments extract from one
// policy run on one frame.
type frameResult struct {
	stats   cachesim.Stats
	tracker *analysisTracker
	insert  core.InsertionStats
	drrip   drripFillStats
}

type drripFillStats struct {
	fills, distant [stream.NumKinds]int64
}

// runOffline replays tr through the policy on the given geometry,
// polling ctx inside the access loop so cancellation stops a frame
// mid-trace. The trace is shared and read-only: any number of policy
// replays may run over the same packed trace concurrently.
//
// A nil plan replays the full trace exactly. A non-nil plan runs the
// sampled protocol: allocate only the sampled sets, warm the cache on
// [warmStart, measStart) with counters discarded, measure
// [measStart, Len), then extrapolate every counter to full-trace,
// full-set scale.
func runOffline(ctx context.Context, tr *stream.Trace, spec policySpec, geom cachesim.Geometry, plan *samplePlan) (frameResult, error) {
	defer trackStage(ctx, pickReplay)()
	defer telemetry.StartFrom(ctx, spec.name, "replay").End()
	pol := spec.make()
	var c *cachesim.Cache
	if plan == nil {
		c = cachesim.New(geom, pol)
	} else {
		c = cachesim.NewSampled(geom, pol, plan.sample)
	}
	if spec.ucd {
		c.SetBypass(stream.Display, true)
	}
	tk := attachTracker(c)
	if plan == nil {
		if err := cachesim.ReplaySource(ctx, c, tr, 0); err != nil {
			return frameResult{}, err
		}
	} else {
		if err := cachesim.ReplaySourceRange(ctx, c, tr, plan.warmStart, plan.measStart, 0); err != nil {
			return frameResult{}, err
		}
		resetRunCounters(c, tk, pol)
		if err := cachesim.ReplaySourceRange(ctx, c, tr, plan.measStart, tr.Len(), 0); err != nil {
			return frameResult{}, err
		}
	}
	recordLLCStats(&c.Stats)
	res := frameResult{stats: c.Stats, tracker: tk}
	if g, ok := pol.(*core.Policy); ok {
		res.insert = g.Insertions
	}
	if d, ok := pol.(*policy.DRRIP); ok {
		res.drrip = drripFillStats{fills: d.FillsByKind, distant: d.DistantFillsByKind}
	}
	if plan != nil {
		plan.observe(c)
		scaleFrameResult(&res, plan.scaleFor(c))
	}
	return res, nil
}

// runBDN replays tr under Belady, DRRIP, and NRU — the reference trio
// the characterization figures share — fanning the three replays out
// over the options' worker budget. Results are positional, so the
// output is identical to the former sequential run.
func runBDN(o Options, tr *stream.Trace, geom cachesim.Geometry, plan *samplePlan) ([3]frameResult, error) {
	var out [3]frameResult
	err := fanOut(o.ctx(), o.replayWorkers(), 3, func(ctx context.Context, i int) error {
		var err error
		switch i {
		case 0:
			out[0], err = runBelady(ctx, tr, geom, plan)
		case 1:
			out[1], err = runOffline(ctx, tr, specDRRIP(), geom, plan)
		case 2:
			out[2], err = runOffline(ctx, tr, specNRU(), geom, plan)
		}
		return err
	})
	return out, err
}

// runBelady replays tr under Belady's optimal policy. The plan protocol
// matches runOffline; OPT's next-use chains are keyed on global Seq, so
// a windowed replay sees the same lookahead a full replay would.
func runBelady(ctx context.Context, tr *stream.Trace, geom cachesim.Geometry, plan *samplePlan) (frameResult, error) {
	defer trackStage(ctx, pickReplay)()
	defer telemetry.StartFrom(ctx, "Belady", "replay").End()
	next := belady.NextUseTrace(tr, blockShift(geom.BlockSize))
	pol := belady.NewOPT(next)
	var c *cachesim.Cache
	if plan == nil {
		c = cachesim.New(geom, pol)
	} else {
		c = cachesim.NewSampled(geom, pol, plan.sample)
	}
	tk := attachTracker(c)
	if plan == nil {
		if err := cachesim.ReplaySource(ctx, c, tr, 0); err != nil {
			return frameResult{}, err
		}
	} else {
		if err := cachesim.ReplaySourceRange(ctx, c, tr, plan.warmStart, plan.measStart, 0); err != nil {
			return frameResult{}, err
		}
		resetRunCounters(c, tk, pol)
		if err := cachesim.ReplaySourceRange(ctx, c, tr, plan.measStart, tr.Len(), 0); err != nil {
			return frameResult{}, err
		}
	}
	recordLLCStats(&c.Stats)
	res := frameResult{stats: c.Stats, tracker: tk}
	if plan != nil {
		plan.observe(c)
		scaleFrameResult(&res, plan.scaleFor(c))
	}
	return res, nil
}

// recordLLCStats folds one finished replay's per-stream access and hit
// counts into the process-global telemetry counters: once per frame
// replay, never inside the access loop.
func recordLLCStats(s *cachesim.Stats) {
	for _, k := range stream.Kinds() {
		telemetry.RecordLLCStream(k.String(), s.KindAccesses[k], s.KindHits[k])
	}
}

func blockShift(block int) uint {
	var s uint
	for 1<<s < block {
		s++
	}
	return s
}

// DefaultTraceCacheBytes is the byte budget of the process-wide frame
// trace cache: enough for the whole 52-frame suite at the default 0.25
// scale (~9 MB of packed records per frame at most) with headroom, small
// enough to coexist with a few in-flight experiments.
const DefaultTraceCacheBytes = 256 << 20

// sharedCache deduplicates and retains synthesized frame traces across
// every experiment and every concurrent gspcd job in the process.
var sharedCache = tracecache.New(DefaultTraceCacheBytes)

// SharedTraceCache exposes the process-wide frame-trace cache so servers
// can resize its budget (gspcd -trace-cache-mb) and report its counters.
func SharedTraceCache() *tracecache.Cache { return sharedCache }

// traceCache resolves the cache an experiment uses: the per-run override
// or the shared process-wide one.
func (o Options) traceCache() *tracecache.Cache {
	if o.TraceCache != nil {
		return o.TraceCache
	}
	return sharedCache
}

// genTrace returns the packed LLC trace for a job at the options' scale,
// through the frame-trace cache: hits are free, misses synthesize once
// even under concurrent identical requests. The returned trace is shared
// and must not be mutated.
func genTrace(ctx context.Context, o Options, j workload.FrameJob) (*stream.Trace, error) {
	o = o.normalized()
	cfg := rendercache.DefaultConfig().Scaled(o.Scale)
	key := tracecache.Key{Job: j.ID(), Scale: o.Scale, Config: cfg.Digest()}
	return o.traceCache().Get(ctx, key, func(ctx context.Context) (*stream.Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		defer trackStage(ctx, pickSynth)()
		defer telemetry.StartFrom(ctx, "synthesize", "synth", telemetry.String("job", j.ID())).End()
		t := stream.NewTrace(trace.EstimateAccesses(j, o.Scale))
		trace.GeneratePackedInto(t, j, o.Scale, cfg)
		return t, nil
	})
}

// appOrder returns the distinct application abbreviations of jobs, in
// suite order.
func appOrder(jobs []workload.FrameJob) []string {
	seen := map[string]bool{}
	var order []string
	for _, j := range jobs {
		if !seen[j.App.Abbrev] {
			seen[j.App.Abbrev] = true
			order = append(order, j.App.Abbrev)
		}
	}
	return order
}

// meanOf averages the per-app values in m over the order keys.
func meanOf(m map[string]float64, order []string) float64 {
	if len(order) == 0 {
		return 0
	}
	sum := 0.0
	for _, k := range order {
		sum += m[k]
	}
	return sum / float64(len(order))
}

func (o Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}
