package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// applyOne runs Apply and folds a panic back into a labelled outcome.
func applyOne(inj Injector, ctx context.Context) (outcome string, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(PanicValue); !ok {
				panic(r) // not ours: real bug, re-raise
			}
			outcome = "panic"
		}
	}()
	err = inj.Apply(ctx)
	switch {
	case err == nil:
		return "pass", nil
	default:
		return "error", err
	}
}

func TestRandomDeterministicSequence(t *testing.T) {
	spec := Spec{PanicRate: 0.2, ErrorRate: 0.3, DelayRate: 0.1, Delay: time.Microsecond}
	run := func() []string {
		inj := NewRandom(1234, spec)
		var seq []string
		for i := 0; i < 200; i++ {
			o, _ := applyOne(inj, context.Background())
			seq = append(seq, o)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %q vs %q", i, a[i], b[i])
		}
	}
	// All outcome kinds must appear at these rates over 200 calls.
	saw := map[string]bool{}
	for _, o := range a {
		saw[o] = true
	}
	for _, want := range []string{"pass", "error", "panic"} {
		if !saw[want] {
			t.Errorf("outcome %q never injected in 200 calls", want)
		}
	}
}

func TestRandomCountsConsistent(t *testing.T) {
	inj := NewRandom(7, Spec{PanicRate: 0.25, ErrorRate: 0.25, DelayRate: 0.25, Delay: time.Microsecond})
	const n = 400
	for i := 0; i < n; i++ {
		applyOne(inj, context.Background())
	}
	c := inj.Counts()
	if c.Calls != n {
		t.Errorf("calls = %d, want %d", c.Calls, n)
	}
	if got := c.Panics + c.Errors + c.Delays + c.Passes; got != n {
		t.Errorf("outcome tallies sum to %d, want %d (%+v)", got, n, c)
	}
}

func TestTransientErrorIsRetryable(t *testing.T) {
	inj := NewSequence(Fail())
	err := inj.Apply(context.Background())
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransientError", err)
	}
	if !te.Retryable() {
		t.Error("TransientError not retryable")
	}
	if te.N != 1 {
		t.Errorf("sequence number = %d, want 1", te.N)
	}
}

func TestSequenceScriptThenPassThrough(t *testing.T) {
	inj := NewSequence(Fail(), Panic(), Pass(), Fail())
	want := []string{"error", "panic", "pass", "error", "pass", "pass"}
	for i, w := range want {
		if o, _ := applyOne(inj, context.Background()); o != w {
			t.Errorf("call %d outcome = %q, want %q", i+1, o, w)
		}
	}
	c := inj.Counts()
	if c.Errors != 2 || c.Panics != 1 || c.Passes != 3 {
		t.Errorf("counts = %+v", c)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	inj := NewSequence(Outcome{Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Apply(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled delay slept anyway")
	}
	if c := inj.Counts(); c.Cancels != 1 {
		t.Errorf("cancels = %d, want 1", c.Cancels)
	}
}
