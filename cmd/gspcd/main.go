// Command gspcd serves the paper's experiments over HTTP: a bounded job
// queue, a worker pool, request coalescing, and a result cache whose
// eviction is handled by the repo's own LLC replacement policies.
//
// Usage:
//
//	gspcd [-addr :8080] [-queue 64] [-workers N] [-sim-workers N]
//	      [-cache-entries 128] [-cache-policy lru|nru|drrip]
//	      [-job-timeout 0] [-max-retries 2] [-retry-backoff 50ms]
//	      [-breaker-threshold 5] [-breaker-cooldown 30s]
//	      [-serve-stale] [-max-work 0] [-expose-stacks]
//	      [-mem-limit-mb 0] [-mem-max-request-mb 0]
//	      [-slo-p50 0] [-slo-p99 0] [-slo-objective 0.99]
//	      [-data-dir DIR] [-fsync=true] [-snapshot-every 256]
//	      [-log-format text|json] [-trace-every 1] [-flight-events 256]
//	      [-debug-addr ADDR] [-node-name NAME] [-version]
//
// With -data-dir set, every job transition is appended to a
// checksummed write-ahead journal and completed results are
// snapshotted, so a crashed or restarted gspcd comes back remembering
// its runs: GET /v1/runs/{id} keeps answering across restarts.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining/saturated/broken)
//	GET  /metricsz           counters: hits/misses, queue depth, latency percentiles
//	GET  /metrics            Prometheus text exposition
//	GET  /debugz             flight recorder: recent job lifecycle events
//	GET  /versionz           build identification
//	GET  /v1/experiments     runnable experiment ids
//	POST /v1/runs            {"experiment":"fig12","frames":1,...}; ?wait=0 queues,
//	                         ?timeout_ms=N caps the run deadline
//	GET  /v1/runs/{id}       job status and result
//	GET  /v1/runs/{id}/trace Chrome/Perfetto trace-event JSON of the run
//
// With -debug-addr set, a second listener serves net/http/pprof on
// that address only — profiling never shares a port with production
// traffic.
//
// SIGINT/SIGTERM drain in-flight jobs before exiting.
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"gspc/internal/harness"
	"gspc/internal/membudget"
	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// newLogger builds the process logger in the selected format.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func main() {
	opt, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcd:", err)
		os.Exit(2)
	}
	if opt.version {
		b := telemetry.BuildInfo()
		fmt.Printf("gspcd %s %s (%s", b.Module, b.Version, b.GoVersion)
		if b.Revision != "" {
			rev := b.Revision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			fmt.Printf(", %s", rev)
			if b.Dirty {
				fmt.Print("-dirty")
			}
		}
		fmt.Println(")")
		return
	}
	logger := newLogger(opt.logFormat)
	slog.SetDefault(logger)
	harness.SharedTraceCache().SetBudget(opt.traceCacheMB << 20)

	cfg := opt.engineConfig()
	cfg.Logger = logger
	if opt.memLimitMB > 0 {
		gov, err := membudget.New(membudget.Config{
			Limit:           opt.memLimitMB << 20,
			SetRuntimeLimit: true,
			Logger:          logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gspcd:", err)
			os.Exit(2)
		}
		// Rung 1's action: under pressure the shared trace cache gives up
		// three quarters of its budget (restored on recovery), and its
		// resident bytes count against the governor's accounting. The
		// shrunk budget is also capped at a quarter of the governor
		// limit: when the trace cache is allowed more bytes than the
		// whole process, shrinking to full/4 could still retain more
		// than the limit and pin the ladder at shed with no load.
		full := opt.traceCacheMB << 20
		shrunk := full / 4
		if lim := (opt.memLimitMB << 20) / 4; shrunk > lim {
			shrunk = lim
		}
		gov.ShrinkBudget(harness.SharedTraceCache(), full, shrunk)
		gov.RegisterSource("trace-cache", func() int64 {
			return harness.SharedTraceCache().Stats().BytesUsed
		})
		gov.Start()
		defer gov.Close()
		cfg.Governor = gov
		logger.Info("memory governor armed", "limit_mb", opt.memLimitMB)
	}
	if opt.sloP50 > 0 || opt.sloP99 > 0 {
		cfg.SLO = telemetry.NewSLOTracker(telemetry.SLOTarget{
			P50: opt.sloP50, P99: opt.sloP99,
		}, opt.sloObjective, 0)
	}
	if opt.simWorkers > 0 {
		sw := opt.simWorkers
		cfg.Run = func(ctx context.Context, r service.Request) (*harness.Result, error) {
			o := r.Options()
			if o.Workers == 0 {
				o.Workers = sw
			}
			return harness.RunResultContext(ctx, r.Experiment, o)
		}
	}
	engine, err := service.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcd:", err)
		os.Exit(2)
	}

	handler := service.NewServer(engine)
	handler.NodeName = opt.nodeName
	srv := &http.Server{Addr: opt.addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if opt.debugAddr != "" {
		// pprof gets its own mux and listener: the profiling surface is
		// opt-in and never reachable through the serving address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(opt.debugAddr, dbg); err != nil {
				logger.Error("debug listener failed", "addr", opt.debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", opt.debugAddr)
	}
	persistence := "in-memory"
	if opt.dataDir != "" {
		persistence = "journal at " + opt.dataDir
	}
	logger.Info("gspcd listening", "addr", opt.addr, "queue", opt.queue,
		"cache_entries", opt.cacheSize, "cache_policy", opt.cachePolicy,
		"persistence", persistence)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight jobs", "timeout", opt.drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), opt.drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := engine.Shutdown(shutCtx); err != nil {
		// With -data-dir the journal still holds these jobs as
		// queued/running; the next boot re-enqueues the queued ones and
		// marks the running ones failed-retryable.
		logger.Error("engine drain failed", "err", err, "jobs_abandoned", engine.Unfinished())
		os.Exit(1)
	}
	m := engine.Metrics()
	logger.Info("drained", "requests", m.Requests, "cache_hits", m.CacheHits,
		"coalesced", m.Coalesced, "rejected", m.Rejected)
}
