package cachesim_test

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

// ExampleCache shows the minimal offline-simulation loop: build a cache
// with a policy, replay accesses, read the statistics.
func ExampleCache() {
	geom := cachesim.Geometry{SizeBytes: 2 << 10, Ways: 4, BlockSize: 64}
	c := cachesim.New(geom, policy.NewSRRIP(2))

	for i := 0; i < 3; i++ {
		for block := 0; block < 4; block++ {
			c.Access(stream.Access{Addr: uint64(block) * 64, Kind: stream.Texture})
		}
	}

	fmt.Printf("geometry: %s\n", c.Geometry())
	fmt.Printf("accesses: %d, hits: %d, misses: %d\n",
		c.Stats.Accesses, c.Stats.Hits, c.Stats.Misses)
	// Output:
	// geometry: 2KB/4w/64B
	// accesses: 12, hits: 8, misses: 4
}

// ExampleCache_bypass demonstrates the uncached-display configuration
// the paper's UCD policies use.
func ExampleCache_bypass() {
	geom := cachesim.Geometry{SizeBytes: 2 << 10, Ways: 4, BlockSize: 64}
	c := cachesim.New(geom, policy.NewSRRIP(2))
	c.SetBypass(stream.Display, true)

	c.Access(stream.Access{Addr: 0, Kind: stream.Display, Write: true})
	c.Access(stream.Access{Addr: 0, Kind: stream.Display, Write: true})

	fmt.Printf("bypasses: %d, occupancy: %d\n", c.Stats.Bypasses, c.Occupancy())
	// Output:
	// bypasses: 2, occupancy: 0
}
