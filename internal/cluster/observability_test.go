package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/leakcheck"
	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// newTracedNodes boots engines that trace every run, so propagated
// trace ids are adopted and the member side of a stitched trace exists.
func newTracedNodes(t *testing.T, n int, sims *simCounter, delay time.Duration) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		name := fmt.Sprintf("gspc-%d", i+1)
		e, err := service.NewEngine(service.Config{
			Workers: 2, CacheEntries: 32, Run: sims.runner(delay),
			Logger: discard(), TraceEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := service.NewServer(e)
		srv.NodeName = name
		ts := httptest.NewServer(srv)
		nodes[i] = &testNode{name: name, engine: e, ts: ts}
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Shutdown(ctx)
		})
	}
	return nodes
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestStitchedTraceEndToEnd is the tentpole acceptance check: a run
// submitted through the coordinator yields, at the coordinator's
// /v1/runs/{id}/trace, a single Perfetto document with a coordinator
// lane (pid 1) and a member lane (pid 2), member timestamps rebased
// through the clock-offset estimate, the member run adopted into the
// coordinator's trace id, and no orphan spans.
func TestStitchedTraceEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	sims := newSimCounter()
	nodes := newTracedNodes(t, 3, sims, 5*time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)
	co.CheckNow() // samples member clocks and scrapes metrics

	body := `{"experiment":"fig12","apps":["Dirt"]}`
	resp, rb := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, rb)
	}
	traceID := resp.Header.Get(service.HeaderTraceID)
	if traceID == "" {
		t.Fatal("submit response missing " + service.HeaderTraceID)
	}
	qualified := resp.Header.Get("X-Gspc-Run")
	if qualified == "" || !strings.Contains(qualified, "@") {
		t.Fatalf("submit response X-Gspc-Run = %q, want qualified id", qualified)
	}

	tresp, tb := getURL(t, ts.URL+"/v1/runs/"+qualified+"/trace")
	if tresp.StatusCode != 200 {
		t.Fatalf("trace read = %d: %s", tresp.StatusCode, tb)
	}
	if got := tresp.Header.Get("X-Gspc-Trace-Stitched"); got != "1" {
		t.Fatalf("X-Gspc-Trace-Stitched = %q, want 1 (body: %s)", got, tb)
	}
	var doc telemetry.TraceDoc
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatalf("stitched trace unparseable: %v", err)
	}
	for k, want := range map[string]string{
		"stitched": "true", "adopted": "true", "orphan_spans": "0",
		"trace_id": traceID,
	} {
		if got := doc.OtherData[k]; got != want {
			t.Errorf("otherData[%q] = %q, want %q", k, got, want)
		}
	}
	if doc.OtherData["offset_samples"] == "0" {
		t.Error("offset_samples = 0: stitch used an unsampled clock offset")
	}

	lanes := map[int]bool{}
	names := map[string]bool{}
	procNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			lanes[ev.PID] = true
			names[ev.Name] = true
			if ev.TS < 0 {
				t.Errorf("span %q at negative ts %f", ev.Name, ev.TS)
			}
		case "M":
			procNames[ev.PID] = ev.Args["name"]
		}
	}
	if !lanes[1] || !lanes[2] {
		t.Errorf("stitched trace lanes = %v, want both coordinator (1) and member (2)", lanes)
	}
	for _, want := range []string{"submit", "route", "forward", "health-snapshot"} {
		if !names[want] {
			t.Errorf("stitched trace missing coordinator span %q (have %v)", want, names)
		}
	}
	if procNames[1] == "" || procNames[2] == "" {
		t.Errorf("process_name metadata missing: %v", procNames)
	}
	if m := co.Metrics(); m.TracesStitched != 1 || m.TraceFallbacks != 0 {
		t.Errorf("traces_stitched=%d trace_fallbacks=%d, want 1/0", m.TracesStitched, m.TraceFallbacks)
	}
}

// TestTraceFallbackRelaysMemberDoc: a coordinator that never routed the
// submit (no retained run — e.g. after a restart) still serves the
// member's trace, marked unstitched.
func TestTraceFallbackRelaysMemberDoc(t *testing.T) {
	sims := newSimCounter()
	nodes := newTracedNodes(t, 2, sims, time.Millisecond)
	_, ts1 := newTestCoordinator(t, nodes, nil)
	co2, ts2 := newTestCoordinator(t, nodes, func(c *Config) { c.Name = "gspc-cluster-2" })

	resp, rb := postJSON(t, ts1.URL, `{"experiment":"fig12","apps":["HAWX"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, rb)
	}
	qualified := resp.Header.Get("X-Gspc-Run")

	tresp, tb := getURL(t, ts2.URL+"/v1/runs/"+qualified+"/trace")
	if tresp.StatusCode != 200 {
		t.Fatalf("trace read via second coordinator = %d: %s", tresp.StatusCode, tb)
	}
	if got := tresp.Header.Get("X-Gspc-Trace-Stitched"); got != "0" {
		t.Errorf("X-Gspc-Trace-Stitched = %q, want 0", got)
	}
	var doc telemetry.TraceDoc
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatalf("relayed member trace unparseable: %v", err)
	}
	if doc.OtherData["stitched"] != "" {
		t.Errorf("relayed doc claims stitched=%q", doc.OtherData["stitched"])
	}
	if m := co2.Metrics(); m.TraceFallbacks != 1 {
		t.Errorf("trace_fallbacks = %d, want 1", m.TraceFallbacks)
	}
}

// TestHedgeRecordsExactlyOneWinner pins the hedge race's observability
// contract under -race: one hedge span, exactly one winner attribute,
// and every forward attempt span carries a span_id and a classified
// outcome — no orphan attempts.
func TestHedgeRecordsExactlyOneWinner(t *testing.T) {
	leakcheck.Check(t)
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, ts, ft := flakyCoordinator(t, nodes, func(c *Config) {
		c.DeadAfter = 2
		c.HedgeDelay = 100 * time.Millisecond
	})

	body := `{"experiment":"fig15","apps":["LostPlanet"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]

	if resp, b := postJSON(t, ts.URL, body); resp.StatusCode != 200 {
		t.Fatalf("warming submit = %d: %s", resp.StatusCode, b)
	}
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})
	ft.SetHostSpec(hostOf(t, nodeByName(nodes, owner).ts.URL),
		faultinject.NetSpec{DelayRate: 1, Latency: 5 * time.Second})

	run := telemetry.NewRun(telemetry.NewTraceID(), coordTraceMaxSpans)
	ctx := telemetry.NewContext(context.Background(), run)
	res, err := co.submitSync(ctx, key, "", []byte(body))
	if err != nil || res.status != 200 {
		t.Fatalf("hedged submit: err=%v status=%d", err, res.status)
	}

	// The abandoned owner forward ends its span asynchronously once the
	// hedge cancellation propagates; wait for it so the orphan check
	// below sees the complete picture.
	ownerForwardEnded := func() bool {
		for _, sp := range run.Snapshot() {
			if sp.Name != "forward" {
				continue
			}
			attrs := attrMap(sp.Attrs)
			if attrs["node"] == owner && attrs["outcome"] != "" {
				return true
			}
		}
		return false
	}
	waitUntil(t, "abandoned owner forward span", ownerForwardEnded)

	hedges, winners := 0, 0
	for _, sp := range run.Snapshot() {
		attrs := attrMap(sp.Attrs)
		switch sp.Name {
		case "hedge":
			hedges++
			if w := attrs["winner"]; w != "" {
				winners++
				if w != "replica" || attrs["node"] != successor {
					t.Errorf("hedge winner = %s/%s, want replica/%s", w, attrs["node"], successor)
				}
			}
		case "forward":
			if attrs["span_id"] == "" {
				t.Errorf("forward span to %s lacks span_id", attrs["node"])
			}
			if attrs["outcome"] == "" {
				t.Errorf("forward span to %s lacks outcome", attrs["node"])
			}
		}
	}
	if hedges != 1 || winners != 1 {
		t.Errorf("hedge spans=%d winners=%d, want exactly 1/1", hedges, winners)
	}
	if m := co.Metrics(); m.HedgeWins != 1 {
		t.Errorf("hedge_wins = %d, want 1", m.HedgeWins)
	}
}

func attrMap(attrs []telemetry.Attr) map[string]string {
	out := make(map[string]string, len(attrs))
	for _, a := range attrs {
		out[a.Key] = a.Val
	}
	return out
}

// TestClusterEventsTimeline: health transitions land on the typed
// timeline, stream as NDJSON, and the since-cursor resumes cleanly.
func TestClusterEventsTimeline(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 2, sims, time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)
	co.CheckNow()

	victim := nodes[1]
	victim.ts.Close()
	co.CheckNow() // DeadAfter=1: the dead refusal kills immediately

	resp, b := getURL(t, ts.URL+"/v1/cluster/events")
	if resp.StatusCode != 200 {
		t.Fatalf("events read = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	cursor := resp.Header.Get("X-Gspc-Events-Cursor")
	if cursor == "" || cursor == "0" {
		t.Fatalf("events cursor = %q, want positive", cursor)
	}

	types := map[string]int{}
	var lastSeq int64
	sc := bufio.NewScanner(strings.NewReader(string(b)))
	for sc.Scan() {
		var ev telemetry.ClusterEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("events out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types[ev.Type]++
	}
	if types[telemetry.EventMemberDead] == 0 {
		t.Errorf("no %s event after killing a member: %v", telemetry.EventMemberDead, types)
	}
	if types[telemetry.EventRingSwap] == 0 {
		t.Errorf("no %s event after routability change: %v", telemetry.EventRingSwap, types)
	}
	for _, ev := range typesOf(t, b) {
		if ev.Type == telemetry.EventMemberDead && ev.Node != victim.name {
			t.Errorf("member-dead names %q, want %q", ev.Node, victim.name)
		}
	}

	// Resume past the cursor: nothing new.
	resp2, b2 := getURL(t, ts.URL+"/v1/cluster/events?since="+cursor)
	if resp2.StatusCode != 200 || strings.TrimSpace(string(b2)) != "" {
		t.Errorf("resume past cursor returned %d with body %q", resp2.StatusCode, b2)
	}
	if m := co.Metrics(); m.ClusterEvents != lastSeq {
		t.Errorf("cluster_events metric = %d, want %d", m.ClusterEvents, lastSeq)
	}
}

func typesOf(t *testing.T, ndjson []byte) []telemetry.ClusterEvent {
	t.Helper()
	var out []telemetry.ClusterEvent
	sc := bufio.NewScanner(strings.NewReader(string(ndjson)))
	for sc.Scan() {
		var ev telemetry.ClusterEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

// TestFederatedMetrics: the coordinator re-exposes scraped member
// metrics under a node label, plus scrape-health meta families.
func TestFederatedMetrics(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 2, sims, time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)
	co.CheckNow() // scrape sweep

	resp, b := getURL(t, ts.URL+"/metrics/federate")
	if resp.StatusCode != 200 {
		t.Fatalf("federate read = %d: %s", resp.StatusCode, b)
	}
	body := string(b)
	for _, want := range []string{
		`gspc_jobs_completed_total{node="gspc-1"}`,
		`gspc_jobs_completed_total{node="gspc-2"}`,
		`gspc_federate_scrape_ok{node="gspc-1"} 1`,
		`gspc_federate_scrape_ok{node="gspc-2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	if m := co.Metrics(); m.FederateScrapes < 2 || m.FederateErrors != 0 {
		t.Errorf("federate_scrapes=%d federate_errors=%d", m.FederateScrapes, m.FederateErrors)
	}

	// Disabled federation fails loudly.
	_, ts2 := newTestCoordinator(t, nodes, func(c *Config) {
		c.Name = "gspc-cluster-nofed"
		c.DisableFederation = true
	})
	if resp, _ := getURL(t, ts2.URL+"/metrics/federate"); resp.StatusCode != 404 {
		t.Errorf("disabled federation read = %d, want 404", resp.StatusCode)
	}
}

// TestDebugzFlightRecorder: routing decisions land on the coordinator
// flight recorder and /debugz folds in the cluster timeline tail.
func TestDebugzFlightRecorder(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 2, sims, time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)
	co.CheckNow()
	if resp, b := postJSON(t, ts.URL, `{"experiment":"fig12","apps":["Unigine"]}`); resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}

	resp, b := getURL(t, ts.URL+"/debugz")
	if resp.StatusCode != 200 {
		t.Fatalf("debugz = %d: %s", resp.StatusCode, b)
	}
	var dbg struct {
		Coordinator    string            `json:"coordinator"`
		RingGeneration int64             `json:"ring_generation"`
		TotalEvents    int64             `json:"total_events"`
		Events         []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(b, &dbg); err != nil {
		t.Fatalf("debugz unparseable: %v", err)
	}
	if dbg.Coordinator != co.cfg.Name || dbg.RingGeneration < 1 {
		t.Errorf("debugz identity: %+v", dbg)
	}
	if dbg.TotalEvents == 0 {
		t.Error("flight recorder empty after a routed submit")
	}
	found := false
	for _, ev := range dbg.Events {
		if ev.Type == "route" {
			found = true
			if ev.TraceID == "" {
				t.Error("route flight event lacks trace_id")
			}
		}
	}
	if !found {
		t.Error("no route event on the flight recorder")
	}
}

// TestClockSampling: health checks alone give every member a usable
// clock-offset estimate (the echoed send/receive timestamps).
func TestClockSampling(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 2, sims, time.Millisecond)
	co, _ := newTestCoordinator(t, nodes, nil)
	co.CheckNow()
	for _, name := range co.names {
		m, _ := co.Member(name)
		est := m.offsets.Estimate()
		if est.Samples == 0 {
			t.Errorf("member %s has no clock samples after a health sweep", name)
		}
		if est.Delay <= 0 {
			t.Errorf("member %s offset delay = %v, want positive", name, est.Delay)
		}
	}
}
