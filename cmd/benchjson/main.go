// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, so benchmark runs can be checked in and diffed
// (`make bench PR=N` writes BENCH_PRN.json this way).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x . | benchjson -pr 6 -label after > BENCH.json
//
// Each benchmark line ("BenchmarkFig12-4  3  1101518978 ns/op  0.90 x")
// becomes one entry with ns_per_op, iterations, and every extra reported
// metric keyed by its unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MsPerOp    float64            `json:"ms_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	PR         int              `json:"pr,omitempty"`
	Label      string           `json:"label,omitempty"`
	Go         string           `json:"go,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the output (e.g. a commit or 'seed')")
	pr := flag.Int("pr", 0, "PR number recorded in the output (matches the BENCH_PR<N>.json filename)")
	flag.Parse()

	out := doc{PR: *pr, Label: *label, Benchmarks: map[string]entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix from the name.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iterations: iters}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			unit := f[i+1]
			if unit == "ns/op" {
				e.NsPerOp = v
				e.MsPerOp = v / 1e6
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
		out.Benchmarks[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
