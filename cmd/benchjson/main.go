// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, so benchmark runs can be checked in and diffed
// (`make bench PR=N` writes BENCH_PRN.json this way).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x . | benchjson -pr 6 -label after > BENCH.json
//	benchjson -compare BENCH_A.json BENCH_B.json [-threshold 0.05]
//
// Each benchmark line ("BenchmarkFig12-4  3  1101518978 ns/op  0.90 x")
// becomes one entry with ns_per_op, iterations, and every extra reported
// metric keyed by its unit.
//
// With -compare, the two documents are diffed on ns_per_op per
// benchmark and the exit code is 1 if any benchmark present in both
// regressed by more than -threshold (default 5%). Benchmarks missing
// from either side are reported as warnings, not failures — CI's perf
// gate must fail on slowdowns, not on renames.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MsPerOp    float64            `json:"ms_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	PR         int              `json:"pr,omitempty"`
	Label      string           `json:"label,omitempty"`
	Go         string           `json:"go,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the output (e.g. a commit or 'seed')")
	pr := flag.Int("pr", 0, "PR number recorded in the output (matches the BENCH_PR<N>.json filename)")
	compare := flag.Bool("compare", false, "compare two BENCH json files (baseline, candidate) instead of parsing stdin")
	threshold := flag.Float64("threshold", 0.05, "with -compare: max allowed ns/op regression as a fraction (0.05 = 5%)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline.json candidate.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	out := doc{PR: *pr, Label: *label, Benchmarks: map[string]entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix from the name.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iterations: iters}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			unit := f[i+1]
			if unit == "ns/op" {
				e.NsPerOp = v
				e.MsPerOp = v / 1e6
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
		out.Benchmarks[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func loadDoc(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// runCompare diffs candidate against baseline on ns_per_op and returns
// the process exit code: 0 when every shared benchmark is within the
// regression threshold, 1 when any hot path got slower than allowed,
// 2 when a file is unreadable. Benchmarks that appear on only one side
// warn but never fail — a perf gate that fails on a renamed or newly
// added benchmark teaches people to delete the gate.
func runCompare(basePath, candPath string, threshold float64) int {
	base, err := loadDoc(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cand, err := loadDoc(candPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-36s %16s %16s %9s\n", "benchmark", "base ns/op", "cand ns/op", "delta")
	regressions := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cand.Benchmarks[name]
		if !ok {
			fmt.Printf("%-36s %16.0f %16s %9s  (missing from candidate)\n",
				name, b.NsPerOp, "-", "-")
			continue
		}
		if b.NsPerOp <= 0 {
			fmt.Printf("%-36s %16s %16.0f %9s  (no baseline ns/op)\n",
				name, "-", c.NsPerOp, "-")
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-36s %16.0f %16.0f %+8.1f%%%s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
	}
	var added []string
	for name := range cand.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%-36s %16s %16.0f %9s  (new, no baseline)\n",
			name, "-", cand.Benchmarks[name].NsPerOp, "-")
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%% over %s\n",
			regressions, threshold*100, basePath)
		return 1
	}
	fmt.Printf("ok: no benchmark regressed more than %.1f%%\n", threshold*100)
	return 0
}
