package membudget

import (
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fakeHeap is a settable heap gauge for deterministic ladder tests.
type fakeHeap struct {
	mu sync.Mutex
	v  int64
}

func (f *fakeHeap) set(v int64) { f.mu.Lock(); f.v = v; f.mu.Unlock() }
func (f *fakeHeap) get() int64  { f.mu.Lock(); defer f.mu.Unlock(); return f.v }

func newTestGov(t *testing.T, limit int64, heap *fakeHeap, hold time.Duration) *Governor {
	t.Helper()
	g, err := New(Config{
		Limit:    limit,
		HoldDown: hold,
		Logger:   testLogger(),
		readHeap: heap.get,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestLadderStepsUpImmediately(t *testing.T) {
	heap := &fakeHeap{}
	g := newTestGov(t, 1000, heap, time.Hour)

	if got := g.Evaluate(); got != RungHealthy {
		t.Fatalf("idle rung = %v, want healthy", got)
	}
	// Default watermarks 0.65/0.75/0.85/0.95 of 1000.
	for _, tc := range []struct {
		heap int64
		want Rung
	}{
		{640, RungHealthy},
		{650, RungShrink},
		{750, RungSampled},
		{850, RungStaleOnly},
		{950, RungShed},
	} {
		heap.set(tc.heap)
		if got := g.Evaluate(); got != tc.want {
			t.Errorf("heap %d: rung = %v, want %v", tc.heap, got, tc.want)
		}
	}
	// Multi-rung jump from healthy straight to shed.
	g2 := newTestGov(t, 1000, heap, time.Hour)
	heap.set(990)
	if got := g2.Evaluate(); got != RungShed {
		t.Errorf("jump rung = %v, want shed", got)
	}
	s := g2.Snapshot()
	if s.MaxRung != "shed" || s.RungEntries["shed"] != 1 {
		t.Errorf("snapshot after jump: max=%s entries=%v", s.MaxRung, s.RungEntries)
	}
}

func TestLadderStepsDownOneRungAfterHoldDown(t *testing.T) {
	heap := &fakeHeap{}
	hold := 30 * time.Millisecond
	g := newTestGov(t, 1000, heap, hold)

	heap.set(800) // above 0.75 → sampled
	if got := g.Evaluate(); got != RungSampled {
		t.Fatalf("rung = %v, want sampled", got)
	}
	// Drop well below every step-down bar. The first Evaluate only arms
	// the hold-down; the rung must not move yet.
	heap.set(100)
	if got := g.Evaluate(); got != RungSampled {
		t.Fatalf("rung moved immediately on pressure drop: %v", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Evaluate() != RungShrink {
		if time.Now().After(deadline) {
			t.Fatal("never stepped down to shrink")
		}
		time.Sleep(hold / 4)
	}
	// One rung at a time: immediately after reaching shrink, the next
	// evaluation must not already be healthy (its hold-down re-arms).
	if got := g.Evaluate(); got != RungShrink {
		t.Fatalf("stepped two rungs in one hold-down: %v", got)
	}
	for g.Evaluate() != RungHealthy {
		if time.Now().After(deadline) {
			t.Fatal("never recovered to healthy")
		}
		time.Sleep(hold / 4)
	}
}

func TestHysteresisBlocksStepDown(t *testing.T) {
	heap := &fakeHeap{}
	hold := 10 * time.Millisecond
	g := newTestGov(t, 1000, heap, hold)

	heap.set(700) // shrink (watermark 0.65)
	if got := g.Evaluate(); got != RungShrink {
		t.Fatalf("rung = %v, want shrink", got)
	}
	// 0.62 is below the 0.65 watermark but inside the 0.05 hysteresis
	// band: the ladder must hold at shrink indefinitely.
	heap.set(620)
	for i := 0; i < 10; i++ {
		if got := g.Evaluate(); got != RungShrink {
			t.Fatalf("stepped down inside the hysteresis band: %v", got)
		}
		time.Sleep(hold / 2)
	}
}

func TestAccountedBytesDrivePressureWithoutHeap(t *testing.T) {
	heap := &fakeHeap{} // heap stays 0: accounting alone must degrade
	g := newTestGov(t, 1000, heap, time.Hour)

	var cacheBytes int64 = 500
	g.RegisterSource("cache", func() int64 { return cacheBytes })
	g.Reserve(300) // accounted = 800 → sampled
	if got := g.Rung(); got != RungSampled {
		t.Fatalf("rung after reserve = %v, want sampled", got)
	}
	s := g.Snapshot()
	if s.AccountedBytes != 800 || s.InflightBytes != 300 || s.Sources["cache"] != 500 {
		t.Errorf("snapshot accounting: %+v", s)
	}
	g.Release(300)
	// Release re-evaluates but step-down still needs the hold: rung
	// stays sampled under the hour-long hold-down.
	if got := g.Rung(); got != RungSampled {
		t.Errorf("rung after release = %v, want sampled (hold-down)", got)
	}
	if s := g.Snapshot(); s.InflightBytes != 0 {
		t.Errorf("inflight after release = %d", s.InflightBytes)
	}
}

func TestReserveReleaseNeverNegative(t *testing.T) {
	heap := &fakeHeap{}
	g := newTestGov(t, 1000, heap, time.Hour)
	g.Release(500)
	if s := g.Snapshot(); s.InflightBytes != 0 {
		t.Errorf("inflight went negative: %d", s.InflightBytes)
	}
}

func TestSubscribersSeeTransitions(t *testing.T) {
	heap := &fakeHeap{}
	g := newTestGov(t, 1000, heap, time.Hour)

	var mu sync.Mutex
	var seen []string
	g.Subscribe(func(from, to Rung) {
		mu.Lock()
		seen = append(seen, from.String()+"->"+to.String())
		mu.Unlock()
	})
	heap.set(700)
	g.Evaluate()
	heap.set(990)
	g.Evaluate()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"healthy->shrink", "shrink->shed"}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Errorf("transitions = %v, want %v", seen, want)
	}
}

func TestShrinkBudget(t *testing.T) {
	heap := &fakeHeap{}
	hold := 10 * time.Millisecond
	g := newTestGov(t, 1000, heap, hold)

	var mu sync.Mutex
	budget := int64(-1)
	setter := budgetFunc(func(b int64) { mu.Lock(); budget = b; mu.Unlock() })
	g.ShrinkBudget(setter, 400, 100)

	heap.set(700)
	g.Evaluate()
	mu.Lock()
	if budget != 100 {
		t.Errorf("budget under pressure = %d, want 100", budget)
	}
	mu.Unlock()

	// A further step up must not re-fire the shrink (already engaged).
	heap.set(990)
	g.Evaluate()

	heap.set(0)
	deadline := time.Now().Add(5 * time.Second)
	for g.Evaluate() != RungHealthy {
		if time.Now().After(deadline) {
			t.Fatal("never recovered")
		}
		time.Sleep(hold / 2)
	}
	mu.Lock()
	if budget != 400 {
		t.Errorf("budget after recovery = %d, want 400", budget)
	}
	mu.Unlock()
}

// budgetFunc adapts a func to BudgetSetter.
type budgetFunc func(int64)

func (f budgetFunc) SetBudget(b int64) { f(b) }

func TestHeapBaselineAdjustment(t *testing.T) {
	heap := &fakeHeap{}
	g, err := New(Config{
		Limit:        1000,
		HeapBaseline: 10_000,
		Logger:       testLogger(),
		readHeap:     heap.get,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	heap.set(10_500) // adjusted 500 → healthy
	if got := g.Evaluate(); got != RungHealthy {
		t.Errorf("rung = %v, want healthy (baseline-adjusted)", got)
	}
	heap.set(10_990) // adjusted 990 → shed
	if got := g.Evaluate(); got != RungShed {
		t.Errorf("rung = %v, want shed", got)
	}
	if s := g.Snapshot(); s.HeapHighWater != 990 {
		t.Errorf("heap high water = %d, want 990", s.HeapHighWater)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Limit: 0}); err == nil {
		t.Error("Limit 0 accepted")
	}
	if _, err := New(Config{Limit: 100, Watermarks: [4]float64{0.9, 0.8, 0.85, 0.95}}); err == nil {
		t.Error("non-ascending watermarks accepted")
	}
}

func TestPollLoop(t *testing.T) {
	heap := &fakeHeap{}
	g, err := New(Config{
		Limit:    1000,
		Poll:     5 * time.Millisecond,
		Logger:   testLogger(),
		readHeap: heap.get,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Close()
	heap.set(990)
	deadline := time.Now().Add(5 * time.Second)
	for g.Rung() != RungShed {
		if time.Now().After(deadline) {
			t.Fatal("poll loop never advanced the ladder")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSnapshotResidency(t *testing.T) {
	heap := &fakeHeap{}
	g := newTestGov(t, 1000, heap, time.Hour)
	g.Evaluate()
	time.Sleep(20 * time.Millisecond)
	s := g.Snapshot()
	if s.RungSeconds["healthy"] <= 0 {
		t.Errorf("healthy residency = %v, want > 0", s.RungSeconds["healthy"])
	}
	if s.Rung != "healthy" || s.RungLevel != 0 {
		t.Errorf("rung = %s/%d", s.Rung, s.RungLevel)
	}
}
