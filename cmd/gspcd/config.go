package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"gspc/internal/harness"
	"gspc/internal/service"
)

// options holds every gspcd flag after parsing and validation, so the
// parse/validate path is testable without exec'ing the binary.
type options struct {
	addr        string
	queue       int
	workers     int
	simWorkers  int
	cacheSize   int
	cachePolicy string
	drain       time.Duration

	jobTimeout   time.Duration
	maxRetries   int
	backoff      time.Duration
	brkThresh    int
	brkCooldown  time.Duration
	serveStale   bool
	escalate     bool
	maxWork      float64
	exposeStacks bool
	traceCacheMB int64

	memLimitMB   int64
	maxRequestMB int64
	sloP50       time.Duration
	sloP99       time.Duration
	sloObjective float64

	dataDir       string
	fsync         bool
	snapshotEvery int

	logFormat    string
	traceEvery   int
	flightEvents int
	debugAddr    string
	nodeName     string
	version      bool

	// explicit records which flags the command line actually set, for
	// validations of the form "-fsync without -data-dir".
	explicit map[string]bool
}

// parseFlags parses args (not including the program name) and
// validates the result. Errors are usage errors: the caller should
// print them and exit 2.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("gspcd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.queue, "queue", 64, "job queue depth (beyond this, POSTs get 429)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent experiment runners (0 = GOMAXPROCS)")
	fs.IntVar(&o.simWorkers, "sim-workers", 0, "default per-experiment trace-synthesis workers for requests that leave it unset (0 = harness default)")
	fs.IntVar(&o.cacheSize, "cache-entries", 128, "result cache capacity in entries (0 disables)")
	fs.StringVar(&o.cachePolicy, "cache-policy", "lru", "result cache eviction policy: "+strings.Join(service.CachePolicyNames(), "|"))
	fs.DurationVar(&o.drain, "drain-timeout", 5*time.Minute, "max time to drain in-flight jobs on shutdown")

	fs.DurationVar(&o.jobTimeout, "job-timeout", 0, "engine-wide per-job deadline; request timeout_ms can only tighten it (0 = none)")
	fs.IntVar(&o.maxRetries, "max-retries", 2, "retries for transient failures (-1 disables)")
	fs.DurationVar(&o.backoff, "retry-backoff", 50*time.Millisecond, "base retry backoff; attempt k waits base*2^k with jitter")
	fs.IntVar(&o.brkThresh, "breaker-threshold", 5, "consecutive failures before an experiment's circuit breaker opens (-1 disables)")
	fs.DurationVar(&o.brkCooldown, "breaker-cooldown", 30*time.Second, "how long an open breaker fast-fails before probing")
	fs.BoolVar(&o.serveStale, "serve-stale", false, "while a breaker is open, answer with the experiment's last good result instead of 503")
	fs.BoolVar(&o.escalate, "escalate-sampled", false, "after answering a sampled-fidelity request, run its exact twin in the background and upgrade the cached entry")
	fs.Float64Var(&o.maxWork, "max-work", 0, "admission ceiling in frame-equivalents (frames × scale²) per request (0 = unlimited)")
	fs.BoolVar(&o.exposeStacks, "expose-stacks", false, "include recovered panic stacks in GET /v1/runs/{id} responses (debugging aid; stacks are always logged server-side)")
	fs.Int64Var(&o.traceCacheMB, "trace-cache-mb", harness.DefaultTraceCacheBytes>>20, "byte budget of the shared frame-trace cache in MiB (0 disables retention; synthesis is still deduplicated)")
	fs.Int64Var(&o.memLimitMB, "mem-limit-mb", 0, "process memory budget in MiB: arms the degradation ladder (shrink caches → force sampled → stale-only → shed) and the Go soft memory limit (0 disables)")
	fs.Int64Var(&o.maxRequestMB, "mem-max-request-mb", 0, "per-request ceiling on estimated in-flight trace memory in MiB (0 = unlimited)")
	fs.DurationVar(&o.sloP50, "slo-p50", 0, "default per-experiment p50 latency target, reported in /metrics (0 disables)")
	fs.DurationVar(&o.sloP99, "slo-p99", 0, "default per-experiment p99 latency target; completions above it burn the error budget (0 disables)")
	fs.Float64Var(&o.sloObjective, "slo-objective", 0.99, "SLO objective: the fraction of jobs that must meet the p99 target (with -slo-p99)")

	fs.StringVar(&o.dataDir, "data-dir", "", "directory for the write-ahead journal and snapshots; empty runs in-memory only")
	fs.BoolVar(&o.fsync, "fsync", true, "fsync the journal after every record (requires -data-dir; turning it off risks losing the newest records on power failure)")
	fs.IntVar(&o.snapshotEvery, "snapshot-every", 256, "journal records between snapshot compactions (requires -data-dir)")

	fs.StringVar(&o.logFormat, "log-format", "text", "structured log format: text|json")
	fs.IntVar(&o.traceEvery, "trace-every", 1, "span-trace every Nth job (1 = all, -1 disables; GET /v1/runs/{id}/trace)")
	fs.IntVar(&o.flightEvents, "flight-events", 0, "flight recorder ring size served at /debugz (0 = default 256)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof profiling (empty disables)")
	fs.StringVar(&o.nodeName, "node-name", "", "cluster member name stamped on every response as X-Gspc-Node (empty disables)")
	fs.BoolVar(&o.version, "version", false, "print build information and exit")

	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	o.explicit = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.explicit[f.Name] = true })
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects configurations the engine would either refuse or
// silently reinterpret; the daemon fails fast instead.
func (o *options) validate() error {
	if o.queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", o.queue)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must not be negative, got %d", o.workers)
	}
	if o.simWorkers < 0 {
		return fmt.Errorf("-sim-workers must not be negative, got %d", o.simWorkers)
	}
	if o.cacheSize < 0 {
		return fmt.Errorf("-cache-entries must not be negative, got %d (0 disables the cache)", o.cacheSize)
	}
	if !validPolicy(o.cachePolicy) {
		return fmt.Errorf("-cache-policy %q unknown; choose one of %s",
			o.cachePolicy, strings.Join(service.CachePolicyNames(), "|"))
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %s", o.drain)
	}
	if o.maxRetries < -1 {
		return fmt.Errorf("-max-retries must be -1 (disabled) or more, got %d", o.maxRetries)
	}
	if o.brkThresh < -1 {
		return fmt.Errorf("-breaker-threshold must be -1 (disabled) or more, got %d", o.brkThresh)
	}
	if o.traceCacheMB < 0 {
		return fmt.Errorf("-trace-cache-mb must not be negative, got %d", o.traceCacheMB)
	}
	if o.memLimitMB < 0 {
		return fmt.Errorf("-mem-limit-mb must not be negative, got %d (0 disables the governor)", o.memLimitMB)
	}
	if o.maxRequestMB < 0 {
		return fmt.Errorf("-mem-max-request-mb must not be negative, got %d (0 = unlimited)", o.maxRequestMB)
	}
	if o.sloP50 < 0 || o.sloP99 < 0 {
		return fmt.Errorf("-slo-p50/-slo-p99 must not be negative")
	}
	if o.sloObjective <= 0 || o.sloObjective >= 1 {
		return fmt.Errorf("-slo-objective must be in (0, 1), got %g", o.sloObjective)
	}
	if o.explicit["slo-objective"] && !o.explicit["slo-p99"] {
		return fmt.Errorf("-slo-objective requires -slo-p99")
	}
	if o.snapshotEvery < 1 {
		return fmt.Errorf("-snapshot-every must be at least 1, got %d", o.snapshotEvery)
	}
	if o.dataDir == "" {
		for _, name := range []string{"fsync", "snapshot-every"} {
			if o.explicit[name] {
				return fmt.Errorf("-%s requires -data-dir", name)
			}
		}
	}
	if o.logFormat != "text" && o.logFormat != "json" {
		return fmt.Errorf("-log-format %q unknown; choose text or json", o.logFormat)
	}
	if o.traceEvery == 0 || o.traceEvery < -1 {
		return fmt.Errorf("-trace-every must be positive or -1 (disabled), got %d", o.traceEvery)
	}
	if o.flightEvents < 0 {
		return fmt.Errorf("-flight-events must not be negative, got %d", o.flightEvents)
	}
	return nil
}

func validPolicy(name string) bool {
	for _, p := range service.CachePolicyNames() {
		if name == p {
			return true
		}
	}
	return false
}

// engineConfig translates the validated flags into a service.Config.
func (o *options) engineConfig() service.Config {
	cfg := service.Config{
		QueueDepth:       o.queue,
		Workers:          o.workers,
		CacheEntries:     o.cacheSize,
		CachePolicy:      o.cachePolicy,
		JobTimeout:       o.jobTimeout,
		MaxRetries:       o.maxRetries,
		RetryBackoff:     o.backoff,
		BreakerThreshold: o.brkThresh,
		BreakerCooldown:  o.brkCooldown,
		ServeStale:       o.serveStale,
		EscalateSampled:  o.escalate,
		MaxWork:          o.maxWork,
		ExposeStacks:     o.exposeStacks,

		DataDir:       o.dataDir,
		Fsync:         o.fsync,
		SnapshotEvery: o.snapshotEvery,

		TraceEvery:      o.traceEvery,
		FlightEvents:    o.flightEvents,
		MaxRequestBytes: o.maxRequestMB << 20,
	}
	// A validated cacheSize is never negative, so the engine's
	// "negative means default" fallback is unreachable from the CLI:
	// 0 disables, anything else is the exact capacity.
	return cfg
}
