package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"gspc/internal/stream"
	"gspc/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	in := []stream.Access{
		{Addr: 0x1234, Kind: stream.Z, Write: true},
		{Addr: 0xdeadbeef, Kind: stream.Texture},
		{Addr: 0, Kind: stream.Display, Write: true},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Addr != in[i].Addr || out[i].Kind != in[i].Kind || out[i].Write != in[i].Write {
			t.Errorf("record %d: %+v != %+v", i, out[i], in[i])
		}
		if out[i].Seq != int64(i) {
			t.Errorf("record %d seq = %d", i, out[i].Seq)
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty roundtrip: %v, %d records", err, len(out))
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOTATRACE_______")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []stream.Access{{Addr: 1}, {Addr: 2}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, err := Read(bytes.NewReader(raw[:len(raw)-3]))
	if err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestInvalidKindRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []stream.Access{{Addr: 1, Kind: stream.Z}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 0x5f // kind 31, invalid
	_, err := Read(bytes.NewReader(raw))
	if err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, kinds []byte, writes []bool) bool {
		in := make([]stream.Access, len(addrs))
		for i, ad := range addrs {
			in[i].Addr = uint64(ad)
			if i < len(kinds) {
				in[i].Kind = stream.Kind(kinds[i] % byte(stream.NumKinds))
			}
			in[i].Write = i < len(writes) && writes[i]
		}
		var buf bytes.Buffer
		if Write(&buf, in) != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Addr != in[i].Addr || out[i].Kind != in[i].Kind || out[i].Write != in[i].Write {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenerateFrameDeterministic(t *testing.T) {
	j := workload.Suite()[3]
	a := GenerateFrame(j, 0.1)
	b := GenerateFrame(j, 0.1)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestGenerateFrameSeqAssigned(t *testing.T) {
	j := workload.Suite()[0]
	tr := GenerateFrame(j, 0.1)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	for i, a := range tr {
		if a.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, a.Seq)
		}
		if !a.Kind.Valid() {
			t.Fatalf("invalid kind at %d", i)
		}
	}
}

func TestGenerateFrameHasAllMajorStreams(t *testing.T) {
	j := workload.Suite()[0]
	tr := GenerateFrame(j, 0.15)
	var counts [stream.NumKinds]int
	for _, a := range tr {
		counts[a.Kind]++
	}
	for _, k := range []stream.Kind{stream.Vertex, stream.HiZ, stream.Z, stream.RT, stream.Texture, stream.Display} {
		if counts[k] == 0 {
			t.Errorf("stream %v absent from generated trace", k)
		}
	}
	// The two dominant streams of Figure 4 must dominate here too.
	tot := len(tr)
	if counts[stream.RT]+counts[stream.Texture] < tot/2 {
		t.Errorf("rt+texture = %d of %d accesses; expected the majority", counts[stream.RT]+counts[stream.Texture], tot)
	}
}

func TestCollector(t *testing.T) {
	c := &Collector{}
	c.Emit(stream.Access{Addr: 5})
	c.Emit(stream.Access{Addr: 6})
	if len(c.Accesses) != 2 || c.Accesses[1].Addr != 6 {
		t.Errorf("collector = %+v", c.Accesses)
	}
}

func TestHugeCountHeaderFailsFast(t *testing.T) {
	// A header claiming billions of records over a tiny body must error
	// quickly without attempting a giant allocation.
	var buf bytes.Buffer
	buf.Write([]byte("GSPCTRC1"))
	var hdr [8]byte
	hdr[3] = 0x40 // ~1 billion records
	buf.Write(hdr[:])
	buf.WriteString("short body")
	if _, err := Read(&buf); err == nil {
		t.Fatal("truncated huge-count trace accepted")
	}
}
