package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/harness"
	"gspc/internal/telemetry"
)

// promLine matchers for the text exposition format (version 0.0.4).
var (
	promHelp   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promType   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)
)

// TestPromExpositionFormat drives a few jobs through the engine and
// then validates the /metrics body line by line against the exposition
// grammar — every line is a HELP comment, a TYPE comment, or a sample.
func TestPromExpositionFormat(t *testing.T) {
	boom := errors.New("invalid thing")
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8,
		Run: func(_ context.Context, r Request) (*harness.Result, error) {
			if r.Experiment == "fig4" {
				return nil, &BadRequestError{Reason: boom.Error()}
			}
			return &harness.Result{Experiment: r.Experiment, Title: "stub"}, nil
		}})
	ctx := context.Background()
	if _, err := e.Do(ctx, Request{Experiment: "fig12"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(ctx, Request{Experiment: "fig12"}); err != nil { // cache hit
		t.Fatal(err)
	}

	body := string(e.PromExposition())
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	types := map[string]string{}
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			if !promHelp.MatchString(ln) {
				t.Errorf("line %d: malformed HELP: %q", i+1, ln)
			}
		case strings.HasPrefix(ln, "# TYPE "):
			if !promType.MatchString(ln) {
				t.Errorf("line %d: malformed TYPE: %q", i+1, ln)
			}
			f := strings.Fields(ln)
			types[f[2]] = f[3]
		default:
			if !promSample.MatchString(ln) {
				t.Errorf("line %d: malformed sample: %q", i+1, ln)
			}
		}
	}
	for _, want := range []struct{ name, typ string }{
		{"gspc_uptime_seconds", "gauge"},
		{"gspc_requests_total", "counter"},
		{"gspc_jobs_completed_total", "counter"},
		{"gspc_result_cache_hits_total", "counter"},
		{"gspc_queue_depth", "gauge"},
		{"gspc_job_duration_seconds", "histogram"},
		{"gspc_trace_cache_bytes", "gauge"},
		{"gspc_stage_busy_ms_total", "counter"},
		{"gspc_llc_stream_accesses_total", "counter"},
		{"gspc_dram_row_hits_total", "counter"},
	} {
		if got := types[want.name]; got != want.typ {
			t.Errorf("family %s has type %q, want %q", want.name, got, want.typ)
		}
	}
	if !strings.Contains(body, "gspc_requests_total 2\n") {
		t.Errorf("requests_total should be 2:\n%s", body)
	}
	if !strings.Contains(body, "gspc_result_cache_hits_total 1\n") {
		t.Errorf("cache hits should be 1:\n%s", body)
	}
	// Histogram invariants: buckets cumulative and ending at +Inf == count.
	var bucketVals []float64
	var count float64 = -1
	for _, ln := range lines {
		var v float64
		if n, _ := fmt.Sscanf(ln, "gspc_job_duration_seconds_count %g", &v); n == 1 {
			count = v
		}
		if strings.HasPrefix(ln, "gspc_job_duration_seconds_bucket{") {
			fields := strings.Fields(ln)
			fmt.Sscanf(fields[len(fields)-1], "%g", &v)
			bucketVals = append(bucketVals, v)
		}
	}
	if count != 1 {
		t.Errorf("histogram count = %g, want 1 (one computed job)", count)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Errorf("histogram buckets not cumulative: %v", bucketVals)
		}
	}
	if len(bucketVals) == 0 || bucketVals[len(bucketVals)-1] != count {
		t.Errorf("+Inf bucket %v != count %g", bucketVals, count)
	}
}

func TestPromHTTPContentType(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Run: countingRunner(new(int64))})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, telemetry.ContentType)
	}
}

// traceDoc mirrors the Chrome trace-event JSON schema for decoding.
type traceDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   *float64          `json:"ts"`
		Dur  *float64          `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// TestTraceEndpoint runs a job and fetches its trace, checking the
// document is schema-valid and contains the engine's spans.
func TestTraceEndpoint(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(new(int64))})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()

	rep, err := e.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e.JobStatus(rep.RunID)
	if !ok || st.TraceID == "" {
		t.Fatalf("job %s has no trace id (default TraceEvery=1 should trace it)", rep.RunID)
	}

	resp, err := http.Get(srv.URL + "/v1/runs/" + rep.RunID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d, want 200", resp.StatusCode)
	}
	var doc traceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if doc.OtherData["trace_id"] != st.TraceID {
		t.Errorf("trace_id = %q, want %q", doc.OtherData["trace_id"], st.TraceID)
	}
	if doc.OtherData["run_id"] != rep.RunID {
		t.Errorf("run_id = %q, want %q", doc.OtherData["run_id"], rep.RunID)
	}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d phase %q, want X (complete)", i, ev.Ph)
		}
		if ev.Name == "" || ev.TS == nil || ev.Dur == nil {
			t.Errorf("event %d missing required fields: %+v", i, ev)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"queue-wait", "attempt-1"} {
		if !names[want] {
			t.Errorf("trace lacks %q span; have %v", want, names)
		}
	}
}

func TestTraceEndpoint404s(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, TraceEvery: -1, Run: countingRunner(new(int64))})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Error
	}

	code, msg := get("/v1/runs/run-999999/trace")
	if code != http.StatusNotFound || !strings.Contains(msg, "unknown run id") {
		t.Errorf("unknown id: %d %q, want 404 unknown run id", code, msg)
	}

	rep, err := e.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := e.JobStatus(rep.RunID); st.TraceID != "" {
		t.Fatalf("TraceEvery=-1 still traced job %s", rep.RunID)
	}
	code, msg = get("/v1/runs/" + rep.RunID + "/trace")
	if code != http.StatusNotFound || !strings.Contains(msg, "not traced") {
		t.Errorf("untraced run: %d %q, want 404 explaining sampling", code, msg)
	}
}

func TestTraceSampling(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 0, TraceEvery: 2,
		Run: countingRunner(new(int64))})
	var traced, untraced int
	for i := 0; i < 4; i++ {
		rep, err := e.Do(context.Background(), Request{Experiment: "fig12", Frames: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := e.JobStatus(rep.RunID); st.TraceID != "" {
			traced++
		} else {
			untraced++
		}
	}
	if traced != 2 || untraced != 2 {
		t.Errorf("TraceEvery=2 over 4 jobs traced %d / skipped %d, want 2/2", traced, untraced)
	}
}

// TestTracePersistedToDisk checks a durable engine writes the trace
// document beside the journal and that the bytes on disk are the same
// schema-valid JSON the endpoint serves.
func TestTracePersistedToDisk(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, Config{Workers: 1, DataDir: dir, Fsync: false,
		Run: countingRunner(new(int64))})
	rep, err := e.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "traces", rep.RunID+".json"))
	if err != nil {
		t.Fatalf("trace file not persisted: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("persisted trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("persisted trace has no events")
	}
}

func TestDebugzFlightRecorder(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 0, Run: countingRunner(new(int64))})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()
	if _, err := e.Do(context.Background(), Request{Experiment: "fig12"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/debugz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		TotalEvents int64             `json:"total_events"`
		Events      []telemetry.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TotalEvents < 3 {
		t.Errorf("total_events = %d, want >= 3 (submit, start, done)", body.TotalEvents)
	}
	types := map[string]bool{}
	for _, ev := range body.Events {
		types[ev.Type] = true
	}
	for _, want := range []string{"submit", "start", "done"} {
		if !types[want] {
			t.Errorf("flight recorder lacks %q event; have %v", want, types)
		}
	}
	// Lifecycle events of a traced job carry its trace id for correlation.
	for _, ev := range body.Events {
		if ev.Type == "done" && ev.TraceID == "" {
			t.Error("done event lacks trace_id")
		}
	}
}

func TestVersionz(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Run: countingRunner(new(int64))})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/versionz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b telemetry.Build
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.GoVersion == "" {
		t.Error("versionz reports empty go_version")
	}
	if b.Module != "gspc" {
		t.Errorf("versionz module = %q, want gspc", b.Module)
	}
}

// TestObservabilityHammer scrapes every observability surface while
// jobs complete, fail, and panic concurrently. Run under -race this is
// the data-race proof for the whole telemetry path.
func TestObservabilityHammer(t *testing.T) {
	var n atomic.Int64
	e := newTestEngine(t, Config{
		Workers: 4, CacheEntries: 4, KeepFinished: 16,
		MaxRetries: -1, BreakerThreshold: 100, FlightEvents: 32,
		Run: func(_ context.Context, r Request) (*harness.Result, error) {
			switch n.Add(1) % 3 {
			case 0:
				return nil, errors.New("transient explosion")
			case 1:
				panic("chaos")
			}
			return &harness.Result{Experiment: r.Experiment, Title: "stub"}, nil
		}})
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ids sync.Map // recent run ids for the trace scraper

	// Submitters: distinct requests so nothing coalesces away.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := e.Do(context.Background(),
					Request{Experiment: "fig12", Frames: g*1000 + i + 1})
				if err == nil {
					ids.Store(rep.RunID, true)
				}
			}
		}(g)
	}
	// Scrapers: every observability surface, as fast as possible.
	scrape := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	get := func(path string) {
		resp, err := http.Get(srv.URL + path)
		if err == nil {
			resp.Body.Close()
		}
	}
	scrape(func() { e.PromExposition() })
	scrape(func() { e.Metrics() })
	scrape(func() { e.FlightEvents() })
	scrape(func() { get("/metrics") })
	scrape(func() { get("/debugz") })
	scrape(func() {
		ids.Range(func(k, _ any) bool {
			if b, ok := e.TraceJSON(k.(string)); ok {
				var doc traceDoc
				if err := json.Unmarshal(b, &doc); err != nil {
					t.Errorf("trace %s invalid mid-flight: %v", k, err)
				}
			}
			get("/v1/runs/" + k.(string) + "/trace")
			return true
		})
	})

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	m := e.Metrics()
	if m.Completed == 0 || m.Failed == 0 || m.Panics == 0 {
		t.Errorf("hammer did not exercise all outcomes: %d completed / %d failed / %d panics",
			m.Completed, m.Failed, m.Panics)
	}
}
