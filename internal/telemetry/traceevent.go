package telemetry

import (
	"encoding/json"
	"sort"
	"strconv"
	"time"
)

// TraceEvent is one entry of the Chrome trace-event format ("X" =
// complete event), loadable by chrome://tracing and ui.perfetto.dev.
// Timestamps and durations are microseconds, per the format spec.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceDoc is the JSON object form of the trace-event format.
type TraceDoc struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// JSON renders the document. Marshalling TraceEvent cannot fail (all
// fields are strings/numbers/maps of strings), so the error is elided.
func (d *TraceDoc) JSON() []byte {
	b, _ := json.Marshal(d)
	return b
}

// Export converts the run's spans into a trace-event document. Spans
// are assigned to lanes (trace tids) so the viewer renders them
// correctly: spans on one lane either nest or are disjoint, and
// concurrently overlapping spans — fan-out policy replays inside one
// frame — spread across lanes.
func (r *Run) Export(meta map[string]string) *TraceDoc {
	spans := r.Snapshot()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur // parents before their children
	})
	lanes := assignLanes(spans)
	doc := &TraceDoc{
		TraceEvents:     make([]TraceEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{},
	}
	for k, v := range meta {
		doc.OtherData[k] = v
	}
	if r != nil {
		doc.OtherData["trace_id"] = r.TraceID
		// The absolute anchor lets a remote stitcher rebase these relative
		// timestamps onto its own clock (after offset correction).
		doc.OtherData["anchor_unix_ns"] = strconv.FormatInt(r.anchor.UnixNano(), 10)
		if r.ParentSpan != "" {
			doc.OtherData["parent_span"] = r.ParentSpan
		}
		if d := r.Dropped(); d > 0 {
			doc.OtherData["dropped_spans"] = strconv.FormatInt(d, 10)
		}
	}
	for i, sp := range spans {
		ev := TraceEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  lanes[i],
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return doc
}

// assignLanes greedily places start-sorted spans onto lanes such that
// any two spans sharing a lane either nest (the viewer draws the child
// inside the parent) or are disjoint. Each lane keeps a stack of open
// interval end times; a span fits a lane when, after popping intervals
// that ended before it starts, the lane is empty or its innermost open
// interval fully contains the span.
func assignLanes(spans []SpanRecord) []int {
	out := make([]int, len(spans))
	var lanes [][]time.Duration // per lane: stack of open end times
	for i, sp := range spans {
		start, end := sp.Start, sp.Start+sp.Dur
		placed := false
		for l := range lanes {
			st := lanes[l]
			for len(st) > 0 && st[len(st)-1] <= start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || st[len(st)-1] >= end {
				lanes[l] = append(st, end)
				out[i] = l
				placed = true
				break
			}
			lanes[l] = st
		}
		if !placed {
			lanes = append(lanes, []time.Duration{end})
			out[i] = len(lanes) - 1
		}
	}
	return out
}
