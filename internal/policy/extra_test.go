package policy

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

func TestDIPHitPromotes(t *testing.T) {
	p := NewDIP()
	c := oneSet(4, p)
	for i := 0; i < 4; i++ {
		c.Access(stream.Access{Addr: blockAddr(i)})
	}
	c.Access(stream.Access{Addr: blockAddr(0)}) // promote 0 to MRU
	c.Access(stream.Access{Addr: blockAddr(4)}) // evict the LRU (1)
	if _, _, ok := c.Lookup(blockAddr(0)); !ok {
		t.Error("promoted block evicted")
	}
	if _, _, ok := c.Lookup(blockAddr(1)); ok {
		t.Error("LRU block survived")
	}
}

func TestDIPBimodalLeaderInsertsAtLRU(t *testing.T) {
	p := NewDIP()
	p.Reset(64, 4)
	// In the BIP leader set (33), fills land at the LRU position, so a
	// block only survives eviction pressure if it is promoted by a hit.
	for w := 0; w < 4; w++ {
		p.Fill(33, w, stream.Access{})
	}
	p.Hit(33, 2, stream.Access{}) // promote way 2 to MRU
	v := p.Victim(33, stream.Access{})
	if v == 2 {
		t.Error("promoted block chosen as victim in BIP leader")
	}
	// All other blocks are unpromoted LIP inserts: victims before way 2.
	for i := 0; i < 3; i++ {
		v := p.Victim(33, stream.Access{})
		if v == 2 {
			t.Fatal("promoted block victimized while LIP blocks remain")
		}
		p.Evict(33, v)
		p.Fill(33, v, stream.Access{Kind: stream.Z})
	}
}

func TestDIPDuelConverges(t *testing.T) {
	p := NewDIP()
	p.Reset(64, 4)
	start := p.PSEL()
	for i := 0; i < 50; i++ {
		p.Fill(0, i%4, stream.Access{}) // misses in MRU-insertion leader
	}
	if p.PSEL() <= start {
		t.Error("PSEL did not move toward BIP after MRU-leader misses")
	}
}

func TestDIPFuzz(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 64, Ways: 4, BlockSize: 64}, NewDIP())
		for _, ad := range addrs {
			c.Access(stream.Access{Addr: uint64(ad) * 64})
		}
		return c.Stats.Accesses == c.Stats.Hits+c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeLIFOPrefersDeadTopOfStack(t *testing.T) {
	p := NewPeLIFO()
	c := oneSet(4, p)
	for i := 0; i < 4; i++ {
		c.Access(stream.Access{Addr: blockAddr(i)})
	}
	// Reuse blocks 2 and 3 so they escape; 0 and 1 are dead, with 3's
	// fill being the most recent dead... actually 1 is shallower than 0.
	c.Access(stream.Access{Addr: blockAddr(2)})
	c.Access(stream.Access{Addr: blockAddr(3)})
	c.Access(stream.Access{Addr: blockAddr(4)})
	// Victim must be one of the dead blocks (0 or 1), not 2 or 3.
	if _, _, ok := c.Lookup(blockAddr(2)); !ok {
		t.Error("escaped block 2 was evicted")
	}
	if _, _, ok := c.Lookup(blockAddr(3)); !ok {
		t.Error("escaped block 3 was evicted")
	}
}

func TestPeLIFOFallbackWhenAllEscaped(t *testing.T) {
	p := NewPeLIFO()
	c := oneSet(2, p)
	c.Access(stream.Access{Addr: blockAddr(0)})
	c.Access(stream.Access{Addr: blockAddr(1)})
	c.Access(stream.Access{Addr: blockAddr(0)})
	c.Access(stream.Access{Addr: blockAddr(1)})
	// Both escaped; a fill must still find a victim.
	c.Access(stream.Access{Addr: blockAddr(2)})
	if c.Occupancy() != 2 {
		t.Error("cache corrupted after all-escaped eviction")
	}
}

func TestCounterDBPLearnsLifetimes(t *testing.T) {
	p := NewCounterDBP()
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 2, Ways: 2, BlockSize: 64}, p)
	// Single-use texture blocks streaming through: learned lifetime
	// should settle near 1.
	for i := 0; i < 200; i++ {
		c.Access(stream.Access{Addr: uint64(i) * 64, Kind: stream.Texture})
	}
	if lt := p.LearnedLifetime(stream.Texture); lt > 1.6 {
		t.Errorf("texture lifetime = %v, want ~1 for single-use blocks", lt)
	}
}

func TestCounterDBPProtectsLiveStream(t *testing.T) {
	p := NewCounterDBP()
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4, Ways: 4, BlockSize: 64}, p)
	// Z blocks 0..2 are hot (many touches); texture blocks stream.
	for rep := 0; rep < 50; rep++ {
		for z := 0; z < 3; z++ {
			c.Access(stream.Access{Addr: uint64(z) * 64, Kind: stream.Z})
		}
		c.Access(stream.Access{Addr: uint64(100+rep) * 64, Kind: stream.Texture})
	}
	// The hot Z blocks should enjoy a high hit rate despite the stream.
	if hr := c.Stats.KindHitRate(stream.Z); hr < 0.8 {
		t.Errorf("hot Z hit rate = %v under dead block prediction", hr)
	}
}

func TestExtraPoliciesFuzz(t *testing.T) {
	mk := []func() cachesim.Policy{
		func() cachesim.Policy { return NewDIP() },
		func() cachesim.Policy { return NewPeLIFO() },
		func() cachesim.Policy { return NewCounterDBP() },
	}
	f := func(addrs []uint16, kinds []byte) bool {
		for _, m := range mk {
			c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 16, Ways: 4, BlockSize: 64}, m())
			for i, ad := range addrs {
				k := stream.Other
				if i < len(kinds) {
					k = stream.Kind(kinds[i] % byte(stream.NumKinds))
				}
				c.Access(stream.Access{Addr: uint64(ad) * 32, Kind: k, Write: i%5 == 0})
			}
			if c.Stats.Accesses != c.Stats.Hits+c.Stats.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExtraPolicyNames(t *testing.T) {
	if NewDIP().Name() != "DIP" || NewPeLIFO().Name() != "peLIFO" || NewCounterDBP().Name() != "CounterDBP" {
		t.Error("policy names wrong")
	}
}

func TestHawkeyeLearnsStreams(t *testing.T) {
	p := NewHawkeye()
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 64, Ways: 4, BlockSize: 64}, p)
	// Z blocks loop tightly (cache friendly); texture blocks stream
	// (averse). Drive through set 0 (a sampled set).
	for rep := 0; rep < 3000; rep++ {
		c.Access(stream.Access{Addr: uint64(rep%3) * 64 * 64, Kind: stream.Z})
		c.Access(stream.Access{Addr: uint64(1000+rep) * 64 * 64, Kind: stream.Texture})
	}
	if !p.Friendly(stream.Z) {
		t.Error("looping Z stream should be OPT-friendly")
	}
	if p.Friendly(stream.Texture) {
		t.Error("streaming texture should be OPT-averse")
	}
}

func TestHawkeyeInsertionFollowsPrediction(t *testing.T) {
	p := NewHawkeye()
	p.Reset(64, 4)
	// Untrained: counters at zero => friendly => protected insert.
	p.Fill(1, 0, stream.Access{Kind: stream.Z})
	if p.RRPV(1, 0) != 0 {
		t.Errorf("friendly fill RRPV = %d, want 0", p.RRPV(1, 0))
	}
}

func TestHawkeyeFuzz(t *testing.T) {
	f := func(addrs []uint16, kinds []byte) bool {
		c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 32, Ways: 4, BlockSize: 64}, NewHawkeye())
		for i, ad := range addrs {
			k := stream.Other
			if i < len(kinds) {
				k = stream.Kind(kinds[i] % byte(stream.NumKinds))
			}
			c.Access(stream.Access{Addr: uint64(ad) * 64, Kind: k, Write: i%7 == 0})
		}
		return c.Stats.Accesses == c.Stats.Hits+c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
