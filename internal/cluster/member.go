package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// MemberState is a member's place in the routing lifecycle.
type MemberState string

// Member lifecycle states.
const (
	// StateAlive members receive forwarded work.
	StateAlive MemberState = "alive"
	// StateSuspect members dropped a recent probe or forward but have
	// not crossed a strike limit: they keep receiving work (a single
	// blip must not eject a healthy owner) while the coordinator
	// watches them. Strikes clear on the next successful exchange.
	StateSuspect MemberState = "suspect"
	// StateDead members crossed a strike limit and are routed around;
	// the ring excludes them until a health check succeeds again.
	StateDead MemberState = "dead"
	// StateDraining members asked to leave (their /readyz reports
	// draining, or an operator drained them through the coordinator):
	// they stop receiving new runs but still answer status queries.
	StateDraining MemberState = "draining"
)

// MemberSpec names one gspcd engine the coordinator fronts.
type MemberSpec struct {
	// Name is the stable member identity; run ids are qualified with it
	// ("run-000017@gspc-1") and ring placement hashes it, so renaming a
	// member moves its keys.
	Name string `json:"name"`
	// URL is the member's base serving address, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// Member is the coordinator's view of one gspcd engine: its spec plus
// the mutable health state the checker maintains.
type Member struct {
	Spec MemberSpec

	// inflight is the member's current forwarded-request count, bounded
	// by Config.MaxInflight. Atomic: the forward hot path must not take
	// the state lock.
	inflight atomic.Int64

	// offsets estimates this member's clock offset from the send/receive
	// timestamps echoed on every forward and health check, so the trace
	// stitcher can rebase the member's span timestamps onto the
	// coordinator's clock. Internally synchronized.
	offsets *telemetry.OffsetEstimator

	mu         sync.Mutex
	state      MemberState
	adminDrain bool // drained via the coordinator admin API
	hardFails  int  // consecutive refusal-class failures (refused, reset, EOF)
	softFails  int  // consecutive timeout-class failures (deadline, i/o timeout)
	lastErr    string
	ready      bool
	readyInfo  service.ReadyInfo
	lastCheck  time.Time

	// Last /metrics scrape for federation (body retained verbatim).
	scrapeBody []byte
	scrapeAt   time.Time
	scrapeErr  string
}

// MemberStatus is the queryable snapshot of a member
// (GET /v1/cluster/members).
type MemberStatus struct {
	MemberSpec
	State      MemberState       `json:"state"`
	AdminDrain bool              `json:"admin_drain,omitempty"`
	Ready      bool              `json:"ready"`
	ReadyInfo  service.ReadyInfo `json:"ready_info"`
	// Strikes are the consecutive refusal-class failures; TimeoutStrikes
	// the consecutive timeout-class ones. Both clear on any success.
	Strikes        int       `json:"strikes,omitempty"`
	TimeoutStrikes int       `json:"timeout_strikes,omitempty"`
	InFlight       int64     `json:"in_flight,omitempty"`
	LastError      string    `json:"last_error,omitempty"`
	LastCheck      time.Time `json:"last_check,omitempty"`
}

func newMember(spec MemberSpec) *Member {
	// Members start alive and ready: the first health sweep corrects the
	// optimism within one interval, while starting dead would refuse all
	// traffic until the loop's first pass.
	return &Member{Spec: spec, state: StateAlive, ready: true,
		offsets: telemetry.NewOffsetEstimator(0)}
}

// setScrape stores the latest /metrics scrape outcome for federation.
func (m *Member) setScrape(body []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.scrapeErr = err.Error()
		return
	}
	m.scrapeBody, m.scrapeAt, m.scrapeErr = body, time.Now(), ""
}

// scrapeState returns the latest scrape for federation. The body is the
// stored slice (never mutated after setScrape), so sharing it is safe.
func (m *Member) scrapeState() (body []byte, at time.Time, errStr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scrapeBody, m.scrapeAt, m.scrapeErr
}

// snapshot captures the member under its lock. The reported state is
// the effective one: an operator drain presents as draining (that is
// what the admin surface and the members metric mean by the word) even
// though the health state machine underneath keeps running.
func (m *Member) snapshot() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	state := m.state
	if m.adminDrain && state != StateDead {
		state = StateDraining
	}
	return MemberStatus{
		MemberSpec:     m.Spec,
		State:          state,
		AdminDrain:     m.adminDrain,
		Ready:          m.ready,
		ReadyInfo:      m.readyInfo,
		Strikes:        m.hardFails,
		TimeoutStrikes: m.softFails,
		InFlight:       m.inflight.Load(),
		LastError:      m.lastErr,
		LastCheck:      m.lastCheck,
	}
}

// routable reports whether new runs may be placed on the member: alive
// or merely suspect, and not draining (self-reported or
// operator-imposed). Suspicion is not death — a suspect member still
// owns its keys.
func (m *Member) routable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routableLocked()
}

func (m *Member) routableLocked() bool {
	return (m.state == StateAlive || m.state == StateSuspect) && !m.adminDrain
}

// queryable reports whether status/trace reads may be forwarded: any
// state but dead — a draining or suspect member still answers for its
// runs.
func (m *Member) queryable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state != StateDead
}

// saturated reports an alive member whose last /readyz said unready for
// load reasons (queue or breakers) while not draining: the key stays
// sticky to it, but the coordinator will try replica cache probes first.
func (m *Member) saturated() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return (m.state == StateAlive || m.state == StateSuspect) &&
		!m.ready && !m.readyInfo.Draining
}

// acquire claims an in-flight forward slot, refusing past max.
func (m *Member) acquire(max int64) bool {
	if m.inflight.Add(1) > max {
		m.inflight.Add(-1)
		return false
	}
	return true
}

// release returns an in-flight forward slot.
func (m *Member) release() { m.inflight.Add(-1) }

// strike folds one failed exchange (health probe or forward) into the
// strike counters under the caller-supplied limits, and reports the
// transitions: suspected is a fresh alive→suspect move, died a
// transition into dead (routing must rebuild).
//
// The two failure classes carry different evidence weight, so they get
// separate limits: a refusal (connection refused, reset, EOF) means the
// process is likely gone; a timeout may just be a slow or lossy link —
// the member could well be healthy and mid-computation. Either counter
// crossing its limit kills; any success clears both.
func (m *Member) strike(timeout bool, err error, deadAfter, deadAfterTimeout int) (suspected, died bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if timeout {
		m.softFails++
	} else {
		m.hardFails++
	}
	m.lastErr = err.Error()
	if m.state == StateDead {
		return false, false
	}
	if m.hardFails >= deadAfter || m.hardFails+m.softFails >= deadAfterTimeout {
		m.state = StateDead
		return false, true
	}
	if m.state == StateAlive {
		m.state = StateSuspect
		return true, false
	}
	return false, false
}

// clearStrikes notes a successful exchange: the counters reset and a
// suspect member is vindicated back to alive (reported so the caller
// can record the transition on the cluster timeline). Other states are
// left alone — a successful status read from a draining member is not a
// state change, and dead members revive only through the health loop
// (which also refreshes readiness).
func (m *Member) clearStrikes() (vindicated bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hardFails, m.softFails = 0, 0
	m.lastErr = ""
	if m.state == StateSuspect {
		m.state = StateAlive
		return true
	}
	return false
}

// applyCheck folds one health-check outcome into the member state and
// reports whether routability changed. Failed checks go through the
// same strike accounting as failed forwards; successful checks refresh
// readiness and revive dead members.
func (m *Member) applyCheck(ready bool, info service.ReadyInfo, err error, deadAfter, deadAfterTimeout int) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wasRoutable := m.routableLocked()
	m.lastCheck = time.Now()
	if err != nil {
		if timeoutClass(err) {
			m.softFails++
		} else {
			m.hardFails++
		}
		m.lastErr = err.Error()
		if m.hardFails >= deadAfter || m.hardFails+m.softFails >= deadAfterTimeout {
			m.state = StateDead
		} else if m.state == StateAlive {
			m.state = StateSuspect
		}
	} else {
		m.hardFails, m.softFails = 0, 0
		m.lastErr = ""
		m.ready = ready
		m.readyInfo = info
		if info.Draining {
			m.state = StateDraining
		} else {
			m.state = StateAlive
		}
	}
	return wasRoutable != m.routableLocked()
}

// setAdminDrain flips the operator drain bit, reporting whether
// routability changed.
func (m *Member) setAdminDrain(drain bool) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.adminDrain == drain {
		return false
	}
	m.adminDrain = drain
	return m.state == StateAlive || m.state == StateSuspect
}

// sampleClock folds one timestamp-echoed exchange into the member's
// clock-offset estimator: t0/t3 are the coordinator's send/receive
// times, the member's receive/send times ride the response headers as
// unix nanoseconds on its own clock.
func sampleClock(m *Member, t0, t3 time.Time, h http.Header) {
	t1, ok1 := nsHeaderTime(h.Get(service.HeaderRecvNs))
	t2, ok2 := nsHeaderTime(h.Get(service.HeaderSentNs))
	if !ok1 || !ok2 {
		return
	}
	m.offsets.Update(t0, t1, t2, t3)
}

// nsHeaderTime parses a unix-nanoseconds header value.
func nsHeaderTime(v string) (time.Time, bool) {
	if v == "" {
		return time.Time{}, false
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ns <= 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// timeoutClass reports whether a failed exchange is timeout-flavored
// (deadline exceeded, i/o timeout, black-holed link) rather than
// refusal-flavored (connection refused, reset, EOF). The two classes
// feed separate strike limits.
func timeoutClass(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// checkMember performs one health check against the member's /readyz,
// decoding the load-snapshot body gspcd serves. A 200 means ready; 503
// with a parseable body is an alive-but-unready report (draining,
// saturated, broken); anything else is a check failure.
func checkMember(ctx context.Context, client *http.Client, m *Member) (bool, service.ReadyInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Spec.URL+"/readyz", nil)
	if err != nil {
		return false, service.ReadyInfo{}, err
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return false, service.ReadyInfo{}, err
	}
	defer resp.Body.Close()
	sampleClock(m, t0, time.Now(), resp.Header)
	var info service.ReadyInfo
	if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
		return false, service.ReadyInfo{}, fmt.Errorf("readyz status %d: %v", resp.StatusCode, derr)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return true, info, nil
	case http.StatusServiceUnavailable:
		return false, info, nil
	default:
		return false, info, fmt.Errorf("readyz status %d", resp.StatusCode)
	}
}
