// Command gspc-cluster fronts N gspcd engines with a sharded
// coordinator: every run request is consistent-hashed by its canonical
// cache key onto an owner node, concurrent identical submissions
// coalesce cluster-wide, fresh results replicate onto ring successors,
// and health checks route around dead or draining members with minimal
// key movement.
//
// Usage:
//
//	gspc-cluster [-addr :8090] [-replication 1] [-vnodes 256]
//	             [-health-interval 2s] [-health-timeout 1s] [-dead-after 2]
//	             [-dead-after-timeout 3] [-forward-timeout 2m]
//	             [-hedge-delay 500ms] [-max-inflight 256]
//	             [-flight-events 256] [-event-log 1024]
//	             [-event-log-file events.ndjson] [-federate=true]
//	             [-name gspc-cluster] [-log-format text|json] [-version]
//	             -member gspc-1=http://127.0.0.1:8081
//	             -member gspc-2=http://127.0.0.2:8082 ...
//
// The partition-tolerance knobs: -dead-after counts hard strikes
// (connection refused/reset — the node is provably absent), while
// -dead-after-timeout counts total strikes including timeouts, which
// are weaker evidence (a slow link looks the same). -forward-timeout
// bounds every proxied exchange; -hedge-delay is how long a forward
// waits on the owner before probing replicas for a cached copy (0 for
// the default, negative to disable hedging); -max-inflight bounds
// concurrent forwards per member, shedding load with 503s beyond it.
//
// Each -member is "name=url". Names are the ring identities: run ids
// are qualified with them ("run-000017@gspc-1") and key placement
// hashes them, so keep names stable across coordinator restarts. A bare
// URL is also accepted and auto-named by position (member-1, member-2,
// ...), which is only safe if the member order never changes.
//
// The coordinator serves the same client surface as one gspcd (POST
// /v1/runs, GET /v1/runs/{id}, ...) plus the /v1/cluster admin section;
// see internal/cluster.Server for the route list.
//
// Observability knobs: -flight-events sizes the /debugz flight
// recorder ring; -event-log sizes the /v1/cluster/events timeline ring
// and -event-log-file makes it durable (NDJSON, replayed on restart);
// -federate=false withdraws /metrics/federate (member scraping still
// runs for /debugz freshness). Stitched traces are always on: GET
// /v1/runs/{id}/trace merges coordinator and member spans into one
// clock-corrected Perfetto document.
//
// SIGINT/SIGTERM stop health checking and close the listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gspc/internal/cluster"
	"gspc/internal/telemetry"
)

// memberFlags collects repeated -member values.
type memberFlags []cluster.MemberSpec

func (m *memberFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = s.Name + "=" + s.URL
	}
	return strings.Join(parts, ",")
}

func (m *memberFlags) Set(v string) error {
	spec := cluster.MemberSpec{}
	if name, url, ok := strings.Cut(v, "="); ok && !strings.HasPrefix(name, "http") {
		spec.Name, spec.URL = name, url
	} else {
		spec.Name = fmt.Sprintf("member-%d", len(*m)+1)
		spec.URL = v
	}
	spec.URL = strings.TrimSuffix(spec.URL, "/")
	if spec.URL == "" {
		return errors.New("member needs a url")
	}
	*m = append(*m, spec)
	return nil
}

func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("gspc-cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var members memberFlags
	fs.Var(&members, "member", "member as name=url (repeatable)")
	addr := fs.String("addr", ":8090", "coordinator listen address")
	name := fs.String("name", "gspc-cluster", "coordinator name (X-Gspc-Coordinator header)")
	replication := fs.Int("replication", 1, "ring successors that receive a copy of each fresh result (0 disables)")
	vnodes := fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per member on the hash ring")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "member health-check period")
	healthTimeout := fs.Duration("health-timeout", time.Second, "single health-check timeout")
	deadAfter := fs.Int("dead-after", 2, "hard strikes (refused/reset) before a member is routed around")
	deadAfterTimeout := fs.Int("dead-after-timeout", 0, "total strikes including timeouts before death (default dead-after+1)")
	forwardTimeout := fs.Duration("forward-timeout", 0, "per-forward exchange bound (default 2m, negative disables)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "wait on a slow owner before probing replicas for a cached copy (default 500ms, negative disables)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent forwards per member before shedding 503s (default 256)")
	flightEvents := fs.Int("flight-events", 0, "flight-recorder ring size for /debugz (default 256)")
	eventLog := fs.Int("event-log", 0, "cluster event timeline ring size for /v1/cluster/events (default 1024)")
	eventLogFile := fs.String("event-log-file", "", "persist timeline events to this NDJSON file (replayed on restart)")
	federate := fs.Bool("federate", true, "serve the merged member metrics union at /metrics/federate")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		b := telemetry.BuildInfo()
		fmt.Printf("gspc-cluster %s %s (%s)\n", b.Module, b.Version, b.GoVersion)
		return 0
	}
	if len(members) == 0 {
		fmt.Fprintln(stderr, "gspc-cluster: at least one -member required")
		return 2
	}

	logger := newLogger(*logFormat)
	co, err := cluster.New(cluster.Config{
		Name: *name, Members: members, Vnodes: *vnodes,
		Replication: *replication, HealthInterval: *healthInterval,
		HealthTimeout: *healthTimeout, DeadAfter: *deadAfter,
		DeadAfterTimeout: *deadAfterTimeout, ForwardTimeout: *forwardTimeout,
		HedgeDelay: *hedgeDelay, MaxInflight: *maxInflight, Logger: logger,
		FlightEvents: *flightEvents, EventLogSize: *eventLog,
		EventLogPath: *eventLogFile, DisableFederation: !*federate,
	})
	if err != nil {
		fmt.Fprintln(stderr, "gspc-cluster:", err)
		return 2
	}
	co.Start()

	srv := &http.Server{Addr: *addr, Handler: cluster.NewServer(co)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("gspc-cluster listening", "addr", *addr,
		"members", len(members), "replication", *replication)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("http shutdown", "err", err)
	}
	co.Close()
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}
