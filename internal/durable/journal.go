package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Journal record framing: a fixed 8-byte header — u32 big-endian payload
// length, u32 CRC32 (IEEE) of the payload — followed by the payload
// bytes. A record is valid only if the full header and payload are
// present and the checksum matches; anything else at the end of the
// file is a torn tail from a crash mid-append and is truncated away on
// recovery. A checksum mismatch mid-file is treated the same way: the
// journal is trusted only up to its first bad record, because a
// crashing append is the only writer that can leave partial bytes.
const journalHeaderSize = 8

// maxRecordSize bounds one journal record (16 MiB). A length prefix
// above it is corruption, not a real record — without the bound, a
// corrupt length like 0xFFFFFFFF would make replay try to slurp 4 GiB.
const maxRecordSize = 16 << 20

// frameRecord encodes one payload into its on-disk framing.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, journalHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[journalHeaderSize:], payload)
	return buf
}

// journal is an append-only record log on one file. Not
// goroutine-safe; the Store serializes access.
type journal struct {
	fs    FS
	path  string
	fsync bool
	f     File
	size  int64 // bytes durably framed so far
}

// openJournal opens (creating if needed) the journal for appending.
// size must be the validated length from a prior scan.
func openJournal(fsys FS, path string, fsync bool, size int64) (*journal, error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	return &journal{fs: fsys, path: path, fsync: fsync, f: f, size: size}, nil
}

// append frames and writes one payload, fsyncing when configured. A
// failed append may leave a partial frame on disk; the handle is
// dropped, and the next append (or the next boot's recovery scan)
// truncates back to the last fully-written record before continuing,
// so a torn frame can never shadow later good records.
func (j *journal) append(payload []byte) error {
	if j.f == nil {
		if err := j.reopen(); err != nil {
			return err
		}
	}
	buf := frameRecord(payload)
	n, err := j.f.Write(buf)
	if err != nil {
		// Partial frame on disk: drop the handle so the next append
		// re-truncates to the last good size before writing.
		j.f.Close()
		j.f = nil
		return fmt.Errorf("durable: journal append (wrote %d/%d): %w", n, len(buf), err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			j.f = nil
			return fmt.Errorf("durable: journal fsync: %w", err)
		}
	}
	j.size += int64(len(buf))
	return nil
}

// reopen repairs the journal after a failed append: the file is
// truncated back to the last fully-written record and reopened for
// appending, so the torn frame cannot shadow later good records.
func (j *journal) reopen() error {
	if err := j.fs.Truncate(j.path, j.size); err != nil {
		return fmt.Errorf("durable: journal repair truncate: %w", err)
	}
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("durable: journal reopen: %w", err)
	}
	j.f = f
	return nil
}

// close releases the journal handle.
func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// scanJournal parses the journal bytes into payloads, returning the
// validated prefix length and whether a torn/corrupt tail was found
// beyond it. It never fails: an unreadable tail just ends the scan.
func scanJournal(data []byte) (payloads [][]byte, goodSize int64, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return payloads, int64(off), false
		}
		if len(data)-off < journalHeaderSize {
			return payloads, int64(off), true
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordSize || len(data)-off-journalHeaderSize < n {
			return payloads, int64(off), true
		}
		payload := data[off+journalHeaderSize : off+journalHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, int64(off), true
		}
		payloads = append(payloads, payload)
		off += journalHeaderSize + n
	}
}
