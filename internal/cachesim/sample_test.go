package cachesim

import (
	"testing"

	"gspc/internal/stream"
)

func TestSetSampleSelection(t *testing.T) {
	s := SetSample{Ratio: 16, Seed: 1}
	if !s.Enabled() {
		t.Fatal("ratio 16 should enable sampling")
	}
	for _, off := range []SetSample{{}, {Ratio: 1, Seed: 5}, {Ratio: -4}} {
		if off.Enabled() {
			t.Errorf("%+v should not enable sampling", off)
		}
	}
	// Selection depends only on (seed, set index): the same index gets
	// the same answer no matter which geometry it is part of.
	for set := 0; set < 1<<14; set++ {
		if s.Selected(set) != (sampleHash(1, set)%16 == 0) {
			t.Fatalf("set %d: Selected disagrees with hash", set)
		}
	}
	// A different seed picks a different subset (overwhelmingly likely
	// over 16k sets with a well-mixed hash).
	same := true
	other := SetSample{Ratio: 16, Seed: 2}
	for set := 0; set < 1<<14 && same; set++ {
		same = s.Selected(set) == other.Selected(set)
	}
	if same {
		t.Error("seeds 1 and 2 selected identical subsets over 16k sets")
	}
}

func TestNewSampledCompact(t *testing.T) {
	geom := Geometry{SizeBytes: 1 << 20, Ways: 16, BlockSize: 64} // 1024 sets
	s := SetSample{Ratio: 16, Seed: 1}
	want := 0
	for i := 0; i < geom.Sets(); i++ {
		if s.Selected(i) {
			want++
		}
	}
	pol := &fifoPolicy{}
	c := NewSampled(geom, pol, s)
	if !c.Sampled() {
		t.Fatal("cache not sampled")
	}
	if c.Sets() != want {
		t.Errorf("Sets() = %d, want %d sampled", c.Sets(), want)
	}
	// Policy state is allocated in compact sampled-set space, not full
	// geometry space.
	if len(pol.next) != want {
		t.Errorf("policy sized for %d sets, want %d", len(pol.next), want)
	}
	if got, wantF := c.SampleFactor(), float64(geom.Sets())/float64(want); got != wantF {
		t.Errorf("SampleFactor = %v, want %v", got, wantF)
	}
	// Geometry and set indexing still answer in full-cache terms.
	if c.Geometry() != geom {
		t.Errorf("Geometry() = %v, want %v", c.Geometry(), geom)
	}
}

func TestNewSampledDisabledIsExact(t *testing.T) {
	geom := Geometry{SizeBytes: 64 * 64 * 2, Ways: 2, BlockSize: 64}
	c := NewSampled(geom, &fifoPolicy{}, SetSample{Ratio: 1})
	if c.Sampled() {
		t.Error("ratio 1 should build an unsampled cache")
	}
	if c.SampleFactor() != 1 {
		t.Errorf("unsampled SampleFactor = %v, want 1", c.SampleFactor())
	}
}

func TestNewSampledFallbackSet(t *testing.T) {
	// 16 sets with a huge ratio: selection may pick nothing, and the
	// deterministic minimal-hash fallback must keep one set simulated.
	geom := Geometry{SizeBytes: 16 * 64 * 2, Ways: 2, BlockSize: 64}
	c := NewSampled(geom, &fifoPolicy{}, SetSample{Ratio: 1 << 30, Seed: 3})
	if c.Sets() != 1 {
		t.Fatalf("fallback kept %d sets, want 1", c.Sets())
	}
	if c.SampleFactor() != 16 {
		t.Errorf("SampleFactor = %v, want 16", c.SampleFactor())
	}
}

// TestSampledMatchesFullSubset drives the same access stream through a
// full cache and a sampled one and checks the sampled cache's counters
// equal the full cache's restricted to the sampled sets — the exactness
// property set sampling rests on (per-set simulation is independent).
func TestSampledMatchesFullSubset(t *testing.T) {
	geom := Geometry{SizeBytes: 64 * 64 * 4, Ways: 4, BlockSize: 64} // 64 sets
	s := SetSample{Ratio: 8, Seed: 1}
	full := New(geom, &fifoPolicy{})
	sam := NewSampled(geom, &fifoPolicy{}, s)

	var fullHits, fullAcc int64
	rnd := uint64(12345)
	for i := 0; i < 200000; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		a := stream.Access{Addr: rnd % (1 << 22), Seq: int64(i), Write: rnd&1 == 0}
		set := full.SetIndex(a.Addr)
		hit := full.Access(a)
		if s.Selected(set) {
			fullAcc++
			if hit {
				fullHits++
			}
		}
		sam.Access(a)
	}
	if sam.Stats.Accesses != fullAcc {
		t.Errorf("sampled accesses = %d, full-cache subset = %d", sam.Stats.Accesses, fullAcc)
	}
	if sam.Stats.Hits != fullHits {
		t.Errorf("sampled hits = %d, full-cache subset = %d", sam.Stats.Hits, fullHits)
	}
	wantSkips := int64(200000) - fullAcc
	if sam.Stats.SampledSkips != wantSkips {
		t.Errorf("sampled skips = %d, want %d", sam.Stats.SampledSkips, wantSkips)
	}
}

func TestSampleReportRSE(t *testing.T) {
	geom := Geometry{SizeBytes: 64 * 64 * 4, Ways: 4, BlockSize: 64}
	c := NewSampled(geom, &fifoPolicy{}, SetSample{Ratio: 8, Seed: 1})
	r := c.SampleReport()
	if r.TotalSets != 64 || r.SampledSets != c.Sets() || r.Factor != c.SampleFactor() {
		t.Errorf("report geometry wrong: %+v", r)
	}
	if r.RSE != 0 {
		t.Errorf("RSE before any access = %v, want 0", r.RSE)
	}
	rnd := uint64(99)
	for i := 0; i < 100000; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		c.Access(stream.Access{Addr: rnd % (1 << 22), Seq: int64(i)})
	}
	r = c.SampleReport()
	// A uniform stream over many accesses has tiny across-set variance;
	// the estimate must be positive but small.
	if r.RSE <= 0 || r.RSE > 0.2 {
		t.Errorf("uniform-stream RSE = %v, want small positive", r.RSE)
	}
	c.ResetCounters()
	if got := c.SampleReport().RSE; got != 0 {
		t.Errorf("RSE after ResetCounters = %v, want 0", got)
	}
}

func TestResetCountersKeepsContents(t *testing.T) {
	c := smallCache()
	c.Access(stream.Access{Addr: 0})
	c.Access(stream.Access{Addr: 0})
	if c.Stats.Hits != 1 {
		t.Fatalf("warmup hits = %d, want 1", c.Stats.Hits)
	}
	c.ResetCounters()
	if c.Stats != (Stats{}) {
		t.Errorf("stats not zeroed: %+v", c.Stats)
	}
	// Contents survive: the warmed block still hits.
	if !c.Access(stream.Access{Addr: 0}) {
		t.Error("warmed block evicted by ResetCounters")
	}
}
