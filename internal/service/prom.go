package service

import (
	"gspc/internal/telemetry"
)

// PromExposition renders the engine's state in the Prometheus text
// exposition format (served at GET /metrics). Every series carries the
// gspc_ prefix; label cardinality is bounded by construction — the only
// labeled series are keyed by stage (3 values), stream kind (8), and
// breaker state per experiment (≤ the 16 experiment ids) — so a scrape
// can never mint unbounded series however the server is driven.
func (e *Engine) PromExposition() []byte {
	m := e.Metrics()
	hist := e.latHist.Snapshot()
	sim := telemetry.Sim()

	var x telemetry.Exposition
	x.Gauge("gspc_uptime_seconds", "Seconds since the engine started.", m.UptimeSeconds)

	x.Counter("gspc_requests_total", "Requests submitted (cache hits included).", float64(m.Requests))
	x.Counter("gspc_jobs_completed_total", "Jobs that finished successfully.", float64(m.Completed))
	x.Counter("gspc_jobs_failed_total", "Jobs that finished in error.", float64(m.Failed))
	x.Counter("gspc_jobs_cancelled_total", "Jobs cancelled before running.", float64(m.Cancelled))
	x.Counter("gspc_requests_rejected_total", "Requests rejected by queue backpressure.", float64(m.Rejected))
	x.Counter("gspc_requests_coalesced_total", "Requests coalesced onto an identical in-flight job.", float64(m.Coalesced))
	x.Counter("gspc_retries_total", "Transient-failure retry attempts.", float64(m.Retries))
	x.Counter("gspc_panics_total", "Experiment panics recovered by the worker pool.", float64(m.Panics))
	x.Counter("gspc_timeouts_total", "Jobs that failed by deadline.", float64(m.Timeouts))

	x.Counter("gspc_replicas_installed_total", "Results replicated onto this node by a cluster coordinator.", float64(m.ReplicasInstalled))

	if s := m.Sampling; s != nil {
		x.Counter("gspc_sampled_jobs_total", "Completed sampled-fidelity jobs.", float64(s.SampledJobs))
		x.Gauge("gspc_sampled_est_rel_err", "Estimated relative error reported by the latest sampled job.", s.LastEstRelErr)
		x.Counter("gspc_escalations_total", "Exact twins submitted behind sampled answers.", float64(s.Escalations))
		x.Counter("gspc_escalation_hits_total", "Sampled cache entries upgraded to exact results.", float64(s.EscalationHits))
		x.Counter("gspc_sampled_replays_total", "Set-sampled measured replays, process-wide.", float64(s.SampledReplays))
		x.Counter("gspc_sampled_sets", "Sets simulated, summed over set-sampled replays (divide by gspc_sampled_replays_total for the per-replay mean).", float64(s.SampledSets))
		x.Counter("gspc_sampled_sets_total", "Geometry set totals, summed over set-sampled replays.", float64(s.SampledSetsTotal))
		x.Counter("gspc_sampled_skipped_accesses_total", "Accesses skipped by set sampling, process-wide.", float64(s.SkippedAccesses))
		x.Counter("gspc_sampled_simulated_accesses_total", "Accesses simulated under set sampling, process-wide (pre-scaling).", float64(s.SimulatedAccesses))
	}

	x.Counter("gspc_breaker_trips_total", "Circuit breakers tripped open.", float64(m.BreakerTrips))
	x.Counter("gspc_breaker_fast_fails_total", "Submissions fast-failed by an open breaker.", float64(m.BreakerFastFails))
	x.Gauge("gspc_breakers_open", "Experiment breakers currently open.", float64(m.BreakersOpen))
	x.Counter("gspc_stale_served_total", "Degraded responses served from the last good result.", float64(m.StaleServed))

	x.Counter("gspc_result_cache_hits_total", "Result cache hits.", float64(m.CacheHits))
	x.Counter("gspc_result_cache_misses_total", "Result cache misses.", float64(m.CacheMisses))
	x.Counter("gspc_result_cache_evictions_total", "Result cache evictions.", float64(m.CacheEvictions))
	x.Gauge("gspc_result_cache_entries", "Resident result cache entries.", float64(m.CacheEntries))

	x.Gauge("gspc_queue_depth", "Jobs queued and not yet running.", float64(m.QueueDepth))
	x.Gauge("gspc_queue_capacity", "Queue capacity (admission bound).", float64(m.QueueCapacity))
	x.Gauge("gspc_workers", "Concurrent experiment runners.", float64(m.Workers))

	x.Histogram("gspc_job_duration_seconds", "Completed-job run duration.", hist)

	tc := m.TraceCache
	x.Counter("gspc_trace_cache_hits_total", "Frame-trace cache hits.", float64(tc.Hits))
	x.Counter("gspc_trace_cache_misses_total", "Frame-trace cache misses (syntheses).", float64(tc.Misses))
	x.Counter("gspc_trace_cache_coalesced_total", "Lookups that joined an in-flight synthesis.", float64(tc.Coalesced))
	x.Counter("gspc_trace_cache_evictions_total", "Frame traces evicted.", float64(tc.Evictions))
	x.Gauge("gspc_trace_cache_bytes", "Packed trace bytes resident in the frame-trace cache.", float64(tc.BytesUsed))
	x.Gauge("gspc_trace_cache_budget_bytes", "Frame-trace cache byte budget.", float64(tc.BudgetBytes))
	x.Gauge("gspc_trace_cache_entries", "Resident frame traces.", float64(tc.Entries))

	x.CounterVec("gspc_stage_busy_ms_total",
		"Experiment wall time this engine spent per stage, in milliseconds (summed per-invocation; stages overlap under fan-out).",
		"stage", map[string]int64{
			"synth":  int64(m.Stages.SynthMs),
			"replay": int64(m.Stages.ReplayMs),
			"timing": int64(m.Stages.TimingMs),
		})

	x.CounterVec("gspc_llc_stream_accesses_total", "Simulated LLC accesses by stream kind, process-wide.",
		"stream", sim.LLCStreamAccesses)
	x.CounterVec("gspc_llc_stream_hits_total", "Simulated LLC hits by stream kind, process-wide.",
		"stream", sim.LLCStreamHits)
	x.Counter("gspc_dram_reads_total", "Simulated DRAM read requests, process-wide.", float64(sim.DRAMReads))
	x.Counter("gspc_dram_writes_total", "Simulated DRAM write requests, process-wide.", float64(sim.DRAMWrites))
	x.Counter("gspc_dram_row_hits_total", "Simulated DRAM row-buffer hits.", float64(sim.DRAMRowHits))
	x.Counter("gspc_dram_row_misses_total", "Simulated DRAM row-buffer misses (closed row).", float64(sim.DRAMRowMisses))
	x.Counter("gspc_dram_row_conflicts_total", "Simulated DRAM row-buffer conflicts (open different row).", float64(sim.DRAMRowConflicts))

	if mm := m.Memory; mm != nil {
		x.Gauge("gspc_mem_limit_bytes", "Memory governor byte budget.", float64(mm.LimitBytes))
		x.Gauge("gspc_mem_pressure", "Memory pressure: max(accounted, heap) / limit.", mm.Pressure)
		x.Gauge("gspc_mem_heap_bytes", "Adjusted live heap at the last governor sample.", float64(mm.HeapBytes))
		x.Gauge("gspc_mem_accounted_bytes", "Bytes accounted across registered sources plus in-flight reserves.", float64(mm.AccountedBytes))
		x.Gauge("gspc_mem_inflight_bytes", "Reserved in-flight request bytes.", float64(mm.InflightBytes))
		x.Gauge("gspc_mem_heap_high_water_bytes", "Largest adjusted heap ever sampled.", float64(mm.HeapHighWater))
		x.Gauge("gspc_mem_rung", "Current degradation-ladder rung (0 healthy .. 4 shed).", float64(mm.RungLevel))
		x.CounterVec("gspc_mem_rung_entries_total", "Arrivals at each degradation-ladder rung.",
			"rung", mm.RungEntries)
		secs := make(map[string]int64, len(mm.RungSeconds))
		for rung, s := range mm.RungSeconds {
			secs[rung] = int64(s)
		}
		x.CounterVec("gspc_mem_rung_seconds_total", "Wall-clock residency per degradation-ladder rung, in whole seconds.",
			"rung", secs)
		x.Counter("gspc_mem_shed_total", "Requests refused at the shed rung.", float64(mm.Shed))
		x.Counter("gspc_mem_downgrades_total", "Exact requests forced to sampled fidelity by the ladder.", float64(mm.Downgrades))
		x.Counter("gspc_mem_stale_served_total", "Stale answers served because of the stale-only rung.", float64(mm.StaleServed))
		x.Counter("gspc_mem_escalations_skipped_total", "Background exact escalations suppressed under memory pressure.", float64(mm.EscalationsSkipped))
	}

	if len(m.SLO) > 0 {
		obs := make(map[string]int64, len(m.SLO))
		breaches := make(map[string]int64, len(m.SLO))
		worst := 0.0
		for _, r := range m.SLO {
			obs[r.Experiment] = r.Observations
			breaches[r.Experiment] = r.Breaches
			if r.BurnRate > worst {
				worst = r.BurnRate
			}
		}
		x.CounterVec("gspc_slo_observations_total", "Completed jobs observed against the latency SLO, per experiment.",
			"experiment", obs)
		x.CounterVec("gspc_slo_breaches_total", "Completed jobs over their p99 latency target, per experiment.",
			"experiment", breaches)
		x.Gauge("gspc_slo_worst_burn", "Highest per-experiment error-budget burn rate (1.0 = budget exactly spent).", worst)
	}

	if d := m.Durable; d != nil {
		// Journal lag: records appended since the last compaction — the
		// replay debt a crash right now would owe at the next boot.
		x.Gauge("gspc_journal_lag_records", "Journal records accumulated since the last compaction.", float64(d.JournalRecords))
		x.Gauge("gspc_journal_bytes", "Write-ahead journal size on disk.", float64(d.JournalBytes))
		x.Counter("gspc_journal_errors_total", "Journal append failures (durability degraded).", float64(d.JournalErrors))
		x.Counter("gspc_journal_compactions_total", "Journal compactions into snapshots.", float64(d.Compactions))
	}
	return x.Bytes()
}
