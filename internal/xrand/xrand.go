// Package xrand provides a small, fast, deterministic pseudo-random
// number generator (xorshift*) used by the workload generator. The
// simulator never uses math/rand's global state or wall-clock seeding:
// every stochastic choice derives from an explicit seed so that identical
// configurations reproduce identical traces and tables.
package xrand

// RNG is a xorshift1024-free, splitmix-seeded xorshift* generator.
type RNG struct {
	s uint64
}

// New returns a generator seeded with seed (zero is remapped so the
// generator never degenerates).
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	// SplitMix64 step decorrelates nearby seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.s = z
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Fork derives an independent generator from the current one, labelled by
// id. Forks of the same parent with different ids are decorrelated; the
// parent is not advanced.
func (r *RNG) Fork(id uint64) *RNG {
	return New(r.s ^ (id+1)*0xd1342543de82ef95)
}
