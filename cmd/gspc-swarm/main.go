// Command gspc-swarm runs the seeded cluster chaos harness: it boots an
// in-process gspc cluster (N gspcd engines with write-ahead journals,
// on real TCP listeners, behind one coordinator) and drives a
// randomized schedule of submissions, status polls, node kills,
// restarts, drains and undrains — then reports whether every
// acknowledged run stayed visible with a consistent status and whether
// cluster-wide coalescing held.
//
// Usage:
//
//	gspc-swarm [-nodes 3] [-seed 1] [-ops 200] [-replication 1]
//	           [-data-root DIR] [-sim-delay 5ms] [-v]
//	gspc-swarm -soak [-duration 2m] [-blocked-after 15s] [...]
//	gspc-swarm -soak -mem-weather [-mem-limit-mb 64] [-heap-slack-mb 64]
//
// With -soak, the fixed-length schedule is replaced by a
// duration-bounded soak: every node sits behind a seeded
// fault-injecting TCP proxy, a rolling weather schedule partitions,
// slows, and corrupts links while traffic and process chaos continue,
// and goroutine hygiene — zero growth over the post-boot baseline, no
// goroutine parked on a synchronization site past -blocked-after — is
// asserted at interval and at exit. Every soak also asserts heap
// hygiene (live heap back within -heap-slack-mb of the post-boot
// baseline at exit) and reports per-experiment latency SLO burn.
//
// With -mem-weather, each node additionally runs under a -mem-limit-mb
// memory governor, the stub simulations allocate their estimated trace
// footprints for real, and the first ~60% of the soak storms the
// cluster with oversized full-scale requests. The run fails unless the
// degradation ladder engaged (at least the forced-sampled rung), every
// node recovered to healthy in the trailing calm, the heap stayed
// bounded (zero OOMs), and the SLO error budget was not overspent.
//
// The whole schedule flows from -seed: a failing run replays exactly
// with the same flags. The report prints as JSON on stdout; the exit
// code is 1 if any violation was detected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"gspc/internal/cluster/swarm"
)

func main() {
	fs := flag.NewFlagSet("gspc-swarm", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "gspcd engines in the chaos cluster")
	seed := fs.Int64("seed", 1, "schedule seed; same seed, same chaos")
	ops := fs.Int("ops", 200, "operations in the chaos schedule")
	replication := fs.Int("replication", 1, "coordinator replica fan-out")
	dataRoot := fs.String("data-root", "", "directory for node journals (default: temp, removed after)")
	simDelay := fs.Duration("sim-delay", 5*time.Millisecond, "stub simulation duration")
	soak := fs.Bool("soak", false, "run the duration-bounded network-weather soak instead of the fixed schedule")
	duration := fs.Duration("duration", 2*time.Minute, "soak length (with -soak)")
	blockedAfter := fs.Duration("blocked-after", 15*time.Second, "partial-deadlock threshold: max time parked on one sync site (with -soak)")
	memWeather := fs.Bool("mem-weather", false, "memory-weather soak: per-node governors, allocating stubs, oversized-request storm (implies -soak)")
	memLimitMB := fs.Int("mem-limit-mb", 64, "per-node governor byte budget in MiB (with -mem-weather)")
	heapSlackMB := fs.Int("heap-slack-mb", 64, "allowed live-heap growth over the post-boot baseline at soak exit, MiB")
	verbose := fs.Bool("v", false, "log engine/coordinator operational output to stderr")
	fs.Parse(os.Args[1:])

	cfg := swarm.Config{
		Nodes: *nodes, Seed: *seed, Ops: *ops,
		Replication: *replication, DataRoot: *dataRoot, SimDelay: *simDelay,
		Soak: *soak, Duration: *duration, BlockedAfter: *blockedAfter,
		MemWeather: *memWeather, MemLimitMB: *memLimitMB, HeapSlackMB: *heapSlackMB,
	}
	if *verbose {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	rep, err := swarm.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspc-swarm:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "gspc-swarm: %d violations (seed %d)\n", len(rep.Violations), rep.Seed)
		os.Exit(1)
	}
}
