package cachesim

import (
	"context"
	"errors"
	"testing"

	"gspc/internal/stream"
)

func replayTrace(n int) []stream.Access {
	tr := make([]stream.Access, n)
	for i := range tr {
		tr[i] = stream.Access{Addr: uint64(i) * 64, Seq: int64(i), Kind: stream.Texture}
	}
	return tr
}

func TestReplayCompletesWithoutCancellation(t *testing.T) {
	c := New(Geometry{SizeBytes: 16 * 16 * 64, Ways: 16, BlockSize: 64}, &fifoPolicy{})
	tr := replayTrace(10_000)
	if err := Replay(context.Background(), c, tr, 0); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if c.Stats.Accesses != int64(len(tr)) {
		t.Errorf("accesses = %d, want %d", c.Stats.Accesses, len(tr))
	}
}

func TestReplayStopsOnCancelledContext(t *testing.T) {
	c := New(Geometry{SizeBytes: 16 * 16 * 64, Ways: 16, BlockSize: 64}, &fifoPolicy{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := replayTrace(100_000)
	err := Replay(ctx, c, tr, 128)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay err = %v, want context.Canceled", err)
	}
	// The first stride window may run before the first poll fires, but a
	// pre-cancelled context must stop the replay at the very first check.
	if c.Stats.Accesses != 0 {
		t.Errorf("accesses after pre-cancelled replay = %d, want 0", c.Stats.Accesses)
	}
}

func TestReplayCancellationLatencyBoundedByStride(t *testing.T) {
	c := New(Geometry{SizeBytes: 16 * 16 * 64, Ways: 16, BlockSize: 64}, &fifoPolicy{})
	tr := replayTrace(100_000)
	const stride = 64
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	// Cancel from inside the replay via an observer: after the first 1000
	// accesses the context is dead, so the replay must stop within one
	// stride of access 1000.
	c.AddObserver(ObserverFunc(func(ev Event) {
		done++
		if done == 1000 {
			cancel()
		}
	}))
	if err := Replay(ctx, c, tr, stride); !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay err = %v, want context.Canceled", err)
	}
	if c.Stats.Accesses > 1000+stride {
		t.Errorf("replay ran %d accesses past cancellation (stride %d)", c.Stats.Accesses-1000, stride)
	}
}
