package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// maxRequestBytes bounds an inbound run-submission body.
const maxRequestBytes = 1 << 20

// Server is the HTTP face of a Coordinator. It mirrors the gspcd
// surface — the coordinator is a drop-in base URL for any gspcd client —
// plus a /v1/cluster admin section:
//
//	GET  /healthz                           coordinator liveness
//	GET  /readyz                            503 when no member is routable
//	GET  /metricsz                          coordinator metrics (JSON)
//	GET  /metrics                           Prometheus text exposition
//	GET  /versionz                          build identification
//	GET  /v1/experiments                    forwarded to any live member
//	POST /v1/runs                           routed to the key's owner node
//	GET  /v1/runs/{id}                      id is "run-NNNNNN@node"; forwarded to node
//	GET  /v1/runs/{id}/trace                forwarded to node
//	GET  /v1/cluster/members                membership + health snapshot
//	GET  /v1/cluster/events                 typed cluster timeline (NDJSON, ?since=N)
//	POST /v1/cluster/members/{name}/drain   stop placing new runs on name
//	POST /v1/cluster/members/{name}/undrain reverse a drain
//	GET  /debugz                            flight recorder + recent timeline
//	GET  /metrics/federate                  merged member metrics, node-labeled
//
// Run ids returned by the coordinator are qualified with the owning
// member ("run-000017@gspc-2"), in the 202 body, the Location header,
// and the X-Gspc-Run header; pass them back verbatim.
type Server struct {
	co  *Coordinator
	mux *http.ServeMux
}

// NewServer wires the routes for a coordinator.
func NewServer(co *Coordinator) *Server {
	s := &Server{co: co, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /versionz", s.handleVersion)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/cluster/members", s.handleMembers)
	s.mux.HandleFunc("GET /v1/cluster/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/cluster/members/{name}/drain", s.handleDrain)
	s.mux.HandleFunc("POST /v1/cluster/members/{name}/undrain", s.handleUndrain)
	s.mux.HandleFunc("GET /debugz", s.handleDebug)
	s.mux.HandleFunc("GET /metrics/federate", s.handleFederate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Gspc-Coordinator", s.co.cfg.Name)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// qualifyRun renders a cluster-wide run id: the node-local id plus the
// member that owns it.
func qualifyRun(id, node string) string { return id + "@" + node }

// splitRun parses a qualified run id back into (local id, node).
func splitRun(qualified string) (id, node string, ok bool) {
	i := strings.LastIndexByte(qualified, '@')
	if i <= 0 || i == len(qualified)-1 {
		return "", "", false
	}
	return qualified[:i], qualified[i+1:], true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	alive := s.co.currentRing().Len()
	body := map[string]any{
		"status":        "ready",
		"members_total": len(s.co.names),
		"members_ring":  alive,
	}
	if alive == 0 {
		body["status"] = "unready"
		body["reason"] = "no routable members"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.co.Metrics())
}

func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.Write(s.co.PromExposition())
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.BuildInfo())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	res, err := s.co.forwardAny(r.Context(), "/v1/experiments")
	if err != nil {
		s.writeForwardError(w, err)
		return
	}
	s.relay(w, res, "")
}

func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"coordinator": s.co.cfg.Name,
		"ring_nodes":  s.co.currentRing().Nodes(),
		"members":     s.co.Members(),
	})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.co.Drain(name) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown member %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"member": name, "state": "draining"})
}

func (s *Server) handleUndrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.co.Undrain(name) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown member %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"member": name, "state": "routable"})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	// Normalize locally so the routing key is the node's cache key: the
	// coordinator and every engine agree on it by construction. A request
	// the engines would reject fails here without a forward.
	nreq, err := req.Normalize()
	if err != nil {
		var bad *service.BadRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, bad.Reason)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := nreq.Key()
	s.co.submits.Add(1)

	// Every submit gets a coordinator-side run: adopt an inbound trace id
	// (a client or upstream coordinator minted one) or mint a fresh one,
	// and thread the run through the routing path so forwards, hedges,
	// and replication record spans against it. The members the submit
	// reaches adopt the same id via the propagated X-Gspc-Trace-Id, which
	// is what lets /v1/runs/{id}/trace stitch the two sides later.
	traceID := r.Header.Get(service.HeaderTraceID)
	inherited := traceID != ""
	if !inherited {
		traceID = telemetry.NewTraceID()
	}
	run := telemetry.NewRun(traceID, coordTraceMaxSpans)
	if inherited {
		run.ParentSpan = r.Header.Get(service.HeaderParentSpan)
	}
	w.Header().Set(service.HeaderTraceID, run.TraceID)
	ctx := telemetry.NewContext(r.Context(), run)

	sync := r.URL.Query().Get("wait") != "0"
	mode := "async"
	if sync {
		mode = "sync"
	}
	root := run.Start("submit", "cluster",
		telemetry.String("key", key), telemetry.String("mode", mode))

	var res *fwdResult
	if sync {
		res, err = s.co.submitSync(ctx, key, r.URL.RawQuery, body)
	} else {
		res, err = s.co.forwardRun(ctx, key, r.URL.RawQuery, body)
	}
	if err != nil {
		root.Attr(telemetry.String("outcome", outcomeClass(err))).End()
		s.writeForwardError(w, err)
		return
	}
	root.Attr(telemetry.String("outcome", outcomeOK),
		telemetry.Int("status", int64(res.status))).End()

	node := res.nodeName()
	// Retain the coordinator run under the qualified run id so the trace
	// endpoint can stitch; first registration wins, so a coalesced replay
	// never displaces the submit that actually routed.
	if id := res.header.Get("X-Gspc-Run"); id != "" && node != "" {
		s.co.traces.register(qualifyRun(id, node), run, node)
	}

	// A fresh synchronous result fans out to the key's ring successors
	// so an owner failure later degrades to replica-served reads.
	if sync && !res.coalesced && res.status == http.StatusOK &&
		res.header.Get("X-Gspc-Cache") == "miss" && node != "" {
		s.co.replicate(run, key, nreq.Experiment, res.header.Get("X-Gspc-Run"), res.body, node)
	}

	if res.status == http.StatusAccepted && node != "" {
		// Rewrite the async ack so the id is resolvable through the
		// coordinator: "run-000017" → "run-000017@gspc-2".
		var ack map[string]string
		if json.Unmarshal(res.body, &ack) == nil && ack["id"] != "" {
			ack["id"] = qualifyRun(ack["id"], node)
			s.co.traces.register(ack["id"], run, node)
			w.Header().Set("Location", "/v1/runs/"+ack["id"])
			for k, v := range relayHeaders(res.header) {
				w.Header().Set(k, v)
			}
			writeJSON(w, http.StatusAccepted, ack)
			return
		}
	}
	s.relay(w, res, node)
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	id, node, ok := s.splitKnownRun(w, r)
	if !ok {
		return
	}
	s.co.statusReads.Add(1)
	res, err := s.co.forwardQuery(r.Context(), node, "/v1/runs/"+id)
	if err != nil {
		s.writeForwardError(w, err)
		return
	}
	s.relay(w, res, node)
}

// handleRunTrace serves a run's distributed trace. The member's exported
// document is fetched as usual; when the coordinator still retains its
// own run for the submit, the two are stitched into one Perfetto
// document — coordinator spans on pid 1, member spans on pid 2, member
// timestamps rebased through the clock-offset estimate. Otherwise the
// member document is relayed unstitched (X-Gspc-Trace-Stitched: 0).
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	qualified := r.PathValue("id")
	id, node, ok := s.splitKnownRun(w, r)
	if !ok {
		return
	}
	s.co.statusReads.Add(1)
	res, err := s.co.forwardQuery(r.Context(), node, "/v1/runs/"+id+"/trace")
	if err != nil {
		s.writeForwardError(w, err)
		return
	}
	if res.status != http.StatusOK {
		s.relay(w, res, node)
		return
	}
	entry, retained := s.co.traces.lookup(qualified)
	if !retained {
		s.co.traceFallbacks.Add(1)
		w.Header().Set("X-Gspc-Trace-Stitched", "0")
		s.relay(w, res, node)
		return
	}
	m, _ := s.co.Member(node)
	stitched, err := stitchTrace(entry.run, s.co.cfg.Name, node, res.body, m.offsets.Estimate())
	if err != nil {
		s.co.traceFallbacks.Add(1)
		s.co.cfg.Logger.Warn("trace stitch failed, relaying member document",
			"coordinator", s.co.cfg.Name, "run_id", qualified, "node", node,
			"trace_id", entry.run.TraceID, "err", err)
		w.Header().Set("X-Gspc-Trace-Stitched", "0")
		s.relay(w, res, node)
		return
	}
	s.co.tracesStitched.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gspc-Trace-Stitched", "1")
	w.Header().Set(service.HeaderTraceID, entry.run.TraceID)
	w.WriteHeader(http.StatusOK)
	w.Write(stitched)
}

// splitKnownRun parses {id} as a qualified run id and 404s unknown
// shapes and members.
func (s *Server) splitKnownRun(w http.ResponseWriter, r *http.Request) (id, node string, ok bool) {
	id, node, ok = splitRun(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound,
			"cluster run ids look like run-000017@node; this one has no @node suffix")
		return "", "", false
	}
	if _, known := s.co.Member(node); !known {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown member %q", node))
		return "", "", false
	}
	return id, node, true
}

// handleEvents streams the cluster timeline as NDJSON, oldest first.
// ?since=N resumes past a previously returned cursor (the
// X-Gspc-Events-Cursor header carries the newest Seq); ?max=N caps the
// batch.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "since must be a non-negative integer cursor")
			return
		}
		since = n
	}
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "max must be a non-negative integer")
			return
		}
		max = n
	}
	events, cursor := s.co.events.Since(since, max)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Gspc-Events-Cursor", strconv.FormatInt(cursor, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, ev := range events {
		enc.Encode(ev)
	}
}

// handleDebug serves the coordinator flight recorder — recent routing
// decisions, newest first — plus the tail of the cluster timeline, so
// one curl answers "what has the coordinator been doing lately".
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	events, cursor := s.co.events.Since(0, 0)
	const debugEventTail = 64
	if len(events) > debugEventTail {
		events = events[len(events)-debugEventTail:]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"coordinator":     s.co.cfg.Name,
		"ring_generation": s.co.ringGeneration(),
		"total_events":    s.co.flight.Total(),
		"events":          s.co.flight.Events(),
		"cluster_events":  events,
		"events_cursor":   cursor,
		"traces_retained": s.co.traces.len(),
	})
}

// handleFederate serves the merged member metrics (node-labeled). 404
// when federation is disabled, so a scraper fails loudly rather than
// reading an empty page forever.
func (s *Server) handleFederate(w http.ResponseWriter, r *http.Request) {
	if s.co.cfg.DisableFederation {
		writeError(w, http.StatusNotFound, "metrics federation is disabled on this coordinator")
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.Write(s.co.FederatedExposition())
}

// relayHeaders selects the response headers worth propagating from a
// member: serving metadata and backpressure hints, never hop-by-hop
// headers.
func relayHeaders(h http.Header) map[string]string {
	out := map[string]string{}
	for _, k := range []string{"Content-Type", "Retry-After",
		"X-Gspc-Cache", "X-Gspc-Duration-Ms", "X-Gspc-Node"} {
		if v := h.Get(k); v != "" {
			out[k] = v
		}
	}
	return out
}

// nodeName resolves which member produced a forwarded response: the
// member the coordinator picked, or — for coalesced replays — the
// X-Gspc-Node header the serving node stamped.
func (r *fwdResult) nodeName() string {
	if r.member != nil {
		return r.member.Spec.Name
	}
	return r.header.Get("X-Gspc-Node")
}

// relay writes a forwarded response to the client, qualifying the run
// id header with the serving node when known.
func (s *Server) relay(w http.ResponseWriter, res *fwdResult, node string) {
	for k, v := range relayHeaders(res.header) {
		w.Header().Set(k, v)
	}
	if node == "" {
		node = res.nodeName()
	}
	if run := res.header.Get("X-Gspc-Run"); run != "" && node != "" {
		w.Header().Set("X-Gspc-Run", qualifyRun(run, node))
	}
	if res.coalesced {
		w.Header().Set("X-Gspc-Cluster-Coalesced", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (s *Server) writeForwardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoMembers):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request cancelled while forwarding: "+err.Error())
	default:
		writeError(w, http.StatusBadGateway, "forward failed: "+err.Error())
	}
}
