package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// DIP is the dynamic insertion policy of Qureshi et al. [40] (Section
// 1.1.1 of the paper): a set duel between traditional LRU insertion (new
// blocks enter at MRU) and bimodal insertion (new blocks enter at LRU,
// except one in every bipEpsilon fills). Hits always promote to MRU and
// the LRU block is always the victim. DIP predates RRIP and is included
// as an extension baseline.
type DIP struct {
	ways  int
	clock uint64
	stamp []uint64
	// lip marks blocks inserted at the LRU position; they carry the
	// minimum stamp so they are the next victim unless promoted.
	fills uint64
	psel  int
}

var _ cachesim.Policy = (*DIP)(nil)

// NewDIP returns a dynamic insertion policy.
func NewDIP() *DIP { return &DIP{} }

// Name implements cachesim.Policy.
func (p *DIP) Name() string { return "DIP" }

// Reset implements cachesim.Policy.
func (p *DIP) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 1
	p.stamp = make([]uint64, sets*ways)
	p.fills = 0
	p.psel = 1<<(pselBits-1) - 1
}

// Hit implements cachesim.Policy: promote to MRU.
func (p *DIP) Hit(set, way int, a stream.Access) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// dipLeader reuses the DRRIP constituency scheme: residue 0 leads for
// MRU insertion (classic LRU), residue 33 for bimodal insertion.
func dipLeader(set int) int { return drripLeader(set) }

// Fill implements cachesim.Policy.
func (p *DIP) Fill(set, way int, a stream.Access) {
	leader := dipLeader(set)
	switch leader {
	case leaderSRRIP: // MRU-insertion leader
		if p.psel < 1<<pselBits-1 {
			p.psel++
		}
	case leaderBRRIP: // BIP leader
		if p.psel > 0 {
			p.psel--
		}
	}
	useBIP := false
	switch leader {
	case leaderSRRIP:
		useBIP = false
	case leaderBRRIP:
		useBIP = true
	default:
		useBIP = p.psel >= 1<<(pselBits-1)
	}
	i := set*p.ways + way
	if useBIP {
		p.fills++
		if p.fills%bipEpsilon != 0 {
			// LRU-position insertion: oldest possible stamp. Find the
			// current minimum and go below it (stamps are unique and
			// positive, so 0 never collides with a live MRU stamp).
			p.stamp[i] = p.minStamp(set)
			return
		}
	}
	p.clock++
	p.stamp[i] = p.clock
}

// minStamp returns a stamp strictly older than every valid block's in
// the set (half the minimum, floored at zero).
func (p *DIP) minStamp(set int) uint64 {
	base := set * p.ways
	min := p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			min = s
		}
	}
	if min == 0 {
		return 0
	}
	return min - 1
}

// Victim implements cachesim.Policy: evict the LRU block.
func (p *DIP) Victim(set int, a stream.Access) int {
	base := set * p.ways
	victim, oldest := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < oldest {
			victim, oldest = w, s
		}
	}
	return victim
}

// Evict implements cachesim.Policy.
func (p *DIP) Evict(set, way int) { p.stamp[set*p.ways+way] = 0 }

// PSEL exposes the duel selector for tests.
func (p *DIP) PSEL() int { return p.psel }
