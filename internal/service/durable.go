package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"gspc/internal/durable"
	"gspc/internal/harness"
	"gspc/internal/telemetry"
)

// This file is the engine's persistence glue: translating job
// lifecycle transitions into durable.Records on the way down and a
// recovered durable.State back into jobs, cache entries, and the
// serve-stale table on the way up. Journal failures degrade (counted,
// logged, serving continues); only an unusable data directory blocks
// boot.

// recoveryStats tallies what boot restored, for /metricsz: operators
// can tell a recovered restart from a cold rebuild.
type recoveryStats struct {
	// RecoveredDone/RecoveredFailed are terminal jobs restored
	// queryable by their original ids.
	RecoveredDone   int64 `json:"recovered_done"`
	RecoveredFailed int64 `json:"recovered_failed"`
	// ResubmittedQueued jobs went back onto the queue with their
	// original ids.
	ResubmittedQueued int64 `json:"resubmitted_queued"`
	// MarkedRetryable jobs were running mid-crash and are now failed
	// with a retryable classification.
	MarkedRetryable int64 `json:"marked_retryable"`
	// CacheRestored counts result-cache entries rehydrated from disk.
	CacheRestored int64 `json:"cache_restored"`
	// SchemaDropped counts persisted payloads rejected because their
	// harness.Result schema version does not match this build.
	SchemaDropped int64 `json:"schema_dropped"`
}

// openDurable opens (or creates) the store under Config.DataDir,
// folds the recovered state into the engine, and compacts immediately
// so the recovery outcome itself is durable. Called from NewEngine
// before any worker starts; no locking needed.
func (e *Engine) openDurable() error {
	store, st, err := durable.Open(e.cfg.DataDir, durable.Options{
		FS:            e.cfg.DurableFS,
		Fsync:         e.cfg.Fsync,
		SnapshotEvery: e.cfg.SnapshotEvery,
		SchemaVersion: harness.ResultSchemaVersion,
		// The durable package keeps its printf-style seam; adapt it onto
		// the engine's structured logger.
		Logf: func(format string, args ...any) {
			e.cfg.Logger.Warn(fmt.Sprintf(format, args...), "component", "durable")
		},
	})
	if err != nil {
		return err
	}
	e.store = store
	e.restore(st)
	// Persist the restored reality (mid-flight jobs re-marked, torn
	// tail gone) and reset the journal in one stroke.
	if err := store.Compact(e.exportStateLocked()); err != nil {
		e.cfg.Logger.Warn("post-recovery compaction failed (journal replay still covers it)", "err", err)
	}
	e.flight.Add(telemetry.Event{Type: "recovery", Detail: fmt.Sprintf(
		"restored %d done, %d failed; resubmitted %d; marked %d retryable; cache %d",
		e.recovery.RecoveredDone, e.recovery.RecoveredFailed,
		e.recovery.ResubmittedQueued, e.recovery.MarkedRetryable, e.recovery.CacheRestored)})
	return nil
}

// restore folds a recovered state into the engine: cache and
// serve-stale entries are rehydrated (payloads failing the schema
// check are dropped, not trusted), terminal jobs become queryable
// again under their original ids, jobs that were mid-flight during
// the crash are marked failed-retryable, and still-queued jobs are
// re-enqueued with their original ids so pollers' run URLs survive
// the restart.
func (e *Engine) restore(st *durable.State) {
	e.nextID = st.NextID
	for _, ce := range st.Cache {
		if !e.validPayload(ce.Body) {
			continue
		}
		e.cache.Put(ce.Key, &cached{body: ce.Body, runID: ce.RunID})
		e.recovery.CacheRestored++
	}
	for exp, ce := range st.LastGood {
		if !e.validPayload(ce.Body) {
			continue
		}
		e.lastGood[exp] = &cached{body: ce.Body, runID: ce.RunID}
	}
	for _, js := range st.JobsBySeq() {
		job := &Job{
			ID:   js.ID,
			Key:  js.Key,
			seq:  js.Seq,
			done: make(chan struct{}),
		}
		if len(js.Request) > 0 {
			// Best-effort: a stale request only matters for resubmission,
			// which re-validates below.
			json.Unmarshal(js.Request, &job.Req)
		}
		switch js.Status {
		case durable.JobDone:
			if e.validPayload(js.Result) {
				job.status = StatusDone
				job.result = &cached{body: js.Result, runID: js.ID}
				e.recovery.RecoveredDone++
			} else {
				job.status = StatusFailed
				job.err = &Error{Category: CategoryInternal, Message: fmt.Sprintf(
					"result persisted by an incompatible build (want schema %d); rerun the experiment",
					harness.ResultSchemaVersion)}
				e.recovery.SchemaDropped++
			}
			close(job.done)
		case durable.JobFailed, durable.JobCancelled:
			job.status = StatusFailed
			if js.Status == durable.JobCancelled {
				job.status = StatusCancelled
			}
			cat := Category(js.Category)
			if cat == "" {
				cat = CategoryInternal
			}
			msg := js.Error
			if msg == "" {
				msg = "failed before the restart (detail not persisted)"
			}
			job.err = &Error{Category: cat, Message: msg}
			e.recovery.RecoveredFailed++
			close(job.done)
		case durable.JobRunning:
			// Mid-flight at the crash: the run died with the process.
			// Failed-retryable tells clients resubmitting is safe and
			// likely to succeed.
			job.status = StatusFailed
			job.finished = time.Now()
			job.err = &Error{Category: CategoryInternal, retryable: true, Message: fmt.Sprintf(
				"job %s was running when the server stopped; resubmit to rerun", js.ID)}
			e.recovery.MarkedRetryable++
			close(job.done)
		default: // durable.JobQueued
			if rejoined := e.resubmit(job, js); !rejoined {
				close(job.done)
			}
		}
		e.jobs[job.ID] = job
		if job.status != StatusQueued && job.status != StatusRunning {
			e.pruneLocked(job.ID)
		}
	}
}

// resubmit re-enqueues a recovered queued job under its original id.
// It reports false — leaving the job failed — when the persisted
// request no longer validates or the (possibly reconfigured, smaller)
// queue cannot hold it.
func (e *Engine) resubmit(job *Job, js *durable.JobState) bool {
	req, err := job.Req.Normalize()
	if err != nil {
		job.status = StatusFailed
		job.err = &Error{Category: CategoryInvalid, Message: fmt.Sprintf(
			"persisted request no longer valid after restart: %v", err)}
		return false
	}
	if len(e.queue) == cap(e.queue) {
		job.status = StatusFailed
		job.err = &Error{Category: CategoryInternal, retryable: true, Message: fmt.Sprintf(
			"job %s could not be re-enqueued after restart (queue full); resubmit", js.ID)}
		return false
	}
	job.Req = req
	job.status = StatusQueued
	job.enqueued = time.Now()
	job.timeout = e.effectiveTimeout(req)
	// No waiter survives a restart; an async poller is assumed to
	// still want the result (same contract as Submit).
	e.queue <- job
	if _, taken := e.inflight[job.Key]; !taken && job.Key != "" {
		e.inflight[job.Key] = job
	}
	e.recovery.ResubmittedQueued++
	return true
}

// validPayload reports whether a persisted result body matches this
// build's schema; mismatches are counted and dropped.
func (e *Engine) validPayload(body []byte) bool {
	if len(body) == 0 {
		return false
	}
	if _, err := harness.DecodeResult(body); err != nil {
		e.recovery.SchemaDropped++
		return false
	}
	return true
}

// journalLocked appends one record, degrading (count + log) on error.
// Callers hold e.mu.
func (e *Engine) journalLocked(r durable.Record) {
	if e.store == nil {
		return
	}
	if err := e.store.Append(r); err != nil {
		e.journalErrors++
		e.cfg.Logger.Warn("journal append failed, durability degraded",
			"record", string(r.Type), "run_id", r.ID, "err", err)
	}
}

// journalSubmitLocked records a freshly-queued job.
func (e *Engine) journalSubmitLocked(job *Job) {
	if e.store == nil {
		return
	}
	data, err := json.Marshal(job.Req)
	if err != nil {
		e.journalErrors++
		e.cfg.Logger.Warn("encode request for journal failed", "run_id", job.ID, "err", err)
		data = nil
	}
	e.journalLocked(durable.Record{
		Type:       durable.RecSubmit,
		ID:         job.ID,
		Seq:        job.seq,
		Key:        job.Key,
		Experiment: job.Req.Experiment,
		Data:       data,
	})
}

// journalFinishLocked records a job's terminal transition.
func (e *Engine) journalFinishLocked(job *Job) {
	if e.store == nil {
		return
	}
	switch job.status {
	case StatusDone:
		e.journalLocked(durable.Record{Type: durable.RecDone, ID: job.ID, Data: job.result.body})
	case StatusCancelled:
		e.journalLocked(durable.Record{Type: durable.RecCancel, ID: job.ID,
			Error: jobErrMessage(job.err), Category: jobErrCategory(job.err)})
	default:
		e.journalLocked(durable.Record{Type: durable.RecFail, ID: job.ID,
			Error: jobErrMessage(job.err), Category: jobErrCategory(job.err)})
	}
}

func jobErrMessage(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func jobErrCategory(err error) string {
	var se *Error
	if errors.As(err, &se) {
		return string(se.Category)
	}
	return string(CategoryInternal)
}

// maybeCompactLocked compacts the journal into a snapshot when enough
// records have accumulated. Callers hold e.mu; the disk write happens
// under the lock, which serializes workers for the snapshot's duration
// — acceptable because state snapshots are small (bounded by
// KeepFinished and the cache capacity) next to experiment runtimes.
func (e *Engine) maybeCompactLocked() {
	if e.store == nil || !e.store.CompactionDue() {
		return
	}
	if err := e.store.Compact(e.exportStateLocked()); err != nil {
		e.cfg.Logger.Warn("journal compaction failed (journal keeps growing until the disk heals)", "err", err)
	}
}

// exportStateLocked reduces the engine to its durable.State. Callers
// hold e.mu (or, during NewEngine, no worker is running yet).
func (e *Engine) exportStateLocked() *durable.State {
	st := durable.NewState(harness.ResultSchemaVersion)
	st.NextID = e.nextID
	for id, job := range e.jobs {
		js := &durable.JobState{
			ID:         id,
			Seq:        job.seq,
			Key:        job.Key,
			Experiment: job.Req.Experiment,
		}
		if data, err := json.Marshal(job.Req); err == nil {
			js.Request = data
		}
		switch job.status {
		case StatusDone:
			js.Status = durable.JobDone
			js.Result = job.result.body
		case StatusFailed:
			js.Status = durable.JobFailed
			js.Error, js.Category = jobErrMessage(job.err), jobErrCategory(job.err)
		case StatusCancelled:
			js.Status = durable.JobCancelled
			js.Error, js.Category = jobErrMessage(job.err), jobErrCategory(job.err)
		case StatusRunning:
			js.Status = durable.JobRunning
		default:
			js.Status = durable.JobQueued
		}
		st.Jobs[id] = js
	}
	st.Cache = e.cache.Export()
	for exp, c := range e.lastGood {
		st.LastGood[exp] = durable.CacheEntry{RunID: c.runID, Body: c.body}
	}
	return st
}

// closeDurable snapshots the final state and closes the store; called
// once the worker pool has fully drained.
func (e *Engine) closeDurable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return
	}
	if err := e.store.Compact(e.exportStateLocked()); err != nil {
		e.cfg.Logger.Warn("final snapshot failed (journal still covers the state)", "err", err)
	}
	if err := e.store.Close(); err != nil {
		e.cfg.Logger.Warn("closing durable store failed", "err", err)
	}
}
