package memmap

// Layout selects how a surface's tiles are ordered in memory.
type Layout uint8

const (
	// LayoutRowMajor places tile rows consecutively (linear-tiled
	// surfaces; the default, and what display engines scan out).
	LayoutRowMajor Layout = iota
	// LayoutMorton interleaves the tile coordinate bits (Z-order),
	// giving 2D locality at every power-of-two granularity — the layout
	// GPUs use for depth and texture surfaces so that a screen-space
	// neighborhood maps to a compact memory neighborhood.
	LayoutMorton
)

// String names the layout.
func (l Layout) String() string {
	if l == LayoutMorton {
		return "morton"
	}
	return "rowmajor"
}

// mortonInterleave spreads the low 16 bits of v to even bit positions.
func mortonInterleave(v uint32) uint32 {
	v &= 0xffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// mortonIndex is the Z-order index of tile (tx, ty).
func mortonIndex(tx, ty int) int {
	return int(mortonInterleave(uint32(tx)) | mortonInterleave(uint32(ty))<<1)
}

// NewSurfaceLayout allocates a surface with an explicit tile layout.
// Morton surfaces round their tile grid up to a power-of-two square so
// the index space is dense enough to be collision-free; the padding is
// address space only.
func NewSurfaceLayout(a *Allocator, w, h, bpp int, layout Layout) *Surface {
	s := NewSurface(a, w, h, bpp)
	if layout != LayoutMorton {
		return s
	}
	side := 1
	for side < s.tilesPerRow || side < s.tilesPerCol {
		side <<= 1
	}
	s.layout = LayoutMorton
	s.mortonSide = side
	// Re-allocate with the padded footprint: the original allocation is
	// abandoned (bump allocator; the region stays unused).
	s.Base = a.Alloc(uint64(side*side) * BlockSize)
	return s
}

// tileIndex returns the linear block index of tile (tx, ty) under the
// surface's layout.
func (s *Surface) tileIndex(tx, ty int) int {
	if s.layout == LayoutMorton {
		return mortonIndex(tx, ty)
	}
	return ty*s.tilesPerRow + tx
}

// footprintBlocks returns the number of address blocks the surface
// occupies, including Morton padding.
func (s *Surface) footprintBlocks() int {
	if s.layout == LayoutMorton {
		return s.mortonSide * s.mortonSide
	}
	return s.tilesPerRow * s.tilesPerCol
}

// LayoutKind returns the surface's tile layout.
func (s *Surface) LayoutKind() Layout { return s.layout }

// NewTextureLayout allocates a MIP chain whose levels use the given tile
// layout (GPUs keep texture levels in Morton order for 2D locality).
func NewTextureLayout(a *Allocator, w, h, bpp, maxLevels int, layout Layout) *Texture {
	t := &Texture{}
	for lvl := 0; lvl < maxLevels && w >= 1 && h >= 1; lvl++ {
		t.Levels = append(t.Levels, NewSurfaceLayout(a, w, h, bpp, layout))
		if w == 1 && h == 1 {
			break
		}
		w = max(1, w/2)
		h = max(1, h/2)
	}
	return t
}
