package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/harness"
	"gspc/internal/leakcheck"
)

// injectedRunner wraps a stub runner with a fault injector: the injector
// decides panic / transient error / delay / pass before the stub result
// is produced, exactly like faults inside a real experiment run.
func injectedRunner(inj faultinject.Injector, calls *int64) func(context.Context, Request) (*harness.Result, error) {
	return func(ctx context.Context, r Request) (*harness.Result, error) {
		if calls != nil {
			atomic.AddInt64(calls, 1)
		}
		if err := inj.Apply(ctx); err != nil {
			return nil, err
		}
		return &harness.Result{Experiment: r.Experiment, Title: "chaos stub", Scale: r.Scale}, nil
	}
}

// sleepyRunner simulates a long experiment that honors cancellation —
// the contract harness.RunResultContext provides.
func sleepyRunner(d time.Duration) func(context.Context, Request) (*harness.Result, error) {
	return func(ctx context.Context, r Request) (*harness.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
			return &harness.Result{Experiment: r.Experiment, Title: "slept"}, nil
		}
	}
}

func mustDo(t *testing.T, e *Engine, req Request) *Reply {
	t.Helper()
	rep, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do(%+v): %v", req, err)
	}
	return rep
}

func doErr(t *testing.T, e *Engine, req Request) *Error {
	t.Helper()
	_, err := e.Do(context.Background(), req)
	if err == nil {
		t.Fatalf("Do(%+v) succeeded, want typed failure", req)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("Do(%+v) error %v is not a *service.Error", req, err)
	}
	return se
}

// TestChaosPanicIsolation is the acceptance criterion for panic
// containment: an injected panic inside the runner becomes a
// StatusFailed job carrying the recovered stack, and the single worker
// survives to serve the very next request.
func TestChaosPanicIsolation(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Panic())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		Run: injectedRunner(inj, nil)})

	se := doErr(t, e, Request{Experiment: "fig1"})
	if se.Category != CategoryPanic {
		t.Errorf("category = %q, want panic", se.Category)
	}
	if se.Stack == "" {
		t.Error("panic failure carries no stack")
	}
	// Same worker, next request: the pool did not lose a goroutine.
	if rep := mustDo(t, e, Request{Experiment: "fig4"}); rep.Cached {
		t.Error("post-panic request unexpectedly cached")
	}
	m := e.Metrics()
	if m.Panics != 1 || m.Failed != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v, want 1 panic / 1 failed / 1 completed", m)
	}
}

// TestPanicStackExposureGated: the recovered stack stays out of the
// JobStatus wire snapshot unless ExposeStacks is set — internal code
// paths are not disclosed to HTTP clients by default.
func TestPanicStackExposureGated(t *testing.T) {
	for _, expose := range []bool{false, true} {
		inj := faultinject.NewSequence(faultinject.Panic())
		e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
			ExposeStacks: expose, Run: injectedRunner(inj, nil)})
		job, _, err := e.Submit(Request{Experiment: "fig1"})
		if err != nil {
			t.Fatal(err)
		}
		<-job.done
		st, ok := e.JobStatus(job.ID)
		if !ok || st.ErrorCategory != CategoryPanic {
			t.Fatalf("expose=%v: status %+v, want a panic failure", expose, st)
		}
		if expose && st.ErrorStack == "" {
			t.Error("ExposeStacks=true but JobStatus carries no stack")
		}
		if !expose && st.ErrorStack != "" {
			t.Error("ExposeStacks=false but JobStatus leaks the recovered stack")
		}
	}
}

func TestChaosRetryTransientThenSuccess(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Fail(), faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8,
		MaxRetries: 2, RetryBackoff: time.Millisecond, Run: injectedRunner(inj, nil)})

	rep := mustDo(t, e, Request{Experiment: "fig1"})
	st, ok := e.JobStatus(rep.RunID)
	if !ok {
		t.Fatal("job vanished")
	}
	if st.Status != StatusDone || st.Attempts != 3 {
		t.Errorf("status = %s attempts = %d, want done after 3 attempts", st.Status, st.Attempts)
	}
	if m := e.Metrics(); m.Retries != 2 || m.Failed != 0 {
		t.Errorf("metrics = %+v, want 2 retries and no failure", m)
	}
}

func TestChaosRetryExhaustion(t *testing.T) {
	inj := faultinject.NewSequence(
		faultinject.Fail(), faultinject.Fail(), faultinject.Fail(), faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8,
		MaxRetries: 1, RetryBackoff: time.Millisecond, Run: injectedRunner(inj, nil)})

	se := doErr(t, e, Request{Experiment: "fig1"})
	if se.Category != CategoryInternal || !se.Retryable() {
		t.Errorf("exhausted retries: category %q retryable %v, want retryable internal", se.Category, se.Retryable())
	}
	var te *faultinject.TransientError
	if !errors.As(se, &te) {
		t.Errorf("typed error does not unwrap to the injected TransientError: %v", se)
	}
	if m := e.Metrics(); m.Retries != 1 || m.Failed != 1 {
		t.Errorf("metrics = %+v, want exactly 1 retry then failure", m)
	}
}

// TestChaosDeadlineTypedTimeout is the acceptance criterion for
// deadlines: a request with timeout_ms set on a long-running experiment
// comes back as a typed timeout within 2x the deadline, and the worker
// is reusable immediately.
func TestChaosDeadlineTypedTimeout(t *testing.T) {
	const deadline = 500 * time.Millisecond
	slow := sleepyRunner(time.Hour)
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8,
		Run: func(ctx context.Context, r Request) (*harness.Result, error) {
			if r.Experiment == "fig1" {
				return slow(ctx, r)
			}
			return &harness.Result{Experiment: r.Experiment, Title: "fast"}, nil
		}})

	start := time.Now()
	se := doErr(t, e, Request{Experiment: "fig1", TimeoutMS: int64(deadline / time.Millisecond)})
	elapsed := time.Since(start)
	if se.Category != CategoryTimeout {
		t.Errorf("category = %q, want timeout", se.Category)
	}
	if elapsed > 2*deadline {
		t.Errorf("timeout surfaced after %v, want within %v", elapsed, 2*deadline)
	}
	// Deadlines are never retried.
	if m := e.Metrics(); m.Timeouts != 1 || m.Retries != 0 {
		t.Errorf("metrics = %+v, want 1 timeout and 0 retries", m)
	}
	// The sole worker must be free right away for a fast job.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Do(context.Background(), Request{Experiment: "fig4", TimeoutMS: 2000}); err != nil {
			t.Errorf("post-timeout request: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker not reusable after a timed-out job")
	}
}

func TestChaosBreakerTripFastFailRecover(t *testing.T) {
	var calls int64
	inj := faultinject.NewSequence(faultinject.Fail(), faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
		Run: injectedRunner(inj, &calls)})

	doErr(t, e, Request{Experiment: "fig1", Frames: 1})
	doErr(t, e, Request{Experiment: "fig1", Frames: 2}) // second consecutive failure trips

	// While open: fast-fail without burning a worker.
	_, err := e.Do(context.Background(), Request{Experiment: "fig1", Frames: 3})
	var open *CircuitOpenError
	if !errors.As(err, &open) {
		t.Fatalf("err = %v, want CircuitOpenError", err)
	}
	if open.Experiment != "fig1" || open.RetryAfter <= 0 {
		t.Errorf("CircuitOpenError = %+v", open)
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("runner ran %d times, want 2 (fast-fail must not run)", got)
	}
	// Other experiments are unaffected: breakers are per-experiment.
	mustDo(t, e, Request{Experiment: "fig4"})
	m := e.Metrics()
	if m.BreakerTrips != 1 || m.BreakerFastFails != 1 || m.BreakersOpen != 1 {
		t.Errorf("metrics = %+v, want 1 trip / 1 fast-fail / 1 open", m)
	}

	// After the cooldown the probe runs; the script is exhausted so it
	// passes and the breaker closes.
	time.Sleep(150 * time.Millisecond)
	mustDo(t, e, Request{Experiment: "fig1", Frames: 3})
	if m := e.Metrics(); m.BreakersOpen != 0 {
		t.Errorf("breaker still open after successful probe: %+v", m)
	}
}

func TestChaosBreakerProbeFailureReopens(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Fail(), faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond,
		Run: injectedRunner(inj, nil)})

	doErr(t, e, Request{Experiment: "fig1", Frames: 1}) // trips immediately
	time.Sleep(80 * time.Millisecond)
	doErr(t, e, Request{Experiment: "fig1", Frames: 2}) // probe admitted, fails, reopens

	_, err := e.Do(context.Background(), Request{Experiment: "fig1", Frames: 3})
	var open *CircuitOpenError
	if !errors.As(err, &open) {
		t.Fatalf("after failed probe: err = %v, want CircuitOpenError", err)
	}
	if m := e.Metrics(); m.BreakerTrips != 2 {
		t.Errorf("breaker trips = %d, want 2 (initial + failed probe)", m.BreakerTrips)
	}
}

// TestChaosAbandonedProbeReleasesBreaker: a half-open probe abandoned
// while queued must hand its slot back to the breaker. Without the
// rollback the probe never reaches breaker.record, probing stays true
// forever, and every future submission for the experiment fast-fails
// until restart.
func TestChaosAbandonedProbeReleasesBreaker(t *testing.T) {
	var calls int64
	started := make(chan string, 4)
	release := make(chan struct{})
	inj := faultinject.NewSequence(faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond,
		Run: func(ctx context.Context, r Request) (*harness.Result, error) {
			if r.Experiment == "fig4" {
				started <- r.Experiment
				<-release
				return &harness.Result{Experiment: r.Experiment, Title: "gate"}, nil
			}
			atomic.AddInt64(&calls, 1)
			if err := inj.Apply(ctx); err != nil {
				return nil, err
			}
			return &harness.Result{Experiment: r.Experiment, Title: "probe"}, nil
		}})

	doErr(t, e, Request{Experiment: "fig1", Frames: 1}) // trips immediately

	// Occupy the only worker so the upcoming probe stays queued.
	if _, _, err := e.Submit(Request{Experiment: "fig4"}); err != nil {
		t.Fatal(err)
	}
	<-started
	time.Sleep(60 * time.Millisecond) // cooldown elapses; next fig1 submission is the probe

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, Request{Experiment: "fig1", Frames: 2})
		errc <- err
	}()
	waitFor(t, func() bool { return e.Metrics().Requests >= 3 })
	cancel() // abandon the queued probe
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned probe Do returned %v, want context.Canceled", err)
	}

	// The half-open slot must be free again: a fresh submission is
	// admitted as the new probe rather than fast-failing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Do(context.Background(), Request{Experiment: "fig1", Frames: 3}); err != nil {
			t.Errorf("fresh probe after abandonment: %v", err)
		}
	}()
	waitFor(t, func() bool { return e.Metrics().Requests >= 4 })
	close(release) // drain the gate; the worker skips the corpse, runs the probe
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("breaker never released the abandoned probe's slot")
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("fig1 ran %d times, want 2 (initial failure + successful probe; the corpse never runs)", got)
	}
	if m := e.Metrics(); m.Cancelled != 1 || m.BreakersOpen != 0 {
		t.Errorf("metrics = %+v, want 1 cancelled job and no open breakers", m)
	}
}

func TestChaosServeStaleWhileOpen(t *testing.T) {
	inj := faultinject.NewSequence(faultinject.Pass(), faultinject.Fail())
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: time.Minute, ServeStale: true,
		Run: injectedRunner(inj, nil)})

	good := mustDo(t, e, Request{Experiment: "fig1", Frames: 1})
	doErr(t, e, Request{Experiment: "fig1", Frames: 2}) // opens the breaker

	rep := mustDo(t, e, Request{Experiment: "fig1", Frames: 3})
	if !rep.Stale {
		t.Error("open breaker with ServeStale should mark the reply stale")
	}
	if string(rep.Body) != string(good.Body) {
		t.Error("stale reply is not the experiment's last good result")
	}
	if m := e.Metrics(); m.StaleServed != 1 {
		t.Errorf("stale_served = %d, want 1", m.StaleServed)
	}
}

// TestChaosAbandonedQueuedJobCancelled covers the fixed Do semantics: a
// queued job whose only waiter leaves is cancelled in place, never runs,
// and does not trap later identical requests via coalescing.
func TestChaosAbandonedQueuedJobCancelled(t *testing.T) {
	var calls int64
	started := make(chan string, 4)
	release := make(chan struct{})
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 8,
		Run: gatedRunner(started, release, &calls)})

	// Occupy the only worker with an async job (not abandonable).
	if _, _, err := e.Submit(Request{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	<-started

	// A synchronous caller queues fig4 and then gives up.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, Request{Experiment: "fig4"})
		errc <- err
	}()
	waitFor(t, func() bool { return e.Metrics().Requests >= 2 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Do returned %v, want context.Canceled", err)
	}
	if m := e.Metrics(); m.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", m.Cancelled)
	}

	close(release) // drain the worker
	// The cancelled job must never have run, and a fresh identical
	// request must start a new job rather than coalesce onto the corpse.
	rep := mustDo(t, e, Request{Experiment: "fig4"})
	if rep.Cached {
		t.Error("fresh fig4 request served from cache; cancelled job leaked a result")
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("runner ran %d times, want 2 (fig1 + fresh fig4; cancelled job never runs)", got)
	}
}

// TestChaosSubmittedJobSurvivesWaiterLoss: a job with an async submitter
// keeps running when a coalesced synchronous waiter leaves.
func TestChaosSubmittedJobSurvivesWaiterLoss(t *testing.T) {
	var calls int64
	started := make(chan string, 4)
	release := make(chan struct{})
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 8,
		Run: gatedRunner(started, release, &calls)})

	if _, _, err := e.Submit(Request{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	job, _, err := e.Submit(Request{Experiment: "fig4"}) // queued, poller interested
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, Request{Experiment: "fig4"}) // coalesces onto job
		errc <- err
	}()
	waitFor(t, func() bool { return e.Metrics().Coalesced >= 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("coalesced Do returned %v, want context.Canceled", err)
	}

	close(release)
	select {
	case <-job.done:
	case <-time.After(5 * time.Second):
		t.Fatal("submitted job never finished")
	}
	st, _ := e.JobStatus(job.ID)
	if st.Status != StatusDone {
		t.Errorf("submitted job status = %s, want done (a poller still wants it)", st.Status)
	}
	if m := e.Metrics(); m.Cancelled != 0 {
		t.Errorf("cancelled = %d, want 0", m.Cancelled)
	}
}

// TestChaosShutdownDuringRetryBackoff: Shutdown must cut a retry backoff
// short instead of waiting it out — no deadlock, no double close.
func TestChaosShutdownDuringRetryBackoff(t *testing.T) {
	leakcheck.Check(t)
	inj := faultinject.NewSequence(
		faultinject.Fail(), faultinject.Fail(), faultinject.Fail(), faultinject.Fail())
	e, err := NewEngine(Config{Workers: 1, CacheEntries: 8, Logger: discardLogger(),
		MaxRetries: 3, RetryBackoff: time.Minute, Run: injectedRunner(inj, nil)})
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := e.Submit(Request{Experiment: "fig1"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return e.Metrics().Retries >= 1 }) // now sleeping the backoff

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during backoff: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Shutdown took %v; the minute-long backoff was not aborted", elapsed)
	}
	select {
	case <-job.done:
	case <-time.After(time.Second):
		t.Fatal("job done never closed after drain")
	}
	st, _ := e.JobStatus(job.ID)
	if st.Status != StatusFailed {
		t.Errorf("job status = %s, want failed with the last transient error", st.Status)
	}
}

// TestChaosShutdownWithOpenBreaker: draining with an open breaker must
// not deadlock, and post-shutdown submissions fail cleanly.
func TestChaosShutdownWithOpenBreaker(t *testing.T) {
	leakcheck.Check(t)
	inj := faultinject.NewSequence(faultinject.Fail())
	e, err := NewEngine(Config{Workers: 2, CacheEntries: 8, MaxRetries: -1, Logger: discardLogger(),
		BreakerThreshold: 1, BreakerCooldown: time.Minute, Run: injectedRunner(inj, nil)})
	if err != nil {
		t.Fatal(err)
	}
	doErr(t, e, Request{Experiment: "fig1"}) // opens the breaker

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with open breaker: %v", err)
	}
	if _, _, err := e.Submit(Request{Experiment: "fig1"}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit: %v, want ErrShuttingDown", err)
	}
}

// TestChaosRandomStorm fires a deterministic storm of panics, transient
// errors, delays, and client abandonments at a small engine and asserts
// the system-level invariants: every tracked job reaches a terminal
// state, the engine still serves fresh work afterwards, and (via
// leakcheck.Check in newTestEngine) no goroutine survives the drain.
func TestChaosRandomStorm(t *testing.T) {
	inj := faultinject.NewRandom(42, faultinject.Spec{
		PanicRate: 0.15, ErrorRate: 0.25, DelayRate: 0.2, Delay: 2 * time.Millisecond})
	e := newTestEngine(t, Config{Workers: 4, QueueDepth: 16, CacheEntries: 8,
		MaxRetries: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
		JobTimeout: time.Second,
		Run:        injectedRunner(inj, nil)})

	experiments := []string{"fig1", "fig4", "fig5", "fig7"}
	var wg sync.WaitGroup
	var jobs sync.Map // id -> struct{}
	for i := 0; i < 80; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := Request{Experiment: experiments[i%len(experiments)], Frames: i%7 + 1}
			if i%2 == 0 {
				// Synchronous caller with a tight patience window: many of
				// these abandon their jobs mid-queue.
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				e.Do(ctx, req) //nolint:errcheck // any outcome is legal in the storm
				return
			}
			if job, _, err := e.Submit(req); err == nil && job != nil {
				jobs.Store(job.ID, job)
			}
		}()
	}
	wg.Wait()

	// Every surviving job must reach a terminal state.
	jobs.Range(func(_, v any) bool {
		job := v.(*Job)
		select {
		case <-job.done:
		case <-time.After(10 * time.Second):
			st, _ := e.JobStatus(job.ID)
			t.Fatalf("job %s stuck in %s after the storm", job.ID, st.Status)
		}
		st, ok := e.JobStatus(job.ID)
		if ok && st.Status != StatusDone && st.Status != StatusFailed && st.Status != StatusCancelled {
			t.Errorf("job %s in non-terminal state %s", job.ID, st.Status)
		}
		return true
	})

	// The engine must still serve: fig12 was untouched by the storm, so
	// its breaker is closed; retry through residual injected faults.
	waitFor(t, func() bool {
		_, err := e.Do(context.Background(), Request{Experiment: "fig12"})
		return err == nil
	})

	m := e.Metrics()
	if m.Requests == 0 || m.Completed+m.Failed+m.Cancelled == 0 {
		t.Errorf("storm left no trace in metrics: %+v", m)
	}
	t.Logf("storm metrics: completed=%d failed=%d cancelled=%d retries=%d panics=%d timeouts=%d trips=%d fastfails=%d",
		m.Completed, m.Failed, m.Cancelled, m.Retries, m.Panics, m.Timeouts, m.BreakerTrips, m.BreakerFastFails)
}

// waitFor polls cond until it holds or the test deadline budget (10s)
// runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
