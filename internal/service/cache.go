package service

import (
	"fmt"
	"hash/fnv"
	"sync"

	"gspc/internal/cachesim"
	"gspc/internal/durable"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

// resultCache is a fixed-capacity key/value store whose eviction order is
// delegated to one of the repo's LLC replacement policies: the cache is
// modeled as a single fully-associative set with one way per entry, and
// every Get/Put is translated into the Hit/Fill/Victim/Evict callbacks a
// cachesim.Policy expects. The simulator's policies thus manage the
// simulator's own results.
type resultCache struct {
	mu     sync.Mutex
	pol    cachesim.Policy
	ways   int
	keys   []string // way -> key ("" = free)
	vals   []*cached
	byKey  map[string]int
	free   []int
	seq    int64
	hits   int64
	misses int64
	// evictions counts entries displaced by the policy; declined counts
	// Puts the policy refused a victim for (possible with bypassing
	// policies), which simply leave the new entry uncached.
	evictions int64
	declined  int64
	// bytes tracks resident result-body bytes, the figure the memory
	// governor accounts this cache at.
	bytes int64
}

// cached is one stored result: the struct for API consumers plus the
// exact JSON bytes of the first computation, so replays are
// byte-identical, and the id of the job that computed it.
type cached struct {
	body  []byte
	runID string
}

// cachePolicies maps the -cache-policy flag values to constructors. Only
// stateless-per-instance baseline policies make sense here; the paper's
// graphics-stream policies key on stream kinds the cache cannot supply.
var cachePolicies = map[string]func() cachesim.Policy{
	"lru":   func() cachesim.Policy { return policy.NewLRU() },
	"nru":   func() cachesim.Policy { return policy.NewNRU() },
	"drrip": func() cachesim.Policy { return policy.NewDRRIP(2) },
}

// CachePolicyNames lists the accepted -cache-policy values.
func CachePolicyNames() []string { return []string{"lru", "nru", "drrip"} }

// newResultCache builds a cache with the given entry capacity; capacity
// <= 0 disables caching (every lookup misses, Put is a no-op).
func newResultCache(capacity int, policyName string) (*resultCache, error) {
	if capacity <= 0 {
		return &resultCache{}, nil
	}
	mk, ok := cachePolicies[policyName]
	if !ok {
		return nil, fmt.Errorf("service: unknown cache policy %q (have %v)", policyName, CachePolicyNames())
	}
	c := &resultCache{
		pol:   mk(),
		ways:  capacity,
		keys:  make([]string, capacity),
		vals:  make([]*cached, capacity),
		byKey: make(map[string]int, capacity),
	}
	for w := capacity - 1; w >= 0; w-- {
		c.free = append(c.free, w)
	}
	c.pol.Reset(1, capacity)
	return c, nil
}

// access synthesizes the stream.Access a policy callback expects for a
// cache key: a stable per-key block address (so revisits look like block
// reuse to the policy) and a monotone sequence number.
func (c *resultCache) access(key string) stream.Access {
	h := fnv.New64a()
	h.Write([]byte(key))
	c.seq++
	return stream.Access{Addr: h.Sum64() << 6, Seq: c.seq, Kind: stream.Texture}
}

// Get returns the cached entry for key, informing the policy of the hit.
func (c *resultCache) Get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ways == 0 {
		c.misses++
		return nil, false
	}
	w, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.pol.Hit(0, w, c.access(key))
	return c.vals[w], true
}

// Replace stores an entry, overwriting a resident key in place: the
// escalation path upgrades a sampled result to its exact twin under
// the sampled key, so Put's first-write-wins rule must not apply. A
// non-resident key falls through to Put semantics.
func (c *resultCache) Replace(key string, v *cached) {
	c.mu.Lock()
	if c.ways != 0 {
		if w, ok := c.byKey[key]; ok {
			c.bytes += int64(len(v.body)) - int64(len(c.vals[w].body))
			c.vals[w] = v
			c.mu.Unlock()
			return
		}
	}
	c.mu.Unlock()
	c.Put(key, v)
}

// Put stores an entry, asking the policy for a victim when full. A
// second Put of a resident key keeps the original value: results are
// deterministic, so the first computation is as good as any later one
// and replays stay byte-identical.
func (c *resultCache) Put(key string, v *cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ways == 0 {
		return
	}
	if _, ok := c.byKey[key]; ok {
		return
	}
	a := c.access(key)
	var w int
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		w = c.pol.Victim(0, a)
		if w < 0 || w >= c.ways {
			// The policy bypassed the fill; the entry stays uncached.
			c.declined++
			return
		}
		delete(c.byKey, c.keys[w])
		c.pol.Evict(0, w)
		c.evictions++
		c.bytes -= int64(len(c.vals[w].body))
	}
	c.keys[w] = key
	c.vals[w] = v
	c.byKey[key] = w
	c.bytes += int64(len(v.body))
	c.pol.Fill(0, w, a)
}

// Bytes returns the resident result-body bytes, for memory accounting.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Export returns every resident entry for snapshotting, in way order
// (stable for a given fill history, though restore order is free to
// differ — the eviction policy state itself is rebuilt, not persisted).
func (c *resultCache) Export() []durable.CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]durable.CacheEntry, 0, len(c.byKey))
	for w, key := range c.keys {
		if key == "" || c.vals[w] == nil {
			continue
		}
		out = append(out, durable.CacheEntry{Key: key, RunID: c.vals[w].runID, Body: c.vals[w].body})
	}
	return out
}

// Len returns the number of resident entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// PolicyName names the eviction policy ("none" when caching is off).
func (c *resultCache) PolicyName() string {
	if c.pol == nil {
		return "none"
	}
	return c.pol.Name()
}

func (c *resultCache) counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
