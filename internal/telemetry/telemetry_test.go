package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunRecordsSpans(t *testing.T) {
	r := NewRun("abc123", 16)
	sp := r.Start("frame", "harness", String("job", "fig12"))
	sp.Attr(Int("accesses", 42))
	sp.End()
	r.Record("queue-wait", "engine", r.Anchor(), r.Anchor().Add(5*time.Millisecond))

	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	if spans[0].Name != "frame" || spans[0].Cat != "harness" {
		t.Errorf("span 0 = %q/%q, want frame/harness", spans[0].Name, spans[0].Cat)
	}
	want := []Attr{{"job", "fig12"}, {"accesses", "42"}}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[0] != want[0] || spans[0].Attrs[1] != want[1] {
		t.Errorf("span 0 attrs = %v, want %v", spans[0].Attrs, want)
	}
	if spans[1].Dur != 5*time.Millisecond {
		t.Errorf("recorded span duration = %s, want 5ms", spans[1].Dur)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRunDropsBeyondCapacity(t *testing.T) {
	r := NewRun("x", 4)
	for i := 0; i < 10; i++ {
		r.Record("s", "c", r.Anchor(), r.Anchor())
	}
	if got := len(r.Snapshot()); got != 4 {
		t.Errorf("snapshot has %d spans, want 4 (capacity)", got)
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestNilRunIsNoOp(t *testing.T) {
	var r *Run
	// None of these may panic.
	r.Start("a", "b").Attr(String("k", "v")).End()
	r.Record("a", "b", time.Now(), time.Now())
	if r.Snapshot() != nil || r.Dropped() != 0 {
		t.Error("nil run reported state")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil run round-tripped through context as non-nil")
	}
	StartFrom(ctx, "a", "b").End()
}

func TestContextCarriesRun(t *testing.T) {
	r := NewRun("deadbeef", 8)
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("run not carried by context")
	}
	StartFrom(ctx, "inner", "cat").End()
	if got := len(r.Snapshot()); got != 1 {
		t.Errorf("StartFrom recorded %d spans, want 1", got)
	}
}

func TestConcurrentPublish(t *testing.T) {
	r := NewRun("race", 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("s", "c", r.Anchor(), r.Anchor().Add(time.Microsecond))
				r.Snapshot() // concurrent reads must be safe
			}
		}()
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 800 {
		t.Errorf("snapshot has %d spans, want 800", got)
	}
}

// TestExportGolden pins the trace-event document for a fixed set of
// recorded spans: schema fields, microsecond timestamps, lane layout,
// and metadata.
func TestExportGolden(t *testing.T) {
	r := NewRun("feedface", 16)
	a := r.Anchor()
	// A 10ms parent with two sequential children, plus one concurrent
	// span overlapping (but not nesting in) the parent's tail.
	r.Record("attempt-0", "engine", a, a.Add(10*time.Millisecond))
	r.Record("frame", "harness", a.Add(1*time.Millisecond), a.Add(4*time.Millisecond))
	r.Record("frame", "harness", a.Add(5*time.Millisecond), a.Add(9*time.Millisecond))
	r.Record("overlap", "other", a.Add(8*time.Millisecond), a.Add(12*time.Millisecond),
		String("k", "v"))

	doc := r.Export(map[string]string{"run_id": "r-1"})
	b := doc.JSON()

	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", parsed.DisplayTimeUnit)
	}
	if parsed.OtherData["trace_id"] != "feedface" || parsed.OtherData["run_id"] != "r-1" {
		t.Errorf("otherData = %v, want trace_id and run_id", parsed.OtherData)
	}
	if len(parsed.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(parsed.TraceEvents))
	}
	// Sorted by start: attempt-0 first.
	ev := parsed.TraceEvents[0]
	if ev.Name != "attempt-0" || ev.Ph != "X" || ev.TS != 0 || ev.Dur != 10000 || ev.TID != 0 {
		t.Errorf("event 0 = %+v, want attempt-0 X ts=0 dur=10000 tid=0", ev)
	}
	// Children nest in the parent's lane.
	for _, i := range []int{1, 2} {
		if parsed.TraceEvents[i].Name != "frame" || parsed.TraceEvents[i].TID != 0 {
			t.Errorf("event %d = %+v, want nested frame on lane 0", i, parsed.TraceEvents[i])
		}
	}
	// The overlapping span is pushed to a second lane.
	ev = parsed.TraceEvents[3]
	if ev.Name != "overlap" || ev.TID != 1 {
		t.Errorf("event 3 = %+v, want overlap on lane 1", ev)
	}
	if ev.Args["k"] != "v" {
		t.Errorf("event 3 args = %v, want k=v", ev.Args)
	}
}

func TestExportReportsDroppedSpans(t *testing.T) {
	r := NewRun("d", 1)
	r.Record("a", "c", r.Anchor(), r.Anchor())
	r.Record("b", "c", r.Anchor(), r.Anchor())
	doc := r.Export(nil)
	if doc.OtherData["dropped_spans"] != "1" {
		t.Errorf("dropped_spans = %q, want 1", doc.OtherData["dropped_spans"])
	}
}

func TestAssignLanesDisjointShareLane(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []SpanRecord{
		{Start: ms(0), Dur: ms(2)},
		{Start: ms(3), Dur: ms(2)}, // disjoint: same lane
		{Start: ms(4), Dur: ms(4)}, // overlaps previous: new lane
	}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 || lanes[2] != 1 {
		t.Errorf("lanes = %v, want [0 0 1]", lanes)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCum := []int64{1, 3, 4, 5} // le=0.1, 1, 10, +Inf
	for i, w := range wantCum {
		if s.Counts[i] != w {
			t.Errorf("cumulative bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramBoundaryGoesInBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1) // exactly on a bound: le="1" includes it
	if s := h.Snapshot(); s.Counts[0] != 1 {
		t.Errorf("le=1 bucket = %d, want 1 (bound is inclusive)", s.Counts[0])
	}
}

func TestCounterVec(t *testing.T) {
	c := NewCounterVec()
	c.Add("texture", 10)
	c.Add("rt", 3)
	c.Add("texture", 5)
	got := c.Snapshot()
	if got["texture"] != 15 || got["rt"] != 3 {
		t.Errorf("snapshot = %v, want texture=15 rt=3", got)
	}
}

// TestExpositionGolden pins the rendered text format byte-for-byte.
func TestExpositionGolden(t *testing.T) {
	var e Exposition
	e.Counter("gspc_requests_total", "Requests received.", 42)
	e.Gauge("gspc_queue_depth", "Jobs queued.", 3)
	e.CounterVec("gspc_llc_stream_hits_total", "LLC hits by stream.", "stream",
		map[string]int64{"texture": 7, "rt": 2})
	h := NewHistogram(0.5, 1)
	h.Observe(0.25)
	h.Observe(2)
	e.Histogram("gspc_job_duration_seconds", "Job wall time.", h.Snapshot())

	want := strings.Join([]string{
		"# HELP gspc_requests_total Requests received.",
		"# TYPE gspc_requests_total counter",
		"gspc_requests_total 42",
		"# HELP gspc_queue_depth Jobs queued.",
		"# TYPE gspc_queue_depth gauge",
		"gspc_queue_depth 3",
		"# HELP gspc_llc_stream_hits_total LLC hits by stream.",
		"# TYPE gspc_llc_stream_hits_total counter",
		`gspc_llc_stream_hits_total{stream="rt"} 2`,
		`gspc_llc_stream_hits_total{stream="texture"} 7`,
		"# HELP gspc_job_duration_seconds Job wall time.",
		"# TYPE gspc_job_duration_seconds histogram",
		`gspc_job_duration_seconds_bucket{le="0.5"} 1`,
		`gspc_job_duration_seconds_bucket{le="1"} 1`,
		`gspc_job_duration_seconds_bucket{le="+Inf"} 2`,
		"gspc_job_duration_seconds_sum 2.25",
		"gspc_job_duration_seconds_count 2",
		"",
	}, "\n")
	if got := string(e.Bytes()); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionEscaping(t *testing.T) {
	var e Exposition
	e.CounterVec("m", "line1\nline2 back\\slash", "l", map[string]int64{"a\"b\nc\\d": 1})
	got := string(e.Bytes())
	if !strings.Contains(got, `# HELP m line1\nline2 back\\slash`) {
		t.Errorf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `m{l="a\"b\nc\\d"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestFlightRingWraps(t *testing.T) {
	f := NewFlight(3)
	for i, typ := range []string{"a", "b", "c", "d", "e"} {
		f.Add(Event{Type: typ, RunID: string(rune('0' + i))})
	}
	ev := f.Events()
	if len(ev) != 3 {
		t.Fatalf("%d events retained, want 3", len(ev))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if ev[i].Type != want {
			t.Errorf("event %d = %q, want %q", i, ev[i].Type, want)
		}
	}
	if f.Total() != 5 {
		t.Errorf("total = %d, want 5", f.Total())
	}
	if ev[0].Time.IsZero() {
		t.Error("event time was not stamped")
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Add(Event{Type: "x"})
	if f.Events() != nil || f.Total() != 0 {
		t.Error("nil flight reported state")
	}
}

func TestBuildInfoSmoke(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" {
		t.Error("go version empty")
	}
	// Under `go test` the main module is the repo module.
	if b.Module != "gspc" {
		t.Errorf("module = %q, want gspc", b.Module)
	}
}

func TestNewTraceIDFormat(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 {
		t.Errorf("trace id %q has length %d, want 16 hex chars", id, len(id))
	}
	for _, c := range id {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("trace id %q contains non-hex %q", id, c)
		}
	}
	if NewTraceID() == id {
		t.Error("two trace ids collided immediately")
	}
}

func TestSimCounters(t *testing.T) {
	before := Sim()
	RecordLLCStream("texture", 100, 60)
	RecordDRAM(10, 5, 7, 2, 1)
	after := Sim()
	if d := after.LLCStreamAccesses["texture"] - before.LLCStreamAccesses["texture"]; d != 100 {
		t.Errorf("texture accesses delta = %d, want 100", d)
	}
	if d := after.LLCStreamHits["texture"] - before.LLCStreamHits["texture"]; d != 60 {
		t.Errorf("texture hits delta = %d, want 60", d)
	}
	if d := after.DRAMRowHits - before.DRAMRowHits; d != 7 {
		t.Errorf("row hits delta = %d, want 7", d)
	}
}
