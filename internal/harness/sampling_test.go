package harness

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/tracecache"
)

func TestEstimateFull(t *testing.T) {
	cases := []struct {
		name          string
		n1, n2        int
		s1, s2, scale float64
		want, tol     float64
	}{
		// Exact fit: n(s) = 1000 + 4e6·s² through the profile scales.
		{"pure model", 1000 + 15625, 1000 + 62500, 0.0625, 0.125, 1, 1000 + 4e6, 1e-6},
		{"pure model half scale", 1000 + 15625, 1000 + 62500, 0.0625, 0.125, 0.5, 1000 + 1e6, 1e-6},
		// Degenerate points fall back to the area ratio from n2.
		{"flat profiles", 5000, 5000, 0.0625, 0.125, 1, 5000 * 64, 1e-6},
		{"swapped scales", 100, 200, 0.125, 0.0625, 1, 200 * 256, 1e-6},
		// The estimate never undershoots the larger profile.
		{"clamped to n2", 100, 101, 0.0625, 0.125, 0.1, 101, 1e-6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := estimateFull(c.n1, c.n2, c.s1, c.s2, c.scale)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("estimateFull(%d,%d,%g,%g,%g) = %v, want %v",
					c.n1, c.n2, c.s1, c.s2, c.scale, got, c.want)
			}
		})
	}
}

// TestPrefixMatchesFull pins the property prefix-truncated synthesis
// rests on: the first records of a capped render are byte-identical to
// the same records of the full render.
func TestPrefixMatchesFull(t *testing.T) {
	o := Options{Scale: 0.1, MaxFramesPerApp: 1, Apps: []string{"Dirt"}}.normalized()
	j := o.Jobs()[0]
	cfg := rendercache.DefaultConfig().Scaled(o.Scale)
	full := stream.NewTrace(0)
	trace.GeneratePackedInto(full, j, o.Scale, cfg)
	const limit = 1000
	pre := stream.NewTrace(limit)
	trace.GeneratePackedPrefix(pre, j, o.Scale, cfg, limit)
	if pre.Len() != limit {
		t.Fatalf("prefix length %d, want %d", pre.Len(), limit)
	}
	for i := 0; i < limit; i++ {
		if pre.At(i) != full.At(i) {
			t.Fatalf("record %d differs: prefix %v, full %v", i, pre.At(i), full.At(i))
		}
	}
}

// TestSampledDeterminism: identical sampled options produce
// byte-identical results, regardless of worker fan-out or whether the
// trace cache is warm.
func TestSampledDeterminism(t *testing.T) {
	run := func(workers int, tc *tracecache.Cache) []byte {
		o := Options{Scale: 0.25, MaxFramesPerApp: 1, Apps: []string{"Dirt", "HAWX"},
			Fidelity: FidelitySampled, Workers: workers, TraceCache: tc}
		r, err := RunResult("fig12", o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	shared := tracecache.New(256 << 20)
	first := run(0, shared)
	if again := run(0, shared); string(again) != string(first) {
		t.Error("same options on a warm cache changed the sampled result")
	}
	if fan := run(4, tracecache.New(256<<20)); string(fan) != string(first) {
		t.Error("worker fan-out changed the sampled result")
	}
}

// TestSampledErrorBounds sweeps set-sampling ratios at a scale where
// interval sampling stays disengaged and pins the worst relative error
// of any fig12 mean column against the exact run. All inputs are
// deterministic, so the measured errors are stable; the bounds carry
// headroom over the measured values (0.10/0.10/0.12) to survive
// unrelated policy tuning.
func TestSampledErrorBounds(t *testing.T) {
	base := Options{Scale: 0.1, MaxFramesPerApp: 1, Apps: []string{"Dirt", "HAWX"},
		TraceCache: tracecache.New(256 << 20)}
	exact, err := RunResult("fig12", base)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Fidelity != FidelityExact || exact.Sampling != nil {
		t.Fatalf("exact run mislabeled: fidelity %q, sampling %+v", exact.Fidelity, exact.Sampling)
	}
	bounds := []struct {
		ratio int
		bound float64
	}{{8, 0.12}, {16, 0.12}, {32, 0.15}}
	for _, c := range bounds {
		o := base
		o.Fidelity = FidelitySampled
		o.SampleSetRatio = c.ratio
		r, err := RunResult("fig12", o)
		if err != nil {
			t.Fatal(err)
		}
		if r.Fidelity != FidelitySampled || r.Sampling == nil {
			t.Fatalf("ratio %d: sampled run mislabeled: fidelity %q, sampling %+v",
				c.ratio, r.Fidelity, r.Sampling)
		}
		if r.Sampling.SetRatio != c.ratio || r.Sampling.SetsSimulated <= 0 ||
			r.Sampling.SetsSimulated >= r.Sampling.SetsTotal {
			t.Errorf("ratio %d: implausible sampling report %+v", c.ratio, r.Sampling)
		}
		worst, worstCol := 0.0, ""
		for col, ev := range exact.Mean {
			if ev == 0 {
				continue
			}
			if re := math.Abs(r.Mean[col]-ev) / math.Abs(ev); re > worst {
				worst, worstCol = re, col
			}
		}
		t.Logf("ratio %d: worst relative error %.4f (%s), %d/%d sets",
			c.ratio, worst, worstCol, r.Sampling.SetsSimulated, r.Sampling.SetsTotal)
		if worst > c.bound {
			t.Errorf("ratio %d: worst relative error %.4f (%s) exceeds bound %.2f",
				c.ratio, worst, worstCol, c.bound)
		}
	}
}

// TestIntervalSamplingEngages checks the interval-sampling path at a
// scale above minIntervalScale: the replayed trace is a prefix, the
// counters are extrapolated, and the report records a window fraction.
func TestIntervalSamplingEngages(t *testing.T) {
	o := Options{Scale: 0.25, MaxFramesPerApp: 1, Apps: []string{"Dirt"},
		Fidelity: FidelitySampled, TraceCache: tracecache.New(256 << 20)}.normalized()
	j := o.Jobs()[0]
	tr, plan, err := acquireFrame(context.Background(), o, j)
	if err != nil {
		t.Fatal(err)
	}
	full, err := genTrace(context.Background(), o, j)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() >= full.Len() {
		t.Errorf("sampled trace has %d records, full %d: no truncation", tr.Len(), full.Len())
	}
	if plan.measStart <= 0 || plan.measStart >= tr.Len() {
		t.Errorf("measured window start %d outside (0,%d)", plan.measStart, tr.Len())
	}
	if plan.warmStart != 0 {
		t.Errorf("warmup starts at %d, want 0 (whole prefix warms)", plan.warmStart)
	}
	if plan.factor <= 1 {
		t.Errorf("extrapolation factor %v, want > 1", plan.factor)
	}
	// The estimate tracks the real full-trace length closely at the
	// profile-anchored scales.
	if ratio := plan.fullEst / float64(full.Len()); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("fullEst %v vs real %d: ratio %.3f outside [0.8, 1.25]",
			plan.fullEst, full.Len(), ratio)
	}

	// Below the engagement scale the full trace is replayed: set
	// sampling only.
	small := o
	small.Scale = 0.1
	small = small.normalized()
	js := small.Jobs()[0]
	trS, planS, err := acquireFrame(context.Background(), small, js)
	if err != nil {
		t.Fatal(err)
	}
	fullS, err := genTrace(context.Background(), small, js)
	if err != nil {
		t.Fatal(err)
	}
	if trS.Len() != fullS.Len() || planS.measStart != 0 || planS.factor != 1 {
		t.Errorf("scale 0.1 should disable interval sampling: len %d vs %d, measStart %d, factor %v",
			trS.Len(), fullS.Len(), planS.measStart, planS.factor)
	}
	if !planS.sample.Enabled() {
		t.Error("set sampling should stay enabled at small scales")
	}
}

// TestExactUnaffectedBySamplingFields: an exact-fidelity run with stray
// sampling knobs set canonicalizes them away and carries no report.
func TestExactUnaffectedBySamplingFields(t *testing.T) {
	a, err := RunResult("fig12", Options{Scale: 0.1, MaxFramesPerApp: 1, Apps: []string{"Dirt"},
		TraceCache: tracecache.New(256 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResult("fig12", Options{Scale: 0.1, MaxFramesPerApp: 1, Apps: []string{"Dirt"},
		SampleSetRatio: 32, SampleSeed: 9, TraceCache: tracecache.New(256 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("sampling knobs leaked into an exact-fidelity result")
	}
}
