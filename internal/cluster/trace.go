package cluster

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"gspc/internal/telemetry"
)

const (
	// coordTraceMaxSpans bounds the coordinator-side span buffer per
	// submit: route + health snapshot + a handful of forward/hedge/
	// replication spans is typically under twenty, so 512 leaves ample
	// headroom without letting a pathological retry loop grow unbounded.
	coordTraceMaxSpans = 512
	// traceRegistryCap bounds how many completed submits keep their
	// coordinator-side run retained for later stitching; oldest entries
	// are evicted FIFO past this.
	traceRegistryCap = 4096
)

// traceEntry pairs a coordinator-side run with the member that executed
// the job, keyed by the qualified run id ("run-000017@gspc-1") so the
// trace endpoint can stitch without re-deriving placement.
type traceEntry struct {
	run  *telemetry.Run
	node string
}

// traceRegistry retains coordinator-side runs by qualified run id so
// GET /v1/runs/{id}/trace can stitch the coordinator's spans into the
// member's exported trace. Bounded FIFO; first registration wins (a
// coalesced resubmit must not replace the run that actually did the
// routing work).
type traceRegistry struct {
	mu    sync.Mutex
	m     map[string]traceEntry
	order []string
	cap   int
}

func newTraceRegistry(capacity int) *traceRegistry {
	if capacity <= 0 {
		capacity = traceRegistryCap
	}
	return &traceRegistry{m: make(map[string]traceEntry), cap: capacity}
}

// register retains run/node under the qualified run id. No-ops on empty
// ids, nil runs, and already-registered ids.
func (r *traceRegistry) register(qualifiedID string, run *telemetry.Run, node string) {
	if r == nil || qualifiedID == "" || run == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[qualifiedID]; ok {
		return
	}
	if len(r.order) >= r.cap {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.m, evict)
	}
	r.m[qualifiedID] = traceEntry{run: run, node: node}
	r.order = append(r.order, qualifiedID)
}

func (r *traceRegistry) lookup(qualifiedID string) (traceEntry, bool) {
	if r == nil {
		return traceEntry{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[qualifiedID]
	return e, ok
}

func (r *traceRegistry) len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// stitchTrace merges the coordinator's spans for one submit with the
// member's exported trace document into a single Perfetto-loadable
// document: coordinator spans on pid 1, member spans on pid 2, member
// timestamps rebased onto the coordinator's clock using the estimated
// offset (remote minus local, from timestamp-echoed exchanges).
//
// Errors mean the member document could not be interpreted (parse
// failure, missing anchor); callers fall back to relaying the member's
// document unstitched.
func stitchTrace(coRun *telemetry.Run, coordinator, node string, memberBody []byte, off telemetry.OffsetEstimate) ([]byte, error) {
	var member telemetry.TraceDoc
	if err := json.Unmarshal(memberBody, &member); err != nil {
		return nil, fmt.Errorf("member trace unparseable: %w", err)
	}
	memAnchorNs, err := strconv.ParseInt(member.OtherData["anchor_unix_ns"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("member trace lacks anchor_unix_ns")
	}
	coDoc := coRun.Export(nil)
	coAnchorNs, err := strconv.ParseInt(coDoc.OtherData["anchor_unix_ns"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("coordinator trace lacks anchor_unix_ns")
	}

	// A member timestamp ts (µs since the member anchor, member clock)
	// lands on the coordinator timeline at
	//   memAnchor + ts - offset - coAnchor
	// since offset estimates (member clock - coordinator clock).
	shiftUs := float64(memAnchorNs-off.Offset.Nanoseconds()-coAnchorNs) / 1e3

	// Coordinator span ids, for orphan detection: the member run's
	// parent_span must name a forward attempt the coordinator recorded.
	spanIDs := map[string]bool{}
	for _, ev := range coDoc.TraceEvents {
		if id := ev.Args["span_id"]; id != "" {
			spanIDs[id] = true
		}
	}

	adopted := member.OtherData["trace_id"] == coRun.TraceID
	orphans := 0
	if adopted {
		if ps := member.OtherData["parent_span"]; ps == "" || !spanIDs[ps] {
			orphans++
		}
	}

	out := &telemetry.TraceDoc{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"trace_id":        coRun.TraceID,
			"stitched":        "true",
			"adopted":         strconv.FormatBool(adopted),
			"node":            node,
			"coordinator":     coordinator,
			"clock_offset_ns": strconv.FormatInt(off.Offset.Nanoseconds(), 10),
			"clock_delay_ns":  strconv.FormatInt(off.Delay.Nanoseconds(), 10),
			"offset_samples":  strconv.FormatInt(off.Samples, 10),
			"orphan_spans":    strconv.Itoa(orphans),
		},
	}
	if d := member.OtherData["dropped_spans"]; d != "" {
		out.OtherData["member_dropped_spans"] = d
	}
	if d := coDoc.OtherData["dropped_spans"]; d != "" {
		out.OtherData["coordinator_dropped_spans"] = d
	}

	events := make([]telemetry.TraceEvent, 0, len(coDoc.TraceEvents)+len(member.TraceEvents)+2)
	for _, ev := range coDoc.TraceEvents {
		ev.PID = 1
		events = append(events, ev)
	}
	for _, ev := range member.TraceEvents {
		if ev.Ph == "M" {
			continue // lane metadata is re-emitted below
		}
		ev.PID = 2
		ev.TS += shiftUs
		events = append(events, ev)
	}

	// Normalize so the earliest span sits at ts 0: a negative member
	// shift (member anchor behind the coordinator's) must not push
	// timestamps below zero, which some viewers clip.
	minTS := 0.0
	for _, ev := range events {
		if ev.TS < minTS {
			minTS = ev.TS
		}
	}
	if minTS < 0 {
		for i := range events {
			events[i].TS -= minTS
		}
	}

	events = append(events,
		telemetry.TraceEvent{Name: "process_name", Ph: "M", PID: 1,
			Args: map[string]string{"name": "coordinator " + coordinator}},
		telemetry.TraceEvent{Name: "process_name", Ph: "M", PID: 2,
			Args: map[string]string{"name": "member " + node}},
	)
	out.TraceEvents = events
	return out.JSON(), nil
}
