package memmap

import (
	"testing"
	"testing/quick"
)

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(100) // unaligned base
	p1 := a.Alloc(10)
	if p1%BlockSize != 0 {
		t.Errorf("allocation not block aligned: %#x", p1)
	}
	p2 := a.Alloc(64)
	if p2%BlockSize != 0 {
		t.Errorf("second allocation not aligned: %#x", p2)
	}
	if p2 < p1+10 {
		t.Errorf("allocations overlap: %#x after %#x+10", p2, p1)
	}
}

func TestAllocatorNonOverlap(t *testing.T) {
	a := NewAllocator(0x1000)
	type rng struct{ lo, hi uint64 }
	var got []rng
	sizes := []uint64{64, 100, 4096, 1, 65, 127}
	for _, sz := range sizes {
		base := a.Alloc(sz)
		for _, r := range got {
			if base < r.hi && base+sz > r.lo {
				t.Fatalf("allocation [%#x,%#x) overlaps [%#x,%#x)", base, base+sz, r.lo, r.hi)
			}
		}
		got = append(got, rng{base, base + sz})
	}
}

func TestTileShapes(t *testing.T) {
	cases := []struct{ bpp, w, h int }{
		{1, 8, 8}, {2, 8, 4}, {4, 4, 4}, {8, 4, 2}, {16, 2, 2},
	}
	for _, c := range cases {
		w, h := tileShape(c.bpp)
		if w != c.w || h != c.h {
			t.Errorf("tileShape(%d) = %dx%d, want %dx%d", c.bpp, w, h, c.w, c.h)
		}
		if w*h*c.bpp != BlockSize {
			t.Errorf("tileShape(%d): tile does not fill a block", c.bpp)
		}
	}
}

func TestTileShapePanicsOnBadBPP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsupported bpp")
		}
	}()
	tileShape(3)
}

func TestSurfaceAddrWithinAllocation(t *testing.T) {
	a := NewAllocator(0)
	s := NewSurface(a, 100, 60, 4) // non-multiple of tile dims
	lo, hi := s.Base, s.Base+uint64(s.SizeBytes())
	for y := -5; y < 70; y += 3 {
		for x := -5; x < 110; x += 3 {
			addr := s.Addr(x, y)
			if addr < lo || addr >= hi {
				t.Fatalf("Addr(%d,%d) = %#x outside [%#x,%#x)", x, y, addr, lo, hi)
			}
		}
	}
}

func TestSurfaceDistinctTilesDistinctBlocks(t *testing.T) {
	a := NewAllocator(0)
	s := NewSurface(a, 64, 64, 4) // 16x16 tiles
	seen := map[uint64]bool{}
	for ty := 0; ty < s.TilesPerCol(); ty++ {
		for tx := 0; tx < s.TilesPerRow(); tx++ {
			b := s.TileAddr(tx, ty)
			if b%BlockSize != 0 {
				t.Fatalf("tile address %#x not block aligned", b)
			}
			if seen[b] {
				t.Fatalf("tile (%d,%d) reuses block %#x", tx, ty, b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 16*16 {
		t.Errorf("expected 256 distinct tiles, got %d", len(seen))
	}
}

func TestPixelsInSameTileShareBlock(t *testing.T) {
	a := NewAllocator(0)
	s := NewSurface(a, 64, 64, 4)
	base := s.Addr(4, 4) / BlockSize
	for y := 4; y < 8; y++ {
		for x := 4; x < 8; x++ {
			if s.Addr(x, y)/BlockSize != base {
				t.Errorf("pixel (%d,%d) left its 4x4 tile block", x, y)
			}
		}
	}
	if s.Addr(8, 4)/BlockSize == base {
		t.Error("pixel (8,4) should be in the next tile")
	}
}

func TestSurfaceContains(t *testing.T) {
	a := NewAllocator(0x4000)
	s := NewSurface(a, 32, 32, 4)
	if !s.Contains(s.Base) || !s.Contains(s.Base+uint64(s.SizeBytes())-1) {
		t.Error("surface does not contain its own range")
	}
	if s.Contains(s.Base-1) || s.Contains(s.Base+uint64(s.SizeBytes())) {
		t.Error("surface contains addresses outside its range")
	}
}

func TestNewSurfacePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero-size surface")
		}
	}()
	NewSurface(NewAllocator(0), 0, 10, 4)
}

func TestBuffer(t *testing.T) {
	a := NewAllocator(0)
	b := NewBuffer(a, 10, 32)
	if b.Count() != 10 {
		t.Errorf("Count = %d", b.Count())
	}
	if b.ElemAddr(3) != b.Base+96 {
		t.Errorf("ElemAddr(3) = %#x", b.ElemAddr(3))
	}
	// Clamping.
	if b.ElemAddr(-1) != b.Base {
		t.Error("negative index not clamped to base")
	}
	if b.ElemAddr(100) != b.Base+uint64(9*32) {
		t.Error("overflow index not clamped to last element")
	}
}

func TestTextureMIPChain(t *testing.T) {
	a := NewAllocator(0)
	tx := NewTexture(a, 256, 256, 4, 8)
	if tx.NumLevels() != 8 {
		t.Fatalf("NumLevels = %d, want 8", tx.NumLevels())
	}
	for i := 0; i < tx.NumLevels(); i++ {
		want := 256 >> uint(i)
		if want < 1 {
			want = 1
		}
		if tx.Levels[i].Width != want {
			t.Errorf("level %d width = %d, want %d", i, tx.Levels[i].Width, want)
		}
	}
	if tx.Dynamic {
		t.Error("static texture marked dynamic")
	}
}

func TestTextureChainStopsAtOne(t *testing.T) {
	a := NewAllocator(0)
	tx := NewTexture(a, 4, 4, 4, 16)
	if n := tx.NumLevels(); n != 3 { // 4, 2, 1
		t.Errorf("NumLevels = %d, want 3", n)
	}
	last := tx.Levels[tx.NumLevels()-1]
	if last.Width != 1 || last.Height != 1 {
		t.Errorf("last level %dx%d", last.Width, last.Height)
	}
}

func TestTextureLevelClamped(t *testing.T) {
	a := NewAllocator(0)
	tx := NewTexture(a, 64, 64, 4, 3)
	if tx.Level(10) != tx.Levels[2] {
		t.Error("Level beyond chain not clamped")
	}
	if tx.Level(-1) != tx.Levels[0] {
		t.Error("negative level not clamped")
	}
}

func TestTextureFromSurface(t *testing.T) {
	a := NewAllocator(0)
	s := NewSurface(a, 128, 64, 4)
	tx := TextureFromSurface(s)
	if !tx.Dynamic {
		t.Error("render-target texture must be dynamic")
	}
	if tx.NumLevels() != 1 || tx.Level(0) != s {
		t.Error("dynamic texture must alias the surface")
	}
}

func TestTextureSizeBytes(t *testing.T) {
	a := NewAllocator(0)
	tx := NewTexture(a, 64, 64, 4, 2)
	want := tx.Levels[0].SizeBytes() + tx.Levels[1].SizeBytes()
	if tx.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", tx.SizeBytes(), want)
	}
}

// Property: every pixel address lands inside the surface allocation and
// pixel->address is deterministic.
func TestSurfaceAddrProperty(t *testing.T) {
	f := func(w8, h8 uint8, xs, ys []int16) bool {
		w := int(w8%200) + 1
		h := int(h8%200) + 1
		a := NewAllocator(0x100000)
		s := NewSurface(a, w, h, 4)
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		for i := 0; i < n; i++ {
			addr := s.Addr(int(xs[i]), int(ys[i]))
			if !s.Contains(addr) {
				return false
			}
			if addr != s.Addr(int(xs[i]), int(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: distinct in-bounds pixels within the same surface never map
// to overlapping byte ranges (addresses differ for distinct pixels).
func TestSurfacePixelAddrUniqueProperty(t *testing.T) {
	f := func(seed uint8) bool {
		w := int(seed%40) + 8
		h := int(seed/8%40) + 8
		a := NewAllocator(0)
		s := NewSurface(a, w, h, 4)
		seen := map[uint64][2]int{}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				addr := s.Addr(x, y)
				if prev, ok := seen[addr]; ok {
					_ = prev
					return false
				}
				seen[addr] = [2]int{x, y}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
