package service

import (
	"fmt"
	"sync"
	"testing"

	"gspc/internal/workload"
)

func TestRequestNormalizeAndKey(t *testing.T) {
	base, err := Request{Experiment: "fig12"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Scale != 0.25 || base.CapacityFactor != 1.5 {
		t.Fatalf("defaults not applied: %+v", base)
	}

	// Every spelling of the defaults shares the base key.
	spellings := []Request{
		{Experiment: "fig12", Scale: 0.25},
		{Experiment: "fig12", Scale: 0.25, CapacityFactor: 1.5},
		{Experiment: "fig12", Workers: 7}, // parallelism never changes results
		{Experiment: "fig12", Frames: -1},
	}
	for _, r := range spellings {
		n, err := r.Normalize()
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", r, err)
		}
		if n.Key() != base.Key() {
			t.Errorf("key for %+v = %s, want %s", r, n.Key(), base.Key())
		}
	}

	// Different computations get different keys.
	for _, r := range []Request{
		{Experiment: "fig1"},
		{Experiment: "fig12", Scale: 0.5},
		{Experiment: "fig12", Frames: 1},
		{Experiment: "fig12", Apps: []string{"Dirt"}},
	} {
		n, err := r.Normalize()
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", r, err)
		}
		if n.Key() == base.Key() {
			t.Errorf("distinct request %+v collided with base key", r)
		}
	}
}

func TestRequestNormalizeApps(t *testing.T) {
	a, err := Request{Experiment: "fig1", Apps: []string{"Dirt", "AssnCreed", "Dirt", " "}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request{Experiment: "fig1", Apps: []string{"AssnCreed", "Dirt"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("app order/duplicates changed the key: %v vs %v", a.Apps, b.Apps)
	}

	// Spelling out the full suite is the same computation as the default.
	var all []string
	for _, p := range workload.Profiles() {
		all = append(all, p.Abbrev)
	}
	full, err := Request{Experiment: "fig1", Apps: all}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	def, _ := Request{Experiment: "fig1"}.Normalize()
	if full.Key() != def.Key() {
		t.Error("explicit full app list did not collapse to the default key")
	}

	if _, err := (Request{Experiment: "fig1", Apps: []string{"NoSuchGame"}}).Normalize(); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := (Request{Experiment: "nope"}).Normalize(); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := (Request{Experiment: "fig1", Scale: 9}).Normalize(); err == nil {
		t.Error("absurd scale accepted")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c, err := newResultCache(2, "lru")
	if err != nil {
		t.Fatal(err)
	}
	va, vb, vc := &cached{runID: "a"}, &cached{runID: "b"}, &cached{runID: "c"}
	c.Put("A", va)
	c.Put("B", vb)
	c.Get("A") // A becomes most recently used
	c.Put("C", vc)

	if _, ok := c.Get("B"); ok {
		t.Error("LRU cache kept B, the least recently used entry")
	}
	if v, ok := c.Get("A"); !ok || v.runID != "a" {
		t.Error("LRU cache evicted the recently touched A")
	}
	if v, ok := c.Get("C"); !ok || v.runID != "c" {
		t.Error("LRU cache lost the newest entry C")
	}
	if _, _, ev := c.counters(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheDRRIPStaysBounded(t *testing.T) {
	c, err := newResultCache(4, "drrip")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "a", "b"}
	for i, k := range keys {
		c.Put(k, &cached{runID: k})
		if got := c.Len(); got > 4 {
			t.Fatalf("after %d puts: %d entries exceed capacity 4", i+1, got)
		}
	}
	// Every resident key must round-trip.
	resident := 0
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if v, ok := c.Get(k); ok {
			resident++
			if v.runID != k {
				t.Errorf("key %s returned value %s", k, v.runID)
			}
		}
	}
	h, m, ev := c.counters()
	if int(ev)+c.Len() < 8-int(c.declined) {
		t.Errorf("bookkeeping leak: %d evictions + %d resident + %d declined < 8 distinct puts", ev, c.Len(), c.declined)
	}
	if resident != c.Len() {
		t.Errorf("found %d keys by Get but Len reports %d", resident, c.Len())
	}
	_ = h
	_ = m
}

func TestResultCacheFirstValueWins(t *testing.T) {
	c, err := newResultCache(2, "lru")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("A", &cached{runID: "first"})
	c.Put("A", &cached{runID: "second"})
	if v, _ := c.Get("A"); v.runID != "first" {
		t.Errorf("re-Put replaced the deterministic original: got %s", v.runID)
	}
}

func TestResultCacheDisabledAndBadPolicy(t *testing.T) {
	c, err := newResultCache(0, "lru")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("A", &cached{})
	if _, ok := c.Get("A"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.PolicyName() != "none" {
		t.Errorf("disabled cache policy = %q", c.PolicyName())
	}
	if _, err := newResultCache(4, "belady"); err == nil {
		t.Error("unknown cache policy accepted")
	}
}

// TestResultCacheReplaceRacesEviction churns in-place Replace on a hot
// key set while Put-driven evictions recycle the same ways and readers
// sample the gauges, so -race exercises Replace's byte-delta update
// against Put's eviction decrement. The exit check is the invariant
// the memory governor depends on: the byte gauge equals the sum of the
// resident bodies.
func TestResultCacheReplaceRacesEviction(t *testing.T) {
	c, err := newResultCache(8, "lru")
	if err != nil {
		t.Fatal(err)
	}
	hot := []string{"h0", "h1", "h2", "h3"}
	for _, k := range hot {
		c.Put(k, &cached{runID: k, body: make([]byte, 64)})
	}

	const rounds = 4000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // escalation path: upgrade hot keys in place
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			k := hot[i%len(hot)]
			c.Replace(k, &cached{runID: k, body: make([]byte, 1+i%257)})
		}
	}()
	go func() { // fill path: distinct keys force evictions of the same ways
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			c.Put(fmt.Sprintf("e%d", i), &cached{runID: "e", body: make([]byte, i%129)})
		}
	}()
	go func() { // governor path: sample the gauges mid-churn
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			c.Get(hot[i%len(hot)])
			if c.Bytes() < 0 {
				panic("negative byte gauge")
			}
			c.Len()
		}
	}()
	wg.Wait()

	var want int64
	for _, e := range c.Export() {
		want += int64(len(e.Body))
	}
	if got := c.Bytes(); got != want {
		t.Errorf("byte gauge %d diverged from %d resident body bytes", got, want)
	}
	if got := c.Len(); got > 8 {
		t.Errorf("Len = %d entries exceed capacity 8", got)
	}
}
