// Package policy implements the baseline LLC replacement policies the
// paper evaluates against: LRU, NRU, SRRIP, BRRIP, DRRIP, the graphics
// stream-aware GS-DRRIP, SHiP-mem, and a deterministic random policy.
// The paper's own proposals (GSPZTC, GSPZTC+TSE, GSPC) live in
// internal/core.
package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// LRU is the least-recently-used policy: blocks are stamped on every hit
// and fill, and the block with the oldest stamp is victimized. The paper
// uses it as the iso-overhead (4 state bits) comparison point in Fig. 14.
type LRU struct {
	ways  int
	clock uint64
	stamp []uint64
}

var _ cachesim.Policy = (*LRU)(nil)

// NewLRU returns a least-recently-used policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cachesim.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements cachesim.Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 0
	p.stamp = make([]uint64, sets*ways)
}

// Hit implements cachesim.Policy.
func (p *LRU) Hit(set, way int, a stream.Access) { p.touch(set, way) }

// Fill implements cachesim.Policy.
func (p *LRU) Fill(set, way int, a stream.Access) { p.touch(set, way) }

// Victim implements cachesim.Policy.
func (p *LRU) Victim(set int, a stream.Access) int {
	base := set * p.ways
	victim, oldest := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < oldest {
			victim, oldest = w, s
		}
	}
	return victim
}

// Evict implements cachesim.Policy.
func (p *LRU) Evict(set, way int) { p.stamp[set*p.ways+way] = 0 }

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// StackPosition returns the recency rank of (set, way): 0 is MRU. It is
// exported for tests of the LRU stack property.
func (p *LRU) StackPosition(set, way int) int {
	base := set * p.ways
	mine := p.stamp[base+way]
	rank := 0
	for w := 0; w < p.ways; w++ {
		if p.stamp[base+w] > mine {
			rank++
		}
	}
	return rank
}
