// Quickstart: generate the LLC access trace of one game frame, replay it
// under the baseline DRRIP policy and under the paper's GSPC policy, and
// compare miss counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

func main() {
	// Pick one frame of Civilization V from the 52-frame suite and
	// synthesize its LLC access trace at quarter scale.
	job := workload.FrameJob{App: mustProfile("Civilization"), Index: 0}
	tr := trace.GenerateFrame(job, 0.25)
	fmt.Printf("frame %s: %d LLC accesses\n\n", job.ID(), len(tr))

	// The 8 MB 16-way LLC of the paper, scaled to match the frame.
	geom := cachesim.Geometry{SizeBytes: 768 << 10, Ways: 16, BlockSize: 64}

	run := func(name string, pol cachesim.Policy, ucd bool) int64 {
		c := cachesim.New(geom, pol)
		if ucd {
			// Uncached displayable color (UCD): the final display
			// stream bypasses the LLC.
			c.SetBypass(stream.Display, true)
		}
		for _, a := range tr {
			c.Access(a)
		}
		fmt.Printf("%-12s misses=%7d  hit rate=%5.1f%%\n", name, c.Stats.Misses, 100*c.Stats.HitRate())
		return c.Stats.Misses
	}

	base := run("DRRIP", policy.NewDRRIP(2), false)
	gspc := run("GSPC+UCD", core.New(core.DefaultParams(core.VariantGSPC)), true)

	delta := 100 * float64(base-gspc) / float64(base)
	if delta >= 0 {
		fmt.Printf("\nGSPC saves %.1f%% of DRRIP's LLC misses on this frame\n", delta)
	} else {
		fmt.Printf("\nGSPC costs %.1f%% more LLC misses on this frame (per-frame results vary; see gspcsim -exp fig12 for the suite)\n", -delta)
	}
}

func mustProfile(abbrev string) workload.Profile {
	p, ok := workload.ProfileByAbbrev(abbrev)
	if !ok {
		panic("unknown profile " + abbrev)
	}
	return p
}
