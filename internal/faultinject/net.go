package faultinject

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// PartitionMode says how a severed link manifests to the caller.
type PartitionMode int

// Partition modes.
const (
	// PartitionNone leaves the link connected.
	PartitionNone PartitionMode = iota
	// PartitionRefuse fails connections immediately, like a host whose
	// process is gone: the caller sees a refused/reset connection.
	PartitionRefuse
	// PartitionBlackhole swallows traffic without answering, like a
	// dropped route: the caller hangs until its own deadline fires.
	PartitionBlackhole
)

func (p PartitionMode) String() string {
	switch p {
	case PartitionRefuse:
		return "refuse"
	case PartitionBlackhole:
		return "blackhole"
	default:
		return "none"
	}
}

// NetSpec parameterizes one link's weather. Rates are probabilities in
// [0, 1] evaluated per exchange in the order drop, reset, truncate,
// delay — at most one fires (plus the unconditional Partition and
// BandwidthBps, which apply always). The zero value is a clean link.
type NetSpec struct {
	// Partition severs the link entirely, regardless of the rates.
	Partition PartitionMode

	// DropRate black-holes an exchange: the request is consumed and no
	// response ever comes; the caller hangs until its deadline.
	DropRate float64
	// ResetRate kills the connection before any response byte — the
	// caller sees a reset/EOF transport error.
	ResetRate float64
	// TruncateRate cuts the response off after TruncateBytes body bytes.
	TruncateRate float64
	// TruncateBytes is the response prefix delivered before a truncate
	// (default 64).
	TruncateBytes int
	// DelayRate adds Latency (±Jitter) to an exchange.
	DelayRate float64
	// Latency is the added delay when DelayRate fires.
	Latency time.Duration
	// Jitter widens Latency to Latency±Jitter, drawn from the seed.
	Jitter time.Duration

	// BandwidthBps caps response throughput in bytes/second (0 = no cap).
	BandwidthBps int
}

// clean reports a spec with no faults at all.
func (s NetSpec) clean() bool {
	return s.Partition == PartitionNone && s.DropRate == 0 && s.ResetRate == 0 &&
		s.TruncateRate == 0 && s.DelayRate == 0 && s.BandwidthBps == 0
}

// NetDecision is one injected outcome kind, recorded in decision logs.
type NetDecision string

// Decision kinds.
const (
	NetPass      NetDecision = "pass"
	NetDelay     NetDecision = "delay"
	NetDrop      NetDecision = "drop"
	NetReset     NetDecision = "reset"
	NetTruncate  NetDecision = "truncate"
	NetRefused   NetDecision = "partition-refused"
	NetBlackhole NetDecision = "partition-blackhole"
)

// NetCounts tallies decisions for assertions and metrics.
type NetCounts struct {
	Exchanges   int64
	Passes      int64
	Delays      int64
	Drops       int64
	Resets      int64
	Truncates   int64
	Partitioned int64
}

// netOutcome is one fully drawn decision: the kind plus the concrete
// parameters (delay duration, truncate length) drawn from the seed, so
// identical seeds produce bit-identical outcome sequences.
type netOutcome struct {
	kind     NetDecision
	delay    time.Duration
	truncate int
	n        int64 // decision sequence number, for attribution
}

// roller is the shared seeded decision engine behind Transport and
// Proxy: every decision is drawn under one lock from one seeded source,
// so the same seed yields the same outcome sequence regardless of
// wall-clock or scheduling (concurrent callers still each get a
// deterministic multiset of outcomes, exactly like Random).
type roller struct {
	mu     sync.Mutex
	rng    *rand.Rand
	n      int64
	counts NetCounts
	record bool
	log    []NetDecision
}

func newRoller(seed int64, record bool) *roller {
	return &roller{rng: rand.New(rand.NewSource(seed)), record: record}
}

// decide draws the next outcome for spec.
func (r *roller) decide(spec NetSpec) netOutcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	r.counts.Exchanges++
	out := netOutcome{kind: NetPass, n: r.n}
	switch spec.Partition {
	case PartitionRefuse:
		out.kind = NetRefused
	case PartitionBlackhole:
		out.kind = NetBlackhole
	default:
		roll := r.rng.Float64()
		switch {
		case roll < spec.DropRate:
			out.kind = NetDrop
		case roll < spec.DropRate+spec.ResetRate:
			out.kind = NetReset
		case roll < spec.DropRate+spec.ResetRate+spec.TruncateRate:
			out.kind = NetTruncate
			out.truncate = spec.TruncateBytes
			if out.truncate <= 0 {
				out.truncate = 64
			}
		case roll < spec.DropRate+spec.ResetRate+spec.TruncateRate+spec.DelayRate:
			out.kind = NetDelay
			out.delay = spec.Latency
			if spec.Jitter > 0 {
				out.delay += time.Duration(r.rng.Int63n(2*int64(spec.Jitter))) - spec.Jitter
			}
			if out.delay < 0 {
				out.delay = 0
			}
		}
	}
	switch out.kind {
	case NetPass:
		r.counts.Passes++
	case NetDelay:
		r.counts.Delays++
	case NetDrop:
		r.counts.Drops++
	case NetReset:
		r.counts.Resets++
	case NetTruncate:
		r.counts.Truncates++
	case NetRefused, NetBlackhole:
		r.counts.Partitioned++
	}
	if r.record {
		r.log = append(r.log, out.kind)
	}
	return out
}

func (r *roller) enableRecord() {
	r.mu.Lock()
	r.record = true
	r.mu.Unlock()
}

func (r *roller) snapshot() NetCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

func (r *roller) decisions() []NetDecision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]NetDecision(nil), r.log...)
}

// NetError is an injected transport-level failure. Timeout-flavored
// injections (drops, black-holes) report Timeout() true so callers that
// classify timeout-vs-refusal (the cluster coordinator) see the same
// taxonomy real links produce.
type NetError struct {
	// Kind is the decision that produced the error.
	Kind NetDecision
	// N is the decision sequence number, for attributable storm logs.
	N int64
	// IsTimeout marks timeout-class failures.
	IsTimeout bool
}

// Error implements error.
func (e *NetError) Error() string {
	return fmt.Sprintf("faultinject: injected net fault %s #%d", e.Kind, e.N)
}

// Timeout implements net.Error's timeout classification.
func (e *NetError) Timeout() bool { return e.IsTimeout }

// Temporary marks every injected net fault as transient.
func (e *NetError) Temporary() bool { return true }

// Transport is a NetSpec-driven http.RoundTripper: it wraps a base
// transport and injects link weather per exchange, with an optional
// per-host override so a single client can see asymmetric conditions —
// e.g. a partition between this caller and one specific member while
// every other link stays clean. All decisions flow from the seed;
// specs are live-reconfigurable.
type Transport struct {
	// Base performs real exchanges (http.DefaultTransport when nil).
	Base http.RoundTripper

	r  *roller
	mu sync.Mutex
	// def is the default link spec; perHost overrides it by URL host.
	def     NetSpec
	perHost map[string]NetSpec
}

// NewTransport builds a seeded fault-injecting round tripper with the
// given default link spec.
func NewTransport(seed int64, spec NetSpec) *Transport {
	return &Transport{r: newRoller(seed, false), def: spec, perHost: map[string]NetSpec{}}
}

// Record starts logging every decision kind (for determinism tests);
// call before any traffic.
func (t *Transport) Record() *Transport { t.r.enableRecord(); return t }

// SetSpec replaces the default link spec, live.
func (t *Transport) SetSpec(spec NetSpec) {
	t.mu.Lock()
	t.def = spec
	t.mu.Unlock()
}

// SetHostSpec overrides the spec for one host ("127.0.0.1:8081"),
// live. A zero NetSpec removes the override.
func (t *Transport) SetHostSpec(host string, spec NetSpec) {
	t.mu.Lock()
	if spec.clean() {
		delete(t.perHost, host)
	} else {
		t.perHost[host] = spec
	}
	t.mu.Unlock()
}

// specFor resolves the spec governing a request's link.
func (t *Transport) specFor(host string) NetSpec {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.perHost[host]; ok {
		return s
	}
	return t.def
}

// Counts snapshots the decision tally.
func (t *Transport) Counts() NetCounts { return t.r.snapshot() }

// Decisions returns the recorded decision log (Record must have been
// enabled).
func (t *Transport) Decisions() []NetDecision { return t.r.decisions() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	spec := t.specFor(req.URL.Host)
	out := t.r.decide(spec)
	n := out.n

	ctx := req.Context()
	switch out.kind {
	case NetRefused:
		return nil, &NetError{Kind: out.kind, N: n}
	case NetBlackhole, NetDrop:
		// Swallow the exchange: hang until the caller's own deadline.
		<-ctx.Done()
		return nil, &NetError{Kind: out.kind, N: n, IsTimeout: true}
	case NetReset:
		return nil, &NetError{Kind: out.kind, N: n}
	case NetDelay:
		tm := time.NewTimer(out.delay)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if out.kind == NetTruncate {
		resp.Body = &truncatedBody{rc: resp.Body, remain: out.truncate, kind: out.kind, n: n}
		resp.ContentLength = -1
	} else if spec.BandwidthBps > 0 {
		resp.Body = &throttledBody{rc: resp.Body, bps: spec.BandwidthBps, ctx: ctx}
	}
	return resp, nil
}

// truncatedBody delivers a prefix of the real body, then fails the read
// the way a torn connection does.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
	kind   NetDecision
	n      int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, &NetError{Kind: b.kind, N: b.n}
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The whole body fit under the cut; nothing was truncated.
		return n, err
	}
	if b.remain <= 0 && err == nil {
		return n, &NetError{Kind: b.kind, N: b.n}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// throttledBody caps read throughput at bps, sleeping between chunks.
type throttledBody struct {
	rc  io.ReadCloser
	bps int
	ctx context.Context
}

func (b *throttledBody) Read(p []byte) (int, error) {
	// Cap each read to ~50ms worth of budget so the pacing is smooth.
	chunk := b.bps / 20
	if chunk < 1 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := b.rc.Read(p)
	if n > 0 {
		d := time.Duration(float64(n) / float64(b.bps) * float64(time.Second))
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-b.ctx.Done():
			return n, b.ctx.Err()
		}
	}
	return n, err
}

func (b *throttledBody) Close() error { return b.rc.Close() }
