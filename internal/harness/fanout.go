package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// replayWorkers resolves the concurrency budget an experiment may spend,
// shared by the trace-synthesis pool and the per-frame policy fan-out:
// Options.Workers when set, otherwise min(GOMAXPROCS, 4).
func (o Options) replayWorkers() int {
	w := o.normalized().Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 4 {
			w = 4
		}
	}
	return w
}

// fanOut runs jobs 0..n-1 on up to workers goroutines and joins them all
// before returning. Callers collect results positionally (each job writes
// its own slot), so accumulation order — and therefore every floating
// point sum downstream — is identical to a sequential loop no matter how
// the goroutines interleave.
//
// The first job error cancels the derived context, stopping the other
// jobs at their next poll; fanOut reports a real failure in preference to
// the cancellations it caused, and a parent-context death (Canceled or
// DeadlineExceeded) surfaces as itself.
func fanOut(ctx context.Context, workers, n int, run func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := run(fctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// stageClock accumulates wall-clock nanoseconds and invocation counts for
// one experiment stage. Stages overlap under fan-out, so the totals are
// summed per-invocation wall time (comparable to CPU time), not elapsed
// time.
type stageClock struct {
	ns    atomic.Int64
	count atomic.Int64
}

func (s *stageClock) add(d time.Duration) {
	s.ns.Add(d.Nanoseconds())
	s.count.Add(1)
}

// StageSet is one attribution scope for the stage clocks: a service
// engine injects its own set (via WithStages on the run context) so
// several engines in one process — the norm in tests, possible in
// embedders — see only their own work, while the process-global set
// keeps accumulating the sum of everything.
type StageSet struct {
	synth  stageClock // frame synthesis (trace-cache misses)
	replay stageClock // offline policy replays, incl. Belady
	timing stageClock // gpu timing-model simulations
}

// NewStageSet returns an empty attribution scope.
func NewStageSet() *StageSet { return &StageSet{} }

// Timings snapshots this set's accumulators.
func (s *StageSet) Timings() StageTimings {
	return StageTimings{
		SynthCount:  s.synth.count.Load(),
		SynthMs:     float64(s.synth.ns.Load()) / 1e6,
		ReplayCount: s.replay.count.Load(),
		ReplayMs:    float64(s.replay.ns.Load()) / 1e6,
		TimingCount: s.timing.count.Load(),
		TimingMs:    float64(s.timing.ns.Load()) / 1e6,
	}
}

// procStages is the process-wide sum; every tracked stage folds into it
// in addition to the context-scoped set (when present).
var procStages StageSet

// stagesKey carries a *StageSet through a run's context.
type stagesKey struct{}

// WithStages returns ctx carrying the attribution scope; the harness
// folds stage time into it (as well as the process-global sum) for any
// experiment run under the returned context. A nil set returns ctx
// unchanged.
func WithStages(ctx context.Context, s *StageSet) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, stagesKey{}, s)
}

func stagesFrom(ctx context.Context) *StageSet {
	s, _ := ctx.Value(stagesKey{}).(*StageSet)
	return s
}

// Stage selectors for trackStage.
var (
	pickSynth  = func(s *StageSet) *stageClock { return &s.synth }
	pickReplay = func(s *StageSet) *stageClock { return &s.replay }
	pickTiming = func(s *StageSet) *stageClock { return &s.timing }
)

// trackStage starts a timer; the returned func stops it and folds the
// elapsed time into the process-global clock and, when the context
// carries one, the run's own StageSet. Use as:
// defer trackStage(ctx, pickReplay)().
func trackStage(ctx context.Context, pick func(*StageSet) *stageClock) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		pick(&procStages).add(d)
		if s := stagesFrom(ctx); s != nil {
			pick(s).add(d)
		}
	}
}

// StageTimings snapshots the per-stage accumulators: how a scope has
// spent its experiment time, split into trace synthesis, offline policy
// replay, and timing simulation. Served by gspcd's /metricsz.
type StageTimings struct {
	SynthCount  int64   `json:"synth_count"`
	SynthMs     float64 `json:"synth_ms"`
	ReplayCount int64   `json:"replay_count"`
	ReplayMs    float64 `json:"replay_ms"`
	TimingCount int64   `json:"timing_count"`
	TimingMs    float64 `json:"timing_ms"`
}

// Timings returns the process-wide stage timing snapshot — the sum over
// every engine and direct harness call in the process.
func Timings() StageTimings {
	return procStages.Timings()
}
