// Chaos suite: kill the store at every byte offset of the journal and
// at every byte offset of a compaction, then recover and assert the
// invariants the engine depends on:
//
//  1. recovery never fails (torn tails truncate, corruption quarantines)
//  2. every Append that reported success is recovered
//  3. nothing beyond the successful appends is invented
//  4. NextID never regresses below an allocated sequence
//
// The external test package breaks the durable <- faultinject import
// cycle (FaultFS implements durable.FS).
package durable_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gspc/internal/durable"
	"gspc/internal/faultinject"
)

func quiet() func(string, ...any) { return func(string, ...any) {} }

// scenarioRecords is a deterministic lifecycle storm: submits, starts,
// completions, one failure, one cancellation.
func scenarioRecords() []durable.Record {
	var recs []durable.Record
	body := func(i int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"schema_version":1,"experiment":"fig12","n":%d}`, i))
	}
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("run-%06d", i)
		recs = append(recs, durable.Record{
			Type: durable.RecSubmit, ID: id, Seq: int64(i),
			Key: "key-" + id, Experiment: "fig12",
			Data: json.RawMessage(`{"experiment":"fig12"}`),
		})
		recs = append(recs, durable.Record{Type: durable.RecStart, ID: id})
		switch i {
		case 3:
			recs = append(recs, durable.Record{Type: durable.RecFail, ID: id,
				Error: "injected", Category: "internal"})
		case 4:
			recs = append(recs, durable.Record{Type: durable.RecCancel, ID: id,
				Error: "abandoned", Category: "canceled"})
		default:
			recs = append(recs, durable.Record{Type: durable.RecDone, ID: id, Data: body(i)})
		}
	}
	return recs
}

// totalJournalBytes measures the scenario's full journal length.
func totalJournalBytes(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	s, _, err := durable.Open(dir, durable.Options{Fsync: true, SchemaVersion: 1,
		SnapshotEvery: -1, Logf: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range scenarioRecords() {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	n := s.Stats().JournalBytes
	s.Close()
	return n
}

// TestKillAtEveryJournalOffset crashes the disk after every possible
// number of persisted bytes and checks that recovery lands on exactly
// the successfully-appended prefix.
func TestKillAtEveryJournalOffset(t *testing.T) {
	total := totalJournalBytes(t)
	recs := scenarioRecords()
	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for crashAt := int64(0); crashAt <= total; crashAt += stride {
		dir := t.TempDir()
		ffs := faultinject.NewFaultFS(nil)
		ffs.CrashAfterBytes(crashAt)
		s, _, err := durable.Open(dir, durable.Options{FS: ffs, Fsync: true,
			SchemaVersion: 1, SnapshotEvery: -1, Logf: quiet()})
		if err != nil {
			t.Fatalf("crashAt %d: open: %v", crashAt, err)
		}
		okUntil := 0 // appends that reported success, always a prefix
		for i, r := range recs {
			if err := s.Append(r); err == nil {
				if i != okUntil {
					t.Fatalf("crashAt %d: append %d succeeded after a failure", crashAt, i)
				}
				okUntil++
			}
		}
		s.Close()

		// The machine reboots with a healthy disk.
		s2, st, err := durable.Open(dir, durable.Options{Fsync: true,
			SchemaVersion: 1, SnapshotEvery: -1, Logf: quiet()})
		if err != nil {
			t.Fatalf("crashAt %d: recovery refused to start: %v", crashAt, err)
		}
		replayed := int(s2.Stats().ReplayedRecords)
		s2.Close()

		// Durability is at-least-once: every successful append must
		// survive, and an append that failed after its frame landed
		// (sync error) may survive too — but only as a strict prefix of
		// what was attempted, never an invented or reordered record.
		if replayed < okUntil || replayed > len(recs) {
			t.Fatalf("crashAt %d: replayed %d records, want between %d and %d",
				crashAt, replayed, okUntil, len(recs))
		}
		want := durable.NewState(1)
		for _, r := range recs[:replayed] {
			want.Apply(r)
		}
		if len(st.Jobs) != len(want.Jobs) {
			t.Fatalf("crashAt %d: recovered %d jobs, want %d (okUntil %d, replayed %d)",
				crashAt, len(st.Jobs), len(want.Jobs), okUntil, replayed)
		}
		for id, wj := range want.Jobs {
			gj := st.Jobs[id]
			if gj == nil {
				t.Fatalf("crashAt %d: lost job %s", crashAt, id)
			}
			if gj.Status != wj.Status || string(gj.Result) != string(wj.Result) {
				t.Fatalf("crashAt %d: job %s: got (%s, %q) want (%s, %q)",
					crashAt, id, gj.Status, gj.Result, wj.Status, wj.Result)
			}
		}
		if st.NextID != want.NextID {
			t.Fatalf("crashAt %d: NextID %d, want %d", crashAt, st.NextID, want.NextID)
		}
		if len(st.Cache) != len(want.Cache) {
			t.Fatalf("crashAt %d: cache %d entries, want %d", crashAt, len(st.Cache), len(want.Cache))
		}
	}
}

// TestKillDuringCompaction crashes the disk after every possible
// number of bytes written by Compact (snapshot temp file, rename,
// journal reset). Whatever the crash point, the pre-compaction state
// must recover intact — from the old journal, the new snapshot, or the
// new snapshot plus stale-journal replay.
func TestKillDuringCompaction(t *testing.T) {
	recs := scenarioRecords()
	want := durable.NewState(1)
	for _, r := range recs {
		want.Apply(r)
	}

	// Measure how many bytes a full compaction writes.
	probeDir := t.TempDir()
	s, _, err := durable.Open(probeDir, durable.Options{Fsync: true, SchemaVersion: 1,
		SnapshotEvery: -1, Logf: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	journalBytes := s.Stats().JournalBytes
	probeFFS := faultinject.NewFaultFS(nil)
	// Reopen through a counting FS to measure compaction bytes.
	s.Close()
	s2, _, err := durable.Open(probeDir, durable.Options{FS: probeFFS, Fsync: true,
		SchemaVersion: 1, SnapshotEvery: -1, Logf: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	preCompact := probeFFS.Counts().BytesWritten
	if err := s2.Compact(want); err != nil {
		t.Fatal(err)
	}
	compactBytes := probeFFS.Counts().BytesWritten - preCompact
	s2.Close()
	if compactBytes <= 0 {
		t.Fatalf("compaction wrote %d bytes", compactBytes)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	for crashAt := int64(0); crashAt <= compactBytes; crashAt += stride {
		dir := t.TempDir()
		// Build the journal on a healthy disk.
		s, _, err := durable.Open(dir, durable.Options{Fsync: true, SchemaVersion: 1,
			SnapshotEvery: -1, Logf: quiet()})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Stats().JournalBytes; got != journalBytes {
			t.Fatalf("journal not deterministic: %d vs %d", got, journalBytes)
		}
		s.Close()

		// Crash partway through compaction.
		ffs := faultinject.NewFaultFS(nil)
		s2, st, err := durable.Open(dir, durable.Options{FS: ffs, Fsync: true,
			SchemaVersion: 1, SnapshotEvery: -1, Logf: quiet()})
		if err != nil {
			t.Fatalf("crashAt %d: open: %v", crashAt, err)
		}
		if len(st.Jobs) != len(want.Jobs) {
			t.Fatalf("crashAt %d: pre-compaction replay lost jobs", crashAt)
		}
		ffs.CrashAfterBytes(crashAt)
		_ = s2.Compact(st) // may fail; the point is what's left on disk
		s2.Close()

		// Reboot healthy and compare against the full state.
		s3, got, err := durable.Open(dir, durable.Options{Fsync: true, SchemaVersion: 1,
			SnapshotEvery: -1, Logf: quiet()})
		if err != nil {
			t.Fatalf("crashAt %d: recovery refused to start: %v", crashAt, err)
		}
		s3.Close()
		if len(got.Jobs) != len(want.Jobs) {
			t.Fatalf("crashAt %d: recovered %d jobs, want %d", crashAt, len(got.Jobs), len(want.Jobs))
		}
		for id, wj := range want.Jobs {
			gj := got.Jobs[id]
			if gj == nil || gj.Status != wj.Status || string(gj.Result) != string(wj.Result) {
				t.Fatalf("crashAt %d: job %s diverged: %+v vs %+v", crashAt, id, gj, wj)
			}
		}
		if got.NextID != want.NextID {
			t.Fatalf("crashAt %d: NextID %d, want %d", crashAt, got.NextID, want.NextID)
		}
	}
}

// TestReadCorruptionQuarantinesSnapshot flips every byte of a valid
// snapshot (via read-time corruption). Every flip must quarantine:
// the snapshot is covered end to end by magic, version, length, and
// CRC, so no corrupt byte may be partially trusted.
func TestReadCorruptionQuarantinesSnapshot(t *testing.T) {
	dir := t.TempDir()
	recs := scenarioRecords()
	st := durable.NewState(1)
	for _, r := range recs {
		st.Apply(r)
	}
	s, _, err := durable.Open(dir, durable.Options{Fsync: true, SchemaVersion: 1, Logf: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(st); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snapPath := filepath.Join(dir, "state.snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 31
	}
	for off := 0; off < len(raw); off += stride {
		ffs := faultinject.NewFaultFS(nil)
		ffs.MangleReads(snapPath, int64(off), 0x40)
		s2, got, err := durable.Open(dir, durable.Options{FS: ffs, Fsync: true,
			SchemaVersion: 1, Logf: quiet()})
		if err != nil {
			t.Fatalf("off %d: open: %v", off, err)
		}
		s2.Close()
		if len(got.Jobs) != 0 {
			t.Fatalf("off %d: corrupt snapshot partially trusted (%d jobs)", off, len(got.Jobs))
		}
		// Quarantine moved the (on-disk, intact) snapshot aside; put it
		// back for the next flip.
		if err := os.Rename(snapPath+".corrupt", snapPath); err != nil {
			t.Fatalf("off %d: snapshot was not quarantined: %v", off, err)
		}
	}
}
