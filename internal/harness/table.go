package harness

import (
	"fmt"
	"io"
	"strings"

	"gspc/internal/analysis"
	"gspc/internal/cachesim"
)

// analysisTracker aliases the characterization observer used by the
// offline experiments.
type analysisTracker = analysis.Tracker

func attachTracker(c *cachesim.Cache) *analysis.Tracker { return analysis.Attach(c) }

// Table is the text rendering of one experiment: one row per application
// (plus a MEAN row) and one column per series. The JSON form is part of
// the service and -json CLI output, so the tags are load-bearing.
type Table struct {
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
}

// Row is one labelled series of values; NaN-free by construction.
type Row struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Lookup returns the row with the given label.
func (t *Table) Lookup(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Cell returns the value at (rowLabel, column).
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	r, ok := t.Lookup(rowLabel)
	if !ok {
		return 0, false
	}
	for i, c := range t.Columns {
		if c == column && i < len(r.Values) {
			return r.Values[i], true
		}
	}
	return 0, false
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	labelW := len("MEAN")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(w, " %*s", colW[i], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", labelW+2+sum(colW)+len(colW)))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, r.Label)
		for i := range t.Columns {
			if i < len(r.Values) {
				fmt.Fprintf(w, " %*.*f", colW[i], precisionFor(r.Values[i]), r.Values[i])
			} else {
				fmt.Fprintf(w, " %*s", colW[i], "-")
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func precisionFor(v float64) int {
	if v >= 1000 || v <= -1000 {
		return 0
	}
	return 2
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
