package policy

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// bipEpsilon is the BRRIP long-insertion ratio: one in every bipEpsilon
// fills is inserted with a long re-reference interval (RRPV max-1)
// instead of a distant one (RRPV max). The value 32 follows Jaleel et
// al. [19]. The choice is made with a deterministic fill counter so runs
// are reproducible.
const bipEpsilon = 32

// pselBits sizes the set-dueling selector counters of DRRIP/GS-DRRIP.
const pselBits = 10

// rripBase holds the state shared by all re-reference interval prediction
// policies: an n-bit RRPV per block, the aging victim scan, and per-stream
// fill accounting (used by Fig. 8).
type rripBase struct {
	bits int
	max  uint8
	ways int
	rrpv []uint8

	// FillsByKind and DistantFillsByKind count fills per stream kind,
	// total and with insertion RRPV == max ("no near-future reuse").
	// Figure 8 reports DistantFills/Fills for the RT and texture streams
	// under DRRIP.
	FillsByKind        [stream.NumKinds]int64
	DistantFillsByKind [stream.NumKinds]int64
}

func (b *rripBase) init(bits int) {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("policy: rrip width %d out of range", bits))
	}
	b.bits = bits
	b.max = uint8(1<<bits - 1)
}

func (b *rripBase) reset(sets, ways int) {
	b.ways = ways
	b.rrpv = make([]uint8, sets*ways)
	for i := range b.rrpv {
		b.rrpv[i] = b.max
	}
	b.FillsByKind = [stream.NumKinds]int64{}
	b.DistantFillsByKind = [stream.NumKinds]int64{}
}

// insert installs rrpv for a filled block and records fill accounting.
func (b *rripBase) insert(set, way int, v uint8, k stream.Kind) {
	b.rrpv[set*b.ways+way] = v
	b.FillsByKind[k]++
	if v == b.max {
		b.DistantFillsByKind[k]++
	}
}

// promote implements hit promotion (RRIP-HP): RRPV becomes zero.
func (b *rripBase) promote(set, way int) { b.rrpv[set*b.ways+way] = 0 }

// victim finds a block with RRPV == max, aging the whole set in unit
// steps until one exists. Ties break toward the minimum physical way id,
// as in the paper.
func (b *rripBase) victim(set int) int {
	base := set * b.ways
	for {
		for w := 0; w < b.ways; w++ {
			if b.rrpv[base+w] == b.max {
				return w
			}
		}
		for w := 0; w < b.ways; w++ {
			b.rrpv[base+w]++
		}
	}
}

// RRPV exposes the current re-reference prediction value of a block, for
// tests and analysis observers.
func (b *rripBase) RRPV(set, way int) uint8 { return b.rrpv[set*b.ways+way] }

// MaxRRPV returns 2^n - 1 for the configured width.
func (b *rripBase) MaxRRPV() uint8 { return b.max }

// SRRIP is static re-reference interval prediction: every fill is
// inserted with RRPV 2^n-2 (long), hits promote to 0, and blocks with
// RRPV 2^n-1 are victimized. The LLC sample sets of the GSPC family run
// exactly this policy.
type SRRIP struct {
	rripBase
}

var _ cachesim.Policy = (*SRRIP)(nil)

// NewSRRIP returns an SRRIP policy with an n-bit RRPV (the paper uses 2).
func NewSRRIP(bits int) *SRRIP {
	p := &SRRIP{}
	p.init(bits)
	return p
}

// Name implements cachesim.Policy.
func (p *SRRIP) Name() string { return fmt.Sprintf("SRRIP-%d", p.bits) }

// Reset implements cachesim.Policy.
func (p *SRRIP) Reset(sets, ways int) { p.reset(sets, ways) }

// Hit implements cachesim.Policy.
func (p *SRRIP) Hit(set, way int, a stream.Access) { p.promote(set, way) }

// Fill implements cachesim.Policy.
func (p *SRRIP) Fill(set, way int, a stream.Access) {
	p.insert(set, way, p.max-1, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *SRRIP) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *SRRIP) Evict(set, way int) { p.rrpv[set*p.ways+way] = p.max }

// BRRIP is bimodal RRIP: fills are inserted with RRPV 2^n-1 except for
// one in every bipEpsilon fills, which uses 2^n-2. It is the thrashing-
// resistant pole of DRRIP's duel.
type BRRIP struct {
	rripBase
	fills uint64
}

var _ cachesim.Policy = (*BRRIP)(nil)

// NewBRRIP returns a BRRIP policy with an n-bit RRPV.
func NewBRRIP(bits int) *BRRIP {
	p := &BRRIP{}
	p.init(bits)
	return p
}

// Name implements cachesim.Policy.
func (p *BRRIP) Name() string { return fmt.Sprintf("BRRIP-%d", p.bits) }

// Reset implements cachesim.Policy.
func (p *BRRIP) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.fills = 0
}

// Hit implements cachesim.Policy.
func (p *BRRIP) Hit(set, way int, a stream.Access) { p.promote(set, way) }

// Fill implements cachesim.Policy.
func (p *BRRIP) Fill(set, way int, a stream.Access) {
	p.fills++
	v := p.max
	if p.fills%bipEpsilon == 0 {
		v = p.max - 1
	}
	p.insert(set, way, v, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *BRRIP) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *BRRIP) Evict(set, way int) { p.rrpv[set*p.ways+way] = p.max }

// DRRIP is dynamic RRIP: a set duel between SRRIP insertion (RRPV max-1)
// and BRRIP insertion decides the policy followed by the remaining sets.
// One set in every 64 leads for each team; a saturating selector counts
// leader-set misses. This is the paper's baseline policy.
type DRRIP struct {
	rripBase
	fills uint64
	psel  int
}

var _ cachesim.Policy = (*DRRIP)(nil)

// NewDRRIP returns a DRRIP policy with an n-bit RRPV (the baseline uses
// 2; Fig. 14 also evaluates 4).
func NewDRRIP(bits int) *DRRIP {
	p := &DRRIP{}
	p.init(bits)
	return p
}

// Name implements cachesim.Policy.
func (p *DRRIP) Name() string { return fmt.Sprintf("DRRIP-%d", p.bits) }

// Reset implements cachesim.Policy.
func (p *DRRIP) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.fills = 0
	p.psel = 1<<(pselBits-1) - 1
}

const (
	leaderNone = iota
	leaderSRRIP
	leaderBRRIP
)

// drripLeader classifies a set: residue 0 of every 64 sets leads for
// SRRIP, residue 33 for BRRIP (spread apart so both teams sample the
// whole index space).
func drripLeader(set int) int {
	switch set & 63 {
	case 0:
		return leaderSRRIP
	case 33:
		return leaderBRRIP
	default:
		return leaderNone
	}
}

// Hit implements cachesim.Policy.
func (p *DRRIP) Hit(set, way int, a stream.Access) { p.promote(set, way) }

// Fill implements cachesim.Policy.
func (p *DRRIP) Fill(set, way int, a stream.Access) {
	leader := drripLeader(set)
	// A fill is a miss: leader-set misses move the selector.
	switch leader {
	case leaderSRRIP:
		if p.psel < 1<<pselBits-1 {
			p.psel++
		}
	case leaderBRRIP:
		if p.psel > 0 {
			p.psel--
		}
	}
	useBRRIP := false
	switch leader {
	case leaderSRRIP:
		useBRRIP = false
	case leaderBRRIP:
		useBRRIP = true
	default:
		useBRRIP = p.psel >= 1<<(pselBits-1)
	}
	v := p.max - 1
	if useBRRIP {
		p.fills++
		v = p.max
		if p.fills%bipEpsilon == 0 {
			v = p.max - 1
		}
	}
	p.insert(set, way, v, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *DRRIP) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *DRRIP) Evict(set, way int) { p.rrpv[set*p.ways+way] = p.max }

// PSEL exposes the duel selector for tests.
func (p *DRRIP) PSEL() int { return p.psel }

// StreamGroup is the four-way partition of the LLC streams used by the
// stream-aware policies (Section 3): Z, texture sampler, render target,
// and the rest.
type StreamGroup uint8

// The stream groups.
const (
	GroupZ StreamGroup = iota
	GroupTexture
	GroupRT
	GroupOther
	NumStreamGroups
)

// GroupOf maps a stream kind to its group.
func GroupOf(k stream.Kind) StreamGroup {
	switch k {
	case stream.Z:
		return GroupZ
	case stream.Texture:
		return GroupTexture
	case stream.RT, stream.Display:
		// Displayable color is a render target (Section 5.1).
		return GroupRT
	default:
		return GroupOther
	}
}

// String names the group.
func (g StreamGroup) String() string {
	switch g {
	case GroupZ:
		return "Z"
	case GroupTexture:
		return "TEX"
	case GroupRT:
		return "RT"
	default:
		return "OTHER"
	}
}

// GSDRRIP is graphics stream-aware DRRIP: thread-aware DRRIP [20] applied
// to the four graphics stream groups, each with its own duel between
// SRRIP and BRRIP insertion. Residues 2g and 2g+1 of every 64 sets lead
// for group g's SRRIP and BRRIP teams respectively; fills of other groups
// in a leader set follow their own group's winner.
type GSDRRIP struct {
	rripBase
	fills [NumStreamGroups]uint64
	psel  [NumStreamGroups]int
}

var _ cachesim.Policy = (*GSDRRIP)(nil)

// NewGSDRRIP returns a GS-DRRIP policy with an n-bit RRPV.
func NewGSDRRIP(bits int) *GSDRRIP {
	p := &GSDRRIP{}
	p.init(bits)
	return p
}

// Name implements cachesim.Policy.
func (p *GSDRRIP) Name() string { return fmt.Sprintf("GS-DRRIP-%d", p.bits) }

// Reset implements cachesim.Policy.
func (p *GSDRRIP) Reset(sets, ways int) {
	p.reset(sets, ways)
	for g := range p.psel {
		p.psel[g] = 1<<(pselBits-1) - 1
		p.fills[g] = 0
	}
}

// gsLeader reports which group the set leads for and on which team;
// returns (group, team) with team leaderNone when the set is a follower
// for every group.
func gsLeader(set int) (StreamGroup, int) {
	r := set & 63
	if r < 2*int(NumStreamGroups) {
		return StreamGroup(r / 2), leaderSRRIP + r%2
	}
	return 0, leaderNone
}

// Hit implements cachesim.Policy.
func (p *GSDRRIP) Hit(set, way int, a stream.Access) { p.promote(set, way) }

// Fill implements cachesim.Policy.
func (p *GSDRRIP) Fill(set, way int, a stream.Access) {
	g := GroupOf(a.Kind)
	lg, team := gsLeader(set)
	if team != leaderNone && lg == g {
		switch team {
		case leaderSRRIP:
			if p.psel[g] < 1<<pselBits-1 {
				p.psel[g]++
			}
		case leaderBRRIP:
			if p.psel[g] > 0 {
				p.psel[g]--
			}
		}
	}
	useBRRIP := p.psel[g] >= 1<<(pselBits-1)
	if team != leaderNone && lg == g {
		useBRRIP = team == leaderBRRIP
	}
	v := p.max - 1
	if useBRRIP {
		p.fills[g]++
		v = p.max
		if p.fills[g]%bipEpsilon == 0 {
			v = p.max - 1
		}
	}
	p.insert(set, way, v, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *GSDRRIP) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *GSDRRIP) Evict(set, way int) { p.rrpv[set*p.ways+way] = p.max }

// PSELFor exposes the duel selector of a stream group for tests.
func (p *GSDRRIP) PSELFor(g StreamGroup) int { return p.psel[g] }
