// Package gpu is the detailed timing simulator of Section 4: a GPU with
// 96 shader cores x 8 thread contexts (768 threads), twelve fixed-
// function texture samplers, a four-banked 8 MB 16-way LLC with a
// 20-cycle load-to-use latency, and a dual-channel DDR3 memory system.
//
// The model is event-driven. The frame's LLC access trace is partitioned
// among the thread contexts in interleaved chunks (screen-space tiles are
// distributed over cores the same way); each thread alternates between
// shading work (a per-stream compute gap, scaled by the core's issue
// share) and memory accesses. Loads block the issuing thread until the
// banked LLC — and on a miss, DRAM — returns data; stores retire into the
// memory system without blocking. Rendering performance is the wall-clock
// cycle count to drain all threads, reported as frames per second.
//
// The model captures the two mechanisms the paper's performance results
// rest on: fast thread switching partially hides memory latency (so only
// substantial LLC miss savings become speedups), and the LLC is far more
// bandwidth-efficient than DRAM (so miss savings relieve the DRAM bus,
// which is the common bottleneck).
package gpu

import (
	"container/heap"
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/dram"
	"gspc/internal/stream"
	"gspc/internal/telemetry"
)

// Config describes the simulated GPU.
type Config struct {
	// Cores and ThreadsPerCore size the shader array (96 x 8 baseline;
	// the Figure 17 sensitivity study uses 64 x 8).
	Cores          int
	ThreadsPerCore int
	// IssueWidth is the number of thread instructions a core issues per
	// cycle (two SIMD pipelines per core in the paper).
	IssueWidth int
	// Samplers is the number of fixed-function texture sampler units.
	Samplers int
	// SamplerCycles is the sampler pipeline occupancy per LLC texture
	// request (front-end filtering means each LLC request stands for a
	// batch of texel fetches).
	SamplerCycles int
	// ClockGHz is the shader/sampler clock (1.6 GHz).
	ClockGHz float64

	// LLCGeom is the last-level cache organization.
	LLCGeom cachesim.Geometry
	// LLCBanks and LLCLatency describe the banked LLC pipeline: one
	// access per bank per cycle, LLCLatency cycles load-to-use.
	LLCBanks   int
	LLCLatency int
	// UncachedDisplay bypasses the LLC for the display stream (UCD).
	UncachedDisplay bool

	// DRAM is the memory system configuration; its GPUClockGHz is
	// overridden with ClockGHz.
	DRAM dram.Config

	// ChunkSize is the number of consecutive trace accesses bound to one
	// thread before work distribution moves to the next thread — the
	// screen-tile granularity of the rasterizer's core assignment.
	ChunkSize int

	// ComputeGap is the shading work in thread-cycles preceding each
	// memory access, per stream kind. Zero entries fall back to
	// DefaultComputeGap.
	ComputeGap [stream.NumKinds]int
}

// DefaultComputeGap is the per-stream shading cost in thread cycles per
// LLC access. Each LLC access stands for many absorbed render-cache hits,
// so these are large: a texture LLC request amortizes the filtering and
// shading math of dozens of pixels.
var DefaultComputeGap = [stream.NumKinds]int{
	stream.Vertex:  320,
	stream.HiZ:     160,
	stream.Z:       200,
	stream.Stencil: 160,
	stream.RT:      260,
	stream.Texture: 420,
	stream.Display: 80,
	stream.Other:   200,
}

// DefaultConfig returns the paper's baseline GPU with the given LLC
// policy geometry.
func DefaultConfig(geom cachesim.Geometry) Config {
	return Config{
		Cores:          96,
		ThreadsPerCore: 8,
		IssueWidth:     2,
		Samplers:       12,
		SamplerCycles:  4,
		ClockGHz:       1.6,
		LLCGeom:        geom,
		LLCBanks:       4,
		LLCLatency:     20,
		DRAM:           dram.DefaultConfig(),
		ChunkSize:      64,
	}
}

// Result reports one simulated frame.
type Result struct {
	Cycles int64
	// FPS is frames per second at the configured clock for this frame.
	FPS  float64
	LLC  cachesim.Stats
	DRAM dram.Stats
	// Accesses is the number of trace accesses the model executed.
	Accesses int64
}

type event struct {
	t      int64
	thread int32
	seq    int64 // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate renders one frame (its LLC access trace) on the configured
// GPU with the given LLC replacement policy and returns the timing
// result. The policy's state is reset by the embedded cache model.
func Simulate(tr []stream.Access, cfg Config, pol cachesim.Policy) Result {
	return SimulateSource(stream.Slice(tr), cfg, pol)
}

// SimulateSource is Simulate over any positional trace view, most
// importantly the packed stream.Trace shared by the frame-trace cache.
// Threads read the trace positionally (chunk-interleaved), so the view
// is only ever indexed — never mutated — and one packed trace can feed
// any number of concurrent simulations.
func SimulateSource(tr stream.Source, cfg Config, pol cachesim.Policy) Result {
	if cfg.Cores <= 0 || cfg.ThreadsPerCore <= 0 {
		panic(fmt.Sprintf("gpu: invalid shader array %dx%d", cfg.Cores, cfg.ThreadsPerCore))
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 2
	}
	for k := range cfg.ComputeGap {
		if cfg.ComputeGap[k] == 0 {
			cfg.ComputeGap[k] = DefaultComputeGap[k]
		}
	}
	cfg.DRAM.GPUClockGHz = cfg.ClockGHz

	mem := dram.New(cfg.DRAM)
	llc := cachesim.New(cfg.LLCGeom, pol)
	if cfg.UncachedDisplay {
		llc.SetBypass(stream.Display, true)
	}

	// MSHRs: outstanding demand fills indexed by block number. A thread
	// hitting a block whose fill is still in flight waits for that fill
	// instead of receiving data at the LLC pipeline latency; a second
	// miss merges rather than issuing a duplicate DRAM fetch. Entries
	// whose fill has completed are lazily reclaimed.
	mshr := make(map[uint64]int64, 1024)

	// The LLC's downstream is DRAM: demand fetches and writebacks are
	// issued at the simulation time of the access that triggered them.
	var now int64
	var lastFill int64 // completion of the most recent demand fetch
	llc.Downstream = stream.SinkFunc(func(a stream.Access) {
		if a.Write {
			mem.Access(a.Addr, now, true)
			return
		}
		bn := a.Addr >> 6
		if done, ok := mshr[bn]; ok && done > now {
			lastFill = done // merge with the in-flight fill
			return
		}
		done := mem.Access(a.Addr, now, false)
		mshr[bn] = done
		lastFill = done
		if len(mshr) > 4096 {
			for k, d := range mshr {
				if d <= now {
					delete(mshr, k)
				}
			}
		}
	})

	nThreads := cfg.Cores * cfg.ThreadsPerCore
	nChunks := (tr.Len() + cfg.ChunkSize - 1) / cfg.ChunkSize

	// Thread k owns chunks k, k+T, k+2T, ... ; pos tracks each thread's
	// place within its current chunk.
	chunkOf := make([]int, nThreads) // current chunk ordinal per thread
	idx := make([]int, nThreads)     // offset within current chunk

	// Shading rate: with all thread contexts busy, a core advances
	// IssueWidth threads per cycle, so a gap of g thread-cycles costs
	// g * ThreadsPerCore / IssueWidth wall cycles.
	gapScale := cfg.ThreadsPerCore / cfg.IssueWidth
	if gapScale < 1 {
		gapScale = 1
	}

	bankFree := make([]int64, cfg.LLCBanks)
	samplerFree := make([]int64, max(1, cfg.Samplers))

	h := make(eventHeap, 0, nThreads)
	var seq int64
	for t := 0; t < nThreads && t < nChunks; t++ {
		chunkOf[t] = t
		h = append(h, event{t: 0, thread: int32(t), seq: seq})
		seq++
	}
	heap.Init(&h)

	var cycles int64
	var accesses int64
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		th := int(ev.thread)

		// Fetch the thread's next access, advancing through its chunks.
		pos := -1
		for chunkOf[th] < nChunks {
			p := chunkOf[th]*cfg.ChunkSize + idx[th]
			if idx[th] < cfg.ChunkSize && p < tr.Len() {
				pos = p
				break
			}
			chunkOf[th] += nThreads
			idx[th] = 0
		}
		if pos < 0 {
			if ev.t > cycles {
				cycles = ev.t
			}
			continue // thread retires
		}
		a := tr.At(pos)
		idx[th]++
		accesses++

		// Shading work before the access.
		t := ev.t + int64(cfg.ComputeGap[a.Kind]*gapScale)

		// Texture requests flow through a sampler unit.
		if a.Kind == stream.Texture && cfg.Samplers > 0 {
			s := th % cfg.Samplers
			if samplerFree[s] > t {
				t = samplerFree[s]
			}
			samplerFree[s] = t + int64(cfg.SamplerCycles)
			t += int64(cfg.SamplerCycles)
		}

		// Banked LLC pipeline: one access per bank per cycle.
		b := llc.SetIndex(a.Addr) * cfg.LLCBanks / llc.Sets()
		if b >= cfg.LLCBanks {
			b = cfg.LLCBanks - 1
		}
		if bankFree[b] > t {
			t = bankFree[b]
		}
		bankFree[b] = t + 1

		now = t + int64(cfg.LLCLatency)
		lastFill = 0
		hit := llc.Access(a)
		done := t + int64(cfg.LLCLatency)
		if lastFill > done {
			done = lastFill // miss: wait for the DRAM fill
		}
		if hit && !a.Write {
			// A hit on a block whose demand fill is still in flight
			// (secondary miss) delivers data when the fill lands.
			if fd, ok := mshr[a.Addr>>6]; ok && fd > done {
				done = fd
			}
		}

		resume := done
		if a.Write {
			// Stores retire asynchronously; the thread only pays the
			// issue slot.
			resume = t + 1
		}
		if done > cycles {
			cycles = done
		}
		heap.Push(&h, event{t: resume, thread: int32(th), seq: seq})
		seq++
	}

	fps := 0.0
	if cycles > 0 {
		fps = cfg.ClockGHz * 1e9 / float64(cycles)
	}
	// Fold this simulation's LLC and DRAM outcomes into the process-wide
	// telemetry counters — once per simulation, never per access.
	for _, k := range stream.Kinds() {
		telemetry.RecordLLCStream(k.String(), llc.Stats.KindAccesses[k], llc.Stats.KindHits[k])
	}
	telemetry.RecordDRAM(mem.Stats.Reads, mem.Stats.Writes, mem.Stats.RowHits, mem.Stats.RowMisses, mem.Stats.RowConflicts)
	return Result{
		Cycles:   cycles,
		FPS:      fps,
		LLC:      llc.Stats,
		DRAM:     mem.Stats,
		Accesses: accesses,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
