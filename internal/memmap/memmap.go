// Package memmap models the GPU's graphics address space: a bump
// allocator for surfaces and buffers, tiled 2D surface layouts (a 64-byte
// cache block holds a square tile of pixels, as in real GPU color/depth
// layouts), and MIP-mapped texture chains. The rendering pipeline
// (internal/pipeline) computes every memory address it touches through
// this package, so the reuse structure seen by the caches follows from
// surface geometry rather than from synthetic randomness.
package memmap

import "fmt"

// BlockSize is the cache block (and tile) size in bytes across the model.
const BlockSize = 64

// Allocator hands out non-overlapping address ranges. Distinct frames use
// distinct allocators with the same base to model a stable per-frame heap.
type Allocator struct {
	next uint64
}

// NewAllocator returns an allocator starting at base.
func NewAllocator(base uint64) *Allocator {
	a := &Allocator{next: base}
	a.align(BlockSize)
	return a
}

func (a *Allocator) align(n uint64) {
	if rem := a.next % n; rem != 0 {
		a.next += n - rem
	}
}

// Alloc reserves size bytes aligned to BlockSize and returns the base.
func (a *Allocator) Alloc(size uint64) uint64 {
	a.align(BlockSize)
	base := a.next
	a.next += size
	return base
}

// Used returns the highest allocated address.
func (a *Allocator) Used() uint64 { return a.next }

// Surface is a tiled 2D pixel array. Pixels are BytesPerPixel wide and
// grouped into tiles of TileW x TileH pixels such that one tile occupies
// exactly one cache block; tiles are laid out row-major.
type Surface struct {
	Base          uint64
	Width, Height int
	BytesPerPixel int

	tileW, tileH int
	tilesPerRow  int
	tilesPerCol  int

	layout     Layout
	mortonSide int
}

// tileShape returns the tile dimensions for a pixel size: 4x4 for 32-bit
// pixels, 8x8 for 8-bit (stencil), 4x2 for 64-bit.
func tileShape(bpp int) (w, h int) {
	switch bpp {
	case 1:
		return 8, 8
	case 2:
		return 8, 4
	case 4:
		return 4, 4
	case 8:
		return 4, 2
	case 16:
		return 2, 2
	default:
		panic(fmt.Sprintf("memmap: unsupported pixel size %d", bpp))
	}
}

// NewSurface allocates a w x h surface with the given pixel size.
func NewSurface(a *Allocator, w, h, bpp int) *Surface {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("memmap: invalid surface %dx%d", w, h))
	}
	tw, th := tileShape(bpp)
	s := &Surface{
		Width:         w,
		Height:        h,
		BytesPerPixel: bpp,
		tileW:         tw,
		tileH:         th,
		tilesPerRow:   (w + tw - 1) / tw,
		tilesPerCol:   (h + th - 1) / th,
	}
	s.Base = a.Alloc(uint64(s.tilesPerRow*s.tilesPerCol) * BlockSize)
	return s
}

// SizeBytes returns the allocated footprint (including any Morton
// padding).
func (s *Surface) SizeBytes() int { return s.footprintBlocks() * BlockSize }

// TileW returns the tile width in pixels.
func (s *Surface) TileW() int { return s.tileW }

// TileH returns the tile height in pixels.
func (s *Surface) TileH() int { return s.tileH }

// TilesPerRow returns the number of tiles per surface row.
func (s *Surface) TilesPerRow() int { return s.tilesPerRow }

// TilesPerCol returns the number of tile rows.
func (s *Surface) TilesPerCol() int { return s.tilesPerCol }

// clamp limits v to [0, n-1].
func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Addr returns the byte address of pixel (x, y), clamping coordinates to
// the surface (texture samplers clamp at edges).
func (s *Surface) Addr(x, y int) uint64 {
	x = clamp(x, s.Width)
	y = clamp(y, s.Height)
	tile := s.tileIndex(x/s.tileW, y/s.tileH)
	off := ((y%s.tileH)*s.tileW + x%s.tileW) * s.BytesPerPixel
	return s.Base + uint64(tile*BlockSize+off)
}

// TileAddr returns the block address of tile (tx, ty).
func (s *Surface) TileAddr(tx, ty int) uint64 {
	tx = clamp(tx, s.tilesPerRow)
	ty = clamp(ty, s.tilesPerCol)
	return s.Base + uint64(s.tileIndex(tx, ty)*BlockSize)
}

// Contains reports whether addr falls inside the surface allocation.
func (s *Surface) Contains(addr uint64) bool {
	return addr >= s.Base && addr < s.Base+uint64(s.SizeBytes())
}

// Buffer is a linear allocation (vertex data, index data, constants).
type Buffer struct {
	Base   uint64
	Size   int
	Stride int
}

// NewBuffer allocates a linear buffer of count elements of stride bytes.
func NewBuffer(a *Allocator, count, stride int) *Buffer {
	b := &Buffer{Size: count * stride, Stride: stride}
	b.Base = a.Alloc(uint64(b.Size))
	return b
}

// ElemAddr returns the address of element i (clamped to the buffer).
func (b *Buffer) ElemAddr(i int) uint64 {
	if b.Size == 0 {
		return b.Base
	}
	off := i * b.Stride
	if off < 0 {
		off = 0
	}
	if off >= b.Size {
		off = b.Size - b.Stride
	}
	return b.Base + uint64(off)
}

// Count returns the number of elements.
func (b *Buffer) Count() int {
	if b.Stride == 0 {
		return 0
	}
	return b.Size / b.Stride
}

// Texture is a MIP-mapped texture: a pyramid of surfaces, level 0 the
// largest, each subsequent level half the size [48].
type Texture struct {
	Levels []*Surface
	// Dynamic marks a texture whose level-0 storage aliases a render
	// target produced earlier in the frame (render-to-texture).
	Dynamic bool
}

// NewTexture allocates a MIP chain starting at w x h with the given pixel
// size, down to 1x1 or maxLevels levels, whichever comes first.
func NewTexture(a *Allocator, w, h, bpp, maxLevels int) *Texture {
	t := &Texture{}
	for lvl := 0; lvl < maxLevels && w >= 1 && h >= 1; lvl++ {
		t.Levels = append(t.Levels, NewSurface(a, w, h, bpp))
		if w == 1 && h == 1 {
			break
		}
		w = max(1, w/2)
		h = max(1, h/2)
	}
	return t
}

// TextureFromSurface wraps an existing render target surface as a
// single-level dynamic texture (render-to-texture aliasing: the sampler
// reads the very blocks the render target stream produced).
func TextureFromSurface(s *Surface) *Texture {
	return &Texture{Levels: []*Surface{s}, Dynamic: true}
}

// Level returns the surface of MIP level lvl, clamped to the chain.
func (t *Texture) Level(lvl int) *Surface {
	return t.Levels[clamp(lvl, len(t.Levels))]
}

// NumLevels returns the MIP chain length.
func (t *Texture) NumLevels() int { return len(t.Levels) }

// SizeBytes returns the total footprint of all levels.
func (t *Texture) SizeBytes() int {
	n := 0
	for _, s := range t.Levels {
		n += s.SizeBytes()
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
