package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEventLogSeqAndSince(t *testing.T) {
	l, err := NewEventLog(8, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev := l.Add(EventRingSwap, "", "gen=1")
		if ev.Seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", ev.Seq, i+1)
		}
	}
	evs, cursor := l.Since(0, 0)
	if len(evs) != 5 || cursor != 5 {
		t.Fatalf("since(0) = %d events cursor %d, want 5/5", len(evs), cursor)
	}
	if evs[0].Seq != 1 || evs[4].Seq != 5 {
		t.Errorf("events not oldest-first: %v", evs)
	}
	evs, _ = l.Since(3, 0)
	if len(evs) != 2 || evs[0].Seq != 4 {
		t.Errorf("since(3) = %v, want seqs 4..5", evs)
	}
	evs, _ = l.Since(0, 2)
	if len(evs) != 2 || evs[0].Seq != 1 {
		t.Errorf("since(0, max 2) = %v, want seqs 1..2", evs)
	}
}

func TestEventLogRingEvicts(t *testing.T) {
	l, _ := NewEventLog(3, "")
	for i := 0; i < 10; i++ {
		l.Add(EventMemberSuspected, "n1", "")
	}
	evs, cursor := l.Since(0, 0)
	if len(evs) != 3 {
		t.Fatalf("%d events retained, want 3", len(evs))
	}
	if evs[0].Seq != 8 || evs[2].Seq != 10 || cursor != 10 {
		t.Errorf("retained seqs %d..%d cursor %d, want 8..10/10", evs[0].Seq, evs[2].Seq, cursor)
	}
	if l.Total() != 10 {
		t.Errorf("total = %d, want 10", l.Total())
	}
}

func TestEventLogDurableReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	l, err := NewEventLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Add(EventMemberDead, "n2", "strikes=3")
	l.Add(EventDrainStart, "n3", "")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: Seq resumes, ring holds the replayed tail.
	l2, err := NewEventLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs, cursor := l2.Since(0, 0)
	if len(evs) != 2 || cursor != 2 {
		t.Fatalf("replayed %d events cursor %d, want 2/2", len(evs), cursor)
	}
	if evs[0].Type != EventMemberDead || evs[0].Node != "n2" || evs[0].Detail != "strikes=3" {
		t.Errorf("replayed event 0 = %+v", evs[0])
	}
	if ev := l2.Add(EventDrainEnd, "n3", ""); ev.Seq != 3 {
		t.Errorf("seq after replay = %d, want 3", ev.Seq)
	}
	if l2.Total() != 3 {
		t.Errorf("total after replay = %d, want 3", l2.Total())
	}
}

func TestEventLogReplaySkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	good := `{"seq":1,"time":"2026-01-01T00:00:00Z","type":"ring-swap"}` + "\n"
	torn := `{"seq":2,"time":"2026-01-01T00:` // crash mid-append
	if err := os.WriteFile(path, []byte(good+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewEventLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	evs, _ := l.Since(0, 0)
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("replayed %v, want just seq 1", evs)
	}
	if ev := l.Add(EventRingSwap, "", ""); ev.Seq != 2 {
		t.Errorf("next seq = %d, want 2", ev.Seq)
	}
}

func TestEventLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	l, err := NewEventLog(4, path)
	if err != nil {
		t.Fatal(err)
	}
	// Force compaction by pretending the file is over budget.
	l.mu.Lock()
	l.fileSize = eventLogMaxFileBytes + 1
	l.mu.Unlock()
	l.Add(EventRingSwap, "", "gen=2") // triggers compact
	l.Add(EventRingSwap, "", "gen=3")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 1024 {
		t.Errorf("file size %d after compaction, want small", st.Size())
	}
	// The compacted file must still replay.
	l2, err := NewEventLog(4, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	evs, cursor := l2.Since(0, 0)
	if len(evs) != 2 || cursor != 2 {
		t.Errorf("replayed %d events cursor %d after compaction, want 2/2", len(evs), cursor)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Add(EventRingSwap, "", "")
	evs, cursor := l.Since(0, 0)
	if evs != nil || cursor != 0 || l.Total() != 0 || l.Close() != nil {
		t.Error("nil event log reported state")
	}
}
