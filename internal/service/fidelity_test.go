package service

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/harness"
)

func TestRequestFidelityNormalize(t *testing.T) {
	r, err := (Request{Experiment: "fig12", Fidelity: "sampled"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Fidelity != harness.FidelitySampled || r.SampleRatio != harness.DefaultSampleSetRatio || r.SampleSeed != 1 {
		t.Errorf("sampled defaults not applied: %+v", r)
	}

	// Exact (and unset) fidelity canonicalizes the knobs away, so the
	// key cannot fracture on fields that cannot change the result.
	plain, err := (Request{Experiment: "fig12"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := (Request{Experiment: "fig12", Fidelity: "exact", SampleRatio: 8, SampleSeed: 3}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != noisy.Key() {
		t.Errorf("exact keys fractured on sampling knobs: %s vs %s", plain.Key(), noisy.Key())
	}
	if plain.Fidelity != harness.FidelityExact {
		t.Errorf("unset fidelity normalized to %q, want exact", plain.Fidelity)
	}

	// Sampled runs key on the full sampling configuration.
	s1, _ := (Request{Experiment: "fig12", Fidelity: "sampled"}).Normalize()
	s2, _ := (Request{Experiment: "fig12", Fidelity: "sampled", SampleRatio: 8}).Normalize()
	if s1.Key() == plain.Key() {
		t.Error("sampled and exact requests share a key")
	}
	if s1.Key() == s2.Key() {
		t.Error("different sample ratios share a key")
	}

	if _, err := (Request{Experiment: "fig12", Fidelity: "fast"}).Normalize(); err == nil {
		t.Error("unknown fidelity accepted")
	}
	if _, err := (Request{Experiment: "fig12", SampleRatio: -2}).Normalize(); err == nil {
		t.Error("negative sample ratio accepted")
	}
}

func TestExactTwin(t *testing.T) {
	s, _ := (Request{Experiment: "fig12", Scale: 0.5, Fidelity: "sampled", SampleRatio: 8}).Normalize()
	twin, err := s.ExactTwin().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (Request{Experiment: "fig12", Scale: 0.5}).Normalize()
	if twin.Key() != want.Key() {
		t.Errorf("twin key %s, want the plain exact key %s", twin.Key(), want.Key())
	}
	if got := want.ExactTwin().Key(); got != want.Key() {
		t.Errorf("exact twin of an exact request changed key: %s vs %s", got, want.Key())
	}
}

// markedRunner distinguishes exact from sampled runs in the result body
// and attaches a sampling report to sampled ones.
func markedRunner(calls *int64) func(context.Context, Request) (*harness.Result, error) {
	return func(_ context.Context, r Request) (*harness.Result, error) {
		atomic.AddInt64(calls, 1)
		res := &harness.Result{Experiment: r.Experiment, Title: "fidelity=" + r.Fidelity, Fidelity: r.Fidelity}
		if r.Fidelity == harness.FidelitySampled {
			res.Sampling = &harness.SamplingReport{SetRatio: r.SampleRatio, SetSeed: r.SampleSeed,
				SetsSimulated: 8, SetsTotal: 128, EstRelErr: 0.05, MaxRelErr: 0.09, Replays: 1}
		}
		return res, nil
	}
}

// TestEscalationUpgradesSampledEntry: with EscalateSampled on, a
// sampled job's cache entry is replaced by the exact twin's result once
// the twin completes, under the sampled key.
func TestEscalationUpgradesSampledEntry(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8,
		EscalateSampled: true, Run: markedRunner(&calls)})

	req := Request{Experiment: "fig12", Frames: 1, Fidelity: "sampled"}
	rep, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep.Body), "fidelity=sampled") {
		t.Fatalf("first answer should be the sampled run, got %s", rep.Body)
	}

	// The escalation runs asynchronously; poll the cache under the
	// sampled key until the exact body lands.
	norm, _ := req.Normalize()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := e.Cached(norm.Key()); ok && strings.Contains(string(v.Body), "fidelity=exact") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampled cache entry was never upgraded to the exact result")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The exact twin is cached under its own key too.
	twin, _ := req.ExactTwin().Normalize()
	if v, ok := e.Cached(twin.Key()); !ok || !strings.Contains(string(v.Body), "fidelity=exact") {
		t.Error("exact twin result not cached under the exact key")
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("runner invoked %d times, want 2 (sampled + exact twin)", got)
	}
	m := e.Metrics()
	if m.Sampling == nil {
		t.Fatal("metrics missing sampling section after a sampled job")
	}
	if m.Sampling.SampledJobs != 1 || m.Sampling.Escalations != 1 || m.Sampling.EscalationHits < 1 {
		t.Errorf("sampling metrics = %+v, want 1 sampled job, 1 escalation, >=1 hit", m.Sampling)
	}
	if m.Sampling.LastEstRelErr != 0.05 {
		t.Errorf("last est rel err = %v, want the report's 0.05", m.Sampling.LastEstRelErr)
	}
}

// TestEscalationReusesCachedExact: when the exact twin is already
// cached, escalation upgrades the sampled entry without a second run.
func TestEscalationReusesCachedExact(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8,
		EscalateSampled: true, Run: markedRunner(&calls)})

	exact := Request{Experiment: "fig12", Frames: 1}
	if _, err := e.Do(context.Background(), exact); err != nil {
		t.Fatal(err)
	}
	sampled := Request{Experiment: "fig12", Frames: 1, Fidelity: "sampled"}
	if _, err := e.Do(context.Background(), sampled); err != nil {
		t.Fatal(err)
	}
	norm, _ := sampled.Normalize()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := e.Cached(norm.Key()); ok && strings.Contains(string(v.Body), "fidelity=exact") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampled entry not upgraded from the already-cached exact result")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("runner invoked %d times, want 2 (no rerun of the cached exact twin)", got)
	}
}

// TestNoEscalationWhenDisabled: the default engine leaves sampled
// entries alone.
func TestNoEscalationWhenDisabled(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8, Run: markedRunner(&calls)})
	req := Request{Experiment: "fig12", Frames: 1, Fidelity: "sampled"}
	if _, err := e.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (no escalation)", got)
	}
	norm, _ := req.Normalize()
	if v, ok := e.Cached(norm.Key()); !ok || !strings.Contains(string(v.Body), "fidelity=sampled") {
		t.Error("sampled entry missing or replaced with escalation disabled")
	}
}

// TestAdmitWorkSampledDiscount: a request over the work ceiling at
// exact fidelity is admitted sampled.
func TestAdmitWorkSampledDiscount(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, MaxWork: 1, Run: markedRunner(&calls)})
	heavy := Request{Experiment: "fig12", Scale: 1, Apps: []string{"Dirt"}, Frames: 2}
	if _, err := e.Do(context.Background(), heavy); err == nil {
		t.Fatal("exact request above the ceiling admitted")
	}
	heavy.Fidelity = "sampled"
	if _, err := e.Do(context.Background(), heavy); err != nil {
		t.Fatalf("sampled request rejected: %v", err)
	}
}
