package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
)

// ResultSchemaVersion is the version of the serialized Result layout.
// It is stamped into every Result by BuildResult and checked by
// DecodeResult, so persisted payloads (the service's durable snapshots,
// gspcsim -json archives) from an incompatible layout are rejected with
// a typed error instead of being half-decoded. Bump it whenever a field
// changes meaning, moves, or disappears; purely additive fields do not
// require a bump.
const ResultSchemaVersion = 1

// Result is the serializable form of one experiment run: the full table,
// a per-row metric map for scripted consumers, and the rendered text the
// CLI prints. Its JSON encoding is deterministic (Go sorts map keys), so
// identical options produce byte-identical payloads — the property the
// service's result cache and the acceptance tests rely on.
type Result struct {
	// SchemaVersion is ResultSchemaVersion at encode time; see
	// DecodeResult.
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Title         string `json:"title"`

	// The normalized configuration the experiment actually ran with.
	Scale           float64  `json:"scale"`
	CapacityFactor  float64  `json:"capacity_factor"`
	MaxFramesPerApp int      `json:"max_frames_per_app,omitempty"`
	Apps            []string `json:"apps,omitempty"`
	// Geometry is the scaled model geometry the paper's 8 MB LLC maps to.
	Geometry string `json:"geometry"`
	// Fidelity is the run's fidelity ("exact" or "sampled"); omitted on
	// payloads from builds that predate sampling (decode as "", treat as
	// exact). Additive: no schema bump.
	Fidelity string `json:"fidelity,omitempty"`
	// Sampling summarizes the sampling protocol of a sampled run — the
	// set subset, the mean measured window fraction, and the estimated
	// relative error of the scaled counters. Nil on exact runs.
	Sampling *SamplingReport `json:"sampling,omitempty"`

	Table *Table `json:"table"`
	// PerApp maps each table row label (application abbreviation for the
	// per-app figures, policy name for e.g. fig13) to its column values.
	// The MEAN row is reported separately.
	PerApp map[string]map[string]float64 `json:"per_app,omitempty"`
	Mean   map[string]float64            `json:"mean,omitempty"`
	// Rendered is the aligned text table, exactly as gspcsim prints it.
	Rendered string `json:"rendered"`
}

// SamplingReport summarizes how a sampled-fidelity run measured and
// extrapolated, aggregated over every replay of the run.
type SamplingReport struct {
	// SetRatio and SetSeed are the set-sampling configuration; 1 in
	// SetRatio sets were simulated.
	SetRatio int    `json:"set_ratio"`
	SetSeed  uint64 `json:"set_seed"`
	// SetsSimulated of SetsTotal is the realized subset on the run's
	// primary geometry.
	SetsSimulated int `json:"sets_simulated"`
	SetsTotal     int `json:"sets_total"`
	// WindowFraction is the mean fraction of the full trace the measured
	// windows covered (0 when interval sampling was skipped).
	WindowFraction float64 `json:"window_fraction,omitempty"`
	// EstRelErr and MaxRelErr are the mean and worst per-replay relative
	// standard error of the scaled access counters, estimated from the
	// across-set variance of the sampled subset.
	EstRelErr float64 `json:"est_rel_err"`
	MaxRelErr float64 `json:"max_rel_err"`
	// Replays counts the measured replays aggregated here.
	Replays int64 `json:"replays"`
}

// BuildResult assembles the serializable result for an experiment whose
// table has already been computed under the given options.
func BuildResult(e Experiment, o Options, t *Table) *Result {
	o = o.normalized()
	r := &Result{
		SchemaVersion:   ResultSchemaVersion,
		Experiment:      e.ID,
		Title:           e.Title,
		Scale:           o.Scale,
		CapacityFactor:  o.CapacityFactor,
		MaxFramesPerApp: o.MaxFramesPerApp,
		Apps:            o.Apps,
		Geometry:        o.Geometry(paperLLCBytes).String(),
		Fidelity:        o.Fidelity,
		Table:           t,
	}
	if o.sampleAgg != nil {
		r.Sampling = o.sampleAgg.report(o)
	}
	for _, row := range t.Rows {
		m := map[string]float64{}
		for i, c := range t.Columns {
			if i < len(row.Values) {
				m[c] = row.Values[i]
			}
		}
		if len(m) == 0 {
			continue
		}
		if row.Label == "MEAN" {
			r.Mean = m
			continue
		}
		if r.PerApp == nil {
			r.PerApp = map[string]map[string]float64{}
		}
		r.PerApp[row.Label] = m
	}
	var b strings.Builder
	t.Render(&b)
	r.Rendered = b.String()
	return r
}

// RunResult runs the experiment with the given id (figures, tables, and
// extensions all resolve) and returns its serializable result.
func RunResult(id string, o Options) (*Result, error) {
	return RunResultContext(context.Background(), id, o)
}

// RunResultContext is RunResult bounded by ctx: the context is threaded
// into the trace-synthesis and cache-simulation loops, so cancelling it
// (or letting its deadline expire) stops the experiment promptly. The
// returned error wraps ctx.Err() when the run was cut short, so callers
// can errors.Is it against context.DeadlineExceeded / context.Canceled.
func RunResultContext(ctx context.Context, id string, o Options) (*Result, error) {
	e, ok := ByIDExt(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	o.Context = ctx
	if o.Normalized().sampled() {
		// The aggregate travels by pointer: the experiment's replays fold
		// their sampling reports into it and BuildResult reads it back.
		o.sampleAgg = &sampleAgg{}
	}
	t, err := e.Run(o)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("harness: experiment %s interrupted: %w", id, ctx.Err())
		}
		return nil, err
	}
	return BuildResult(e, o, t), nil
}

// SchemaMismatchError reports a serialized Result whose schema version
// does not match this build's ResultSchemaVersion. Consumers loading
// persisted results (durable snapshots, archived gspcsim -json output)
// should treat the payload as unusable rather than reinterpret it.
type SchemaMismatchError struct{ Got, Want int }

func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("harness: result schema version %d, this build reads %d", e.Got, e.Want)
}

// DecodeResult parses a serialized Result and verifies its schema
// version, returning a *SchemaMismatchError on any other version. A
// payload with no schema_version field decodes as version 0 and is
// likewise rejected: pre-versioning payloads predate the durable store
// and cannot be trusted across builds.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: decode result: %w", err)
	}
	if r.SchemaVersion != ResultSchemaVersion {
		return nil, &SchemaMismatchError{Got: r.SchemaVersion, Want: ResultSchemaVersion}
	}
	return &r, nil
}

// UnknownExperimentError reports a request for an experiment id that is
// neither a paper figure nor an extension.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "harness: unknown experiment " + e.ID
}
