// Package core implements the paper's contribution: graphics stream-aware
// probabilistic caching for GPU last-level caches. Three increasingly
// capable policies are provided (Section 3):
//
//   - GSPZTC: probabilistic insertion for the Z and texture streams based
//     on reuse probabilities learned in SRRIP sample sets (Table 3).
//   - GSPZTC+TSE: adds texture sampler epochs — per-epoch reuse
//     probabilities for E0 and E1 texture blocks tracked with two state
//     bits per block (Table 4, Figure 10).
//   - GSPC: adds dynamic render-target management driven by the observed
//     render-target-to-texture consumption probability (Table 5).
//
// All three dedicate 16 of every 1024 LLC sets as samples that always run
// two-bit SRRIP; small reuse probabilities measured there are amplified in
// the remaining sets by modulating insertion RRPVs.
package core

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// Variant selects which member of the policy family to run.
type Variant uint8

// The policy family members, in order of increasing capability.
const (
	VariantGSPZTC Variant = iota
	VariantGSPZTCTSE
	VariantGSPC
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case VariantGSPZTC:
		return "GSPZTC"
	case VariantGSPZTCTSE:
		return "GSPZTC+TSE"
	case VariantGSPC:
		return "GSPC"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Block states, two bits per LLC block (Figure 10). States E0/E1/E2 track
// the texture sampler epochs; state RT identifies a render target block
// (replacing the separate RT bit of the rudimentary GSPZTC design).
const (
	StateE0 uint8 = 0 // texture epoch 0 (also the neutral state)
	StateE1 uint8 = 1 // texture epoch 1
	StateE2 uint8 = 2 // texture epoch >= 2
	StateRT uint8 = 3 // render target block
)

// Params configures the policy family.
type Params struct {
	// Variant selects GSPZTC, GSPZTC+TSE, or full GSPC.
	Variant Variant
	// T is the reuse probability threshold multiplier: a stream (or
	// texture epoch) is inserted with a distant RRPV when
	// FILL > T*HIT, i.e. when its sampled reuse probability is below
	// 1/(T+1). The paper fixes T=8 (Figure 11). Power-of-two values keep
	// the hardware a shift and compare.
	T int
	// Banks is the number of LLC banks, each owning one counter block.
	// The paper's 8 MB LLC has four 2 MB banks.
	Banks int
	// RRIPBits is the RRPV width; the paper uses 2.
	RRIPBits int
	// ProdConsHi and ProdConsLo are the render-target consumption
	// thresholds of the GSPC variant: insertion RRPV is distant when
	// PROD > Hi*CONS (consumption probability < 1/Hi), long when
	// PROD > Lo*CONS, and zero otherwise. The paper uses 16 and 8.
	ProdConsHi, ProdConsLo int
	// SampleEvery controls the sample set density: one sample per
	// SampleEvery sets (the paper's 16 per 1024 corresponds to 64).
	// Exposed for the sample-density ablation.
	SampleEvery int
}

// DefaultParams returns the paper's configuration for a variant.
func DefaultParams(v Variant) Params {
	return Params{
		Variant:     v,
		T:           8,
		Banks:       4,
		RRIPBits:    2,
		ProdConsHi:  16,
		ProdConsLo:  8,
		SampleEvery: 64,
	}
}

// Counters is the per-bank saturating counter block (Section 3): two
// counters for the Z stream, four for the texture sampler epochs, two for
// render-target production/consumption, and the 7-bit ACC(ALL) whose
// saturation halves everything. All counters are 8-bit saturating.
type Counters struct {
	FillZ, HitZ uint8
	// FillE and HitE index by texture epoch (0 or 1). The plain GSPZTC
	// variant uses only index 0 as its aggregate FILL(TEX)/HIT(TEX).
	FillE, HitE [2]uint8
	Prod, Cons  uint8
	Acc         uint8
}

const (
	counterMax = 255
	accMax     = 127 // 7-bit ACC(ALL)
)

func sat(c *uint8) {
	if *c < counterMax {
		*c++
	}
}

// bump increments ACC(ALL) and halves every reuse counter when it
// saturates, keeping the probabilities adaptive to phase changes.
func (c *Counters) bump() {
	if c.Acc < accMax {
		c.Acc++
		return
	}
	c.FillZ >>= 1
	c.HitZ >>= 1
	for i := range c.FillE {
		c.FillE[i] >>= 1
		c.HitE[i] >>= 1
	}
	c.Prod >>= 1
	c.Cons >>= 1
	c.Acc = 0
}

// Policy is the GSPC family replacement policy. It satisfies
// cachesim.Policy and maintains, on top of the RRPV bits, two state bits
// per block and one Counters block per LLC bank.
type Policy struct {
	p    Params
	max  uint8 // RRPV max (2^bits - 1)
	ways int
	sets int

	rrpv  []uint8
	state []uint8
	banks []Counters

	// Insertions counts non-sample fill decisions; exported for the
	// analysis harness and tests (e.g. a Fig. 8 analogue for GSPC).
	Insertions InsertionStats
}

// InsertionStats tallies the insertion RRPVs chosen for non-sample fills
// of each managed stream class.
type InsertionStats struct {
	ZDistant, ZLong           int64
	TexDistant, TexZero       int64
	RTDistant, RTLong         int64
	RTZero                    int64
	TexHitDistant, TexHitZero int64 // epoch-1 decisions on texture hits
}

var _ cachesim.Policy = (*Policy)(nil)

// New returns a policy of the family with the given parameters. Zero or
// negative parameter fields are replaced by the paper defaults.
func New(p Params) *Policy {
	d := DefaultParams(p.Variant)
	if p.T <= 0 {
		p.T = d.T
	}
	if p.Banks <= 0 {
		p.Banks = d.Banks
	}
	if p.RRIPBits <= 0 {
		p.RRIPBits = d.RRIPBits
	}
	if p.ProdConsHi <= 0 {
		p.ProdConsHi = d.ProdConsHi
	}
	if p.ProdConsLo <= 0 {
		p.ProdConsLo = d.ProdConsLo
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = d.SampleEvery
	}
	return &Policy{p: p, max: uint8(1<<p.RRIPBits - 1)}
}

// Name implements cachesim.Policy.
func (g *Policy) Name() string {
	if g.p.T != 8 {
		return fmt.Sprintf("%s(t=%d)", g.p.Variant, g.p.T)
	}
	return g.p.Variant.String()
}

// Params returns the active parameters.
func (g *Policy) Params() Params { return g.p }

// Reset implements cachesim.Policy.
func (g *Policy) Reset(sets, ways int) {
	g.sets = sets
	g.ways = ways
	n := sets * ways
	g.rrpv = make([]uint8, n)
	for i := range g.rrpv {
		g.rrpv[i] = g.max
	}
	g.state = make([]uint8, n)
	g.banks = make([]Counters, g.p.Banks)
	g.Insertions = InsertionStats{}
}

// IsSample reports whether a set is one of the dedicated sample sets:
// one in every SampleEvery sets (16 per 1024 at the paper's default of
// 64), selected by a simple Boolean function of the index bits
// (set mod m == (set div m) mod m).
func (g *Policy) IsSample(set int) bool {
	m := g.p.SampleEvery
	return set%m == (set/m)%m
}

func (g *Policy) bank(set int) *Counters {
	per := g.sets / g.p.Banks
	if per == 0 {
		return &g.banks[0]
	}
	b := set / per
	if b >= len(g.banks) {
		b = len(g.banks) - 1
	}
	return &g.banks[b]
}

// CountersFor exposes the counter block owning a set, for tests.
func (g *Policy) CountersFor(set int) Counters { return *g.bank(set) }

// StateOf exposes a block's two state bits, for tests and analysis.
func (g *Policy) StateOf(set, way int) uint8 { return g.state[set*g.ways+way] }

// RRPV exposes a block's re-reference prediction value, for tests.
func (g *Policy) RRPV(set, way int) uint8 { return g.rrpv[set*g.ways+way] }

// MaxRRPV returns the distant RRPV (2^bits - 1).
func (g *Policy) MaxRRPV() uint8 { return g.max }

// isRTKind reports whether the access belongs to the render target stream
// from the policy's viewpoint. Displayable color is a render target
// (Section 5.1); GSPC cannot distinguish it without the UCD hint, which is
// exactly why uncaching the display stream helps GSPC in Figure 12.
func isRTKind(k stream.Kind) bool { return k == stream.RT || k == stream.Display }

// distant reports whether fills of a stream with the given sampled fill
// and hit counts should be inserted with the distant RRPV, i.e. whether
// the observed reuse probability is below 1/(T+1).
func (g *Policy) distant(fill, hit uint8) bool {
	return int(fill) > g.p.T*int(hit)
}

// Hit implements cachesim.Policy.
func (g *Policy) Hit(set, way int, a stream.Access) {
	i := set*g.ways + way
	if g.IsSample(set) {
		g.sampleHit(set, i, a)
		return
	}
	c := g.bank(set)
	switch {
	case a.Kind == stream.Texture:
		switch g.state[i] {
		case StateRT:
			// Render target consumed as texture: the block becomes an E0
			// texture block and its RRPV reflects the sampled E0 reuse
			// probability (Table 4).
			g.state[i] = StateE0
			g.rrpv[i] = g.texInsertRRPV(c, 0)
		case StateE0:
			if g.p.Variant >= VariantGSPZTCTSE {
				g.state[i] = StateE1
				g.rrpv[i] = g.texInsertRRPV(c, 1)
			} else {
				g.rrpv[i] = 0
			}
		case StateE1:
			g.state[i] = StateE2
			g.rrpv[i] = 0
		default:
			g.state[i] = StateE2
			g.rrpv[i] = 0
		}
	case isRTKind(a.Kind):
		// Blending or surface reuse: the block (re)becomes a render
		// target with the highest protection (Tables 3 and 5).
		g.state[i] = StateRT
		g.rrpv[i] = 0
	default:
		g.rrpv[i] = 0
	}
}

// texInsertRRPV returns the RRPV for a block entering texture epoch e:
// distant when the sampled epoch reuse probability is below 1/(T+1), zero
// otherwise (filling textures with RRPV two hurts performance, Section 3).
func (g *Policy) texInsertRRPV(c *Counters, e int) uint8 {
	if g.distant(c.FillE[e], c.HitE[e]) {
		return g.max
	}
	return 0
}

func (g *Policy) sampleHit(set, i int, a stream.Access) {
	c := g.bank(set)
	c.bump()
	// Samples always execute SRRIP: every hit promotes to RRPV zero.
	g.rrpv[i] = 0
	switch {
	case a.Kind == stream.Z:
		sat(&c.HitZ)
	case a.Kind == stream.Texture:
		switch g.state[i] {
		case StateRT:
			// RT -> TEX consumption: counts as a texture epoch-0 fill
			// (Table 3 and 4) and as a consumption event (Table 5).
			sat(&c.FillE[0])
			if g.p.Variant >= VariantGSPC {
				sat(&c.Cons)
			}
			g.state[i] = StateE0
		case StateE0:
			sat(&c.HitE[0])
			if g.p.Variant >= VariantGSPZTCTSE {
				sat(&c.FillE[1])
				g.state[i] = StateE1
			}
		case StateE1:
			sat(&c.HitE[1])
			g.state[i] = StateE2
		default:
			g.state[i] = StateE2
		}
	case isRTKind(a.Kind):
		g.state[i] = StateRT
	}
}

// Fill implements cachesim.Policy.
func (g *Policy) Fill(set, way int, a stream.Access) {
	i := set*g.ways + way
	if g.IsSample(set) {
		g.sampleFill(set, i, a)
		return
	}
	c := g.bank(set)
	switch {
	case a.Kind == stream.Z:
		if g.distant(c.FillZ, c.HitZ) {
			g.rrpv[i] = g.max
			g.Insertions.ZDistant++
		} else {
			g.rrpv[i] = g.max - 1
			g.Insertions.ZLong++
		}
		g.state[i] = StateE0
	case a.Kind == stream.Texture:
		g.rrpv[i] = g.texInsertRRPV(c, 0)
		if g.rrpv[i] == g.max {
			g.Insertions.TexDistant++
		} else {
			g.Insertions.TexZero++
		}
		g.state[i] = StateE0
	case isRTKind(a.Kind):
		g.state[i] = StateRT
		if g.p.Variant >= VariantGSPC {
			switch {
			case int(c.Prod) > g.p.ProdConsHi*int(c.Cons):
				g.rrpv[i] = g.max
				g.Insertions.RTDistant++
			case int(c.Prod) > g.p.ProdConsLo*int(c.Cons):
				g.rrpv[i] = g.max - 1
				g.Insertions.RTLong++
			default:
				g.rrpv[i] = 0
				g.Insertions.RTZero++
			}
		} else {
			// GSPZTC and GSPZTC+TSE statically give render targets the
			// highest possible protection to enable RT->TEX reuse.
			g.rrpv[i] = 0
			g.Insertions.RTZero++
		}
	default:
		g.rrpv[i] = g.max - 1
		g.state[i] = StateE0
	}
}

func (g *Policy) sampleFill(set, i int, a stream.Access) {
	c := g.bank(set)
	c.bump()
	// Samples always execute SRRIP: fills are inserted with RRPV 2^n - 2.
	g.rrpv[i] = g.max - 1
	switch {
	case a.Kind == stream.Z:
		sat(&c.FillZ)
		g.state[i] = StateE0
	case a.Kind == stream.Texture:
		sat(&c.FillE[0])
		g.state[i] = StateE0
	case isRTKind(a.Kind):
		g.state[i] = StateRT
		if g.p.Variant >= VariantGSPC {
			sat(&c.Prod)
		}
	default:
		g.state[i] = StateE0
	}
}

// Victim implements cachesim.Policy: the standard RRIP scan, aging the set
// until a block with the distant RRPV exists and breaking ties toward the
// minimum physical way id. Sample and non-sample sets share this logic.
func (g *Policy) Victim(set int, a stream.Access) int {
	base := set * g.ways
	for {
		for w := 0; w < g.ways; w++ {
			if g.rrpv[base+w] == g.max {
				return w
			}
		}
		for w := 0; w < g.ways; w++ {
			g.rrpv[base+w]++
		}
	}
}

// Evict implements cachesim.Policy. Eviction resets the RT/epoch state:
// the paper's RT bit is reset on LLC eviction because only in-LLC
// render-target-to-texture reuses are of interest.
func (g *Policy) Evict(set, way int) {
	i := set*g.ways + way
	g.rrpv[i] = g.max
	g.state[i] = StateE0
}

// StorageOverheadBits reports the bookkeeping overhead in bits beyond a
// two-bit DRRIP baseline for a cache with the given geometry: two state
// bits per block plus the per-bank counters (eight 8-bit and one 7-bit
// per bank — Section 4 quotes 32 KB + 284 bits for the 8 MB LLC, which is
// less than 0.5% of the data array).
func (g *Policy) StorageOverheadBits(geom cachesim.Geometry) int {
	blocks := geom.SizeBytes / geom.BlockSize
	perBank := 8*8 + 7
	return 2*blocks + perBank*g.p.Banks
}
