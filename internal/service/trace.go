package service

import (
	"os"
	"path/filepath"

	"gspc/internal/telemetry"
)

// This file serves per-run traces: exporting a job's span Run as a
// Chrome/Perfetto trace-event document, retaining it on disk alongside
// the durable result when -data-dir is set, and pruning trace files in
// step with job retention.

// exportTrace renders a job's trace document. Callers hold e.mu (the
// Run itself is concurrency-safe; the job fields read here are not).
func (e *Engine) exportTraceLocked(job *Job) *telemetry.TraceDoc {
	return job.run.Export(map[string]string{
		"run_id":     job.ID,
		"experiment": job.Req.Experiment,
		"status":     string(job.status),
	})
}

// TraceJSON returns the Chrome trace-event JSON for a run id. Live and
// retained jobs export straight from memory; jobs that survive only as
// trace files on disk (recovered after a restart, or pruned from the
// retention window) are served from the file. ok is false when the run
// was never traced or the trace is gone.
func (e *Engine) TraceJSON(id string) ([]byte, bool) {
	e.mu.Lock()
	job, tracked := e.jobs[id]
	var doc *telemetry.TraceDoc
	if tracked && job.run != nil {
		doc = e.exportTraceLocked(job)
	}
	e.mu.Unlock()
	if doc != nil {
		return doc.JSON(), true
	}
	if p := e.tracePath(id); p != "" {
		if b, err := os.ReadFile(p); err == nil {
			return b, true
		}
	}
	return nil, false
}

// tracePath is the on-disk location of a run's trace, or "" when the
// engine is not durable.
func (e *Engine) tracePath(id string) string {
	if e.cfg.DataDir == "" || !validRunID(id) {
		return ""
	}
	return filepath.Join(e.cfg.DataDir, "traces", id+".json")
}

// validRunID guards the file path against ids that did not come from
// this engine's "run-%06d" minting (defense in depth for the HTTP
// layer, which already pattern-matches the route).
func validRunID(id string) bool {
	if id == "" {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}

// persistTraceLocked writes a finished job's trace beside the durable
// journal, so GET /v1/runs/{id}/trace survives restarts exactly like
// the result itself. Best-effort: a failed write degrades (logged) —
// the journal, not the trace, is the durability contract. Callers hold
// e.mu; the write is small (bounded by TraceMaxSpans) and sits on the
// same already-accepted journal-under-lock path.
func (e *Engine) persistTraceLocked(job *Job) {
	if job.run == nil {
		return
	}
	p := e.tracePath(job.ID)
	if p == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		e.cfg.Logger.Warn("trace retention failed", "run_id", job.ID, "err", err)
		return
	}
	if err := os.WriteFile(p, e.exportTraceLocked(job).JSON(), 0o644); err != nil {
		e.cfg.Logger.Warn("trace retention failed", "run_id", job.ID, "err", err)
	}
}

// removeTrace deletes a pruned job's trace file, best-effort.
func (e *Engine) removeTrace(id string) {
	if p := e.tracePath(id); p != "" {
		os.Remove(p)
	}
}

// FlightEvents returns the flight recorder's retained job-lifecycle
// events, newest first, and the total ever recorded (served at /debugz).
func (e *Engine) FlightEvents() ([]telemetry.Event, int64) {
	return e.flight.Events(), e.flight.Total()
}
