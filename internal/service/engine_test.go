package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gspc/internal/harness"
	"gspc/internal/leakcheck"
)

// countingRunner returns a stub Run that counts invocations and produces
// a deterministic result per request.
func countingRunner(calls *int64) func(context.Context, Request) (*harness.Result, error) {
	return func(_ context.Context, r Request) (*harness.Result, error) {
		atomic.AddInt64(calls, 1)
		return &harness.Result{Experiment: r.Experiment, Title: "stub", Scale: r.Scale}, nil
	}
}

// gatedRunner blocks each run until release is closed; started is
// signalled once per run as it begins.
func gatedRunner(started chan<- string, release <-chan struct{}, calls *int64) func(context.Context, Request) (*harness.Result, error) {
	return func(_ context.Context, r Request) (*harness.Result, error) {
		atomic.AddInt64(calls, 1)
		if started != nil {
			started <- r.Experiment
		}
		<-release
		return &harness.Result{Experiment: r.Experiment, Title: "stub"}, nil
	}
}

// discardLogger drops every record; tests that assert on log output
// install their own handler instead.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	leakcheck.Check(t)
	if cfg.Logger == nil {
		cfg.Logger = discardLogger() // keep injected-panic stacks out of test output
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return e
}

func TestCacheHitSkipsRecomputation(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8, Run: countingRunner(&calls)})

	req := Request{Experiment: "fig12", Frames: 1}
	first, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (second call must be a cache hit)", got)
	}
	if !second.Cached || first.Cached {
		t.Errorf("cache flags wrong: first=%v second=%v", first.Cached, second.Cached)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Errorf("cached body differs:\n%s\n%s", first.Body, second.Body)
	}
	if second.RunID != first.RunID {
		t.Errorf("cached reply names run %s, want the computing run %s", second.RunID, first.RunID)
	}
	m := e.Metrics()
	if m.CacheHits != 1 || m.Completed != 1 || m.Requests != 2 {
		t.Errorf("metrics = %+v, want 1 hit / 1 completed / 2 requests", m)
	}
}

func TestCoalescingSharesOneComputation(t *testing.T) {
	var calls int64
	started := make(chan string, 1)
	release := make(chan struct{})
	e := newTestEngine(t, Config{Workers: 2, CacheEntries: 8, Run: gatedRunner(started, release, &calls)})

	req := Request{Experiment: "fig1", Frames: 1}
	const n = 8
	replies := make([]*Reply, n)
	errs := make([]error, n)
	var wg sync.WaitGroup

	// Lead request occupies the worker...
	wg.Add(1)
	go func() { defer wg.Done(); replies[0], errs[0] = e.Do(context.Background(), req) }()
	<-started

	// ...and every concurrent identical request coalesces onto its job.
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() { defer wg.Done(); replies[i], errs[i] = e.Do(context.Background(), req) }()
	}
	// Wait until all followers are registered before releasing the run.
	deadline := time.After(5 * time.Second)
	for {
		m := e.Metrics()
		if m.Coalesced >= n-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("followers never coalesced: %+v", m)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("runner invoked %d times for %d identical requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(replies[i].Body, replies[0].Body) {
			t.Errorf("reply %d body differs from lead", i)
		}
		if replies[i].RunID != replies[0].RunID {
			t.Errorf("reply %d run id %s differs from lead %s", i, replies[i].RunID, replies[0].RunID)
		}
	}
	if m := e.Metrics(); m.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", m.Coalesced, n-1)
	}
}

func TestBackpressureWhenQueueFull(t *testing.T) {
	var calls int64
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: 8,
		Run: gatedRunner(started, release, &calls)})

	// First job occupies the single worker.
	if _, _, err := e.Submit(Request{Experiment: "fig1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Second distinct job fills the queue.
	if _, _, err := e.Submit(Request{Experiment: "fig4"}); err != nil {
		t.Fatal(err)
	}
	// Third distinct job must be rejected with backpressure.
	_, _, err := e.Submit(Request{Experiment: "fig5"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	// An identical request still coalesces rather than rejecting.
	if _, _, err := e.Submit(Request{Experiment: "fig4"}); err != nil {
		t.Errorf("identical request rejected instead of coalesced: %v", err)
	}
	if m := e.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
}

func TestPolicyBackedEvictionRecomputes(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 2, CachePolicy: "lru",
		Run: countingRunner(&calls)})

	ctx := context.Background()
	reqs := []Request{
		{Experiment: "fig1"},
		{Experiment: "fig4"},
		{Experiment: "fig5"},
	}
	for _, r := range reqs {
		if _, err := e.Do(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if m := e.Metrics(); m.CacheEvictions != 1 || m.CacheEntries != 2 {
		t.Fatalf("metrics after 3 distinct runs = %+v, want 1 eviction and 2 resident", m)
	}
	// fig1 was least recently used and must have been evicted: re-running
	// it recomputes.
	before := atomic.LoadInt64(&calls)
	rep, err := e.Do(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached || atomic.LoadInt64(&calls) != before+1 {
		t.Error("evicted entry served from cache instead of recomputing")
	}
	// fig5 is still resident.
	rep, err = e.Do(ctx, reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cached {
		t.Error("resident entry recomputed")
	}
}

func TestGracefulDrain(t *testing.T) {
	var calls int64
	// Buffered past the job count: later drained jobs also signal started.
	started := make(chan string, 8)
	release := make(chan struct{})
	e, err := NewEngine(Config{Workers: 1, QueueDepth: 4, CacheEntries: 8,
		Logger: discardLogger(), Run: gatedRunner(started, release, &calls)})
	if err != nil {
		t.Fatal(err)
	}

	running, _, err := e.Submit(Request{Experiment: "fig1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := e.Submit(Request{Experiment: "fig4"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- e.Shutdown(ctx)
	}()

	// New work is refused as soon as shutdown begins.
	deadline := time.After(5 * time.Second)
	for {
		_, _, err := e.Submit(Request{Experiment: "fig5"})
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("submissions still accepted after Shutdown")
		case <-time.After(time.Millisecond):
		}
	}

	close(release) // let the running and queued jobs finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, job := range []*Job{running, queued} {
		st, ok := e.JobStatus(job.ID)
		if !ok || st.Status != StatusDone {
			t.Errorf("job %s drained to status %v, want done", job.ID, st.Status)
		}
	}
	// At least the two tracked jobs drained; a fig5 submission may have
	// slipped in before closing flipped, which also drains.
	if got := atomic.LoadInt64(&calls); got < 2 {
		t.Errorf("runner invoked %d times, want >= 2 (both tracked jobs drained)", got)
	}
}

func TestFailedJobPropagatesError(t *testing.T) {
	boom := errors.New("trace synthesis exploded")
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8,
		Run: func(context.Context, Request) (*harness.Result, error) { return nil, boom }})

	job, _, err := e.Submit(Request{Experiment: "fig1"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	if _, err := e.replyFor(job); !errors.Is(err, boom) {
		t.Errorf("reply error = %v, want the runner's error", err)
	}
	st, _ := e.JobStatus(job.ID)
	if st.Status != StatusFailed || st.Error == "" {
		t.Errorf("status = %+v, want failed with message", st)
	}
	// Failures are not cached: the next identical request runs again.
	if _, _, err := e.Submit(Request{Experiment: "fig1"}); err != nil {
		t.Errorf("resubmit after failure: %v", err)
	}
	if m := e.Metrics(); m.Failed != 1 || m.CacheHits != 0 {
		t.Errorf("metrics = %+v, want 1 failure and no cache hits", m)
	}
}

func TestFinishedJobRetentionBound(t *testing.T) {
	var calls int64
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 0, KeepFinished: 3,
		Run: countingRunner(&calls)})
	ctx := context.Background()
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		job, _, err := e.Submit(Request{Experiment: "fig1", Frames: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-job.done:
		case <-ctx.Done():
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids[:2] {
		if _, ok := e.JobStatus(id); ok {
			t.Errorf("job %s retained beyond KeepFinished", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := e.JobStatus(id); !ok {
			t.Errorf("recent job %s pruned too early", id)
		}
	}
}
