package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gspc/internal/harness"
	"gspc/internal/service"
)

// simCounter counts actual simulations per cache key, cluster-wide: the
// counter assertions behind the coalescing and replication guarantees.
type simCounter struct {
	mu   sync.Mutex
	byKy map[string]int
}

func newSimCounter() *simCounter { return &simCounter{byKy: map[string]int{}} }

func (s *simCounter) runner(delay time.Duration) func(context.Context, service.Request) (*harness.Result, error) {
	return func(ctx context.Context, r service.Request) (*harness.Result, error) {
		key := r.Key()
		s.mu.Lock()
		s.byKy[key]++
		s.mu.Unlock()
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &harness.Result{
			SchemaVersion: harness.ResultSchemaVersion,
			Experiment:    r.Experiment,
			Title:         "cluster stub",
			Scale:         r.Scale,
			Rendered:      "key " + key,
		}, nil
	}
}

func (s *simCounter) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKy[key]
}

func (s *simCounter) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, v := range s.byKy {
		n += v
	}
	return n
}

type testNode struct {
	name   string
	engine *service.Engine
	ts     *httptest.Server
}

func discard() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newTestNodes boots n in-process gspcd engines behind real HTTP
// listeners, all sharing one simulation counter.
func newTestNodes(t *testing.T, n int, sims *simCounter, delay time.Duration) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		name := fmt.Sprintf("gspc-%d", i+1)
		e, err := service.NewEngine(service.Config{
			Workers: 2, CacheEntries: 32, Run: sims.runner(delay),
			Logger: discard(), TraceEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := service.NewServer(e)
		srv.NodeName = name
		ts := httptest.NewServer(srv)
		nodes[i] = &testNode{name: name, engine: e, ts: ts}
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Shutdown(ctx)
		})
	}
	return nodes
}

func specs(nodes []*testNode) []MemberSpec {
	out := make([]MemberSpec, len(nodes))
	for i, n := range nodes {
		out[i] = MemberSpec{Name: n.name, URL: n.ts.URL}
	}
	return out
}

func nodeByName(nodes []*testNode, name string) *testNode {
	for _, n := range nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// newTestCoordinator builds (without starting the health loop — tests
// drive CheckNow explicitly for determinism) a coordinator plus its
// HTTP server.
func newTestCoordinator(t *testing.T, nodes []*testNode, mutate func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Members: specs(nodes), Replication: 1,
		HealthTimeout: 2 * time.Second, DeadAfter: 1, Logger: discard(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(co))
	t.Cleanup(func() {
		ts.Close()
		co.Close()
	})
	return co, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func keyOf(t *testing.T, body string) string {
	t.Helper()
	var req service.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	nreq, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return nreq.Key()
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterCoalescingAcrossConnections is the acceptance property:
// the same key submitted concurrently through two different coordinator
// entry points performs exactly one simulation cluster-wide.
func TestClusterCoalescingAcrossConnections(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 100*time.Millisecond)
	_, ts1 := newTestCoordinator(t, nodes, nil)
	_, ts2 := newTestCoordinator(t, nodes, func(c *Config) { c.Name = "gspc-cluster-2" })

	body := `{"experiment":"fig12","apps":["Dirt"]}`
	key := keyOf(t, body)

	type out struct {
		status int
		body   []byte
		err    error
	}
	results := make(chan out, 4)
	var wg sync.WaitGroup
	for _, base := range []string{ts1.URL, ts2.URL, ts1.URL, ts2.URL} {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				results <- out{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			results <- out{resp.StatusCode, b, err}
		}(base)
	}
	wg.Wait()
	close(results)

	var first []byte
	for r := range results {
		if r.err != nil {
			t.Fatalf("submit failed: %v", r.err)
		}
		if r.status != 200 {
			t.Fatalf("submit status %d: %s", r.status, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Errorf("bodies differ across connections:\n%s\n%s", first, r.body)
		}
	}
	if n := sims.count(key); n != 1 {
		t.Fatalf("cluster ran %d simulations for one key, want exactly 1", n)
	}
}

// TestClusterRerouteAndReplicaServing: killing a key's owner must not
// lose the result — the coordinator fails over to the ring successor,
// which already holds the replica, so the answer is served without
// recomputation.
func TestClusterRerouteAndReplicaServing(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 10*time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)

	body := `{"experiment":"fig15","apps":["HAWX"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]

	resp, _ := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("initial submit = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != owner {
		t.Fatalf("served by %s, ring owner is %s", got, owner)
	}
	if run := resp.Header.Get("X-Gspc-Run"); !strings.HasSuffix(run, "@"+owner) {
		t.Errorf("X-Gspc-Run %q not qualified with owner", run)
	}

	// Replication onto the successor is asynchronous; wait for it.
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled == 1
	})

	// Kill the owner cold — no health sweep yet, so the coordinator
	// discovers the death from the failed forward itself.
	nodeByName(nodes, owner).ts.CloseClientConnections()
	nodeByName(nodes, owner).ts.Close()

	resp, b := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("post-kill submit = %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != successor {
		t.Errorf("post-kill served by %s, want successor %s", got, successor)
	}
	if got := resp.Header.Get("X-Gspc-Cache"); got != "hit" {
		t.Errorf("post-kill disposition = %q, want hit (replica-served)", got)
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("owner death caused recomputation: %d simulations for key", n)
	}
	m := co.Metrics()
	if m.Reroutes == 0 {
		t.Errorf("reroutes = 0, want > 0 after failover")
	}
	if m.Rebalances == 0 {
		t.Errorf("rebalances = 0, want > 0 after member death")
	}
}

// TestClusterDrainSemantics: a drained member stops receiving new runs
// but keeps answering status queries for the runs it already owns.
func TestClusterDrainSemantics(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)

	body := `{"experiment":"fig12","apps":["BioShock"]}`
	key := keyOf(t, body)
	owner, _ := co.currentRing().Owner(key)

	// Async submit lands on the owner; remember its qualified id.
	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("async submit = %d %v", resp.StatusCode, ack)
	}
	if !strings.HasSuffix(ack["id"], "@"+owner) {
		t.Fatalf("async id %q not on owner %s", ack["id"], owner)
	}

	// Drain the owner; the same key must now route elsewhere.
	dresp, err := http.Post(ts.URL+"/v1/cluster/members/"+owner+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("drain = %d", dresp.StatusCode)
	}
	for _, n := range co.currentRing().Nodes() {
		if n == owner {
			t.Fatalf("drained member %s still on ring", owner)
		}
	}
	resp2, _ := postJSON(t, ts.URL, body)
	if resp2.StatusCode != 200 {
		t.Fatalf("post-drain submit = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Gspc-Node"); got == owner {
		t.Errorf("post-drain submit still served by drained %s", owner)
	}

	// The drained member still answers for its acknowledged run.
	waitUntil(t, "drained-node status", func() bool {
		sresp, err := http.Get(ts.URL + "/v1/runs/" + ack["id"])
		if err != nil {
			return false
		}
		defer sresp.Body.Close()
		var st map[string]any
		if sresp.StatusCode != 200 || json.NewDecoder(sresp.Body).Decode(&st) != nil {
			return false
		}
		return st["status"] == "done"
	})

	// Undrain restores placement.
	uresp, err := http.Post(ts.URL+"/v1/cluster/members/"+owner+"/undrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	found := false
	for _, n := range co.currentRing().Nodes() {
		found = found || n == owner
	}
	if !found {
		t.Errorf("undrained member %s not back on ring", owner)
	}
}

// TestClusterSaturatedOwnerCacheProbe: an alive-but-saturated owner
// keeps its keys, but a request whose answer a follower already holds
// is served from the replica instead of queueing onto the hot node.
func TestClusterSaturatedOwnerCacheProbe(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)

	body := `{"experiment":"fig12","apps":["Heaven"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]

	// Compute once and wait for the replica to land on the successor.
	if resp, b := postJSON(t, ts.URL, body); resp.StatusCode != 200 {
		t.Fatalf("initial submit = %d: %s", resp.StatusCode, b)
	}
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})

	// Pretend the owner reported a saturated queue on its last health
	// check (white-box: the real path is the /readyz JSON body).
	m, _ := co.Member(owner)
	m.mu.Lock()
	m.ready = false
	m.readyInfo = service.ReadyInfo{Status: "unready", Reason: "queue saturated (64/64)", QueueDepth: 64, QueueCapacity: 64}
	m.mu.Unlock()

	resp, _ := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("saturated submit = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != successor {
		t.Errorf("saturated submit served by %s, want replica holder %s", got, successor)
	}
	if co.Metrics().CacheProbeHits != 1 {
		t.Errorf("cache_probe_hits = %d, want 1", co.Metrics().CacheProbeHits)
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("saturation probe recomputed: %d simulations", n)
	}
}

// TestClusterMemorySaturatedOwnerReroute: a member whose /readyz went
// unready because its memory ladder reached stale-only is treated like
// any saturated owner — requests whose answers a follower replica holds
// are served there instead of adding load to the pressured node.
func TestClusterMemorySaturatedOwnerReroute(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, ts := newTestCoordinator(t, nodes, nil)

	body := `{"experiment":"fig15","apps":["Dirt"]}`
	key := keyOf(t, body)
	owners := co.currentRing().Owners(key, 2)
	owner, successor := owners[0], owners[1]

	// Compute once and wait for the replica to land on the successor.
	if resp, b := postJSON(t, ts.URL, body); resp.StatusCode != 200 {
		t.Fatalf("initial submit = %d: %s", resp.StatusCode, b)
	}
	waitUntil(t, "replication", func() bool {
		return nodeByName(nodes, successor).engine.Metrics().ReplicasInstalled >= 1
	})

	// Pretend the owner's last health check reported memory saturation
	// (white-box: the real path is the governor driving /readyz unready
	// at RungStaleOnly and checkMember decoding the Mem* fields).
	m, _ := co.Member(owner)
	m.mu.Lock()
	m.ready = false
	m.readyInfo = service.ReadyInfo{
		Status: "unready", Reason: "memory saturated (rung stale-only, pressure 0.91)",
		MemRung: "stale-only", MemRungLevel: 3, MemPressure: 0.91, MemLimitBytes: 64 << 20,
	}
	m.mu.Unlock()

	resp, _ := postJSON(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("memory-saturated submit = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gspc-Node"); got != successor {
		t.Errorf("memory-saturated submit served by %s, want replica holder %s", got, successor)
	}
	if co.Metrics().CacheProbeHits != 1 {
		t.Errorf("cache_probe_hits = %d, want 1", co.Metrics().CacheProbeHits)
	}
	if n := sims.count(key); n != 1 {
		t.Errorf("memory saturation probe recomputed: %d simulations", n)
	}
	// The member's rung is visible in the coordinator's Prometheus
	// exposition, so operators can see whom routing is avoiding.
	want := fmt.Sprintf("gspc_cluster_member_mem_rung{member=%q} 3", owner)
	if prom := string(co.PromExposition()); !strings.Contains(prom, want) {
		t.Errorf("prom exposition missing %q", want)
	}
}

// TestClusterHealthLifecycle drives the real /readyz health loop: a
// dead member leaves the ring after DeadAfter failed sweeps and rejoins
// when it answers again.
func TestClusterHealthLifecycle(t *testing.T) {
	sims := newSimCounter()
	nodes := newTestNodes(t, 3, sims, 5*time.Millisecond)
	co, _ := newTestCoordinator(t, nodes, func(c *Config) { c.DeadAfter = 2 })

	co.CheckNow()
	if got := co.currentRing().Len(); got != 3 {
		t.Fatalf("ring after first sweep = %d members", got)
	}

	victim := nodes[1]
	victimURL := victim.ts.Listener.Addr().String()
	victim.ts.Close()
	co.CheckNow() // strike one: still on the ring
	if got := co.currentRing().Len(); got != 3 {
		t.Fatalf("ring lost member after one failed check (DeadAfter=2): %d", got)
	}
	co.CheckNow() // strike two: dead
	if got := co.currentRing().Len(); got != 2 {
		t.Fatalf("ring after death = %d members, want 2", got)
	}
	st, _ := co.Member(victim.name)
	if s := st.snapshot(); s.State != StateDead {
		t.Fatalf("victim state = %s, want dead", s.State)
	}

	// Revive on the same address the coordinator still points at.
	srv := service.NewServer(victim.engine)
	srv.NodeName = victim.name
	revived := httptest.NewUnstartedServer(srv)
	revived.Listener.Close()
	ln, err := reListen(victimURL)
	if err != nil {
		t.Skipf("could not rebind %s: %v", victimURL, err)
	}
	revived.Listener = ln
	revived.Start()
	t.Cleanup(revived.Close)

	co.CheckNow()
	if got := co.currentRing().Len(); got != 3 {
		t.Fatalf("revived member not back on ring: %d", got)
	}
}

// reListen rebinds a just-released TCP address, retrying briefly while
// the kernel finishes tearing the old listener down.
func reListen(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 100; i++ {
		var ln net.Listener
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}
