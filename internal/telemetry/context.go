package telemetry

import "context"

// ctxKey keys the *Run carried through a traced request's context.
type ctxKey struct{}

// NewContext returns ctx carrying run. A nil run returns ctx unchanged,
// so callers can thread unconditionally.
func NewContext(ctx context.Context, run *Run) context.Context {
	if run == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, run)
}

// FromContext returns the run carried by ctx, or nil when the request
// is untraced. The nil return composes with the nil-safe Run methods:
// FromContext(ctx).Start(...) is always valid.
func FromContext(ctx context.Context) *Run {
	run, _ := ctx.Value(ctxKey{}).(*Run)
	return run
}

// StartFrom opens a span on the context's run — the one-line form used
// by instrumentation sites deep in the stack. Returns nil (a no-op
// span) when the context is untraced.
func StartFrom(ctx context.Context, name, cat string, attrs ...Attr) *Span {
	return FromContext(ctx).Start(name, cat, attrs...)
}
