package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, d doc) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", doc{Benchmarks: map[string]entry{
		"BenchmarkFig12":      {NsPerOp: 1000},
		"BenchmarkTraceGen":   {NsPerOp: 500},
		"BenchmarkRenamedOut": {NsPerOp: 42},
	}})

	cases := []struct {
		name string
		cand map[string]entry
		want int
	}{
		{"within threshold", map[string]entry{
			"BenchmarkFig12":    {NsPerOp: 1040}, // +4%
			"BenchmarkTraceGen": {NsPerOp: 480},
		}, 0},
		{"regression", map[string]entry{
			"BenchmarkFig12":    {NsPerOp: 1100}, // +10%
			"BenchmarkTraceGen": {NsPerOp: 500},
		}, 1},
		{"missing and new benchmarks warn only", map[string]entry{
			"BenchmarkFig12":    {NsPerOp: 1000},
			"BenchmarkBrandNew": {NsPerOp: 9999},
		}, 0},
		{"faster is fine", map[string]entry{
			"BenchmarkFig12":    {NsPerOp: 500},
			"BenchmarkTraceGen": {NsPerOp: 100},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := writeDoc(t, dir, "cand.json", doc{Benchmarks: tc.cand})
			if got := runCompare(base, cand, 0.05); got != tc.want {
				t.Errorf("runCompare = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCompareUnreadableFile(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", doc{Benchmarks: map[string]entry{}})
	if got := runCompare(base, filepath.Join(dir, "nope.json"), 0.05); got != 2 {
		t.Errorf("runCompare on missing file = %d, want 2", got)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if got := runCompare(bad, base, 0.05); got != 2 {
		t.Errorf("runCompare on corrupt file = %d, want 2", got)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "b.json", doc{Benchmarks: map[string]entry{
		"BenchmarkX": {NsPerOp: 1000},
	}})
	// Exactly at the threshold passes; strictly past it fails.
	at := writeDoc(t, dir, "at.json", doc{Benchmarks: map[string]entry{
		"BenchmarkX": {NsPerOp: 1050},
	}})
	if got := runCompare(base, at, 0.05); got != 0 {
		t.Errorf("exactly 5%% = %d, want 0", got)
	}
	over := writeDoc(t, dir, "over.json", doc{Benchmarks: map[string]entry{
		"BenchmarkX": {NsPerOp: 1051},
	}})
	if got := runCompare(base, over, 0.05); got != 1 {
		t.Errorf("just over 5%% = %d, want 1", got)
	}
}
