// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment) plus micro-benchmarks of the
// core components. The figure benches run a reduced configuration (one
// frame per application at 0.15 scale) so `go test -bench=.` completes in
// minutes; use cmd/gspcsim for full-suite runs.
//
// Key reported metrics (all normalized to two-bit DRRIP where the paper
// normalizes): missRatio* for the offline experiments and perf* for the
// timing experiments.
package gspc_test

import (
	"context"
	"testing"

	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/gpu"
	"gspc/internal/harness"
	"gspc/internal/policy"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/tracecache"
	"gspc/internal/workload"
	"gspc/internal/xrand"
)

// benchOptions is the reduced configuration used by the figure benches.
func benchOptions() harness.Options {
	return harness.Options{
		Scale:           0.15,
		CapacityFactor:  1.5,
		MaxFramesPerApp: 1,
	}
}

// runExperiment executes a harness experiment b.N times and reports the
// requested cells as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]string) {
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := benchOptions()
	var tbl *harness.Table
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err = exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for name, cell := range metrics {
		if v, ok := tbl.Cell(cell[0], cell[1]); ok {
			b.ReportMetric(v, name)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: NRU and Belady's optimal misses
// normalized to DRRIP. Paper: NRU 1.062, Belady 0.634.
func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1", map[string][2]string{
		"missRatioNRU":    {"MEAN", "NRU"},
		"missRatioBelady": {"MEAN", "Belady"},
	})
}

// BenchmarkFig4 regenerates Figure 4: the LLC stream mix. Paper: RT 40%,
// texture 34%.
func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", map[string][2]string{
		"pctRT":  {"MEAN", "rt"},
		"pctTex": {"MEAN", "texture"},
		"pctZ":   {"MEAN", "z"},
	})
}

// BenchmarkFig5 regenerates Figure 5: per-stream hit rates. Paper
// averages: texture 53.4/22.0/18.4 for Belady/DRRIP/NRU.
func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", map[string][2]string{
		"texHitBelady": {"MEAN", "tex/Bel"},
		"texHitDRRIP":  {"MEAN", "tex/DRRIP"},
		"zHitBelady":   {"MEAN", "z/Bel"},
	})
}

// BenchmarkFig6 regenerates Figure 6: texture reuse split and RT
// consumption. Paper: 55% of Belady's texture hits inter-stream;
// consumption 51/16/13%.
func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", map[string][2]string{
		"interPctBelady": {"MEAN", "inter/Bel"},
		"consBelady":     {"MEAN", "cons/Bel"},
		"consDRRIP":      {"MEAN", "cons/DRRIP"},
	})
}

// BenchmarkFig7 regenerates Figure 7: texture epochs under Belady.
// Paper: E0 hits 79%, death ratios 0.81/0.73/0.53.
func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", map[string][2]string{
		"hitPctE0": {"MEAN", "hit%E0"},
		"deathE0":  {"MEAN", "death E0"},
		"deathE2":  {"MEAN", "death E2"},
	})
}

// BenchmarkFig8 regenerates Figure 8: distant fills under DRRIP. Paper:
// RT ~25%, texture ~36%.
func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]string{
		"distantRT":  {"MEAN", "RT"},
		"distantTex": {"MEAN", "texture"},
	})
}

// BenchmarkFig9 regenerates Figure 9: Z epoch death ratios. Paper:
// 0.61/0.38/0.26.
func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9", map[string][2]string{
		"zDeathE0": {"MEAN", "death E0"},
		"zDeathE2": {"MEAN", "death E2"},
	})
}

// BenchmarkFig11 regenerates Figure 11: GSPZTC threshold sensitivity
// (percent change vs t=16). Paper: near-flat averages.
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", map[string][2]string{
		"deltaT2": {"MEAN", "t=2"},
		"deltaT8": {"MEAN", "t=8"},
	})
}

// BenchmarkFig12 regenerates Figure 12: all policies normalized to
// DRRIP. Paper means: GSPZTC+TSE 0.885, GSPC+UCD 0.869.
func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", map[string][2]string{
		"missRatioGSDRRIP": {"MEAN", "GS-DRRIP"},
		"missRatioGSPZTC":  {"MEAN", "GSPZTC"},
		"missRatioTSE":     {"MEAN", "GSPZTC+TSE"},
		"missRatioGSPCUCD": {"MEAN", "GSPC+UCD"},
	})
}

// BenchmarkFig13 regenerates Figure 13: suite-average stream metrics per
// policy. Paper: GSPC rt read hit 57.7% vs Belady 59.8%.
func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", map[string][2]string{
		"texHitGSPC": {"GSPC", "tex hit"},
		"consGSPC":   {"GSPC", "rt->tex cons"},
		"rtHitGSPC":  {"GSPC", "rt read hit"},
	})
}

// BenchmarkFig14 regenerates Figure 14: iso-overhead policies. Paper
// means: LRU 1.072, GSPC 0.882.
func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14", map[string][2]string{
		"missRatioLRU":    {"MEAN", "LRU"},
		"missRatioDRRIP4": {"MEAN", "DRRIP-4"},
		"missRatioGSPC":   {"MEAN", "GSPC+UCD"},
	})
}

// BenchmarkFig15 regenerates Figure 15: performance on the 8 MB LLC.
// Paper means: NRU 0.93, GSPC 1.08.
func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", map[string][2]string{
		"perfNRU":  {"MEAN", "NRU"},
		"perfGSPC": {"MEAN", "GSPC+UCD"},
	})
}

// BenchmarkFig16 regenerates Figure 16: performance on the 16 MB LLC.
// Paper means: GSPC 1.118.
func BenchmarkFig16(b *testing.B) {
	runExperiment(b, "fig16", map[string][2]string{
		"perfNRU":  {"MEAN", "NRU"},
		"perfGSPC": {"MEAN", "GSPC+UCD"},
	})
}

// BenchmarkFig17 regenerates Figure 17: DDR3-1867 and the less
// aggressive GPU. Paper means: GSPC 1.071 and 1.059.
func BenchmarkFig17(b *testing.B) {
	runExperiment(b, "fig17", map[string][2]string{
		"perfGSPCFastDRAM": {"ddr3-1867/MEAN", "GSPC+UCD"},
		"perfGSPCSmallGPU": {"smallgpu/MEAN", "GSPC+UCD"},
	})
}

// BenchmarkTable1 regenerates Table 1 (the suite definition).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "tab1", map[string][2]string{
		"apps": {"Heaven", "Frames"},
	})
}

// BenchmarkTable6 regenerates Table 6 (the policy registry).
func BenchmarkTable6(b *testing.B) {
	runExperiment(b, "tab6", nil)
}

// --- Micro-benchmarks of the core components ---

// benchTrace synthesizes one small frame trace once per process.
var benchTraceCache []stream.Access

func benchTrace(b *testing.B) []stream.Access {
	if benchTraceCache == nil {
		benchTraceCache = trace.GenerateFrame(workload.Suite()[14], 0.15)
	}
	b.SetBytes(0)
	return benchTraceCache
}

func benchPolicy(b *testing.B, mk func() cachesim.Policy) {
	tr := benchTrace(b)
	geom := cachesim.Geometry{SizeBytes: 256 << 10, Ways: 16, BlockSize: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cachesim.New(geom, mk())
		for _, a := range tr {
			c.Access(a)
		}
	}
	b.ReportMetric(float64(len(tr)), "accesses/op")
}

// BenchmarkLLCAccessDRRIP measures the offline simulator's throughput
// with the baseline policy.
func BenchmarkLLCAccessDRRIP(b *testing.B) {
	benchPolicy(b, func() cachesim.Policy { return policy.NewDRRIP(2) })
}

// BenchmarkLLCAccessGSPC measures the GSPC policy's overhead relative to
// DRRIP (compare with BenchmarkLLCAccessDRRIP).
func BenchmarkLLCAccessGSPC(b *testing.B) {
	benchPolicy(b, func() cachesim.Policy { return core.New(core.DefaultParams(core.VariantGSPC)) })
}

// BenchmarkLLCAccessLRU measures the simplest stack policy.
func BenchmarkLLCAccessLRU(b *testing.B) {
	benchPolicy(b, func() cachesim.Policy { return policy.NewLRU() })
}

// BenchmarkLLCAccessSHiP measures the signature-based predictor.
func BenchmarkLLCAccessSHiP(b *testing.B) {
	benchPolicy(b, func() cachesim.Policy { return policy.NewSHiPMem(4) })
}

// BenchmarkBeladyPreprocess measures the next-use chain construction.
func BenchmarkBeladyPreprocess(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		belady.NextUse(tr, 6)
	}
}

// BenchmarkBeladyReplay measures a full optimal-policy replay.
func BenchmarkBeladyReplay(b *testing.B) {
	tr := benchTrace(b)
	next := belady.NextUse(tr, 6)
	geom := cachesim.Geometry{SizeBytes: 256 << 10, Ways: 16, BlockSize: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cachesim.New(geom, belady.NewOPT(next))
		for _, a := range tr {
			c.Access(a)
		}
	}
}

// BenchmarkTraceGeneration measures the full pipeline + render cache
// synthesis of one frame's LLC trace.
func BenchmarkTraceGeneration(b *testing.B) {
	job := workload.Suite()[14]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.GenerateFrame(job, 0.15)
		if len(tr) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// benchPackedCache holds the packed variant of benchTrace, built once.
var benchPackedCache *stream.Trace

func benchPacked(b *testing.B) *stream.Trace {
	if benchPackedCache == nil {
		benchPackedCache = stream.Pack(benchTrace(b))
	}
	return benchPackedCache
}

// BenchmarkLLCAccessDRRIPPacked is BenchmarkLLCAccessDRRIP over the
// packed trace representation via cachesim.ReplaySource — the replay
// path every harness experiment now uses.
func BenchmarkLLCAccessDRRIPPacked(b *testing.B) {
	tr := benchPacked(b)
	geom := cachesim.Geometry{SizeBytes: 256 << 10, Ways: 16, BlockSize: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cachesim.New(geom, policy.NewDRRIP(2))
		if err := cachesim.ReplaySource(context.Background(), c, tr, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "accesses/op")
}

// BenchmarkTraceGenerationPacked measures synthesis straight into the
// packed representation (no []stream.Access intermediate), reusing one
// buffer across iterations the way the ablation sweeps do.
func BenchmarkTraceGenerationPacked(b *testing.B) {
	job := workload.Suite()[14]
	cfg := rendercache.DefaultConfig().Scaled(0.15)
	t := stream.NewTrace(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.GeneratePackedInto(t, job, 0.15, cfg)
		if t.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceCacheWarm measures a warm lookup in the shared frame
// trace cache — the cost every repeat experiment now pays per frame in
// place of full synthesis.
func BenchmarkTraceCacheWarm(b *testing.B) {
	c := tracecache.New(64 << 20)
	k := tracecache.Key{Job: "bench", Scale: 0.15, Config: "bench"}
	synth := func(context.Context) (*stream.Trace, error) { return benchPacked(b), nil }
	if _, err := c.Get(context.Background(), k, synth); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(context.Background(), k, synth); err != nil {
			b.Fatal(err)
		}
	}
	s := c.Stats()
	b.ReportMetric(float64(s.Hits), "hits/run")
}

// runFig12Cold runs fig12 on one app with a private, per-iteration
// trace cache, so every iteration pays full synthesis: the
// interactive-latency comparison the fidelity knob exists for is the
// cold first query, not the warm replay.
func runFig12Cold(b *testing.B, opts harness.Options) {
	exp, ok := harness.ByID("fig12")
	if !ok {
		b.Fatal("unknown experiment fig12")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.TraceCache = tracecache.New(harness.DefaultTraceCacheBytes)
		if _, err := exp.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SampledS1 measures a cold full-resolution (S=1) Fig12
// run at sampled fidelity — the PR 8 headline: this must beat
// BenchmarkFig12ExactQuarter, the S=1/4 exact run it replaces as the
// interactive operating point.
func BenchmarkFig12SampledS1(b *testing.B) {
	runFig12Cold(b, harness.Options{
		Scale:           1,
		MaxFramesPerApp: 1,
		Apps:            []string{"Dirt"},
		Fidelity:        harness.FidelitySampled,
	})
}

// BenchmarkFig12ExactQuarter measures the same cold Fig12 run at the
// pre-sampling operating point: exact fidelity, S=1/4.
func BenchmarkFig12ExactQuarter(b *testing.B) {
	runFig12Cold(b, harness.Options{
		Scale:           0.25,
		MaxFramesPerApp: 1,
		Apps:            []string{"Dirt"},
	})
}

// BenchmarkLLCAccessDRRIPSampled is BenchmarkLLCAccessDRRIPPacked with
// 1-in-16 set sampling — the sampled hot path: the replay must skip
// non-sampled sets cheaply enough that throughput scales with the
// sampled fraction.
func BenchmarkLLCAccessDRRIPSampled(b *testing.B) {
	tr := benchPacked(b)
	geom := cachesim.Geometry{SizeBytes: 256 << 10, Ways: 16, BlockSize: 64}
	ss := cachesim.SetSample{Ratio: 16, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cachesim.NewSampled(geom, policy.NewDRRIP(2), ss)
		if err := cachesim.ReplaySource(context.Background(), c, tr, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "accesses/op")
}

// BenchmarkGPUSimulate measures the event-driven timing simulator.
func BenchmarkGPUSimulate(b *testing.B) {
	tr := benchTrace(b)
	cfg := gpu.DefaultConfig(cachesim.Geometry{SizeBytes: 256 << 10, Ways: 16, BlockSize: 64})
	cfg.UncachedDisplay = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := gpu.Simulate(tr, cfg, policy.NewDRRIP(2))
		if r.Cycles == 0 {
			b.Fatal("no cycles simulated")
		}
	}
}

// BenchmarkXRand measures the workload PRNG.
func BenchmarkXRand(b *testing.B) {
	r := xrand.New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
