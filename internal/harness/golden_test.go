package harness

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

// goldenOptions is the fixed configuration the golden tables are pinned
// at: two applications, one frame, a small scale. Everything in the
// repository is deterministic, so these tables must stay bit-identical
// across refactors of the synthesis and replay machinery.
func goldenOptions() Options {
	return Options{
		Scale:           0.1,
		CapacityFactor:  1.5,
		MaxFramesPerApp: 1,
		Apps:            []string{"Dirt", "HAWX"},
	}
}

// goldenTable is the serialized form of one experiment table: every cell
// at full float64 precision (bit-exact through JSON round-trips).
type goldenTable struct {
	Columns []string    `json:"columns"`
	Rows    []goldenRow `json:"rows"`
	Notes   []string    `json:"notes,omitempty"`
	Title   string      `json:"title"`
}

type goldenRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

func tableToGolden(t *Table) goldenTable {
	g := goldenTable{Columns: t.Columns, Notes: t.Notes, Title: t.Title}
	for _, r := range t.Rows {
		g.Rows = append(g.Rows, goldenRow{Label: r.Label, Values: r.Values})
	}
	return g
}

// TestGoldenTables regenerates every experiment — the paper's figures
// and tables plus the extensions — at the pinned configuration and
// requires each cell to match testdata/golden.json bit for bit. Run with
// -update-golden to re-pin after an intentional model change.
func TestGoldenTables(t *testing.T) {
	o := goldenOptions()
	got := map[string]goldenTable{}
	for _, e := range allExperiments() {
		tbl, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got[e.ID] = tableToGolden(tbl)
	}

	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d experiments)", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	var want map[string]goldenTable
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: experiment missing from run", id)
			continue
		}
		compareGolden(t, id, w, g)
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			t.Errorf("%s: new experiment not in golden file (run -update-golden)", id)
		}
	}
}

func compareGolden(t *testing.T, id string, want, got goldenTable) {
	t.Helper()
	if len(want.Columns) != len(got.Columns) {
		t.Errorf("%s: %d columns, want %d", id, len(got.Columns), len(want.Columns))
		return
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			t.Errorf("%s: column %d = %q, want %q", id, i, got.Columns[i], want.Columns[i])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Errorf("%s: %d rows, want %d", id, len(got.Rows), len(want.Rows))
		return
	}
	for r := range want.Rows {
		wr, gr := want.Rows[r], got.Rows[r]
		if wr.Label != gr.Label {
			t.Errorf("%s: row %d label = %q, want %q", id, r, gr.Label, wr.Label)
			continue
		}
		if len(wr.Values) != len(gr.Values) {
			t.Errorf("%s/%s: %d values, want %d", id, wr.Label, len(gr.Values), len(wr.Values))
			continue
		}
		for c := range wr.Values {
			// Bit-exact: the experiments are deterministic and the
			// accumulation order is part of the contract.
			if math.Float64bits(wr.Values[c]) != math.Float64bits(gr.Values[c]) {
				t.Errorf("%s/%s/%s = %v, want %v (bit-exact)",
					id, wr.Label, want.Columns[c], gr.Values[c], wr.Values[c])
			}
		}
	}
}
