// Package rendercache models the GPU-internal render caches that sit
// between the rendering pipeline and the LLC (Figure 3 of the paper):
// vertex index, vertex, HiZ, Z, stencil, and render target caches plus a
// three-level texture cache hierarchy. The LLC traffic in the paper is
// exactly the miss-and-writeback stream of these caches; this package
// filters the raw pipeline accesses accordingly.
//
// Sizes follow Section 4: 1 KB 16-way vertex index, 16 KB 128-way vertex,
// 12 KB 24-way HiZ, 16 KB 16-way stencil, 24 KB 24-way render target,
// 32 KB 32-way Z, and a 384 KB 48-way L3 texture cache. The paper does
// not give L1/L2 texture sizes; we use 8 KB 16-way and 64 KB 16-way
// (documented substitution in DESIGN.md).
package rendercache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

// Config holds the geometry of every render cache.
type Config struct {
	VertexIndex cachesim.Geometry
	Vertex      cachesim.Geometry
	HiZ         cachesim.Geometry
	Stencil     cachesim.Geometry
	RT          cachesim.Geometry
	Z           cachesim.Geometry
	TexL1       cachesim.Geometry
	TexL2       cachesim.Geometry
	TexL3       cachesim.Geometry
}

// DefaultConfig returns the paper's render cache organization.
func DefaultConfig() Config {
	g := func(kb, ways int) cachesim.Geometry {
		return cachesim.Geometry{SizeBytes: kb << 10, Ways: ways, BlockSize: 64}
	}
	return Config{
		VertexIndex: g(1, 16),
		Vertex:      g(16, 128),
		HiZ:         g(12, 24),
		Stencil:     g(16, 16),
		RT:          g(24, 24),
		Z:           g(32, 32),
		TexL1:       g(8, 16),
		TexL2:       g(64, 16),
		TexL3:       g(384, 48),
	}
}

// Scaled returns the configuration with every capacity multiplied by
// areaScale (the square of the linear frame scale), floored at one set,
// keeping associativity and block size. Scaling the render caches with
// the frame keeps the filtered LLC stream mix representative.
func (c Config) Scaled(areaScale float64) Config {
	s := func(g cachesim.Geometry) cachesim.Geometry {
		setBytes := g.Ways * g.BlockSize
		sets := int(float64(g.SizeBytes)*areaScale) / setBytes
		if sets < 1 {
			sets = 1
		}
		g.SizeBytes = sets * setBytes
		return g
	}
	return Config{
		VertexIndex: s(c.VertexIndex),
		Vertex:      s(c.Vertex),
		HiZ:         s(c.HiZ),
		Stencil:     s(c.Stencil),
		RT:          s(c.RT),
		Z:           s(c.Z),
		TexL1:       s(c.TexL1),
		TexL2:       s(c.TexL2),
		TexL3:       s(c.TexL3),
	}
}

// Digest returns a short stable hash over every cache geometry in the
// configuration. Two configurations produce the same LLC trace for a
// frame iff they are identical, so the digest is the configuration
// component of frame-trace cache keys.
func (c Config) Digest() string {
	h := sha256.New()
	for _, g := range []cachesim.Geometry{
		c.VertexIndex, c.Vertex, c.HiZ, c.Stencil, c.RT, c.Z,
		c.TexL1, c.TexL2, c.TexL3,
	} {
		fmt.Fprintf(h, "%d/%d/%d|", g.SizeBytes, g.Ways, g.BlockSize)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// Complex is the full render cache assembly. Pipeline stages call the
// typed access methods; misses and dirty writebacks flow to the
// downstream sink (the LLC model or a trace collector) tagged with their
// stream kind. Back-buffer color output flows through its own color
// cache and reaches the LLC as the displayable color stream.
type Complex struct {
	out stream.Sink

	vtxIndex *cachesim.Cache
	vtx      *cachesim.Cache
	hiz      *cachesim.Cache
	stencil  *cachesim.Cache
	rt       *cachesim.Cache
	rtDisp   *cachesim.Cache
	z        *cachesim.Cache
	texL1    *cachesim.Cache
	texL2    *cachesim.Cache
	texL3    *cachesim.Cache
}

// New builds a render cache complex feeding out.
func New(cfg Config, out stream.Sink) *Complex {
	c := &Complex{out: out}
	mk := func(g cachesim.Geometry, k stream.Kind, down stream.Sink) *cachesim.Cache {
		cc := cachesim.New(g, policy.NewLRU())
		cc.Downstream = down
		cc.WritebackKind = k
		return cc
	}
	c.vtxIndex = mk(cfg.VertexIndex, stream.Vertex, out)
	c.vtx = mk(cfg.Vertex, stream.Vertex, out)
	c.hiz = mk(cfg.HiZ, stream.HiZ, out)
	c.stencil = mk(cfg.Stencil, stream.Stencil, out)
	c.rt = mk(cfg.RT, stream.RT, out)
	// Color output writes whole tiles: the RT cache validates write
	// misses locally instead of fetching stale pixels through the LLC.
	c.rt.NoFetchOnWrite = true
	// The back buffer's color output is the displayable color stream
	// (Section 2.1: the final pixel colors written to the back buffer);
	// it shares the RT cache organization but its writebacks are tagged
	// as display traffic, which the UCD policies bypass.
	c.rtDisp = mk(cfg.RT, stream.Display, out)
	c.rtDisp.NoFetchOnWrite = true
	c.z = mk(cfg.Z, stream.Z, out)
	// The texture hierarchy chains L1 -> L2 -> L3 -> out and is
	// read-only (samplers never write textures).
	c.texL3 = mk(cfg.TexL3, stream.Texture, out)
	c.texL2 = mk(cfg.TexL2, stream.Texture, c.texL3)
	c.texL1 = mk(cfg.TexL1, stream.Texture, c.texL2)
	return c
}

// VertexIndex reads an index buffer element.
func (c *Complex) VertexIndex(addr uint64) {
	c.vtxIndex.Access(stream.Access{Addr: addr, Kind: stream.Vertex})
}

// Vertex reads a vertex buffer element.
func (c *Complex) Vertex(addr uint64) {
	c.vtx.Access(stream.Access{Addr: addr, Kind: stream.Vertex})
}

// HiZ accesses the hierarchical depth buffer.
func (c *Complex) HiZ(addr uint64, write bool) {
	c.hiz.Access(stream.Access{Addr: addr, Kind: stream.HiZ, Write: write})
}

// Z accesses the depth buffer.
func (c *Complex) Z(addr uint64, write bool) {
	c.z.Access(stream.Access{Addr: addr, Kind: stream.Z, Write: write})
}

// Stencil accesses the stencil buffer.
func (c *Complex) Stencil(addr uint64, write bool) {
	c.stencil.Access(stream.Access{Addr: addr, Kind: stream.Stencil, Write: write})
}

// RT accesses a render target (pixel color production or blending read).
func (c *Complex) RT(addr uint64, write bool) {
	c.rt.Access(stream.Access{Addr: addr, Kind: stream.RT, Write: write})
}

// Texture reads a texel through the three-level sampler hierarchy.
func (c *Complex) Texture(addr uint64) {
	c.texL1.Access(stream.Access{Addr: addr, Kind: stream.Texture})
}

// DisplayColor accesses the back buffer (displayable color production,
// or a blending read of it).
func (c *Complex) DisplayColor(addr uint64, write bool) {
	c.rtDisp.Access(stream.Access{Addr: addr, Kind: stream.Display, Write: write})
}

// Other forwards a miscellaneous access (shader code, constants) straight
// through; these structures are small and read-mostly.
func (c *Complex) Other(addr uint64) {
	c.out.Emit(stream.Access{Addr: addr, Kind: stream.Other})
}

// Flush drains dirty blocks from the writeback caches (RT, Z, HiZ,
// stencil) at frame end so produced surfaces reach the LLC stream.
func (c *Complex) Flush() {
	c.rt.DrainWritebacks()
	c.rtDisp.DrainWritebacks()
	c.z.DrainWritebacks()
	c.hiz.DrainWritebacks()
	c.stencil.DrainWritebacks()
}

// InvalidateTextures resets the texture hierarchy. The pipeline calls
// this when a render target is rebound as a texture within a frame so
// stale sampler data cannot satisfy reads of freshly produced surfaces
// (real GPUs flush sampler caches on such barriers).
func (c *Complex) InvalidateTextures() {
	s1, s2, s3 := c.texL1.Stats, c.texL2.Stats, c.texL3.Stats
	c.texL1.Reset()
	c.texL2.Reset()
	c.texL3.Reset()
	// Preserve cumulative statistics across the barrier.
	c.texL1.Stats = s1
	c.texL2.Stats = s2
	c.texL3.Stats = s3
}

// Stats returns the aggregate hit statistics of every render cache,
// keyed by a short name, for diagnostics.
func (c *Complex) Stats() map[string]cachesim.Stats {
	return map[string]cachesim.Stats{
		"vtxidx": c.vtxIndex.Stats,
		"vtx":    c.vtx.Stats,
		"hiz":    c.hiz.Stats,
		"stc":    c.stencil.Stats,
		"rt":     c.rt.Stats,
		"rtdisp": c.rtDisp.Stats,
		"z":      c.z.Stats,
		"texL1":  c.texL1.Stats,
		"texL2":  c.texL2.Stats,
		"texL3":  c.texL3.Stats,
	}
}
