// Package tracecache is a concurrency-safe, byte-budgeted, LRU-evicted
// cache of synthesized frame traces. Trace synthesis — rendering a frame
// through the full pipeline and render-cache complex — costs two orders
// of magnitude more than replaying the resulting LLC trace through one
// policy, yet every experiment in internal/harness replays the same
// 52-frame suite and every gspcd job re-runs frames other jobs just
// synthesized. The cache keys a packed, read-only stream.Trace by
// (frame job, scale, render-cache config digest) and deduplicates
// concurrent synthesis with singleflight, so the whole process pays for
// each distinct frame trace once while it stays within the byte budget.
//
// Traces handed out by Get are shared: callers must treat them as
// immutable. Eviction only drops the cache's own reference — in-flight
// replays keep theirs and the garbage collector reclaims the bytes when
// the last reader finishes.
package tracecache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"gspc/internal/stream"
	"gspc/internal/telemetry"
)

// Key identifies one synthesized frame trace.
type Key struct {
	// Job is the frame job identity, e.g. "Dirt/0".
	Job string
	// Scale is the linear frame scale the trace was synthesized at.
	Scale float64
	// Config is the render-cache configuration digest
	// (rendercache.Config.Digest) the miss stream was filtered through.
	Config string
	// Prefix, when non-zero, marks a prefix-truncated synthesis holding
	// only the first Prefix records of the full frame trace (sampled
	// fidelity runs). Zero — the default everywhere else — is the full
	// trace, so existing keys are unchanged.
	Prefix int
}

// String renders the key for diagnostics.
func (k Key) String() string {
	if k.Prefix > 0 {
		return fmt.Sprintf("%s@%g/%s#%d", k.Job, k.Scale, k.Config, k.Prefix)
	}
	return fmt.Sprintf("%s@%g/%s", k.Job, k.Scale, k.Config)
}

// Stats is a snapshot of the cache counters (served via /metricsz).
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"` // lookups that joined an in-flight synthesis
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	Entries      int   `json:"entries"`
	BytesUsed    int64 `json:"bytes_used"`
	BudgetBytes  int64 `json:"budget_bytes"`
	// SynthCount and SynthTotalMs time the misses' synthesis stage: the
	// wall-clock the cache is saving shows up as hits×(SynthTotalMs/SynthCount).
	SynthCount   int64   `json:"synth_count"`
	SynthTotalMs float64 `json:"synth_total_ms"`
}

type entry struct {
	key   Key
	trace *stream.Trace
	bytes int64
	elem  *list.Element
}

// call is one in-flight synthesis that concurrent lookups coalesce onto.
type call struct {
	done  chan struct{}
	trace *stream.Trace
	err   error
}

// Cache is the shared frame-trace cache. The zero value is not usable;
// construct with New.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[Key]*entry
	lru      *list.List // front = most recently used; values are *entry
	inflight map[Key]*call

	hits, misses, coalesced int64
	evictions, evictedBytes int64
	synthCount              int64
	synthNanos              int64
}

// New returns a cache bounded by budgetBytes of packed trace data. A
// non-positive budget disables retention entirely: every lookup
// synthesizes (still deduplicated against concurrent identical lookups)
// and nothing is kept.
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:   budgetBytes,
		entries:  map[Key]*entry{},
		lru:      list.New(),
		inflight: map[Key]*call{},
	}
}

// SetBudget adjusts the byte budget at runtime, evicting LRU entries if
// the cache is now over it.
func (c *Cache) SetBudget(budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budgetBytes
	c.evictOverBudgetLocked()
}

// Get returns the trace for k, synthesizing it with synth on a miss.
// Concurrent Gets for the same key share one synthesis: one caller runs
// synth, the rest wait. A waiter whose ctx dies returns ctx.Err()
// immediately without disturbing the synthesis; if the synthesizing
// caller fails (typically its own cancellation), each still-live waiter
// retries the lookup — one of them becomes the new synthesizer — so one
// cancelled request never poisons the others.
//
// The returned trace is shared and must be treated as read-only.
func (c *Cache) Get(ctx context.Context, k Key, synth func(ctx context.Context) (*stream.Trace, error)) (*stream.Trace, error) {
	sp := telemetry.StartFrom(ctx, k.Job, "trace-cache")
	for {
		if err := ctx.Err(); err != nil {
			sp.Attr(telemetry.String("outcome", "cancelled")).End()
			return nil, err
		}
		c.mu.Lock()
		if e, ok := c.entries[k]; ok {
			c.lru.MoveToFront(e.elem)
			c.hits++
			c.mu.Unlock()
			sp.Attr(telemetry.String("outcome", "hit")).End()
			return e.trace, nil
		}
		if cl, ok := c.inflight[k]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				sp.Attr(telemetry.String("outcome", "cancelled")).End()
				return nil, ctx.Err()
			}
			if cl.err == nil {
				sp.Attr(telemetry.String("outcome", "coalesced")).End()
				return cl.trace, nil
			}
			// The synthesizer failed — usually its context died mid-flight.
			// Retry: the entry may have been inserted by a later success, or
			// this caller becomes the new synthesizer.
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[k] = cl
		c.misses++
		c.mu.Unlock()
		tr, err := c.synthesize(ctx, k, cl, synth)
		sp.Attr(telemetry.String("outcome", "miss")).End()
		return tr, err
	}
}

// synthesize runs one deduplicated synthesis for k and publishes the
// outcome to every waiter. The deferred completion also covers a
// panicking synth: waiters are released with an error before the panic
// propagates, so a poisoned frame can never hang its coalesced lookups.
func (c *Cache) synthesize(ctx context.Context, k Key, cl *call, synth func(ctx context.Context) (*stream.Trace, error)) (*stream.Trace, error) {
	start := time.Now()
	completed := false
	defer func() {
		if !completed {
			cl.err = fmt.Errorf("tracecache: synthesis of %s panicked", k)
		}
		c.mu.Lock()
		delete(c.inflight, k)
		if cl.err == nil {
			c.synthCount++
			c.synthNanos += time.Since(start).Nanoseconds()
			c.insertLocked(k, cl.trace)
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.trace, cl.err = synth(ctx)
	completed = true
	return cl.trace, cl.err
}

// insertLocked adds a freshly synthesized trace and evicts down to the
// budget. A trace larger than the whole budget is returned to callers
// but never retained. Callers hold c.mu.
func (c *Cache) insertLocked(k Key, t *stream.Trace) {
	bytes := t.Bytes()
	if bytes > c.budget {
		return
	}
	if e, ok := c.entries[k]; ok {
		// A concurrent path already inserted this key (e.g. a retry after
		// a failed synthesis raced a successful one). Keep the resident
		// entry; drop the duplicate.
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: k, trace: t, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.used += bytes
	c.evictOverBudgetLocked()
}

// evictOverBudgetLocked drops least-recently-used entries until the
// cache fits its budget. Callers hold c.mu.
func (c *Cache) evictOverBudgetLocked() {
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.bytes
		c.evictions++
		c.evictedBytes += e.bytes
	}
}

// Len returns the number of resident traces.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:         c.hits,
		Misses:       c.misses,
		Coalesced:    c.coalesced,
		Evictions:    c.evictions,
		EvictedBytes: c.evictedBytes,
		Entries:      len(c.entries),
		BytesUsed:    c.used,
		BudgetBytes:  c.budget,
		SynthCount:   c.synthCount,
		SynthTotalMs: float64(c.synthNanos) / 1e6,
	}
}
