package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gspc/internal/service"
	"gspc/internal/telemetry"
)

// ErrNoMembers reports that no routable member could serve a request:
// every node is dead or draining. HTTP maps it to 503.
var ErrNoMembers = errors.New("cluster: no routable member")

// ErrMemberBusy reports that a member's in-flight forward bound
// (Config.MaxInflight) is exhausted. It is backpressure, not evidence of
// failure: it never contributes a strike.
var ErrMemberBusy = errors.New("cluster: member at in-flight capacity")

// Config shapes a Coordinator. Members is the only required field.
type Config struct {
	// Name identifies this coordinator in logs and the
	// X-Gspc-Coordinator response header. Default "gspc-cluster".
	Name string
	// Members are the gspcd engines fronted by this coordinator. The
	// set is fixed for the coordinator's lifetime; health state decides
	// which members actually receive traffic.
	Members []MemberSpec
	// Vnodes is the virtual-node count per member (DefaultVnodes when 0).
	Vnodes int
	// Replication is how many ring successors receive a copy of each
	// freshly computed result, so an owner's death degrades to
	// replica-served reads. 0 disables replication. Default 1.
	Replication int
	// HealthInterval is the member health-check period. Default 2s.
	HealthInterval time.Duration
	// HealthTimeout caps one health check. Default 1s.
	HealthTimeout time.Duration
	// DeadAfter is how many consecutive refusal-class failures (health
	// probe or forward: connection refused, reset, EOF) kill a member. A
	// single blip suspects it; strikes clear on the next success.
	// Default 2.
	DeadAfter int
	// DeadAfterTimeout is how many consecutive failures of any class
	// kill a member when the refusal count alone hasn't. Timeout-class
	// failures (deadline exceeded, i/o timeout, black-holed link) are
	// weaker evidence — the member may be healthy behind a slow or lossy
	// link — so they get the larger budget. Default DeadAfter+1.
	DeadAfterTimeout int
	// ForwardTimeout caps one forwarded exchange (health checks are
	// separately capped by HealthTimeout). It is both the per-attempt
	// deadline inside the failover chain and the default Client timeout.
	// Default 2m — simulations can legitimately run for minutes, but an
	// exchange must never be unbounded. Negative disables.
	ForwardTimeout time.Duration
	// HedgeDelay is how long a run forward may dawdle at the key's owner
	// before the coordinator hedges with cache-only probes to the
	// replica-holding successors: if a follower already has the answer
	// cached, the client gets it without waiting out a slow owner, and
	// without risking a duplicate computation. Default 500ms. Negative
	// disables hedging.
	HedgeDelay time.Duration
	// MaxInflight bounds concurrently forwarded requests per member;
	// excess attempts fail fast with ErrMemberBusy and fall through to
	// the next candidate. Default 256. Negative disables the bound.
	MaxInflight int
	// ReplicateRetries is how many times a failed replica install is
	// retried (with exponential backoff from ReplicateBackoff) before
	// the copy is abandoned. Default 3.
	ReplicateRetries int
	// ReplicateBackoff is the initial retry backoff for replica
	// installs. Default 250ms.
	ReplicateBackoff time.Duration
	// Client performs forwarded requests and health checks. Default: a
	// client with ForwardTimeout as its overall timeout, so a forgotten
	// caller context can never pin a forward forever.
	Client *http.Client
	// Logger sinks coordinator operational logs. Default slog.Default().
	Logger *slog.Logger
	// FlightEvents sizes the coordinator's /debugz flight-recorder ring
	// of recent routing decisions. Default telemetry.DefaultFlightEvents;
	// negative disables the recorder.
	FlightEvents int
	// EventLogSize sizes the cluster event timeline ring
	// (/v1/cluster/events). Default telemetry.DefaultEventLogSize;
	// negative disables the timeline.
	EventLogSize int
	// EventLogPath, when set, makes the event timeline durable: events
	// append to this NDJSON file (bounded by compaction) and the cursor
	// resumes across coordinator restarts.
	EventLogPath string
	// DisableFederation turns off member /metrics scraping and the
	// /metrics/federate surface. Federation is on by default: one scrape
	// per member per health interval.
	DisableFederation bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "gspc-cluster"
	}
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Replication < 0 {
		c.Replication = 0
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.DeadAfterTimeout <= 0 {
		c.DeadAfterTimeout = c.DeadAfter + 1
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = 2 * time.Minute
	}
	if c.ForwardTimeout < 0 {
		c.ForwardTimeout = 0
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 500 * time.Millisecond
	}
	if c.HedgeDelay < 0 {
		c.HedgeDelay = 0
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.MaxInflight < 0 {
		c.MaxInflight = 0
	}
	if c.ReplicateRetries < 0 {
		c.ReplicateRetries = 0
	} else if c.ReplicateRetries == 0 {
		c.ReplicateRetries = 3
	}
	if c.ReplicateBackoff <= 0 {
		c.ReplicateBackoff = 250 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.ForwardTimeout}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = telemetry.DefaultFlightEvents
	}
	if c.FlightEvents < 0 {
		c.FlightEvents = 0
	}
	if c.EventLogSize == 0 {
		c.EventLogSize = telemetry.DefaultEventLogSize
	}
	if c.EventLogSize < 0 {
		c.EventLogSize = 0
	}
	return c
}

// flight is one cluster-level coalesced computation: the first
// synchronous submitter of a key forwards it; every concurrent
// identical submitter waits on done and replays the captured response.
type flight struct {
	done   chan struct{}
	status int
	header http.Header
	body   []byte
}

// fwdResult is a forwarded response: everything needed to replay it to
// the client (or to a coalesced waiter).
type fwdResult struct {
	status int
	header http.Header
	body   []byte
	// member served the request (nil when coalesced onto a flight).
	member *Member
	// coalesced marks a response replayed from another submitter's
	// in-flight forward rather than forwarded itself.
	coalesced bool
}

// Coordinator fronts N gspcd engines: it owns the membership table, the
// consistent-hash ring over routable members, the cluster-level
// coalescing table, and the replication fan-out. NewServer exposes it
// over HTTP.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	members map[string]*Member
	names   []string // sorted member names, fixed at construction

	mu      sync.Mutex
	ring    *Ring
	gen     int64 // ring generation, bumped on every rebuild
	flights map[string]*flight

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	start time.Time

	// Observability plane. flight is the /debugz ring of recent routing
	// decisions; events the typed cluster timeline (/v1/cluster/events);
	// traces the bounded registry of coordinator-side runs keyed by
	// qualified run id, consulted when stitching /v1/runs/{id}/trace.
	flight *telemetry.Flight
	events *telemetry.EventLog
	traces *traceRegistry
	// spanSeq mints process-unique parent-span tokens propagated as
	// X-Gspc-Parent-Span on every forward.
	spanSeq atomic.Int64
	// fwdHist times forward exchanges per outcome class; the key set is
	// fixed at construction so exposition cardinality is bounded.
	fwdHist map[string]*telemetry.Histogram

	// Counters. Per-node vectors feed the gspc_cluster_* /metrics
	// families; scalars are atomics so the forward hot path never takes
	// the coordinator mutex.
	forwards        *telemetry.CounterVec // successful forwards by node
	forwardErrors   *telemetry.CounterVec // transport-failed forwards by node
	replicasByNode  *telemetry.CounterVec // replicas installed by follower node
	submits         atomic.Int64
	statusReads     atomic.Int64
	coalesced       atomic.Int64
	reroutes        atomic.Int64
	rebalances      atomic.Int64
	replications    atomic.Int64
	replicationErrs atomic.Int64
	replicationRtry atomic.Int64
	cacheProbeHits  atomic.Int64
	noMemberErrs    atomic.Int64
	forwardTimeouts atomic.Int64
	forwardRefusals atomic.Int64
	inflightRejects atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	tracesStitched  atomic.Int64
	traceFallbacks  atomic.Int64
	federateScrapes atomic.Int64
	federateErrs    atomic.Int64
}

// Forward outcome classes: the label set of
// gspc_cluster_forward_duration_seconds and the "outcome" attribute on
// forward spans and correlated log lines. Closed by construction.
const (
	outcomeOK       = "ok"
	outcomeTimeout  = "timeout"
	outcomeRefused  = "refused"
	outcomeBusy     = "busy"
	outcomeHedgeWon = "hedge-won"
)

// outcomeClass maps a failed exchange to its outcome label.
func outcomeClass(err error) string {
	switch {
	case errors.Is(err, ErrMemberBusy):
		return outcomeBusy
	case timeoutClass(err):
		return outcomeTimeout
	default:
		return outcomeRefused
	}
}

// forwardDurationBounds buckets the forward-path latency histogram:
// sub-millisecond cache probes through multi-minute simulations
// (ForwardTimeout defaults to 2m).
var forwardDurationBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 10, 30, 120}

// New builds a coordinator over the given members. Call Start to begin
// health checking and Close to stop. The member set must be non-empty
// with unique names.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: at least one member required")
	}
	members := make(map[string]*Member, len(cfg.Members))
	names := make([]string, 0, len(cfg.Members))
	for _, spec := range cfg.Members {
		if spec.Name == "" || spec.URL == "" {
			return nil, fmt.Errorf("cluster: member needs both name and url, got %+v", spec)
		}
		if _, dup := members[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member name %q", spec.Name)
		}
		if _, err := url.Parse(spec.URL); err != nil {
			return nil, fmt.Errorf("cluster: member %s url: %v", spec.Name, err)
		}
		members[spec.Name] = newMember(spec)
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	c := &Coordinator{
		cfg:            cfg,
		client:         cfg.Client,
		members:        members,
		names:          names,
		flights:        map[string]*flight{},
		stop:           make(chan struct{}),
		start:          time.Now(),
		forwards:       telemetry.NewCounterVec(),
		forwardErrors:  telemetry.NewCounterVec(),
		replicasByNode: telemetry.NewCounterVec(),
		traces:         newTraceRegistry(traceRegistryCap),
		fwdHist: map[string]*telemetry.Histogram{
			outcomeOK:       telemetry.NewHistogram(forwardDurationBounds...),
			outcomeTimeout:  telemetry.NewHistogram(forwardDurationBounds...),
			outcomeRefused:  telemetry.NewHistogram(forwardDurationBounds...),
			outcomeBusy:     telemetry.NewHistogram(forwardDurationBounds...),
			outcomeHedgeWon: telemetry.NewHistogram(forwardDurationBounds...),
		},
	}
	if cfg.FlightEvents > 0 {
		c.flight = telemetry.NewFlight(cfg.FlightEvents)
	}
	if cfg.EventLogSize > 0 {
		events, err := telemetry.NewEventLog(cfg.EventLogSize, cfg.EventLogPath)
		if err != nil {
			// A broken durability path degrades to a memory-only timeline
			// rather than refusing to coordinate.
			cfg.Logger.Warn("cluster event log durability disabled",
				"coordinator", cfg.Name, "path", cfg.EventLogPath, "err", err)
		}
		c.events = events
	}
	c.ring = NewRing(cfg.Vnodes, names...)
	c.gen = 1
	return c, nil
}

// Start launches the health-check loop. It returns immediately; the
// first sweep runs synchronously so routing begins with fresh state.
func (c *Coordinator) Start() {
	c.CheckNow()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.CheckNow()
			case <-c.stop:
				return
			}
		}
	}()
}

// Close stops health checking and waits for in-flight replications.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.events.Close()
}

// CheckNow sweeps every member's /readyz once, synchronously, and
// rebuilds the ring if routability changed. The health loop calls it
// every interval; tests and the admin API call it to force convergence.
func (c *Coordinator) CheckNow() {
	changed := false
	for _, name := range c.names {
		m := c.members[name]
		before := m.snapshot()
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
		ready, info, err := checkMember(ctx, c.client, m)
		cancel()
		if m.applyCheck(ready, info, err, c.cfg.DeadAfter, c.cfg.DeadAfterTimeout) {
			changed = true
		}
		c.recordTransition(before, m.snapshot())
		if !c.cfg.DisableFederation {
			c.scrapeMember(m)
		}
	}
	if changed {
		c.rebuildRing()
	}
}

// recordTransition diffs two member snapshots around a health check and
// records the observed state and mem-rung transitions on the cluster
// timeline.
func (c *Coordinator) recordTransition(before, after MemberStatus) {
	if c.events == nil {
		return
	}
	name := after.Name
	if before.State != after.State {
		switch {
		case after.State == StateDead:
			c.events.Add(telemetry.EventMemberDead, name, "health check: "+after.LastError)
		case before.State == StateDead:
			c.events.Add(telemetry.EventMemberRevived, name, "health check succeeded")
			if after.State == StateDraining {
				c.events.Add(telemetry.EventDrainStart, name, "self-reported via /readyz")
			}
		case after.State == StateSuspect:
			c.events.Add(telemetry.EventMemberSuspected, name, "health check: "+after.LastError)
		case after.State == StateDraining:
			c.events.Add(telemetry.EventDrainStart, name, "self-reported via /readyz")
		case before.State == StateDraining:
			c.events.Add(telemetry.EventDrainEnd, name, "")
		case before.State == StateSuspect && after.State == StateAlive:
			c.events.Add(telemetry.EventMemberVindicated, name, "health check succeeded")
		}
	}
	if before.ReadyInfo.MemRungLevel != after.ReadyInfo.MemRungLevel {
		c.events.Add(telemetry.EventMemRungChange, name, fmt.Sprintf("rung %d -> %d (%s)",
			before.ReadyInfo.MemRungLevel, after.ReadyInfo.MemRungLevel, after.ReadyInfo.MemRung))
	}
}

// maxFederateBytes bounds one member /metrics scrape body.
const maxFederateBytes = 4 << 20

// scrapeMember pulls the member's /metrics for federation. Scrapes ride
// the health cadence and use the health budget; failures are recorded
// (age and ok-ness show in the federated meta series) but contribute no
// strikes — the /readyz check is the health signal, a slow exposition
// render is not.
func (c *Coordinator) scrapeMember(m *Member) {
	if !m.queryable() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Spec.URL+"/metrics", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.federateErrs.Add(1)
		m.setScrape(nil, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFederateBytes))
	if err == nil && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if err != nil {
		c.federateErrs.Add(1)
		m.setScrape(nil, err)
		return
	}
	c.federateScrapes.Add(1)
	m.setScrape(body, nil)
}

// rebuildRing recomputes the ring from the currently routable members.
// Consistent hashing bounds the fallout: only keys owned by the members
// that changed state move.
func (c *Coordinator) rebuildRing() {
	routable := make([]string, 0, len(c.names))
	for _, name := range c.names {
		if c.members[name].routable() {
			routable = append(routable, name)
		}
	}
	ring := NewRing(c.cfg.Vnodes, routable...)
	c.mu.Lock()
	c.ring = ring
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	c.rebalances.Add(1)
	c.events.Add(telemetry.EventRingSwap, "",
		fmt.Sprintf("generation %d, %d/%d members routable", gen, len(routable), len(c.names)))
	c.cfg.Logger.Info("cluster ring rebuilt", "coordinator", c.cfg.Name,
		"generation", gen, "routable", len(routable), "members", len(c.names))
}

// currentRing returns the routing ring.
func (c *Coordinator) currentRing() *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// ringState returns the routing ring together with its generation.
func (c *Coordinator) ringState() (*Ring, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring, c.gen
}

// candidates lists members to try for key, in order: the owner, then
// its replication-order successors (the nodes most likely to hold a
// replica), then every remaining routable member as a last resort.
func (c *Coordinator) candidates(key string) []*Member {
	ring := c.currentRing()
	names := ring.Owners(key, c.cfg.Replication+1)
	out := make([]*Member, 0, len(c.names))
	seen := make(map[string]bool, len(c.names))
	for _, n := range names {
		out = append(out, c.members[n])
		seen[n] = true
	}
	for _, n := range ring.Nodes() {
		if !seen[n] {
			out = append(out, c.members[n])
			seen[n] = true
		}
	}
	return out
}

// Member returns the member by name.
func (c *Coordinator) Member(name string) (*Member, bool) {
	m, ok := c.members[name]
	return m, ok
}

// Members snapshots every member, sorted by name.
func (c *Coordinator) Members() []MemberStatus {
	out := make([]MemberStatus, 0, len(c.names))
	for _, name := range c.names {
		out = append(out, c.members[name].snapshot())
	}
	return out
}

// Drain marks a member as draining via the admin API: it stops
// receiving new runs (its keys move to ring successors) but keeps
// answering status queries. Returns false for an unknown member.
func (c *Coordinator) Drain(name string) bool {
	m, ok := c.members[name]
	if !ok {
		return false
	}
	if m.setAdminDrain(true) {
		c.events.Add(telemetry.EventDrainStart, name, "admin API")
		c.rebuildRing()
	}
	return true
}

// Undrain reverses Drain.
func (c *Coordinator) Undrain(name string) bool {
	m, ok := c.members[name]
	if !ok {
		return false
	}
	if m.setAdminDrain(false) {
		c.events.Add(telemetry.EventDrainEnd, name, "admin API")
		c.rebuildRing()
	}
	return true
}

// forward performs one HTTP exchange with a member and captures the
// full response. A transport error (not an HTTP error status) is
// returned as err; HTTP-level failures are the member's answer and are
// relayed as-is. Each exchange is bounded by ForwardTimeout and claims
// one of the member's MaxInflight slots; any completed exchange (even a
// 5xx — the transport worked) clears the member's strikes.
//
// When ctx carries a telemetry.Run, the exchange records a per-attempt
// "forward" span (outcome class, status, span_id) and propagates the
// trace downstream as X-Gspc-Trace-Id/X-Gspc-Parent-Span, the parent
// token being this attempt's span_id — the member's engine adopts both,
// so the stitched trace hangs the member lane under this attempt.
// Timestamp echoes on the response feed the member's clock-offset
// estimator, and every exchange lands in the per-outcome forward
// duration histogram.
func (c *Coordinator) forward(ctx context.Context, m *Member, method, pathAndQuery string, body []byte, hdr map[string]string) (*fwdResult, error) {
	run := telemetry.FromContext(ctx)
	if max := c.cfg.MaxInflight; max > 0 {
		if !m.acquire(int64(max)) {
			c.inflightRejects.Add(1)
			c.fwdHist[outcomeBusy].Observe(0)
			now := time.Now()
			run.Record("forward", "cluster", now, now,
				telemetry.String("node", m.Spec.Name),
				telemetry.String("outcome", outcomeBusy))
			return nil, fmt.Errorf("%w: %s", ErrMemberBusy, m.Spec.Name)
		}
		defer m.release()
	}
	if c.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.ForwardTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.Spec.URL+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Gspc-Coordinator", c.cfg.Name)
	var sp *telemetry.Span
	if run != nil {
		tok := fmt.Sprintf("%s/f%d", run.TraceID, c.spanSeq.Add(1))
		req.Header.Set(service.HeaderTraceID, run.TraceID)
		req.Header.Set(service.HeaderParentSpan, tok)
		sp = run.Start("forward", "cluster",
			telemetry.String("node", m.Spec.Name),
			telemetry.String("method", method),
			telemetry.String("span_id", tok))
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	t0 := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		class := outcomeClass(err)
		c.fwdHist[class].Observe(time.Since(t0).Seconds())
		sp.Attr(telemetry.String("outcome", class)).End()
		c.forwardErrors.Add(m.Spec.Name, 1)
		return nil, err
	}
	t3 := time.Now()
	sampleClock(m, t0, t3, resp.Header)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		class := outcomeClass(err)
		c.fwdHist[class].Observe(time.Since(t0).Seconds())
		sp.Attr(telemetry.String("outcome", class)).End()
		c.forwardErrors.Add(m.Spec.Name, 1)
		return nil, err
	}
	c.fwdHist[outcomeOK].Observe(time.Since(t0).Seconds())
	sp.Attr(telemetry.String("outcome", outcomeOK),
		telemetry.Int("status", int64(resp.StatusCode))).End()
	c.forwards.Add(m.Spec.Name, 1)
	if m.clearStrikes() {
		c.events.Add(telemetry.EventMemberVindicated, m.Spec.Name, "forward succeeded")
		c.cfg.Logger.Info("member vindicated by successful forward",
			"coordinator", c.cfg.Name, "node", m.Spec.Name,
			"trace_id", traceIDOf(run), "outcome", outcomeOK)
	}
	return &fwdResult{status: resp.StatusCode, header: resp.Header, body: b, member: m}, nil
}

// traceIDOf extracts a possibly-nil run's trace id for log correlation.
func traceIDOf(run *telemetry.Run) string {
	if run == nil {
		return ""
	}
	return run.TraceID
}

// failMember folds one transport-level forward failure into the
// member's strike accounting: a first blip merely suspects it (it stays
// on the ring — one dropped packet must not eject a healthy owner);
// crossing a strike limit kills it and routes around. Backpressure
// rejections and caller cancellations are not evidence and are skipped.
// The ctx correlates the log lines and timeline events with the
// distributed trace of the request that observed the failure.
func (c *Coordinator) failMember(ctx context.Context, m *Member, err error) {
	if errors.Is(err, ErrMemberBusy) || errors.Is(err, context.Canceled) {
		return
	}
	timeout := timeoutClass(err)
	if timeout {
		c.forwardTimeouts.Add(1)
	} else {
		c.forwardRefusals.Add(1)
	}
	class := outcomeClass(err)
	traceID := traceIDOf(telemetry.FromContext(ctx))
	c.flight.Add(telemetry.Event{Type: "forward-failed", TraceID: traceID,
		Detail: m.Spec.Name + " " + class + ": " + err.Error()})
	suspected, died := m.strike(timeout, err, c.cfg.DeadAfter, c.cfg.DeadAfterTimeout)
	if suspected {
		c.events.Add(telemetry.EventMemberSuspected, m.Spec.Name, "failed forward ("+class+"): "+err.Error())
		c.cfg.Logger.Warn("member suspected after failed forward",
			"coordinator", c.cfg.Name, "node", m.Spec.Name,
			"trace_id", traceID, "outcome", class, "err", err)
	}
	if died {
		c.events.Add(telemetry.EventMemberDead, m.Spec.Name, "failed forward ("+class+"): "+err.Error())
		c.cfg.Logger.Warn("member marked dead after failed forward",
			"coordinator", c.cfg.Name, "node", m.Spec.Name,
			"trace_id", traceID, "outcome", class, "err", err)
		c.rebuildRing()
	}
}

// forwardRun routes one run submission: cache-first probes when the
// owner is saturated, then the candidate chain with failover, hedging
// each attempt with replica cache probes when the member is slow. The
// returned result may be any HTTP status — a member's 4xx/5xx is its
// answer and propagates to the client untouched.
func (c *Coordinator) forwardRun(ctx context.Context, key string, rawQuery string, body []byte) (*fwdResult, error) {
	run := telemetry.FromContext(ctx)
	_, gen := c.ringState()
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.noMemberErrs.Add(1)
		return nil, ErrNoMembers
	}
	// The route decision and the health state it was made under, as
	// zero-length marker spans on the coordinator lane.
	if run != nil {
		now := time.Now()
		run.Record("route", "cluster", now, now,
			telemetry.String("key", key),
			telemetry.String("owner", cands[0].Spec.Name),
			telemetry.Int("ring_generation", gen),
			telemetry.Int("candidates", int64(len(cands))))
		attrs := make([]telemetry.Attr, 0, len(c.names))
		for _, st := range c.Members() {
			attrs = append(attrs, telemetry.String(st.Name, string(st.State)))
		}
		run.Record("health-snapshot", "cluster", now, now, attrs...)
	}
	c.flight.Add(telemetry.Event{Type: "route", TraceID: traceIDOf(run),
		Detail: fmt.Sprintf("key=%s owner=%s gen=%d", key, cands[0].Spec.Name, gen)})
	path := "/v1/runs"
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	// Load-aware degrade: a saturated owner keeps its keys (stickiness
	// is what makes coalescing work), but before queueing more onto it
	// the coordinator asks the replica-holding successors whether the
	// answer is already cached somewhere cheaper.
	if cands[0].saturated() {
		for _, m := range cands[1:] {
			if !m.routable() {
				continue
			}
			res, err := c.forward(ctx, m, http.MethodPost, path, body,
				map[string]string{"X-Gspc-Cache-Only": "1"})
			if err != nil {
				c.failMember(ctx, m, err)
				continue
			}
			if res.status == http.StatusOK {
				c.cacheProbeHits.Add(1)
				c.flight.Add(telemetry.Event{Type: "cache-probe-hit", TraceID: traceIDOf(run),
					Detail: m.Spec.Name})
				return res, nil
			}
		}
	}
	var lastErr error
	for i, m := range cands {
		if !m.routable() {
			continue
		}
		if i > 0 {
			c.reroutes.Add(1)
		}
		res, err := c.forwardRunOnce(ctx, m, cands, path, body)
		if err != nil {
			if ctx.Err() != nil {
				// The client went away; don't blame the member.
				return nil, ctx.Err()
			}
			lastErr = err
			c.failMember(ctx, m, err)
			continue
		}
		return res, nil
	}
	c.noMemberErrs.Add(1)
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last error: %v)", ErrNoMembers, lastErr)
	}
	return nil, ErrNoMembers
}

// forwardRunOnce forwards a run submission to one member, hedging when
// the member dawdles: after HedgeDelay without an answer, the
// coordinator probes the other candidates cache-only. A replica that
// already holds the result answers the client immediately; the slow
// owner's forward is then abandoned (the owner finishes and caches on
// its own schedule). Hedges are cache probes, never duplicate
// submissions, so the at-most-one-simulation coalescing guarantee
// survives hedging.
func (c *Coordinator) forwardRunOnce(ctx context.Context, m *Member, cands []*Member, path string, body []byte) (*fwdResult, error) {
	if c.cfg.HedgeDelay <= 0 || len(cands) <= 1 {
		return c.forward(ctx, m, http.MethodPost, path, body, nil)
	}

	start := time.Now()
	type outcome struct {
		res *fwdResult
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primary := make(chan outcome, 1)
	go func() {
		res, err := c.forward(pctx, m, http.MethodPost, path, body, nil)
		primary <- outcome{res, err}
	}()

	delay := time.NewTimer(c.cfg.HedgeDelay)
	defer delay.Stop()
	select {
	case o := <-primary:
		return o.res, o.err
	case <-ctx.Done():
		o := <-primary // forward honors ctx, so this wait is bounded
		return o.res, o.err
	case <-delay.C:
	}

	// The owner is slow. Ask the replica-holding candidates whether the
	// answer is already cached; first hit wins the race against the
	// owner. Probe failures strike the probed member as usual (a
	// partitioned follower is real evidence) except when the hedge was
	// cancelled because the owner answered first.
	c.hedges.Add(1)
	run := telemetry.FromContext(ctx)
	hsp := run.Start("hedge", "cluster", telemetry.String("owner", m.Spec.Name))
	c.flight.Add(telemetry.Event{Type: "hedge", TraceID: traceIDOf(run),
		Detail: "owner " + m.Spec.Name + " slow, probing replicas"})
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hedged := make(chan *fwdResult, 1)
	go func() {
		for _, f := range cands {
			if f == m || !f.routable() {
				continue
			}
			res, err := c.forward(hctx, f, http.MethodPost, path, body,
				map[string]string{"X-Gspc-Cache-Only": "1"})
			if err != nil {
				if hctx.Err() == nil {
					c.failMember(hctx, f, err)
				}
				continue
			}
			if res.status == http.StatusOK {
				select {
				case hedged <- res:
				default:
				}
				return
			}
		}
	}()

	select {
	case o := <-primary:
		hsp.Attr(telemetry.String("winner", "owner")).End()
		return o.res, o.err
	case res := <-hedged:
		c.hedgeWins.Add(1)
		c.fwdHist[outcomeHedgeWon].Observe(time.Since(start).Seconds())
		winner := res.nodeName()
		hsp.Attr(telemetry.String("winner", "replica"),
			telemetry.String("node", winner)).End()
		c.flight.Add(telemetry.Event{Type: "hedge-win", TraceID: traceIDOf(run), Detail: winner})
		c.cfg.Logger.Info("hedged forward won by replica",
			"coordinator", c.cfg.Name, "node", winner, "owner", m.Spec.Name,
			"run_id", res.header.Get("X-Gspc-Run"), "trace_id", traceIDOf(run),
			"outcome", outcomeHedgeWon)
		pcancel() // abandon the slow owner; its goroutine drains into the buffered chan
		return res, nil
	case <-ctx.Done():
		hsp.Attr(telemetry.String("winner", "cancelled")).End()
		o := <-primary
		return o.res, o.err
	}
}

// submitSync coalesces cluster-wide: concurrent synchronous submitters
// of the same key — whichever coordinator connection they arrived on —
// share one forwarded computation. The leader forwards; followers
// replay its captured response, marked X-Gspc-Cluster-Coalesced.
func (c *Coordinator) submitSync(ctx context.Context, key string, rawQuery string, body []byte) (*fwdResult, error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		run := telemetry.FromContext(ctx)
		wsp := run.Start("coalesced-wait", "cluster", telemetry.String("key", key))
		select {
		case <-f.done:
			if f.status == 0 {
				// The leader's forward failed outright; don't replay an
				// empty response — run our own forward chain.
				wsp.Attr(telemetry.String("outcome", "leader-failed")).End()
				return c.forwardRun(ctx, key, rawQuery, body)
			}
			c.coalesced.Add(1)
			wsp.Attr(telemetry.String("outcome", "replayed")).End()
			c.flight.Add(telemetry.Event{Type: "coalesced", TraceID: traceIDOf(run), Detail: key})
			return &fwdResult{status: f.status, header: f.header, body: f.body, coalesced: true}, nil
		case <-ctx.Done():
			wsp.Attr(telemetry.String("outcome", "cancelled")).End()
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	res, err := c.forwardRun(ctx, key, rawQuery, body)
	c.mu.Lock()
	if res != nil {
		f.status, f.header, f.body = res.status, res.header, res.body
	}
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return res, err
}

// replicate copies a freshly computed result onto the key's ring
// successors (skipping the node that computed it), asynchronously — a
// slow follower never holds up the client's reply. Transient install
// failures retry with exponential backoff (ReplicateRetries times from
// ReplicateBackoff) before the copy is abandoned; abandonment is
// counted and logged but otherwise tolerated — replication is a
// degradation hedge, not a durability guarantee (each node's WAL
// provides that).
// The run (when non-nil) collects per-follower "replicate" spans —
// recorded after the client's reply went out, which is fine: the trace
// is only exported when read — and correlates the replication log lines
// with the distributed trace.
func (c *Coordinator) replicate(run *telemetry.Run, key, experiment, runID string, body []byte, computedBy string) {
	if c.cfg.Replication <= 0 {
		return
	}
	followers := c.currentRing().Owners(key, c.cfg.Replication+1)
	for _, name := range followers {
		if name == computedBy {
			continue
		}
		m := c.members[name]
		if !m.routable() {
			continue
		}
		c.wg.Add(1)
		go func(m *Member) {
			defer c.wg.Done()
			rsp := run.Start("replicate", "cluster",
				telemetry.String("node", m.Spec.Name),
				telemetry.String("run_id", runID))
			backoff := c.cfg.ReplicateBackoff
			var lastErr error
			attempts := 0
			for attempt := 0; attempt <= c.cfg.ReplicateRetries; attempt++ {
				if attempt > 0 {
					c.replicationRtry.Add(1)
					t := time.NewTimer(backoff)
					select {
					case <-t.C:
					case <-c.stop:
						t.Stop()
						c.replicationErrs.Add(1)
						rsp.Attr(telemetry.String("outcome", "shutdown")).End()
						return
					}
					backoff *= 2
					if !m.queryable() {
						// The member died while we backed off; its health-loop
						// revival will not bring this copy back — give up.
						break
					}
				}
				attempts++
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if run != nil {
					// Propagate the trace onto the replica PUT so the member's
					// access log correlates even though no job is created.
					ctx = telemetry.NewContext(ctx, run)
				}
				res, err := c.forward(ctx, m, http.MethodPut, "/v1/replicas/"+key, body,
					map[string]string{"X-Gspc-Experiment": experiment, "X-Gspc-Run": runID})
				cancel()
				if err == nil && res.status != http.StatusNoContent {
					err = fmt.Errorf("replica install status %d", res.status)
				}
				if err == nil {
					c.replications.Add(1)
					c.replicasByNode.Add(m.Spec.Name, 1)
					rsp.Attr(telemetry.String("outcome", outcomeOK),
						telemetry.Int("attempts", int64(attempts))).End()
					return
				}
				lastErr = err
			}
			c.replicationErrs.Add(1)
			rsp.Attr(telemetry.String("outcome", "abandoned"),
				telemetry.Int("attempts", int64(attempts))).End()
			c.events.Add(telemetry.EventReplicationExhausted, m.Spec.Name,
				fmt.Sprintf("key=%s run=%s after %d attempts: %v", key, runID, attempts, lastErr))
			c.flight.Add(telemetry.Event{Type: "replication-abandoned", RunID: runID,
				TraceID: traceIDOf(run), Detail: m.Spec.Name + ": " + fmt.Sprint(lastErr)})
			outcome := outcomeRefused
			if lastErr != nil {
				outcome = outcomeClass(lastErr)
			}
			c.cfg.Logger.Warn("replication abandoned", "coordinator", c.cfg.Name,
				"node", m.Spec.Name, "key", key, "run_id", runID,
				"trace_id", traceIDOf(run), "outcome", outcome,
				"attempts", c.cfg.ReplicateRetries+1, "err", lastErr)
		}(m)
	}
}

// forwardQuery routes a read (status, trace) to a specific member,
// requiring only queryability: draining members still answer for their
// runs. Dead members yield ErrNoMembers (HTTP 503, not 404 — the run
// may well exist, its node is just unreachable).
func (c *Coordinator) forwardQuery(ctx context.Context, node, pathAndQuery string) (*fwdResult, error) {
	m, ok := c.members[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown member %q", node)
	}
	if !m.queryable() {
		return nil, fmt.Errorf("%w: member %s is down", ErrNoMembers, node)
	}
	res, err := c.forward(ctx, m, http.MethodGet, pathAndQuery, nil, nil)
	if err != nil {
		c.failMember(ctx, m, err)
		return nil, fmt.Errorf("%w: member %s unreachable: %v", ErrNoMembers, node, err)
	}
	return res, nil
}

// forwardAny routes a read to any routable (or failing that, queryable)
// member — used for /v1/experiments, which every node answers
// identically.
func (c *Coordinator) forwardAny(ctx context.Context, pathAndQuery string) (*fwdResult, error) {
	tried := map[string]bool{}
	for _, pick := range []func(*Member) bool{(*Member).routable, (*Member).queryable} {
		for _, name := range c.names {
			m := c.members[name]
			if tried[name] || !pick(m) {
				continue
			}
			tried[name] = true
			res, err := c.forward(ctx, m, http.MethodGet, pathAndQuery, nil, nil)
			if err != nil {
				c.failMember(ctx, m, err)
				continue
			}
			return res, nil
		}
	}
	c.noMemberErrs.Add(1)
	return nil, ErrNoMembers
}
