// Package stream defines the graphics data streams that flow between the
// rendering pipeline, the render caches, and the GPU last-level cache, as
// described in Section 2 of the paper. Every memory reference carries the
// identity of the source render cache (or fixed-function unit) that issued
// it; the LLC policies in internal/core key their decisions on this
// identity but never need to store it per block (except for render
// targets, which are tracked with the block state bits).
package stream

import "fmt"

// Kind identifies the graphics stream an access belongs to.
type Kind uint8

// The stream kinds, mirroring Figure 3 of the paper. Vertex covers both
// the vertex and vertex-index caches' misses; Display is the final
// displayable color written to the back buffer (consumed only by the
// display engine, never reused); Other covers shader code, constants and
// miscellaneous state.
const (
	Vertex Kind = iota
	HiZ
	Z
	Stencil
	RT
	Texture
	Display
	Other

	// NumKinds is the number of distinct stream kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	Vertex:  "vertex",
	HiZ:     "hiz",
	Z:       "z",
	Stencil: "stencil",
	RT:      "rt",
	Texture: "texture",
	Display: "display",
	Other:   "other",
}

// String returns the lower-case name of the stream kind.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined stream kinds.
func (k Kind) Valid() bool { return k < NumKinds }

// Kinds lists every stream kind in declaration order. Useful for ranging
// over per-stream statistics.
func Kinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Access is a single memory reference presented to a cache. Addr is a
// byte address (the cache masks it to its block size). Seq is the global
// position of the access in its trace; it is only required by policies
// that need future knowledge (Belady's OPT) and may be left zero
// otherwise.
type Access struct {
	Addr  uint64
	Seq   int64
	Kind  Kind
	Write bool
}

// String renders the access for debugging.
func (a Access) String() string {
	rw := "R"
	if a.Write {
		rw = "W"
	}
	return fmt.Sprintf("%s %s 0x%x", a.Kind, rw, a.Addr)
}

// Sink consumes a stream of accesses. The rendering pipeline emits raw
// accesses into a render-cache complex, whose miss stream feeds an LLC
// model or a trace collector; all of those are Sinks.
type Sink interface {
	Emit(a Access)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(a Access)

// Emit calls f(a).
func (f SinkFunc) Emit(a Access) { f(a) }

// Tee returns a Sink that forwards every access to each of sinks in order.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(a Access) {
		for _, s := range sinks {
			s.Emit(a)
		}
	})
}

// Counter is a Sink that counts accesses per stream kind.
type Counter struct {
	Total  int64
	ByKind [NumKinds]int64
}

// Emit records the access.
func (c *Counter) Emit(a Access) {
	c.Total++
	if a.Kind < NumKinds {
		c.ByKind[a.Kind]++
	}
}
