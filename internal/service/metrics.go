package service

import (
	"sort"
	"time"

	"gspc/internal/durable"
	"gspc/internal/harness"
	"gspc/internal/tracecache"
)

// latencySamples bounds the completed-job duration window percentiles
// are computed over.
const latencySamples = 512

// latencies is a fixed ring of recent job durations in milliseconds.
type latencies struct {
	ring  [latencySamples]float64
	n     int // total recorded
	count int // valid entries in ring
}

func (l *latencies) record(d time.Duration) {
	l.ring[l.n%latencySamples] = float64(d) / float64(time.Millisecond)
	l.n++
	if l.count < latencySamples {
		l.count++
	}
}

// percentiles returns (p50, p95) over the window, zeros when empty.
func (l *latencies) percentiles() (p50, p95 float64) {
	if l.count == 0 {
		return 0, 0
	}
	s := make([]float64, l.count)
	copy(s, l.ring[:l.count])
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.95)
}

// Metrics is the counter snapshot served at /metricsz.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
	Cancelled int64 `json:"cancelled"`

	Retries  int64 `json:"retries"`
	Panics   int64 `json:"panics"`
	Timeouts int64 `json:"timeouts"`

	BreakerTrips     int64             `json:"breaker_trips"`
	BreakerFastFails int64             `json:"breaker_fast_fails"`
	BreakersOpen     int               `json:"breakers_open"`
	BreakerStates    map[string]string `json:"breaker_states,omitempty"`
	StaleServed      int64             `json:"stale_served"`

	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEvictions int64  `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`
	CacheCapacity  int    `json:"cache_capacity"`
	CachePolicy    string `json:"cache_policy"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`

	// TraceCache reports the process-wide frame-trace cache (hits,
	// misses, coalesced synthesis, evicted bytes, budget); Stages splits
	// accumulated experiment time into synthesis, offline replay, and
	// timing simulation. Both are process-global, not per-engine: every
	// engine in the process shares the one cache.
	TraceCache tracecache.Stats     `json:"trace_cache"`
	Stages     harness.StageTimings `json:"stages"`

	// Durable reports the write-ahead journal and the boot recovery
	// outcome when -data-dir is set; absent otherwise. Recovery
	// counters let operators verify a restart recovered state (jobs
	// restored, cache rehydrated) rather than silently rebuilt it.
	Durable *DurableMetrics `json:"durable,omitempty"`
}

// DurableMetrics is the persistence section of /metricsz.
type DurableMetrics struct {
	// Journal/snapshot store counters: journal size and record count,
	// append failures, compactions, records replayed at boot, torn
	// tail bytes truncated, and corrupt snapshots quarantined.
	durable.Stats
	// JournalErrors counts engine-level append failures (a superset
	// clock of Stats.AppendErrors that also covers encode failures).
	JournalErrors int64 `json:"journal_errors"`
	// Recovery is the boot outcome.
	Recovery recoveryStats `json:"recovery"`
}

// Metrics snapshots the engine counters.
func (e *Engine) Metrics() Metrics {
	hits, misses, evictions := e.cache.counters()
	e.mu.Lock()
	defer e.mu.Unlock()
	p50, p95 := e.lat.percentiles()
	var durableMetrics *DurableMetrics
	if e.store != nil {
		durableMetrics = &DurableMetrics{
			Stats:         e.store.Stats(),
			JournalErrors: e.journalErrors,
			Recovery:      e.recovery,
		}
	}
	now := time.Now()
	var open int
	var states map[string]string
	if len(e.breakers) > 0 {
		states = make(map[string]string, len(e.breakers))
		for id, b := range e.breakers {
			states[id] = b.state.String()
			if b.openNow(now) {
				open++
			}
		}
	}
	return Metrics{
		UptimeSeconds: time.Since(e.start).Seconds(),
		Requests:      e.requests,
		Completed:     e.completed,
		Failed:        e.failed,
		Rejected:      e.rejected,
		Coalesced:     e.coalesced,
		Cancelled:     e.cancelled,

		Retries:  e.retries,
		Panics:   e.panics,
		Timeouts: e.timeouts,

		BreakerTrips:     e.breakerTrips,
		BreakerFastFails: e.breakerFastFails,
		BreakersOpen:     open,
		BreakerStates:    states,
		StaleServed:      e.staleServed,

		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheEntries:   e.cache.Len(),
		CacheCapacity:  e.cache.ways,
		CachePolicy:    e.cache.PolicyName(),
		QueueDepth:     len(e.queue),
		QueueCapacity:  e.cfg.QueueDepth,
		Workers:        e.cfg.Workers,
		LatencyP50Ms:   p50,
		LatencyP95Ms:   p95,

		TraceCache: harness.SharedTraceCache().Stats(),
		Stages:     harness.Timings(),
		Durable:    durableMetrics,
	}
}
