package analysis

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

func blocksTrace(blocks ...int) []stream.Access {
	tr := make([]stream.Access, len(blocks))
	for i, b := range blocks {
		tr[i] = stream.Access{Addr: uint64(b) * 64, Seq: int64(i)}
	}
	return tr
}

func TestStackDistancesKnown(t *testing.T) {
	// Trace: A B C A B B. Distances: -1 -1 -1 2 2 0.
	tr := blocksTrace(1, 2, 3, 1, 2, 2)
	got := StackDistances(tr, 6)
	want := []int64{-1, -1, -1, 2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// bruteStackDistance counts distinct blocks between touches directly.
func bruteStackDistance(tr []stream.Access, shift uint) []int64 {
	out := make([]int64, len(tr))
	for i := range tr {
		out[i] = -1
		bn := tr[i].Addr >> shift
		for j := i - 1; j >= 0; j-- {
			if tr[j].Addr>>shift == bn {
				seen := map[uint64]bool{}
				for k := j + 1; k < i; k++ {
					seen[tr[k].Addr>>shift] = true
				}
				delete(seen, bn)
				out[i] = int64(len(seen))
				break
			}
		}
	}
	return out
}

func TestStackDistancesProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		tr := make([]stream.Access, len(blocks))
		for i, b := range blocks {
			tr[i] = stream.Access{Addr: uint64(b%32) * 64}
		}
		got := StackDistances(tr, 6)
		want := bruteStackDistance(tr, 6)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The defining property of stack distances: an access hits in a
// fully-associative LRU cache of capacity C iff its distance < C.
func TestStackDistancePredictsLRUProperty(t *testing.T) {
	f := func(blocks []uint8, cap8 uint8) bool {
		ways := int(cap8%15) + 2
		tr := make([]stream.Access, len(blocks))
		for i, b := range blocks {
			tr[i] = stream.Access{Addr: uint64(b%64) * 64}
		}
		dists := StackDistances(tr, 6)
		// Fully associative LRU = single-set cache.
		c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * ways, Ways: ways, BlockSize: 64}, policy.NewLRU())
		for i, a := range tr {
			hit := c.Access(a)
			wantHit := dists[i] >= 0 && dists[i] < int64(ways)
			if hit != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReuseHistogram(t *testing.T) {
	tr := blocksTrace(1, 2, 3, 1, 2, 2)
	h := NewReuseHistogram(tr, 6, stream.NumKinds)
	if h.Total != 6 || h.Cold != 3 {
		t.Errorf("total=%d cold=%d", h.Total, h.Cold)
	}
	// Distances 2, 2 -> bucket 1; distance 0 -> bucket 0.
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 {
		t.Errorf("buckets = %v", h.Buckets[:3])
	}
	if h.ColdFraction() != 0.5 {
		t.Errorf("cold fraction = %v", h.ColdFraction())
	}
}

func TestReuseHistogramKindFilter(t *testing.T) {
	tr := []stream.Access{
		{Addr: 0, Kind: stream.Z},
		{Addr: 0, Kind: stream.Texture},
		{Addr: 0, Kind: stream.Z},
	}
	h := NewReuseHistogram(tr, 6, stream.Z)
	if h.Total != 2 || h.Cold != 1 {
		t.Errorf("filtered histogram total=%d cold=%d", h.Total, h.Cold)
	}
}

func TestHitRateAtCapacity(t *testing.T) {
	// Cyclic trace over 8 blocks, repeated: distances are all 7.
	var blocks []int
	for rep := 0; rep < 4; rep++ {
		for b := 0; b < 8; b++ {
			blocks = append(blocks, b)
		}
	}
	h := NewReuseHistogram(blocksTrace(blocks...), 6, stream.NumKinds)
	// Distance 7 -> bucket 2 ([4,8)); capacity 8 captures it.
	if hr := h.HitRateAtCapacity(8); hr < 0.7 {
		t.Errorf("hit rate at capacity 8 = %v, want ~0.75", hr)
	}
	if hr := h.HitRateAtCapacity(4); hr != 0 {
		t.Errorf("hit rate at capacity 4 = %v, want 0", hr)
	}
}

func TestMedianDistance(t *testing.T) {
	h := NewReuseHistogram(blocksTrace(1, 1, 1, 1), 6, stream.NumKinds)
	if m := h.MedianDistance(); m != 2 {
		t.Errorf("median = %d, want 2 (bucket 0 upper bound)", m)
	}
	empty := NewReuseHistogram(nil, 6, stream.NumKinds)
	if empty.MedianDistance() != -1 {
		t.Error("median of empty histogram should be -1")
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: 20}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
}
