package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// PeLIFO is a light-weight probabilistic escape LIFO policy in the
// spirit of Chaudhuri [5] (cited in Section 1.1.1): blocks are ranked by
// their fill order within the set, eviction prefers the top of the fill
// stack (the most recently filled non-escaped block), and blocks that
// demonstrate reuse "escape" a few stack positions. It approximates the
// pseudo-LIFO family without the program-counter machinery, which
// graphics streams do not have.
type PeLIFO struct {
	ways int
	// pos is the fill-stack position (0 = top / most recently filled).
	pos []uint8
	// escaped counts how many hits a block has enjoyed.
	escaped []uint8
}

var _ cachesim.Policy = (*PeLIFO)(nil)

// peLIFOEscapeDepth is how far down the fill stack a reused block sinks
// per hit (escaping the eviction zone near the top).
const peLIFOEscapeDepth = 4

// NewPeLIFO returns a probabilistic-escape LIFO policy.
func NewPeLIFO() *PeLIFO { return &PeLIFO{} }

// Name implements cachesim.Policy.
func (p *PeLIFO) Name() string { return "peLIFO" }

// Reset implements cachesim.Policy.
func (p *PeLIFO) Reset(sets, ways int) {
	p.ways = ways
	p.pos = make([]uint8, sets*ways)
	p.escaped = make([]uint8, sets*ways)
	for i := range p.pos {
		p.pos[i] = uint8(ways - 1) // everything starts at the bottom
	}
}

// Hit implements cachesim.Policy: the block escapes deeper into the
// stack, away from the LIFO eviction zone.
func (p *PeLIFO) Hit(set, way int, a stream.Access) {
	i := set*p.ways + way
	if p.escaped[i] < 255 {
		p.escaped[i]++
	}
	np := int(p.pos[i]) + peLIFOEscapeDepth
	if np > p.ways-1 {
		np = p.ways - 1
	}
	p.pos[i] = uint8(np)
}

// Fill implements cachesim.Policy: the new block lands on top of the
// fill stack; everything shallower sinks by one.
func (p *PeLIFO) Fill(set, way int, a stream.Access) {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if w == way {
			continue
		}
		if p.pos[base+w] < uint8(p.ways-1) {
			p.pos[base+w]++
		}
	}
	p.pos[base+way] = 0
	p.escaped[base+way] = 0
}

// Victim implements cachesim.Policy: evict the never-reused block
// nearest the top of the fill stack; if every block has escaped at least
// once, fall back to the top of the stack.
func (p *PeLIFO) Victim(set int, a stream.Access) int {
	base := set * p.ways
	victim, best := -1, 255
	for w := 0; w < p.ways; w++ {
		if p.escaped[base+w] == 0 && int(p.pos[base+w]) < best {
			victim, best = w, int(p.pos[base+w])
		}
	}
	if victim >= 0 {
		return victim
	}
	for w := 0; w < p.ways; w++ {
		if int(p.pos[base+w]) < best {
			victim, best = w, int(p.pos[base+w])
		}
	}
	return victim
}

// Evict implements cachesim.Policy.
func (p *PeLIFO) Evict(set, way int) {
	i := set*p.ways + way
	p.pos[i] = uint8(p.ways - 1)
	p.escaped[i] = 0
}
