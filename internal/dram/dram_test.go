package dram

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	c := DefaultConfig()
	return c
}

func TestTimingGrades(t *testing.T) {
	g1600 := DDR3_1600()
	if g1600.BusMHz != 800 || g1600.CAS != 15 || g1600.RCD != 15 || g1600.RP != 15 || g1600.Burst != 8 {
		t.Errorf("DDR3-1600 = %+v", g1600)
	}
	g1867 := DDR3_1867()
	if g1867.BusMHz != 933 || g1867.CAS != 10 {
		t.Errorf("DDR3-1867 = %+v", g1867)
	}
}

func TestPeakBandwidth(t *testing.T) {
	m := New(testConfig())
	// Dual channel DDR3-1600: 2 x 12.8 GB/s.
	if bw := m.PeakBandwidthGBps(); bw < 25.5 || bw > 25.7 {
		t.Errorf("peak bandwidth = %v GB/s, want ~25.6", bw)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	m := New(testConfig())
	// First access: closed row (tRCD+tCAS).
	t0 := m.Access(0, 0, false)
	// Same row, same channel (blocks interleave across channels, so the
	// next same-channel block is +128): row hit.
	t1 := m.Access(128, t0, false)
	hitLat := t1 - t0
	// Different row, same bank: conflict.
	conflictAddr := uint64(testConfig().RowBytes * testConfig().Channels * testConfig().BanksPerChannel)
	_ = conflictAddr
	// Find an address on the same channel+bank but another row: row id
	// advances by channels*banks rows.
	rowStride := uint64(testConfig().RowBytes) * uint64(testConfig().Channels) * uint64(testConfig().BanksPerChannel)
	t2 := m.Access(rowStride, t1, false)
	conflictLat := t2 - t1
	if hitLat >= conflictLat {
		t.Errorf("row hit latency %d >= conflict latency %d", hitLat, conflictLat)
	}
	if m.Stats.RowHits != 1 || m.Stats.RowMisses != 1 || m.Stats.RowConflicts != 1 {
		t.Errorf("stats %+v", m.Stats)
	}
}

func TestChannelInterleave(t *testing.T) {
	m := New(testConfig())
	// Adjacent blocks go to different channels: simultaneous requests
	// should not serialize on one data bus.
	d0 := m.Access(0, 0, false)
	d1 := m.Access(64, 0, false)
	// Both start at 0 on separate channels; completion times are equal.
	if d0 != d1 {
		t.Errorf("parallel channel accesses completed at %d and %d", d0, d1)
	}
	// Same-channel requests serialize on the data bus.
	m2 := New(testConfig())
	e0 := m2.Access(0, 0, false)
	e1 := m2.Access(128, 0, false) // same channel (block 2)
	if e1 <= e0 {
		t.Error("same-channel access did not queue behind the bus")
	}
}

func TestWritesCountAndOccupy(t *testing.T) {
	m := New(testConfig())
	m.Access(0, 0, true)
	if m.Stats.Writes != 1 || m.Stats.Reads != 0 {
		t.Errorf("stats %+v", m.Stats)
	}
	if m.Stats.BusBusyCycles <= 0 {
		t.Error("write consumed no bus cycles")
	}
}

func TestLatencyMath(t *testing.T) {
	m := New(testConfig())
	// GPU at 1.6 GHz, bus at 800 MHz: 2 GPU cycles per memory cycle.
	// Closed-row read: (tRCD+tCAS)=30 mem cycles = 60 GPU cycles, plus
	// the 8-GPU-cycle burst.
	done := m.Access(0, 0, false)
	if done != 68 {
		t.Errorf("closed-row completion = %d, want 68", done)
	}
}

func TestResetClearsState(t *testing.T) {
	m := New(testConfig())
	m.Access(0, 0, false)
	m.Reset()
	if m.Stats.Reads != 0 {
		t.Error("reset kept stats")
	}
	// After reset the row is closed again.
	m.Access(0, 0, false)
	if m.Stats.RowMisses != 1 || m.Stats.RowHits != 0 {
		t.Errorf("post-reset stats %+v", m.Stats)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero channels")
		}
	}()
	New(Config{Channels: 0, BanksPerChannel: 8, RowBytes: 8192, Timing: DDR3_1600(), GPUClockGHz: 1.6})
}

// Property: completion times never precede issue times and are monotone
// for serialized same-bank requests.
func TestCompletionMonotoneProperty(t *testing.T) {
	f := func(addrs []uint16, gaps []uint8) bool {
		m := New(testConfig())
		now := int64(0)
		var lastSameBank int64
		for i, ad := range addrs {
			if i < len(gaps) {
				now += int64(gaps[i])
			}
			done := m.Access(uint64(ad)*64, now, i%4 == 0)
			if done < now {
				return false
			}
			_ = lastSameBank
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total bus busy cycles equal burst time x number of requests.
func TestBusAccountingProperty(t *testing.T) {
	f := func(n uint8) bool {
		m := New(testConfig())
		for i := 0; i < int(n); i++ {
			m.Access(uint64(i)*64, 0, false)
		}
		return m.Stats.BusBusyCycles == int64(n)*8 // 4 mem cycles = 8 GPU cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
