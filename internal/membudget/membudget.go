// Package membudget is a process-wide memory governor: it accounts
// bytes across the subsystems that actually hold memory (trace cache,
// result cache, durable journal buffers, per-request in-flight trace
// estimates), watches the live heap via runtime.ReadMemStats, and
// drives a watermark-based degradation ladder that the serving layer
// consults on every admission:
//
//	rung 0  healthy     serve everything
//	rung 1  shrink      shrink the trace-cache budget, evict early
//	rung 2  sampled     force fidelity=sampled on new admissions
//	rung 3  stale-only  answer only from cache / last-good results
//	rung 4  shed        refuse new work (429/503 + Retry-After)
//
// Pressure is max(accounted bytes, adjusted live heap) / limit: the
// accounted sum reacts instantly to admissions (the heap only shows an
// allocation after it happens — too late to refuse it), while the heap
// catches everything the sources do not know about.
//
// The ladder steps up immediately — a node nearing its limit must
// degrade now — and steps down one rung at a time, only after pressure
// has stayed a hysteresis margin below the rung's watermark for a hold
// period, so a node oscillating around a watermark does not flap
// between serving modes.
package membudget

import (
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Rung is one step of the degradation ladder. Higher is more degraded.
type Rung int

// The ladder, least to most degraded.
const (
	RungHealthy Rung = iota
	RungShrink
	RungSampled
	RungStaleOnly
	RungShed

	// NumRungs is the ladder length, for per-rung accounting arrays.
	NumRungs = int(RungShed) + 1
)

// String names the rung for logs, metrics labels, and /readyz bodies.
func (r Rung) String() string {
	switch r {
	case RungHealthy:
		return "healthy"
	case RungShrink:
		return "shrink"
	case RungSampled:
		return "sampled"
	case RungStaleOnly:
		return "stale-only"
	case RungShed:
		return "shed"
	}
	return fmt.Sprintf("rung-%d", int(r))
}

// RungNames lists every rung name in ladder order.
func RungNames() []string {
	out := make([]string, NumRungs)
	for i := 0; i < NumRungs; i++ {
		out[i] = Rung(i).String()
	}
	return out
}

// Config shapes a Governor. Limit is required; everything else has a
// usable default.
type Config struct {
	// Limit is the byte budget the ladder watermarks are fractions of.
	// Required (> 0).
	Limit int64
	// Watermarks are the pressure fractions at which each degraded rung
	// engages: crossing Watermarks[i] enters Rung(i+1). Must ascend.
	// Default {0.65, 0.75, 0.85, 0.95}.
	Watermarks [NumRungs - 1]float64
	// Hysteresis is how far below a rung's watermark pressure must fall
	// before the hold-down timer toward stepping off it starts.
	// Default 0.05.
	Hysteresis float64
	// HoldDown is how long pressure must stay below
	// watermark−hysteresis before the ladder steps down one rung.
	// Default 2s.
	HoldDown time.Duration
	// Poll is the heap-sampling interval of the background loop started
	// by Start. Default 250ms.
	Poll time.Duration
	// SetRuntimeLimit also installs Limit as the Go runtime's soft
	// memory limit (runtime/debug.SetMemoryLimit), making the collector
	// itself fight to stay under it. Leave off when several governors
	// share one process (tests, the in-process swarm).
	SetRuntimeLimit bool
	// HeapBaseline is subtracted from the observed live heap before
	// computing pressure: an in-process harness giving each node a
	// small budget must not charge the test binary's own baseline heap
	// against it. 0 charges the full heap.
	HeapBaseline int64
	// OnChange, if set, observes every rung transition (after it is
	// committed, outside the governor lock). Subscribe adds more.
	OnChange func(from, to Rung)
	// Logger sinks rung-transition logs. Default slog.Default().
	Logger *slog.Logger

	// readHeap overrides live-heap sampling in tests.
	readHeap func() int64
}

// Snapshot is the queryable governor state for /metricsz, /readyz, and
// the soak report.
type Snapshot struct {
	LimitBytes     int64            `json:"limit_bytes"`
	HeapBytes      int64            `json:"heap_bytes"`
	AccountedBytes int64            `json:"accounted_bytes"`
	InflightBytes  int64            `json:"inflight_bytes"`
	Sources        map[string]int64 `json:"sources,omitempty"`
	Pressure       float64          `json:"pressure"`
	Rung           string           `json:"rung"`
	RungLevel      int              `json:"rung_level"`
	// RungEntries counts arrivals at each rung (including re-arrivals);
	// RungSeconds is wall-clock residency. Both are keyed by rung name
	// and cover the whole ladder, so a soak can assert "engaged rung 2,
	// spent most of its life healthy".
	RungEntries map[string]int64   `json:"rung_entries"`
	RungSeconds map[string]float64 `json:"rung_seconds"`
	// MaxRung is the highest rung ever entered.
	MaxRung string `json:"max_rung"`
	// HeapHighWater is the largest adjusted heap ever sampled.
	HeapHighWater int64 `json:"heap_high_water_bytes"`
}

// source is one registered byte gauge.
type source struct {
	name string
	fn   func() int64
}

// Governor owns the ladder state. Build with New, optionally Start the
// poll loop, and Close when done.
type Governor struct {
	cfg Config

	mu          sync.Mutex
	sources     []source
	inflight    int64 // reserved in-flight bytes
	lastHeap    int64 // adjusted heap from the most recent sample
	heapHigh    int64
	rung        Rung
	maxRung     Rung
	belowSince  time.Time // pressure first seen below the step-down bar
	enteredAt   time.Time // current rung entry time
	entries     [NumRungs]int64
	residency   [NumRungs]time.Duration
	subscribers []func(from, to Rung)
	prevLimit   int64 // runtime memory limit to restore on Close

	// pendingTs holds transitions committed under mu, delivered by
	// notify after it is released (a subscriber may call back into the
	// governor, e.g. Snapshot, or into a cache whose gauge the governor
	// reads). Guarded by pendingMu, never mu.
	pendingMu sync.Mutex
	pendingTs []transition

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// transition is one committed rung change awaiting subscriber delivery.
type transition struct{ from, to Rung }

func (c Config) withDefaults() Config {
	if c.Watermarks == ([NumRungs - 1]float64{}) {
		c.Watermarks = [NumRungs - 1]float64{0.65, 0.75, 0.85, 0.95}
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.05
	}
	if c.HoldDown <= 0 {
		c.HoldDown = 2 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.readHeap == nil {
		c.readHeap = liveHeap
	}
	return c
}

// liveHeap samples the live heap. HeapAlloc (bytes of allocated,
// not-yet-freed objects) is the figure the ladder defends: it is what
// an OOM killer ultimately sees growing.
func liveHeap() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// New validates cfg and builds a stopped governor: pressure and the
// ladder advance on Evaluate calls (and Reserve/Release, which
// re-evaluate against the cached heap sample). Call Start for the
// background heap-poll loop.
func New(cfg Config) (*Governor, error) {
	cfg = cfg.withDefaults()
	if cfg.Limit <= 0 {
		return nil, fmt.Errorf("membudget: Limit must be positive, got %d", cfg.Limit)
	}
	for i := 1; i < len(cfg.Watermarks); i++ {
		if cfg.Watermarks[i] <= cfg.Watermarks[i-1] {
			return nil, fmt.Errorf("membudget: watermarks must ascend, got %v", cfg.Watermarks)
		}
	}
	if cfg.Watermarks[0] <= 0 {
		return nil, fmt.Errorf("membudget: watermarks must be positive, got %v", cfg.Watermarks)
	}
	g := &Governor{
		cfg:       cfg,
		enteredAt: time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	g.entries[RungHealthy] = 1
	if cfg.OnChange != nil {
		g.subscribers = append(g.subscribers, cfg.OnChange)
	}
	if cfg.SetRuntimeLimit {
		g.prevLimit = debug.SetMemoryLimit(cfg.Limit)
	}
	return g, nil
}

// Start launches the heap-poll loop. Safe to call once.
func (g *Governor) Start() {
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				g.Evaluate()
			case <-g.stop:
				return
			}
		}
	}()
}

// Close stops the poll loop and restores the runtime memory limit.
func (g *Governor) Close() {
	g.once.Do(func() {
		close(g.stop)
		select {
		case <-g.done:
		case <-time.After(time.Second):
		}
		if g.cfg.SetRuntimeLimit {
			debug.SetMemoryLimit(g.prevLimit)
		}
	})
}

// RegisterSource registers a named byte gauge — a subsystem that can
// report its resident bytes (trace cache, result cache, journal). A
// re-registration under the same name replaces the gauge, so wiring is
// idempotent.
func (g *Governor) RegisterSource(name string, fn func() int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.sources {
		if g.sources[i].name == name {
			g.sources[i].fn = fn
			return
		}
	}
	g.sources = append(g.sources, source{name: name, fn: fn})
}

// Subscribe adds a rung-transition observer, called after each
// committed transition, outside the governor lock, in registration
// order. Subscribers must not block.
func (g *Governor) Subscribe(fn func(from, to Rung)) {
	g.mu.Lock()
	g.subscribers = append(g.subscribers, fn)
	g.mu.Unlock()
}

// BudgetSetter is anything with a runtime-adjustable byte budget —
// tracecache.Cache, concretely — declared here so the governor does
// not import the caches it governs.
type BudgetSetter interface{ SetBudget(int64) }

// ShrinkBudget arranges rung 1's action: while the ladder sits at
// RungShrink or above, b's budget is cut to shrunk (evicting down to
// it immediately); on return to healthy the full budget is restored.
func (g *Governor) ShrinkBudget(b BudgetSetter, full, shrunk int64) {
	g.Subscribe(func(from, to Rung) {
		switch {
		case from < RungShrink && to >= RungShrink:
			b.SetBudget(shrunk)
		case from >= RungShrink && to < RungShrink:
			b.SetBudget(full)
		}
	})
}

// Reserve accounts n bytes of estimated in-flight footprint (a request
// entering the engine). It always succeeds — refusal is the ladder's
// job, decided by rung, not here — and re-evaluates the ladder against
// the cached heap sample so a burst of admissions degrades the node
// before the allocations land.
func (g *Governor) Reserve(n int64) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.inflight += n
	g.evaluateLocked(g.lastHeap, time.Now())
	g.mu.Unlock()
	g.notify()
}

// Release returns bytes reserved by Reserve.
func (g *Governor) Release(n int64) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.inflight -= n
	if g.inflight < 0 {
		g.inflight = 0
	}
	g.evaluateLocked(g.lastHeap, time.Now())
	g.mu.Unlock()
	g.notify()
}

// Rung returns the current ladder rung.
func (g *Governor) Rung() Rung {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rung
}

// RetryAfter is the backoff the serving layer should hand shed clients:
// the ladder cannot step down faster than the hold-down period.
func (g *Governor) RetryAfter() time.Duration { return g.cfg.HoldDown }

// Limit returns the configured byte budget.
func (g *Governor) Limit() int64 { return g.cfg.Limit }

// Evaluate samples the heap, recomputes pressure, and advances the
// ladder. The poll loop calls it at interval; tests call it directly.
func (g *Governor) Evaluate() Rung {
	heap := g.cfg.readHeap() - g.cfg.HeapBaseline
	if heap < 0 {
		heap = 0
	}
	g.mu.Lock()
	g.lastHeap = heap
	if heap > g.heapHigh {
		g.heapHigh = heap
	}
	r := g.evaluateLocked(heap, time.Now())
	g.mu.Unlock()
	g.notify()
	return r
}

// accountedLocked sums the registered gauges plus in-flight reserves.
// Source funcs take their own locks; none call back into the governor.
func (g *Governor) accountedLocked() (total int64, bySource map[string]int64) {
	bySource = make(map[string]int64, len(g.sources)+1)
	for _, s := range g.sources {
		v := s.fn()
		bySource[s.name] = v
		total += v
	}
	bySource["inflight"] = g.inflight
	total += g.inflight
	return total, bySource
}

func (g *Governor) pressureLocked(heap int64) float64 {
	acct, _ := g.accountedLocked()
	worst := acct
	if heap > worst {
		worst = heap
	}
	return float64(worst) / float64(g.cfg.Limit)
}

// evaluateLocked advances the ladder for the given pressure inputs.
// Steps up are immediate and may jump several rungs; steps down move
// one rung per satisfied hold-down. Callers hold g.mu.
func (g *Governor) evaluateLocked(heap int64, now time.Time) Rung {
	p := g.pressureLocked(heap)

	// Target rung from the watermarks alone: the highest watermark at
	// or below the current pressure.
	target := RungHealthy
	for i := len(g.cfg.Watermarks) - 1; i >= 0; i-- {
		if p >= g.cfg.Watermarks[i] {
			target = Rung(i + 1)
			break
		}
	}

	switch {
	case target > g.rung:
		g.moveLocked(g.rung, target, p, now)
	case g.rung > RungHealthy:
		// Step-down candidate: below the current rung's own watermark
		// by the hysteresis margin, held for HoldDown, one rung at a
		// time — each lower rung re-arms its own hold-down.
		bar := g.cfg.Watermarks[int(g.rung)-1] - g.cfg.Hysteresis
		if p < bar {
			if g.belowSince.IsZero() {
				g.belowSince = now
			} else if now.Sub(g.belowSince) >= g.cfg.HoldDown {
				g.moveLocked(g.rung, g.rung-1, p, now)
			}
		} else {
			g.belowSince = time.Time{}
		}
	}
	return g.rung
}

// moveLocked commits a rung transition and queues subscriber delivery.
func (g *Governor) moveLocked(from, to Rung, p float64, now time.Time) {
	g.residency[from] += now.Sub(g.enteredAt)
	g.rung = to
	g.enteredAt = now
	g.belowSince = time.Time{}
	g.entries[to]++
	if to > g.maxRung {
		g.maxRung = to
	}
	g.cfg.Logger.Info("memory ladder transition",
		"from", from.String(), "to", to.String(),
		"pressure", fmt.Sprintf("%.3f", p), "limit_bytes", g.cfg.Limit)
	g.pendingMu.Lock()
	g.pendingTs = append(g.pendingTs, transition{from, to})
	g.pendingMu.Unlock()
}

// notify delivers queued transitions outside g.mu. Delivery order is
// transition order; a subscriber added later misses earlier
// transitions, which is fine — it reads the current rung on wiring.
func (g *Governor) notify() {
	g.pendingMu.Lock()
	ts := g.pendingTs
	g.pendingTs = nil
	g.pendingMu.Unlock()
	if len(ts) == 0 {
		return
	}
	g.mu.Lock()
	subs := append([]func(from, to Rung){}, g.subscribers...)
	g.mu.Unlock()
	for _, t := range ts {
		for _, fn := range subs {
			fn(t.from, t.to)
		}
	}
}

// Snapshot captures the full governor state.
func (g *Governor) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	acct, sources := g.accountedLocked()
	heap := g.lastHeap
	worst := acct
	if heap > worst {
		worst = heap
	}
	now := time.Now()
	s := Snapshot{
		LimitBytes:     g.cfg.Limit,
		HeapBytes:      heap,
		AccountedBytes: acct,
		InflightBytes:  g.inflight,
		Sources:        sources,
		Pressure:       float64(worst) / float64(g.cfg.Limit),
		Rung:           g.rung.String(),
		RungLevel:      int(g.rung),
		RungEntries:    make(map[string]int64, NumRungs),
		RungSeconds:    make(map[string]float64, NumRungs),
		MaxRung:        g.maxRung.String(),
		HeapHighWater:  g.heapHigh,
	}
	for i := 0; i < NumRungs; i++ {
		d := g.residency[i]
		if Rung(i) == g.rung {
			d += now.Sub(g.enteredAt)
		}
		s.RungEntries[Rung(i).String()] = g.entries[i]
		s.RungSeconds[Rung(i).String()] = d.Seconds()
	}
	return s
}
