// Package cachesim implements a generic set-associative cache model with
// pluggable replacement policies, per-stream statistics, bypass support,
// and observer hooks for characterization. It is the offline LLC simulator
// of the paper (Section 2) and also serves as the building block for the
// render-cache complex in front of the LLC (internal/rendercache) — each
// render cache is an instance of this model with an LRU policy and a
// downstream sink.
package cachesim

import (
	"fmt"

	"gspc/internal/stream"
)

// Geometry describes a cache organization.
type Geometry struct {
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// BlockSize is the line size in bytes (64 in all paper configurations).
	BlockSize int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int { return g.SizeBytes / (g.Ways * g.BlockSize) }

// Validate reports a descriptive error for malformed geometries.
func (g Geometry) Validate() error {
	switch {
	case g.BlockSize <= 0:
		return fmt.Errorf("cachesim: block size %d must be positive", g.BlockSize)
	case g.Ways <= 0:
		return fmt.Errorf("cachesim: associativity %d must be positive", g.Ways)
	case g.SizeBytes <= 0:
		return fmt.Errorf("cachesim: size %d must be positive", g.SizeBytes)
	case g.SizeBytes%(g.Ways*g.BlockSize) != 0:
		return fmt.Errorf("cachesim: size %d is not a multiple of ways*block (%d)", g.SizeBytes, g.Ways*g.BlockSize)
	}
	return nil
}

// String renders the geometry as e.g. "8MB/16w/64B".
func (g Geometry) String() string {
	return fmt.Sprintf("%s/%dw/%dB", formatSize(g.SizeBytes), g.Ways, g.BlockSize)
}

func formatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Policy is a replacement policy attached to a Cache. The cache owns tags,
// validity, and dirty bits; the policy owns all replacement state, which
// it allocates in Reset. All callbacks receive the access that triggered
// them so stream-aware policies can key on the stream kind.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset (re)allocates replacement state for a cache with the given
	// number of sets and ways and clears any learned state.
	Reset(sets, ways int)
	// Hit is invoked when access a hits the block at (set, way).
	Hit(set, way int, a stream.Access)
	// Fill is invoked after a missing block is installed at (set, way).
	Fill(set, way int, a stream.Access)
	// Victim selects the way to evict from a full set to make room for
	// access a. Returning a negative way bypasses the fill: the access is
	// counted as a miss and nothing is installed.
	Victim(set int, a stream.Access) int
	// Evict is invoked when the valid block at (set, way) is removed,
	// before the replacement block (if any) is installed.
	Evict(set, way int)
}

// EventType discriminates observer events.
type EventType uint8

// Observer event types. For a miss that evicts a valid block, observers
// see EvEvict (carrying the victim's tag) followed by EvFill.
const (
	EvHit EventType = iota
	EvFill
	EvEvict
	EvBypass
)

// Event is delivered to observers on every cache transaction.
type Event struct {
	Type EventType
	// Access is the triggering access (for EvEvict it is the access whose
	// fill displaced the victim).
	Access stream.Access
	// Set and Way locate the affected block. Way is -1 for EvBypass.
	Set, Way int
	// Tag is the block number of the affected block; for EvEvict it is
	// the victim's block number.
	Tag uint64
	// Dirty is set on EvEvict when the victim required a writeback.
	Dirty bool
}

// Observer receives cache events. Characterization metrics (stream reuse,
// epochs, death ratios) are implemented as observers in internal/analysis.
type Observer interface {
	Observe(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Stats aggregates access outcomes, overall and per stream kind.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Bypasses   int64 // subset of Misses that did not allocate
	Evictions  int64
	Writebacks int64 // dirty evictions
	// SampledSkips counts accesses dropped by set sampling before any
	// other counter or policy state was touched; they are not part of
	// Accesses. Always zero on an unsampled cache.
	SampledSkips int64

	KindAccesses [stream.NumKinds]int64
	KindHits     [stream.NumKinds]int64
	KindMisses   [stream.NumKinds]int64
}

// HitRate returns Hits/Accesses, or 0 when there were no accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// KindHitRate returns the hit rate restricted to stream kind k.
func (s *Stats) KindHitRate(k stream.Kind) float64 {
	if s.KindAccesses[k] == 0 {
		return 0
	}
	return float64(s.KindHits[k]) / float64(s.KindAccesses[k])
}

type block struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a set-associative cache with a pluggable replacement policy.
// It implements stream.Sink so it can terminate a pipeline of sinks.
type Cache struct {
	geom       Geometry
	sets, ways int
	blockShift uint
	blocks     []block
	policy     Policy

	// indexSets is the set count addresses map through (the geometry's
	// full count). It equals sets unless the cache is set-sampled, in
	// which case sets is the sampled subset size, storage and policy
	// state are in compact sampled-set space, and sampleMap translates
	// a full-geometry set index to its compact index (-1 = unsampled).
	indexSets int
	sample    SetSample
	sampleMap []int32
	// setAcc counts accesses per sampled set, feeding the variance
	// estimate in SampleReport. Nil on unsampled caches.
	setAcc []int64

	// bypassKind[k] forces accesses of kind k to bypass the cache
	// entirely (they are counted as misses and forwarded downstream).
	// This implements the paper's "uncached displayable color" (UCD).
	bypassKind [stream.NumKinds]bool

	observers []Observer

	// Downstream, when non-nil, receives a read access for every miss
	// (demand fill or bypass) and a write access for every dirty
	// eviction. This is how render caches feed the LLC.
	Downstream stream.Sink
	// NoFetchOnWrite suppresses the downstream demand fetch for write
	// misses: the block is allocated and validated locally (write
	// combining). Color pipelines write whole tiles, so the render
	// target cache never reads the old contents from the LLC; its
	// stores reach downstream only as writebacks.
	NoFetchOnWrite bool
	// WritebackKind is the stream kind attached to writeback accesses
	// emitted downstream. Render caches serve a single stream, so the
	// kind is a property of the cache.
	WritebackKind stream.Kind

	// Stats accumulates outcome counters.
	Stats Stats
}

// New constructs a cache with the given geometry and policy. It panics on
// an invalid geometry (a programming error, not a runtime condition).
func New(geom Geometry, policy Policy) *Cache {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		geom:      geom,
		sets:      geom.Sets(),
		indexSets: geom.Sets(),
		ways:      geom.Ways,
		policy:    policy,
	}
	for 1<<c.blockShift < geom.BlockSize {
		c.blockShift++
	}
	if 1<<c.blockShift != geom.BlockSize {
		panic(fmt.Sprintf("cachesim: block size %d is not a power of two", geom.BlockSize))
	}
	c.blocks = make([]block, c.sets*c.ways)
	policy.Reset(c.sets, c.ways)
	return c
}

// Geometry returns the cache organization.
func (c *Cache) Geometry() Geometry { return c.geom }

// Sets returns the number of simulated sets: the geometry's count, or
// the sampled subset size for a set-sampled cache. Observers and
// policies are sized and indexed by this count.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetBypass configures stream kind k to bypass the cache when on is true.
func (c *Cache) SetBypass(k stream.Kind, on bool) {
	c.bypassKind[k] = on
}

// AddObserver registers an observer for cache events.
func (c *Cache) AddObserver(o Observer) {
	c.observers = append(c.observers, o)
}

// BlockNumber returns the block number (tag) for a byte address.
func (c *Cache) BlockNumber(addr uint64) uint64 { return addr >> c.blockShift }

// SetIndex returns the set an address maps to in the full geometry
// (not the compact sampled index).
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.blockShift) % uint64(c.indexSets))
}

// Lookup reports whether addr is resident and, if so, its location.
// The returned set is the simulated (compact) index, consistent with
// BlockAt; on a sampled cache an address mapping to an unsampled set
// reports (-1, -1, false).
func (c *Cache) Lookup(addr uint64) (set, way int, ok bool) {
	bn := c.BlockNumber(addr)
	set = int(bn % uint64(c.indexSets))
	if c.sampleMap != nil {
		cs := c.sampleMap[set]
		if cs < 0 {
			return -1, -1, false
		}
		set = int(cs)
	}
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if b := &c.blocks[base+w]; b.valid && b.tag == bn {
			return set, w, true
		}
	}
	return set, -1, false
}

// BlockAt returns (tag, valid, dirty) for the block at (set, way).
func (c *Cache) BlockAt(set, way int) (tag uint64, valid, dirty bool) {
	b := &c.blocks[set*c.ways+way]
	return b.tag, b.valid, b.dirty
}

// Occupancy returns the number of valid blocks.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.blocks {
		if c.blocks[i].valid {
			n++
		}
	}
	return n
}

// Emit implements stream.Sink by performing the access and discarding the
// hit/miss outcome.
func (c *Cache) Emit(a stream.Access) { c.Access(a) }

// Access performs one cache access and returns whether it hit. Misses
// always allocate (the paper's LLC fills every miss) unless the stream is
// configured to bypass or the policy declines a victim.
func (c *Cache) Access(a stream.Access) bool {
	bn := a.Addr >> c.blockShift
	set := int(bn % uint64(c.indexSets))
	if c.sampleMap != nil {
		cs := c.sampleMap[set]
		if cs < 0 {
			c.Stats.SampledSkips++
			return false
		}
		c.setAcc[cs]++
		set = int(cs)
	}
	c.Stats.Accesses++
	c.Stats.KindAccesses[a.Kind]++
	base := set * c.ways

	// Lookup.
	for w := 0; w < c.ways; w++ {
		b := &c.blocks[base+w]
		if b.valid && b.tag == bn {
			c.Stats.Hits++
			c.Stats.KindHits[a.Kind]++
			if a.Write {
				b.dirty = true
			}
			c.policy.Hit(set, w, a)
			c.notify(Event{Type: EvHit, Access: a, Set: set, Way: w, Tag: bn})
			return true
		}
	}

	// Miss.
	c.Stats.Misses++
	c.Stats.KindMisses[a.Kind]++
	if c.bypassKind[a.Kind] {
		// The access skips the cache entirely: reads fetch from
		// downstream, writes go straight through.
		c.Stats.Bypasses++
		if c.Downstream != nil {
			c.Downstream.Emit(stream.Access{Addr: a.Addr, Kind: a.Kind, Write: a.Write})
		}
		c.notify(Event{Type: EvBypass, Access: a, Set: set, Way: -1, Tag: bn})
		return false
	}
	if c.Downstream != nil && !(a.Write && c.NoFetchOnWrite) {
		// Demand fill: the block is fetched from downstream regardless of
		// whether the triggering access is a load or a store (write
		// allocate); store data reaches downstream later as a writeback.
		c.Downstream.Emit(stream.Access{Addr: a.Addr, Kind: a.Kind})
	}

	// Choose a frame: invalid way first, else ask the policy.
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.blocks[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set, a)
		if way < 0 {
			c.Stats.Bypasses++
			c.notify(Event{Type: EvBypass, Access: a, Set: set, Way: -1, Tag: bn})
			return false
		}
		if way >= c.ways {
			panic(fmt.Sprintf("cachesim: policy %s returned way %d of %d", c.policy.Name(), way, c.ways))
		}
		v := &c.blocks[base+way]
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.Writebacks++
			if c.Downstream != nil {
				c.Downstream.Emit(stream.Access{
					Addr:  v.tag << c.blockShift,
					Kind:  c.WritebackKind,
					Write: true,
				})
			}
		}
		c.policy.Evict(set, way)
		c.notify(Event{Type: EvEvict, Access: a, Set: set, Way: way, Tag: v.tag, Dirty: v.dirty})
	}

	b := &c.blocks[base+way]
	b.tag = bn
	b.valid = true
	b.dirty = a.Write
	c.policy.Fill(set, way, a)
	c.notify(Event{Type: EvFill, Access: a, Set: set, Way: way, Tag: bn})
	return false
}

// DrainWritebacks emits a downstream write for every dirty block and
// marks it clean. Render caches call this at end of frame so that partial
// tiles still resident reach the LLC trace, mirroring a frame-boundary
// flush.
func (c *Cache) DrainWritebacks() {
	if c.Downstream == nil {
		return
	}
	for i := range c.blocks {
		b := &c.blocks[i]
		if b.valid && b.dirty {
			c.Downstream.Emit(stream.Access{
				Addr:  b.tag << c.blockShift,
				Kind:  c.WritebackKind,
				Write: true,
			})
			b.dirty = false
		}
	}
}

// Reset invalidates all blocks, clears statistics, and resets the policy.
func (c *Cache) Reset() {
	for i := range c.blocks {
		c.blocks[i] = block{}
	}
	c.Stats = Stats{}
	for i := range c.setAcc {
		c.setAcc[i] = 0
	}
	c.policy.Reset(c.sets, c.ways)
}

// ResetCounters zeroes the outcome counters (Stats and the per-set
// access counts behind SampleReport) while leaving cache contents,
// policy state, and observers untouched — the warmup/measured boundary
// of interval-sampled replays.
func (c *Cache) ResetCounters() {
	c.Stats = Stats{}
	for i := range c.setAcc {
		c.setAcc[i] = 0
	}
}

func (c *Cache) notify(ev Event) {
	for _, o := range c.observers {
		o.Observe(ev)
	}
}
