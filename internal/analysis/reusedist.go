package analysis

import (
	"gspc/internal/stream"
)

// ReuseHistogram characterizes a trace's temporal locality: for every
// access that re-touches a block, the *stack distance* (number of
// distinct blocks referenced since the previous touch) is bucketed in
// powers of two. The stack distance directly predicts fully-associative
// LRU behavior — an access hits in a cache of capacity C blocks iff its
// stack distance is below C — making the histogram a capacity-planning
// view of the workload (the characterization behind the paper's choice
// of a multi-megabyte LLC).
type ReuseHistogram struct {
	// Buckets[i] counts re-references with stack distance in
	// [2^i, 2^(i+1)); Buckets[0] covers distances 0 and 1.
	Buckets []int64
	// Cold counts first-touch accesses (infinite distance).
	Cold int64
	// Total is the number of accesses measured.
	Total int64
}

// maxBucketBits bounds the histogram at 2^30 distinct blocks.
const maxBucketBits = 31

// fenwick is a binary indexed tree over trace positions, counting the
// "most recent position of each distinct block" markers. Prefix sums
// give the number of distinct blocks touched since any past position in
// O(log n).
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += int64(delta)
	}
}

// sum returns the total of positions [0, i].
func (f *fenwick) sum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// StackDistances computes the LRU stack distance of every access in the
// trace (block granularity, 64-byte blocks by default via blockShift).
// The result slice parallels the trace; first touches get -1. Runs in
// O(n log n) time and O(n) space.
func StackDistances(tr []stream.Access, blockShift uint) []int64 {
	out := make([]int64, len(tr))
	last := make(map[uint64]int, len(tr)/4+1)
	fw := newFenwick(len(tr))
	for i, a := range tr {
		bn := a.Addr >> blockShift
		if j, ok := last[bn]; ok {
			// Distinct blocks touched in (j, i): those whose marker sits
			// after position j.
			out[i] = fw.sum(len(tr)-1) - fw.sum(j)
			fw.add(j, -1)
		} else {
			out[i] = -1
		}
		fw.add(i, 1)
		last[bn] = i
	}
	return out
}

// NewReuseHistogram builds the power-of-two histogram of a trace's stack
// distances, optionally restricted to one stream kind (pass
// stream.NumKinds for all streams).
func NewReuseHistogram(tr []stream.Access, blockShift uint, only stream.Kind) *ReuseHistogram {
	h := &ReuseHistogram{Buckets: make([]int64, maxBucketBits)}
	dists := StackDistances(tr, blockShift)
	for i, a := range tr {
		if only != stream.NumKinds && a.Kind != only {
			continue
		}
		h.Total++
		d := dists[i]
		if d < 0 {
			h.Cold++
			continue
		}
		h.Buckets[bucketOf(d)]++
	}
	return h
}

func bucketOf(d int64) int {
	b := 0
	for d > 1 && b < maxBucketBits-1 {
		d >>= 1
		b++
	}
	return b
}

// HitRateAtCapacity returns the fully-associative LRU hit rate the trace
// would enjoy at a capacity of the given number of blocks: the fraction
// of accesses whose stack distance falls below it. Bucket granularity
// makes this a (slightly pessimistic) lower bound within a bucket.
func (h *ReuseHistogram) HitRateAtCapacity(blocks int64) float64 {
	if h.Total == 0 {
		return 0
	}
	var hits int64
	for b, n := range h.Buckets {
		hi := int64(1) << uint(b+1) // exclusive upper bound of the bucket
		if b == 0 {
			hi = 2
		}
		if hi <= blocks {
			hits += n
		}
	}
	return float64(hits) / float64(h.Total)
}

// ColdFraction returns the compulsory-miss fraction.
func (h *ReuseHistogram) ColdFraction() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Cold) / float64(h.Total)
}

// MedianDistance returns the median finite stack distance (bucket upper
// bound), or -1 when no access has a finite distance.
func (h *ReuseHistogram) MedianDistance() int64 {
	var finite int64
	for _, n := range h.Buckets {
		finite += n
	}
	if finite == 0 {
		return -1
	}
	var seen int64
	for b, n := range h.Buckets {
		seen += n
		if seen*2 >= finite {
			return int64(1) << uint(b+1)
		}
	}
	return int64(1) << maxBucketBits
}
