// Command gspcdiag prints a per-frame diagnosis of the GSPC policy
// against DRRIP and Belady's optimal: miss deltas, render-target
// consumption amplification, per-stream hit movement, and the insertion
// decisions GSPC made. It is the tool to reach for when a workload
// profile behaves unexpectedly.
//
//	gspcdiag -apps AssnCreed,DMC [-frames 2] [-scale 0.25] [-llc 768KB]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gspc/internal/analysis"
	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

func run(tr []stream.Access, pol cachesim.Policy, geom cachesim.Geometry, ucd bool) (*cachesim.Cache, *analysis.Tracker) {
	c := cachesim.New(geom, pol)
	if ucd {
		c.SetBypass(stream.Display, true)
	}
	tk := analysis.Attach(c)
	for _, a := range tr {
		c.Access(a)
	}
	return c, tk
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = s[:len(s)-2]
	}
	v, err := strconv.Atoi(s)
	return v * mult, err
}

func main() {
	var (
		apps   = flag.String("apps", "AssnCreed", "comma-separated application abbreviations")
		frames = flag.Int("frames", 1, "frames per application")
		scale  = flag.Float64("scale", 0.25, "linear frame scale")
		llc    = flag.String("llc", "768KB", "LLC capacity")
	)
	flag.Parse()
	size, err := parseSize(*llc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gspcdiag: bad -llc:", err)
		os.Exit(2)
	}
	geom := cachesim.Geometry{SizeBytes: size, Ways: 16, BlockSize: 64}

	for _, ab := range strings.Split(*apps, ",") {
		p, ok := workload.ProfileByAbbrev(strings.TrimSpace(ab))
		if !ok {
			fmt.Fprintf(os.Stderr, "gspcdiag: unknown application %q\n", ab)
			os.Exit(2)
		}
		n := *frames
		if n > p.Frames {
			n = p.Frames
		}
		for idx := 0; idx < n; idx++ {
			job := workload.FrameJob{App: p, Index: idx}
			tr := trace.GenerateFrame(job, *scale)

			cd, td := run(tr, policy.NewDRRIP(2), geom, false)
			g := core.New(core.DefaultParams(core.VariantGSPC))
			cg, tg := run(tr, g, geom, true)
			_, to := run(tr, belady.NewOPT(belady.NextUse(tr, 6)), geom, false)

			fmt.Printf("%s (%d LLC accesses, LLC %s)\n", job.ID(), len(tr), geom)
			fmt.Printf("  misses: DRRIP %d, GSPC+UCD %d (%+.1f%%)\n",
				cd.Stats.Misses, cg.Stats.Misses,
				100*float64(cg.Stats.Misses-cd.Stats.Misses)/float64(cd.Stats.Misses))
			fmt.Printf("  rt->tex consumption:  DRRIP %4.1f%%  GSPC %4.1f%%  Belady %4.1f%%\n",
				100*td.RTConsumptionRate(), 100*tg.RTConsumptionRate(), 100*to.RTConsumptionRate())
			fmt.Printf("  texture hit rate:     DRRIP %4.1f%%  GSPC %4.1f%%  Belady %4.1f%%\n",
				100*td.KindHitRate(stream.Texture), 100*tg.KindHitRate(stream.Texture), 100*to.KindHitRate(stream.Texture))
			for _, k := range []stream.Kind{stream.Texture, stream.RT, stream.Z, stream.HiZ, stream.Vertex} {
				fmt.Printf("  %-8s hits: DRRIP %7d  GSPC %7d  (%+d)\n",
					k, td.KindHits(k), tg.KindHits(k), tg.KindHits(k)-td.KindHits(k))
			}
			in := g.Insertions
			fmt.Printf("  GSPC insertions: rt 3/2/0 = %d/%d/%d   tex 3/0 = %d/%d   z 3/2 = %d/%d\n\n",
				in.RTDistant, in.RTLong, in.RTZero, in.TexDistant, in.TexZero, in.ZDistant, in.ZLong)
		}
	}
}
