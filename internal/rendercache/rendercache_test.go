package rendercache

import (
	"testing"

	"gspc/internal/stream"
)

type capture struct {
	all []stream.Access
}

func (c *capture) Emit(a stream.Access) { c.all = append(c.all, a) }

func (c *capture) byKind(k stream.Kind) []stream.Access {
	var out []stream.Access
	for _, a := range c.all {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

func TestDefaultConfigSizes(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name string
		geom int
		ways int
	}{
		{"vertexindex", cfg.VertexIndex.SizeBytes, 16},
		{"vertex", cfg.Vertex.SizeBytes, 128},
		{"hiz", cfg.HiZ.SizeBytes, 24},
		{"stencil", cfg.Stencil.SizeBytes, 16},
		{"rt", cfg.RT.SizeBytes, 24},
		{"z", cfg.Z.SizeBytes, 32},
		{"texl3", cfg.TexL3.SizeBytes, 48},
	}
	wantSizes := []int{1 << 10, 16 << 10, 12 << 10, 16 << 10, 24 << 10, 32 << 10, 384 << 10}
	for i, c := range cases {
		if c.geom != wantSizes[i] {
			t.Errorf("%s size = %d, want %d", c.name, c.geom, wantSizes[i])
		}
	}
	if cfg.Vertex.Ways != 128 || cfg.TexL3.Ways != 48 || cfg.Z.Ways != 32 {
		t.Error("paper associativities not honored")
	}
}

func TestScaledFloorsAtOneSet(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.0001)
	for _, g := range []int{cfg.VertexIndex.Sets(), cfg.Vertex.Sets(), cfg.TexL3.Sets()} {
		if g < 1 {
			t.Error("scaled cache below one set")
		}
	}
	if err := cfg.TexL3.Validate(); err != nil {
		t.Errorf("scaled geometry invalid: %v", err)
	}
}

func TestScaledProportional(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.25)
	if cfg.TexL3.SizeBytes != 96<<10 {
		t.Errorf("texL3 at 1/4 = %d, want 96KB", cfg.TexL3.SizeBytes)
	}
}

func TestMissFetchReachesOutput(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.Z(0x1000, false)
	zs := out.byKind(stream.Z)
	if len(zs) != 1 || zs[0].Write {
		t.Fatalf("Z miss output = %+v", zs)
	}
	// Second access hits in the Z cache: no new LLC traffic.
	rc.Z(0x1000, true)
	if len(out.byKind(stream.Z)) != 1 {
		t.Error("Z cache hit leaked to the LLC")
	}
}

func TestRTWriteValidateNoFetch(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.RT(0x2000, true)
	if n := len(out.byKind(stream.RT)); n != 0 {
		t.Errorf("RT write miss emitted %d accesses, want 0 (write validate)", n)
	}
	// A blending read miss does fetch.
	rc.RT(0x8000, false)
	if n := len(out.byKind(stream.RT)); n != 1 {
		t.Errorf("RT read miss emitted %d accesses, want 1", n)
	}
}

func TestDirtyRTWritebackOnFlush(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.RT(0x2000, true)
	rc.Flush()
	rts := out.byKind(stream.RT)
	if len(rts) != 1 || !rts[0].Write || rts[0].Addr != 0x2000 {
		t.Fatalf("flush output = %+v", rts)
	}
}

func TestTextureHierarchyChains(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.Texture(0x4000)
	// One L1 miss -> L2 miss -> L3 miss -> one LLC texture access.
	if n := len(out.byKind(stream.Texture)); n != 1 {
		t.Fatalf("texture miss produced %d LLC accesses, want 1", n)
	}
	// Hit in L1 now.
	rc.Texture(0x4000)
	if n := len(out.byKind(stream.Texture)); n != 1 {
		t.Error("texture hit leaked to the LLC")
	}
	st := rc.Stats()
	if st["texL1"].Hits != 1 || st["texL2"].Misses != 1 || st["texL3"].Misses != 1 {
		t.Errorf("hierarchy stats: L1 %+v L2 %+v L3 %+v", st["texL1"], st["texL2"], st["texL3"])
	}
}

func TestInvalidateTexturesDropsContentsKeepsStats(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.Texture(0x4000)
	before := rc.Stats()["texL1"]
	rc.InvalidateTextures()
	// Contents dropped: same address misses again.
	rc.Texture(0x4000)
	if n := len(out.byKind(stream.Texture)); n != 2 {
		t.Errorf("post-invalidate access produced %d LLC accesses, want 2 total", n)
	}
	after := rc.Stats()["texL1"]
	if after.Accesses < before.Accesses {
		t.Error("invalidate lost cumulative statistics")
	}
}

func TestDisplayColorWritebacks(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	// Writes are validated locally (no fetch) and reach the LLC only as
	// display-tagged writebacks on flush.
	rc.DisplayColor(0x6000, true)
	if len(out.byKind(stream.Display)) != 0 {
		t.Fatal("display write miss fetched through the LLC")
	}
	rc.Flush()
	ds := out.byKind(stream.Display)
	if len(ds) != 1 || !ds[0].Write || ds[0].Addr != 0x6000 {
		t.Fatalf("display writeback = %+v", ds)
	}
	// A blending read of the back buffer misses through to the LLC.
	rc.DisplayColor(0x9000, false)
	ds = out.byKind(stream.Display)
	if len(ds) != 2 || ds[1].Write {
		t.Fatalf("display read = %+v", ds)
	}
}

func TestOtherGoesStraightThrough(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.Other(0x7000)
	os := out.byKind(stream.Other)
	if len(os) != 1 || os[0].Write {
		t.Fatalf("other output = %+v", os)
	}
}

func TestVertexStreams(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.VertexIndex(0x100)
	rc.Vertex(0x9000)
	vs := out.byKind(stream.Vertex)
	if len(vs) != 2 {
		t.Fatalf("vertex misses = %d, want 2", len(vs))
	}
	// Both caches hold their block now.
	rc.VertexIndex(0x100)
	rc.Vertex(0x9000)
	if len(out.byKind(stream.Vertex)) != 2 {
		t.Error("vertex cache hits leaked to the LLC")
	}
}

func TestHiZAndStencilRouting(t *testing.T) {
	out := &capture{}
	rc := New(DefaultConfig(), out)
	rc.HiZ(0xa000, false)
	rc.Stencil(0xb000, true)
	if len(out.byKind(stream.HiZ)) != 1 {
		t.Error("HiZ miss not forwarded")
	}
	// Stencil write miss fetches (no write-validate on stencil).
	if len(out.byKind(stream.Stencil)) != 1 {
		t.Error("stencil miss not forwarded")
	}
	rc.Flush()
	// The dirty stencil block writes back.
	var wb int
	for _, a := range out.byKind(stream.Stencil) {
		if a.Write {
			wb++
		}
	}
	if wb != 1 {
		t.Errorf("stencil writebacks = %d, want 1", wb)
	}
}
