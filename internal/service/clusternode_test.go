package service

// Tests for the node-mode surface the gspc-cluster coordinator drives:
// the /readyz JSON body, replica installation, cache-only probes, and
// the X-Gspc-Node response header.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gspc/internal/harness"
)

// resultBytes builds a schema-valid serialized result, as another
// node's engine would have produced it.
func resultBytes(t *testing.T, experiment string) []byte {
	t.Helper()
	b, err := json.Marshal(&harness.Result{
		SchemaVersion: harness.ResultSchemaVersion,
		Experiment:    experiment,
		Title:         "replica stub",
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func putReplica(t *testing.T, url, key, experiment, runID string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/replicas/"+key, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Gspc-Experiment", experiment)
	req.Header.Set("X-Gspc-Run", runID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func postCacheOnly(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Gspc-Cache-Only", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestReplicaInstallAndCacheOnly(t *testing.T) {
	var calls int64
	ts, e := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(&calls)})

	req := Request{Experiment: "fig12", Apps: []string{"Dirt"}}
	nreq, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := nreq.Key()

	// Cache-only before any install: 404, and crucially no simulation.
	resp, _ := postCacheOnly(t, ts.URL, `{"experiment":"fig12","apps":["Dirt"]}`)
	if resp.StatusCode != 404 {
		t.Fatalf("cache-only miss = %d, want 404", resp.StatusCode)
	}
	if calls != 0 {
		t.Fatalf("cache-only probe ran %d simulations, want 0", calls)
	}

	body := resultBytes(t, "fig12")
	if resp := putReplica(t, ts.URL, key, "fig12", "run-000042@peer", body); resp.StatusCode != 204 {
		t.Fatalf("replica install = %d, want 204", resp.StatusCode)
	}

	// The replica now serves cache-only probes byte-identically.
	resp, got := postCacheOnly(t, ts.URL, `{"experiment":"fig12","apps":["Dirt"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("cache-only after install = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Gspc-Cache") != "hit" {
		t.Errorf("cache-only disposition = %q, want hit", resp.Header.Get("X-Gspc-Cache"))
	}
	if strings.TrimRight(got, "\n") != string(body) {
		t.Errorf("replica body not byte-identical: got %q want %q", got, body)
	}
	if calls != 0 {
		t.Fatalf("replica-served probe ran %d simulations, want 0", calls)
	}

	// It also seeds serve-stale and the normal synchronous path.
	rep, err := e.Do(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cached || !bytes.Equal(rep.Body, body) {
		t.Errorf("Do after replica: cached=%v body=%q", rep.Cached, rep.Body)
	}

	m := e.Metrics()
	if m.ReplicasInstalled != 1 {
		t.Errorf("replicas_installed = %d, want 1", m.ReplicasInstalled)
	}
}

func TestReplicaInstallRejectsBadBodies(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(new(int64))})

	if resp := putReplica(t, ts.URL, "k1", "fig12", "r", []byte("not json")); resp.StatusCode != 400 {
		t.Errorf("garbage replica = %d, want 400", resp.StatusCode)
	}
	future, _ := json.Marshal(&harness.Result{SchemaVersion: 99, Experiment: "fig12"})
	if resp := putReplica(t, ts.URL, "k2", "fig12", "r", future); resp.StatusCode != 400 {
		t.Errorf("future-schema replica = %d, want 400", resp.StatusCode)
	}
	if err := (&Engine{}).InstallReplica("", "fig12", "r", nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestNodeNameHeader(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, CacheEntries: 8, Run: countingRunner(new(int64))})
	srv := NewServer(e)
	srv.NodeName = "gspc-7"
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp := getJSON(t, ts.URL+"/healthz", nil)
	if got := resp.Header.Get("X-Gspc-Node"); got != "gspc-7" {
		t.Errorf("X-Gspc-Node = %q, want gspc-7", got)
	}
}
