package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal, dependency-free implementation of the
// Prometheus text exposition format (version 0.0.4): concurrent
// histogram and labeled-counter primitives plus a writer that renders
// metric families with HELP/TYPE headers. It implements exactly the
// subset the server needs — no client_golang, per the repo's
// no-new-dependencies rule.

// Histogram is a concurrent fixed-bucket histogram. Observations are
// lock-free: one atomic add on the bucket, the count, and a CAS loop
// folding the value into the float sum.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The +Inf bucket is implicit.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view for exposition:
// cumulative per-bucket counts (the +Inf bucket last), the total count,
// and the sum of observed values.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra entry for +Inf
	Counts []int64   // cumulative
	Count  int64
	Sum    float64
}

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.buckets))}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	// The +Inf cumulative count is the authoritative total: scrapes racing
	// observations must stay internally monotone.
	s.Count = s.Counts[len(s.Counts)-1]
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// CounterVec is a set of monotonic counters keyed by one label value —
// e.g. LLC hits by stream kind. Lookups take a read lock; the common
// path (label already present) never writes the map.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// NewCounterVec builds an empty vector.
func NewCounterVec() *CounterVec { return &CounterVec{m: map[string]*atomic.Int64{}} }

// Add increments the counter for the label value.
func (c *CounterVec) Add(label string, n int64) {
	c.mu.RLock()
	ctr := c.m[label]
	c.mu.RUnlock()
	if ctr == nil {
		c.mu.Lock()
		if ctr = c.m[label]; ctr == nil {
			ctr = &atomic.Int64{}
			c.m[label] = ctr
		}
		c.mu.Unlock()
	}
	ctr.Add(n)
}

// Snapshot returns the current values by label.
func (c *CounterVec) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// Exposition accumulates Prometheus text-format output. Families must
// be written as a unit (header then every series), which the methods
// enforce by construction.
type Exposition struct {
	b bytes.Buffer
}

// ContentType is the exposition format content type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (e *Exposition) header(name, typ, help string) {
	fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.b, "# TYPE %s %s\n", name, typ)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// Counter writes a single-series counter family.
func (e *Exposition) Counter(name, help string, v float64) {
	e.header(name, "counter", help)
	fmt.Fprintf(&e.b, "%s %s\n", name, formatValue(v))
}

// Gauge writes a single-series gauge family.
func (e *Exposition) Gauge(name, help string, v float64) {
	e.header(name, "gauge", help)
	fmt.Fprintf(&e.b, "%s %s\n", name, formatValue(v))
}

// CounterVec writes a counter family with one series per label value,
// sorted for a deterministic exposition.
func (e *Exposition) CounterVec(name, help, label string, vals map[string]int64) {
	e.vec(name, "counter", help, label, vals)
}

// GaugeVec writes a gauge family with one series per label value.
func (e *Exposition) GaugeVec(name, help, label string, vals map[string]int64) {
	e.vec(name, "gauge", help, label, vals)
}

func (e *Exposition) vec(name, typ, help, label string, vals map[string]int64) {
	e.header(name, typ, help)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&e.b, "%s{%s=\"%s\"} %d\n", name, label, escapeLabel(k), vals[k])
	}
}

// Histogram writes a histogram family: cumulative _bucket series with
// le labels (ending at +Inf), then _sum and _count.
func (e *Exposition) Histogram(name, help string, s HistogramSnapshot) {
	e.header(name, "histogram", help)
	for i, c := range s.Counts {
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		fmt.Fprintf(&e.b, "%s_bucket{le=%q} %d\n", name, le, c)
	}
	fmt.Fprintf(&e.b, "%s_sum %s\n", name, formatValue(s.Sum))
	fmt.Fprintf(&e.b, "%s_count %d\n", name, s.Count)
}

// HistogramVec writes one histogram family with a fixed label dimension:
// for each label value (sorted, so the exposition is deterministic) the
// cumulative _bucket series, then _sum and _count carrying the same
// label. Cardinality is bounded by the caller passing a fixed key set —
// there is no dynamic registration.
func (e *Exposition) HistogramVec(name, help, label string, snaps map[string]HistogramSnapshot) {
	e.header(name, "histogram", help)
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := snaps[k]
		lv := escapeLabel(k)
		for i, c := range s.Counts {
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatValue(s.Bounds[i])
			}
			fmt.Fprintf(&e.b, "%s_bucket{%s=\"%s\",le=%q} %d\n", name, label, lv, le, c)
		}
		fmt.Fprintf(&e.b, "%s_sum{%s=\"%s\"} %s\n", name, label, lv, formatValue(s.Sum))
		fmt.Fprintf(&e.b, "%s_count{%s=\"%s\"} %d\n", name, label, lv, s.Count)
	}
}

// Bytes returns the accumulated exposition.
func (e *Exposition) Bytes() []byte { return e.b.Bytes() }
