// Command llcstat characterizes a stored LLC trace: stream mix, and the
// hit rates and reuse metrics of a chosen policy on a chosen LLC
// geometry. It is the offline companion of tracegen.
//
// Usage:
//
//	llcstat -trace frame.trc [-llc 768KB] [-ways 16] [-policy GSPC] [-ucd]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gspc/internal/analysis"
	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/trace"
)

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = s[:len(s)-2]
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("want a size like 8MB or 768KB")
	}
	return v * mult, nil
}

func makePolicy(name string, tr []stream.Access) (cachesim.Policy, error) {
	switch strings.ToUpper(name) {
	case "DRRIP":
		return policy.NewDRRIP(2), nil
	case "SRRIP":
		return policy.NewSRRIP(2), nil
	case "NRU":
		return policy.NewNRU(), nil
	case "LRU":
		return policy.NewLRU(), nil
	case "GS-DRRIP", "GSDRRIP":
		return policy.NewGSDRRIP(2), nil
	case "SHIP-MEM", "SHIP":
		return policy.NewSHiPMem(4), nil
	case "GSPZTC":
		return core.New(core.DefaultParams(core.VariantGSPZTC)), nil
	case "GSPZTC+TSE", "TSE":
		return core.New(core.DefaultParams(core.VariantGSPZTCTSE)), nil
	case "GSPC":
		return core.New(core.DefaultParams(core.VariantGSPC)), nil
	case "BELADY", "OPT":
		return belady.NewOPT(belady.NextUse(tr, 6)), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file from tracegen")
		llc       = flag.String("llc", "768KB", "LLC capacity (e.g. 8MB, 768KB)")
		ways      = flag.Int("ways", 16, "LLC associativity")
		polName   = flag.String("policy", "DRRIP", "replacement policy")
		ucd       = flag.Bool("ucd", false, "bypass the display stream (uncached displayable color)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "llcstat: -trace is required")
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llcstat:", err)
		os.Exit(1)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "llcstat:", err)
		os.Exit(1)
	}

	size, err := parseSize(*llc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llcstat: bad -llc:", err)
		os.Exit(2)
	}
	pol, err := makePolicy(*polName, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llcstat:", err)
		os.Exit(2)
	}

	c := cachesim.New(cachesim.Geometry{SizeBytes: size, Ways: *ways, BlockSize: 64}, pol)
	if *ucd {
		c.SetBypass(stream.Display, true)
	}
	tk := analysis.Attach(c)
	for _, a := range tr {
		c.Access(a)
	}

	fmt.Printf("trace: %s (%d accesses)\n", *tracePath, len(tr))
	fmt.Printf("llc:   %s, policy %s\n\n", c.Geometry(), pol.Name())
	fmt.Printf("%-10s %10s %10s %8s\n", "stream", "accesses", "hits", "hit%")
	for _, k := range stream.Kinds() {
		acc := c.Stats.KindAccesses[k]
		if acc == 0 {
			continue
		}
		fmt.Printf("%-10s %10d %10d %7.1f%%\n", k, acc, c.Stats.KindHits[k], 100*float64(c.Stats.KindHits[k])/float64(acc))
	}
	fmt.Printf("%-10s %10d %10d %7.1f%%\n\n", "total", c.Stats.Accesses, c.Stats.Hits, 100*c.Stats.HitRate())
	fmt.Printf("misses: %d  evictions: %d  writebacks: %d\n", c.Stats.Misses, c.Stats.Evictions, c.Stats.Writebacks)
	fmt.Printf("texture reuse: inter-stream hits %d, intra-stream hits %d\n", tk.InterTexHits, tk.IntraTexHits)
	fmt.Printf("render targets: produced %d, consumed by samplers %d (%.1f%%)\n",
		tk.RTProduced, tk.RTConsumed, 100*tk.RTConsumptionRate())
	fmt.Printf("texture epoch death ratios: E0 %.2f  E1 %.2f  E2 %.2f\n",
		tk.TexDeathRatio(0), tk.TexDeathRatio(1), tk.TexDeathRatio(2))
	fmt.Printf("z epoch death ratios:       E0 %.2f  E1 %.2f  E2 %.2f\n",
		tk.ZDeathRatio(0), tk.ZDeathRatio(1), tk.ZDeathRatio(2))
}
