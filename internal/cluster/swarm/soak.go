package swarm

import (
	"runtime"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/leakcheck"
	"gspc/internal/membudget"
)

// weatherSystem is one entry in the soak's rolling weather palette.
type weatherSystem struct {
	name string
	spec faultinject.NetSpec
}

// weatherPalette is the set of link conditions the soak rolls across
// nodes. Rates are high enough to exercise every fault path within a
// 2-minute run; partitions are budgeted separately (at most one node
// partitioned at a time) so the cluster always has a quorum of clean
// links to keep serving through.
var weatherPalette = []weatherSystem{
	{"clear", faultinject.NetSpec{}},
	{"slow", faultinject.NetSpec{DelayRate: 0.7, Latency: 120 * time.Millisecond, Jitter: 80 * time.Millisecond}},
	{"lossy", faultinject.NetSpec{DropRate: 0.15, DelayRate: 0.3, Latency: 40 * time.Millisecond}},
	{"flaky", faultinject.NetSpec{ResetRate: 0.25, TruncateRate: 0.1}},
	{"choked", faultinject.NetSpec{BandwidthBps: 32 << 10}},
	{"refused", faultinject.NetSpec{Partition: faultinject.PartitionRefuse}},
	{"blackhole", faultinject.NetSpec{Partition: faultinject.PartitionBlackhole}},
}

// shiftWeather rolls new weather onto one random node's link. At most
// one link is partitioned at a time: a second partition draw downgrades
// to clearing the first instead, which keeps the run a test of
// partition *tolerance* rather than full outage behavior.
func (s *swarm) shiftWeather() {
	i := s.rng.Intn(len(s.proxies))
	w := weatherPalette[s.rng.Intn(len(weatherPalette))]
	if w.spec.Partition != faultinject.PartitionNone {
		for j, name := range s.weather {
			if j != i && (name == "refused" || name == "blackhole") {
				w = weatherPalette[0]
				break
			}
		}
	}
	if w.spec.Partition != faultinject.PartitionNone {
		s.rep.Partitions++
	}
	s.proxies[i].SetSpec(w.spec)
	s.weather[i] = w.name
	s.rep.WeatherShifts++
	s.cfg.Logger.Info("soak weather shift", "node", s.nodes[i].name, "weather", w.name)
}

// soak drives the duration-bounded soak: randomized traffic through the
// fault proxies under rolling weather and process chaos, with inline
// goroutine-hygiene sampling. The driver goroutine itself does all
// sampling — a sampler goroutine would count itself.
//
// Asserted at interval: no module goroutine parked on a sync primitive
// at one site past BlockedAfter (the stack-scan analogue of partial
// deadlock detection). Asserted at exit, after heal and quiesce: the
// same, plus zero module-goroutine growth over the post-boot baseline,
// and the usual sticky acked-run visibility and one-simulation
// coalescing contracts.
func (s *swarm) soak() {
	mon := leakcheck.NewMonitor(leakcheck.Options{Allow: []string{
		// Idle engine workers park forever receiving from their queue;
		// that is their steady state, not a deadlock.
		"(*Engine).worker",
	}})
	s.rep.GoroutineBaseline = mon.Baseline()
	s.rep.GoroutinePeak = s.rep.GoroutineBaseline
	s.rep.HeapBaselineBytes = mon.HeapBaseline()

	start := time.Now()
	end := start.Add(s.cfg.Duration)
	// Memory weather splits the run into a storm (oversized full-scale
	// submissions drive every node's ladder up) and a trailing calm the
	// ladders must recover through before the exit assertions.
	stormEnd := start.Add(s.cfg.Duration * 3 / 5)
	var lastWeather, lastBlocked, lastProof time.Time
	proofs := 0

	for time.Now().Before(end) {
		roll := s.rng.Float64()
		if s.cfg.MemWeather && time.Now().Before(stormEnd) && roll < 0.35 {
			s.opSubmitOversized()
		} else {
			switch {
			case roll < 0.40:
				s.opSubmitAsync()
			case roll < 0.55:
				s.opSubmitSync()
			case roll < 0.85:
				s.opStatusPoll()
			case roll < 0.90:
				s.opKill()
			case roll < 0.97:
				s.opRestart()
			case roll < 0.985:
				s.opDrain()
			default:
				s.opUndrain()
			}
		}
		s.rep.Ops++

		if n := mon.Sample(); n > s.rep.GoroutinePeak {
			s.rep.GoroutinePeak = n
		}
		mon.HeapSample()
		now := time.Now()
		if now.Sub(lastWeather) >= 2*time.Second {
			lastWeather = now
			s.shiftWeather()
		}
		if now.Sub(lastBlocked) >= 5*time.Second {
			lastBlocked = now
			s.rep.BlockedChecks++
			if blocked := mon.Blocked(s.cfg.BlockedAfter); len(blocked) > 0 {
				s.violate("soak: %d goroutines blocked past %v:\n%s",
					len(blocked), s.cfg.BlockedAfter, leakcheck.FormatStacks(blocked))
			}
		}
		if now.Sub(lastProof) >= 15*time.Second {
			lastProof = now
			// The one-simulation guarantee is a stable-membership
			// property, so each proof runs in a calm window: heal, prove,
			// let the weather resume on the next shift. Under memory
			// weather a node at the sampled rung would re-key the proof
			// submission, so proofs also wait for healthy ladders.
			s.heal()
			if s.memCalm() {
				proofs++
				s.proveCoalescing(proofs)
			}
		}
	}

	// Exit assertions on a healed, quiesced cluster.
	s.heal()
	s.quiesce()
	s.rep.SoakSeconds = time.Since(start).Seconds()

	mon.Sample()
	if blocked := mon.Blocked(s.cfg.BlockedAfter); len(blocked) > 0 {
		s.violate("soak exit: %d goroutines still blocked past %v:\n%s",
			len(blocked), s.cfg.BlockedAfter, leakcheck.FormatStacks(blocked))
	}
	if extra, stacks := mon.Growth(15 * time.Second); extra > 0 {
		s.violate("soak exit: %d goroutines above the post-boot baseline %d:\n%s",
			extra, s.rep.GoroutineBaseline, leakcheck.FormatStacks(stacks))
	}
	if s.cfg.MemWeather {
		s.memExit()
	}
	// Heap hygiene holds for every soak: whatever the run allocated, the
	// live heap must settle back near the post-boot baseline once the
	// cluster is healed and idle. The process surviving to this line with
	// a bounded heap is the zero-OOM assertion.
	allowed := int64(s.cfg.HeapSlackMB) << 20
	if excess, final := mon.HeapGrowth(15*time.Second, allowed); excess > 0 {
		s.violate("soak exit: live heap %d bytes, %d over baseline %d + slack %d",
			final, excess, s.rep.HeapBaselineBytes, allowed)
	}
	s.rep.HeapHighWaterBytes = mon.HeapHighWater()
	if s.slo != nil {
		s.rep.SLO = s.slo.Report()
		s.rep.SLOWorstBurn = s.slo.WorstBurn()
		if s.rep.SLOWorstBurn > 1 {
			s.violate("soak exit: SLO error budget overspent, worst burn %.2f", s.rep.SLOWorstBurn)
		}
	}
}

// memCalm reports whether every node's ladder sits at healthy (always
// true outside memory weather). Evaluate forces a fresh heap read so
// the answer is current, not the last poll's.
func (s *swarm) memCalm() bool {
	if !s.cfg.MemWeather {
		return true
	}
	for _, n := range s.nodes {
		if n.gov.Evaluate() != membudget.RungHealthy {
			return false
		}
	}
	return true
}

// memExit asserts the memory-weather contract on the healed cluster:
// the storm engaged the ladder at least to the sampled rung somewhere,
// and every node recovers to healthy once the load is gone. It also
// folds the per-node ladder accounting into the report.
func (s *swarm) memExit() {
	deadline := time.Now().Add(30 * time.Second)
	for !s.memCalm() {
		if time.Now().After(deadline) {
			for _, n := range s.nodes {
				if snap := n.gov.Snapshot(); snap.RungLevel > int(membudget.RungHealthy) {
					s.violate("mem weather: node %s stuck at rung %s after calm (pressure %.2f, accounted %d, heap %d)",
						n.name, snap.Rung, snap.Pressure, snap.AccountedBytes, snap.HeapBytes)
				}
			}
			break
		}
		// Dead objects from the storm count against HeapAlloc until a
		// collection runs; force one so recovery measures live bytes.
		runtime.GC()
		time.Sleep(250 * time.Millisecond)
	}

	s.rep.MemLimitBytes = int64(s.cfg.MemLimitMB) << 20
	s.rep.MemRungEntries = map[string]int64{}
	s.rep.MemRungSeconds = map[string]float64{}
	maxRung := membudget.RungHealthy
	for _, n := range s.nodes {
		snap := n.gov.Snapshot()
		for name, v := range snap.RungEntries {
			s.rep.MemRungEntries[name] += v
		}
		for name, v := range snap.RungSeconds {
			s.rep.MemRungSeconds[name] += v
		}
		for r := membudget.RungHealthy; int(r) < membudget.NumRungs; r++ {
			if snap.MaxRung == r.String() && r > maxRung {
				maxRung = r
			}
		}
	}
	s.rep.MemMaxRung = maxRung.String()
	if maxRung < membudget.RungSampled {
		s.violate("mem weather: storm never engaged the ladder past %s (want ≥ %s)",
			maxRung, membudget.RungSampled)
	}
}
