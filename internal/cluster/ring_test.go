package cluster

import (
	"fmt"
	"testing"
)

// ringKeys synthesizes a deterministic key population shaped like the
// service's real cache keys (hex digests).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", hash64(fmt.Sprintf("key-%d", i)))
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("gspc-%d", i+1)
	}
	return nodes
}

// TestRingBalance: with DefaultVnodes virtual nodes, every member's key
// share stays within ±35% of the uniform share for 3..16 nodes. The
// tolerance is generous against the ~1/sqrt(vnodes) placement noise but
// tight enough to catch a broken hash or vnode loop (which skews shares
// by integer factors).
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for n := 3; n <= 16; n++ {
		r := NewRing(0, ringNodes(n)...)
		counts := map[string]int{}
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("n=%d: no owner for %s", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		mean := float64(len(keys)) / float64(n)
		for node, got := range counts {
			ratio := float64(got) / mean
			if ratio < 0.65 || ratio > 1.35 {
				t.Errorf("n=%d: %s owns %d keys (%.2fx the uniform share)", n, node, got, ratio)
			}
		}
	}
}

// TestRingMinimalMovement: one membership change may remap at most 2/N
// of the keys (the issue's bound; consistent hashing's expectation is
// ~1/(N+1) on join and exactly the leaver's share on leave).
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(20000)
	for n := 3; n <= 16; n++ {
		nodes := ringNodes(n)
		before := NewRing(0, nodes...)
		budget := 2.0 / float64(n) * float64(len(keys))

		// Join: add one node.
		joined := NewRing(0, append(append([]string{}, nodes...), "gspc-new")...)
		moved := 0
		for _, k := range keys {
			a, _ := before.Owner(k)
			b, _ := joined.Owner(k)
			if a != b {
				moved++
				// Every key that moved must have moved TO the joiner; any
				// other movement is unnecessary churn.
				if b != "gspc-new" {
					t.Fatalf("n=%d join: key %s moved %s→%s, not to the joiner", n, k, a, b)
				}
			}
		}
		if float64(moved) > budget {
			t.Errorf("n=%d join: %d keys moved, budget %.0f", n, moved, budget)
		}

		// Leave: remove the first node.
		left := NewRing(0, nodes[1:]...)
		moved = 0
		for _, k := range keys {
			a, _ := before.Owner(k)
			b, _ := left.Owner(k)
			if a != b {
				moved++
				if a != nodes[0] {
					t.Fatalf("n=%d leave: key %s moved %s→%s though %s left", n, k, a, b, nodes[0])
				}
			}
		}
		if float64(moved) > budget {
			t.Errorf("n=%d leave: %d keys moved, budget %.0f", n, moved, budget)
		}
	}
}

// TestRingSuccession: the replication order is the failover order —
// when the owner leaves, the new owner is the old second-in-line. This
// is the property that makes replicating to Owners(key, R+1)[1:] serve
// exactly the keys a dead owner strands.
func TestRingSuccession(t *testing.T) {
	nodes := ringNodes(5)
	r := NewRing(0, nodes...)
	for _, k := range ringKeys(2000) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("owners(%s, 2) = %v", k, owners)
		}
		var rest []string
		for _, n := range nodes {
			if n != owners[0] {
				rest = append(rest, n)
			}
		}
		after := NewRing(0, rest...)
		got, _ := after.Owner(k)
		if got != owners[1] {
			t.Fatalf("key %s: successor %s, but new owner after %s left is %s",
				k, owners[1], owners[0], got)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(0)
	if _, ok := empty.Owner("k"); ok {
		t.Error("empty ring returned an owner")
	}
	if got := empty.Owners("k", 3); got != nil {
		t.Errorf("empty ring Owners = %v", got)
	}

	one := NewRing(0, "solo")
	if owners := one.Owners("k", 5); len(owners) != 1 || owners[0] != "solo" {
		t.Errorf("single-node Owners = %v", owners)
	}

	dup := NewRing(0, "a", "a", "b", "")
	if dup.Len() != 2 {
		t.Errorf("dup/empty names not collapsed: %v", dup.Nodes())
	}

	// Determinism: same membership, same ring, whatever the input order.
	x := NewRing(0, "a", "b", "c")
	y := NewRing(0, "c", "a", "b")
	for _, k := range ringKeys(100) {
		ox, _ := x.Owner(k)
		oy, _ := y.Owner(k)
		if ox != oy {
			t.Fatalf("owner order-dependent for %s: %s vs %s", k, ox, oy)
		}
	}
}
