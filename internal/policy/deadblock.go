package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// CounterDBP is a counter-based dead block predictor in the spirit of
// Kharbutli and Solihin [25] (Section 1.1.1), adapted to graphics
// streams: instead of program counters (unavailable for fixed-function
// units), it learns the typical access count of blocks per stream kind.
// Each block counts its accesses; on eviction, the per-stream threshold
// learns the block's final count. A block whose count exceeds its
// stream's learned threshold is predicted dead and victimized first.
type CounterDBP struct {
	ways int
	// cnt is the per-block access count since fill.
	cnt []uint8
	// kind remembers the filling stream of each block.
	kind []uint8
	// avgX4 is the exponentially averaged final access count per stream,
	// fixed-point with 2 fraction bits.
	avgX4 [stream.NumKinds]int
	// stamp provides LRU tie-breaking among equally-(un)dead blocks.
	clock uint64
	stamp []uint64
}

var _ cachesim.Policy = (*CounterDBP)(nil)

// NewCounterDBP returns a counter-based dead block predictor.
func NewCounterDBP() *CounterDBP { return &CounterDBP{} }

// Name implements cachesim.Policy.
func (p *CounterDBP) Name() string { return "CounterDBP" }

// Reset implements cachesim.Policy.
func (p *CounterDBP) Reset(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.cnt = make([]uint8, n)
	p.kind = make([]uint8, n)
	p.stamp = make([]uint64, n)
	p.clock = 0
	for k := range p.avgX4 {
		p.avgX4[k] = 4 // one access on average, optimistic start
	}
}

func (p *CounterDBP) touch(set, way int) {
	i := set*p.ways + way
	if p.cnt[i] < 255 {
		p.cnt[i]++
	}
	p.clock++
	p.stamp[i] = p.clock
}

// Hit implements cachesim.Policy.
func (p *CounterDBP) Hit(set, way int, a stream.Access) { p.touch(set, way) }

// Fill implements cachesim.Policy.
func (p *CounterDBP) Fill(set, way int, a stream.Access) {
	i := set*p.ways + way
	p.cnt[i] = 0
	p.kind[i] = uint8(a.Kind)
	p.touch(set, way)
}

// dead reports whether the block's access count has reached its stream's
// learned lifetime (it is unlikely to be touched again).
func (p *CounterDBP) dead(i int) bool {
	return int(p.cnt[i])*4 >= p.avgX4[p.kind[i]]
}

// Victim implements cachesim.Policy: prefer the least recently used
// predicted-dead block; if none is dead, plain LRU.
func (p *CounterDBP) Victim(set int, a stream.Access) int {
	base := set * p.ways
	victim, oldest := -1, uint64(1<<63)
	for w := 0; w < p.ways; w++ {
		if p.dead(base+w) && p.stamp[base+w] < oldest {
			victim, oldest = w, p.stamp[base+w]
		}
	}
	if victim >= 0 {
		return victim
	}
	for w := 0; w < p.ways; w++ {
		if p.stamp[base+w] < oldest {
			victim, oldest = w, p.stamp[base+w]
		}
	}
	return victim
}

// Evict implements cachesim.Policy: learn the block's final access count
// into its stream's average (alpha = 1/8).
func (p *CounterDBP) Evict(set, way int) {
	i := set*p.ways + way
	k := p.kind[i]
	final := int(p.cnt[i]) * 4
	p.avgX4[k] += (final - p.avgX4[k]) / 8
	if p.avgX4[k] < 4 {
		p.avgX4[k] = 4
	}
	p.cnt[i] = 0
	p.stamp[i] = 0
}

// LearnedLifetime exposes the learned per-stream access count (in
// accesses) for tests.
func (p *CounterDBP) LearnedLifetime(k stream.Kind) float64 {
	return float64(p.avgX4[k]) / 4
}
