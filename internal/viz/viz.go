// Package viz renders experiment tables as horizontal ASCII bar charts,
// approximating the paper's figures in a terminal. Each row of a table
// becomes a group of labelled bars, one per column, scaled to a shared
// axis.
package viz

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders labelled bar groups.
type Chart struct {
	// Width is the maximum bar length in characters (default 48).
	Width int
	// Baseline, when non-zero, draws bars relative to this value
	// (e.g. 1.0 for normalized miss ratios): values above the baseline
	// extend right with '+', values below extend right with '-',
	// visually separating winners from losers.
	Baseline float64
}

// row is one bar group.
type row struct {
	label  string
	values []float64
}

// Data couples a chart with its content.
type Data struct {
	Title   string
	Series  []string
	Rows    []row
	maxVal  float64
	minVal  float64
	started bool
}

// NewData starts a chart dataset with the given series names.
func NewData(title string, series ...string) *Data {
	return &Data{Title: title, Series: series}
}

// Add appends a bar group. Extra values beyond the series count are
// ignored; missing values render as empty bars.
func (d *Data) Add(label string, values ...float64) {
	if len(values) > len(d.Series) {
		values = values[:len(d.Series)]
	}
	d.Rows = append(d.Rows, row{label: label, values: values})
	for _, v := range values {
		if !d.started {
			d.maxVal, d.minVal = v, v
			d.started = true
			continue
		}
		if v > d.maxVal {
			d.maxVal = v
		}
		if v < d.minVal {
			d.minVal = v
		}
	}
}

// Render writes the chart.
func (c Chart) Render(w io.Writer, d *Data) {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	if d.Title != "" {
		fmt.Fprintf(w, "%s\n", d.Title)
	}
	seriesW := 0
	for _, s := range d.Series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}

	if c.Baseline != 0 {
		c.renderBaseline(w, d, width, seriesW)
		return
	}

	span := d.maxVal
	if span <= 0 {
		span = 1
	}
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%s\n", r.label)
		for i, s := range d.Series {
			v := 0.0
			if i < len(r.values) {
				v = r.values[i]
			}
			n := int(v / span * float64(width))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %-*s |%s %.3g\n", seriesW, s, strings.Repeat("#", n), v)
		}
	}
}

// renderBaseline draws deviation bars around the baseline value.
func (c Chart) renderBaseline(w io.Writer, d *Data, width, seriesW int) {
	span := d.maxVal - c.Baseline
	if dev := c.Baseline - d.minVal; dev > span {
		span = dev
	}
	if span <= 0 {
		span = 1
	}
	fmt.Fprintf(w, "(bars show deviation from %.3g: '-' better, '+' worse)\n", c.Baseline)
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%s\n", r.label)
		for i, s := range d.Series {
			v := 0.0
			if i < len(r.values) {
				v = r.values[i]
			}
			dev := v - c.Baseline
			n := int((dev / span) * float64(width))
			bar := ""
			if n >= 0 {
				bar = strings.Repeat("+", n)
			} else {
				bar = strings.Repeat("-", -n)
			}
			fmt.Fprintf(w, "  %-*s |%s %.3g\n", seriesW, s, bar, v)
		}
	}
}
