package telemetry

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SLOTarget is one experiment's latency objective: the p50 and p99 the
// service promises. A zero field means "no target at that quantile" —
// only P99 drives breach accounting; P50 is reported for comparison.
type SLOTarget struct {
	P50 time.Duration
	P99 time.Duration
}

// defaultSLOWindow bounds the per-experiment latency ring measured
// quantiles are computed over.
const defaultSLOWindow = 512

// SLOTracker tracks per-experiment completed-job latencies against
// targets and accounts error-budget burn: with objective o (e.g. 0.99,
// "99% of jobs under their p99 target"), the error budget over n
// observations is n×(1−o) breaches, and the burn rate is
// breaches / budget — 1.0 means the budget is exactly spent, above it
// the SLO is being violated.
type SLOTracker struct {
	mu        sync.Mutex
	def       SLOTarget
	objective float64
	window    int
	targets   map[string]SLOTarget
	series    map[string]*sloSeries
}

// sloSeries is one experiment's rolling latency window plus lifetime
// breach counters (counters never roll: burn is cumulative).
type sloSeries struct {
	ring     []float64 // milliseconds
	n        int       // total recorded
	breaches int64
}

// NewSLOTracker builds a tracker. def is the target applied to
// experiments without an explicit SetTarget; objective defaults to 0.99
// when out of (0, 1); window is the measured-quantile ring size
// (0 = 512).
func NewSLOTracker(def SLOTarget, objective float64, window int) *SLOTracker {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = defaultSLOWindow
	}
	return &SLOTracker{
		def:       def,
		objective: objective,
		window:    window,
		targets:   map[string]SLOTarget{},
		series:    map[string]*sloSeries{},
	}
}

// SetTarget overrides the default target for one experiment.
func (t *SLOTracker) SetTarget(experiment string, target SLOTarget) {
	t.mu.Lock()
	t.targets[experiment] = target
	t.mu.Unlock()
}

// Observe records one completed job's latency. A breach is a latency
// above the experiment's p99 target (when one is set).
func (t *SLOTracker) Observe(experiment string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.series[experiment]
	if !ok {
		s = &sloSeries{ring: make([]float64, t.window)}
		t.series[experiment] = s
	}
	s.ring[s.n%t.window] = float64(d) / float64(time.Millisecond)
	s.n++
	target := t.targetLocked(experiment)
	if target.P99 > 0 && d > target.P99 {
		s.breaches++
	}
}

func (t *SLOTracker) targetLocked(experiment string) SLOTarget {
	if target, ok := t.targets[experiment]; ok {
		return target
	}
	return t.def
}

// SLOReport is one experiment's SLO accounting for /metricsz and the
// soak summary.
type SLOReport struct {
	Experiment  string  `json:"experiment"`
	TargetP50Ms float64 `json:"target_p50_ms,omitempty"`
	TargetP99Ms float64 `json:"target_p99_ms,omitempty"`
	// Measured quantiles over the rolling window.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Lifetime counters and the cumulative error-budget burn rate:
	// breaches / (observations × (1 − objective)).
	Observations int64   `json:"observations"`
	Breaches     int64   `json:"breaches"`
	BurnRate     float64 `json:"burn_rate"`
}

// Report returns the per-experiment accounting, sorted by experiment id.
func (t *SLOTracker) Report() []SLOReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOReport, 0, len(t.series))
	for exp, s := range t.series {
		target := t.targetLocked(exp)
		count := s.n
		if count > t.window {
			count = t.window
		}
		sorted := make([]float64, count)
		copy(sorted, s.ring[:count])
		sort.Float64s(sorted)
		budget := float64(s.n) * (1 - t.objective)
		burn := 0.0
		if s.breaches > 0 {
			burn = float64(s.breaches) / math.Max(budget, 1)
		}
		out = append(out, SLOReport{
			Experiment:   exp,
			TargetP50Ms:  float64(target.P50) / float64(time.Millisecond),
			TargetP99Ms:  float64(target.P99) / float64(time.Millisecond),
			P50Ms:        sloQuantile(sorted, 0.50),
			P99Ms:        sloQuantile(sorted, 0.99),
			Observations: int64(s.n),
			Breaches:     s.breaches,
			BurnRate:     burn,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Experiment < out[j].Experiment })
	return out
}

// WorstBurn returns the highest per-experiment burn rate, 0 when
// nothing has been observed — the single scalar a soak asserts on.
func (t *SLOTracker) WorstBurn() float64 {
	worst := 0.0
	for _, r := range t.Report() {
		if r.BurnRate > worst {
			worst = r.BurnRate
		}
	}
	return worst
}

// sloQuantile is the linear-interpolation quantile of sorted s.
func sloQuantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	r := q * float64(len(s)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return s[lo]
	}
	frac := r - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
